// Command benchsnap runs the benchmark-snapshot suite (see
// internal/bench) and writes the next committed BENCH_<n>.json in the
// repository root. `make bench-snapshot` is the entry point; commit
// the file it writes so `make bench-gate` has a baseline to compare
// future checkouts against.
//
//	benchsnap [-dir .] [-out FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
)

func main() {
	dir := flag.String("dir", ".", "repository root holding the BENCH_<n>.json snapshots")
	out := flag.String("out", "", "write the snapshot to this file instead of the next BENCH_<n>.json")
	flag.Parse()

	path := *out
	if path == "" {
		_, n, err := bench.Latest(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
			os.Exit(1)
		}
		path = filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", n+1))
	}

	snap, err := bench.Measure(func(name string) {
		fmt.Fprintf(os.Stderr, "benchsnap: running %s...\n", name)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	for _, bm := range bench.Suite() {
		r := snap.Benchmarks[bm.Name]
		fmt.Printf("%-28s %14d ns/op  (%d iterations)\n", bm.Name, r.NsPerOp, r.Iterations)
	}
	fmt.Printf("%-28s %14.1fx\n", "analytic speedup", snap.AnalyticSpeedup)
	if err := snap.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
