// Command bench_gate re-runs the benchmark-snapshot suite and fails
// (exit 1) when any benchmark regressed more than the tolerance
// against the last committed BENCH_<n>.json, or when the analytic
// engine's full-registry speedup over the exact engine falls below
// its contractual 50×. `make bench-gate` is the entry point; CI runs
// it after the test suite.
//
//	bench_gate [-dir .] [-tolerance 0.30]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

// minAnalyticSpeedup is the analytic engine's performance contract:
// the full default registry at default fidelity, ≥50× faster than the
// trace-driven exact engine (see docs/ENGINES.md).
const minAnalyticSpeedup = 50.0

func main() {
	dir := flag.String("dir", ".", "repository root holding the BENCH_<n>.json snapshots")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional ns/op growth vs the committed snapshot")
	flag.Parse()

	path, _, err := bench.Latest(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_gate: %v\n", err)
		os.Exit(1)
	}
	if path == "" {
		fmt.Fprintf(os.Stderr, "bench_gate: no BENCH_<n>.json snapshot in %s (run `make bench-snapshot` and commit the result)\n", *dir)
		os.Exit(1)
	}
	committed, err := bench.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_gate: %v\n", err)
		os.Exit(1)
	}

	current, err := bench.Measure(func(name string) {
		fmt.Fprintf(os.Stderr, "bench_gate: running %s...\n", name)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench_gate: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for _, reg := range bench.Compare(committed, current, *tolerance) {
		fmt.Fprintf(os.Stderr, "bench_gate: REGRESSION %s\n", reg)
		failed = true
	}
	// Per-benchmark baseline-vs-current summary in stable suite order
	// (ranging over the map would shuffle the lines every run).
	for _, bm := range bench.Suite() {
		cur, ok := current.Benchmarks[bm.Name]
		if !ok {
			continue
		}
		old, ok := committed.Benchmarks[bm.Name]
		switch {
		case !ok:
			fmt.Printf("%-28s %14d ns/op  (new, no baseline)\n", bm.Name, cur.NsPerOp)
		case old.NsPerOp <= 0:
			// A zero baseline would print ±Inf%; name it instead.
			fmt.Printf("%-28s %14d ns/op  (baseline %d, growth n/a)\n",
				bm.Name, cur.NsPerOp, old.NsPerOp)
		default:
			fmt.Printf("%-28s %14d ns/op  (baseline %d, %+.1f%%)\n",
				bm.Name, cur.NsPerOp, old.NsPerOp,
				100*float64(cur.NsPerOp-old.NsPerOp)/float64(old.NsPerOp))
		}
	}
	if current.AnalyticSpeedup < minAnalyticSpeedup {
		fmt.Fprintf(os.Stderr, "bench_gate: analytic speedup %.1fx is below the contractual %.0fx\n",
			current.AnalyticSpeedup, minAnalyticSpeedup)
		failed = true
	}
	fmt.Printf("%-28s %14.1fx  (baseline %.1fx, floor %.0fx)\n",
		"analytic speedup", current.AnalyticSpeedup, committed.AnalyticSpeedup, minAnalyticSpeedup)
	if failed {
		fmt.Fprintf(os.Stderr, "bench_gate: FAILED against %s\n", path)
		os.Exit(1)
	}
	fmt.Printf("bench_gate: OK against %s\n", path)
}
