// Command smoke is `make smoke`: it boots a real spec17d on a free
// port, walks the observability surface — /v1/healthz, /v1/status,
// /metrics, one traced /v1/report at tiny fidelity — and asserts the
// report's trace landed in /v1/traces with the pipeline stages
// visible. It exercises the built binary, not the handler in-process,
// so flag parsing, logging, and the HTTP stack are all on the hook.
//
// Exit status is 0 on success; any failure prints a diagnostic and
// exits 1. No external tools (curl, jq) are needed.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smoke: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func get(base, path string) (int, []byte) {
	resp, err := http.Get(base + path)
	if err != nil {
		fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body
}

func main() {
	// Build the daemon into a temp dir so the smoke test always runs
	// what the tree currently says.
	tmp, err := os.MkdirTemp("", "spec17d-smoke")
	if err != nil {
		fatalf("mktemp: %v", err)
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "spec17d")
	build := exec.Command("go", "build", "-o", bin, "./cmd/spec17d")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fatalf("building spec17d: %v", err)
	}

	// Pick a free port by binding and releasing it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("picking a port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	// -trace-slow high enough that the daemon never dumps a full span
	// tree into the CI log; the flag still goes through parsing. The
	// near-zero -rate-limit gives every client a one-token bucket that
	// essentially never refills, so the second compute request below
	// must be shed — driving the admission path end to end.
	// -insight-interval short enough that the history rings fill while
	// the smoke test watches.
	daemon := exec.Command(bin, "-addr", addr, "-trace-slow", "5m", "-rate-limit", "0.01",
		"-insight-interval", "200ms")
	daemon.Stdout, daemon.Stderr = os.Stdout, os.Stderr
	if err := daemon.Start(); err != nil {
		fatalf("starting spec17d: %v", err)
	}
	defer func() {
		daemon.Process.Kill()
		daemon.Wait()
	}()

	// Wait for liveness.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			fatalf("daemon not live after 10s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("smoke: /v1/healthz live")

	// /v1/status must report an enabled tracer and a running scheduler.
	code, body := get(base, "/v1/status")
	if code != http.StatusOK {
		fatalf("/v1/status: %d: %s", code, body)
	}
	var status struct {
		Trace struct {
			Enabled bool `json:"enabled"`
		} `json:"tracing"`
		Sched struct {
			Workers int `json:"workers"`
		} `json:"sched"`
	}
	if err := json.Unmarshal(body, &status); err != nil {
		fatalf("/v1/status: %v\n%s", err, body)
	}
	if !status.Trace.Enabled || status.Sched.Workers <= 0 {
		fatalf("/v1/status: tracing %v, workers %d", status.Trace.Enabled, status.Sched.Workers)
	}
	fmt.Println("smoke: /v1/status ok")

	// One traced report at tiny fidelity, carrying a known request id.
	req, _ := http.NewRequest("GET", base+"/v1/report?instructions=2000", nil)
	req.Header.Set("X-Request-Id", "smoke-report-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatalf("report: %v", err)
	}
	rbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("report: %d: %s", resp.StatusCode, rbody)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "smoke-report-1" {
		fatalf("report X-Trace-Id = %q, want smoke-report-1", got)
	}
	fmt.Printf("smoke: /v1/report ok (%d bytes)\n", len(rbody))

	// /metrics must expose the request and stage-duration families.
	code, body = get(base, "/metrics")
	if code != http.StatusOK {
		fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"spec17d_requests_total", "spec17_stage_duration_seconds"} {
		if !strings.Contains(string(body), want) {
			fatalf("/metrics missing %s", want)
		}
	}
	fmt.Println("smoke: /metrics ok")

	// The report's trace is in the ring, stages and all.
	code, body = get(base, "/v1/traces?experiment=report")
	if code != http.StatusOK {
		fatalf("/v1/traces: %d: %s", code, body)
	}
	var traces struct {
		Count  int `json:"count"`
		Traces []struct {
			TraceID string          `json:"trace_id"`
			Root    json.RawMessage `json:"root"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &traces); err != nil {
		fatalf("/v1/traces: %v", err)
	}
	if traces.Count != 1 || traces.Traces[0].TraceID != "smoke-report-1" {
		fatalf("/v1/traces: count %d, want the smoke-report-1 trace", traces.Count)
	}
	for _, stage := range []string{`"characterize"`, `"simulate"`, `"sched.wait"`, `"pca"`, `"cluster"`} {
		if !strings.Contains(string(traces.Traces[0].Root), stage) {
			fatalf("trace missing %s span", stage)
		}
	}
	fmt.Println("smoke: /v1/traces has the report trace with all pipeline stages")

	// Insight plane: the sampled history of the request counter must
	// appear once the recorder has ticked over the report traffic.
	histDeadline := time.Now().Add(5 * time.Second)
	for {
		code, body = get(base, "/v1/metrics/history?name=spec17d_requests_total&window=5m")
		if code == http.StatusOK {
			break
		}
		if time.Now().After(histDeadline) {
			fatalf("/v1/metrics/history never served the request counter: %d: %s", code, body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	var hist struct {
		Name   string `json:"name"`
		Series []struct {
			Points []json.RawMessage `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &hist); err != nil {
		fatalf("/v1/metrics/history: %v\n%s", err, body)
	}
	if hist.Name != "spec17d_requests_total" || len(hist.Series) == 0 || len(hist.Series[0].Points) == 0 {
		fatalf("/v1/metrics/history: no sampled points in %s", body)
	}
	fmt.Println("smoke: /v1/metrics/history sampled the request counter")

	// /v1/accuracy answers the drift monitor's totals (no pairs yet —
	// nothing analytic has been upgraded — but the contract is live).
	code, body = get(base, "/v1/accuracy")
	if code != http.StatusOK || !strings.Contains(string(body), `"pairs_compared"`) {
		fatalf("/v1/accuracy: %d: %s", code, body)
	}
	fmt.Println("smoke: /v1/accuracy ok")

	// /v1/events serves the (possibly empty) anomaly ring, and rejects
	// an unknown event type with the known taxonomy.
	code, body = get(base, "/v1/events")
	if code != http.StatusOK || !strings.Contains(string(body), `"count"`) {
		fatalf("/v1/events: %d: %s", code, body)
	}
	code, body = get(base, "/v1/events?type=bogus")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "band_violation") {
		fatalf("/v1/events?type=bogus: status %d body %s, want 400 naming the known types", code, body)
	}
	fmt.Println("smoke: /v1/events ok (unknown type rejected with the taxonomy)")

	// Measurement engines: the same experiment served analytic and
	// exact, each under a fresh API key (the near-zero refill rate means
	// the default client's bucket is already spent), and a bogus engine
	// value rejected with the allowed set — not silently defaulted.
	engineGet := func(apiKey, query string) (int, []byte) {
		req, _ := http.NewRequest("GET", base+"/v1/experiments/table1?instructions=2000"+query, nil)
		req.Header.Set("X-API-Key", apiKey)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatalf("experiment %s: %v", query, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	var engResp struct {
		Engine string `json:"engine"`
	}
	code, body = engineGet("smoke-analytic", "&engine=analytic")
	if code != http.StatusOK {
		fatalf("analytic experiment: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &engResp); err != nil || engResp.Engine != "analytic" {
		fatalf("analytic experiment: engine %q (err %v), want analytic", engResp.Engine, err)
	}
	fmt.Println("smoke: /v1/experiments/table1?engine=analytic served by the analytic engine")
	code, body = engineGet("smoke-exact", "&engine=exact")
	if code != http.StatusOK {
		fatalf("exact experiment: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &engResp); err != nil || engResp.Engine != "exact" {
		fatalf("exact experiment: engine %q (err %v), want exact", engResp.Engine, err)
	}
	fmt.Println("smoke: /v1/experiments/table1?engine=exact served by the exact engine")
	code, body = engineGet("smoke-bogus", "&engine=estimating")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "valid: exact, analytic, auto") {
		fatalf("bogus engine: status %d body %s, want 400 naming the valid tiers", code, body)
	}
	fmt.Println("smoke: unknown engine value rejected with 400 and the allowed set")

	// The first report spent this client's only admission token; the
	// next compute request must be shed: 429, the too_many_requests
	// envelope, and an integer Retry-After.
	resp, err = http.Get(base + "/v1/report?instructions=2000")
	if err != nil {
		fatalf("rejected report: %v", err)
	}
	rbody, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		fatalf("rate-limited report: status %d, want 429: %s", resp.StatusCode, rbody)
	}
	if !strings.Contains(string(rbody), `"too_many_requests"`) {
		fatalf("rate-limited report: body %s lacks too_many_requests", rbody)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" || strings.ContainsAny(ra, ".") {
		fatalf("rate-limited report: Retry-After %q, want integer seconds", ra)
	}
	if _, err := fmt.Sscanf(ra, "%d", new(int)); err != nil {
		fatalf("rate-limited report: Retry-After %q does not parse: %v", ra, err)
	}
	fmt.Println("smoke: admission shed the over-budget request with 429 + Retry-After", ra)

	// Async jobs: submit a one-item sweep with a webhook pointing at a
	// local sink, watch it complete over SSE, fetch its results, and
	// require the webhook delivery — the full push-delivery loop
	// against the real daemon. Fresh API keys throughout: the earlier
	// legs' buckets are spent by design.
	sinkCh := make(chan []byte, 4)
	sinkLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("webhook sink listen: %v", err)
	}
	sinkSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		payload, _ := io.ReadAll(r.Body)
		sinkCh <- payload
	})}
	go sinkSrv.Serve(sinkLn)
	defer sinkSrv.Close()

	jobBody := strings.NewReader(fmt.Sprintf(
		`{"experiments":["table1"],"instructions":2000,"engine":"analytic","webhook":"http://%s/hook"}`,
		sinkLn.Addr().String()))
	req, _ = http.NewRequest("POST", base+"/v1/jobs", jobBody)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-API-Key", "smoke-jobs")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		fatalf("job submit: %v", err)
	}
	rbody, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		fatalf("job submit: status %d, want 202: %s", resp.StatusCode, rbody)
	}
	var job struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rbody, &job); err != nil || job.ID == "" {
		fatalf("job submit: no job id in %s (err %v)", rbody, err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		fatalf("job submit: Location %q, want /v1/jobs/%s", loc, job.ID)
	}
	fmt.Println("smoke: POST /v1/jobs accepted job", job.ID)

	// SSE until the terminal event.
	resp, err = http.Get(base + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		fatalf("job events: %v", err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/event-stream" {
		fatalf("job events: status %d, Content-Type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	sawTerminal := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"state":"done"`) &&
			strings.Contains(line, `"type":"state"`) {
			sawTerminal = true
			break
		}
	}
	resp.Body.Close()
	if !sawTerminal {
		fatalf("job events: stream ended without a terminal done event")
	}
	fmt.Println("smoke: /v1/jobs/{id}/events streamed the sweep to completion")

	// Results: one NDJSON ok line for table1.
	req, _ = http.NewRequest("GET", base+"/v1/jobs/"+job.ID+"/results", nil)
	req.Header.Set("X-API-Key", "smoke-job-results")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		fatalf("job results: %v", err)
	}
	rbody, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("job results: status %d: %s", resp.StatusCode, rbody)
	}
	var line struct {
		ID     string          `json:"id"`
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(rbody))), &line); err != nil {
		fatalf("job results: parsing NDJSON line: %v\n%s", err, rbody)
	}
	if line.ID != "table1" || line.Status != "ok" || len(line.Result) == 0 {
		fatalf("job results: id %q status %q (%d result bytes), want table1/ok", line.ID, line.Status, len(line.Result))
	}
	fmt.Println("smoke: /v1/jobs/{id}/results served the sweep's measurement")

	// The webhook sink must have received the terminal notification.
	select {
	case payload := <-sinkCh:
		if !strings.Contains(string(payload), `"job.done"`) || !strings.Contains(string(payload), job.ID) {
			fatalf("webhook payload %s lacks job.done / job id", payload)
		}
	case <-time.After(10 * time.Second):
		fatalf("webhook never delivered")
	}
	fmt.Println("smoke: webhook delivered the job.done notification")

	// A daemon booted with -insight=false must not have the insight
	// routes at all: 404 through the ordinary fallback, not an empty
	// 200 — clients can trust the discovery document.
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("picking a second port: %v", err)
	}
	addr2 := l2.Addr().String()
	l2.Close()
	base2 := "http://" + addr2
	daemon2 := exec.Command(bin, "-addr", addr2, "-insight=false", "-jobs=false")
	daemon2.Stdout, daemon2.Stderr = os.Stdout, os.Stderr
	if err := daemon2.Start(); err != nil {
		fatalf("starting insight-less spec17d: %v", err)
	}
	defer func() {
		daemon2.Process.Kill()
		daemon2.Wait()
	}()
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base2 + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			fatalf("insight-less daemon not live after 10s")
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, path := range []string{"/v1/metrics/history?name=x", "/v1/accuracy", "/v1/events"} {
		code, body := get(base2, path)
		if code != http.StatusNotFound || !strings.Contains(string(body), "no such endpoint") {
			fatalf("insight-less GET %s: status %d body %s, want the standard 404", path, code, body)
		}
	}
	fmt.Println("smoke: -insight=false daemon 404s the insight routes")
	fmt.Println("smoke: PASS")
}
