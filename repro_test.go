package repro

import (
	"context"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end at reduced
// fidelity; the per-experiment shape assertions live in
// internal/experiments.

func TestPublicProfileDatabase(t *testing.T) {
	if got := len(CPU2017Profiles()); got != 43 {
		t.Fatalf("CPU2017Profiles = %d, want 43", got)
	}
	if got := len(CPU2006Profiles()); got != 29 {
		t.Fatalf("CPU2006Profiles = %d, want 29", got)
	}
	if got := len(EmergingProfiles()); got != 8 {
		t.Fatalf("EmergingProfiles = %d, want 8", got)
	}
	p, err := ProfileByName("505.mcf_r")
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != "mcf" || p.Suite != RateINT {
		t.Fatalf("unexpected profile %+v", p)
	}
	if got := len(ProfilesBySuite(RateFP)); got != 13 {
		t.Fatalf("rate FP = %d profiles, want 13", got)
	}
}

func TestPublicFleet(t *testing.T) {
	fleet, err := Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 7 {
		t.Fatalf("fleet = %d machines, want 7 (Table IV)", len(fleet))
	}
}

func TestPublicPipeline(t *testing.T) {
	p1, _ := ProfileByName("505.mcf_r")
	p2, _ := ProfileByName("525.x264_r")
	p3, _ := ProfileByName("541.leela_r")
	fleet, err := Fleet()
	if err != nil {
		t.Fatal(err)
	}
	char, err := Characterize(context.Background(), []Entry{
		{Label: p1.Name, Workload: p1.Workload()},
		{Label: p2.Name, Workload: p2.Workload()},
		{Label: p3.Name, Workload: p3.Workload()},
	}, fleet[:2], RunOptions{Instructions: 40_000, WarmupInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := char.Similarity(DefaultSimilarityOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Subset(2)
	if len(res.Representatives) != 2 {
		t.Fatalf("subset = %v", res.Representatives)
	}
	if !strings.Contains(sim.Dendrogram.Render(40), "505.mcf_r") {
		t.Fatal("dendrogram rendering broken")
	}
}

func TestFastRunOptions(t *testing.T) {
	o := FastRunOptions()
	if o.Instructions <= 0 || o.WarmupInstructions <= 0 {
		t.Fatalf("FastRunOptions = %+v", o)
	}
}
