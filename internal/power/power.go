// Package power implements an activity-based energy model that stands
// in for the RAPL counters the paper reads on its three Intel machines
// (Skylake, Ivybridge, Broadwell). It reports average core, LLC
// (uncore), and DRAM power from the event counts produced by the
// simulation substrate, reproducing the power spectrum of Figure 12.
package power

import "fmt"

// Model holds a machine's power coefficients. Units are watts for
// static terms and watts per unit activity for dynamic terms; activity
// rates are per-cycle, derived from the counts below.
type Model struct {
	// CoreStatic is idle core power; CorePerIPC scales with retirement
	// throughput; FPWeight and SIMDWeight add the extra switching cost
	// of floating-point and vector units relative to integer work.
	CoreStatic, CorePerIPC, FPWeight, SIMDWeight float64
	// LLCStatic and LLCPerAPC (accesses per cycle into L2/L3) model
	// the uncore.
	LLCStatic, LLCPerAPC float64
	// DRAMStatic and DRAMPerMPC (memory accesses per cycle) model
	// DIMM power.
	DRAMStatic, DRAMPerMPC float64
}

// Validate rejects negative coefficients.
func (m Model) Validate() error {
	for name, v := range map[string]float64{
		"CoreStatic": m.CoreStatic, "CorePerIPC": m.CorePerIPC,
		"FPWeight": m.FPWeight, "SIMDWeight": m.SIMDWeight,
		"LLCStatic": m.LLCStatic, "LLCPerAPC": m.LLCPerAPC,
		"DRAMStatic": m.DRAMStatic, "DRAMPerMPC": m.DRAMPerMPC,
	} {
		if v < 0 {
			return fmt.Errorf("power: negative coefficient %s = %v", name, v)
		}
	}
	return nil
}

// DefaultModel returns coefficients calibrated to a desktop-class
// part: tens of watts of core power, a few watts of uncore, and
// DRAM power that grows steeply with memory traffic.
func DefaultModel() Model {
	return Model{
		CoreStatic: 8, CorePerIPC: 12, FPWeight: 6, SIMDWeight: 14,
		LLCStatic: 2, LLCPerAPC: 40,
		DRAMStatic: 1.5, DRAMPerMPC: 300,
	}
}

// Activity summarizes a measured run for the power model.
type Activity struct {
	Instructions uint64
	Cycles       uint64
	FPOps        uint64
	SIMDOps      uint64
	// LLCAccesses counts L2+L3 lookups; MemAccesses counts requests
	// that reached DRAM.
	LLCAccesses uint64
	MemAccesses uint64
}

// Breakdown is the average power during the run, in watts.
type Breakdown struct {
	Core, LLC, DRAM float64
}

// Total returns package + DRAM power.
func (b Breakdown) Total() float64 { return b.Core + b.LLC + b.DRAM }

// Estimate computes the power breakdown for a run.
func (m Model) Estimate(a Activity) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	if a.Cycles == 0 {
		return Breakdown{}, fmt.Errorf("power: zero cycles")
	}
	cyc := float64(a.Cycles)
	ipc := float64(a.Instructions) / cyc
	fpFrac := 0.0
	simdFrac := 0.0
	if a.Instructions > 0 {
		fpFrac = float64(a.FPOps) / float64(a.Instructions)
		simdFrac = float64(a.SIMDOps) / float64(a.Instructions)
	}
	return Breakdown{
		Core: m.CoreStatic + m.CorePerIPC*ipc*(1+m.FPWeight*fpFrac+m.SIMDWeight*simdFrac),
		LLC:  m.LLCStatic + m.LLCPerAPC*float64(a.LLCAccesses)/cyc,
		DRAM: m.DRAMStatic + m.DRAMPerMPC*float64(a.MemAccesses)/cyc,
	}, nil
}
