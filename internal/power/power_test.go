package power

import (
	"math"
	"testing"
)

func baseActivity() Activity {
	return Activity{
		Instructions: 1_000_000,
		Cycles:       1_000_000,
		FPOps:        0,
		SIMDOps:      0,
		LLCAccesses:  10_000,
		MemAccesses:  1_000,
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	m := DefaultModel()
	m.DRAMPerMPC = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative coefficient must be rejected")
	}
}

func TestEstimateZeroCycles(t *testing.T) {
	if _, err := DefaultModel().Estimate(Activity{}); err == nil {
		t.Fatal("zero cycles must error")
	}
}

func TestEstimateInvalidModel(t *testing.T) {
	m := DefaultModel()
	m.CoreStatic = -5
	if _, err := m.Estimate(baseActivity()); err == nil {
		t.Fatal("invalid model must error")
	}
}

func TestHigherIPCMoreCorePower(t *testing.T) {
	m := DefaultModel()
	slow := baseActivity()
	slow.Cycles = 4_000_000 // IPC 0.25
	fast := baseActivity()  // IPC 1.0
	bs, err := m.Estimate(slow)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := m.Estimate(fast)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Core <= bs.Core {
		t.Fatalf("higher IPC should draw more core power: %v vs %v", bf.Core, bs.Core)
	}
}

func TestFPAndSIMDRaiseCorePower(t *testing.T) {
	m := DefaultModel()
	intOnly := baseActivity()
	fp := baseActivity()
	fp.FPOps = 300_000
	simd := baseActivity()
	simd.SIMDOps = 300_000
	bi, _ := m.Estimate(intOnly)
	bf, _ := m.Estimate(fp)
	bv, _ := m.Estimate(simd)
	if bf.Core <= bi.Core {
		t.Fatal("FP work should raise core power")
	}
	if bv.Core <= bf.Core {
		t.Fatal("SIMD should cost more than scalar FP")
	}
}

func TestMemoryTrafficRaisesDRAMPower(t *testing.T) {
	m := DefaultModel()
	quiet := baseActivity()
	noisy := baseActivity()
	noisy.MemAccesses = 100_000
	bq, _ := m.Estimate(quiet)
	bn, _ := m.Estimate(noisy)
	if bn.DRAM <= bq.DRAM {
		t.Fatal("memory traffic should raise DRAM power")
	}
	if bn.Core != bq.Core {
		t.Fatal("memory traffic alone should not change core power")
	}
}

func TestLLCTrafficRaisesLLCPower(t *testing.T) {
	m := DefaultModel()
	quiet := baseActivity()
	busy := baseActivity()
	busy.LLCAccesses = 500_000
	bq, _ := m.Estimate(quiet)
	bb, _ := m.Estimate(busy)
	if bb.LLC <= bq.LLC {
		t.Fatal("LLC traffic should raise LLC power")
	}
}

func TestTotalIsSum(t *testing.T) {
	b := Breakdown{Core: 30, LLC: 4, DRAM: 6}
	if math.Abs(b.Total()-40) > 1e-12 {
		t.Fatalf("Total = %v, want 40", b.Total())
	}
}

func TestStaticFloor(t *testing.T) {
	m := DefaultModel()
	idle := Activity{Instructions: 1, Cycles: 1_000_000_000}
	b, err := m.Estimate(idle)
	if err != nil {
		t.Fatal(err)
	}
	if b.Core < m.CoreStatic || b.LLC < m.LLCStatic || b.DRAM < m.DRAMStatic {
		t.Fatalf("power must not fall below static floor: %+v", b)
	}
}
