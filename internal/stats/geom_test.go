package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(hull), hull)
	}
	if a := PolygonArea(hull); math.Abs(a-1) > 1e-12 {
		t.Fatalf("hull area %v, want 1", a)
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	hull := ConvexHull(pts)
	if PolygonArea(hull) != 0 {
		t.Fatalf("collinear points must have zero hull area")
	}
}

func TestConvexHullDuplicates(t *testing.T) {
	pts := []Point{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}}
	hull := ConvexHull(pts)
	if len(hull) != 3 {
		t.Fatalf("hull has %d vertices, want 3", len(hull))
	}
}

func TestConvexHullSmallInputs(t *testing.T) {
	if h := ConvexHull(nil); len(h) != 0 {
		t.Fatal("empty input should give empty hull")
	}
	if h := ConvexHull([]Point{{1, 2}}); len(h) != 1 {
		t.Fatal("single point hull")
	}
	if h := ConvexHull([]Point{{1, 2}, {3, 4}}); len(h) != 2 {
		t.Fatal("two point hull")
	}
}

func TestPolygonAreaTriangle(t *testing.T) {
	tri := []Point{{0, 0}, {4, 0}, {0, 3}}
	if a := PolygonArea(tri); math.Abs(a-6) > 1e-12 {
		t.Fatalf("triangle area %v, want 6", a)
	}
	// Orientation must not matter.
	rev := []Point{{0, 3}, {4, 0}, {0, 0}}
	if a := PolygonArea(rev); math.Abs(a-6) > 1e-12 {
		t.Fatalf("reversed triangle area %v, want 6", a)
	}
}

func TestPointInPolygon(t *testing.T) {
	sq := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{3, 1}, false},
		{Point{-0.1, 1}, false},
		{Point{0, 0}, true}, // vertex
		{Point{1, 0}, true}, // edge
		{Point{2, 2}, true}, // vertex
		{Point{1, 2.1}, false},
	}
	for _, c := range cases {
		if got := PointInPolygon(c.p, sq); got != c.want {
			t.Errorf("PointInPolygon(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestFractionOutside(t *testing.T) {
	ref := []Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	pts := []Point{{0.5, 0.5}, {2, 2}, {0.1, 0.1}, {-1, 0}}
	got := FractionOutside(pts, ref)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FractionOutside = %v, want 0.5", got)
	}
	if FractionOutside(nil, ref) != 0 {
		t.Fatal("empty points should report 0")
	}
}

// Property: every input point lies inside or on the convex hull, and
// hull area never exceeds the bounding-box area.
func TestConvexHullContainsAllProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
			minX = math.Min(minX, pts[i].X)
			maxX = math.Max(maxX, pts[i].X)
			minY = math.Min(minY, pts[i].Y)
			maxY = math.Max(maxY, pts[i].Y)
		}
		hull := ConvexHull(pts)
		for _, p := range pts {
			if !PointInPolygon(p, hull) {
				return false
			}
		}
		return PolygonArea(hull) <= (maxX-minX)*(maxY-minY)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEuclidean(t *testing.T) {
	if d := Euclidean([]float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Euclidean = %v, want 5", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Euclidean([]float64{1}, []float64{1, 2})
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{5}); math.Abs(g-5) > 1e-12 {
		t.Fatalf("GeoMean(5) = %v, want 5", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) should be 0")
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Fatal("GeoMean with non-positive input should be NaN")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}
