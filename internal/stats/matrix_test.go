package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	NewMatrix(-1, 2)
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1)=%v, want 6", m.At(2, 1))
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestMatrixFromRowsEmpty(t *testing.T) {
	m, err := MatrixFromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("got %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestMatrixSetGetRowCol(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2)=%v", m.At(1, 2))
	}
	m.SetRow(0, []float64{1, 2, 3})
	row := m.Row(0)
	if row[0] != 1 || row[1] != 2 || row[2] != 3 {
		t.Fatalf("Row(0)=%v", row)
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 7.5 {
		t.Fatalf("Col(2)=%v", col)
	}
	// Row returns a copy: mutating it must not affect the matrix.
	row[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !c.Equal(want, 1e-12) {
		t.Fatalf("Mul = %+v", c)
	}
}

func TestMatrixMulShapeError(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestColumnMeansAndStddevs(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 10}, {2, 20}, {3, 30}})
	means, err := m.ColumnMeans()
	if err != nil {
		t.Fatal(err)
	}
	if means[0] != 2 || means[1] != 20 {
		t.Fatalf("means=%v", means)
	}
	sds, err := m.ColumnStddevs()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sds[0]-1) > 1e-12 || math.Abs(sds[1]-10) > 1e-12 {
		t.Fatalf("stddevs=%v", sds)
	}
}

func TestStandardize(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 5, 7}, {2, 5, 9}, {3, 5, 11}})
	z, err := m.Standardize()
	if err != nil {
		t.Fatal(err)
	}
	means, _ := z.ColumnMeans()
	sds, _ := z.ColumnStddevs()
	for j := 0; j < 3; j++ {
		if math.Abs(means[j]) > 1e-12 {
			t.Fatalf("column %d mean %v, want 0", j, means[j])
		}
	}
	if math.Abs(sds[0]-1) > 1e-12 || math.Abs(sds[2]-1) > 1e-12 {
		t.Fatalf("stddevs=%v, want 1 for varying columns", sds)
	}
	// Constant column standardizes to zeros, not NaN.
	for i := 0; i < 3; i++ {
		if z.At(i, 1) != 0 {
			t.Fatalf("constant column should standardize to 0, got %v", z.At(i, 1))
		}
	}
}

func TestCovarianceKnown(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov, err := m.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	// var(x)=1, var(y)=4, cov=2 for y=2x.
	want, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if !cov.Equal(want, 1e-12) {
		t.Fatalf("cov=%+v", cov)
	}
}

func TestCorrelationPerfect(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, -1}, {2, 4, -2}, {3, 6, -3}, {4, 8, -4}})
	corr, err := m.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(corr.At(0, 1)-1) > 1e-12 {
		t.Fatalf("corr(x,2x)=%v, want 1", corr.At(0, 1))
	}
	if math.Abs(corr.At(0, 2)+1) > 1e-12 {
		t.Fatalf("corr(x,-x)=%v, want -1", corr.At(0, 2))
	}
	for i := 0; i < 3; i++ {
		if corr.At(i, i) != 1 {
			t.Fatalf("diagonal must be 1")
		}
	}
}

func TestCorrelationConstantColumn(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 7}, {2, 7}, {3, 7}})
	corr, err := m.Correlation()
	if err != nil {
		t.Fatal(err)
	}
	if corr.At(0, 1) != 0 || corr.At(1, 1) != 1 {
		t.Fatalf("constant-column correlation handling wrong: %+v", corr)
	}
}

func TestCovarianceNeedsTwoRows(t *testing.T) {
	m := NewMatrix(1, 3)
	if _, err := m.Covariance(); err == nil {
		t.Fatal("expected error for single-row covariance")
	}
}

// Property: covariance matrix is symmetric and has non-negative diagonal.
func TestCovarianceSymmetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(10)
		cols := 1 + rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64()*10)
			}
		}
		cov, err := m.Covariance()
		if err != nil {
			return false
		}
		for a := 0; a < cols; a++ {
			if cov.At(a, a) < 0 {
				return false
			}
			for b := 0; b < cols; b++ {
				if math.Abs(cov.At(a, b)-cov.At(b, a)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: correlations are within [-1, 1].
func TestCorrelationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 3 + rng.Intn(12)
		cols := 2 + rng.Intn(5)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.Float64()*100-50)
			}
		}
		corr, err := m.Correlation()
		if err != nil {
			return false
		}
		for a := 0; a < cols; a++ {
			for b := 0; b < cols; b++ {
				v := corr.At(a, b)
				if v < -1-1e-9 || v > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixClone(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must be independent of the original")
	}
}

func TestMatrixEqual(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}})
	b, _ := MatrixFromRows([][]float64{{1, 2.0000001}})
	if !a.Equal(b, 1e-5) {
		t.Fatal("matrices should be equal within tolerance")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("matrices should differ at tight tolerance")
	}
	c := NewMatrix(2, 1)
	if a.Equal(c, 1) {
		t.Fatal("different shapes must not be equal")
	}
}
