package stats

import (
	"math"
	"sort"
)

// Point is a point in the two-dimensional PC plane.
type Point struct {
	X, Y float64
}

// ConvexHull returns the convex hull of pts in counter-clockwise order
// using Andrew's monotone chain algorithm. Collinear points on the
// hull boundary are dropped. Degenerate inputs (fewer than 3 distinct
// points, or all collinear) return the reduced point set.
func ConvexHull(pts []Point) []Point {
	if len(pts) <= 2 {
		out := make([]Point, len(pts))
		copy(out, pts)
		return out
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		last := uniq[len(uniq)-1]
		if p != last {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) <= 2 {
		return ps
	}

	cross := func(o, a, b Point) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	var hull []Point
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(ps) - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// PolygonArea returns the area of a simple polygon given its vertices
// in order (either orientation); the result is always non-negative.
func PolygonArea(poly []Point) float64 {
	if len(poly) < 3 {
		return 0
	}
	sum := 0.0
	for i, p := range poly {
		q := poly[(i+1)%len(poly)]
		sum += p.X*q.Y - q.X*p.Y
	}
	return math.Abs(sum) / 2
}

// PointInPolygon reports whether p lies inside (or on the boundary of)
// the simple polygon poly, using the ray-crossing method with an
// explicit boundary check.
func PointInPolygon(p Point, poly []Point) bool {
	n := len(poly)
	if n == 0 {
		return false
	}
	if n == 1 {
		return p == poly[0]
	}
	const eps = 1e-12
	// Boundary check: p on segment (a,b)?
	onSeg := func(a, b Point) bool {
		cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
		if math.Abs(cross) > eps*(1+math.Abs(b.X-a.X)+math.Abs(b.Y-a.Y)) {
			return false
		}
		dot := (p.X-a.X)*(b.X-a.X) + (p.Y-a.Y)*(b.Y-a.Y)
		if dot < -eps {
			return false
		}
		sq := (b.X-a.X)*(b.X-a.X) + (b.Y-a.Y)*(b.Y-a.Y)
		return dot <= sq+eps
	}
	inside := false
	for i := 0; i < n; i++ {
		a, b := poly[i], poly[(i+1)%n]
		if onSeg(a, b) {
			return true
		}
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xint := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < xint {
				inside = !inside
			}
		}
	}
	return inside
}

// HullArea is shorthand for PolygonArea(ConvexHull(pts)).
func HullArea(pts []Point) float64 {
	return PolygonArea(ConvexHull(pts))
}

// FractionOutside returns the fraction of pts that fall strictly
// outside the convex hull of ref. It implements the paper's
// "more than 25% of the CPU2017 benchmarks fall outside the space
// covered by the CPU2006 programs" measurement.
func FractionOutside(pts, ref []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	hull := ConvexHull(ref)
	out := 0
	for _, p := range pts {
		if !PointInPolygon(p, hull) {
			out++
		}
	}
	return float64(out) / float64(len(pts))
}

// Euclidean returns the Euclidean distance between two equal-length
// vectors. It panics on length mismatch: distance between vectors from
// different spaces is a programming error.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Euclidean distance between vectors of different lengths")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// GeoMean returns the geometric mean of xs. All inputs must be
// positive; SPEC-style scores always are.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
