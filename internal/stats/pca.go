package stats

import (
	"fmt"
	"math"
)

// PCA holds the result of a principal component analysis: the
// per-component eigenvalues (variances), the loading vectors, the
// projected scores of the input observations, and bookkeeping needed
// to interpret and reduce the transformed space.
type PCA struct {
	// Eigenvalues of the correlation (or covariance) matrix, in
	// descending order. For correlation-based PCA their sum equals the
	// number of non-constant input variables.
	Eigenvalues []float64

	// Loadings[k][j] is the weight of original variable j in principal
	// component k (the a_kj of Equation 1 in the paper).
	Loadings [][]float64

	// Scores[i][k] is observation i projected onto component k.
	Scores [][]float64

	// VarExplained[k] is the fraction of total variance captured by
	// component k; CumVarExplained[k] is the running sum.
	VarExplained    []float64
	CumVarExplained []float64

	// Centered data statistics, kept so new observations can be
	// projected consistently with the fit.
	means, scales []float64
	correlation   bool
}

// PCAOptions configures FitPCA.
type PCAOptions struct {
	// Covariance selects covariance-based PCA instead of the default
	// correlation-based (standardized) PCA. The paper standardizes all
	// metrics, so correlation PCA is the default.
	Covariance bool
}

// FitPCA performs principal component analysis on the observations in
// the rows of x (rows = programs, columns = metrics). It follows the
// paper's methodology: standardize each metric to zero mean / unit
// variance, eigendecompose the correlation matrix, and order
// components by decreasing variance.
func FitPCA(x *Matrix, opts PCAOptions) (*PCA, error) {
	if x.Rows() < 2 {
		return nil, fmt.Errorf("stats: PCA needs at least 2 observations, have %d", x.Rows())
	}
	if x.Cols() == 0 {
		return nil, ErrEmptyMatrix
	}

	means, err := x.ColumnMeans()
	if err != nil {
		return nil, err
	}
	allSDs, err := x.ColumnStddevs()
	if err != nil {
		return nil, err
	}
	anyVariance := false
	for _, sd := range allSDs {
		if sd > 0 {
			anyVariance = true
			break
		}
	}
	if !anyVariance {
		return nil, fmt.Errorf("stats: PCA input has no variance")
	}
	scales := make([]float64, x.Cols())
	var sym *Matrix
	if opts.Covariance {
		for j := range scales {
			scales[j] = 1
		}
		sym, err = x.Covariance()
	} else {
		copy(scales, allSDs)
		sym, err = x.Correlation()
	}
	if err != nil {
		return nil, err
	}

	vals, vecs, err := EigenSym(sym)
	if err != nil {
		return nil, err
	}
	// Numerical noise can make tiny eigenvalues slightly negative;
	// clamp so variance fractions stay sane.
	total := 0.0
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
			v = 0
		}
		total += v
	}
	if total == 0 {
		return nil, fmt.Errorf("stats: PCA input has no variance")
	}

	p := &PCA{
		Eigenvalues:     vals,
		Loadings:        vecs,
		VarExplained:    make([]float64, len(vals)),
		CumVarExplained: make([]float64, len(vals)),
		means:           means,
		scales:          scales,
		correlation:     !opts.Covariance,
	}
	run := 0.0
	for i, v := range vals {
		p.VarExplained[i] = v / total
		run += v / total
		p.CumVarExplained[i] = run
	}

	p.Scores = make([][]float64, x.Rows())
	for i := 0; i < x.Rows(); i++ {
		p.Scores[i] = p.Project(x.Row(i))
	}
	return p, nil
}

// Project maps a raw observation (in original metric units) into the
// full PC space of the fit.
func (p *PCA) Project(obs []float64) []float64 {
	if len(obs) != len(p.means) {
		panic(fmt.Sprintf("stats: Project observation length %d, want %d", len(obs), len(p.means)))
	}
	z := make([]float64, len(obs))
	for j, v := range obs {
		s := p.scales[j]
		if p.correlation && s == 0 {
			z[j] = 0
			continue
		}
		if !p.correlation {
			s = 1
		}
		z[j] = (v - p.means[j]) / s
	}
	out := make([]float64, len(p.Loadings))
	for k, load := range p.Loadings {
		sum := 0.0
		for j, w := range load {
			sum += w * z[j]
		}
		out[k] = sum
	}
	return out
}

// KaiserComponents returns the number of leading components with
// eigenvalue >= 1 (the Kaiser criterion used throughout the paper).
// At least one component is always retained.
func (p *PCA) KaiserComponents() int {
	k := 0
	for _, v := range p.Eigenvalues {
		if v >= 1 {
			k++
		}
	}
	if k == 0 {
		k = 1
	}
	return k
}

// ComponentsForVariance returns the smallest number of leading
// components whose cumulative variance fraction reaches frac
// (0 < frac <= 1).
func (p *PCA) ComponentsForVariance(frac float64) int {
	for i, c := range p.CumVarExplained {
		if c >= frac {
			return i + 1
		}
	}
	return len(p.CumVarExplained)
}

// ReducedScores returns the scores truncated to the first k components,
// each scaled by the square root of its eigenvalue if weight is true.
// Weighting by sqrt(eigenvalue) makes Euclidean distance in the reduced
// space reflect each component's share of variance, matching common
// practice in benchmark-similarity studies.
func (p *PCA) ReducedScores(k int, weight bool) [][]float64 {
	if k <= 0 || k > len(p.Eigenvalues) {
		panic(fmt.Sprintf("stats: ReducedScores k=%d out of range [1,%d]", k, len(p.Eigenvalues)))
	}
	out := make([][]float64, len(p.Scores))
	for i, s := range p.Scores {
		row := make([]float64, k)
		copy(row, s[:k])
		if weight {
			for c := 0; c < k; c++ {
				row[c] *= math.Sqrt(p.Eigenvalues[c] / p.Eigenvalues[0])
			}
		}
		out[i] = row
	}
	return out
}

// DominantVariables returns the indices of the n variables with the
// largest absolute loading in component k, most dominant first. It is
// used to label scatter-plot axes ("PC2 is dominated by branch
// mispredictions per kilo instruction").
func (p *PCA) DominantVariables(k, n int) []int {
	if k < 0 || k >= len(p.Loadings) {
		panic(fmt.Sprintf("stats: DominantVariables component %d out of range", k))
	}
	load := p.Loadings[k]
	idx := make([]int, len(load))
	for i := range idx {
		idx[i] = i
	}
	// Selection of the top n by |loading| — n is tiny, simple sort is fine.
	for a := 0; a < len(idx); a++ {
		for b := a + 1; b < len(idx); b++ {
			if math.Abs(load[idx[b]]) > math.Abs(load[idx[a]]) {
				idx[a], idx[b] = idx[b], idx[a]
			}
		}
	}
	if n > len(idx) {
		n = len(idx)
	}
	return idx[:n]
}
