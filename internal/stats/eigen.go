package stats

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes all eigenvalues and eigenvectors of a symmetric
// matrix using the cyclic Jacobi rotation method. The returned
// eigenvalues are sorted in descending order and vectors[i] is the
// (unit-length) eigenvector for values[i]. Each eigenvector's sign is
// normalized so that its largest-magnitude component is positive,
// making results deterministic across runs.
//
// Jacobi is O(n^3) per sweep but unconditionally stable, exact enough
// for correlation matrices of a few hundred metrics, and requires no
// external dependencies — the right trade-off for this library.
func EigenSym(a *Matrix) (values []float64, vectors [][]float64, err error) {
	n := a.rows
	if n != a.cols {
		return nil, nil, fmt.Errorf("stats: EigenSym requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	if n == 0 {
		return nil, nil, ErrEmptyMatrix
	}
	const symTol = 1e-8
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > symTol*(1+math.Abs(a.At(i, j))) {
				return nil, nil, fmt.Errorf("stats: EigenSym requires a symmetric matrix (a[%d][%d]=%g, a[%d][%d]=%g)",
					i, j, a.At(i, j), j, i, a.At(j, i))
			}
		}
	}

	// Work on a copy; build up the accumulated rotation matrix V.
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const (
		maxSweeps = 100
		eps       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < eps/float64(n*n) {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation J(p,q,theta): W = Jᵀ W J.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	values = make([]float64, n)
	vectors = make([][]float64, n)
	for r, p := range pairs {
		values[r] = p.val
		vec := v.Col(p.idx)
		normalizeSign(vec)
		vectors[r] = vec
	}
	return values, vectors, nil
}

// normalizeSign flips vec in place so its largest-magnitude component
// is positive. Eigenvectors are defined only up to sign; fixing the
// sign makes downstream output (PC scores, scatter plots) stable.
func normalizeSign(vec []float64) {
	maxAbs, maxIdx := 0.0, 0
	for i, x := range vec {
		if a := math.Abs(x); a > maxAbs {
			maxAbs, maxIdx = a, i
		}
	}
	if vec[maxIdx] < 0 {
		for i := range vec {
			vec[i] = -vec[i]
		}
	}
}
