// Package stats provides the dense linear algebra and multivariate
// statistics used by the similarity-analysis pipeline: matrices,
// standardization, covariance/correlation, principal component analysis
// via Jacobi eigendecomposition, and the planar geometry used for
// workload-space coverage analysis.
//
// The package is self-contained (standard library only) and fully
// deterministic: identical inputs always produce identical outputs,
// including eigenvector sign conventions.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
// The zero Matrix is empty and must be initialized with NewMatrix
// or built from rows before use.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
// It panics if either dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from a slice of equal-length rows.
// The data is copied; the caller retains ownership of rows.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("stats: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("stats: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("stats: column %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i. len(v) must equal Cols.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("stats: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m × b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("stats: cannot multiply %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*b.cols : (i+1)*b.cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out, nil
}

// ErrEmptyMatrix is returned by statistics that require at least one
// row or column.
var ErrEmptyMatrix = errors.New("stats: empty matrix")

// ColumnMeans returns the per-column means.
func (m *Matrix) ColumnMeans() ([]float64, error) {
	if m.rows == 0 || m.cols == 0 {
		return nil, ErrEmptyMatrix
	}
	means := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			means[j] += m.data[i*m.cols+j]
		}
	}
	for j := range means {
		means[j] /= float64(m.rows)
	}
	return means, nil
}

// ColumnStddevs returns the per-column sample standard deviations
// (divisor n-1). Columns with zero variance report 0.
func (m *Matrix) ColumnStddevs() ([]float64, error) {
	means, err := m.ColumnMeans()
	if err != nil {
		return nil, err
	}
	sds := make([]float64, m.cols)
	if m.rows < 2 {
		return sds, nil
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			d := m.data[i*m.cols+j] - means[j]
			sds[j] += d * d
		}
	}
	for j := range sds {
		sds[j] = math.Sqrt(sds[j] / float64(m.rows-1))
	}
	return sds, nil
}

// Standardize returns a new matrix with each column z-scored:
// (x - mean) / stddev. Columns with zero variance become all zeros
// rather than NaN, so constant metrics are harmless to PCA.
func (m *Matrix) Standardize() (*Matrix, error) {
	means, err := m.ColumnMeans()
	if err != nil {
		return nil, err
	}
	sds, err := m.ColumnStddevs()
	if err != nil {
		return nil, err
	}
	out := NewMatrix(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			sd := sds[j]
			if sd == 0 {
				out.data[i*m.cols+j] = 0
				continue
			}
			out.data[i*m.cols+j] = (m.data[i*m.cols+j] - means[j]) / sd
		}
	}
	return out, nil
}

// Covariance returns the sample covariance matrix (cols×cols) of the
// observations held in the rows of m.
func (m *Matrix) Covariance() (*Matrix, error) {
	if m.rows < 2 {
		return nil, fmt.Errorf("stats: covariance needs at least 2 rows, have %d", m.rows)
	}
	means, err := m.ColumnMeans()
	if err != nil {
		return nil, err
	}
	cov := NewMatrix(m.cols, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for a := 0; a < m.cols; a++ {
			da := row[a] - means[a]
			if da == 0 {
				continue
			}
			for b := a; b < m.cols; b++ {
				cov.data[a*m.cols+b] += da * (row[b] - means[b])
			}
		}
	}
	n1 := float64(m.rows - 1)
	for a := 0; a < m.cols; a++ {
		for b := a; b < m.cols; b++ {
			v := cov.data[a*m.cols+b] / n1
			cov.data[a*m.cols+b] = v
			cov.data[b*m.cols+a] = v
		}
	}
	return cov, nil
}

// Correlation returns the Pearson correlation matrix (cols×cols).
// Pairs involving a zero-variance column are reported as 0 correlation
// (and 1 on the diagonal).
func (m *Matrix) Correlation() (*Matrix, error) {
	cov, err := m.Covariance()
	if err != nil {
		return nil, err
	}
	n := m.cols
	corr := NewMatrix(n, n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			va := cov.data[a*n+a]
			vb := cov.data[b*n+b]
			switch {
			case a == b:
				corr.data[a*n+b] = 1
			case va <= 0 || vb <= 0:
				corr.data[a*n+b] = 0
			default:
				corr.data[a*n+b] = cov.data[a*n+b] / math.Sqrt(va*vb)
			}
		}
	}
	return corr, nil
}

// Equal reports whether two matrices have the same shape and all
// elements within tol of each other.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}
