package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// correlatedData builds n observations of 3 variables where x2 = 2*x0
// (perfectly correlated) and x1 is independent noise.
func correlatedData(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, 3)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		m.Set(i, 0, x)
		m.Set(i, 1, rng.NormFloat64())
		m.Set(i, 2, 2*x)
	}
	return m
}

func TestFitPCACorrelatedVariables(t *testing.T) {
	m := correlatedData(200, 1)
	p, err := FitPCA(m, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Perfectly correlated pair collapses: eigenvalues ≈ {2, 1, 0}.
	if math.Abs(p.Eigenvalues[0]-2) > 0.15 {
		t.Fatalf("first eigenvalue %v, want ≈2", p.Eigenvalues[0])
	}
	if p.Eigenvalues[2] > 0.05 {
		t.Fatalf("last eigenvalue %v, want ≈0", p.Eigenvalues[2])
	}
	// The independent variable's sample eigenvalue fluctuates around 1,
	// so Kaiser retains either 1 or 2 components here — never all 3.
	if k := p.KaiserComponents(); k < 1 || k > 2 {
		t.Fatalf("Kaiser retained %d components, want 1 or 2", k)
	}
}

func TestFitPCAVarianceFractions(t *testing.T) {
	m := correlatedData(100, 2)
	p, err := FitPCA(m, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range p.VarExplained {
		if f < 0 {
			t.Fatalf("negative variance fraction %v", f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("variance fractions sum to %v, want 1", sum)
	}
	last := p.CumVarExplained[len(p.CumVarExplained)-1]
	if math.Abs(last-1) > 1e-9 {
		t.Fatalf("cumulative variance ends at %v, want 1", last)
	}
	if p.ComponentsForVariance(0.90) > 2 {
		t.Fatalf("90%% variance should need ≤2 components, got %d", p.ComponentsForVariance(0.90))
	}
}

func TestFitPCAScoresMatchProject(t *testing.T) {
	m := correlatedData(50, 3)
	p, err := FitPCA(m, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Rows(); i++ {
		proj := p.Project(m.Row(i))
		for k := range proj {
			if math.Abs(proj[k]-p.Scores[i][k]) > 1e-9 {
				t.Fatalf("score/projection mismatch row %d comp %d", i, k)
			}
		}
	}
}

func TestFitPCATooFewRows(t *testing.T) {
	m := NewMatrix(1, 5)
	if _, err := FitPCA(m, PCAOptions{}); err == nil {
		t.Fatal("expected error for a single observation")
	}
}

func TestFitPCANoVariance(t *testing.T) {
	m := NewMatrix(4, 3) // all zeros
	if _, err := FitPCA(m, PCAOptions{}); err == nil {
		t.Fatal("expected error for zero-variance data")
	}
}

func TestFitPCAConstantColumnTolerated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMatrix(30, 3)
	for i := 0; i < 30; i++ {
		m.Set(i, 0, rng.NormFloat64())
		m.Set(i, 1, 42) // constant metric
		m.Set(i, 2, rng.NormFloat64())
	}
	p, err := FitPCA(m, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Scores {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("scores must stay finite with constant columns")
			}
		}
	}
}

func TestFitPCACovarianceMode(t *testing.T) {
	// In covariance mode a high-variance variable dominates PC1.
	rng := rand.New(rand.NewSource(5))
	m := NewMatrix(100, 2)
	for i := 0; i < 100; i++ {
		m.Set(i, 0, rng.NormFloat64()*100)
		m.Set(i, 1, rng.NormFloat64())
	}
	p, err := FitPCA(m, PCAOptions{Covariance: true})
	if err != nil {
		t.Fatal(err)
	}
	dom := p.DominantVariables(0, 1)
	if dom[0] != 0 {
		t.Fatalf("covariance PCA PC1 dominated by variable %d, want 0", dom[0])
	}
}

func TestReducedScoresShapeAndWeighting(t *testing.T) {
	m := correlatedData(40, 6)
	p, err := FitPCA(m, PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rs := p.ReducedScores(2, false)
	if len(rs) != 40 || len(rs[0]) != 2 {
		t.Fatalf("ReducedScores shape %dx%d, want 40x2", len(rs), len(rs[0]))
	}
	w := p.ReducedScores(2, true)
	// First component weight is 1; second is scaled down by sqrt(λ2/λ1).
	ratio := math.Sqrt(p.Eigenvalues[1] / p.Eigenvalues[0])
	for i := range w {
		if math.Abs(w[i][0]-rs[i][0]) > 1e-12 {
			t.Fatal("first component must be unscaled")
		}
		if math.Abs(w[i][1]-rs[i][1]*ratio) > 1e-12 {
			t.Fatal("second component scaling wrong")
		}
	}
}

func TestReducedScoresPanicsOutOfRange(t *testing.T) {
	m := correlatedData(10, 7)
	p, _ := FitPCA(m, PCAOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	p.ReducedScores(0, false)
}

func TestKaiserAtLeastOne(t *testing.T) {
	// Two perfectly anti-correlated variables: eigenvalues {2, 0};
	// Kaiser must still retain at least one component. Build a case
	// where all eigenvalues < 1 is impossible for correlation PCA
	// (they sum to #vars), so test the guard directly.
	p := &PCA{Eigenvalues: []float64{0.9, 0.6, 0.5}}
	if p.KaiserComponents() != 1 {
		t.Fatalf("KaiserComponents = %d, want 1 (floor)", p.KaiserComponents())
	}
}

// Property: total variance of correlation-based PCA equals the number
// of non-constant variables, and scores have near-zero mean.
func TestPCAInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 10 + rng.Intn(40)
		cols := 2 + rng.Intn(5)
		m := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64()*float64(j+1))
			}
		}
		p, err := FitPCA(m, PCAOptions{})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range p.Eigenvalues {
			sum += v
		}
		if math.Abs(sum-float64(cols)) > 1e-6 {
			return false
		}
		for k := 0; k < cols; k++ {
			mean := 0.0
			for i := 0; i < rows; i++ {
				mean += p.Scores[i][k]
			}
			mean /= float64(rows)
			if math.Abs(mean) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDominantVariables(t *testing.T) {
	p := &PCA{Loadings: [][]float64{{0.1, -0.9, 0.3}}}
	dom := p.DominantVariables(0, 2)
	if dom[0] != 1 || dom[1] != 2 {
		t.Fatalf("DominantVariables = %v, want [1 2]", dom)
	}
}
