package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigenSymDiagonal(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{
		{3, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range want {
		if math.Abs(vals[i]-v) > 1e-10 {
			t.Fatalf("eigenvalue %d = %v, want %v", i, vals[i], v)
		}
	}
	// Eigenvectors of a diagonal matrix are the standard basis vectors.
	wantVecs := [][]float64{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}}
	for i, wv := range wantVecs {
		for j := range wv {
			if math.Abs(vecs[i][j]-wv[j]) > 1e-8 {
				t.Fatalf("eigenvector %d = %v, want %v", i, vecs[i], wv)
			}
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
	a, _ := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	s := 1 / math.Sqrt(2)
	if math.Abs(vecs[0][0]-s) > 1e-8 || math.Abs(vecs[0][1]-s) > 1e-8 {
		t.Fatalf("first eigenvector %v, want [%v %v]", vecs[0], s, s)
	}
}

func TestEigenSymRejectsNonSquare(t *testing.T) {
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 1}})
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

func TestEigenSymEmpty(t *testing.T) {
	if _, _, err := EigenSym(NewMatrix(0, 0)); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// Property: A·v = λ·v for every eigenpair of a random symmetric matrix.
func TestEigenSymResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSymmetric(rng, n)
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				av := 0.0
				for j := 0; j < n; j++ {
					av += a.At(i, j) * vecs[k][j]
				}
				if math.Abs(av-vals[k]*vecs[k][i]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: eigenvalue sum equals trace, eigenvectors are orthonormal,
// and values are sorted descending.
func TestEigenSymInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSymmetric(rng, n)
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if math.Abs(sum-trace) > 1e-8*(1+math.Abs(trace)) {
			return false
		}
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				return false
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				dot := 0.0
				for k := 0; k < n; k++ {
					dot += vecs[i][k] * vecs[j][k]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymSignConvention(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	_, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range vecs {
		maxAbs, maxIdx := 0.0, 0
		for i, x := range v {
			if math.Abs(x) > maxAbs {
				maxAbs, maxIdx = math.Abs(x), i
			}
		}
		if v[maxIdx] < 0 {
			t.Fatalf("eigenvector %d violates sign convention: %v", k, v)
		}
	}
}
