// Package telemetry is the dependency-free observability layer of the
// reproduction: request tracing and structured logging, threaded
// through the measurement pipeline via context.Context so the server,
// the experiment lab, the scheduler, and the store all emit spans
// without importing each other.
//
// Model:
//
//   - A Tracer owns a bounded in-memory ring of finished traces and a
//     stage-latency histogram (spec17_stage_duration_seconds{stage=...})
//     in the caller's metrics registry.
//   - StartTrace opens a root span (one per request, honoring an
//     inbound X-Request-Id) and attaches it to the context.
//   - StartSpan opens a child of whatever span the context carries;
//     with no span in the context it is a no-op that allocates
//     nothing, so instrumented hot paths cost nothing when tracing is
//     disabled.
//   - Span.Record attaches an already-measured child (e.g. the
//     scheduler's queueing wait, measured outside any context scope).
//   - Ending a root span finishes the trace: it is snapshotted into
//     the ring (served by GET /v1/traces), its stages land in the
//     histogram, and traces slower than the configured threshold are
//     logged in full.
//
// All methods are nil-safe: a nil *Tracer never traces, a nil *Span
// ignores End/SetAttr/Record, so call sites need no enabled-checks.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/metrics"
)

// StageBuckets are the histogram bounds for per-stage durations, in
// seconds. Stages span six orders of magnitude — a store hit is
// microseconds, a cold fleet characterization is seconds — so the
// buckets start far below DefBuckets.
var StageBuckets = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, .01, .05, .1, .25, .5, 1, 2.5, 5, 10, 30,
}

// maxSpansPerTrace bounds one trace's span tree. A full /v1/report at
// high fidelity emits several hundred spans (43 workloads × 7 machines
// plus analysis stages); the cap keeps a pathological request from
// growing a trace without bound. Spans beyond the cap are counted
// (TraceData.DroppedSpans) but not retained.
const maxSpansPerTrace = 4096

// TracerConfig configures a Tracer. The zero value is usable.
type TracerConfig struct {
	// Capacity bounds the finished-trace ring. Defaults to 256.
	Capacity int
	// SlowThreshold, when positive, logs every trace whose root span
	// exceeds it — the full span tree as one structured log line.
	SlowThreshold time.Duration
	// Metrics receives the spec17_stage_duration_seconds histogram.
	// Nil uses a private registry.
	Metrics *metrics.Registry
	// Log receives slow-trace lines. Nil logs nothing.
	Log *Logger
	// OnSlow, when set alongside a positive SlowThreshold, receives
	// every finished trace that crossed the threshold (after it has
	// been snapshotted into the ring). The insight plane hooks this to
	// turn slow traces into typed operator events; the callback runs on
	// the request goroutine, so it must be cheap and must not block.
	OnSlow func(*TraceData)
}

// Tracer records traces into a bounded ring. Create with NewTracer; a
// nil *Tracer is a valid always-disabled tracer.
type Tracer struct {
	cfg   TracerConfig
	stage *metrics.HistogramVec

	mu       sync.Mutex
	ring     []*TraceData // newest at (next-1+len)%len once full
	next     int
	finished uint64
}

// NewTracer returns a Tracer recording finished traces into a ring of
// cfg.Capacity entries.
func NewTracer(cfg TracerConfig) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Tracer{
		cfg: cfg,
		stage: cfg.Metrics.HistogramVec("spec17_stage_duration_seconds",
			"Span durations by pipeline stage (span name).",
			StageBuckets, "stage"),
	}
}

// Capacity returns the ring size (0 for a nil tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.cfg.Capacity
}

// SlowThreshold returns the slow-trace logging threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowThreshold
}

// Finished returns how many traces have completed since start.
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.finished
}

// Buffered returns how many finished traces the ring currently holds.
func (t *Tracer) Buffered() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// trace is one in-progress trace: the identity shared by its spans.
type trace struct {
	id     string
	tracer *Tracer
	root   *Span

	mu      sync.Mutex
	spans   int
	dropped int
}

// Span is one timed stage of a trace. A nil *Span ignores every
// method, so disabled tracing needs no call-site checks.
type Span struct {
	t     *trace
	name  string
	start time.Time

	mu       sync.Mutex
	attrs    []string // alternating key, value
	children []*Span
	end      time.Time
	ended    bool
}

type spanKey struct{}

// FromContext returns the span the context carries, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithSpan attaches s to the context. It is how detached contexts —
// singleflight and scheduler job contexts, which outlive any one
// caller — inherit the trace of the request that created the work. A
// nil span returns ctx unchanged.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// StartTrace opens a new trace rooted at a span named name and returns
// the span-carrying context. id is the caller-supplied trace id (an
// inbound X-Request-Id); invalid or empty ids are replaced by a
// generated one. On a nil tracer it returns (ctx, nil).
func (t *Tracer) StartTrace(ctx context.Context, name, id string, attrs ...string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if id = sanitizeID(id); id == "" {
		id = newID()
	}
	tr := &trace{id: id, tracer: t, spans: 1}
	s := &Span{t: tr, name: name, start: time.Now(), attrs: attrs}
	tr.root = s
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpan opens a child of the context's current span and returns
// the child-carrying context. With no span in the context (tracing
// disabled, or an untraced call path) it returns (ctx, nil) without
// allocating.
func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.newChild(name, time.Now(), attrs)
	if s == nil {
		return ctx, nil // span cap reached; keep the parent scope
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// newChild allocates and links a child span, honoring the per-trace
// span cap. Returns nil when the cap is reached.
func (s *Span) newChild(name string, start time.Time, attrs []string) *Span {
	tr := s.t
	tr.mu.Lock()
	if tr.spans >= maxSpansPerTrace {
		tr.dropped++
		tr.mu.Unlock()
		return nil
	}
	tr.spans++
	tr.mu.Unlock()

	c := &Span{t: tr, name: name, start: start, attrs: attrs}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// TraceID returns the id of the span's trace ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.t.id
}

// SetAttr adds (or appends — last write wins at render time) one
// key=value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, key, value)
	s.mu.Unlock()
}

// Record attaches an already-measured child span — work timed outside
// a context scope, like the scheduler's queue wait between submission
// and dispatch.
func (s *Span) Record(name string, start, end time.Time, attrs ...string) {
	if s == nil {
		return
	}
	c := s.newChild(name, start, attrs)
	if c == nil {
		return
	}
	c.end, c.ended = end, true
	s.t.tracer.observeStage(name, end.Sub(start))
}

// End finishes the span, recording its duration in the stage
// histogram. Ending a trace's root span finishes the trace: the span
// tree is snapshotted into the tracer's ring and, when slower than
// the configured threshold, logged in full. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended, s.end = true, now
	s.mu.Unlock()
	tr := s.t
	tr.tracer.observeStage(s.name, now.Sub(s.start))
	if s == tr.root {
		tr.tracer.finish(tr)
	}
}

func (t *Tracer) observeStage(stage string, d time.Duration) {
	t.stage.With(stage).Observe(d.Seconds())
}

// finish snapshots a completed trace into the ring.
func (t *Tracer) finish(tr *trace) {
	data := tr.snapshot()
	t.mu.Lock()
	if len(t.ring) < t.cfg.Capacity {
		t.ring = append(t.ring, data)
	} else {
		t.ring[t.next] = data
		t.next = (t.next + 1) % t.cfg.Capacity
	}
	t.finished++
	t.mu.Unlock()

	if t.cfg.SlowThreshold > 0 &&
		data.DurationMS >= float64(t.cfg.SlowThreshold)/float64(time.Millisecond) {
		if t.cfg.Log != nil {
			tree, _ := json.Marshal(data)
			t.cfg.Log.Warn("slow trace",
				"trace", data.TraceID,
				"dur_ms", data.DurationMS,
				"spans", countSpans(&data.Root),
				"tree", string(tree))
		}
		if t.cfg.OnSlow != nil {
			t.cfg.OnSlow(data)
		}
	}
}

// SpanData is the immutable rendering of one finished span.
type SpanData struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanData        `json:"children,omitempty"`
}

// TraceData is one finished trace as served by GET /v1/traces.
type TraceData struct {
	TraceID      string    `json:"trace_id"`
	Start        time.Time `json:"start"`
	DurationMS   float64   `json:"duration_ms"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Root         SpanData  `json:"root"`
}

// snapshot renders the trace's span tree. Called once, after the root
// span has ended; children that never ended (a goroutine outliving the
// request) are clamped to the root's end time.
func (tr *trace) snapshot() *TraceData {
	rootEnd := tr.root.end
	data := &TraceData{
		TraceID:      tr.id,
		Start:        tr.root.start,
		DurationMS:   durMS(tr.root.start, rootEnd),
		DroppedSpans: tr.dropped,
		Root:         tr.root.data(rootEnd),
	}
	return data
}

func (s *Span) data(clampEnd time.Time) SpanData {
	s.mu.Lock()
	end := s.end
	if !s.ended {
		end = clampEnd
	}
	d := SpanData{
		Name:       s.name,
		Start:      s.start,
		DurationMS: durMS(s.start, end),
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs)/2)
		for i := 0; i+1 < len(s.attrs); i += 2 {
			d.Attrs[s.attrs[i]] = s.attrs[i+1]
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.data(clampEnd))
	}
	return d
}

func durMS(start, end time.Time) float64 {
	return float64(end.Sub(start)) / float64(time.Millisecond)
}

func countSpans(d *SpanData) int {
	n := 1
	for i := range d.Children {
		n += countSpans(&d.Children[i])
	}
	return n
}

// Filter selects traces from the ring.
type Filter struct {
	// MinDuration keeps only traces at least this long.
	MinDuration time.Duration
	// Experiment keeps only traces where any span carries
	// attrs["experiment"] == Experiment.
	Experiment string
	// Limit bounds the result count (0 = no bound).
	Limit int
}

// Traces returns the ring's finished traces, newest first, filtered.
func (t *Tracer) Traces(f Filter) []*TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	all := make([]*TraceData, 0, len(t.ring))
	// Ring order: oldest at next once full, else index 0. Collect
	// newest-first.
	for i := len(t.ring) - 1; i >= 0; i-- {
		all = append(all, t.ring[(t.next+i)%len(t.ring)])
	}
	t.mu.Unlock()

	out := make([]*TraceData, 0, len(all))
	for _, tr := range all {
		if f.MinDuration > 0 && tr.DurationMS < float64(f.MinDuration)/float64(time.Millisecond) {
			continue
		}
		if f.Experiment != "" && !hasAttr(&tr.Root, "experiment", f.Experiment) {
			continue
		}
		out = append(out, tr)
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

func hasAttr(d *SpanData, key, value string) bool {
	if d.Attrs[key] == value {
		return true
	}
	for i := range d.Children {
		if hasAttr(&d.Children[i], key, value) {
			return true
		}
	}
	return false
}

// newID returns a fresh 16-hex-digit trace id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed
		// id at least keeps tracing functional.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeID validates a caller-supplied trace id: up to 64 characters
// of [A-Za-z0-9._-]. Anything else returns "" (caller generates).
func sanitizeID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}
