package telemetry

import (
	"fmt"
	"io"
	"log"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

// Severities, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "level(" + strconv.Itoa(int(l)) + ")"
}

// ParseLevel parses a level name (debug, info, warn, error).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (valid: debug, info, warn, error)", s)
}

// Logger emits leveled key=value structured log lines:
//
//	time=2026-08-06T12:00:00.000Z level=info msg=serving addr=:8417
//
// Values containing spaces or special characters are quoted. A nil
// *Logger discards everything, so optional logging needs no checks.
// Loggers are safe for concurrent use.
type Logger struct {
	w    io.Writer
	mu   *sync.Mutex // shared by With-derived loggers over one writer
	min  *atomic.Int32
	base []string // alternating key, value, appended to every line
	now  func() time.Time
}

// NewLogger returns a Logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w, mu: &sync.Mutex{}, min: &atomic.Int32{}, now: time.Now}
	l.min.Store(int32(min))
	return l
}

// With returns a logger that appends the given key=value pairs to
// every line — a component tag, a request id. The child shares the
// parent's writer, lock, and level.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	base := append(append([]string(nil), l.base...), pairs(kv)...)
	return &Logger{w: l.w, mu: l.mu, min: l.min, base: base, now: l.now}
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.min.Store(int32(min))
}

// Enabled reports whether lines at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.min.Load()
}

// Debug logs at debug level. kv are alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.Grow(96)
	b.WriteString("time=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(msg))
	for i := 0; i+1 < len(l.base); i += 2 {
		writePair(&b, l.base[i], l.base[i+1])
	}
	ps := pairs(kv)
	for i := 0; i+1 < len(ps); i += 2 {
		writePair(&b, ps[i], ps[i+1])
	}
	b.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func writePair(b *strings.Builder, k, v string) {
	b.WriteByte(' ')
	b.WriteString(k)
	b.WriteByte('=')
	b.WriteString(quoteIfNeeded(v))
}

// pairs renders alternating key, value arguments into strings. A
// trailing key with no value gets "(missing)"; non-string keys are
// rendered with fmt, so a malformed call degrades into a readable line
// instead of a panic.
func pairs(kv []any) []string {
	if len(kv) == 0 {
		return nil
	}
	out := make([]string, 0, len(kv)+1)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, formatValue(kv[i]))
		if i+1 < len(kv) {
			out = append(out, formatValue(kv[i+1]))
		} else {
			out = append(out, "(missing)")
		}
	}
	return out
}

func formatValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		return strconv.FormatBool(x)
	case nil:
		return "<nil>"
	}
	return fmt.Sprint(v)
}

// quoteIfNeeded quotes values that would break key=value parsing:
// empty strings and anything containing spaces, quotes, '=', or
// non-printable characters.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c >= 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}

// Std returns a standard-library logger whose every line is re-emitted
// through l at info level with component=name — the bridge for code
// that still takes a *log.Logger (the measurement store).
func (l *Logger) Std(name string) *log.Logger {
	return log.New(stdWriter{l: l, component: name}, "", 0)
}

type stdWriter struct {
	l         *Logger
	component string
}

func (w stdWriter) Write(p []byte) (int, error) {
	w.l.Info(strings.TrimRight(string(p), "\n"), "component", w.component)
	return len(p), nil
}
