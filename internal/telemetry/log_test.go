package telemetry

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fixedNow pins the logger clock for deterministic lines.
func fixedNow() time.Time {
	return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
}

func testLogger(min Level) (*Logger, *strings.Builder) {
	var b strings.Builder
	l := NewLogger(&b, min)
	l.now = fixedNow
	return l, &b
}

func TestLogFormat(t *testing.T) {
	l, b := testLogger(LevelDebug)
	l.Info("serving", "addr", ":8417", "workers", 2)
	got := b.String()
	want := `time=2026-08-06T12:00:00.000Z level=info msg=serving addr=:8417 workers=2` + "\n"
	if got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestLogQuoting(t *testing.T) {
	l, b := testLogger(LevelDebug)
	l.Warn("bad thing happened", "err", errors.New(`parse "x": fail`), "empty", "")
	got := b.String()
	for _, want := range []string{
		`msg="bad thing happened"`,
		`err="parse \"x\": fail"`,
		`empty=""`,
		"level=warn",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
}

func TestLogLevels(t *testing.T) {
	l, b := testLogger(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	got := b.String()
	if strings.Contains(got, "level=debug") || strings.Contains(got, "level=info") {
		t.Errorf("below-threshold lines emitted:\n%s", got)
	}
	if !strings.Contains(got, "level=warn") || !strings.Contains(got, "level=error") {
		t.Errorf("at-threshold lines missing:\n%s", got)
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(b.String(), "now visible") {
		t.Error("SetLevel did not lower the threshold")
	}
}

func TestLogWith(t *testing.T) {
	l, b := testLogger(LevelInfo)
	child := l.With("component", "store")
	child.Info("loaded", "records", 7)
	got := b.String()
	if !strings.Contains(got, "component=store") || !strings.Contains(got, "records=7") {
		t.Errorf("With attrs missing: %q", got)
	}
}

func TestLogValueKinds(t *testing.T) {
	l, b := testLogger(LevelInfo)
	l.Info("kinds",
		"dur", 1500*time.Millisecond,
		"f", 0.25,
		"b", true,
		"n", nil,
		"odd") // trailing key without value
	got := b.String()
	for _, want := range []string{"dur=1.5s", "f=0.25", "b=true", "n=<nil>", "odd=(missing)"} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
}

func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Info("ignored")
	l.Error("ignored", "k", "v")
	if l.With("k", "v") != nil {
		t.Error("nil.With must stay nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestStdBridge(t *testing.T) {
	l, b := testLogger(LevelInfo)
	std := l.Std("store")
	std.Printf("snapshot %s: %d records", "f.json", 3)
	got := b.String()
	if !strings.Contains(got, `msg="snapshot f.json: 3 records"`) || !strings.Contains(got, "component=store") {
		t.Errorf("std bridge line = %q", got)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
