package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartTrace(context.Background(), "http.request", "req-1", "endpoint", "/v1/report")
	if root == nil {
		t.Fatal("StartTrace returned nil span")
	}
	if got := root.TraceID(); got != "req-1" {
		t.Fatalf("TraceID = %q, want req-1", got)
	}

	cctx, char := StartSpan(ctx, "characterize")
	_, sim := StartSpan(cctx, "simulate", "machine", "skylake")
	sim.End()
	char.Record("sched.wait", time.Now().Add(-time.Millisecond), time.Now(), "key", "k")
	char.End()
	root.SetAttr("status", "200")
	root.End()

	traces := tr.Traces(Filter{})
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.TraceID != "req-1" {
		t.Errorf("trace id = %q", got.TraceID)
	}
	if got.Root.Name != "http.request" || got.Root.Attrs["status"] != "200" {
		t.Errorf("root = %+v", got.Root)
	}
	if len(got.Root.Children) != 1 || got.Root.Children[0].Name != "characterize" {
		t.Fatalf("root children = %+v", got.Root.Children)
	}
	names := map[string]bool{}
	for _, c := range got.Root.Children[0].Children {
		names[c.Name] = true
	}
	if !names["simulate"] || !names["sched.wait"] {
		t.Errorf("characterize children = %v, want simulate and sched.wait", names)
	}
}

func TestInboundIDSanitized(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	for _, bad := range []string{"has space", "quote\"", strings.Repeat("x", 65), ""} {
		_, s := tr.StartTrace(context.Background(), "r", bad)
		if id := s.TraceID(); id == bad || id == "" || len(id) != 16 {
			t.Errorf("id %q not replaced by a generated one (got %q)", bad, id)
		}
		s.End()
	}
	_, s := tr.StartTrace(context.Background(), "r", "ok-id_1.2")
	if got := s.TraceID(); got != "ok-id_1.2" {
		t.Errorf("valid inbound id replaced: %q", got)
	}
	s.End()
}

func TestRingBounded(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 3})
	for i := 0; i < 10; i++ {
		_, s := tr.StartTrace(context.Background(), "r", "id-"+string(rune('a'+i)))
		s.End()
	}
	traces := tr.Traces(Filter{})
	if len(traces) != 3 {
		t.Fatalf("ring holds %d, want 3", len(traces))
	}
	// Newest first: j, i, h.
	for i, want := range []string{"id-j", "id-i", "id-h"} {
		if traces[i].TraceID != want {
			t.Errorf("traces[%d] = %q, want %q", i, traces[i].TraceID, want)
		}
	}
	if got := tr.Finished(); got != 10 {
		t.Errorf("Finished = %d, want 10", got)
	}
}

func TestFilters(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	_, fast := tr.StartTrace(context.Background(), "r", "fast", "experiment", "table1")
	fast.End()
	_, slow := tr.StartTrace(context.Background(), "r", "slow", "experiment", "fig2")
	time.Sleep(20 * time.Millisecond)
	slow.End()

	if got := tr.Traces(Filter{MinDuration: 10 * time.Millisecond}); len(got) != 1 || got[0].TraceID != "slow" {
		t.Errorf("MinDuration filter = %+v", got)
	}
	if got := tr.Traces(Filter{Experiment: "table1"}); len(got) != 1 || got[0].TraceID != "fast" {
		t.Errorf("Experiment filter = %+v", got)
	}
	if got := tr.Traces(Filter{Limit: 1}); len(got) != 1 {
		t.Errorf("Limit filter returned %d", len(got))
	}
}

func TestDisabledTracingIsFreeAndNilSafe(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c, s := StartSpan(ctx, "simulate")
		if s != nil || c != ctx {
			t.Fatal("StartSpan on a span-free context must be a no-op")
		}
		s.End()
		s.SetAttr("k", "v")
		s.TraceID()
	})
	if allocs != 0 {
		t.Errorf("disabled StartSpan allocates %v times per call, want 0", allocs)
	}

	var nilTracer *Tracer
	nctx, s := nilTracer.StartTrace(ctx, "r", "id")
	if s != nil || nctx != ctx {
		t.Error("nil tracer must not trace")
	}
	s.Record("x", time.Now(), time.Now())
	if nilTracer.Traces(Filter{}) != nil || nilTracer.Capacity() != 0 {
		t.Error("nil tracer accessors must be zero")
	}
}

func TestStageHistogramRecorded(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := NewTracer(TracerConfig{Metrics: reg})
	ctx, root := tr.StartTrace(context.Background(), "http.request", "")
	_, s := StartSpan(ctx, "simulate")
	s.End()
	root.End()

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`spec17_stage_duration_seconds_count{stage="simulate"} 1`,
		`spec17_stage_duration_seconds_count{stage="http.request"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSlowTraceLogged(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	lg := NewLogger(syncWriter{&mu, &buf}, LevelDebug)
	tr := NewTracer(TracerConfig{SlowThreshold: time.Millisecond, Log: lg})

	_, fast := tr.StartTrace(context.Background(), "r", "fastone")
	fast.End()
	_, slow := tr.StartTrace(context.Background(), "r", "slowone")
	time.Sleep(5 * time.Millisecond)
	slow.End()

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "slowone") || !strings.Contains(out, "slow trace") {
		t.Errorf("slow trace not logged:\n%s", out)
	}
	if strings.Contains(out, "fastone") {
		t.Errorf("fast trace logged as slow:\n%s", out)
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartTrace(context.Background(), "r", "")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, s := StartSpan(ctx, "leaf")
		s.End()
	}
	root.End()
	got := tr.Traces(Filter{})[0]
	if got.DroppedSpans != 11 { // root counts toward the cap
		t.Errorf("DroppedSpans = %d, want 11", got.DroppedSpans)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartTrace(context.Background(), "r", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c, s := StartSpan(ctx, "leaf")
				_, g := StartSpan(c, "grandchild")
				g.End()
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	data := tr.Traces(Filter{})[0]
	if n := countSpans(&data.Root); n != 1+8*50*2 {
		t.Errorf("span count = %d, want %d", n, 1+8*50*2)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (w syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
