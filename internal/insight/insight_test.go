package insight

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// testClock is a manually-advanced clock for deterministic sampling.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}
func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func quietLog() *telemetry.Logger {
	return telemetry.NewLogger(io.Discard, telemetry.LevelError+1)
}

func newTestPlane(t *testing.T, reg *metrics.Registry, clk *testClock, slo SLOConfig) *Plane {
	t.Helper()
	p := New(Config{
		Metrics:   reg,
		Log:       quietLog(),
		Interval:  5 * time.Second,
		Ring:      8,
		EventRing: 4,
		SLO:       slo,
		Now:       clk.now,
	})
	t.Cleanup(p.Stop)
	return p
}

func TestRecorderHistory(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("test_total", "a counter")
	g := reg.Gauge("test_gauge", "a gauge")
	h := reg.Histogram("test_seconds", "a histogram", []float64{1, 2})
	clk := newTestClock()
	rec := newRecorder(8)

	rec.sample(reg.Snapshot(), clk.now())
	ctr.Add(10)
	g.Set(3)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	clk.advance(10 * time.Second)
	rec.sample(reg.Snapshot(), clk.now())

	hist, ok := rec.History("test_total", 0, 5*time.Second, clk.now())
	if !ok || len(hist.Series) != 1 {
		t.Fatalf("counter history: ok=%v series=%d", ok, len(hist.Series))
	}
	s := hist.Series[0]
	if len(s.Points) != 2 || s.Points[1].Value != 10 {
		t.Fatalf("counter points = %+v", s.Points)
	}
	if s.Rate == nil || *s.Rate != 1 { // 10 over 10s
		t.Fatalf("counter rate = %v, want 1/s", s.Rate)
	}

	gh, _ := rec.History("test_gauge", 0, 5*time.Second, clk.now())
	if gh.Series[0].Rate != nil {
		t.Fatalf("gauge grew a rate: %v", *gh.Series[0].Rate)
	}

	hh, ok := rec.History("test_seconds", 0, 5*time.Second, clk.now())
	if !ok {
		t.Fatal("histogram history missing")
	}
	hs := hh.Series[0]
	if hs.Rate == nil || *hs.Rate != 0.3 { // 3 observations over 10s
		t.Fatalf("histogram count rate = %v, want 0.3/s", hs.Rate)
	}
	// Three observations in buckets (≤1, ≤2, +Inf): p50 interpolates to
	// 1.5 inside the second bucket; p99 lands in +Inf and answers the
	// highest finite bound.
	if hs.P50 == nil || *hs.P50 != 1.5 {
		t.Fatalf("p50 = %v, want 1.5", hs.P50)
	}
	if hs.P99 == nil || *hs.P99 != 2 {
		t.Fatalf("p99 = %v, want 2 (highest finite bound)", hs.P99)
	}

	if _, ok := rec.History("no_such_metric", 0, time.Second, clk.now()); ok {
		t.Fatal("unknown metric produced a history")
	}
}

func TestRecorderWindowAndRingBound(t *testing.T) {
	reg := metrics.NewRegistry()
	ctr := reg.Counter("test_total", "a counter")
	clk := newTestClock()
	rec := newRecorder(4)

	for i := 0; i < 10; i++ {
		ctr.Inc()
		rec.sample(reg.Snapshot(), clk.now())
		clk.advance(5 * time.Second)
	}
	h, _ := rec.History("test_total", 0, 5*time.Second, clk.now())
	if got := len(h.Series[0].Points); got != 4 {
		t.Fatalf("ring retained %d points, capacity 4", got)
	}
	// Only the last two samples fall inside a 12s window (now is 5s
	// past the final sample).
	h, _ = rec.History("test_total", 12*time.Second, 5*time.Second, clk.now())
	if got := len(h.Series[0].Points); got != 2 {
		t.Fatalf("12s window kept %d points, want 2", got)
	}
}

func TestEventLogRingAndFilters(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := newTestClock()
	e := newEventLog(4, reg, quietLog(), clk.now)

	for i := 0; i < 6; i++ {
		typ := EventShedSpike
		if i%2 == 1 {
			typ = EventSlowTrace
		}
		e.Emit(typ, "event", nil)
		clk.advance(time.Second)
	}
	if e.Len() != 4 || e.Total() != 6 {
		t.Fatalf("len=%d total=%d, want 4/6", e.Len(), e.Total())
	}
	all := e.Events("", time.Time{}, 0)
	if len(all) != 4 || all[0].Seq != 6 || all[3].Seq != 3 {
		t.Fatalf("events newest-first = %+v", all)
	}
	slow := e.Events(EventSlowTrace, time.Time{}, 0)
	if len(slow) != 2 {
		t.Fatalf("type filter kept %d, want 2", len(slow))
	}
	since := e.Events("", all[0].Time, 0)
	if len(since) != 1 || since[0].Seq != 6 {
		t.Fatalf("since filter = %+v", since)
	}
	if got := e.Events("", time.Time{}, 1); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("limit=1 = %+v", got)
	}
	var buf [512]byte
	w := &writerTo{buf: buf[:0]}
	if err := reg.WritePrometheus(w); err != nil {
		t.Fatal(err)
	}
	body := string(w.buf)
	if !contains(body, `spec17d_insight_events_total{type="shed_spike"} 3`) {
		t.Fatalf("events counter missing from exposition:\n%s", body)
	}
}

type writerTo struct{ buf []byte }

func (w *writerTo) Write(p []byte) (int, error) { w.buf = append(w.buf, p...); return len(p), nil }

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// syntheticCounts builds a plausible RawCounts; mispredicts is the
// knob the drift tests turn.
func syntheticCounts(mispredicts uint64) *machine.RawCounts {
	rc := &machine.RawCounts{
		Instructions:  1000,
		Loads:         200,
		Stores:        100,
		Branches:      150,
		TakenBranches: 100,
		FPOps:         50,
		SIMDOps:       20,
		KernelInstrs:  30,
		Mispredicts:   mispredicts,
		CPI:           1.0,
	}
	rc.Cache.L1IMisses, rc.Cache.L1DMisses = 5, 10
	rc.Cache.L2IMisses, rc.Cache.L2DMisses, rc.Cache.L3Misses = 2, 4, 1
	rc.TLB.ITLBMisses, rc.TLB.DTLBMisses = 3, 6
	rc.TLB.L2Misses, rc.TLB.PageWalks = 2, 2
	return rc
}

func putPair(t *testing.T, st *store.Store, workload string, analytic, exact *machine.RawCounts) store.Key {
	t.Helper()
	k := store.Key{
		Machine:      "test-machine",
		Workload:     workload,
		Instructions: 50_000,
		Warmup:       10_000,
		Engine:       "analytic",
		Content:      "content-" + workload,
	}
	st.Put(k, analytic)
	twin := k
	twin.Engine = ""
	st.Put(twin, exact)
	return k
}

func TestDriftScanInBand(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := newTestClock()
	st, _ := store.Open(store.Config{})
	events := newEventLog(16, reg, quietLog(), clk.now)
	d := newDrift(st, reg, events, clk.now)

	putPair(t, st, "wl-agree", syntheticCounts(10), syntheticCounts(10))
	if n := d.Scan(); n != 1 {
		t.Fatalf("Scan compared %d pairs, want 1", n)
	}
	status := d.Status()
	if status.Pairs != 1 || status.Samples == 0 {
		t.Fatalf("status = %+v", status)
	}
	if status.Violations != 0 || status.WorstRatio != 0 {
		t.Fatalf("identical records drifted: %+v", status)
	}
	// Records are immutable: rescans find nothing new.
	if n := d.Scan(); n != 0 {
		t.Fatalf("rescan compared %d pairs, want 0", n)
	}
	if got := d.Status().Pairs; got != 1 {
		t.Fatalf("pairs after rescan = %d, want 1", got)
	}
}

func TestDriftScanViolation(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := newTestClock()
	st, _ := store.Open(store.Config{})
	events := newEventLog(16, reg, quietLog(), clk.now)
	d := newDrift(st, reg, events, clk.now)

	// 100 vs 10 mispredicts per 1000 instructions: 100 MPKI vs 10 MPKI
	// against BranchMPKI's band {Abs: 3.5, Rel: 0.60} → ratio ≈ 1.42.
	putPair(t, st, "wl-drift", syntheticCounts(100), syntheticCounts(10))
	if n := d.Scan(); n != 1 {
		t.Fatalf("Scan compared %d pairs, want 1", n)
	}
	status := d.Status()
	if status.Violations != 1 {
		t.Fatalf("violations = %d, want 1", status.Violations)
	}
	if len(status.Worst) == 0 || status.Worst[0].Metric != "branch_mpki" {
		t.Fatalf("worst offender = %+v", status.Worst)
	}
	if status.Worst[0].WorstRatio <= 1 {
		t.Fatalf("worst ratio %v should exceed 1", status.Worst[0].WorstRatio)
	}
	evs := events.Events(EventBandViolation, time.Time{}, 0)
	if len(evs) != 1 {
		t.Fatalf("band_violation events = %d, want 1", len(evs))
	}
	if evs[0].Attrs["metric"] != "branch_mpki" || evs[0].Attrs["machine"] != "test-machine" {
		t.Fatalf("event attrs = %+v", evs[0].Attrs)
	}
}

func TestSLOBurnAndTransitionEvent(t *testing.T) {
	reg := metrics.NewRegistry()
	requests := reg.CounterVec("spec17d_requests_total", "requests", "endpoint", "code")
	latency := reg.HistogramVec("spec17d_request_duration_seconds", "latency",
		[]float64{0.1, 0.5, 1}, "endpoint")
	clk := newTestClock()
	p := newTestPlane(t, reg, clk, SLOConfig{
		Latency:       500 * time.Millisecond,
		LatencyTarget: 0.95,
		ErrorTarget:   0.999,
	})

	// Baseline tick with the series present but empty.
	requests.With("/v1/report", "200").Add(0)
	requests.With("/v1/report", "500").Add(0)
	latency.With("/v1/report").Observe(0.01)
	p.Tick()

	// 40% errors and every request over the latency objective.
	requests.With("/v1/report", "200").Add(6)
	requests.With("/v1/report", "500").Add(4)
	for i := 0; i < 10; i++ {
		latency.With("/v1/report").Observe(0.9)
	}
	clk.advance(5 * time.Second)
	p.Tick()

	st := p.Status()
	if len(st.SLO) != 1 {
		t.Fatalf("slo endpoints = %+v", st.SLO)
	}
	ep := st.SLO[0]
	if ep.Endpoint != "/v1/report" || !ep.Burning {
		t.Fatalf("endpoint not burning: %+v", ep)
	}
	if ep.ErrorBurnFast < 100 { // 0.4 error fraction / 0.001 budget
		t.Fatalf("error burn fast = %v, want hundreds", ep.ErrorBurnFast)
	}
	if ep.LatencyBurnFast <= 1 {
		t.Fatalf("latency burn fast = %v, want > 1", ep.LatencyBurnFast)
	}
	if got := len(p.Events().Events(EventSLOBurn, time.Time{}, 0)); got != 1 {
		t.Fatalf("slo_burn events = %d, want 1", got)
	}

	// Still burning next tick: no second transition event.
	clk.advance(5 * time.Second)
	p.Tick()
	if got := len(p.Events().Events(EventSLOBurn, time.Time{}, 0)); got != 1 {
		t.Fatalf("slo_burn events after sustained burn = %d, want 1", got)
	}
}

func TestShedSpikeDetection(t *testing.T) {
	reg := metrics.NewRegistry()
	shed := reg.Counter("spec17_sched_shed_total", "sheds")
	rejected := reg.CounterVec("spec17_admission_rejected_total", "rejections", "reason")
	clk := newTestClock()
	p := newTestPlane(t, reg, clk, SLOConfig{})

	p.Tick() // baseline
	shed.Add(6)
	rejected.With("rate_limited").Add(6)
	clk.advance(5 * time.Second)
	p.Tick()
	if got := len(p.Events().Events(EventShedSpike, time.Time{}, 0)); got != 1 {
		t.Fatalf("shed_spike events = %d, want 1", got)
	}
	// A second spike inside the cooldown is the same incident.
	shed.Add(20)
	clk.advance(5 * time.Second)
	p.Tick()
	if got := len(p.Events().Events(EventShedSpike, time.Time{}, 0)); got != 1 {
		t.Fatalf("shed_spike events inside cooldown = %d, want 1", got)
	}
	// Past the cooldown a sustained overload may fire again.
	shed.Add(20)
	clk.advance(2 * time.Minute)
	p.Tick()
	if got := len(p.Events().Events(EventShedSpike, time.Time{}, 0)); got != 2 {
		t.Fatalf("shed_spike events after cooldown = %d, want 2", got)
	}
}

func TestPlaneHooks(t *testing.T) {
	reg := metrics.NewRegistry()
	clk := newTestClock()
	p := newTestPlane(t, reg, clk, SLOConfig{})

	p.OnSlowTrace(&telemetry.TraceData{TraceID: "t1", DurationMS: 1234})
	p.OnCheckpointError(errors.New("disk full"))
	p.OnWebhookExhausted("job-1", "http://example/hook", 5, errors.New("status 503"))

	if got := len(p.Events().Events(EventSlowTrace, time.Time{}, 0)); got != 1 {
		t.Fatalf("slow_trace events = %d", got)
	}
	if got := len(p.Events().Events(EventCheckpointFailure, time.Time{}, 0)); got != 1 {
		t.Fatalf("checkpoint_failure events = %d", got)
	}
	evs := p.Events().Events(EventWebhookExhausted, time.Time{}, 0)
	if len(evs) != 1 || evs[0].Attrs["job"] != "job-1" || evs[0].Attrs["attempts"] != "5" {
		t.Fatalf("webhook_exhausted events = %+v", evs)
	}
}

func TestPlaneStartStop(t *testing.T) {
	reg := metrics.NewRegistry()
	p := New(Config{Metrics: reg, Log: quietLog(), Interval: time.Millisecond})
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for p.Status().Samples == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Status().Samples == 0 {
		t.Fatal("sampling loop never ticked")
	}
	p.Stop()
	p.Stop() // idempotent

	// Never-started planes stop cleanly too.
	q := New(Config{Metrics: metrics.NewRegistry(), Log: quietLog()})
	q.Stop()
}
