package insight

// The accuracy-drift monitor: the daemon's auto tier answers
// analytically first and upgrades to exact in the background, which
// means the store routinely holds *both* measurements of one
// (machine, workload, fidelity) identity — the analytic record under
// Key.Engine="analytic" and its exact twin under Engine="". Each Scan
// pairs them up and replays the cross-validation contract in
// production: every metric's relative disagreement is expressed as
// the fraction of its committed engine.Tolerances band it consumes
// (Band.Ratio), fed into spec17d_engine_drift_ratio{metric}, and a
// ratio above 1 — an answer the daemon already served that the exact
// engine later contradicted beyond contract — raises a
// band_violation event. GET /v1/accuracy serves the running totals
// and the worst offenders.

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/store"
)

// maxOffenders bounds the worst-offenders table served by
// /v1/accuracy.
const maxOffenders = 16

// offenderCap bounds the in-memory offender map; when exceeded, the
// mildest entries are pruned (they were never going to make the
// table).
const offenderCap = 128

// Offender is one (machine, workload, metric) cell of the drift
// matrix, tracked by its worst observed band consumption.
type Offender struct {
	Machine    string  `json:"machine"`
	Workload   string  `json:"workload"`
	Metric     string  `json:"metric"`
	WorstRatio float64 `json:"worst_ratio"`
	// Analytic and Exact are the metric values behind WorstRatio.
	Analytic float64 `json:"analytic"`
	Exact    float64 `json:"exact"`
	// Count is how many compared samples fed this cell.
	Count int64 `json:"count"`
}

// AccuracyStatus is the GET /v1/accuracy body.
type AccuracyStatus struct {
	// Pairs is the number of (analytic, exact) record pairs compared.
	Pairs int64 `json:"pairs_compared"`
	// Samples is the number of per-metric comparisons across all pairs.
	Samples int64 `json:"samples"`
	// Violations counts samples whose band ratio exceeded 1.
	Violations int64 `json:"violations"`
	// WorstRatio is the largest band consumption ever observed.
	WorstRatio float64    `json:"worst_ratio"`
	LastScan   *time.Time `json:"last_scan,omitempty"`
	// Worst lists the most band-consuming (machine, workload, metric)
	// cells, capped at 16.
	Worst []Offender `json:"worst,omitempty"`
}

// Drift pairs analytic store records with their exact twins and scores
// the disagreement. Safe for concurrent use.
type Drift struct {
	events *EventLog
	now    func() time.Time

	ratio      *metrics.HistogramVec
	pairsCtr   *metrics.Counter
	violations *metrics.Counter

	powerOnce sync.Once
	hasPower  map[string]bool

	mu       sync.Mutex
	st       *store.Store
	compared map[string]bool
	pairs    int64
	samples  int64
	nviol    int64
	worst    float64
	cells    map[string]*Offender
	lastScan time.Time
}

func newDrift(st *store.Store, reg *metrics.Registry, events *EventLog, now func() time.Time) *Drift {
	return &Drift{
		events: events,
		now:    now,
		ratio: reg.HistogramVec("spec17d_engine_drift_ratio",
			"Analytic-vs-exact disagreement per compared metric, as the fraction of the tolerance band consumed (>1 = violation).",
			[]float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1, 1.5, 2, 4},
			"metric"),
		pairsCtr: reg.Counter("spec17d_engine_drift_pairs_total",
			"Analytic/exact record pairs compared by the drift monitor."),
		violations: reg.Counter("spec17d_engine_drift_violations_total",
			"Drift samples whose disagreement exceeded the committed tolerance band."),
		st:       st,
		compared: make(map[string]bool),
		cells:    make(map[string]*Offender),
	}
}

// attachStore sets the store scanned for pairs; call before the plane
// starts.
func (d *Drift) attachStore(st *store.Store) {
	d.mu.Lock()
	d.st = st
	d.mu.Unlock()
}

// Scan walks the store for analytic records whose exact twin has
// landed and compares each previously-unseen pair. Records are
// immutable and the engines deterministic, so one comparison per pair
// is definitive — the dedup map makes repeated scans cheap. Returns
// how many new pairs were compared.
func (d *Drift) Scan() int {
	d.mu.Lock()
	st := d.st
	d.mu.Unlock()
	if st == nil {
		return 0
	}
	type pair struct {
		key      store.Key
		analytic *machine.RawCounts
		exact    *machine.RawCounts
	}
	var pairs []pair
	st.Range(func(k store.Key, rc *machine.RawCounts) bool {
		if k.Engine != string(engine.TierAnalytic) || k.Copies != 0 {
			return true
		}
		id := k.ID()
		d.mu.Lock()
		seen := d.compared[id]
		d.mu.Unlock()
		if seen {
			return true
		}
		twin := k
		twin.Engine = "" // the exact tier's normalized identity
		if xrec, ok := st.Get(twin); ok {
			pairs = append(pairs, pair{key: k, analytic: rc, exact: xrec})
		}
		return true
	})
	n := 0
	for _, p := range pairs {
		d.mu.Lock()
		already := d.compared[p.key.ID()]
		if !already {
			d.compared[p.key.ID()] = true
		}
		d.mu.Unlock()
		if already {
			continue // lost a race with a concurrent Scan
		}
		d.ObservePair(p.key, p.analytic, p.exact)
		n++
	}
	d.mu.Lock()
	d.lastScan = d.now()
	d.mu.Unlock()
	return n
}

// ObservePair scores one analytic record against its exact twin:
// every Table III metric the machine measures, plus the CPI
// pseudo-metric, against its engine.Tolerances band.
func (d *Drift) ObservePair(key store.Key, analytic, exact *machine.RawCounts) {
	hp := d.machineHasPower(key.Machine)
	aSample, aErr := counters.FromRaw(key.Machine, hp, analytic)
	xSample, xErr := counters.FromRaw(key.Machine, hp, exact)
	if aErr != nil || xErr != nil {
		return // zero-instruction records carry no metrics to compare
	}
	d.pairsCtr.Inc()
	d.mu.Lock()
	d.pairs++
	d.mu.Unlock()
	for _, m := range aSample.Metrics() {
		d.observeMetric(key, m, aSample.MustValue(m), xSample.MustValue(m))
	}
	d.observeMetric(key, engine.MetricCPI, analytic.CPI, exact.CPI)
}

func (d *Drift) observeMetric(key store.Key, m counters.Metric, a, x float64) {
	band, ok := engine.Tolerances[m]
	if !ok {
		return
	}
	ratio := band.Ratio(a, x)
	d.ratio.With(string(m)).Observe(ratio)
	d.mu.Lock()
	d.samples++
	if ratio > d.worst {
		d.worst = ratio
	}
	cellKey := key.Machine + "|" + key.Workload + "|" + string(m)
	cell, exists := d.cells[cellKey]
	if !exists {
		cell = &Offender{Machine: key.Machine, Workload: key.Workload, Metric: string(m)}
		d.cells[cellKey] = cell
		d.pruneCellsLocked()
	}
	cell.Count++
	if ratio > cell.WorstRatio {
		cell.WorstRatio, cell.Analytic, cell.Exact = ratio, a, x
	}
	violated := ratio > 1
	if violated {
		d.nviol++
	}
	d.mu.Unlock()
	if violated {
		d.violations.Inc()
		d.events.Emit(EventBandViolation,
			fmt.Sprintf("analytic %s for %s on %s drifted %.2fx beyond its tolerance band",
				m, key.Workload, key.Machine, ratio),
			map[string]string{
				"machine":  key.Machine,
				"workload": key.Workload,
				"metric":   string(m),
				"analytic": strconv.FormatFloat(a, 'g', 6, 64),
				"exact":    strconv.FormatFloat(x, 'g', 6, 64),
				"ratio":    strconv.FormatFloat(ratio, 'g', 4, 64),
			})
	}
}

// pruneCellsLocked drops the mildest cells when the table outgrows
// offenderCap; callers hold d.mu.
func (d *Drift) pruneCellsLocked() {
	if len(d.cells) <= offenderCap {
		return
	}
	type kv struct {
		key   string
		ratio float64
	}
	all := make([]kv, 0, len(d.cells))
	for k, c := range d.cells {
		all = append(all, kv{k, c.WorstRatio})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ratio < all[j].ratio })
	for _, e := range all[:len(all)-offenderCap/2] {
		delete(d.cells, e.key)
	}
}

// Status returns the running totals and the worst-offenders table.
func (d *Drift) Status() AccuracyStatus {
	d.mu.Lock()
	st := AccuracyStatus{
		Pairs:      d.pairs,
		Samples:    d.samples,
		Violations: d.nviol,
		WorstRatio: d.worst,
	}
	if !d.lastScan.IsZero() {
		t := d.lastScan
		st.LastScan = &t
	}
	worst := make([]Offender, 0, len(d.cells))
	for _, c := range d.cells {
		worst = append(worst, *c)
	}
	d.mu.Unlock()
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].WorstRatio != worst[j].WorstRatio {
			return worst[i].WorstRatio > worst[j].WorstRatio
		}
		a := worst[i].Machine + "|" + worst[i].Workload + "|" + worst[i].Metric
		b := worst[j].Machine + "|" + worst[j].Workload + "|" + worst[j].Metric
		return a < b
	})
	if len(worst) > maxOffenders {
		worst = worst[:maxOffenders]
	}
	st.Worst = worst
	return st
}

// machineHasPower reports whether the named fleet machine measures
// power (RAPL), deciding whether the power metrics are compared.
// Unknown machines (tests, retired configs) compare base metrics only.
func (d *Drift) machineHasPower(name string) bool {
	d.powerOnce.Do(func() {
		d.hasPower = make(map[string]bool)
		fleet, err := machine.Fleet()
		if err != nil {
			return
		}
		for _, m := range fleet {
			d.hasPower[m.Name()] = m.Config().HasRAPL
		}
	})
	return d.hasPower[name]
}
