package insight

// SLO burn rates, computed from the recorder's own rings — the
// standard multi-window burn-rate construction (an alert needs both a
// fast window, so it fires quickly, and a slow window, so a brief
// blip doesn't page) applied per endpoint to the two objectives the
// daemon owns: request success (non-5xx) and request latency. A burn
// rate of 1 means the endpoint is consuming its error budget exactly
// as fast as the objective allows; above 1 in both windows the
// endpoint is burning, and the plane raises an slo_burn event on the
// transition.

import (
	"fmt"
	"sort"
	"strconv"
	"time"
)

// SLOConfig sets the per-endpoint objectives. The zero value disables
// the latency objective and applies the defaults below to the rest.
type SLOConfig struct {
	// Latency is the per-request latency objective; LatencyTarget of
	// requests should finish within it. 0 disables latency burn
	// tracking.
	Latency time.Duration
	// LatencyTarget is the fraction of requests expected to meet
	// Latency. Defaults to 0.95.
	LatencyTarget float64
	// ErrorTarget is the fraction of requests expected to answer
	// without a 5xx. Defaults to 0.999.
	ErrorTarget float64
	// FastWindow and SlowWindow are the burn-rate windows. Default
	// 5m / 1h.
	FastWindow time.Duration
	SlowWindow time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.95
	}
	if c.ErrorTarget <= 0 || c.ErrorTarget >= 1 {
		c.ErrorTarget = 0.999
	}
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	return c
}

// EndpointSLO is one endpoint's burn-rate snapshot, served inside
// /v1/status.
type EndpointSLO struct {
	Endpoint string `json:"endpoint"`
	// Requests is the request count over the fast window.
	Requests float64 `json:"requests_fast_window"`
	// ErrorBurnFast/Slow are 5xx budget burn rates per window.
	ErrorBurnFast float64 `json:"error_burn_fast"`
	ErrorBurnSlow float64 `json:"error_burn_slow"`
	// LatencyBurnFast/Slow are latency budget burn rates per window
	// (omitted while the latency objective is disabled).
	LatencyBurnFast float64 `json:"latency_burn_fast,omitempty"`
	LatencyBurnSlow float64 `json:"latency_burn_slow,omitempty"`
	// Burning is set while either objective burns in both windows.
	Burning bool `json:"burning"`
}

// sloMonitor evaluates burn rates each tick and remembers which
// endpoints were already burning, so events fire on transitions, not
// continuously.
type sloMonitor struct {
	cfg    SLOConfig
	events *EventLog

	burning map[string]bool
	status  []EndpointSLO
}

func newSLOMonitor(cfg SLOConfig, events *EventLog) *sloMonitor {
	return &sloMonitor{cfg: cfg.withDefaults(), events: events, burning: make(map[string]bool)}
}

// evaluate recomputes every endpoint's burn rates from the recorder.
// Called from the plane's tick loop (single goroutine); the result is
// handed to the plane under its lock.
func (m *sloMonitor) evaluate(rec *Recorder, now time.Time) []EndpointSLO {
	// Endpoints are discovered from the request counter's label sets:
	// {endpoint, code}.
	endpoints := map[string]bool{}
	for _, lv := range rec.labelSets("spec17d_requests_total") {
		if len(lv) == 2 {
			endpoints[lv[0]] = true
		}
	}
	names := make([]string, 0, len(endpoints))
	for ep := range endpoints {
		names = append(names, ep)
	}
	sort.Strings(names)

	out := make([]EndpointSLO, 0, len(names))
	for _, ep := range names {
		s := EndpointSLO{Endpoint: ep}
		var fastTotal float64
		s.ErrorBurnFast, fastTotal = m.errorBurn(rec, ep, m.cfg.FastWindow, now)
		s.ErrorBurnSlow, _ = m.errorBurn(rec, ep, m.cfg.SlowWindow, now)
		s.Requests = fastTotal
		if m.cfg.Latency > 0 {
			s.LatencyBurnFast = m.latencyBurn(rec, ep, m.cfg.FastWindow, now)
			s.LatencyBurnSlow = m.latencyBurn(rec, ep, m.cfg.SlowWindow, now)
		}
		s.Burning = (s.ErrorBurnFast > 1 && s.ErrorBurnSlow > 1) ||
			(s.LatencyBurnFast > 1 && s.LatencyBurnSlow > 1)
		if s.Burning && !m.burning[ep] {
			m.events.Emit(EventSLOBurn,
				fmt.Sprintf("endpoint %s is burning its SLO budget", ep),
				map[string]string{
					"endpoint":          ep,
					"error_burn_fast":   strconv.FormatFloat(s.ErrorBurnFast, 'g', 4, 64),
					"error_burn_slow":   strconv.FormatFloat(s.ErrorBurnSlow, 'g', 4, 64),
					"latency_burn_fast": strconv.FormatFloat(s.LatencyBurnFast, 'g', 4, 64),
					"latency_burn_slow": strconv.FormatFloat(s.LatencyBurnSlow, 'g', 4, 64),
				})
		}
		m.burning[ep] = s.Burning
		out = append(out, s)
	}
	m.status = out
	return out
}

// errorBurn returns the endpoint's 5xx budget burn over the window and
// the total in-window requests: the observed error fraction divided by
// the budget (1 − ErrorTarget).
func (m *sloMonitor) errorBurn(rec *Recorder, endpoint string, window time.Duration, now time.Time) (burn, totalReq float64) {
	var errs float64
	for _, lv := range rec.labelSets("spec17d_requests_total") {
		if len(lv) != 2 || lv[0] != endpoint {
			continue
		}
		d, ok := rec.counterDelta("spec17d_requests_total", lv, window, now)
		if !ok {
			continue
		}
		totalReq += d
		if code, err := strconv.Atoi(lv[1]); err == nil && code >= 500 {
			errs += d
		}
	}
	if totalReq == 0 {
		return 0, 0
	}
	return (errs / totalReq) / (1 - m.cfg.ErrorTarget), totalReq
}

// latencyBurn returns the endpoint's latency budget burn over the
// window: the fraction of requests slower than the objective — read
// from the latency histogram's bucket deltas, counting buckets whose
// upper bound fits inside the objective as "good" — divided by the
// budget (1 − LatencyTarget).
func (m *sloMonitor) latencyBurn(rec *Recorder, endpoint string, window time.Duration, now time.Time) float64 {
	bounds, deltas, count, ok := rec.histWindow(
		"spec17d_request_duration_seconds", []string{endpoint}, window, now)
	if !ok || count == 0 {
		return 0
	}
	obj := m.cfg.Latency.Seconds()
	var good uint64
	for i, b := range bounds {
		if b <= obj && i < len(deltas) {
			good += deltas[i]
		}
	}
	bad := float64(count-good) / float64(count)
	return bad / (1 - m.cfg.LatencyTarget)
}
