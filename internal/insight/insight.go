// Package insight is spec17d's self-monitoring plane: the daemon
// watching itself with no external dependencies. Four cooperating
// pieces share one sampling loop:
//
//   - a metric-history recorder capturing the whole metrics registry
//     into bounded in-memory rings (GET /v1/metrics/history);
//   - an accuracy-drift monitor comparing analytically-served results
//     against the exact re-measurements the auto tier lands in the
//     background (GET /v1/accuracy);
//   - a typed anomaly-event ring — band violations, shed spikes, slow
//     traces, checkpoint failures, exhausted webhooks, SLO burns
//     (GET /v1/events);
//   - per-endpoint SLO burn rates derived from the recorder's own
//     rings (inside GET /v1/status).
//
// Everything is strictly bounded in memory and costs nothing on the
// request path: sampling happens on a background ticker, and a daemon
// built without a Plane serves byte-identical responses.
package insight

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// shedSpikeThreshold is how many admission rejections plus scheduler
// sheds within one sampling interval count as a spike.
const shedSpikeThreshold = 10

// shedSpikeCooldown rate-limits shed_spike events: a sustained
// overload is one incident, not one event per tick.
const shedSpikeCooldown = time.Minute

// Config configures a Plane. Metrics is required; everything else has
// a usable default.
type Config struct {
	// Metrics is the registry to sample (and where the plane's own
	// instruments land).
	Metrics *metrics.Registry
	// Store, when set, enables the accuracy-drift monitor. May also be
	// attached later via AttachStore (before Start).
	Store *store.Store
	// Log mirrors every emitted event. Defaults to an info-level
	// structured logger on stderr.
	Log *telemetry.Logger
	// Interval is the sampling period. Defaults to 5s.
	Interval time.Duration
	// Ring is the per-series history ring capacity (Interval × Ring of
	// lookback). Defaults to 360 — half an hour at the default
	// interval.
	Ring int
	// EventRing bounds the anomaly-event ring. Defaults to 256.
	EventRing int
	// SLO sets the per-endpoint objectives.
	SLO SLOConfig
	// Now overrides the clock (tests).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Log == nil {
		c.Log = telemetry.NewLogger(os.Stderr, telemetry.LevelInfo)
	}
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.Ring <= 0 {
		c.Ring = 360
	}
	if c.EventRing <= 0 {
		c.EventRing = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Status is the insight section of GET /v1/status.
type Status struct {
	IntervalSeconds float64       `json:"interval_seconds"`
	RingCapacity    int           `json:"ring_capacity"`
	SeriesTracked   int           `json:"series_tracked"`
	Samples         int64         `json:"samples"`
	EventsBuffered  int           `json:"events_buffered"`
	EventsTotal     uint64        `json:"events_total"`
	SLO             []EndpointSLO `json:"slo,omitempty"`
}

// Plane is the self-monitoring plane. Create with New, wire the
// hooks, then Start; Stop halts the sampling loop.
type Plane struct {
	cfg     Config
	rec     *Recorder
	drift   *Drift
	events  *EventLog
	slo     *sloMonitor
	samples *metrics.Counter

	// tickMu serializes Tick: the loop is one goroutine, but Tick is
	// also callable directly (tests, handlers wanting freshness), and
	// the SLO monitor's transition state assumes one evaluator.
	tickMu sync.Mutex

	// mu guards the published tick results.
	mu            sync.Mutex
	sloStatus     []EndpointSLO
	lastShed      float64
	haveShed      bool
	lastShedEvent time.Time
	nsamples      int64

	quit     chan struct{}
	done     chan struct{}
	startO   sync.Once
	stopOnce sync.Once
}

// New returns a ready Plane. It registers the plane's own instruments
// (spec17d_insight_*, spec17d_engine_drift_*) in cfg.Metrics.
func New(cfg Config) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg: cfg,
		rec: newRecorder(cfg.Ring),
		samples: cfg.Metrics.Counter("spec17d_insight_samples_total",
			"Sampling ticks the insight recorder has performed."),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.events = newEventLog(cfg.EventRing, cfg.Metrics, cfg.Log, cfg.Now)
	p.drift = newDrift(cfg.Store, cfg.Metrics, p.events, cfg.Now)
	p.slo = newSLOMonitor(cfg.SLO, p.events)
	return p
}

// AttachStore enables the drift monitor against st. Call before Start
// (the daemon opens its store after wiring the plane into the store's
// checkpoint-error hook, so the two attach in opposite order).
func (p *Plane) AttachStore(st *store.Store) { p.drift.attachStore(st) }

// Start launches the sampling loop. Safe to call once.
func (p *Plane) Start() {
	p.startO.Do(func() {
		go func() {
			defer close(p.done)
			t := time.NewTicker(p.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					p.Tick()
				case <-p.quit:
					return
				}
			}
		}()
	})
}

// Stop halts the sampling loop and waits for it to exit. Safe to call
// without Start, and more than once.
func (p *Plane) Stop() {
	p.stopOnce.Do(func() {
		close(p.quit)
		p.startO.Do(func() { close(p.done) }) // never started: unblock the wait
		<-p.done
	})
}

// Tick performs one sampling pass: snapshot the registry, append to
// the history rings, scan for new drift pairs, recompute SLO burn
// rates, and check for shed spikes. Exported so tests (and the
// handlers' freshness needs) can drive the plane deterministically.
func (p *Plane) Tick() {
	p.tickMu.Lock()
	defer p.tickMu.Unlock()
	now := p.cfg.Now()
	snap := p.cfg.Metrics.Snapshot()
	p.rec.sample(snap, now)
	p.samples.Inc()
	p.drift.Scan()
	slo := p.slo.evaluate(p.rec, now)
	p.mu.Lock()
	p.nsamples++
	p.sloStatus = slo
	p.mu.Unlock()
	p.detectShedSpike(snap, now)
}

// detectShedSpike raises a shed_spike event when the tick-over-tick
// growth of admission rejections plus scheduler sheds crosses the
// threshold — the signal that the daemon has started refusing work.
func (p *Plane) detectShedSpike(snap metrics.Snapshot, now time.Time) {
	shed := snap.Value("spec17_sched_shed_total")
	if fs, ok := snap.Family("spec17_admission_rejected_total"); ok {
		for _, ss := range fs.Series {
			shed += ss.Value
		}
	}
	p.mu.Lock()
	prev, have := p.lastShed, p.haveShed
	p.lastShed, p.haveShed = shed, true
	delta := shed - prev
	fire := have && delta >= shedSpikeThreshold &&
		now.Sub(p.lastShedEvent) >= shedSpikeCooldown
	if fire {
		p.lastShedEvent = now
	}
	p.mu.Unlock()
	if fire {
		p.events.Emit(EventShedSpike,
			fmt.Sprintf("%d requests shed within one sampling interval", int64(delta)),
			map[string]string{"shed": strconv.FormatInt(int64(delta), 10)})
	}
}

// Recorder returns the metric-history recorder.
func (p *Plane) Recorder() *Recorder { return p.rec }

// Drift returns the accuracy-drift monitor.
func (p *Plane) Drift() *Drift { return p.drift }

// Events returns the anomaly-event ring.
func (p *Plane) Events() *EventLog { return p.events }

// Interval returns the sampling period.
func (p *Plane) Interval() time.Duration { return p.cfg.Interval }

// Status returns the insight section of /v1/status.
func (p *Plane) Status() Status {
	p.mu.Lock()
	slo := append([]EndpointSLO(nil), p.sloStatus...)
	n := p.nsamples
	p.mu.Unlock()
	return Status{
		IntervalSeconds: p.cfg.Interval.Seconds(),
		RingCapacity:    p.rec.Capacity(),
		SeriesTracked:   p.rec.SeriesCount(),
		Samples:         n,
		EventsBuffered:  p.events.Len(),
		EventsTotal:     p.events.Total(),
		SLO:             slo,
	}
}

// OnSlowTrace adapts the plane to telemetry.TracerConfig.OnSlow: every
// slow trace becomes a slow_trace event carrying the trace id, so the
// operator pivots from the event straight to GET /v1/traces.
func (p *Plane) OnSlowTrace(td *telemetry.TraceData) {
	p.events.Emit(EventSlowTrace,
		fmt.Sprintf("trace %s took %.0fms", td.TraceID, td.DurationMS),
		map[string]string{
			"trace":  td.TraceID,
			"dur_ms": strconv.FormatFloat(td.DurationMS, 'f', 0, 64),
		})
}

// OnCheckpointError adapts the plane to store.Config.OnCheckpointError.
func (p *Plane) OnCheckpointError(err error) {
	p.events.Emit(EventCheckpointFailure,
		"background store checkpoint failed: "+err.Error(), nil)
}

// OnWebhookExhausted adapts the plane to
// jobs.Config.OnWebhookExhausted.
func (p *Plane) OnWebhookExhausted(jobID, url string, attempts int, lastErr error) {
	attrs := map[string]string{
		"job":      jobID,
		"url":      url,
		"attempts": strconv.Itoa(attempts),
	}
	if lastErr != nil {
		attrs["error"] = lastErr.Error()
	}
	p.events.Emit(EventWebhookExhausted,
		fmt.Sprintf("webhook for job %s lost after %d attempts", jobID, attempts), attrs)
}
