package insight

// The event ring: a bounded in-memory log of typed anomalies. Metrics
// answer "how much"; events answer "what happened, when" — a tolerance
// band violated, a shed spike, a slow request, a checkpoint that
// failed to persist, a webhook whose retries ran out, an SLO starting
// to burn. Every event is mirrored to the structured log (so an
// operator tailing stderr sees it live) and counted in
// spec17d_insight_events_total{type}; GET /v1/events serves the ring.

import (
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// EventType names one anomaly class. The set is closed: handlers
// validate ?type= against it, and docs/OBSERVABILITY.md documents each.
type EventType string

const (
	// EventBandViolation: an analytic result disagreed with its exact
	// twin beyond the committed engine.Tolerances band for a metric.
	EventBandViolation EventType = "band_violation"
	// EventShedSpike: admission rejections plus scheduler sheds jumped
	// by more than shedSpikeThreshold within one sampling interval.
	EventShedSpike EventType = "shed_spike"
	// EventSlowTrace: a request trace exceeded the tracer's slow
	// threshold (the same condition that logs the span tree).
	EventSlowTrace EventType = "slow_trace"
	// EventCheckpointFailure: a background store checkpoint failed to
	// save (the previous on-disk snapshot stays intact).
	EventCheckpointFailure EventType = "checkpoint_failure"
	// EventWebhookExhausted: a job webhook ran out of delivery
	// attempts; the callback was lost until the next boot redelivers.
	EventWebhookExhausted EventType = "webhook_exhausted"
	// EventSLOBurn: an endpoint began burning its latency or error
	// budget in both the fast and slow windows.
	EventSLOBurn EventType = "slo_burn"
)

// KnownEventTypes returns the closed event-type set, for validation
// and discovery.
func KnownEventTypes() []EventType {
	return []EventType{
		EventBandViolation, EventShedSpike, EventSlowTrace,
		EventCheckpointFailure, EventWebhookExhausted, EventSLOBurn,
	}
}

// Event is one recorded anomaly.
type Event struct {
	// Seq increases monotonically across the process lifetime, so a
	// poller can detect ring overwrites (gaps in seq) and dedup across
	// polls.
	Seq     uint64            `json:"seq"`
	Time    time.Time         `json:"time"`
	Type    EventType         `json:"type"`
	Message string            `json:"message"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// EventLog is the bounded ring of recorded events. Safe for concurrent
// use; Emit never blocks and never allocates beyond the event itself.
type EventLog struct {
	capacity int
	ctr      *metrics.CounterVec
	log      *telemetry.Logger
	now      func() time.Time

	mu   sync.Mutex
	ring []Event
	next int
	seq  uint64
}

func newEventLog(capacity int, reg *metrics.Registry, log *telemetry.Logger, now func() time.Time) *EventLog {
	return &EventLog{
		capacity: capacity,
		ctr: reg.CounterVec("spec17d_insight_events_total",
			"Anomaly events recorded by the insight plane, by type.", "type"),
		log: log,
		now: now,
	}
}

// Emit records one event, mirrors it to the log, and counts it.
func (e *EventLog) Emit(typ EventType, msg string, attrs map[string]string) {
	ev := Event{Time: e.now(), Type: typ, Message: msg, Attrs: attrs}
	e.mu.Lock()
	e.seq++
	ev.Seq = e.seq
	if len(e.ring) < e.capacity {
		e.ring = append(e.ring, ev)
	} else {
		e.ring[e.next] = ev
		e.next = (e.next + 1) % e.capacity
	}
	e.mu.Unlock()
	e.ctr.With(string(typ)).Inc()
	if e.log != nil {
		kv := make([]any, 0, 4+2*len(attrs))
		kv = append(kv, "type", string(typ), "msg", msg)
		for k, v := range attrs {
			kv = append(kv, k, v)
		}
		e.log.Warn("insight event", kv...)
	}
}

// Events returns recorded events newest-first, filtered by type (""
// keeps all) and by time (zero keeps all; otherwise only events at or
// after since), capped at limit (<= 0 means no cap).
func (e *EventLog) Events(typ EventType, since time.Time, limit int) []Event {
	e.mu.Lock()
	// Chronological order: the ring is [next:] ++ [:next] once full.
	all := make([]Event, 0, len(e.ring))
	all = append(all, e.ring[e.next:]...)
	all = append(all, e.ring[:e.next]...)
	e.mu.Unlock()
	out := make([]Event, 0, len(all))
	for i := len(all) - 1; i >= 0; i-- {
		ev := all[i]
		if typ != "" && ev.Type != typ {
			continue
		}
		if !since.IsZero() && ev.Time.Before(since) {
			continue
		}
		out = append(out, ev)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Len returns the number of events currently buffered.
func (e *EventLog) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.ring)
}

// Total returns the number of events ever emitted (the latest seq).
func (e *EventLog) Total() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}
