package insight

// The metric-history recorder: every sampling tick captures the full
// registry through the typed Snapshot API and appends one point per
// series to a fixed-size ring. The daemon thereby answers "what did
// this metric do over the last N minutes" from its own memory — no
// Prometheus server required — and the SLO monitor computes window
// deltas from the same rings. Memory is strictly bounded: series
// count × ring capacity points, histograms additionally carrying one
// bucket-count slice per point.

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// point is one sampled observation of one series.
type point struct {
	t       time.Time
	value   float64  // counter/gauge value; histogram cumulative count
	sum     float64  // histogram sum
	buckets []uint64 // histogram cumulative per-bound counts (+Inf last)
}

// series is one labelled time series' ring.
type series struct {
	labelValues []string
	ring        []point
	next        int
}

func (s *series) add(p point, capacity int) {
	if len(s.ring) < capacity {
		s.ring = append(s.ring, p)
		return
	}
	s.ring[s.next] = p
	s.next = (s.next + 1) % capacity
}

// chronological returns the ring's points oldest-first.
func (s *series) chronological() []point {
	out := make([]point, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}

// window returns the points with t in [now-window, now], oldest-first.
// A zero window keeps everything retained.
func (s *series) window(window time.Duration, now time.Time) []point {
	pts := s.chronological()
	if window <= 0 {
		return pts
	}
	cutoff := now.Add(-window)
	for i, p := range pts {
		if !p.t.Before(cutoff) {
			return pts[i:]
		}
	}
	return nil
}

// recFamily is the recorded state of one metric family.
type recFamily struct {
	typ        string
	help       string
	labelNames []string
	bounds     []float64
	series     map[string]*series
	order      []string
}

// Recorder holds the rings. Safe for concurrent use.
type Recorder struct {
	capacity int

	mu   sync.Mutex
	fams map[string]*recFamily
}

func newRecorder(capacity int) *Recorder {
	return &Recorder{capacity: capacity, fams: make(map[string]*recFamily)}
}

// Capacity returns the per-series ring capacity.
func (r *Recorder) Capacity() int { return r.capacity }

// SeriesCount returns the number of distinct series being tracked.
func (r *Recorder) SeriesCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, f := range r.fams {
		n += len(f.series)
	}
	return n
}

// sample appends one point per series in snap, creating rings for
// series seen for the first time.
func (r *Recorder) sample(snap metrics.Snapshot, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fs := range snap {
		f, ok := r.fams[fs.Name]
		if !ok {
			f = &recFamily{
				typ:        fs.Type,
				help:       fs.Help,
				labelNames: fs.LabelNames,
				bounds:     fs.Bounds,
				series:     make(map[string]*series),
			}
			r.fams[fs.Name] = f
		}
		for _, ss := range fs.Series {
			key := strings.Join(ss.LabelValues, "\x00")
			sr, ok := f.series[key]
			if !ok {
				sr = &series{labelValues: ss.LabelValues}
				f.series[key] = sr
				f.order = append(f.order, key)
			}
			p := point{t: now, value: ss.Value, sum: ss.Sum}
			if fs.Type == "histogram" {
				p.value = float64(ss.Count)
				p.buckets = append([]uint64(nil), ss.Buckets...)
			}
			sr.add(p, r.capacity)
		}
	}
}

// HistoryPoint is one sampled value, as served by /v1/metrics/history.
type HistoryPoint struct {
	Time  time.Time `json:"time"`
	Value float64   `json:"value"`
}

// HistorySeries is one labelled series' windowed history plus the
// derivations the raw ring supports: a per-second rate for cumulative
// series (counters and histogram counts), and latency-style
// percentiles interpolated from histogram bucket deltas over the
// window.
type HistorySeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Points []HistoryPoint    `json:"points"`
	Rate   *float64          `json:"rate_per_second,omitempty"`
	P50    *float64          `json:"p50,omitempty"`
	P95    *float64          `json:"p95,omitempty"`
	P99    *float64          `json:"p99,omitempty"`
}

// History is the /v1/metrics/history response body for one family.
type History struct {
	Name            string          `json:"name"`
	Type            string          `json:"type"`
	Help            string          `json:"help,omitempty"`
	WindowSeconds   float64         `json:"window_seconds"`
	IntervalSeconds float64         `json:"interval_seconds"`
	Series          []HistorySeries `json:"series"`
}

// History returns the windowed history of the named family, with
// per-series rate/percentile derivation. The second return is false
// when the family has never been sampled. A zero window means the full
// retained ring.
func (r *Recorder) History(name string, window time.Duration, interval time.Duration, now time.Time) (History, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		return History{}, false
	}
	h := History{
		Name:            name,
		Type:            f.typ,
		Help:            f.help,
		WindowSeconds:   window.Seconds(),
		IntervalSeconds: interval.Seconds(),
	}
	for _, key := range f.order {
		sr := f.series[key]
		pts := sr.window(window, now)
		hs := HistorySeries{Points: make([]HistoryPoint, 0, len(pts))}
		if len(f.labelNames) > 0 {
			hs.Labels = make(map[string]string, len(f.labelNames))
			for i, n := range f.labelNames {
				if i < len(sr.labelValues) {
					hs.Labels[n] = sr.labelValues[i]
				}
			}
		}
		for _, p := range pts {
			hs.Points = append(hs.Points, HistoryPoint{Time: p.t, Value: p.value})
		}
		if len(pts) >= 2 {
			first, last := pts[0], pts[len(pts)-1]
			if f.typ == "counter" || f.typ == "histogram" {
				if secs := last.t.Sub(first.t).Seconds(); secs > 0 {
					rate := (last.value - first.value) / secs
					if rate < 0 {
						rate = 0
					}
					hs.Rate = &rate
				}
			}
			if f.typ == "histogram" {
				deltas := bucketDeltas(first.buckets, last.buckets)
				if total(deltas) > 0 {
					p50 := bucketQuantile(f.bounds, deltas, 0.50)
					p95 := bucketQuantile(f.bounds, deltas, 0.95)
					p99 := bucketQuantile(f.bounds, deltas, 0.99)
					hs.P50, hs.P95, hs.P99 = &p50, &p95, &p99
				}
			}
		}
		h.Series = append(h.Series, hs)
	}
	return h, true
}

// Names returns every sampled family name, sorted — the discovery aid
// the history handler suggests on an unknown ?name=.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// counterDelta returns how much the series grew over [now-window, now],
// measured between the earliest and latest retained samples inside the
// window. ok is false with fewer than two in-window samples.
func (r *Recorder) counterDelta(name string, labelValues []string, window time.Duration, now time.Time) (delta float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sr := r.lookup(name, labelValues)
	if sr == nil {
		return 0, false
	}
	pts := sr.window(window, now)
	if len(pts) < 2 {
		return 0, false
	}
	d := pts[len(pts)-1].value - pts[0].value
	if d < 0 {
		d = 0
	}
	return d, true
}

// histWindow returns the histogram's bucket growth over the window.
// ok is false with fewer than two in-window samples.
func (r *Recorder) histWindow(name string, labelValues []string, window time.Duration, now time.Time) (bounds []float64, deltas []uint64, count uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	sr := r.lookup(name, labelValues)
	if f == nil || sr == nil {
		return nil, nil, 0, false
	}
	pts := sr.window(window, now)
	if len(pts) < 2 {
		return nil, nil, 0, false
	}
	deltas = bucketDeltas(pts[0].buckets, pts[len(pts)-1].buckets)
	return f.bounds, deltas, total(deltas), true
}

// labelSets returns the label-value sets present for the named family,
// in first-seen order.
func (r *Recorder) labelSets(name string) [][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		return nil
	}
	out := make([][]string, 0, len(f.order))
	for _, key := range f.order {
		out = append(out, f.series[key].labelValues)
	}
	return out
}

// lookup finds one series; callers hold r.mu.
func (r *Recorder) lookup(name string, labelValues []string) *series {
	f, ok := r.fams[name]
	if !ok {
		return nil
	}
	return f.series[strings.Join(labelValues, "\x00")]
}

// bucketDeltas subtracts two cumulative bucket captures elementwise,
// clamping at zero (counters never go backwards in-process; the clamp
// is pure defensiveness).
func bucketDeltas(first, last []uint64) []uint64 {
	out := make([]uint64, len(last))
	for i := range last {
		var f uint64
		if i < len(first) {
			f = first[i]
		}
		if last[i] > f {
			out[i] = last[i] - f
		}
	}
	return out
}

func total(deltas []uint64) uint64 {
	var n uint64
	for _, d := range deltas {
		n += d
	}
	return n
}

// bucketQuantile interpolates the q-quantile from per-bound bucket
// deltas (+Inf bucket last), Prometheus histogram_quantile style:
// linear within a bucket, and a quantile landing in the +Inf bucket
// answers the highest finite bound (the data cannot say more).
func bucketQuantile(bounds []float64, deltas []uint64, q float64) float64 {
	n := total(deltas)
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	var cum float64
	for i, d := range deltas {
		prev := cum
		cum += float64(d)
		if cum < rank || d == 0 {
			continue
		}
		if i >= len(bounds) { // +Inf bucket
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(d)
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}
