package tlb

import (
	"testing"

	"repro/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Entries: 0, Ways: 1},
		{Entries: 64, Ways: 0},
		{Entries: 64, Ways: 5}, // not divisible
		{Entries: 96, Ways: 8}, // 12 sets, not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if err := (Config{Entries: 64, Ways: 4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestLookupSamePage(t *testing.T) {
	tl, err := New(Config{Entries: 16, Ways: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Lookup(0x1000) {
		t.Fatal("first page touch must miss")
	}
	if !tl.Lookup(0x1ABC) {
		t.Fatal("same-page access must hit")
	}
	if tl.Lookup(0x2000) {
		t.Fatal("next page must miss")
	}
	lookups, misses := tl.Stats()
	if lookups != 3 || misses != 2 {
		t.Fatalf("stats %d/%d, want 3/2", lookups, misses)
	}
}

func TestCapacityEviction(t *testing.T) {
	tl, _ := New(Config{Entries: 4, Ways: 4})
	// Touch 5 distinct pages; the first must be evicted (LRU).
	for p := uint64(0); p < 5; p++ {
		tl.Lookup(p << PageShift)
	}
	if tl.Lookup(0) {
		t.Fatal("page 0 should have been evicted")
	}
	if !tl.Lookup(4 << PageShift) {
		t.Fatal("page 4 should still be resident")
	}
}

func newHier(t *testing.T, withL2 bool) *Hierarchy {
	t.Helper()
	cfg := HierarchyConfig{
		ITLB: Config{Entries: 8, Ways: 8},
		DTLB: Config{Entries: 8, Ways: 8},
	}
	if withL2 {
		cfg.L2 = &Config{Entries: 64, Ways: 8}
	}
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := newHier(t, true)
	if lvl := h.TranslateData(0x5000); lvl != 2 {
		t.Fatalf("cold translation level %d, want 2 (walk)", lvl)
	}
	if lvl := h.TranslateData(0x5000); lvl != 0 {
		t.Fatalf("warm translation level %d, want 0", lvl)
	}
	c := h.Counts()
	if c.PageWalks != 1 || c.L2Misses != 1 || c.DTLBMisses != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestHierarchyL2Catch(t *testing.T) {
	h := newHier(t, true)
	// Touch 32 pages: beyond L1 DTLB (8) but within L2 (64).
	for pass := 0; pass < 2; pass++ {
		for p := uint64(0); p < 32; p++ {
			h.TranslateData(p << PageShift)
		}
	}
	h.ResetStats()
	for p := uint64(0); p < 32; p++ {
		h.TranslateData(p << PageShift)
	}
	c := h.Counts()
	if c.PageWalks != 0 {
		t.Fatalf("all pages fit in L2 TLB, got %d walks", c.PageWalks)
	}
	if c.DTLBMisses == 0 {
		t.Fatal("32 pages exceed the 8-entry DTLB, expected misses")
	}
}

func TestHierarchyNoL2(t *testing.T) {
	h := newHier(t, false)
	if lvl := h.TranslateInstr(0x9000); lvl != 2 {
		t.Fatalf("without L2, L1 miss must walk, got %d", lvl)
	}
	if c := h.Counts(); c.L2Lookups != 0 || c.PageWalks != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestInstrDataSplit(t *testing.T) {
	h := newHier(t, true)
	h.TranslateInstr(0x1000)
	h.TranslateData(0x2000)
	c := h.Counts()
	if c.ITLBLookups != 1 || c.DTLBLookups != 1 {
		t.Fatalf("split accounting wrong: %+v", c)
	}
}

func TestHierarchyResetStats(t *testing.T) {
	h := newHier(t, true)
	h.TranslateData(0xABC000)
	h.ResetStats()
	if c := h.Counts(); c != (Counts{}) {
		t.Fatalf("counts after reset: %+v", c)
	}
	if lvl := h.TranslateData(0xABC000); lvl != 0 {
		t.Fatal("contents must survive ResetStats")
	}
}

func TestRandomPagesMissMore(t *testing.T) {
	local := newHier(t, true)
	random := newHier(t, true)
	r := rng.New(42)
	for i := 0; i < 20000; i++ {
		local.TranslateData(uint64(r.Intn(8)) << PageShift)       // 8 pages: fits L1
		random.TranslateData(uint64(r.Intn(100000)) << PageShift) // 100k pages
	}
	lc, rc := local.Counts(), random.Counts()
	if lc.PageWalks*100 >= rc.PageWalks {
		t.Fatalf("random pages should walk far more: local %d vs random %d", lc.PageWalks, rc.PageWalks)
	}
}
