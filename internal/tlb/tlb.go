// Package tlb implements a trace-driven two-level TLB simulator:
// split L1 instruction/data TLBs backed by an optional unified L2 TLB,
// with page-walk counting. It provides the paper's TLB metrics
// (L1 I/D TLB MPMI, last-level TLB MPMI, page walks per million
// instructions; Table III).
package tlb

import (
	"fmt"

	"repro/internal/cache"
)

// PageShift is log2 of the simulated page size (4 KiB pages, the
// baseline configuration on every machine in Table IV).
const PageShift = 12

// Config describes one TLB level.
type Config struct {
	// Entries is the number of page translations held.
	Entries int
	// Ways is the associativity; Ways == Entries gives a fully
	// associative TLB (common for small L1 TLBs).
	Ways int
}

// Validate reports an error for impossible geometries.
func (c Config) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 {
		return fmt.Errorf("tlb: non-positive geometry %+v", c)
	}
	if c.Entries%c.Ways != 0 {
		return fmt.Errorf("tlb: entries %d not divisible by ways %d", c.Entries, c.Ways)
	}
	sets := c.Entries / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("tlb: set count %d not a power of two", sets)
	}
	return nil
}

// TLB is a single translation buffer level. A TLB over page numbers is
// structurally a cache over page-granule "lines", so it reuses the
// cache simulator with a line size of one page.
type TLB struct {
	c *cache.Cache
}

// New builds a TLB level from cfg.
func New(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := cache.New(cache.Config{
		SizeBytes: cfg.Entries << PageShift,
		Ways:      cfg.Ways,
		LineBytes: 1 << PageShift,
	})
	if err != nil {
		return nil, fmt.Errorf("tlb: %w", err)
	}
	return &TLB{c: inner}, nil
}

// Lookup translates the page containing addr, reporting a hit or miss.
func (t *TLB) Lookup(addr uint64) bool { return t.c.Access(addr) }

// Stats returns lookups and misses.
func (t *TLB) Stats() (lookups, misses uint64) { return t.c.Stats() }

// ResetStats clears counters, keeping contents.
func (t *TLB) ResetStats() { t.c.ResetStats() }

// Hierarchy is the two-level structure used by all simulated machines:
// split L1 I/D TLBs and an optional unified second level. A miss in
// both levels costs a page walk.
type Hierarchy struct {
	ITLB, DTLB *TLB
	L2         *TLB // nil = single-level TLB (older machines)

	l2Lookups, l2Misses uint64
	pageWalks           uint64
}

// HierarchyConfig assembles a TLB hierarchy.
type HierarchyConfig struct {
	ITLB, DTLB Config
	L2         *Config
}

// NewHierarchy builds and validates the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	itlb, err := New(cfg.ITLB)
	if err != nil {
		return nil, fmt.Errorf("ITLB: %w", err)
	}
	dtlb, err := New(cfg.DTLB)
	if err != nil {
		return nil, fmt.Errorf("DTLB: %w", err)
	}
	h := &Hierarchy{ITLB: itlb, DTLB: dtlb}
	if cfg.L2 != nil {
		l2, err := New(*cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("L2 TLB: %w", err)
		}
		h.L2 = l2
	}
	return h, nil
}

// TranslateInstr translates an instruction fetch address. The return
// value is 0 for an L1 hit, 1 for an L2 hit, 2 for a page walk.
func (h *Hierarchy) TranslateInstr(addr uint64) int {
	if h.ITLB.Lookup(addr) {
		return 0
	}
	return h.secondLevel(addr)
}

// TranslateData translates a load/store address, same encoding.
func (h *Hierarchy) TranslateData(addr uint64) int {
	if h.DTLB.Lookup(addr) {
		return 0
	}
	return h.secondLevel(addr)
}

func (h *Hierarchy) secondLevel(addr uint64) int {
	if h.L2 == nil {
		h.pageWalks++
		return 2
	}
	h.l2Lookups++
	if h.L2.Lookup(addr) {
		return 1
	}
	h.l2Misses++
	h.pageWalks++
	return 2
}

// Counts aggregates the hierarchy's statistics.
type Counts struct {
	ITLBLookups, ITLBMisses uint64
	DTLBLookups, DTLBMisses uint64
	L2Lookups, L2Misses     uint64
	PageWalks               uint64
}

// Counts returns a snapshot of all counters.
func (h *Hierarchy) Counts() Counts {
	c := Counts{L2Lookups: h.l2Lookups, L2Misses: h.l2Misses, PageWalks: h.pageWalks}
	c.ITLBLookups, c.ITLBMisses = h.ITLB.Stats()
	c.DTLBLookups, c.DTLBMisses = h.DTLB.Stats()
	return c
}

// ResetStats clears all counters, keeping contents warm.
func (h *Hierarchy) ResetStats() {
	h.ITLB.ResetStats()
	h.DTLB.ResetStats()
	if h.L2 != nil {
		h.L2.ResetStats()
	}
	h.l2Lookups, h.l2Misses, h.pageWalks = 0, 0, 0
}
