// Package perfdb is a synthetic stand-in for SPEC's published-results
// database, which the paper uses to validate its benchmark subsets
// (Figures 5 and 6, Table VI). Real submissions report per-benchmark
// speedups of commercial systems over a reference machine; the overall
// score is the geometric mean across the sub-suite.
//
// The synthetic database models each commercial system as a vector of
// capability factors (frequency, memory subsystem, branch prediction,
// front-end) and derives each benchmark's speedup from how its
// measured CPI stack decomposes on the reference machine: a system
// with a strong memory subsystem speeds up memory-bound benchmarks
// most, and so on, plus a small deterministic submission noise. This
// preserves the property the validation experiment depends on:
// behaviourally similar benchmarks earn similar speedups, so a
// behaviourally representative subset predicts the full-suite score
// while an arbitrary subset need not.
package perfdb

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cpistack"
	"repro/internal/rng"
	"repro/internal/stats"
)

// System is one commercial submission's machine.
type System struct {
	Name string
	// Freq is the clock/core advantage over the reference machine,
	// applied to all benchmarks.
	Freq float64
	// MemBoost divides back-end memory stall cycles; CacheBoost
	// divides front-end (instruction fetch) stalls; BranchBoost
	// divides misprediction stalls. All must be >= 1.
	MemBoost, CacheBoost, BranchBoost float64
}

// Validate reports implausible capability factors.
func (s System) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("perfdb: system with empty name")
	}
	if s.Freq <= 0 {
		return fmt.Errorf("perfdb: system %s frequency factor %v", s.Name, s.Freq)
	}
	for name, v := range map[string]float64{
		"MemBoost": s.MemBoost, "CacheBoost": s.CacheBoost, "BranchBoost": s.BranchBoost,
	} {
		if v < 1 {
			return fmt.Errorf("perfdb: system %s %s %v must be >= 1", s.Name, name, v)
		}
	}
	return nil
}

// systemPool is the roster of synthetic commercial systems. Per-
// category submissions draw from this pool, mirroring the paper's
// situation where the submitted systems differ per sub-suite.
var systemPool = []System{
	{Name: "vendorA-2S-server", Freq: 1.30, MemBoost: 3.5, CacheBoost: 2.0, BranchBoost: 1.3},
	{Name: "vendorB-hpc-node", Freq: 1.05, MemBoost: 5.0, CacheBoost: 1.4, BranchBoost: 1.1},
	{Name: "vendorC-workstation", Freq: 1.70, MemBoost: 1.3, CacheBoost: 1.2, BranchBoost: 1.8},
	{Name: "vendorD-blade", Freq: 0.90, MemBoost: 2.2, CacheBoost: 3.0, BranchBoost: 1.5},
	{Name: "vendorE-desktop", Freq: 1.85, MemBoost: 1.1, CacheBoost: 1.1, BranchBoost: 2.0},
	{Name: "vendorF-micro-server", Freq: 0.80, MemBoost: 2.6, CacheBoost: 1.8, BranchBoost: 1.05},
}

// SystemsFor returns the synthetic submissions available for a
// category ("speed-int", "rate-int", "speed-fp", "rate-fp"). The
// selection is deterministic per category and between 4 and 5 systems,
// matching the paper's "very few companies have submitted results for
// all categories".
func SystemsFor(category string) []System {
	r := rng.NewKeyed("perfdb-category:"+category, 0)
	n := 4 + r.Intn(2)
	idx := r.Intn(len(systemPool))
	out := make([]System, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, systemPool[(idx+i)%len(systemPool)])
	}
	return out
}

// DB holds per-system, per-benchmark speedups over the reference.
type DB struct {
	systems []System
	scores  map[string]map[string]float64 // system -> benchmark -> speedup
}

// Build derives the database from the benchmarks' CPI stacks measured
// on the reference machine. The stacks map is keyed by benchmark name.
func Build(stacks map[string]cpistack.Stack, systems []System) (*DB, error) {
	if len(stacks) == 0 {
		return nil, fmt.Errorf("perfdb: no benchmark stacks")
	}
	if len(systems) == 0 {
		return nil, fmt.Errorf("perfdb: no systems")
	}
	db := &DB{systems: systems, scores: make(map[string]map[string]float64)}
	for _, sys := range systems {
		if err := sys.Validate(); err != nil {
			return nil, err
		}
		per := make(map[string]float64, len(stacks))
		for bench, st := range stacks {
			total := st.Total()
			if total <= 0 {
				return nil, fmt.Errorf("perfdb: benchmark %s has non-positive CPI", bench)
			}
			// The system removes stall cycles according to its strengths.
			newCPI := st.Base + st.Deps +
				st.FrontEnd/sys.CacheBoost +
				st.BadSpec/sys.BranchBoost +
				(st.L2+st.L3+st.Memory)/sys.MemBoost
			speedup := sys.Freq * total / newCPI
			// Deterministic submission noise (compiler flags, firmware):
			// +/-2.5%.
			r := rng.NewKeyed("perfdb:"+sys.Name+"/"+bench, 1)
			speedup *= 1 + (r.Float64()-0.5)*0.05
			per[bench] = speedup
		}
		db.scores[sys.Name] = per
	}
	return db, nil
}

// Systems returns the systems in the database, in insertion order.
func (db *DB) Systems() []System {
	out := make([]System, len(db.systems))
	copy(out, db.systems)
	return out
}

// Speedup returns one benchmark's speedup on one system.
func (db *DB) Speedup(system, benchmark string) (float64, error) {
	per, ok := db.scores[system]
	if !ok {
		return 0, fmt.Errorf("perfdb: unknown system %q", system)
	}
	v, ok := per[benchmark]
	if !ok {
		return 0, fmt.Errorf("perfdb: system %q has no result for %q", system, benchmark)
	}
	return v, nil
}

// Score returns the SPEC-style overall score of a system on a
// benchmark list: the geometric mean of the per-benchmark speedups.
func (db *DB) Score(system string, benchmarks []string) (float64, error) {
	if len(benchmarks) == 0 {
		return 0, fmt.Errorf("perfdb: empty benchmark list")
	}
	vals := make([]float64, 0, len(benchmarks))
	for _, b := range benchmarks {
		v, err := db.Speedup(system, b)
		if err != nil {
			return 0, err
		}
		vals = append(vals, v)
	}
	return stats.GeoMean(vals), nil
}

// WeightedScore returns the weighted geometric mean of the
// per-benchmark speedups: prod(speedup_i^(w_i/sum(w))). A subset
// chosen by clustering uses each representative's cluster size as its
// weight, so the subset score estimates the full-suite score rather
// than over-weighting outlier clusters.
func (db *DB) WeightedScore(system string, benchmarks []string, weights []float64) (float64, error) {
	if len(benchmarks) == 0 {
		return 0, fmt.Errorf("perfdb: empty benchmark list")
	}
	if len(weights) != len(benchmarks) {
		return 0, fmt.Errorf("perfdb: %d weights for %d benchmarks", len(weights), len(benchmarks))
	}
	total := 0.0
	for _, w := range weights {
		if w <= 0 {
			return 0, fmt.Errorf("perfdb: non-positive weight %v", w)
		}
		total += w
	}
	logSum := 0.0
	for i, b := range benchmarks {
		v, err := db.Speedup(system, b)
		if err != nil {
			return 0, err
		}
		logSum += weights[i] / total * math.Log(v)
	}
	return math.Exp(logSum), nil
}

// SubsetError returns |score(subset) - score(all)| / score(all) for
// one system — the per-system bars of Figures 5 and 6.
func (db *DB) SubsetError(system string, subset, all []string) (float64, error) {
	s, err := db.Score(system, subset)
	if err != nil {
		return 0, err
	}
	full, err := db.Score(system, all)
	if err != nil {
		return 0, err
	}
	e := (s - full) / full
	if e < 0 {
		e = -e
	}
	return e, nil
}

// Validation summarizes subset accuracy across every system in the DB.
type Validation struct {
	// PerSystem maps system name to its relative error.
	PerSystem map[string]float64
	// Avg and Max are the mean and worst relative errors.
	Avg, Max float64
}

// Validate computes the subset-vs-full error on all systems using the
// plain geometric mean (nil weights) or a weighted one.
func (db *DB) Validate(subset, all []string) (Validation, error) {
	return db.ValidateWeighted(subset, nil, all)
}

// ValidateWeighted computes the subset-vs-full error on all systems,
// scoring the subset with the given per-benchmark weights (nil =
// unweighted).
func (db *DB) ValidateWeighted(subset []string, weights []float64, all []string) (Validation, error) {
	v := Validation{PerSystem: make(map[string]float64, len(db.systems))}
	names := make([]string, 0, len(db.systems))
	for _, s := range db.systems {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		var subScore float64
		var err error
		if weights == nil {
			subScore, err = db.Score(name, subset)
		} else {
			subScore, err = db.WeightedScore(name, subset, weights)
		}
		if err != nil {
			return Validation{}, err
		}
		full, err := db.Score(name, all)
		if err != nil {
			return Validation{}, err
		}
		e := math.Abs(subScore-full) / full
		v.PerSystem[name] = e
		v.Avg += e
		if e > v.Max {
			v.Max = e
		}
	}
	v.Avg /= float64(len(names))
	return v, nil
}

// RandomSubset draws k distinct benchmarks from all, deterministically
// per seed — the paper's "random sets 1 and 2" comparison (Table VI).
func RandomSubset(all []string, k int, seed uint64) []string {
	if k >= len(all) {
		out := make([]string, len(all))
		copy(out, all)
		return out
	}
	idx := make([]int, len(all))
	for i := range idx {
		idx[i] = i
	}
	r := rng.New(seed)
	// Partial Fisher-Yates.
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[idx[i]]
	}
	sort.Strings(out)
	return out
}
