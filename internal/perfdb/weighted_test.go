package perfdb

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cpistack"
	"repro/internal/rng"
)

func TestWeightedScoreEqualWeightsMatchesGeomean(t *testing.T) {
	db, _ := Build(testStacks(), testSystems())
	all := []string{"compute", "memory", "branchy"}
	plain, err := db.Score("mem-monster", all)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := db.WeightedScore("mem-monster", all, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain-weighted) > 1e-12 {
		t.Fatalf("equal weights must equal the plain geomean: %v vs %v", plain, weighted)
	}
}

func TestWeightedScoreErrors(t *testing.T) {
	db, _ := Build(testStacks(), testSystems())
	if _, err := db.WeightedScore("mem-monster", nil, nil); err == nil {
		t.Fatal("empty benchmarks must error")
	}
	if _, err := db.WeightedScore("mem-monster", []string{"compute"}, []float64{1, 2}); err == nil {
		t.Fatal("weight/benchmark mismatch must error")
	}
	if _, err := db.WeightedScore("mem-monster", []string{"compute"}, []float64{0}); err == nil {
		t.Fatal("non-positive weight must error")
	}
	if _, err := db.WeightedScore("mem-monster", []string{"nope"}, []float64{1}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

// Property: a weighted score always lies between the min and max
// per-benchmark speedups.
func TestWeightedScoreBoundsProperty(t *testing.T) {
	db, _ := Build(testStacks(), testSystems())
	all := []string{"compute", "memory", "branchy"}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		weights := []float64{
			0.1 + r.Float64()*10, 0.1 + r.Float64()*10, 0.1 + r.Float64()*10,
		}
		score, err := db.WeightedScore("mem-monster", all, weights)
		if err != nil {
			return false
		}
		min, max := math.Inf(1), math.Inf(-1)
		for _, b := range all {
			v, _ := db.Speedup("mem-monster", b)
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
		return score >= min-1e-9 && score <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateWeightedReducesOutlierBias(t *testing.T) {
	// Five near-identical compute benchmarks plus one memory outlier:
	// a 2-benchmark subset {compute rep, outlier} scored with cluster
	// sizes {5, 1} must estimate the full-suite score better than the
	// plain geomean, which over-weights the outlier.
	stacks := map[string]cpistack.Stack{
		"c1":  {Base: 0.30, Deps: 0.10},
		"c2":  {Base: 0.31, Deps: 0.10},
		"c3":  {Base: 0.30, Deps: 0.11},
		"c4":  {Base: 0.29, Deps: 0.10},
		"c5":  {Base: 0.30, Deps: 0.09},
		"mem": {Base: 0.30, L3: 0.30, Memory: 0.90},
	}
	db, err := Build(stacks, testSystems())
	if err != nil {
		t.Fatal(err)
	}
	all := []string{"c1", "c2", "c3", "c4", "c5", "mem"}
	subset := []string{"c3", "mem"}
	plain, err := db.Validate(subset, all)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := db.ValidateWeighted(subset, []float64{5, 1}, all)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Avg >= plain.Avg {
		t.Fatalf("cluster-size weighting (%v) should beat plain geomean (%v)",
			weighted.Avg, plain.Avg)
	}
}
