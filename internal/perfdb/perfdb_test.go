package perfdb

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cpistack"
)

// stacks for three archetypes: compute-bound, memory-bound, branch-bound.
func testStacks() map[string]cpistack.Stack {
	return map[string]cpistack.Stack{
		"compute": {Base: 0.25, Deps: 0.15},
		"memory":  {Base: 0.25, Deps: 0.10, L2: 0.10, L3: 0.20, Memory: 0.55},
		"branchy": {Base: 0.25, Deps: 0.15, BadSpec: 0.40},
	}
}

func testSystems() []System {
	return []System{
		{Name: "mem-monster", Freq: 1.0, MemBoost: 4, CacheBoost: 1, BranchBoost: 1},
		{Name: "fast-clock", Freq: 1.5, MemBoost: 1, CacheBoost: 1, BranchBoost: 1},
	}
}

func TestBuildAndSpeedupShape(t *testing.T) {
	db, err := Build(testStacks(), testSystems())
	if err != nil {
		t.Fatal(err)
	}
	// The memory-boosted system must speed up the memory-bound
	// benchmark far more than the compute-bound one.
	memUp, err := db.Speedup("mem-monster", "memory")
	if err != nil {
		t.Fatal(err)
	}
	compUp, err := db.Speedup("mem-monster", "compute")
	if err != nil {
		t.Fatal(err)
	}
	if memUp < compUp*1.5 {
		t.Fatalf("memory-bound speedup %v should dwarf compute-bound %v", memUp, compUp)
	}
	// The pure-frequency system speeds everything up by ~1.5.
	for _, b := range []string{"compute", "memory", "branchy"} {
		v, err := db.Speedup("fast-clock", b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-1.5) > 0.1 {
			t.Errorf("fast-clock speedup of %s = %v, want ≈1.5", b, v)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, testSystems()); err == nil {
		t.Fatal("no stacks must error")
	}
	if _, err := Build(testStacks(), nil); err == nil {
		t.Fatal("no systems must error")
	}
	bad := []System{{Name: "x", Freq: 1, MemBoost: 0.5, CacheBoost: 1, BranchBoost: 1}}
	if _, err := Build(testStacks(), bad); err == nil {
		t.Fatal("invalid system must error")
	}
	zero := map[string]cpistack.Stack{"z": {}}
	if _, err := Build(zero, testSystems()); err == nil {
		t.Fatal("zero-CPI stack must error")
	}
}

func TestScoreGeomean(t *testing.T) {
	db, _ := Build(testStacks(), testSystems())
	all := []string{"compute", "memory", "branchy"}
	s, err := db.Score("mem-monster", all)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := db.Speedup("mem-monster", "compute")
	b, _ := db.Speedup("mem-monster", "memory")
	c, _ := db.Speedup("mem-monster", "branchy")
	want := math.Cbrt(a * b * c)
	if math.Abs(s-want) > 1e-9 {
		t.Fatalf("Score = %v, want %v", s, want)
	}
	if _, err := db.Score("mem-monster", nil); err == nil {
		t.Fatal("empty list must error")
	}
	if _, err := db.Score("nope", all); err == nil {
		t.Fatal("unknown system must error")
	}
	if _, err := db.Speedup("mem-monster", "nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestSubsetErrorFullSubsetIsZero(t *testing.T) {
	db, _ := Build(testStacks(), testSystems())
	all := []string{"compute", "memory", "branchy"}
	e, err := db.SubsetError("fast-clock", all, all)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("full subset error %v, want 0", e)
	}
}

func TestValidate(t *testing.T) {
	db, _ := Build(testStacks(), testSystems())
	all := []string{"compute", "memory", "branchy"}
	v, err := db.Validate([]string{"compute"}, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.PerSystem) != 2 {
		t.Fatalf("per-system errors = %d, want 2", len(v.PerSystem))
	}
	if v.Max < v.Avg {
		t.Fatal("max error must be >= average")
	}
	// A compute-only subset badly mispredicts the mem-monster score.
	if v.PerSystem["mem-monster"] < 0.10 {
		t.Fatalf("biased subset should err on mem-monster, got %v", v.PerSystem["mem-monster"])
	}
}

func TestRepresentativeSubsetBeatsBiasedSubset(t *testing.T) {
	// A subset drawing one benchmark per behaviour class predicts the
	// overall score better than a subset of three similar benchmarks.
	stacks := map[string]cpistack.Stack{
		"mem1": {Base: 0.3, L3: 0.2, Memory: 0.6}, "mem2": {Base: 0.3, L3: 0.22, Memory: 0.58},
		"cpu1": {Base: 0.4, Deps: 0.1}, "cpu2": {Base: 0.42, Deps: 0.1},
		"br1": {Base: 0.3, BadSpec: 0.4}, "br2": {Base: 0.32, BadSpec: 0.38},
	}
	db, err := Build(stacks, testSystems())
	if err != nil {
		t.Fatal(err)
	}
	all := []string{"mem1", "mem2", "cpu1", "cpu2", "br1", "br2"}
	good, err := db.Validate([]string{"mem1", "cpu1", "br1"}, all)
	if err != nil {
		t.Fatal(err)
	}
	biased, err := db.Validate([]string{"mem1", "mem2", "br1"}, all)
	if err != nil {
		t.Fatal(err)
	}
	if good.Avg >= biased.Avg {
		t.Fatalf("representative subset (%v) should beat biased subset (%v)", good.Avg, biased.Avg)
	}
}

func TestSystemsFor(t *testing.T) {
	for _, cat := range []string{"speed-int", "rate-int", "speed-fp", "rate-fp"} {
		systems := SystemsFor(cat)
		if len(systems) < 4 || len(systems) > 5 {
			t.Errorf("%s: %d systems, want 4-5", cat, len(systems))
		}
		again := SystemsFor(cat)
		if !reflect.DeepEqual(systems, again) {
			t.Errorf("%s: selection must be deterministic", cat)
		}
		for _, s := range systems {
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", cat, err)
			}
		}
	}
}

func TestRandomSubset(t *testing.T) {
	all := []string{"a", "b", "c", "d", "e", "f"}
	s1 := RandomSubset(all, 3, 1)
	s2 := RandomSubset(all, 3, 1)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed must give same subset")
	}
	s3 := RandomSubset(all, 3, 2)
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds should give different subsets")
	}
	if len(s1) != 3 {
		t.Fatalf("subset size %d, want 3", len(s1))
	}
	seen := map[string]bool{}
	for _, b := range s1 {
		if seen[b] {
			t.Fatal("subset has duplicates")
		}
		seen[b] = true
	}
	whole := RandomSubset(all, 10, 3)
	if len(whole) != len(all) {
		t.Fatal("k >= n should return everything")
	}
}

func TestDBSystemsCopy(t *testing.T) {
	db, _ := Build(testStacks(), testSystems())
	s := db.Systems()
	s[0].Name = "mutated"
	if db.Systems()[0].Name == "mutated" {
		t.Fatal("Systems must return a copy")
	}
}
