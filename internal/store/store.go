// Package store is the persistent measurement store of the
// reproduction: a content-addressed cache of raw simulation results
// keyed by (machine, workload, canonical run options, substrate
// fingerprint). The paper's pipeline is "characterize once, analyze
// many ways" — every table and figure reads the same measurement
// matrix — so the expensive substrate runs are worth remembering
// across experiments *and* across processes.
//
// Three layers of reuse:
//
//   - An in-memory map serves repeated measurements of the same
//     (machine, workload, options) triple instantly, across all
//     experiments sharing the store.
//   - A per-key singleflight coalesces concurrent requests for one
//     uncomputed measurement onto a single simulation; waiters carry a
//     context.Context, and a computation whose every waiter has gone
//     away is canceled instead of burning a worker.
//   - An optional on-disk JSON snapshot (atomic write-temp-rename)
//     makes restarts warm: a daemon reloading its snapshot answers its
//     first report without re-simulating anything.
//
// Staleness is impossible by construction. Each key embeds a content
// hash of the machine configuration and the workload specification, so
// editing the profile database or a machine model changes the key and
// the old record is simply never found again. The snapshot header
// additionally carries a substrate fingerprint (bumped whenever the
// simulator code changes behaviour); a snapshot written by a different
// substrate is silently discarded and everything is recomputed.
// Records are bit-identical to fresh measurements — the substrate is
// deterministic and float64 values round-trip exactly through JSON —
// so enabling the store never changes a result.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// snapshotVersion is the on-disk format version. A snapshot with a
// different version is discarded (recompute beats misinterpreting).
const snapshotVersion = 1

// substrateFingerprint identifies the simulator generation. Bump it
// whenever a change to the measurement substrate (trace generator,
// cache/TLB/branch models, CPI stack, power model) alters results;
// snapshots written under another fingerprint are discarded wholesale.
const substrateFingerprint = "spec17-substrate-v1"

// Fingerprint returns the substrate fingerprint embedded in snapshot
// headers.
func Fingerprint() string { return substrateFingerprint }

// Key identifies one measurement: a workload on a machine at a
// fidelity, plus a content hash binding the key to the exact machine
// configuration and workload specification that produced the record.
type Key struct {
	// Machine is the measuring machine's name.
	Machine string `json:"machine"`
	// Workload is the workload's seed key (machine.Workload.Key).
	Workload string `json:"workload"`
	// Instructions and Warmup are the canonical run options.
	Instructions int `json:"instructions"`
	Warmup       int `json:"warmup"`
	// Copies is the concurrent-copy count of a multi-copy (SPECrate)
	// record; 0 for single-copy measurements.
	Copies int `json:"copies,omitempty"`
	// Engine is the measurement engine tier that produced the record;
	// "" means the exact (trace-driven) engine, so records written
	// before engines existed keep their identity and stay warm.
	Engine string `json:"engine,omitempty"`
	// Content is the hash of the machine configuration and workload
	// specification. A changed profile or machine model changes the
	// hash, so stale records become unreachable instead of wrong.
	Content string `json:"content"`
}

// ID returns the key's canonical string identity — the store's map
// key, and the identity the shared scheduler (internal/sched)
// deduplicates in-flight simulations by.
func (k Key) ID() string {
	return k.Machine + "|" + k.Workload +
		"|i" + strconv.Itoa(k.Instructions) +
		"|w" + strconv.Itoa(k.Warmup) +
		"|c" + strconv.Itoa(k.Copies) +
		"|e" + k.Engine +
		"|" + k.Content
}

// id is the historical spelling of ID.
func (k Key) id() string { return k.ID() }

// contentHash hashes the full measurement identity: the machine's
// configuration and the workload's spec, seed key, and ILP. JSON
// marshalling of these structs is deterministic (fixed field order),
// so equal inputs hash equally.
func contentHash(cfg machine.Config, w machine.Workload) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	// Encode cannot fail on these plain structs; ignore the error so
	// the hash helper stays infallible for callers.
	_ = enc.Encode(cfg)
	_ = enc.Encode(w)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// KeyFor returns the store key of a single-copy measurement of w on m
// under the canonical form of opts.
func KeyFor(m *machine.Machine, w machine.Workload, opts machine.RunOptions) Key {
	c := opts.Canonical()
	return Key{
		Machine:      m.Name(),
		Workload:     w.Key,
		Instructions: c.Instructions,
		Warmup:       c.WarmupInstructions,
		Content:      contentHash(m.Config(), w),
	}
}

// KeyForMulti returns the store key of a copies-way multi-copy
// (SPECrate-style) measurement of w on m.
func KeyForMulti(m *machine.Machine, w machine.Workload, copies int, opts machine.RunOptions) Key {
	k := KeyFor(m, w, opts)
	k.Copies = copies
	return k
}

// KeyForEngine returns the store key of a single-copy measurement of w
// on m as produced by the named engine tier. The exact tier is
// normalized to the empty string so exact records keep the identity
// they had before engine tiers existed (old snapshots stay warm).
func KeyForEngine(m *machine.Machine, w machine.Workload, opts machine.RunOptions, engineTier string) Key {
	k := KeyFor(m, w, opts)
	if engineTier != "exact" {
		k.Engine = engineTier
	}
	return k
}

// Config configures a Store. The zero value is a usable, memory-only
// store.
type Config struct {
	// Path is the snapshot file. Empty means memory-only: Load and
	// Save become no-ops.
	Path string
	// Metrics receives the store's instruments (spec17_store_*).
	// Defaults to a private registry.
	Metrics *metrics.Registry
	// Log receives load/persist warnings. Defaults to the standard
	// logger.
	Log *log.Logger
	// OnCheckpointError, when set, is invoked (from the checkpoint
	// goroutine) for every failed background save — how the insight
	// plane turns a silently-logged persistence failure into a typed
	// operator event. The snapshot on disk stays intact either way.
	OnCheckpointError func(error)
}

// storeMetrics bundles the store's instruments.
type storeMetrics struct {
	hits        *metrics.Counter
	misses      *metrics.Counter
	loaded      *metrics.Counter
	persisted   *metrics.Counter
	entries     *metrics.Gauge
	checkpoints *metrics.Counter
}

func newStoreMetrics(r *metrics.Registry) storeMetrics {
	return storeMetrics{
		hits: r.Counter("spec17_store_hits_total",
			"Measurements served from the store without simulating."),
		misses: r.Counter("spec17_store_misses_total",
			"Measurements the store had to compute (simulations led)."),
		loaded: r.Counter("spec17_store_loaded_entries_total",
			"Records restored from the on-disk snapshot at open."),
		persisted: r.Counter("spec17_store_persisted_entries_total",
			"Records written to the on-disk snapshot across saves."),
		entries: r.Gauge("spec17_store_entries",
			"Records currently resident in the store."),
		checkpoints: r.Counter("spec17_store_checkpoints_total",
			"Background snapshot saves performed by StartCheckpointing."),
	}
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits      int64 // measurements served from memory
	Misses    int64 // measurements computed (simulations led)
	Loaded    int64 // records restored from the snapshot at open
	Persisted int64 // records written across all saves
	Entries   int64 // records currently resident
}

// flight is one in-progress computation. The context given to the
// compute function is canceled when every interested caller has gone
// away, so abandoned simulations stop instead of burning a worker.
type flight struct {
	done   chan struct{}
	val    any
	err    error
	refs   int // interested callers, guarded by Store.mu
	cancel context.CancelFunc
}

// Store is a concurrency-safe measurement store. Create with Open (or
// use new(Store) for a bare memory-only store via Open(Config{})).
type Store struct {
	cfg Config
	met storeMetrics

	mu      sync.Mutex
	single  map[string]*machine.RawCounts
	multi   map[string]*machine.MultiCounts
	flights map[string]*flight

	// gen counts record writes; savedGen is the gen captured by the
	// last successful Save. They differ exactly when the store holds
	// records the snapshot doesn't — what checkpointing looks at.
	gen      int64
	savedGen int64
}

// Open returns a ready Store, loading the snapshot at cfg.Path when
// one exists. Open never fails: a missing snapshot starts cold, and a
// corrupted, truncated, version-mismatched, or fingerprint-mismatched
// snapshot is discarded so everything recomputes. The returned error
// is advisory — it describes a discarded snapshot (callers typically
// log it) and the Store is fully usable regardless.
func Open(cfg Config) (*Store, error) {
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	s := &Store{
		cfg:     cfg,
		met:     newStoreMetrics(cfg.Metrics),
		single:  make(map[string]*machine.RawCounts),
		multi:   make(map[string]*machine.MultiCounts),
		flights: make(map[string]*flight),
	}
	if cfg.Path == "" {
		return s, nil
	}
	err := s.load()
	if err != nil {
		return s, fmt.Errorf("store: snapshot %s discarded: %w", cfg.Path, err)
	}
	return s, nil
}

// snapshot is the on-disk format: a versioned, fingerprinted header
// over the sorted record list.
type snapshot struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Entries     []snapshotEntry `json:"entries"`
}

// snapshotEntry is one record; exactly one of Counts and Multi is set.
type snapshotEntry struct {
	Key    Key                  `json:"key"`
	Counts *machine.RawCounts   `json:"counts,omitempty"`
	Multi  *machine.MultiCounts `json:"multi,omitempty"`
}

// load restores the snapshot at cfg.Path. Any defect discards the
// snapshot and leaves the store empty; the error describes why.
func (s *Store) load() error {
	data, err := os.ReadFile(s.cfg.Path)
	if errors.Is(err, os.ErrNotExist) {
		return nil // cold start, not a defect
	}
	if err != nil {
		return err
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("parsing: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.Fingerprint != substrateFingerprint {
		return fmt.Errorf("substrate fingerprint %q, want %q", snap.Fingerprint, substrateFingerprint)
	}
	n := 0
	s.mu.Lock()
	for _, e := range snap.Entries {
		if e.Key.Machine == "" || e.Key.Workload == "" || e.Key.Content == "" {
			continue // malformed record: skip, never serve
		}
		switch {
		case e.Multi != nil:
			s.multi[e.Key.id()] = e.Multi
			n++
		case e.Counts != nil:
			s.single[e.Key.id()] = e.Counts
			n++
		}
	}
	total := len(s.single) + len(s.multi)
	s.mu.Unlock()
	s.met.loaded.Add(float64(n))
	s.met.entries.Set(float64(total))
	return nil
}

// Save writes the snapshot atomically (write to a temp file in the
// same directory, fsync, rename). A crash mid-save leaves the previous
// snapshot intact. No-op for memory-only stores.
func (s *Store) Save() error {
	if s.cfg.Path == "" {
		return nil
	}
	s.mu.Lock()
	snap := snapshot{Version: snapshotVersion, Fingerprint: substrateFingerprint}
	for id, rc := range s.single {
		snap.Entries = append(snap.Entries, snapshotEntry{Key: keyFromID(id), Counts: rc})
	}
	for id, mc := range s.multi {
		snap.Entries = append(snap.Entries, snapshotEntry{Key: keyFromID(id), Multi: mc})
	}
	gen := s.gen
	s.mu.Unlock()
	sort.Slice(snap.Entries, func(i, j int) bool {
		return snap.Entries[i].Key.id() < snap.Entries[j].Key.id()
	})
	data, err := json.MarshalIndent(&snap, "", " ")
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}

	if err := AtomicWriteFile(s.cfg.Path, data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	if gen > s.savedGen {
		s.savedGen = gen
	}
	s.mu.Unlock()
	s.met.persisted.Add(float64(len(snap.Entries)))
	return nil
}

// AtomicWriteFile publishes data at path with the store's snapshot
// discipline: write to a temp file in the destination directory,
// fsync, chmod, rename. A crash mid-write leaves any previous file at
// path intact. Shared by the measurement snapshot and the job-state
// snapshot (internal/jobs), so every durable artifact in the system
// survives crashes the same way.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".spec17-atomic-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("publishing snapshot: %w", err)
	}
	return nil
}

// Dirty reports whether the store holds records written since the
// last successful Save (always false for memory-only stores, which
// have nothing to persist).
func (s *Store) Dirty() bool {
	if s.cfg.Path == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen != s.savedGen
}

// StartCheckpointing saves the snapshot every interval in the
// background, skipping intervals in which nothing new was recorded.
// A crash therefore loses at most one interval's worth of
// measurements instead of everything since boot. Failures are logged
// and retried at the next tick; the previous snapshot stays intact
// (Save is atomic). The returned stop function halts the loop,
// performs one final dirty-check save, and waits for the goroutine to
// exit; it is safe to call once. No-op (stop does nothing) for
// memory-only stores or non-positive intervals.
func (s *Store) StartCheckpointing(interval time.Duration) (stop func()) {
	if s.cfg.Path == "" || interval <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	save := func() {
		if !s.Dirty() {
			return
		}
		if err := s.Save(); err != nil {
			s.cfg.Log.Printf("store: checkpoint: %v", err)
			if s.cfg.OnCheckpointError != nil {
				s.cfg.OnCheckpointError(err)
			}
			return
		}
		s.met.checkpoints.Inc()
	}
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				save()
			case <-quit:
				save()
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}

// keyFromID reverses Key.id. The id is the only identity the maps
// need; the structured Key is reconstructed for the snapshot so the
// file stays introspectable.
func keyFromID(id string) Key {
	var k Key
	// Fields were joined with '|'; Machine and Workload never contain
	// one (SPEC-style names), and the numeric fields are prefixed.
	parts := splitN(id, '|', 7)
	if len(parts) != 7 {
		return Key{Content: id} // defensive; ids are produced by Key.id
	}
	k.Machine = parts[0]
	k.Workload = parts[1]
	k.Instructions, _ = strconv.Atoi(parts[2][1:])
	k.Warmup, _ = strconv.Atoi(parts[3][1:])
	k.Copies, _ = strconv.Atoi(parts[4][1:])
	k.Engine = parts[5][1:]
	k.Content = parts[6]
	return k
}

func splitN(s string, sep byte, n int) []string {
	out := make([]string, 0, n)
	start := 0
	for i := 0; i < len(s) && len(out) < n-1; i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// Get returns the stored single-copy record for key, if present.
func (s *Store) Get(key Key) (*machine.RawCounts, bool) {
	s.mu.Lock()
	rc, ok := s.single[key.id()]
	s.mu.Unlock()
	return rc, ok
}

// Put stores a single-copy record. Records must be treated as
// immutable by all parties.
func (s *Store) Put(key Key, rc *machine.RawCounts) {
	s.mu.Lock()
	s.single[key.id()] = rc
	s.gen++
	n := len(s.single) + len(s.multi)
	s.mu.Unlock()
	s.met.entries.Set(float64(n))
}

// Range visits every resident single-copy record. The record set is
// captured under the lock and visited outside it, so fn may freely
// call back into the store (Get, Put); records are immutable by
// contract, so the copies stay valid. Returning false stops the walk.
// The insight plane's drift monitor uses this to pair analytic-tier
// records with their exact-tier twins.
func (s *Store) Range(fn func(Key, *machine.RawCounts) bool) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.single))
	recs := make([]*machine.RawCounts, 0, len(s.single))
	for id, rc := range s.single {
		ids = append(ids, id)
		recs = append(recs, rc)
	}
	s.mu.Unlock()
	for i, id := range ids {
		if !fn(keyFromID(id), recs[i]) {
			return
		}
	}
}

// GetMulti returns the stored multi-copy record for key, if present.
func (s *Store) GetMulti(key Key) (*machine.MultiCounts, bool) {
	s.mu.Lock()
	mc, ok := s.multi[key.id()]
	s.mu.Unlock()
	return mc, ok
}

// GetOrCompute returns the record for key, computing it at most once
// across all concurrent callers. The compute function receives a
// context that is canceled when every caller waiting on this key has
// gone away — a lone disconnected client cancels its simulation. The
// caller's own ctx aborts only its wait, never another caller's
// result.
func (s *Store) GetOrCompute(ctx context.Context, key Key, compute func(context.Context) (*machine.RawCounts, error)) (*machine.RawCounts, error) {
	v, err := s.getOrCompute(ctx, key, "single", func(fctx context.Context) (any, error) {
		return compute(fctx)
	})
	if err != nil {
		return nil, err
	}
	return v.(*machine.RawCounts), nil
}

// GetOrComputeMulti is GetOrCompute for multi-copy (SPECrate-style)
// records.
func (s *Store) GetOrComputeMulti(ctx context.Context, key Key, compute func(context.Context) (*machine.MultiCounts, error)) (*machine.MultiCounts, error) {
	v, err := s.getOrCompute(ctx, key, "multi", func(fctx context.Context) (any, error) {
		return compute(fctx)
	})
	if err != nil {
		return nil, err
	}
	return v.(*machine.MultiCounts), nil
}

// lookup returns the resident record for id in the given kind's table.
func (s *Store) lookup(kind, id string) (any, bool) {
	if kind == "multi" {
		mc, ok := s.multi[id]
		return mc, ok
	}
	rc, ok := s.single[id]
	return rc, ok
}

func (s *Store) storeResult(kind, id string, v any) {
	if kind == "multi" {
		s.multi[id] = v.(*machine.MultiCounts)
	} else {
		s.single[id] = v.(*machine.RawCounts)
	}
	s.gen++
}

func (s *Store) getOrCompute(ctx context.Context, key Key, kind string, compute func(context.Context) (any, error)) (any, error) {
	id := key.id()
	for {
		start := time.Now()
		s.mu.Lock()
		if v, ok := s.lookup(kind, id); ok {
			s.mu.Unlock()
			s.met.hits.Inc()
			// Guarded so the untraced hit path — the daemon's hottest
			// code — stays allocation-free.
			if sp := telemetry.FromContext(ctx); sp != nil {
				sp.Record("store.get", start, time.Now(), "key", id, "hit", "true")
			}
			return v, nil
		}
		f, joined := s.flights[id]
		if !joined {
			fctx, cancel := context.WithCancel(context.Background())
			// The flight outlives any one waiter, but its work belongs
			// to the trace of the request that opened it.
			fctx = telemetry.WithSpan(fctx, telemetry.FromContext(ctx))
			f = &flight{done: make(chan struct{}), cancel: cancel}
			s.flights[id] = f
			s.met.misses.Inc()
			go func() {
				v, err := compute(fctx)
				putStart := time.Now()
				s.mu.Lock()
				if err == nil {
					s.storeResult(kind, id, v)
				}
				n := len(s.single) + len(s.multi)
				delete(s.flights, id)
				s.mu.Unlock()
				if err == nil {
					if sp := telemetry.FromContext(fctx); sp != nil {
						sp.Record("store.put", putStart, time.Now(), "key", id)
					}
				}
				s.met.entries.Set(float64(n))
				f.val, f.err = v, err
				close(f.done)
				cancel()
			}()
		}
		f.refs++
		s.mu.Unlock()

		select {
		case <-f.done:
			s.mu.Lock()
			f.refs--
			s.mu.Unlock()
			if isCancellation(f.err) && ctx.Err() == nil {
				// The flight died because its *other* callers left
				// before we joined the wait; this caller still wants
				// the record — retry (warm partial state makes the
				// retry cheap).
				continue
			}
			return f.val, f.err
		case <-ctx.Done():
			s.mu.Lock()
			f.refs--
			if f.refs == 0 {
				f.cancel() // nobody is listening: stop simulating
			}
			s.mu.Unlock()
			return nil, ctx.Err()
		}
	}
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Len returns the number of resident records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.single) + len(s.multi)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      int64(s.met.hits.Value()),
		Misses:    int64(s.met.misses.Value()),
		Loaded:    int64(s.met.loaded.Value()),
		Persisted: int64(s.met.persisted.Value()),
		Entries:   int64(s.Len()),
	}
}

// Path returns the snapshot path ("" for memory-only stores).
func (s *Store) Path() string { return s.cfg.Path }
