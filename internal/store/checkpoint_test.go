package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// waitForCheckpoint polls until the store has performed at least n
// background saves.
func waitForCheckpoint(t *testing.T, s *Store, n float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.met.checkpoints.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("no background checkpoint after 10s (have %g, want %g)",
				s.met.checkpoints.Value(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCheckpointSurvivesCrash is the acceptance invariant: a record
// written before a checkpoint interval elapses is on disk without any
// explicit Save, so a kill -9 loses at most one interval of
// measurements. The "crash" is simulated by reopening the snapshot in
// a second store without ever calling Save on the first.
func TestCheckpointSurvivesCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements.json")
	s, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	stop := s.StartCheckpointing(10 * time.Millisecond)
	defer stop()

	m := testMachine(t)
	key := KeyFor(m, testWorkload(t, "505.mcf_r"), testOpts)
	rc, err := m.Run(testWorkload(t, "505.mcf_r"), testOpts)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key, rc)
	waitForCheckpoint(t, s, 1)

	// Crash: no Save, no stop — just reopen the file.
	s2, err := Open(Config{Path: path})
	if err != nil {
		t.Fatalf("reopening checkpointed snapshot: %v", err)
	}
	if _, ok := s2.Get(key); !ok {
		t.Fatal("record written before the checkpoint interval was lost")
	}
}

// TestCheckpointSkipsCleanIntervals: intervals with no new records
// write nothing (the snapshot mtime is untouched), and new records
// make the store dirty again.
func TestCheckpointSkipsCleanIntervals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements.json")
	s, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dirty() {
		t.Error("fresh store reports dirty")
	}
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")
	rc, err := m.Run(w, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(KeyFor(m, w, testOpts), rc)
	if !s.Dirty() {
		t.Error("store with an unsaved record reports clean")
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if s.Dirty() {
		t.Error("store reports dirty right after Save")
	}

	stop := s.StartCheckpointing(5 * time.Millisecond)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // several clean intervals
	stop()
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Error("clean checkpoint intervals rewrote the snapshot")
	}
	if n := s.met.checkpoints.Value(); n != 0 {
		t.Errorf("clean intervals counted %g checkpoints", n)
	}
}

// TestCheckpointStopFlushes: stop performs one final save of anything
// recorded since the last tick.
func TestCheckpointStopFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "measurements.json")
	s, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	// Interval far longer than the test: only stop's flush can save.
	stop := s.StartCheckpointing(time.Hour)
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")
	rc, err := m.Run(w, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyFor(m, w, testOpts)
	s.Put(key, rc)
	stop()
	stop() // idempotent

	s2, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); !ok {
		t.Fatal("stop did not flush the pending record")
	}
}

// TestCheckpointMemoryOnlyNoop: a store without a path neither
// checkpoints nor reports dirty.
func TestCheckpointMemoryOnlyNoop(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	stop := s.StartCheckpointing(time.Millisecond)
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")
	rc, err := m.Run(w, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(KeyFor(m, w, testOpts), rc)
	if s.Dirty() {
		t.Error("memory-only store reports dirty")
	}
	stop()
}
