package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.SkylakeConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testWorkload(t *testing.T, name string) machine.Workload {
	t.Helper()
	p, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.Workload()
}

var testOpts = machine.RunOptions{Instructions: 5_000, WarmupInstructions: 1_000}

func TestKeyIdentity(t *testing.T) {
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")

	a := KeyFor(m, w, testOpts)
	// The same fidelity spelled differently (defaults explicit vs
	// implied, scheduling knobs set) canonicalizes to the same key.
	b := KeyFor(m, w, machine.RunOptions{Instructions: 5_000, WarmupInstructions: 1_000, Parallelism: 7})
	if a != b {
		t.Errorf("keys differ across canonical-equal options:\n%+v\n%+v", a, b)
	}

	// A different workload, fidelity, or copy count is a different key.
	if c := KeyFor(m, testWorkload(t, "541.leela_r"), testOpts); c.id() == a.id() {
		t.Error("different workloads share a key")
	}
	if c := KeyFor(m, w, machine.RunOptions{Instructions: 6_000}); c.id() == a.id() {
		t.Error("different fidelities share a key")
	}
	if c := KeyForMulti(m, w, 4, testOpts); c.id() == a.id() {
		t.Error("multi-copy and single-copy share a key")
	}

	// A changed machine configuration changes the content hash even
	// under the same machine name — the stale-profile guard.
	cfg := machine.SkylakeConfig()
	cfg.IssueWidth++
	m2, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := KeyFor(m2, w, testOpts)
	if c.Content == a.Content {
		t.Error("changed machine config kept the same content hash")
	}
}

func TestGetOrComputeCachesAndCoalesces(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")
	key := KeyFor(m, w, testOpts)

	var computes atomic.Int64
	compute := func(context.Context) (*machine.RawCounts, error) {
		computes.Add(1)
		return m.Run(w, testOpts)
	}

	const callers = 16
	var wg sync.WaitGroup
	results := make([]*machine.RawCounts, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc, err := s.GetOrCompute(context.Background(), key, compute)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = rc
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("computes = %d, want 1 (coalesced)", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different record pointer", i)
		}
	}

	// Sequential repeat: memory hit, no compute.
	if _, err := s.GetOrCompute(context.Background(), key, compute); err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("computes after repeat = %d, want 1", n)
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	// Coalesced joiners are neither hits nor misses; the sequential
	// repeat above is a guaranteed memory hit.
	if st.Hits < 1 {
		t.Errorf("hits = %d, want >= 1", st.Hits)
	}
	if st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	s1, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t)

	// One single-copy and one multi-copy record.
	w := testWorkload(t, "505.mcf_r")
	key := KeyFor(m, w, testOpts)
	rc, err := s1.GetOrCompute(context.Background(), key, func(context.Context) (*machine.RawCounts, error) {
		return m.Run(w, testOpts)
	})
	if err != nil {
		t.Fatal(err)
	}
	mkey := KeyForMulti(m, w, 4, testOpts)
	mc, err := s1.GetOrComputeMulti(context.Background(), mkey, func(context.Context) (*machine.MultiCounts, error) {
		return m.RunMulti(w, 4, testOpts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Path: path})
	if err != nil {
		t.Fatalf("reloading snapshot: %v", err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reloaded %d records, want 2", s2.Len())
	}
	if s2.Stats().Loaded != 2 {
		t.Errorf("loaded counter = %d, want 2", s2.Stats().Loaded)
	}
	got, ok := s2.Get(key)
	if !ok {
		t.Fatal("single record missing after reload")
	}
	// Bit-identical: every counter and float64 survives the JSON
	// round trip exactly.
	if *got != *rc {
		t.Errorf("reloaded record differs:\n got %+v\nwant %+v", got, rc)
	}
	var computes atomic.Int64
	mc2, err := s2.GetOrComputeMulti(context.Background(), mkey, func(context.Context) (*machine.MultiCounts, error) {
		computes.Add(1)
		return m.RunMulti(w, 4, testOpts)
	})
	if err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 0 {
		t.Error("multi record recomputed despite snapshot")
	}
	if mc2.Throughput != mc.Throughput || len(mc2.PerCopy) != len(mc.PerCopy) {
		t.Errorf("reloaded multi record differs: %+v vs %+v", mc2, mc)
	}
	for i := range mc.PerCopy {
		if *mc2.PerCopy[i] != *mc.PerCopy[i] {
			t.Errorf("reloaded multi per-copy %d differs", i)
		}
	}
}

// TestSnapshotDefectsDegradeToRecompute covers the robustness matrix:
// every way a snapshot can be bad yields a usable empty store plus an
// advisory error — never a hard failure, never stale data.
func TestSnapshotDefectsDegradeToRecompute(t *testing.T) {
	dir := t.TempDir()

	// A valid snapshot to corrupt.
	path := filepath.Join(dir, "valid.json")
	s, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")
	key := KeyFor(m, w, testOpts)
	if _, err := s.GetOrCompute(context.Background(), key, func(context.Context) (*machine.RawCounts, error) {
		return m.Run(w, testOpts)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		content []byte
	}{
		{"corrupted", []byte(`{"version": 1, "fingerprint": ` + "\x00" + `garbage`)},
		{"truncated", valid[:len(valid)/2]},
		{"empty", nil},
		{"version-mismatch", mutateSnapshot(t, valid, func(m map[string]any) { m["version"] = 999 })},
		{"fingerprint-mismatch", mutateSnapshot(t, valid, func(m map[string]any) { m["fingerprint"] = "other-substrate" })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, tc.name+".json")
			if err := os.WriteFile(p, tc.content, 0o644); err != nil {
				t.Fatal(err)
			}
			st, err := Open(Config{Path: p})
			if err == nil {
				t.Error("defective snapshot loaded without an advisory error")
			}
			if st == nil {
				t.Fatal("Open returned a nil store")
			}
			if st.Len() != 0 {
				t.Errorf("defective snapshot yielded %d records, want 0", st.Len())
			}
			// The store recomputes and carries on.
			rc, err := st.GetOrCompute(context.Background(), key, func(context.Context) (*machine.RawCounts, error) {
				return m.Run(w, testOpts)
			})
			if err != nil || rc == nil {
				t.Fatalf("recompute after defective snapshot: %v", err)
			}
			if st.Stats().Misses != 1 {
				t.Errorf("misses = %d, want 1 (recompute)", st.Stats().Misses)
			}
		})
	}

	// A missing file is a cold start, not a defect.
	if _, err := Open(Config{Path: filepath.Join(dir, "nope.json")}); err != nil {
		t.Errorf("missing snapshot produced error: %v", err)
	}
}

func mutateSnapshot(t *testing.T, data []byte, mutate func(map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	mutate(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	s, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")
	if _, err := s.GetOrCompute(context.Background(), KeyFor(m, w, testOpts), func(context.Context) (*machine.RawCounts, error) {
		return m.Run(w, testOpts)
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil { // second save overwrites atomically
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".spec17-store-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	if s.Stats().Persisted != 2 {
		t.Errorf("persisted = %d, want 2 (1 record x 2 saves)", s.Stats().Persisted)
	}
}

// TestConcurrentAccess hammers Get/Put/GetOrCompute/Save from many
// goroutines; run under -race (the Makefile includes this package in
// RACE_PKGS).
func TestConcurrentAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	s, err := Open(Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t)
	names := []string{"505.mcf_r", "541.leela_r", "525.x264_r", "549.fotonik3d_r"}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for _, name := range names {
			w := testWorkload(t, name)
			key := KeyFor(m, w, testOpts)
			wg.Add(3)
			go func() {
				defer wg.Done()
				if _, err := s.GetOrCompute(context.Background(), key, func(context.Context) (*machine.RawCounts, error) {
					return m.Run(w, testOpts)
				}); err != nil {
					t.Error(err)
				}
			}()
			go func() {
				defer wg.Done()
				s.Get(key)
				s.Len()
				s.Stats()
			}()
			go func() {
				defer wg.Done()
				if err := s.Save(); err != nil {
					t.Error(err)
				}
			}()
		}
	}
	wg.Wait()
	if s.Len() != len(names) {
		t.Errorf("entries = %d, want %d", s.Len(), len(names))
	}
	if n := s.Stats().Misses; n != int64(len(names)) {
		t.Errorf("misses = %d, want %d (one compute per key)", n, len(names))
	}
}

// TestGetOrComputeCancellation covers the context protocol: a canceled
// caller returns promptly, the last departing caller cancels the
// compute context, and a later live caller recomputes successfully.
func TestGetOrComputeCancellation(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")
	key := KeyFor(m, w, testOpts)

	started := make(chan struct{})
	computeCanceled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.GetOrCompute(ctx, key, func(fctx context.Context) (*machine.RawCounts, error) {
			close(started)
			<-fctx.Done()
			close(computeCanceled)
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error = %v, want context.Canceled", err)
	}
	<-computeCanceled

	// The canceled flight left nothing behind; a live caller computes.
	rc, err := s.GetOrCompute(context.Background(), key, func(context.Context) (*machine.RawCounts, error) {
		return m.Run(w, testOpts)
	})
	if err != nil || rc == nil {
		t.Fatalf("compute after canceled flight: %v", err)
	}
}

// TestComputeErrorNotCached checks that a failed computation is not
// stored: the next caller retries.
func TestComputeErrorNotCached(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t)
	w := testWorkload(t, "505.mcf_r")
	key := KeyFor(m, w, testOpts)

	boom := fmt.Errorf("boom")
	if _, err := s.GetOrCompute(context.Background(), key, func(context.Context) (*machine.RawCounts, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if s.Len() != 0 {
		t.Fatal("failed computation was stored")
	}
	rc, err := s.GetOrCompute(context.Background(), key, func(context.Context) (*machine.RawCounts, error) {
		return m.Run(w, testOpts)
	})
	if err != nil || rc == nil {
		t.Fatalf("retry after failed computation: %v", err)
	}
}
