package trace

import "testing"

// kernelSpec exercises the kernel-episode paths FillBatch must
// reproduce (entry draws, kernel blocks, kernel data addresses).
func kernelSpec() Spec {
	s := testSpec()
	s.KernelFrac = 0.15
	return s
}

// TestFillBatchMatchesNext pins the arena API's contract: a trace read
// through FillBatch — at any batch size, including sizes that do not
// divide the stream length — is bit-identical to one read through
// repeated Next calls, event for event.
func TestFillBatchMatchesNext(t *testing.T) {
	const total = 100_000
	specs := map[string]Spec{"user": testSpec(), "kernel": kernelSpec()}
	// 1 (degenerate), 7 and 313 (non-divisors of total), 4096 (the
	// slab-scale case; also a non-divisor).
	batchSizes := []int{1, 7, 313, 4096}

	for name, spec := range specs {
		ref, err := NewGenerator(spec, "batch-identity")
		if err != nil {
			t.Fatal(err)
		}
		want := make([]Event, total)
		for i := range want {
			ref.Next(&want[i])
		}

		for _, bs := range batchSizes {
			gen, err := NewGenerator(spec, "batch-identity")
			if err != nil {
				t.Fatal(err)
			}
			slab := make([]Event, bs)
			for filled := 0; filled < total; {
				k := min(bs, total-filled)
				gen.FillBatch(slab[:k])
				for i := 0; i < k; i++ {
					if slab[i] != want[filled+i] {
						t.Fatalf("%s spec, batch size %d: event %d = %+v, want %+v",
							name, bs, filled+i, slab[i], want[filled+i])
					}
				}
				filled += k
			}
		}
	}
}

// TestFillBatchInterleavesWithNext pins that switching between the two
// read APIs mid-stream does not disturb the sequence.
func TestFillBatchInterleavesWithNext(t *testing.T) {
	const total = 20_000
	spec := kernelSpec()

	ref, err := NewGenerator(spec, "interleave")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Event, total)
	for i := range want {
		ref.Next(&want[i])
	}

	gen, err := NewGenerator(spec, "interleave")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Event, 0, total)
	var ev Event
	for len(got) < total {
		// Alternate: a few Next calls, then a batch.
		for i := 0; i < 3 && len(got) < total; i++ {
			gen.Next(&ev)
			got = append(got, ev)
		}
		k := min(257, total-len(got))
		batch := make([]Event, k)
		gen.FillBatch(batch)
		got = append(got, batch...)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
