package trace

import (
	"math"
	"testing"

	"repro/internal/branch"
)

// testSpec is a plausible mid-weight workload.
func testSpec() Spec {
	return Spec{
		LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.15,
		FPFrac: 0.10, SIMDFrac: 0.05, KernelFrac: 0.0,
		HotBytes: 16 << 10, MidBytes: 160 << 10, WarmBytes: 1 << 20, FootprintBytes: 64 << 20,
		HotFrac: 0.45, MidFrac: 0.05, WarmFrac: 0.3, StrideFrac: 0.1,
		CodeBytes: 64 << 10, HotCodeBytes: 8 << 10, HotCodeFrac: 0.9,
		BranchEntropy: 0.2, TakenFrac: 0.6,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	mutations := []func(*Spec){
		func(s *Spec) { s.LoadFrac = -0.1 },
		func(s *Spec) { s.TakenFrac = 1.5 },
		func(s *Spec) { s.LoadFrac, s.StoreFrac, s.BranchFrac = 0.5, 0.4, 0.2 },
		func(s *Spec) { s.HotFrac, s.WarmFrac, s.StrideFrac = 0.5, 0.5, 0.5 },
		func(s *Spec) { s.BranchFrac = 0 },
		func(s *Spec) { s.HotBytes = 0 },
		func(s *Spec) { s.MidBytes = s.HotBytes - 1 },
		func(s *Spec) { s.WarmBytes = s.MidBytes - 1 },
		func(s *Spec) { s.FootprintBytes = s.WarmBytes - 1 },
		func(s *Spec) { s.CodeBytes = 0 },
		func(s *Spec) { s.HotCodeBytes = s.CodeBytes + 1 },
	}
	for i, mutate := range mutations {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the spec", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, err := NewGenerator(testSpec(), "wl")
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(testSpec(), "wl")
	var e1, e2 Event
	for i := 0; i < 10000; i++ {
		g1.Next(&e1)
		g2.Next(&e2)
		if e1 != e2 {
			t.Fatalf("trace diverged at instruction %d: %+v vs %+v", i, e1, e2)
		}
	}
}

func TestGeneratorKeySensitivity(t *testing.T) {
	g1, _ := NewGenerator(testSpec(), "a")
	g2, _ := NewGenerator(testSpec(), "b")
	var e1, e2 Event
	diff := 0
	for i := 0; i < 1000; i++ {
		g1.Next(&e1)
		g2.Next(&e2)
		if e1 != e2 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different keys must produce different traces")
	}
}

// drain runs n events and tallies them.
func drain(t *testing.T, g *Generator, n int) map[Kind]int {
	t.Helper()
	counts := make(map[Kind]int)
	var ev Event
	for i := 0; i < n; i++ {
		g.Next(&ev)
		counts[ev.Kind]++
	}
	return counts
}

func TestInstructionMixMatchesSpec(t *testing.T) {
	spec := testSpec()
	g, err := NewGenerator(spec, "mix")
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	counts := drain(t, g, n)
	check := func(name string, got int, want float64) {
		frac := float64(got) / n
		if math.Abs(frac-want) > 0.02 {
			t.Errorf("%s fraction %v, want ≈%v", name, frac, want)
		}
	}
	check("load", counts[Load], spec.LoadFrac)
	check("store", counts[Store], spec.StoreFrac)
	// Branch fraction is quantized to 1/blockLen.
	wantBranch := 1 / float64(g.BlockLen())
	check("branch", counts[CondBranch], wantBranch)
	check("fp", counts[FPOp], spec.FPFrac)
	check("simd", counts[SIMDOp], spec.SIMDFrac)
}

func TestBlockLenDerivation(t *testing.T) {
	s := testSpec()
	s.BranchFrac = 0.10
	g, _ := NewGenerator(s, "bl")
	if g.BlockLen() != 10 {
		t.Fatalf("BlockLen = %d, want 10", g.BlockLen())
	}
	s.BranchFrac = 0.8 // degenerate: clamp to 2
	s.LoadFrac, s.StoreFrac = 0.1, 0.05
	g, err := NewGenerator(s, "bl")
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockLen() != 2 {
		t.Fatalf("BlockLen = %d, want clamp to 2", g.BlockLen())
	}
}

func TestTakenFraction(t *testing.T) {
	spec := testSpec()
	g, _ := NewGenerator(spec, "taken")
	var ev Event
	branches, taken := 0, 0
	for i := 0; i < 500000; i++ {
		g.Next(&ev)
		if ev.Kind == CondBranch {
			branches++
			if ev.Taken {
				taken++
			}
		}
	}
	frac := float64(taken) / float64(branches)
	if math.Abs(frac-spec.TakenFrac) > 0.08 {
		t.Fatalf("taken fraction %v, want ≈%v", frac, spec.TakenFrac)
	}
}

func TestDataAddressesWithinFootprint(t *testing.T) {
	spec := testSpec()
	g, _ := NewGenerator(spec, "addr")
	var ev Event
	for i := 0; i < 200000; i++ {
		g.Next(&ev)
		if ev.Kind == Load || ev.Kind == Store {
			if ev.Addr < DataBase || ev.Addr >= DataBase+spec.FootprintBytes {
				t.Fatalf("address %#x outside data region", ev.Addr)
			}
			if ev.Addr%8 != 0 {
				t.Fatalf("address %#x not 8-byte aligned", ev.Addr)
			}
		}
	}
}

func TestHotRegionConcentration(t *testing.T) {
	spec := testSpec()
	spec.HotFrac, spec.MidFrac, spec.WarmFrac, spec.StrideFrac = 0.9, 0, 0, 0
	g, _ := NewGenerator(spec, "hot")
	var ev Event
	mem, inHot := 0, 0
	for i := 0; i < 300000; i++ {
		g.Next(&ev)
		if ev.Kind == Load || ev.Kind == Store {
			mem++
			if ev.Addr-DataBase < spec.HotBytes {
				inHot++
			}
		}
	}
	frac := float64(inHot) / float64(mem)
	if frac < 0.88 { // 0.9 hot + cold accesses that land in [0, HotBytes) by chance
		t.Fatalf("hot-region fraction %v, want ≳0.9", frac)
	}
}

func TestCodeFootprintBounds(t *testing.T) {
	spec := testSpec()
	g, _ := NewGenerator(spec, "code")
	var ev Event
	for i := 0; i < 100000; i++ {
		g.Next(&ev)
		if ev.Kernel {
			continue
		}
		if ev.PC < UserCodeBase || ev.PC >= UserCodeBase+spec.CodeBytes {
			t.Fatalf("PC %#x outside code region of %d bytes", ev.PC, spec.CodeBytes)
		}
	}
}

func TestKernelFraction(t *testing.T) {
	spec := testSpec()
	spec.KernelFrac = 0.3
	g, _ := NewGenerator(spec, "kern")
	var ev Event
	kern := 0
	const n = 500000
	for i := 0; i < n; i++ {
		g.Next(&ev)
		if ev.Kernel {
			kern++
		}
	}
	frac := float64(kern) / n
	if math.Abs(frac-0.3) > 0.08 {
		t.Fatalf("kernel fraction %v, want ≈0.3", frac)
	}
}

func TestNoKernelWhenZero(t *testing.T) {
	g, _ := NewGenerator(testSpec(), "nokern")
	var ev Event
	for i := 0; i < 100000; i++ {
		g.Next(&ev)
		if ev.Kernel {
			t.Fatal("KernelFrac=0 must never produce kernel events")
		}
	}
}

func TestStridePurelySequential(t *testing.T) {
	spec := testSpec()
	spec.HotFrac, spec.MidFrac, spec.WarmFrac, spec.StrideFrac = 0, 0, 0, 1
	spec.MemStreams = 1
	g, _ := NewGenerator(spec, "stride")
	var ev Event
	var last uint64
	seen := false
	for i := 0; i < 50000; i++ {
		g.Next(&ev)
		if ev.Kind != Load && ev.Kind != Store {
			continue
		}
		if seen && ev.Addr != last+strideStep && ev.Addr >= last {
			t.Fatalf("stride stream jumped from %#x to %#x", last, ev.Addr)
		}
		last, seen = ev.Addr, true
	}
}

func TestCorrelatedBranchesFavorHistoryPredictors(t *testing.T) {
	// A pure pattern workload: gshare must strongly out-predict
	// bimodal, because the outcomes are deterministic in global
	// history (plus 8% noise) but near 50/50 marginally.
	spec := testSpec()
	spec.BranchEntropy = 0
	spec.PatternFrac = 1
	spec.HotCodeFrac = 1
	spec.CodeBytes = 4 << 10
	spec.HotCodeBytes = 4 << 10
	g, _ := NewGenerator(spec, "corr")
	gs, err := branch.New(branch.Config{Kind: branch.GShare, TableBits: 14, HistoryBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	bi, _ := branch.New(branch.Config{Kind: branch.Bimodal, TableBits: 14})
	var ev Event
	for i := 0; i < 400000; i++ {
		g.Next(&ev)
		if ev.Kind == CondBranch {
			gs.Predict(ev.PC, ev.Taken)
			bi.Predict(ev.PC, ev.Taken)
		}
	}
	gsRate, biRate := gs.MispredictRate(), bi.MispredictRate()
	if gsRate > 0.15 {
		t.Errorf("gshare mispredict rate %v, want < 0.15 (learnable correlation)", gsRate)
	}
	if gsRate*1.3 > biRate {
		t.Errorf("gshare (%v) should clearly beat bimodal (%v) on correlated branches", gsRate, biRate)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		IntOp: "int", FPOp: "fp", SIMDOp: "simd",
		Load: "load", Store: "store", CondBranch: "branch", Kind(9): "Kind(9)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
