// Package trace generates deterministic synthetic instruction traces
// from statistical workload specifications. A trace is the stream of
// per-instruction events (kind, program counter, data address, branch
// outcome) consumed by the cache, TLB, and branch-predictor simulators
// in place of the proprietary SPEC binaries the paper executed.
//
// The generator models the program properties the paper's metrics are
// sensitive to, and nothing else:
//
//   - instruction mix (load/store/branch/FP/SIMD/kernel fractions),
//   - code footprint and hot-loop concentration (I-cache, I-TLB),
//   - a three-region data working-set model plus streaming accesses
//     (D-cache hierarchy, D-TLB),
//   - per-branch bias, pattern, and entropy (branch predictors).
package trace

import (
	"fmt"

	"repro/internal/rng"
)

// Kind classifies one dynamic instruction.
type Kind uint8

// Instruction kinds. IntOp covers scalar integer ALU work; FPOp scalar
// floating point; SIMDOp vector work of either domain.
const (
	IntOp Kind = iota
	FPOp
	SIMDOp
	Load
	Store
	CondBranch
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case IntOp:
		return "int"
	case FPOp:
		return "fp"
	case SIMDOp:
		return "simd"
	case Load:
		return "load"
	case Store:
		return "store"
	case CondBranch:
		return "branch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one dynamic instruction.
type Event struct {
	Kind   Kind
	PC     uint64 // instruction address
	Addr   uint64 // effective address for Load/Store, else 0
	Taken  bool   // outcome for CondBranch
	Kernel bool   // executed in kernel mode
}

// Spec is the statistical description of a workload. All fractions are
// of dynamic instructions and must lie in [0, 1]; region sizes are in
// bytes. See internal/workloads for the profile database that fills
// these in from the paper's published data.
type Spec struct {
	// Instruction mix. BranchFrac determines the basic-block length
	// (every block ends in exactly one conditional branch); the
	// remaining instruction slots are split between loads, stores, and
	// ALU work, with FPFrac/SIMDFrac selecting the ALU flavour.
	LoadFrac, StoreFrac, BranchFrac float64
	FPFrac, SIMDFrac                float64
	KernelFrac                      float64

	// Data-side working sets, four nested regions (all based at 0):
	// hot (stack and hot structs, sized to fit any L1), mid (the
	// blocked/tiled working set, typically between L1 and L2 sizes),
	// warm (the phase working set, between L2 and L3 sizes), and the
	// full footprint. HotFrac/MidFrac/WarmFrac/StrideFrac select where
	// each reference goes; the remainder is uniform over the footprint
	// ("cold", the pointer-chasing component that reaches DRAM).
	HotBytes, MidBytes, WarmBytes, FootprintBytes uint64
	HotFrac, MidFrac, WarmFrac, StrideFrac        float64
	// MemStreams is the number of concurrent sequential streams for
	// the StrideFrac component (default 4).
	MemStreams int

	// Code side: total static code and the size of the hot (loop)
	// portion that receives HotCodeFrac of the execution. Cold-code
	// excursions mostly land in a WarmCodeBytes-sized working set
	// (defaulting to min(96 KiB, CodeBytes)), with a 5% tail over the
	// full footprint — real programs keep their active code within a
	// second-level-cache-sized region even when the binary is huge.
	CodeBytes, HotCodeBytes, WarmCodeBytes uint64
	HotCodeFrac                            float64

	// Branch behaviour is a three-way mixture over static branches:
	//
	//   - "hard" branches (probability BranchEntropy): Bernoulli with
	//     a near-0.5 bias — every predictor mispredicts them ~45% of
	//     the time (leela's and mcf's data-dependent branches);
	//   - "correlated" branches (probability PatternFrac of the rest):
	//     all follow the hot loop's iteration phase, which flips every
	//     pass (red-black sweeps, odd/even iteration work), plus 0.5%
	//     noise. Their outcomes alternate — a bimodal counter
	//     mispredicts ~50% — but every phase flip is visible in recent
	//     global history, so history-based predictors (gshare,
	//     tournament) learn them almost perfectly. These are the
	//     predictor-quality-sensitive branches of loop-nest codes like
	//     bwaves;
	//   - "easy" branches (the remainder): Bernoulli with a 0.995 or
	//     0.005 bias, predicted correctly ~99.5% of the time everywhere.
	//
	// TakenFrac sets the workload's overall taken fraction; the
	// generator solves for the easy branches' taken/not-taken split
	// (hard and correlated branches are ~50% taken).
	BranchEntropy float64
	PatternFrac   float64
	TakenFrac     float64
}

// Validate reports the first implausible field.
func (s Spec) Validate() error {
	fracs := map[string]float64{
		"LoadFrac": s.LoadFrac, "StoreFrac": s.StoreFrac, "BranchFrac": s.BranchFrac,
		"FPFrac": s.FPFrac, "SIMDFrac": s.SIMDFrac, "KernelFrac": s.KernelFrac,
		"HotFrac": s.HotFrac, "MidFrac": s.MidFrac, "WarmFrac": s.WarmFrac, "StrideFrac": s.StrideFrac,
		"HotCodeFrac": s.HotCodeFrac, "BranchEntropy": s.BranchEntropy, "PatternFrac": s.PatternFrac,
		"TakenFrac": s.TakenFrac,
	}
	for name, f := range fracs {
		if f < 0 || f > 1 {
			return fmt.Errorf("trace: %s = %v outside [0,1]", name, f)
		}
	}
	if s.LoadFrac+s.StoreFrac+s.BranchFrac > 1 {
		return fmt.Errorf("trace: load+store+branch fractions exceed 1 (%v)",
			s.LoadFrac+s.StoreFrac+s.BranchFrac)
	}
	if s.HotFrac+s.MidFrac+s.WarmFrac+s.StrideFrac > 1 {
		return fmt.Errorf("trace: hot+mid+warm+stride fractions exceed 1 (%v)",
			s.HotFrac+s.MidFrac+s.WarmFrac+s.StrideFrac)
	}
	if s.BranchFrac <= 0 {
		return fmt.Errorf("trace: BranchFrac must be positive (blocks end in a branch)")
	}
	if s.HotBytes == 0 || s.MidBytes < s.HotBytes || s.WarmBytes < s.MidBytes || s.FootprintBytes < s.WarmBytes {
		return fmt.Errorf("trace: need 0 < HotBytes (%d) <= MidBytes (%d) <= WarmBytes (%d) <= FootprintBytes (%d)",
			s.HotBytes, s.MidBytes, s.WarmBytes, s.FootprintBytes)
	}
	if s.CodeBytes == 0 || s.HotCodeBytes == 0 || s.HotCodeBytes > s.CodeBytes {
		return fmt.Errorf("trace: need 0 < HotCodeBytes (%d) <= CodeBytes (%d)", s.HotCodeBytes, s.CodeBytes)
	}
	return nil
}

// Address-space layout of generated traces. UserCodeBase and
// KernelCodeBase separate the two code regions so kernel-heavy
// workloads (databases) pressure the I-cache with a second footprint,
// as the paper observes for Cassandra. The bases are exported so the
// measurement harness can prime caches and TLBs with the resident
// working set before sampling.
const (
	UserCodeBase   uint64 = 0x0040_0000
	KernelCodeBase uint64 = 0x4000_0000
	KernelDataBase uint64 = 0x6000_0000
	DataBase       uint64 = 0x1_0000_0000

	// KernelCodeBytes is the fixed size of the kernel code region and
	// KernelDataBytes of the kernel data region; KernelHotDataBytes is
	// the slice of it that receives most kernel references.
	KernelCodeBytes    uint64 = 128 << 10
	KernelDataBytes    uint64 = 1 << 20
	KernelHotDataBytes uint64 = 32 << 10
)

const (
	instrBytes = 4 // fixed encoding; adequate for I-side locality modelling
	strideStep = 8
)

// branchKind classifies one static branch's behaviour.
type branchKind uint8

const (
	easyBranch branchKind = iota
	hardBranch
	corrBranch
)

// branchState is the behavioural state of one static branch.
type branchState struct {
	kind branchKind
	bias float64 // Bernoulli taken probability (easy/hard)
}

// Generator produces the event stream for one workload. It is not
// safe for concurrent use; create one per goroutine.
type Generator struct {
	spec Spec

	blockLen   int
	nBlocks    int
	hotBlocks  int
	warmBlocks int
	nKBlocks   int // kernel code blocks
	branches   []branchState
	kbranches  []branchState
	streams    []uint64
	streamSpan uint64

	// Instruction-mix thresholds, derived once from the spec so the
	// per-event hot path never re-divides. Each is computed with the
	// exact float expression the per-event code historically used, so
	// comparisons against them are bit-identical to recomputing.
	pLoad      float64 // LoadFrac / (1 - BranchFrac)
	pLoadStore float64 // (LoadFrac + StoreFrac) / (1 - BranchFrac), as pLoad + pStore
	pALU       float64 // 1 - pLoad - pStore
	pSIMD      float64 // SIMDFrac / (1 - BranchFrac)
	pSIMDFP    float64 // (SIMDFrac + FPFrac) / (1 - BranchFrac)
	pEnterKern float64 // per-block kernel-episode entry probability
	dHotT      float64 // StrideFrac + HotFrac
	dMidT      float64 // StrideFrac + HotFrac + MidFrac
	dWarmT     float64 // StrideFrac + HotFrac + MidFrac + WarmFrac

	// Per-instruction state.
	curBlock   int
	curHot     int
	blockPos   int
	inKernel   bool
	kernBudget int
	phase      bool // hot-loop iteration phase (flips per pass)

	rBlock, rMix, rData, rBranch, rKernel *rng.Rand
}

// NewGenerator builds a generator for spec. The key seeds all random
// streams: the same (spec, key) pair always yields the same trace.
func NewGenerator(spec Spec, key string) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		spec:    spec,
		rBlock:  rng.NewKeyed(key, 1),
		rMix:    rng.NewKeyed(key, 2),
		rData:   rng.NewKeyed(key, 3),
		rBranch: rng.NewKeyed(key, 4),
		rKernel: rng.NewKeyed(key, 5),
	}
	g.blockLen = int(1/spec.BranchFrac + 0.5)
	if g.blockLen < 2 {
		g.blockLen = 2
	}
	blockBytes := uint64(g.blockLen * instrBytes)
	g.nBlocks = int(spec.CodeBytes / blockBytes)
	if g.nBlocks < 1 {
		g.nBlocks = 1
	}
	g.hotBlocks = int(spec.HotCodeBytes / blockBytes)
	if g.hotBlocks < 1 {
		g.hotBlocks = 1
	}
	if g.hotBlocks > g.nBlocks {
		g.hotBlocks = g.nBlocks
	}
	warmCode := spec.WarmCodeBytes
	if warmCode == 0 {
		warmCode = 96 << 10
	}
	g.warmBlocks = int(warmCode / blockBytes)
	if g.warmBlocks < g.hotBlocks {
		g.warmBlocks = g.hotBlocks
	}
	if g.warmBlocks > g.nBlocks {
		g.warmBlocks = g.nBlocks
	}
	// Kernel code: a fixed-size region (128 KiB) of its own blocks.
	g.nKBlocks = int(KernelCodeBytes / blockBytes)
	if g.nKBlocks < 1 {
		g.nKBlocks = 1
	}

	g.branches = make([]branchState, g.nBlocks)
	seedBranches(g.branches, g.hotBlocks, spec, g.rBranch)
	g.kbranches = make([]branchState, g.nKBlocks)
	seedBranches(g.kbranches, g.nKBlocks, spec, g.rBranch)

	n := spec.MemStreams
	if n <= 0 {
		n = 4
	}
	g.streams = make([]uint64, n)
	g.streamSpan = spec.FootprintBytes / uint64(n)
	if g.streamSpan < 64 {
		g.streamSpan = 64
	}
	for i := range g.streams {
		g.streams[i] = uint64(i) * g.streamSpan
	}

	// Hot-path thresholds. The expressions (including association
	// order) mirror the historical per-event computations exactly:
	// FillBatch and Next must stay bit-identical to the code that
	// derived these inline.
	nonBranch := 1 - spec.BranchFrac
	g.pLoad = spec.LoadFrac / nonBranch
	ps := spec.StoreFrac / nonBranch
	g.pLoadStore = g.pLoad + ps
	g.pALU = 1 - g.pLoad - ps
	g.pSIMD = spec.SIMDFrac / nonBranch
	g.pSIMDFP = (spec.SIMDFrac + spec.FPFrac) / nonBranch
	if spec.KernelFrac > 0 {
		enter := spec.KernelFrac / (float64(kernelBurst) * (1 - spec.KernelFrac))
		if enter > 1 {
			enter = 1
		}
		g.pEnterKern = enter
	}
	g.dHotT = spec.StrideFrac + spec.HotFrac
	g.dMidT = spec.StrideFrac + spec.HotFrac + spec.MidFrac
	g.dWarmT = spec.StrideFrac + spec.HotFrac + spec.MidFrac + spec.WarmFrac

	g.curBlock = g.pickBlock()
	return g, nil
}

// seedBranches assigns behaviour to the first hotCount blocks' branches
// from the hard/correlated/easy mixture; branches of colder blocks are
// uniformly strongly-taken, so their (rarely trained, heavily aliased)
// predictor entries still agree — matching real programs, whose cold
// paths remain predictable.
func seedBranches(bs []branchState, hotCount int, spec Spec, r *rng.Rand) {
	// Solve for the easy branches' taken share so the hot mixture plus
	// the cold-branch population hits TakenFrac overall:
	//   taken = h*(e*0.5 + (1-e)*(P*0.5 + (1-P)*(q*0.98+0.01))) + (1-h)*0.99,
	// where h is the hot share of branch executions (HotCodeFrac).
	e, P, h := spec.BranchEntropy, spec.PatternFrac, spec.HotCodeFrac
	q := 0.5
	if rest := (1 - e) * (1 - P); rest > 0 && h > 0 {
		hotTaken := (spec.TakenFrac - (1-h)*0.99) / h
		q = (hotTaken - e*0.5 - (1-e)*P*0.5) / rest
		q = (q - 0.005) / 0.99
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
	}
	// Correlated branches occupy a contiguous run of blocks (a loop
	// nest) that wraps the cycle boundary: the run's tail executes
	// just before the phase flips and its head just after, so every
	// correlated branch — including the first ones of a new phase —
	// sees phase-valued bits in its recent history. That stable
	// context is exactly what a gshare predictor needs to learn the
	// phase; a bimodal counter sees only the alternation.
	nCorr := int(P * float64(hotCount))
	tail := nCorr / 2
	if tail > 12 {
		tail = 12
	}
	head := nCorr - tail
	for i := range bs {
		b := &bs[i]
		if i >= hotCount {
			b.kind = easyBranch
			b.bias = 0.995
			continue
		}
		if i < head || i >= hotCount-tail {
			b.kind = corrBranch
			continue
		}
		switch {
		case r.Bool(e):
			b.kind = hardBranch
			b.bias = 0.35 + r.Float64()*0.3
		default:
			b.kind = easyBranch
			if r.Bool(q) {
				b.bias = 0.995
			} else {
				b.bias = 0.005
			}
		}
	}
}

// Spec returns the specification the generator was built from.
func (g *Generator) Spec() Spec { return g.spec }

// BlockLen returns the derived basic-block length in instructions.
func (g *Generator) BlockLen() int { return g.blockLen }

// pickBlock selects the next basic block to execute. Hot-loop blocks
// execute cyclically (sequential control flow, so history-based
// predictors observe structured context and the fetch stream is
// spatially local); cold-code excursions jump to a uniformly random
// block, modelling rarely-exercised paths.
func (g *Generator) pickBlock() int {
	if g.inKernel {
		return g.rBlock.Intn(g.nKBlocks)
	}
	if g.rBlock.Bool(g.spec.HotCodeFrac) {
		g.curHot++
		if g.curHot >= g.hotBlocks {
			g.curHot = 0
			g.phase = !g.phase // next loop iteration: flip the sweep phase
		}
		return g.curHot
	}
	if g.rBlock.Bool(0.95) {
		return g.rBlock.Intn(g.warmBlocks)
	}
	return g.rBlock.Intn(g.nBlocks)
}

// kernelBurst is the number of blocks per kernel episode.
const kernelBurst = 8

// Next fills ev with the next dynamic instruction.
func (g *Generator) Next(ev *Event) {
	// Kernel episodes: enter with probability such that the long-run
	// kernel fraction matches KernelFrac; each episode runs a burst of
	// blocks, modelling syscall service routines.
	if g.blockPos == 0 {
		if g.inKernel {
			g.kernBudget--
			if g.kernBudget <= 0 {
				g.inKernel = false
			}
		} else if g.spec.KernelFrac > 0 {
			if g.rKernel.Bool(g.pEnterKern) {
				g.inKernel = true
				g.kernBudget = kernelBurst
			}
		}
		g.curBlock = g.pickBlock()
	}

	base := UserCodeBase
	if g.inKernel {
		base = KernelCodeBase
	}
	pc := base + uint64(g.curBlock*g.blockLen+g.blockPos)*instrBytes
	ev.PC = pc
	ev.Kernel = g.inKernel
	ev.Addr = 0
	ev.Taken = false

	if g.blockPos == g.blockLen-1 {
		// Block-terminating conditional branch.
		ev.Kind = CondBranch
		var b *branchState
		if g.inKernel {
			b = &g.kbranches[g.curBlock]
		} else {
			b = &g.branches[g.curBlock]
		}
		ev.Taken = g.outcome(b)
		g.blockPos = 0
		return
	}
	g.blockPos++

	// Non-branch slot: loads, stores, and ALU ops in their renormalized
	// proportions (thresholds precomputed at construction).
	x := g.rMix.Float64()
	switch {
	case x < g.pLoad:
		ev.Kind = Load
		ev.Addr = g.dataAddr()
	case x < g.pLoadStore:
		ev.Kind = Store
		ev.Addr = g.dataAddr()
	default:
		// ALU flavour by FP/SIMD fractions renormalized over ALU slots.
		if g.pALU <= 0 {
			ev.Kind = IntOp
			return
		}
		y := g.rMix.Float64() * g.pALU
		switch {
		case y < g.pSIMD:
			ev.Kind = SIMDOp
		case y < g.pSIMDFP:
			ev.Kind = FPOp
		default:
			ev.Kind = IntOp
		}
	}
}

// FillBatch fills the caller-owned slab evs with the next len(evs)
// dynamic instructions — the arena API of the batched simulation
// kernel. The generator advances exactly as len(evs) Next calls would:
// every RNG stream draws in the same order, so a trace consumed
// through any mix of FillBatch and Next calls is bit-identical to one
// consumed event by event (TestFillBatchMatchesNext pins this).
//
// The body is Next unrolled across the slab with the per-event state
// (block position, thresholds, RNG handle) held in locals; only the
// once-per-block prologue touches the Generator's fields.
func (g *Generator) FillBatch(evs []Event) {
	var (
		blockLen          = g.blockLen
		pLoad             = g.pLoad
		pLoadStore        = g.pLoadStore
		pALU              = g.pALU
		pSIMD             = g.pSIMD
		pSIMDFP           = g.pSIMDFP
		kernelFrac        = g.spec.KernelFrac
		rMix              = g.rMix
		pos               = g.blockPos
		curBlock          = g.curBlock
		inKernel          = g.inKernel
		base       uint64 = UserCodeBase
	)
	if inKernel {
		base = KernelCodeBase
	}
	for i := range evs {
		ev := &evs[i]
		if pos == 0 {
			if inKernel {
				g.kernBudget--
				if g.kernBudget <= 0 {
					inKernel = false
					g.inKernel = false
				}
			} else if kernelFrac > 0 {
				if g.rKernel.Bool(g.pEnterKern) {
					inKernel = true
					g.inKernel = true
					g.kernBudget = kernelBurst
				}
			}
			curBlock = g.pickBlock()
			if inKernel {
				base = KernelCodeBase
			} else {
				base = UserCodeBase
			}
		}

		ev.PC = base + uint64(curBlock*blockLen+pos)*instrBytes
		ev.Kernel = inKernel
		ev.Addr = 0
		ev.Taken = false

		if pos == blockLen-1 {
			ev.Kind = CondBranch
			var b *branchState
			if inKernel {
				b = &g.kbranches[curBlock]
			} else {
				b = &g.branches[curBlock]
			}
			ev.Taken = g.outcome(b)
			pos = 0
			continue
		}
		pos++

		x := rMix.Float64()
		switch {
		case x < pLoad:
			ev.Kind = Load
			ev.Addr = g.dataAddr()
		case x < pLoadStore:
			ev.Kind = Store
			ev.Addr = g.dataAddr()
		default:
			if pALU <= 0 {
				ev.Kind = IntOp
				continue
			}
			y := rMix.Float64() * pALU
			switch {
			case y < pSIMD:
				ev.Kind = SIMDOp
			case y < pSIMDFP:
				ev.Kind = FPOp
			default:
				ev.Kind = IntOp
			}
		}
	}
	g.blockPos = pos
	g.curBlock = curBlock
}

// outcome produces one branch's next direction and updates the global
// outcome history the correlated branches read.
func (g *Generator) outcome(b *branchState) bool {
	var taken bool
	switch b.kind {
	case corrBranch:
		taken = g.phase
		if g.rBranch.Bool(0.005) {
			taken = !taken
		}
	default:
		taken = g.rBranch.Bool(b.bias)
	}
	return taken
}

// dataAddr produces the next load/store effective address.
func (g *Generator) dataAddr() uint64 {
	spec := &g.spec
	if g.inKernel {
		// Kernel data: mostly hot kernel structures, with a colder
		// tail over the wider kernel region.
		if g.rData.Bool(0.8) {
			return KernelDataBase + g.rData.Uint64n(KernelHotDataBytes)&^7
		}
		return KernelDataBase + g.rData.Uint64n(KernelDataBytes)&^7
	}
	x := g.rData.Float64()
	switch {
	case x < spec.StrideFrac:
		i := g.rData.Intn(len(g.streams))
		g.streams[i] += strideStep
		if g.streams[i] >= uint64(i+1)*g.streamSpan {
			g.streams[i] = uint64(i) * g.streamSpan
		}
		return DataBase + g.streams[i]
	case x < g.dHotT:
		return DataBase + g.rData.Uint64n(spec.HotBytes)&^7
	case x < g.dMidT:
		return DataBase + g.rData.Uint64n(spec.MidBytes)&^7
	case x < g.dWarmT:
		return DataBase + g.rData.Uint64n(spec.WarmBytes)&^7
	default:
		return DataBase + g.rData.Uint64n(spec.FootprintBytes)&^7
	}
}
