package machine

import (
	"testing"
)

func mcOpts() RunOptions {
	return RunOptions{Instructions: 40_000, WarmupInstructions: 10_000}
}

func TestRunMultiSingleCopyMatchesShape(t *testing.T) {
	m, err := New(SkylakeConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload()
	mc, err := m.RunMulti(w, 1, mcOpts())
	if err != nil {
		t.Fatal(err)
	}
	if mc.Copies != 1 || len(mc.PerCopy) != 1 {
		t.Fatalf("single-copy result shape wrong: %+v", mc)
	}
	rc := mc.PerCopy[0]
	if rc.Instructions != 40_000 {
		t.Fatalf("instructions %d", rc.Instructions)
	}
	if mc.Throughput <= 0 || mc.Throughput != 1/rc.CPI {
		t.Fatalf("throughput %v vs CPI %v", mc.Throughput, rc.CPI)
	}
}

func TestRunMultiDeterministic(t *testing.T) {
	m, _ := New(SkylakeConfig())
	w := testWorkload()
	a, err := m.RunMulti(w, 3, mcOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.RunMulti(w, 3, mcOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerCopy {
		if *a.PerCopy[i] != *b.PerCopy[i] {
			t.Fatalf("copy %d differs between runs", i)
		}
	}
}

func TestRunMultiContentionHurtsMemoryBound(t *testing.T) {
	m, _ := New(SkylakeConfig())

	// Memory-bound: a 6 MiB warm working set per copy — one copy fits
	// the 8 MiB LLC, four copies (24 MiB) thrash it.
	memBound := testWorkload()
	memBound.Key = "membound"
	memBound.Spec.WarmBytes = 6 << 20
	memBound.Spec.HotFrac, memBound.Spec.MidFrac = 0.45, 0.05
	memBound.Spec.WarmFrac, memBound.Spec.StrideFrac = 0.45, 0

	// Cache-resident: everything fits each copy's private caches.
	resident := testWorkload()
	resident.Key = "resident"
	resident.Spec.HotFrac, resident.Spec.MidFrac = 0.9, 0.05
	resident.Spec.WarmFrac, resident.Spec.StrideFrac = 0.05, 0
	resident.Spec.WarmBytes = 256 << 10
	resident.Spec.FootprintBytes = 1 << 20

	eff := func(w Workload) float64 {
		single, err := m.RunMulti(w, 1, mcOpts())
		if err != nil {
			t.Fatal(err)
		}
		quad, err := m.RunMulti(w, 4, mcOpts())
		if err != nil {
			t.Fatal(err)
		}
		return quad.ScalingEfficiency(single.Throughput)
	}
	memEff, resEff := eff(memBound), eff(resident)
	if resEff < 0.9 {
		t.Errorf("cache-resident workload should scale near-linearly, efficiency %v", resEff)
	}
	if memEff > resEff-0.1 {
		t.Errorf("LLC-thrashing workload (eff %v) should scale clearly worse than resident (%v)",
			memEff, resEff)
	}
	// Per-copy LLC misses must rise under contention.
	single, _ := m.RunMulti(memBound, 1, mcOpts())
	quad, _ := m.RunMulti(memBound, 4, mcOpts())
	if quad.PerCopy[0].Cache.L3Misses <= single.PerCopy[0].Cache.L3Misses {
		t.Errorf("shared-LLC contention should raise per-copy L3 misses: %d vs %d",
			quad.PerCopy[0].Cache.L3Misses, single.PerCopy[0].Cache.L3Misses)
	}
}

func TestRunMultiNoL3Machine(t *testing.T) {
	m, _ := New(HarpertownConfig())
	mc, err := m.RunMulti(testWorkload(), 2, mcOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, rc := range mc.PerCopy {
		if rc.Cache.L3Accesses != 0 {
			t.Fatal("machine without L3 recorded L3 accesses in multi-copy mode")
		}
	}
}

func TestRunMultiErrors(t *testing.T) {
	m, _ := New(SkylakeConfig())
	if _, err := m.RunMulti(testWorkload(), 0, mcOpts()); err == nil {
		t.Fatal("copies=0 must error")
	}
	w := testWorkload()
	w.ILP = 0
	if _, err := m.RunMulti(w, 2, mcOpts()); err == nil {
		t.Fatal("ILP=0 must error")
	}
}

func TestScalingEfficiencyEdgeCases(t *testing.T) {
	mc := &MultiCounts{Copies: 2, Throughput: 4}
	if e := mc.ScalingEfficiency(2); e != 1 {
		t.Fatalf("efficiency = %v, want 1", e)
	}
	if e := mc.ScalingEfficiency(0); e != 0 {
		t.Fatalf("efficiency with zero baseline = %v, want 0", e)
	}
}
