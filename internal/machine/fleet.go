package machine

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpistack"
	"repro/internal/power"
	"repro/internal/tlb"
)

// Canonical machine names from Table IV of the paper.
const (
	Skylake    = "skylake-i7-6700"
	Broadwell  = "broadwell-e5-2650v4"
	Ivybridge  = "ivybridge-e5-2430v2"
	Harpertown = "harpertown-e5405"
	SparcIV    = "sparc-iv-v490"
	SparcT4    = "sparc-t4"
	Opteron    = "opteron-2435"
)

func kb(n int) int { return n << 10 }
func mb(n int) int { return n << 20 }

// SkylakeConfig returns the Intel Core i7-6700 model — the machine on
// which the paper's Section II characterization (Table I, Figure 1) is
// performed.
func SkylakeConfig() Config {
	l3 := cache.Config{SizeBytes: mb(8), Ways: 16, LineBytes: 64}
	stlb := tlb.Config{Entries: 1024, Ways: 8}
	return Config{
		Name: Skylake, ISA: X86, FreqGHz: 3.4, IssueWidth: 4,
		Caches: cache.HierarchyConfig{
			L1I: cache.Config{SizeBytes: kb(32), Ways: 8, LineBytes: 64},
			L1D: cache.Config{SizeBytes: kb(32), Ways: 8, LineBytes: 64},
			L2:  cache.Config{SizeBytes: kb(256), Ways: 4, LineBytes: 64},
			L3:  &l3,
		},
		TLBs: tlb.HierarchyConfig{
			ITLB: tlb.Config{Entries: 128, Ways: 8},
			DTLB: tlb.Config{Entries: 64, Ways: 4},
			L2:   &stlb,
		},
		Predictor: branch.Config{Kind: branch.Tournament, TableBits: 14, HistoryBits: 12},
		Penalties: cpistack.Penalties{
			MispredictPenalty: 16,
			L2HitLatency:      10, L3HitLatency: 34, MemLatency: 190,
			PageWalkLatency: 40, MLP: 3,
		},
		HasRAPL: true,
		Power:   power.DefaultModel(),
	}
}

// BroadwellConfig returns the Xeon E5-2650 v4 model. The real part's
// 30 MB LLC is rounded up to 32 MB for a power-of-two set count.
func BroadwellConfig() Config {
	cfg := SkylakeConfig()
	cfg.Name = Broadwell
	cfg.FreqGHz = 2.2
	l3 := cache.Config{SizeBytes: mb(32), Ways: 16, LineBytes: 64}
	cfg.Caches.L3 = &l3
	cfg.Penalties.L3HitLatency = 45 // bigger, slower shared LLC
	cfg.Penalties.MemLatency = 210
	cfg.Power = power.Model{
		CoreStatic: 10, CorePerIPC: 11, FPWeight: 6, SIMDWeight: 13,
		LLCStatic: 4, LLCPerAPC: 55, DRAMStatic: 3, DRAMPerMPC: 340,
	}
	return cfg
}

// IvybridgeConfig returns the Xeon E5-2430 v2 model (15 MB LLC rounded
// to 16 MB). Its predictor and TLBs are a generation older and smaller
// than Skylake's.
func IvybridgeConfig() Config {
	cfg := SkylakeConfig()
	cfg.Name = Ivybridge
	cfg.FreqGHz = 2.5
	l3 := cache.Config{SizeBytes: mb(16), Ways: 16, LineBytes: 64}
	cfg.Caches.L3 = &l3
	stlb := tlb.Config{Entries: 512, Ways: 4}
	cfg.TLBs = tlb.HierarchyConfig{
		ITLB: tlb.Config{Entries: 64, Ways: 4},
		DTLB: tlb.Config{Entries: 64, Ways: 4},
		L2:   &stlb,
	}
	cfg.Predictor = branch.Config{Kind: branch.Tournament, TableBits: 13, HistoryBits: 10}
	cfg.Penalties.MispredictPenalty = 15
	cfg.Penalties.L3HitLatency = 38
	cfg.Penalties.MemLatency = 230
	cfg.Penalties.MLP = 2.5
	cfg.Power = power.Model{
		CoreStatic: 9, CorePerIPC: 14, FPWeight: 7, SIMDWeight: 16,
		LLCStatic: 3, LLCPerAPC: 50, DRAMStatic: 2.5, DRAMPerMPC: 360,
	}
	return cfg
}

// HarpertownConfig returns the Xeon E5405 model: a Core2-era part with
// a large L2 and no L3 (the paper's Table IV lists "N/A"). The per-die
// 2x6 MB L2 is modelled as a unified 4 MB cache.
func HarpertownConfig() Config {
	return Config{
		Name: Harpertown, ISA: X86, FreqGHz: 2.0, IssueWidth: 4,
		Caches: cache.HierarchyConfig{
			L1I: cache.Config{SizeBytes: kb(32), Ways: 8, LineBytes: 64},
			L1D: cache.Config{SizeBytes: kb(32), Ways: 8, LineBytes: 64},
			L2:  cache.Config{SizeBytes: mb(4), Ways: 16, LineBytes: 64},
		},
		TLBs: tlb.HierarchyConfig{
			ITLB: tlb.Config{Entries: 128, Ways: 4},
			DTLB: tlb.Config{Entries: 256, Ways: 4},
		},
		Predictor: branch.Config{Kind: branch.GShare, TableBits: 12, HistoryBits: 8},
		Penalties: cpistack.Penalties{
			MispredictPenalty: 13,
			L2HitLatency:      15, L3HitLatency: 0, MemLatency: 280,
			PageWalkLatency: 80, MLP: 1.8,
		},
	}
}

// SparcIVConfig returns the SPARC-IV+ (Sun Fire V490) model: large
// L1s, a modest on-chip L2 and a huge off-chip L3, narrow issue, and a
// simple bimodal predictor.
func SparcIVConfig() Config {
	l3 := cache.Config{SizeBytes: mb(32), Ways: 4, LineBytes: 64}
	return Config{
		Name: SparcIV, ISA: SPARC, FreqGHz: 1.8, IssueWidth: 2,
		Caches: cache.HierarchyConfig{
			L1I: cache.Config{SizeBytes: kb(64), Ways: 2, LineBytes: 64},
			L1D: cache.Config{SizeBytes: kb(64), Ways: 2, LineBytes: 64},
			L2:  cache.Config{SizeBytes: mb(2), Ways: 4, LineBytes: 64},
			L3:  &l3,
		},
		TLBs: tlb.HierarchyConfig{
			ITLB: tlb.Config{Entries: 16, Ways: 16},
			DTLB: tlb.Config{Entries: 512, Ways: 2},
		},
		Predictor: branch.Config{Kind: branch.Bimodal, TableBits: 12},
		Penalties: cpistack.Penalties{
			MispredictPenalty: 9,
			L2HitLatency:      12, L3HitLatency: 60, MemLatency: 340,
			PageWalkLatency: 120, MLP: 1.5,
		},
	}
}

// SparcT4Config returns the SPARC T4 model: tiny L1s and L2, a shared
// 4 MB L3, and an aggressive-for-SPARC gshare predictor.
func SparcT4Config() Config {
	l3 := cache.Config{SizeBytes: mb(4), Ways: 16, LineBytes: 64}
	l2t := tlb.Config{Entries: 512, Ways: 4}
	return Config{
		Name: SparcT4, ISA: SPARC, FreqGHz: 3.0, IssueWidth: 2,
		Caches: cache.HierarchyConfig{
			L1I: cache.Config{SizeBytes: kb(16), Ways: 4, LineBytes: 64},
			L1D: cache.Config{SizeBytes: kb(16), Ways: 4, LineBytes: 64},
			L2:  cache.Config{SizeBytes: kb(128), Ways: 8, LineBytes: 64},
			L3:  &l3,
		},
		TLBs: tlb.HierarchyConfig{
			ITLB: tlb.Config{Entries: 64, Ways: 64},
			DTLB: tlb.Config{Entries: 128, Ways: 64},
			L2:   &l2t,
		},
		Predictor: branch.Config{Kind: branch.GShare, TableBits: 13, HistoryBits: 11},
		Penalties: cpistack.Penalties{
			MispredictPenalty: 11,
			L2HitLatency:      10, L3HitLatency: 40, MemLatency: 300,
			PageWalkLatency: 90, MLP: 2,
		},
	}
}

// OpteronConfig returns the AMD Opteron 2435 model (Istanbul): large
// 2-way L1s, a 512 KB L2, and a 6 MB shared L3 modelled as 4 MB.
func OpteronConfig() Config {
	l3 := cache.Config{SizeBytes: mb(4), Ways: 16, LineBytes: 64}
	l2t := tlb.Config{Entries: 512, Ways: 4}
	return Config{
		Name: Opteron, ISA: X86, FreqGHz: 2.6, IssueWidth: 3,
		Caches: cache.HierarchyConfig{
			L1I: cache.Config{SizeBytes: kb(64), Ways: 2, LineBytes: 64},
			L1D: cache.Config{SizeBytes: kb(64), Ways: 2, LineBytes: 64},
			L2:  cache.Config{SizeBytes: kb(512), Ways: 16, LineBytes: 64},
			L3:  &l3,
		},
		TLBs: tlb.HierarchyConfig{
			ITLB: tlb.Config{Entries: 32, Ways: 32},
			DTLB: tlb.Config{Entries: 48, Ways: 48},
			L2:   &l2t,
		},
		Predictor: branch.Config{Kind: branch.GShare, TableBits: 13, HistoryBits: 9},
		Penalties: cpistack.Penalties{
			MispredictPenalty: 12,
			L2HitLatency:      12, L3HitLatency: 45, MemLatency: 250,
			PageWalkLatency: 60, MLP: 2,
		},
	}
}

// Fleet returns the seven machines of Table IV, in the paper's order.
func Fleet() ([]*Machine, error) {
	cfgs := []Config{
		SkylakeConfig(), BroadwellConfig(), IvybridgeConfig(),
		HarpertownConfig(), SparcIVConfig(), SparcT4Config(), OpteronConfig(),
	}
	machines := make([]*Machine, 0, len(cfgs))
	for _, c := range cfgs {
		m, err := New(c)
		if err != nil {
			return nil, fmt.Errorf("machine fleet: %w", err)
		}
		machines = append(machines, m)
	}
	return machines, nil
}

// RAPLFleet returns the three Intel machines with power instrumentation
// (Skylake, Ivybridge, Broadwell), used for the Figure 12 power study.
func RAPLFleet() ([]*Machine, error) {
	all, err := Fleet()
	if err != nil {
		return nil, err
	}
	var out []*Machine
	for _, m := range all {
		if m.Config().HasRAPL {
			out = append(out, m)
		}
	}
	return out, nil
}

// SensitivityFleet returns the four machines used for the paper's
// Table IX sensitivity ranking (the paper uses "four different
// machines"; we pick the four most architecturally diverse, including
// the bimodal-predictor SPARC-IV+ so predictor quality varies).
func SensitivityFleet() ([]*Machine, error) {
	all, err := Fleet()
	if err != nil {
		return nil, err
	}
	want := map[string]bool{Skylake: true, SparcIV: true, SparcT4: true, Opteron: true}
	var out []*Machine
	for _, m := range all {
		if want[m.Name()] {
			out = append(out, m)
		}
	}
	return out, nil
}
