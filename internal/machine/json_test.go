package machine

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	fleet, err := Fleet()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteConfigs(&buf, fleet); err != nil {
		t.Fatal(err)
	}
	// Kinds must serialize as readable names.
	if !strings.Contains(buf.String(), `"tournament"`) || !strings.Contains(buf.String(), `"bimodal"`) {
		t.Fatalf("predictor kinds not serialized by name:\n%s", buf.String()[:400])
	}
	parsed, err := ParseConfigs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(fleet) {
		t.Fatalf("round trip lost machines: %d vs %d", len(parsed), len(fleet))
	}
	for i := range fleet {
		if parsed[i].Name() != fleet[i].Name() {
			t.Fatalf("machine %d name %q != %q", i, parsed[i].Name(), fleet[i].Name())
		}
		if parsed[i].Config().Predictor != fleet[i].Config().Predictor {
			t.Fatalf("machine %d predictor changed in round trip", i)
		}
		if parsed[i].Config().Penalties != fleet[i].Config().Penalties {
			t.Fatalf("machine %d penalties changed in round trip", i)
		}
	}
}

func TestParsedMachineRunsIdentically(t *testing.T) {
	fleet, _ := Fleet()
	var buf bytes.Buffer
	if err := WriteConfigs(&buf, fleet[:1]); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseConfigs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload()
	opts := RunOptions{Instructions: 30_000, WarmupInstructions: 5_000}
	a, err := fleet[0].Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parsed[0].Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatal("a parsed machine must behave identically to its source")
	}
}

func TestParseConfigsErrors(t *testing.T) {
	cases := map[string]string{
		"empty array":   `[]`,
		"bad JSON":      `{`,
		"unknown field": `[{"Name":"x","Bogus":1}]`,
		"bad kind":      `[{"Name":"x","ISA":"x86","FreqGHz":1,"IssueWidth":1,"Predictor":{"Kind":"magic","TableBits":10}}]`,
		"invalid machine": `[{"Name":"x","ISA":"x86","FreqGHz":1,"IssueWidth":0,
			"Predictor":{"Kind":"bimodal","TableBits":10}}]`,
	}
	for name, input := range cases {
		if _, err := ParseConfigs(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Duplicate names.
	var buf bytes.Buffer
	fleet, _ := Fleet()
	if err := WriteConfigs(&buf, []*Machine{fleet[0], fleet[0]}); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseConfigs(&buf); err == nil {
		t.Error("duplicate names: expected error")
	}
}
