package machine

import (
	"encoding/json"
	"fmt"
	"io"
)

// ParseConfigs reads a JSON array of machine configurations — the
// format WriteConfigs emits — validates each one, and returns ready
// Machines. This lets downstream users run the paper's methodology on
// their own machine models:
//
//	[
//	  {
//	    "Name": "my-server", "ISA": "x86", "FreqGHz": 2.8, "IssueWidth": 4,
//	    "Caches": {"L1I": {"SizeBytes": 32768, "Ways": 8, "LineBytes": 64}, ...},
//	    "TLBs":   {"ITLB": {"Entries": 128, "Ways": 8}, ...},
//	    "Predictor": {"Kind": "tournament", "TableBits": 14, "HistoryBits": 12},
//	    "Penalties": {"MispredictPenalty": 16, ..., "MLP": 3}
//	  }
//	]
func ParseConfigs(r io.Reader) ([]*Machine, error) {
	var cfgs []Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfgs); err != nil {
		return nil, fmt.Errorf("machine: parsing configs: %w", err)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("machine: no configurations in input")
	}
	seen := make(map[string]bool, len(cfgs))
	machines := make([]*Machine, 0, len(cfgs))
	for _, cfg := range cfgs {
		if seen[cfg.Name] {
			return nil, fmt.Errorf("machine: duplicate name %q", cfg.Name)
		}
		seen[cfg.Name] = true
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
	}
	return machines, nil
}

// WriteConfigs emits machine configurations as indented JSON in the
// format ParseConfigs reads. Use it to dump the built-in Table IV
// fleet as a starting point for custom configs:
//
//	fleet, _ := machine.Fleet()
//	machine.WriteConfigs(os.Stdout, fleet)
func WriteConfigs(w io.Writer, machines []*Machine) error {
	cfgs := make([]Config, 0, len(machines))
	for _, m := range machines {
		cfgs = append(cfgs, m.Config())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cfgs); err != nil {
		return fmt.Errorf("machine: writing configs: %w", err)
	}
	return nil
}
