package machine

import (
	"testing"

	"repro/internal/trace"
)

// TestPrimeEstablishesSteadyState verifies the purpose of the priming
// pass: a workload whose entire working set fits the caches must show
// essentially zero misses from the very first measured instruction,
// without needing a long warmup.
func TestPrimeEstablishesSteadyState(t *testing.T) {
	m, err := New(SkylakeConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{
		Key: "resident",
		Spec: trace.Spec{
			LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.12,
			// Everything fits: 8K hot within L1D, warm 512K within L3.
			HotBytes: 8 << 10, MidBytes: 8 << 10, WarmBytes: 512 << 10,
			FootprintBytes: 512 << 10,
			HotFrac:        0.7, MidFrac: 0, WarmFrac: 0.29, StrideFrac: 0,
			CodeBytes: 8 << 10, HotCodeBytes: 8 << 10, HotCodeFrac: 1,
			BranchEntropy: 0, TakenFrac: 0.9,
		},
		ILP: 3,
	}
	// Minimal warmup: priming alone must carry the steady state.
	rc, err := m.Run(w, RunOptions{Instructions: 50_000, WarmupInstructions: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cache.L3Misses > rc.Instructions/1000 {
		t.Errorf("resident working set missed LLC %d times in %d instructions",
			rc.Cache.L3Misses, rc.Instructions)
	}
	if rc.TLB.PageWalks > rc.Instructions/1000 {
		t.Errorf("resident working set walked %d times", rc.TLB.PageWalks)
	}
}

// TestColdFootprintStillMisses verifies the complement: the region
// beyond WarmBytes is deliberately unprimed, so a DRAM-sized footprint
// keeps missing in steady state.
func TestColdFootprintStillMisses(t *testing.T) {
	m, _ := New(SkylakeConfig())
	w := testWorkload()
	w.Key = "cold"
	w.Spec.HotFrac, w.Spec.MidFrac, w.Spec.WarmFrac, w.Spec.StrideFrac = 0.1, 0, 0, 0
	w.Spec.FootprintBytes = 1 << 30
	rc, err := m.Run(w, RunOptions{Instructions: 50_000, WarmupInstructions: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cache.L3Misses < rc.Loads/2 {
		t.Errorf("cold 1 GiB footprint should miss LLC on most references: %d misses for %d loads",
			rc.Cache.L3Misses, rc.Loads)
	}
}
