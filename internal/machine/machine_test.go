package machine

import (
	"math"
	"testing"

	"repro/internal/trace"
)

func testWorkload() Workload {
	return Workload{
		Key: "test-wl",
		Spec: trace.Spec{
			LoadFrac: 0.25, StoreFrac: 0.10, BranchFrac: 0.12,
			FPFrac: 0.05, SIMDFrac: 0.02,
			HotBytes: 16 << 10, MidBytes: 128 << 10, WarmBytes: 1 << 20, FootprintBytes: 64 << 20,
			HotFrac: 0.5, MidFrac: 0.05, WarmFrac: 0.25, StrideFrac: 0.1,
			CodeBytes: 128 << 10, HotCodeBytes: 16 << 10, HotCodeFrac: 0.9,
			BranchEntropy: 0.15, TakenFrac: 0.6,
		},
		ILP: 2.5,
	}
}

func quickOpts() RunOptions {
	return RunOptions{Instructions: 60_000, WarmupInstructions: 15_000}
}

func TestFleetConstruction(t *testing.T) {
	fleet, err := Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 7 {
		t.Fatalf("fleet has %d machines, want 7", len(fleet))
	}
	names := make(map[string]bool)
	for _, m := range fleet {
		if names[m.Name()] {
			t.Fatalf("duplicate machine name %q", m.Name())
		}
		names[m.Name()] = true
	}
	isas := map[ISA]int{}
	for _, m := range fleet {
		isas[m.Config().ISA]++
	}
	if isas[SPARC] != 2 || isas[X86] != 5 {
		t.Fatalf("ISA split %v, want 5 x86 + 2 sparc", isas)
	}
}

func TestRAPLFleet(t *testing.T) {
	rapl, err := RAPLFleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(rapl) != 3 {
		t.Fatalf("RAPL fleet has %d machines, want 3 (Skylake/Broadwell/Ivybridge)", len(rapl))
	}
}

func TestSensitivityFleet(t *testing.T) {
	sens, err := SensitivityFleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != 4 {
		t.Fatalf("sensitivity fleet has %d machines, want 4", len(sens))
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	bad := SkylakeConfig()
	bad.Name = ""
	if _, err := New(bad); err == nil {
		t.Fatal("empty name must be rejected")
	}
	bad = SkylakeConfig()
	bad.IssueWidth = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero issue width must be rejected")
	}
	bad = SkylakeConfig()
	bad.Caches.L1D.SizeBytes = 1000 // invalid geometry
	if _, err := New(bad); err == nil {
		t.Fatal("invalid cache must be rejected")
	}
	bad = SkylakeConfig()
	bad.Penalties.MLP = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid penalties must be rejected")
	}
}

func TestRunProducesPlausibleCounts(t *testing.T) {
	m, err := New(SkylakeConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload()
	rc, err := m.Run(w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	n := float64(rc.Instructions)
	if rc.Instructions != 60_000 {
		t.Fatalf("measured %d instructions, want 60000", rc.Instructions)
	}
	if f := float64(rc.Loads) / n; math.Abs(f-w.Spec.LoadFrac) > 0.05 {
		t.Errorf("load fraction %v, want ≈%v", f, w.Spec.LoadFrac)
	}
	if rc.Branches == 0 || rc.TakenBranches == 0 {
		t.Error("expected branches and taken branches")
	}
	if rc.Mispredicts == 0 {
		t.Error("nonzero branch entropy should cause mispredicts")
	}
	if rc.CPI <= 0.25 {
		t.Errorf("CPI %v should exceed the issue-width ideal", rc.CPI)
	}
	if rc.Cycles == 0 {
		t.Error("cycles must be derived")
	}
	if got := rc.Stack.Total(); math.Abs(got-rc.CPI) > 1e-9 {
		t.Errorf("stack total %v != CPI %v", got, rc.CPI)
	}
	if rc.Power.Total() <= 0 {
		t.Error("Skylake has RAPL; power must be positive")
	}
}

func TestRunDeterministic(t *testing.T) {
	m, _ := New(SkylakeConfig())
	w := testWorkload()
	a, err := m.Run(w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("runs differ:\n%+v\n%+v", a, b)
	}
}

func TestRunNoPowerWithoutRAPL(t *testing.T) {
	m, _ := New(SparcT4Config())
	rc, err := m.Run(testWorkload(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rc.Power.Total() != 0 {
		t.Fatal("non-RAPL machine must report zero power")
	}
}

func TestRunRejectsBadWorkload(t *testing.T) {
	m, _ := New(SkylakeConfig())
	w := testWorkload()
	w.ILP = 0
	if _, err := m.Run(w, quickOpts()); err == nil {
		t.Fatal("ILP=0 must be rejected")
	}
	w = testWorkload()
	w.Spec.HotBytes = 0
	if _, err := m.Run(w, quickOpts()); err == nil {
		t.Fatal("invalid spec must be rejected")
	}
}

func TestMachinesDisagree(t *testing.T) {
	// The same workload must produce different metric values on
	// different machines — that diversity is what PCA consumes.
	sky, _ := New(SkylakeConfig())
	t4, _ := New(SparcT4Config())
	w := testWorkload()
	a, err := sky.Run(w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := t4.Run(w, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cache.L1DMisses == b.Cache.L1DMisses {
		t.Error("32K vs 16K L1D should give different miss counts")
	}
	if a.CPI == b.CPI {
		t.Error("machines should disagree on CPI")
	}
}

func TestBigFootprintMissesMore(t *testing.T) {
	m, _ := New(SkylakeConfig())
	small := testWorkload()
	small.Key = "small"
	small.Spec.HotFrac, small.Spec.WarmFrac = 0.95, 0.05
	big := testWorkload()
	big.Key = "big"
	big.Spec.HotFrac, big.Spec.WarmFrac = 0.05, 0.05 // 90% cold over 64 MB
	a, err := m.Run(small, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(big, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if b.Cache.L3Misses <= a.Cache.L3Misses*5 {
		t.Errorf("cold-heavy workload should miss LLC far more: %d vs %d",
			b.Cache.L3Misses, a.Cache.L3Misses)
	}
	if b.CPI <= a.CPI {
		t.Errorf("memory-bound workload should have higher CPI: %v vs %v", b.CPI, a.CPI)
	}
}

func TestSPARCAdjustment(t *testing.T) {
	sparc, _ := New(SparcIVConfig())
	w := testWorkload()
	adjusted := sparc.adjustSpec(w)
	if adjusted.CodeBytes <= w.Spec.CodeBytes {
		t.Error("SPARC recompilation should grow code footprint")
	}
	if err := adjusted.Validate(); err != nil {
		t.Fatalf("adjusted spec invalid: %v", err)
	}
}

func TestAdjustSpecAlwaysValid(t *testing.T) {
	// Even near-boundary specs must stay valid after jitter.
	fleet, _ := Fleet()
	w := testWorkload()
	w.Spec.LoadFrac, w.Spec.StoreFrac, w.Spec.BranchFrac = 0.45, 0.20, 0.33
	w.Spec.HotFrac, w.Spec.WarmFrac, w.Spec.StrideFrac = 0.5, 0.3, 0.2
	for _, m := range fleet {
		if err := m.adjustSpec(w).Validate(); err != nil {
			t.Errorf("machine %s produced invalid adjusted spec: %v", m.Name(), err)
		}
	}
}

func TestRunDefaults(t *testing.T) {
	m, _ := New(HarpertownConfig())
	rc, err := m.Run(testWorkload(), RunOptions{Instructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if rc.Instructions != 30_000 {
		t.Fatalf("instructions %d", rc.Instructions)
	}
	// Harpertown has no L3: no L3 accesses may be recorded.
	if rc.Cache.L3Accesses != 0 {
		t.Fatal("machine without L3 recorded L3 accesses")
	}
}

func TestRunOptionsCanonical(t *testing.T) {
	cases := []struct {
		in   RunOptions
		want RunOptions
	}{
		// Zero value takes all measurement defaults.
		{RunOptions{}, RunOptions{Instructions: 400_000, WarmupInstructions: 80_000}},
		// Default warmup is instructions/5.
		{RunOptions{Instructions: 5000}, RunOptions{Instructions: 5000, WarmupInstructions: 1000}},
		// Explicit values survive.
		{RunOptions{Instructions: 5000, WarmupInstructions: 42}, RunOptions{Instructions: 5000, WarmupInstructions: 42}},
		// Parallelism is a scheduling knob, not a measurement
		// identity: Canonical clears it.
		{RunOptions{Instructions: 5000, Parallelism: 7}, RunOptions{Instructions: 5000, WarmupInstructions: 1000}},
	}
	for _, c := range cases {
		if got := c.in.Canonical(); got != c.want {
			t.Errorf("Canonical(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
	// Spelling the default warmup explicitly lands on the same
	// canonical identity — the property the server's cache key needs.
	a := RunOptions{Instructions: 5000}.Canonical()
	b := RunOptions{Instructions: 5000, WarmupInstructions: 1000}.Canonical()
	if a != b {
		t.Errorf("equivalent fidelities canonicalize differently: %+v vs %+v", a, b)
	}
}
