package machine

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// MultiCounts is the result of a multi-copy (SPECrate-style) run:
// n identical copies of one benchmark share the last-level cache and
// memory while keeping private L1/L2 caches, TLBs, and predictors —
// the paper measures single copies (Section IV-D) and this extension
// models the contention the real SPECrate harness creates.
type MultiCounts struct {
	// Copies is the number of concurrent instances.
	Copies int
	// PerCopy holds each copy's raw counts.
	PerCopy []*RawCounts
	// Throughput is the aggregate instructions per cycle
	// (sum over copies of 1/CPI_i).
	Throughput float64
}

// ScalingEfficiency returns the throughput relative to perfect linear
// scaling from the given single-copy throughput: 1 means no
// interference, lower values mean shared-resource contention.
func (mc *MultiCounts) ScalingEfficiency(singleThroughput float64) float64 {
	if singleThroughput <= 0 || mc.Copies == 0 {
		return 0
	}
	return mc.Throughput / (singleThroughput * float64(mc.Copies))
}

// copyStride separates the copies' data address spaces: each copy's
// data lives in its own 64 GiB window, as separate rate processes do.
// Code is shared (the OS maps one text segment for all copies).
const copyStride uint64 = 1 << 36

// RunMulti measures copies concurrent instances of the workload,
// interleaved instruction by instruction, with a shared L3. With
// copies == 1 it degenerates to Run up to trace-seed differences.
func (m *Machine) RunMulti(w Workload, copies int, opts RunOptions) (*MultiCounts, error) {
	if copies < 1 {
		return nil, fmt.Errorf("machine: copies %d", copies)
	}
	if w.ILP <= 0 {
		return nil, fmt.Errorf("machine: workload %q has non-positive ILP", w.Key)
	}
	opts = opts.withDefaults()
	spec := m.adjustSpec(w)

	// Shared L3 (when the machine has one); private L1/L2 per copy.
	var sharedL3 *cache.Cache
	if m.cfg.Caches.L3 != nil {
		var err error
		sharedL3, err = cache.New(*m.cfg.Caches.L3)
		if err != nil {
			return nil, err
		}
	}

	counts := make([]RawCounts, copies)
	streams := make([]*simStream, copies)
	for i := range streams {
		gen, err := trace.NewGenerator(spec, fmt.Sprintf("%s#copy%d@%s", w.Key, i, m.cfg.Name))
		if err != nil {
			return nil, err
		}
		privCfg := m.cfg.Caches
		privCfg.L3 = nil // the private hierarchy stops at L2
		caches, err := cache.NewHierarchy(privCfg)
		if err != nil {
			return nil, err
		}
		caches.L3 = sharedL3 // re-attach the shared LLC
		tlbs, err := tlb.NewHierarchy(m.cfg.TLBs)
		if err != nil {
			return nil, err
		}
		pred, err := branch.New(m.cfg.Predictor)
		if err != nil {
			return nil, err
		}
		streams[i] = newSimStream(gen, caches, tlbs, pred, &counts[i], uint64(i)*copyStride)
		primeOffset(caches, tlbs, spec, streams[i].offset)
	}

	// Round-robin interleaving through the shared kernel: warmup, then
	// measurement.
	runInterleaved(streams, opts.WarmupInstructions, false)
	for _, st := range streams {
		st.resetStats()
	}
	if sharedL3 != nil {
		sharedL3.ResetStats()
	}
	runInterleaved(streams, opts.Instructions, true)

	out := &MultiCounts{Copies: copies}
	for _, st := range streams {
		if err := st.finalize(m.cfg.IssueWidth, w.ILP, m.cfg.Penalties); err != nil {
			return nil, err
		}
		out.PerCopy = append(out.PerCopy, st.rc)
		out.Throughput += 1 / st.rc.CPI
	}
	return out, nil
}
