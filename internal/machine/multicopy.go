package machine

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpistack"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// MultiCounts is the result of a multi-copy (SPECrate-style) run:
// n identical copies of one benchmark share the last-level cache and
// memory while keeping private L1/L2 caches, TLBs, and predictors —
// the paper measures single copies (Section IV-D) and this extension
// models the contention the real SPECrate harness creates.
type MultiCounts struct {
	// Copies is the number of concurrent instances.
	Copies int
	// PerCopy holds each copy's raw counts.
	PerCopy []*RawCounts
	// Throughput is the aggregate instructions per cycle
	// (sum over copies of 1/CPI_i).
	Throughput float64
}

// ScalingEfficiency returns the throughput relative to perfect linear
// scaling from the given single-copy throughput: 1 means no
// interference, lower values mean shared-resource contention.
func (mc *MultiCounts) ScalingEfficiency(singleThroughput float64) float64 {
	if singleThroughput <= 0 || mc.Copies == 0 {
		return 0
	}
	return mc.Throughput / (singleThroughput * float64(mc.Copies))
}

// copyStride separates the copies' data address spaces: each copy's
// data lives in its own 64 GiB window, as separate rate processes do.
// Code is shared (the OS maps one text segment for all copies).
const copyStride uint64 = 1 << 36

// RunMulti measures copies concurrent instances of the workload,
// interleaved instruction by instruction, with a shared L3. With
// copies == 1 it degenerates to Run up to trace-seed differences.
func (m *Machine) RunMulti(w Workload, copies int, opts RunOptions) (*MultiCounts, error) {
	if copies < 1 {
		return nil, fmt.Errorf("machine: copies %d", copies)
	}
	if w.ILP <= 0 {
		return nil, fmt.Errorf("machine: workload %q has non-positive ILP", w.Key)
	}
	opts = opts.withDefaults()
	spec := m.adjustSpec(w)

	// Shared L3 (when the machine has one); private L1/L2 per copy.
	var sharedL3 *cache.Cache
	if m.cfg.Caches.L3 != nil {
		var err error
		sharedL3, err = cache.New(*m.cfg.Caches.L3)
		if err != nil {
			return nil, err
		}
	}

	type copyState struct {
		gen    *trace.Generator
		caches *cache.Hierarchy
		tlbs   *tlb.Hierarchy
		pred   *branch.Predictor
		rc     RawCounts
		offset uint64

		lastILine, lastIPage                 uint64
		l1iToL2, l2iToL3, l2iToMem, l3iToMem uint64
		l1dToL2, l2dToL3, l3dToMem, l2dToMem uint64
	}
	states := make([]*copyState, copies)
	for i := range states {
		gen, err := trace.NewGenerator(spec, fmt.Sprintf("%s#copy%d@%s", w.Key, i, m.cfg.Name))
		if err != nil {
			return nil, err
		}
		privCfg := m.cfg.Caches
		privCfg.L3 = nil // the private hierarchy stops at L2
		caches, err := cache.NewHierarchy(privCfg)
		if err != nil {
			return nil, err
		}
		caches.L3 = sharedL3 // re-attach the shared LLC
		tlbs, err := tlb.NewHierarchy(m.cfg.TLBs)
		if err != nil {
			return nil, err
		}
		pred, err := branch.New(m.cfg.Predictor)
		if err != nil {
			return nil, err
		}
		states[i] = &copyState{
			gen: gen, caches: caches, tlbs: tlbs, pred: pred,
			offset:    uint64(i) * copyStride,
			lastILine: ^uint64(0), lastIPage: ^uint64(0),
		}
		primeOffset(caches, tlbs, spec, states[i].offset)
	}

	const lineShift = 6
	step := func(st *copyState, measure bool) {
		var ev trace.Event
		st.gen.Next(&ev)
		if measure {
			st.rc.Instructions++
			if ev.Kernel {
				st.rc.KernelInstrs++
			}
		}
		iline := ev.PC >> lineShift
		if iline != st.lastILine {
			st.lastILine = iline
			lvl := st.caches.FetchInstr(ev.PC)
			if measure {
				switch lvl {
				case 1:
					st.l1iToL2++
				case 2:
					st.l1iToL2++
					st.l2iToL3++
				case 3:
					st.l1iToL2++
					if sharedL3 != nil {
						st.l2iToL3++
						st.l3iToMem++
					} else {
						st.l2iToMem++
					}
				}
			}
		}
		if ipage := ev.PC >> tlb.PageShift; ipage != st.lastIPage {
			st.lastIPage = ipage
			st.tlbs.TranslateInstr(ev.PC)
		}
		switch ev.Kind {
		case trace.Load, trace.Store:
			if measure {
				if ev.Kind == trace.Load {
					st.rc.Loads++
				} else {
					st.rc.Stores++
				}
			}
			lvl := st.caches.AccessData(ev.Addr + st.offset)
			if measure {
				switch lvl {
				case 1:
					st.l1dToL2++
				case 2:
					st.l1dToL2++
					st.l2dToL3++
				case 3:
					st.l1dToL2++
					if sharedL3 != nil {
						st.l2dToL3++
						st.l3dToMem++
					} else {
						st.l2dToMem++
					}
				}
			}
			st.tlbs.TranslateData(ev.Addr + st.offset)
		case trace.CondBranch:
			if measure {
				st.rc.Branches++
				if ev.Taken {
					st.rc.TakenBranches++
				}
			}
			st.pred.Predict(ev.PC, ev.Taken)
		case trace.FPOp:
			if measure {
				st.rc.FPOps++
			}
		case trace.SIMDOp:
			if measure {
				st.rc.SIMDOps++
			}
		}
	}

	// Round-robin interleaving: warmup, then measurement.
	for i := 0; i < opts.WarmupInstructions; i++ {
		for _, st := range states {
			step(st, false)
		}
	}
	for _, st := range states {
		st.caches.ResetStats()
		st.tlbs.ResetStats()
		st.pred.ResetStats()
		if sharedL3 != nil {
			sharedL3.ResetStats()
		}
	}
	for i := 0; i < opts.Instructions; i++ {
		for _, st := range states {
			step(st, true)
		}
	}

	out := &MultiCounts{Copies: copies}
	ideal := 1 / float64(m.cfg.IssueWidth)
	base := 1 / w.ILP
	for _, st := range states {
		st.rc.Cache = st.caches.Counts()
		st.rc.TLB = st.tlbs.Counts()
		st.rc.Mispredicts = st.pred.Counts().Mispredicts

		stack, err := cpistack.Compute(cpistack.Inputs{
			Instructions: st.rc.Instructions,
			BaseCPI:      base,
			IdealCPI:     ideal,
			Mispredicts:  st.rc.Mispredicts,
			L1IMissToL2:  st.l1iToL2,
			L2IMissToL3:  st.l2iToL3,
			L2IMissToMem: st.l2iToMem,
			L3IMissToMem: st.l3iToMem,
			L1DMissToL2:  st.l1dToL2,
			L2DMissToL3:  st.l2dToL3,
			L3DMissToMem: st.l3dToMem + st.l2dToMem,
			PageWalks:    st.rc.TLB.PageWalks,
		}, m.cfg.Penalties)
		if err != nil {
			return nil, err
		}
		st.rc.Stack = stack
		st.rc.CPI = stack.Total()
		st.rc.Cycles = uint64(st.rc.CPI * float64(st.rc.Instructions))
		out.PerCopy = append(out.PerCopy, &st.rc)
		out.Throughput += 1 / st.rc.CPI
	}
	return out, nil
}
