package machine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// TestLineShiftFollowsL1IGeometry pins the fetch-buffer model to the
// configured L1I line size. The instruction-line shift used to be
// hardcoded to 6 (64-byte lines) in both run loops, so a machine with
// 128-byte instruction lines silently double-counted fetches; this
// test fails against that hardcoding.
func TestLineShiftFollowsL1IGeometry(t *testing.T) {
	cfg := SkylakeConfig()
	cfg.Name = "skylake-128B"
	cfg.Caches.L1I = cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 128}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload()
	opts := quickOpts()
	rc, err := m.Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Independent replay: one L1I access per 128-byte-line transition,
	// with the last-line state carried across the warmup boundary
	// exactly as the kernel carries it.
	gen, err := trace.NewGenerator(m.adjustSpec(w), w.Key+"@"+cfg.Name)
	if err != nil {
		t.Fatal(err)
	}
	const shift = 7 // log2(128)
	last := ^uint64(0)
	var ev trace.Event
	for i := 0; i < opts.WarmupInstructions; i++ {
		gen.Next(&ev)
		if line := ev.PC >> shift; line != last {
			last = line
		}
	}
	var want uint64
	for i := 0; i < opts.Instructions; i++ {
		gen.Next(&ev)
		if line := ev.PC >> shift; line != last {
			last = line
			want++
		}
	}

	if rc.Cache.L1IAccesses != want {
		t.Fatalf("L1I accesses = %d, want %d (one per 128B line transition); the fetch model is not using the configured line size",
			rc.Cache.L1IAccesses, want)
	}
}
