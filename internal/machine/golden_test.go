package machine

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// The committed golden fixture pins the exact engine's RawCounts
// bit-for-bit: any change to the trace generator, the simulators, or
// the shared counting kernel that perturbs results fails here
// directly, instead of only through the store goldens downstream.
// Regenerate deliberately with:
//
//	go test ./internal/machine -run TestGoldenCounts -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_counts.json from current code")

const goldenPath = "testdata/golden_counts.json"

// goldenCase is one pinned (machine × workload × options) leaf.
// Copies > 0 pins a multi-copy (SPECrate) run instead of a single run.
type goldenCase struct {
	Machine  string       `json:"machine"`
	Workload Workload     `json:"workload"`
	Opts     RunOptions   `json:"opts"`
	Copies   int          `json:"copies,omitempty"`
	Counts   *RawCounts   `json:"counts,omitempty"`
	Multi    *MultiCounts `json:"multi,omitempty"`
}

// goldenInputs spans the generator and kernel code paths: kernel
// episodes, striding streams, correlated branch patterns, machines
// with and without an L3, both ISAs, and the shared-L3 multicopy
// interleaving.
func goldenInputs() []goldenCase {
	general := Workload{
		Key: "golden-general",
		Spec: trace.Spec{
			LoadFrac: 0.26, StoreFrac: 0.11, BranchFrac: 0.14,
			FPFrac: 0.08, SIMDFrac: 0.03, KernelFrac: 0.06,
			HotBytes: 24 << 10, MidBytes: 192 << 10, WarmBytes: 2 << 20, FootprintBytes: 96 << 20,
			HotFrac: 0.45, MidFrac: 0.08, WarmFrac: 0.22, StrideFrac: 0.12,
			CodeBytes: 256 << 10, HotCodeBytes: 24 << 10, HotCodeFrac: 0.85,
			BranchEntropy: 0.12, PatternFrac: 0.25, TakenFrac: 0.58,
		},
		ILP: 2.2,
	}
	branchy := Workload{
		Key: "golden-branchy",
		Spec: trace.Spec{
			LoadFrac: 0.18, StoreFrac: 0.06, BranchFrac: 0.22,
			FPFrac: 0.01, SIMDFrac: 0.0,
			HotBytes: 8 << 10, MidBytes: 64 << 10, WarmBytes: 512 << 10, FootprintBytes: 8 << 20,
			HotFrac: 0.6, MidFrac: 0.1, WarmFrac: 0.2, StrideFrac: 0.0,
			CodeBytes: 512 << 10, HotCodeBytes: 64 << 10, HotCodeFrac: 0.7,
			BranchEntropy: 0.3, PatternFrac: 0.4, TakenFrac: 0.55,
		},
		ILP: 1.8,
	}
	opts := RunOptions{Instructions: 50_000, WarmupInstructions: 10_000}
	return []goldenCase{
		{Machine: Skylake, Workload: general, Opts: opts},
		{Machine: Harpertown, Workload: general, Opts: opts},
		{Machine: SparcT4, Workload: branchy, Opts: opts},
		{Machine: Broadwell, Workload: branchy, Opts: opts},
		{Machine: Skylake, Workload: general, Opts: opts, Copies: 2},
		{Machine: Harpertown, Workload: branchy, Opts: opts, Copies: 3},
	}
}

func fleetByName(t *testing.T) map[string]*Machine {
	t.Helper()
	fleet, err := Fleet()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*Machine, len(fleet))
	for _, m := range fleet {
		out[m.Name()] = m
	}
	return out
}

func TestGoldenCounts(t *testing.T) {
	machines := fleetByName(t)
	cases := goldenInputs()
	for i := range cases {
		c := &cases[i]
		m, ok := machines[c.Machine]
		if !ok {
			t.Fatalf("unknown golden machine %q", c.Machine)
		}
		if c.Copies > 0 {
			mc, err := m.RunMulti(c.Workload, c.Copies, c.Opts)
			if err != nil {
				t.Fatal(err)
			}
			c.Multi = mc
		} else {
			rc, err := m.Run(c.Workload, c.Opts)
			if err != nil {
				t.Fatal(err)
			}
			c.Counts = rc
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", goldenPath, len(cases))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixture (run with -update to create): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cases) {
		t.Fatalf("fixture has %d cases, code defines %d (regenerate with -update)", len(want), len(cases))
	}
	for i, w := range want {
		got := cases[i]
		name := got.Machine + "/" + got.Workload.Key
		if got.Copies > 0 {
			if w.Multi == nil || got.Multi == nil {
				t.Fatalf("%s: missing multicopy counts", name)
			}
			if got.Multi.Copies != w.Multi.Copies || got.Multi.Throughput != w.Multi.Throughput {
				t.Errorf("%s (x%d): throughput %v copies %d, want %v copies %d",
					name, got.Copies, got.Multi.Throughput, got.Multi.Copies,
					w.Multi.Throughput, w.Multi.Copies)
			}
			for ci := range w.Multi.PerCopy {
				if *got.Multi.PerCopy[ci] != *w.Multi.PerCopy[ci] {
					t.Errorf("%s copy %d differs from golden:\n got %+v\nwant %+v",
						name, ci, *got.Multi.PerCopy[ci], *w.Multi.PerCopy[ci])
				}
			}
			continue
		}
		if w.Counts == nil || got.Counts == nil {
			t.Fatalf("%s: missing counts", name)
		}
		// Struct equality: bit-identical, not approximately equal.
		if *got.Counts != *w.Counts {
			t.Errorf("%s differs from golden:\n got %+v\nwant %+v", name, *got.Counts, *w.Counts)
		}
	}
}
