package machine

import (
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// buildStream assembles the simStream Run would use for (m, w), with a
// caller-chosen slab size.
func buildStream(t *testing.T, m *Machine, w Workload, slabSize int) *simStream {
	t.Helper()
	spec := m.adjustSpec(w)
	gen, err := trace.NewGenerator(spec, w.Key+"@"+m.cfg.Name)
	if err != nil {
		t.Fatal(err)
	}
	caches, err := cache.NewHierarchy(m.cfg.Caches)
	if err != nil {
		t.Fatal(err)
	}
	tlbs, err := tlb.NewHierarchy(m.cfg.TLBs)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := branch.New(m.cfg.Predictor)
	if err != nil {
		t.Fatal(err)
	}
	st := newSimStream(gen, caches, tlbs, pred, &RawCounts{}, 0)
	st.slab = make([]trace.Event, slabSize)
	prime(caches, tlbs, spec)
	return st
}

// TestBatchedMatchesSequential runs one (machine × workload) leaf
// through the generator's Next API one event at a time, and through the
// batched kernel at several slab sizes (1, 7, 313 and 4096 — none of
// which divide the instruction counts), asserting identical RawCounts.
// Machines with and without an L3 cover both miss-routing tables.
func TestBatchedMatchesSequential(t *testing.T) {
	fleet, err := Fleet()
	if err != nil {
		t.Fatal(err)
	}
	opts := quickOpts()
	w := testWorkload()

	for _, m := range fleet {
		if name := m.Name(); name != SparcT4 && name != Harpertown {
			continue
		}
		// Reference: the same kernel fed one event at a time via Next.
		ref := buildStream(t, m, w, 1)
		var ev trace.Event
		for i := 0; i < opts.WarmupInstructions; i++ {
			ref.gen.Next(&ev)
			ref.warmupEvent(&ev)
		}
		ref.resetStats()
		for i := 0; i < opts.Instructions; i++ {
			ref.gen.Next(&ev)
			ref.measureEvent(&ev)
		}
		if err := ref.finalize(m.cfg.IssueWidth, w.ILP, m.cfg.Penalties); err != nil {
			t.Fatal(err)
		}

		for _, slabSize := range []int{1, 7, 313, 4096} {
			st := buildStream(t, m, w, slabSize)
			st.warmup(opts.WarmupInstructions)
			st.resetStats()
			st.measure(opts.Instructions)
			if err := st.finalize(m.cfg.IssueWidth, w.ILP, m.cfg.Penalties); err != nil {
				t.Fatal(err)
			}
			if *st.rc != *ref.rc {
				t.Errorf("%s: slab size %d diverged from sequential reference:\n got %+v\nwant %+v",
					m.Name(), slabSize, *st.rc, *ref.rc)
			}
		}

		// And the public entry point (default slab) agrees too.
		got, err := m.Run(w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *ref.rc {
			t.Errorf("%s: Run diverged from sequential reference:\n got %+v\nwant %+v",
				m.Name(), *got, *ref.rc)
		}
	}
}
