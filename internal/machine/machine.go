// Package machine models the seven commercial systems of the paper's
// Table IV. Each Machine composes a branch predictor, a cache
// hierarchy, and a TLB hierarchy with per-machine latency, power, and
// ISA parameters; Run drives a synthetic workload trace through the
// composed simulators and returns the raw event counts from which the
// paper's performance-counter metrics are derived.
//
// Cache geometries follow Table IV with power-of-two roundings where
// the real part's set count is not a power of two (30 MB -> 32 MB,
// 15 MB -> 16 MB, 6 MB -> 4 MB); DESIGN.md records the substitutions.
package machine

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpistack"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// ISA identifies the instruction-set family of a machine, used to
// perturb workload traces the way recompilation for another ISA
// perturbs real dynamic instruction streams.
type ISA string

// The ISAs present in Table IV.
const (
	X86   ISA = "x86"
	SPARC ISA = "sparc"
)

// Config fully describes a simulated machine.
type Config struct {
	Name    string
	ISA     ISA
	FreqGHz float64
	// IssueWidth bounds ideal CPI at 1/IssueWidth.
	IssueWidth int

	Caches    cache.HierarchyConfig
	TLBs      tlb.HierarchyConfig
	Predictor branch.Config
	Penalties cpistack.Penalties

	// HasRAPL marks the Intel machines whose power the paper measures;
	// Power is consulted only when HasRAPL is true.
	HasRAPL bool
	Power   power.Model
}

// Machine is a ready-to-run instance of a Config.
type Machine struct {
	cfg Config
}

// New validates cfg and returns a Machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("machine: empty name")
	}
	if cfg.IssueWidth < 1 {
		return nil, fmt.Errorf("machine %s: issue width %d", cfg.Name, cfg.IssueWidth)
	}
	if cfg.FreqGHz <= 0 {
		return nil, fmt.Errorf("machine %s: frequency %v", cfg.Name, cfg.FreqGHz)
	}
	// Build all components once to validate geometry; Run rebuilds
	// fresh state per workload.
	if _, err := cache.NewHierarchy(cfg.Caches); err != nil {
		return nil, fmt.Errorf("machine %s: %w", cfg.Name, err)
	}
	if _, err := tlb.NewHierarchy(cfg.TLBs); err != nil {
		return nil, fmt.Errorf("machine %s: %w", cfg.Name, err)
	}
	if _, err := branch.New(cfg.Predictor); err != nil {
		return nil, fmt.Errorf("machine %s: %w", cfg.Name, err)
	}
	if err := cfg.Penalties.Validate(); err != nil {
		return nil, fmt.Errorf("machine %s: %w", cfg.Name, err)
	}
	if cfg.HasRAPL {
		if err := cfg.Power.Validate(); err != nil {
			return nil, fmt.Errorf("machine %s: %w", cfg.Name, err)
		}
	}
	return &Machine{cfg: cfg}, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Name returns the machine's name.
func (m *Machine) Name() string { return m.cfg.Name }

// Workload couples a trace specification with the properties the
// trace generator does not model directly.
type Workload struct {
	// Key seeds the trace streams; use a globally unique benchmark
	// name (plus input-set suffix).
	Key string
	// Spec is the ISA-neutral statistical description.
	Spec trace.Spec
	// ILP is the workload's average exploitable instruction-level
	// parallelism, bounding its ideal CPI from below by 1/ILP.
	ILP float64
}

// RawCounts are the per-run event totals — the simulated equivalent of
// one `perf stat` session on one machine.
type RawCounts struct {
	Instructions  uint64
	Loads         uint64
	Stores        uint64
	Branches      uint64
	TakenBranches uint64
	FPOps         uint64
	SIMDOps       uint64
	KernelInstrs  uint64

	Mispredicts uint64
	Cache       cache.Counts
	TLB         tlb.Counts

	Cycles uint64
	CPI    float64
	Stack  cpistack.Stack

	// Power is zero unless the machine HasRAPL.
	Power power.Breakdown
}

// RunOptions control a measurement run.
type RunOptions struct {
	// Instructions measured after warmup. Defaults to 400 000.
	Instructions int
	// WarmupInstructions executed before counters reset.
	// Defaults to Instructions/5.
	WarmupInstructions int
	// Parallelism bounds the number of concurrent per-machine runs a
	// fleet characterization may use (see core.Characterize). It does
	// not affect a single Run, and it never affects results — runs are
	// deterministic regardless of scheduling. 0 means GOMAXPROCS;
	// 1 forces fully serial measurement.
	Parallelism int
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Instructions <= 0 {
		o.Instructions = 400_000
	}
	if o.WarmupInstructions <= 0 {
		o.WarmupInstructions = o.Instructions / 5
	}
	return o
}

// Canonical returns the options with measurement defaults applied and
// scheduling-only knobs (Parallelism) cleared. Two RunOptions with the
// same Canonical value produce bit-identical measurements, so Canonical
// is the correct cache identity for characterization results.
func (o RunOptions) Canonical() RunOptions {
	o = o.withDefaults()
	o.Parallelism = 0
	return o
}

// OptionError reports one invalid RunOptions field. It is the typed
// error both the spec17 flag parser and the spec17d decode path
// surface, so clients can distinguish which knob was wrong.
type OptionError struct {
	// Field is the option's user-facing name ("instructions",
	// "warmup", "parallelism").
	Field string
	// Value is the rejected value.
	Value int
	// Reason says what a valid value looks like.
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("machine: invalid %s %d: %s", e.Field, e.Value, e.Reason)
}

// Validate checks the options as given, before defaults are applied
// (zero values are valid — they select the defaults). The warmup
// bound is checked against the effective instruction count: warmup
// must leave room to measure.
func (o RunOptions) Validate() error {
	if o.Instructions < 0 {
		return &OptionError{Field: "instructions", Value: o.Instructions,
			Reason: "instruction count cannot be negative"}
	}
	if o.WarmupInstructions < 0 {
		return &OptionError{Field: "warmup", Value: o.WarmupInstructions,
			Reason: "warmup instruction count cannot be negative"}
	}
	if o.Parallelism < 0 {
		return &OptionError{Field: "parallelism", Value: o.Parallelism,
			Reason: "worker count cannot be negative"}
	}
	if d := o.withDefaults(); o.WarmupInstructions >= d.Instructions {
		return &OptionError{Field: "warmup", Value: o.WarmupInstructions,
			Reason: fmt.Sprintf("warmup must be smaller than the %d measured instructions", d.Instructions)}
	}
	return nil
}

// Run measures one workload on the machine.
func (m *Machine) Run(w Workload, opts RunOptions) (*RawCounts, error) {
	if w.ILP <= 0 {
		return nil, fmt.Errorf("machine: workload %q has non-positive ILP", w.Key)
	}
	opts = opts.withDefaults()

	spec := m.adjustSpec(w)
	gen, err := trace.NewGenerator(spec, w.Key+"@"+m.cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("machine %s: workload %q: %w", m.cfg.Name, w.Key, err)
	}
	caches, err := cache.NewHierarchy(m.cfg.Caches)
	if err != nil {
		return nil, err
	}
	tlbs, err := tlb.NewHierarchy(m.cfg.TLBs)
	if err != nil {
		return nil, err
	}
	pred, err := branch.New(m.cfg.Predictor)
	if err != nil {
		return nil, err
	}

	rc := &RawCounts{}
	st := newSimStream(gen, caches, tlbs, pred, rc, 0)

	prime(caches, tlbs, spec)
	st.warmup(opts.WarmupInstructions)
	st.resetStats()
	st.measure(opts.Instructions)
	if err := st.finalize(m.cfg.IssueWidth, w.ILP, m.cfg.Penalties); err != nil {
		return nil, err
	}

	if m.cfg.HasRAPL {
		bd, err := m.cfg.Power.Estimate(power.Activity{
			Instructions: rc.Instructions,
			Cycles:       rc.Cycles,
			FPOps:        rc.FPOps,
			SIMDOps:      rc.SIMDOps,
			LLCAccesses:  rc.Cache.L2IAccesses + rc.Cache.L2DAccesses + rc.Cache.L3Accesses,
			MemAccesses:  rc.Cache.L3Misses + st.l2dToMem + st.l2iToMem,
		})
		if err != nil {
			return nil, err
		}
		rc.Power = bd
	}
	return rc, nil
}

// prime walks the workload's resident working set through the cache
// and TLB hierarchies once, coldest region first, so a short sampling
// window measures steady-state behaviour instead of fill transients.
// Real measurement (the paper runs complete benchmarks under perf)
// has no fill transient worth mentioning; a sampled simulation must
// reconstruct that state explicitly. The cold region beyond WarmBytes
// is deliberately not primed: footprints exceed every LLC, so cold
// accesses miss in steady state too.
func prime(caches *cache.Hierarchy, tlbs *tlb.Hierarchy, spec trace.Spec) {
	primeOffset(caches, tlbs, spec, 0)
}

// primeOffset primes with the data regions shifted by offset — the
// per-copy address-space displacement of multi-copy (SPECrate) runs.
func primeOffset(caches *cache.Hierarchy, tlbs *tlb.Hierarchy, spec trace.Spec, offset uint64) {
	const (
		line     = 64
		page     = 1 << tlb.PageShift
		maxPrime = 8 << 20 // never prime more than any LLC could hold
	)
	primeData := func(base, size uint64) {
		if size > maxPrime {
			size = maxPrime
		}
		for off := uint64(0); off < size; off += line {
			caches.AccessData(base + off)
		}
		for off := uint64(0); off < size; off += page {
			tlbs.TranslateData(base + off)
		}
	}
	primeCode := func(base, size uint64) {
		if size > maxPrime/2 {
			size = maxPrime / 2
		}
		for off := uint64(0); off < size; off += line {
			caches.FetchInstr(base + off)
		}
		for off := uint64(0); off < size; off += page {
			tlbs.TranslateInstr(base + off)
		}
	}
	if spec.KernelFrac > 0 {
		primeCode(trace.KernelCodeBase, trace.KernelCodeBytes)
		primeData(trace.KernelDataBase+offset, trace.KernelDataBytes)
	}
	primeCode(trace.UserCodeBase, spec.CodeBytes)
	// Data: warm first, then mid, then hot, so the hottest lines end up
	// most recently used.
	primeData(trace.DataBase+offset, spec.WarmBytes)
	primeData(trace.DataBase+offset, spec.MidBytes)
	primeData(trace.DataBase+offset, spec.HotBytes)
	// Re-fetch the hot code region last for the same reason.
	primeCode(trace.UserCodeBase, spec.HotCodeBytes)
}

// AdjustedSpec returns the trace specification Run would execute for w
// on this machine: the neutral spec with the machine's ISA and
// compiler perturbations applied. Analytic measurement engines model
// this spec, not the neutral one, so their estimates see the same
// per-(workload, machine) stream a simulation would.
func (m *Machine) AdjustedSpec(w Workload) trace.Spec { return m.adjustSpec(w) }

// adjustSpec applies ISA and compiler perturbations to the neutral
// workload spec, modelling what recompilation on another machine does
// to a real dynamic instruction stream. The perturbation is
// deterministic per (workload, machine).
func (m *Machine) adjustSpec(w Workload) trace.Spec {
	spec := w.Spec
	if m.cfg.ISA == SPARC {
		// RISC recompilation: more instructions overall, so each
		// category's share shifts slightly, and code grows.
		spec.LoadFrac *= 1.06
		spec.StoreFrac *= 1.06
		spec.BranchFrac *= 1.08
		spec.CodeBytes = spec.CodeBytes * 5 / 4
		spec.HotCodeBytes = spec.HotCodeBytes * 5 / 4
	}
	// Compiler/system jitter: ±3% multiplicative noise on the mix and
	// locality knobs, keyed by workload and machine.
	r := rng.NewKeyed(w.Key+"|"+m.cfg.Name, 0xC0)
	jitter := func(v float64) float64 {
		return v * (1 + (r.Float64()-0.5)*0.06)
	}
	spec.LoadFrac = clamp01(jitter(spec.LoadFrac))
	spec.StoreFrac = clamp01(jitter(spec.StoreFrac))
	spec.BranchEntropy = clamp01(jitter(spec.BranchEntropy))
	// Data regions: jitter each *miss-producing* fraction relative to
	// itself — including the implicit cold remainder — and let the hot
	// fraction absorb the balance. Jittering hot directly would leak
	// several percent of references into the cold region, swamping the
	// workload's intended memory behaviour.
	cold := 1 - spec.HotFrac - spec.MidFrac - spec.WarmFrac - spec.StrideFrac
	if cold < 0 {
		cold = 0
	}
	cold = clamp01(jitter(cold))
	spec.MidFrac = clamp01(jitter(spec.MidFrac))
	spec.WarmFrac = clamp01(jitter(spec.WarmFrac))
	spec.HotFrac = 1 - cold - spec.MidFrac - spec.WarmFrac - spec.StrideFrac - 1e-9
	if spec.HotFrac < 0 {
		// Degenerate: no hot traffic; shrink the others proportionally.
		f := (1 - 1e-9) / (cold + spec.MidFrac + spec.WarmFrac + spec.StrideFrac)
		spec.MidFrac *= f
		spec.WarmFrac *= f
		spec.StrideFrac *= f
		spec.HotFrac = 0
	}
	// Keep the spec valid after perturbation.
	if s := spec.LoadFrac + spec.StoreFrac + spec.BranchFrac; s > 0.99 {
		spec.LoadFrac *= 0.99 / s
		spec.StoreFrac *= 0.99 / s
		spec.BranchFrac *= 0.99 / s
	}
	return spec
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
