package machine

// The batched simulation kernel: the one counting loop every
// simulation path runs. Run (single copy) and RunMulti (SPECrate-style
// multi-copy) used to carry near-identical ~100-line per-event loops
// that had already started to drift; both now drive simStream, which
// consumes trace events in caller-owned slabs (trace.Generator's
// FillBatch arena API) and counts through exactly one implementation.
//
// The measure flag is hoisted out of the inner loop: warmupEvent runs
// the simulators without counting, measureEvent counts into RawCounts
// and the CPI-stack miss-routing tables. Results are bit-identical to
// the historical per-event loops — the golden fixture test
// (TestGoldenCounts) and the batched-vs-sequential tests pin this.

import (
	"math/bits"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpistack"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// simSlabSize is the event-slab length: large enough to amortize the
// per-batch bookkeeping, small enough that a slab of Events (40 bytes
// each) stays cache-resident.
const simSlabSize = 512

// simStream is one instruction stream's simulation state: a trace
// generator feeding private (or partially shared) cache, TLB, and
// predictor models, plus the counters one RawCounts is derived from.
// Run uses a single stream; RunMulti uses one per copy.
type simStream struct {
	gen    *trace.Generator
	caches *cache.Hierarchy
	tlbs   *tlb.Hierarchy
	pred   *branch.Predictor

	// offset displaces data addresses (the per-copy address-space
	// displacement of multi-copy runs; 0 for a single copy).
	offset uint64
	hasL3  bool
	// lineShift is derived from the machine's L1I line size: the
	// fetch-buffer model issues one cache fetch per *line* transition,
	// so the line geometry, not a constant, decides when PC movement
	// re-fetches.
	lineShift uint

	lastILine, lastIPage uint64

	rc *RawCounts
	// Split miss routing for the CPI stack.
	l1iToL2, l2iToL3, l2iToMem, l3iToMem uint64
	l1dToL2, l2dToL3, l3dToMem, l2dToMem uint64

	slab []trace.Event
}

// newSimStream assembles a stream around freshly built components.
func newSimStream(gen *trace.Generator, caches *cache.Hierarchy, tlbs *tlb.Hierarchy, pred *branch.Predictor, rc *RawCounts, offset uint64) *simStream {
	return &simStream{
		gen: gen, caches: caches, tlbs: tlbs, pred: pred,
		rc:        rc,
		offset:    offset,
		hasL3:     caches.L3 != nil,
		lineShift: uint(bits.TrailingZeros(uint(caches.L1I.Config().LineBytes))),
		lastILine: ^uint64(0), lastIPage: ^uint64(0),
		slab: make([]trace.Event, simSlabSize),
	}
}

// warmupEvent drives one event through the simulators without
// counting: cache, TLB, and predictor state advance; statistics are
// reset after warmup anyway.
func (st *simStream) warmupEvent(ev *trace.Event) {
	if iline := ev.PC >> st.lineShift; iline != st.lastILine {
		st.lastILine = iline
		st.caches.FetchInstr(ev.PC)
	}
	if ipage := ev.PC >> tlb.PageShift; ipage != st.lastIPage {
		st.lastIPage = ipage
		st.tlbs.TranslateInstr(ev.PC)
	}
	switch ev.Kind {
	case trace.Load, trace.Store:
		st.caches.AccessData(ev.Addr + st.offset)
		st.tlbs.TranslateData(ev.Addr + st.offset)
	case trace.CondBranch:
		st.pred.Predict(ev.PC, ev.Taken)
	}
}

// measureEvent drives one event through the simulators and counts it:
// instruction/class totals into RawCounts, and each miss into the
// level-routing tables the CPI stack charges stall cycles to.
func (st *simStream) measureEvent(ev *trace.Event) {
	rc := st.rc
	rc.Instructions++
	if ev.Kernel {
		rc.KernelInstrs++
	}

	// Instruction side: fetch once per line transition; the same-line
	// fast path models the fetch buffer.
	if iline := ev.PC >> st.lineShift; iline != st.lastILine {
		st.lastILine = iline
		switch st.caches.FetchInstr(ev.PC) {
		case 1:
			st.l1iToL2++
		case 2:
			st.l1iToL2++
			st.l2iToL3++
		case 3:
			st.l1iToL2++
			if st.hasL3 {
				st.l2iToL3++
				st.l3iToMem++
			} else {
				st.l2iToMem++
			}
		}
	}
	if ipage := ev.PC >> tlb.PageShift; ipage != st.lastIPage {
		st.lastIPage = ipage
		st.tlbs.TranslateInstr(ev.PC)
	}

	switch ev.Kind {
	case trace.Load, trace.Store:
		if ev.Kind == trace.Load {
			rc.Loads++
		} else {
			rc.Stores++
		}
		switch st.caches.AccessData(ev.Addr + st.offset) {
		case 1:
			st.l1dToL2++
		case 2:
			st.l1dToL2++
			st.l2dToL3++
		case 3:
			st.l1dToL2++
			if st.hasL3 {
				st.l2dToL3++
				st.l3dToMem++
			} else {
				st.l2dToMem++
			}
		}
		st.tlbs.TranslateData(ev.Addr + st.offset)
	case trace.CondBranch:
		rc.Branches++
		if ev.Taken {
			rc.TakenBranches++
		}
		st.pred.Predict(ev.PC, ev.Taken)
	case trace.FPOp:
		rc.FPOps++
	case trace.SIMDOp:
		rc.SIMDOps++
	}
}

// warmup runs n warmup instructions through the stream, slab by slab.
func (st *simStream) warmup(n int) {
	for n > 0 {
		k := min(n, len(st.slab))
		st.gen.FillBatch(st.slab[:k])
		for i := range st.slab[:k] {
			st.warmupEvent(&st.slab[i])
		}
		n -= k
	}
}

// measure runs n measured instructions through the stream, slab by
// slab. The caller resets simulator statistics first.
func (st *simStream) measure(n int) {
	for n > 0 {
		k := min(n, len(st.slab))
		st.gen.FillBatch(st.slab[:k])
		for i := range st.slab[:k] {
			st.measureEvent(&st.slab[i])
		}
		n -= k
	}
}

// runInterleaved advances every stream by n instructions in strict
// round-robin order — copy 0's instruction i, copy 1's instruction i,
// ... — preserving the shared-LLC access interleaving of multi-copy
// runs. Trace generation is still batched per stream: each generator's
// draw order is private, so filling copy slabs ahead of consumption
// changes nothing about the simulated access sequence.
func runInterleaved(streams []*simStream, n int, measured bool) {
	for n > 0 {
		k := n
		if k > simSlabSize {
			k = simSlabSize
		}
		for _, st := range streams {
			st.gen.FillBatch(st.slab[:k])
		}
		if measured {
			for i := 0; i < k; i++ {
				for _, st := range streams {
					st.measureEvent(&st.slab[i])
				}
			}
		} else {
			for i := 0; i < k; i++ {
				for _, st := range streams {
					st.warmupEvent(&st.slab[i])
				}
			}
		}
		n -= k
	}
}

// resetStats clears simulator statistics at the warmup/measure
// boundary, keeping cache, TLB, and predictor contents warm.
func (st *simStream) resetStats() {
	st.caches.ResetStats()
	st.tlbs.ResetStats()
	st.pred.ResetStats()
}

// finalize folds the stream's counters into its RawCounts: simulator
// snapshots, the CPI stack, and the cycle total.
func (st *simStream) finalize(issueWidth int, ilp float64, pen cpistack.Penalties) error {
	rc := st.rc
	rc.Cache = st.caches.Counts()
	rc.TLB = st.tlbs.Counts()
	rc.Mispredicts = st.pred.Counts().Mispredicts

	stack, err := cpistack.Compute(cpistack.Inputs{
		Instructions: rc.Instructions,
		BaseCPI:      1 / ilp,
		IdealCPI:     1 / float64(issueWidth),
		Mispredicts:  rc.Mispredicts,
		L1IMissToL2:  st.l1iToL2,
		L2IMissToL3:  st.l2iToL3,
		L2IMissToMem: st.l2iToMem,
		L3IMissToMem: st.l3iToMem,
		L1DMissToL2:  st.l1dToL2,
		L2DMissToL3:  st.l2dToL3,
		L3DMissToMem: st.l3dToMem + st.l2dToMem,
		PageWalks:    rc.TLB.PageWalks,
	}, pen)
	if err != nil {
		return err
	}
	rc.Stack = stack
	rc.CPI = stack.Total()
	rc.Cycles = uint64(rc.CPI * float64(rc.Instructions))
	return nil
}
