package engine

import (
	"context"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// The analytic model's two load-bearing monotonicity properties, over
// the full registry. The serving layer leans on them implicitly:
// operators reading analytic numbers expect "bigger cache → no more
// misses" and "bigger footprint → no fewer misses" to hold without
// exception, the way they do in the simulator.
//
// monotoneSlack absorbs the bisection tolerance in the
// characteristic-time fixed point and integer rounding of counts: a
// step the wrong way is only a violation when it exceeds both a
// relative hair and an absolute few events.
const (
	monotoneSlackRel = 0.002
	monotoneSlackAbs = 3.0 // events per run at crossval fidelity
)

func violates(prev, next float64) bool {
	return next > prev*(1+monotoneSlackRel)+monotoneSlackAbs
}

// scaleCaches returns m's config with the selected cache level's
// capacity scaled by factor (a power of two keeps the set count a
// power of two).
func scaleLevel(t *testing.T, cfg machine.Config, level string, factor int) *machine.Machine {
	t.Helper()
	switch level {
	case "L1I":
		cfg.Caches.L1I.SizeBytes *= factor
	case "L1D":
		cfg.Caches.L1D.SizeBytes *= factor
	case "L2":
		cfg.Caches.L2.SizeBytes *= factor
	case "L3":
		l3 := *cfg.Caches.L3
		l3.SizeBytes *= factor
		cfg.Caches.L3 = &l3
	default:
		t.Fatalf("unknown level %s", level)
	}
	// Keep the machine name: adjustSpec perturbs the workload keyed by
	// (workload, machine name), and the property compares the SAME
	// workload across capacities.
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatalf("scaling %s by %d: %v", level, factor, err)
	}
	return m
}

// TestAnalyticMonotoneInCacheSize: growing one cache level can only
// reduce (never increase) the analytic miss count at that level, for
// every registry workload on every fleet machine, across a ×2/×4/×8
// capacity ladder.
func TestAnalyticMonotoneInCacheSize(t *testing.T) {
	fleet, err := machine.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	missAt := func(rc *machine.RawCounts, level string) float64 {
		switch level {
		case "L1I":
			return float64(rc.Cache.L1IMisses)
		case "L1D":
			return float64(rc.Cache.L1DMisses)
		case "L2":
			return float64(rc.Cache.L2IMisses + rc.Cache.L2DMisses)
		default:
			return float64(rc.Cache.L3Misses)
		}
	}
	for _, base := range fleet {
		cfg := base.Config()
		levels := []string{"L1I", "L1D", "L2"}
		if cfg.Caches.L3 != nil {
			levels = append(levels, "L3")
		}
		for _, level := range levels {
			ladder := []*machine.Machine{base}
			for _, f := range []int{2, 4, 8} {
				ladder = append(ladder, scaleLevel(t, cfg, level, f))
			}
			for _, p := range workloads.All() {
				w := p.Workload()
				prev := -1.0
				for step, m := range ladder {
					rc, err := Analytic{}.Measure(ctx, m, w, crossvalOpts)
					if err != nil {
						t.Fatalf("%s on %s (%s ×%d): %v", w.Key, base.Name(), level, 1<<step, err)
					}
					miss := missAt(rc, level)
					if prev >= 0 && violates(prev, miss) {
						t.Errorf("%s on %s: %s misses rose %.1f → %.1f when capacity doubled (step ×%d)",
							w.Key, base.Name(), level, prev, miss, 1<<step)
					}
					prev = miss
				}
			}
		}
	}
}

// TestAnalyticMonotoneInFootprint: growing a workload's data working
// sets can only add (never remove) analytic data-side misses, across a
// ×2/×4/×8 footprint ladder. Asserted at L1D — whose arrival rates do
// not depend on the footprint, so monotonicity there is unconditional —
// and on the hierarchy-wide data-miss total. Individual downstream
// levels are deliberately excluded: their arrivals pass through the
// upstream filter, which sharpens as it thrashes, so a single deeper
// level's count can legitimately dip a few percent while the total
// still grows (the simulator shows the same effect).
func TestAnalyticMonotoneInFootprint(t *testing.T) {
	fleet, err := machine.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, p := range workloads.All() {
		base := p.Workload()
		for _, m := range fleet {
			prevL1, prevTotal := -1.0, -1.0
			for _, f := range []uint64{1, 2, 4, 8} {
				w := base
				w.Spec.HotBytes = base.Spec.HotBytes * f
				w.Spec.MidBytes = base.Spec.MidBytes * f
				w.Spec.WarmBytes = base.Spec.WarmBytes * f
				w.Spec.FootprintBytes = base.Spec.FootprintBytes * f
				rc, err := Analytic{}.Measure(ctx, m, w, crossvalOpts)
				if err != nil {
					t.Fatalf("%s ×%d on %s: %v", base.Key, f, m.Name(), err)
				}
				l1 := float64(rc.Cache.L1DMisses)
				total := float64(rc.Cache.L1DMisses + rc.Cache.L2DMisses + rc.Cache.L3Misses)
				if prevL1 >= 0 && violates(l1, prevL1) {
					t.Errorf("%s on %s: L1D misses fell %.1f → %.1f when footprint grew ×%d",
						base.Key, m.Name(), prevL1, l1, f)
				}
				if prevTotal >= 0 && violates(total, prevTotal) {
					t.Errorf("%s on %s: total data misses fell %.1f → %.1f when footprint grew ×%d",
						base.Key, m.Name(), prevTotal, total, f)
				}
				prevL1, prevTotal = l1, total
			}
		}
	}
}
