package engine

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/counters"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// crossvalOpts is the fidelity the tolerance bands were calibrated at.
// Higher fidelity only shrinks simulator sampling noise, so the bands
// stay valid above it.
var crossvalOpts = machine.RunOptions{Instructions: 50_000, WarmupInstructions: 10_000}

// metricsFor derives the comparable metric vector (schema metrics plus
// the CPI pseudo-metric) from one engine's counts.
func metricsFor(t *testing.T, m *machine.Machine, rc *machine.RawCounts) map[counters.Metric]float64 {
	t.Helper()
	s, err := counters.FromRaw(m.Name(), m.Config().HasRAPL, rc)
	if err != nil {
		t.Fatalf("FromRaw(%s): %v", m.Name(), err)
	}
	out := make(map[counters.Metric]float64, len(Tolerances))
	for _, metric := range s.Metrics() {
		out[metric] = s.MustValue(metric)
	}
	out[MetricCPI] = rc.CPI
	return out
}

// TestCrossValidation measures every registry workload on every fleet
// machine with both engines and asserts the documented Tolerances
// hold for every metric of every pair. This is the contract that lets
// the serving layer hand out analytic answers: they are always within
// a known band of what the simulator would say.
func TestCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry × fleet cross-validation is not -short")
	}
	fleet, err := machine.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	exact, analytic := Exact{}, Analytic{}
	ctx := context.Background()

	type worst struct {
		ratio   float64 // |a−x| / (Abs + Rel·max) — >1 is out of band
		detail  string
		a, x    float64
		pctBand float64
	}
	worstBy := make(map[counters.Metric]worst)

	for _, p := range workloads.All() {
		w := p.Workload()
		for _, m := range fleet {
			xr, err := exact.Measure(ctx, m, w, crossvalOpts)
			if err != nil {
				t.Fatalf("exact %s on %s: %v", w.Key, m.Name(), err)
			}
			ar, err := analytic.Measure(ctx, m, w, crossvalOpts)
			if err != nil {
				t.Fatalf("analytic %s on %s: %v", w.Key, m.Name(), err)
			}
			xm := metricsFor(t, m, xr)
			am := metricsFor(t, m, ar)
			for metric, x := range xm {
				band, ok := Tolerances[metric]
				if !ok {
					t.Fatalf("metric %s has no tolerance band", metric)
				}
				a := am[metric]
				diff := a - x
				if diff < 0 {
					diff = -diff
				}
				max := x
				if a > max {
					max = a
				}
				allowed := band.Abs + band.Rel*max
				ratio := 0.0
				if allowed > 0 {
					ratio = diff / allowed
				}
				if ratio > worstBy[metric].ratio {
					worstBy[metric] = worst{
						ratio:  ratio,
						detail: fmt.Sprintf("%s on %s", w.Key, m.Name()),
						a:      a, x: x,
					}
				}
				if !band.Holds(a, x) {
					t.Errorf("%s on %s: metric %s out of band: analytic %.4g vs exact %.4g (|Δ|=%.4g > %.4g)",
						w.Key, m.Name(), metric, a, x, diff, allowed)
				}
			}
		}
	}

	// The calibration record: how much of each band the worst pair
	// used. Read with -v when retuning the estimator or the bands.
	metricsSorted := make([]counters.Metric, 0, len(worstBy))
	for metric := range worstBy {
		metricsSorted = append(metricsSorted, metric)
	}
	sort.Slice(metricsSorted, func(i, j int) bool { return metricsSorted[i] < metricsSorted[j] })
	for _, metric := range metricsSorted {
		wv := worstBy[metric]
		t.Logf("band usage %-16s %5.1f%%  (worst: %s, analytic %.4g vs exact %.4g)",
			metric, wv.ratio*100, wv.detail, wv.a, wv.x)
	}
}

// TestToleranceBandsPinned pins the committed band values: an edit to
// Tolerances (loosening the analytic engine's contract) must show up
// here as a deliberate change, not ride in silently with an estimator
// tweak.
func TestToleranceBandsPinned(t *testing.T) {
	pinned := map[counters.Metric]Band{
		counters.L1IMPKI: {Abs: 1.5, Rel: 0.45},
		counters.L1DMPKI: {Abs: 4.0, Rel: 0.30},
		counters.L2IMPKI: {Abs: 2.0, Rel: 0.80},
		counters.L2DMPKI: {Abs: 2.5, Rel: 0.28},
		counters.L3MPKI:  {Abs: 3.0, Rel: 0.45},

		counters.ITLBMPMI:     {Abs: 150, Rel: 0.45},
		counters.DTLBMPMI:     {Abs: 2500, Rel: 0.70},
		counters.L2TLBMPMI:    {Abs: 1000, Rel: 0.35},
		counters.PageWalksPMI: {Abs: 1000, Rel: 0.35},

		counters.BranchMPKI: {Abs: 3.5, Rel: 0.60},
		counters.TakenPKI:   {Abs: 9, Rel: 0.08},

		counters.PctKernel: {Abs: 0.6, Rel: 0.09},
		counters.PctUser:   {Abs: 0.6, Rel: 0.03},
		counters.PctInt:    {Abs: 0.4, Rel: 0.02},
		counters.PctFP:     {Abs: 0.3, Rel: 0.02},
		counters.PctLoad:   {Abs: 0.4, Rel: 0.025},
		counters.PctStore:  {Abs: 0.35, Rel: 0.02},
		counters.PctBranch: {Abs: 0.1, Rel: 0.01},
		counters.PctSIMD:   {Abs: 0.35, Rel: 0.03},

		counters.CorePower: {Abs: 2.0, Rel: 0.15},
		counters.LLCPower:  {Abs: 0.2, Rel: 0.08},
		counters.MemPower:  {Abs: 0.3, Rel: 0.07},

		MetricCPI: {Abs: 0.3, Rel: 0.45},
	}
	if len(Tolerances) != len(pinned) {
		t.Fatalf("Tolerances has %d bands, pinned copy has %d", len(Tolerances), len(pinned))
	}
	for metric, want := range pinned {
		if got, ok := Tolerances[metric]; !ok || got != want {
			t.Errorf("Tolerances[%s] = %+v, pinned %+v", metric, Tolerances[metric], want)
		}
	}
}
