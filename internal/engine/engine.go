// Package engine defines the pluggable measurement engines of the
// reproduction. An Engine answers one (machine, workload, options)
// measurement — the store-key grain — and two implementations exist:
//
//   - Exact drives the full trace-driven simulation substrate
//     (internal/trace through internal/machine), bit-identical to the
//     historical core.Simulate path.
//   - Analytic evaluates a closed-form model of the same substrate:
//     miss rates, branch mispredicts, CPI-stack components, and power
//     are derived directly from the workload specification and the
//     machine's cache/TLB/predictor geometry, with no trace generation
//     and no per-event work. It is orders of magnitude faster and
//     agrees with Exact within the documented Tolerances.
//
// The serving layer composes the two: analytic answers interactively,
// a background upgrade re-measures hot keys exactly and publishes the
// results, so repeated queries converge to exact. See docs/ENGINES.md.
package engine

import (
	"context"
	"fmt"

	"repro/internal/machine"
	"repro/internal/telemetry"
)

// Tier names a measurement engine tier. TierAuto is a request-level
// policy (serve analytic now, upgrade to exact in the background), not
// an Engine — New rejects it.
type Tier string

// The engine tiers.
const (
	TierExact    Tier = "exact"
	TierAnalytic Tier = "analytic"
	TierAuto     Tier = "auto"
)

// ParseTier validates a user-supplied tier name. Unknown names are
// rejected with the allowed set in the message — never silently mapped
// to a default.
func ParseTier(s string) (Tier, error) {
	switch Tier(s) {
	case TierExact, TierAnalytic, TierAuto:
		return Tier(s), nil
	}
	return "", fmt.Errorf("engine: unknown tier %q (valid: exact, analytic, auto)", s)
}

// Engine measures one workload on one machine at one fidelity.
// Implementations must be deterministic: the same (machine, workload,
// canonical options) triple always yields the same counts.
type Engine interface {
	// Tier identifies the engine's tier.
	Tier() Tier
	// Measure produces the raw counts for one store-key-grain run.
	Measure(ctx context.Context, m *machine.Machine, w machine.Workload, opts machine.RunOptions) (*machine.RawCounts, error)
}

// New returns the Engine for a concrete tier. TierAuto is a serving
// policy over the two concrete engines and is rejected here.
func New(t Tier) (Engine, error) {
	switch t {
	case TierExact:
		return Exact{}, nil
	case TierAnalytic:
		return Analytic{}, nil
	case TierAuto:
		return nil, fmt.Errorf("engine: tier %q is a serving policy, not a concrete engine (valid: exact, analytic)", t)
	}
	return nil, fmt.Errorf("engine: unknown tier %q (valid: exact, analytic)", t)
}

// Exact is the trace-driven simulation engine. Its results are
// bit-identical to machine.Run (and to the pre-engine measurement
// path); it emits the same "simulate" leaf span the tracing surface
// has always keyed on.
type Exact struct{}

// Tier returns TierExact.
func (Exact) Tier() Tier { return TierExact }

// Measure simulates w on m.
func (Exact) Measure(ctx context.Context, m *machine.Machine, w machine.Workload, opts machine.RunOptions) (*machine.RawCounts, error) {
	_, span := telemetry.StartSpan(ctx, "simulate", "machine", m.Name(), "workload", w.Key)
	rc, err := m.Run(w, opts)
	span.End()
	return rc, err
}
