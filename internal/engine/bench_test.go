package engine

import (
	"context"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// registrySweep measures every registry workload on every fleet
// machine at default fidelity (400k instructions) — one op is the
// full sweep. The exact/analytic ns-per-op ratio is the analytic
// engine's headline number; `make bench-gate` pins it at ≥50×.
func benchmarkRegistrySweep(b *testing.B, eng Engine) {
	fleet, err := machine.Fleet()
	if err != nil {
		b.Fatal(err)
	}
	profiles := workloads.All()
	ctx := context.Background()
	opts := machine.RunOptions{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range profiles {
			w := p.Workload()
			for _, m := range fleet {
				if _, err := eng.Measure(ctx, m, w, opts); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkExactRegistry(b *testing.B)    { benchmarkRegistrySweep(b, Exact{}) }
func BenchmarkAnalyticRegistry(b *testing.B) { benchmarkRegistrySweep(b, Analytic{}) }
