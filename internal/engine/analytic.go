// The analytic engine: a closed-form model of the trace-driven
// substrate. Every quantity the simulator measures by replaying
// hundreds of thousands of events — instruction mix, working-set miss
// rates per cache and TLB level, branch mispredicts, the CPI stack,
// power — has a steady-state expectation that follows directly from
// the workload specification and the machine geometry. Evaluating
// those expectations costs a few microseconds instead of a simulation,
// which is what makes interactive serving and wide scenario matrices
// possible (the estimator tier of memory-centric characterization; cf.
// Singh & Awasthi, arXiv:1910.00651).
//
// The model mirrors internal/trace's generator construction piece by
// piece (block geometry, branch seeding, region mixtures, kernel
// bursts); see docs/ENGINES.md for the derivation and the tolerance
// bands tying it to the exact engine.
package engine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/cpistack"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// instrBytes mirrors the trace generator's fixed instruction encoding.
const instrBytes = 4

// Analytic is the closed-form estimation engine. It is deterministic,
// allocation-light, and O(#streams log #streams) per measurement —
// no trace generation, no per-event work.
type Analytic struct{}

// Tier returns TierAnalytic.
func (Analytic) Tier() Tier { return TierAnalytic }

// Measure estimates w on m, emitting an "estimate" leaf span (the
// analytic analogue of the exact engine's "simulate").
func (Analytic) Measure(ctx context.Context, m *machine.Machine, w machine.Workload, opts machine.RunOptions) (*machine.RawCounts, error) {
	_, span := telemetry.StartSpan(ctx, "estimate", "machine", m.Name(), "workload", w.Key)
	rc, err := estimate(m, w, opts)
	span.End()
	return rc, err
}

// primeInfo captures how the simulator's prime() pass left one stream
// at measurement start. prime() scans the resident regions in a fixed
// order (kernel code, kernel data, user code, warm→mid→hot data, hot
// code), so a stream's primed lines sit in LRU order behind every
// byte the sequence touched after them: on a level smaller than that
// tail, the priming is already evicted when measurement begins.
type primeInfo struct {
	frac      float64 // fraction of the stream the prime pass touched
	afterSide float64 // same-side bytes primed after it (split L1 aging)
	afterAll  float64 // total bytes primed after it (unified-level aging)
}

// stream is one working set competing for cache (or TLB) capacity:
// uniform references at `rate` events per instruction over `size`
// bytes. Disjoint streams model the generator's nested regions as
// annuli, so capacity allocation is a partition.
type stream struct {
	size  float64 // working-set bytes
	rate  float64 // events per instruction entering the hierarchy
	instr bool    // instruction side (for split accounting)
	prime primeInfo
}

// levelMisses models one LRU level of the given capacity serving the
// streams, where arrival[i] is stream i's inbound event rate at this
// level (events per instruction; deeper levels see only the upstream
// misses). It returns each stream's expected miss rate over an
// n-instruction window preceded by a warmup-instruction warmup.
//
// Repeat references follow the characteristic-time approximation: a
// line survives in an LRU cache iff it is re-referenced within the
// cache's characteristic time T, so a stream touching its
// size/lineBytes lines uniformly at per-line rate
// μ = arrival·lineBytes/size keeps the fraction 1−exp(−μT) of them
// resident. T is the fixed point at which the resident fractions
// exactly fill the capacity — found by bisection, deterministically.
// Unlike a pure capacity partition, this keeps rate in the model: a
// small working set referenced rarely (kernel code between bursts)
// loses its lines to high-rate streaming traffic, exactly as the
// simulator's true-LRU caches behave.
//
// The first window touch of each line additionally depends on the
// state measurement started in: the line hits only if the warmup
// re-touched it within T, or the prime() residue for its stream
// outlived both the rest of the prime sequence and the warmup. At
// short fidelities this cold-start term dominates sparsely revisited
// streams (kernel regions, giant footprints) — exactly the misses a
// pure steady-state model misses.
func levelMisses(capacity, lineBytes float64, streams []*stream, arrival []float64, n, warmup float64, split bool) []float64 {
	live := false
	total := 0.0
	for i, st := range streams {
		if st.size > 0 && arrival[i] > 0 {
			live = true
			total += st.size
		}
	}
	t := math.Inf(1)
	if live && total > capacity {
		occupancy := func(t float64) float64 {
			sum := 0.0
			for i, st := range streams {
				if st.size <= 0 || arrival[i] <= 0 {
					continue
				}
				mu := arrival[i] * lineBytes / st.size
				sum += st.size * (1 - math.Exp(-mu*t))
			}
			return sum
		}
		lo, hi := 0.0, 1.0
		for occupancy(hi) < capacity && hi < 1e15 {
			hi *= 2
		}
		for iter := 0; iter < 80; iter++ {
			mid := (lo + hi) / 2
			if occupancy(mid) < capacity {
				lo = mid
			} else {
				hi = mid
			}
		}
		t = (lo + hi) / 2
	}

	miss := make([]float64, len(streams))
	for i, st := range streams {
		if st.size <= 0 || arrival[i] <= 0 {
			continue
		}
		mu := arrival[i] * lineBytes / st.size
		h := 1.0
		if !math.IsInf(t, 1) {
			h = 1 - math.Exp(-mu*t)
		}
		horizon := warmup
		if t < horizon {
			horizon = t
		}
		hStart := 1 - math.Exp(-mu*horizon)
		if warmup <= t {
			after := st.prime.afterAll
			if split {
				after = st.prime.afterSide
			}
			res := capacity - after
			if res < 0 {
				res = 0
			}
			if pf := st.prime.frac * st.size; res > pf {
				res = pf
			}
			hStart += math.Exp(-mu*horizon) * res / st.size
		}
		lines := st.size / lineBytes
		refs := arrival[i] * n
		distinct := lines * (1 - math.Exp(-refs/lines))
		miss[i] = ((refs-distinct)*(1-h) + distinct*(1-hStart)) / n
	}
	return miss
}

// sumSide totals the rates of one side's streams (instruction or data).
func sumSide(streams []*stream, rates []float64, wantInstr bool) float64 {
	total := 0.0
	for i, st := range streams {
		if st.instr == wantInstr {
			total += rates[i]
		}
	}
	return total
}

// counterMiss is the stationary mispredict rate of a two-bit
// saturating counter observing Bernoulli(p) outcomes: the birth-death
// chain over states 0..3 with up-probability p has stationary weights
// (1, r, r², r³), r = p/(1−p); states {0,1} predict not-taken.
func counterMiss(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	r := p / (1 - p)
	s := 1 + r + r*r + r*r*r
	return (p*(1+r) + (1-p)*(r*r+r*r*r)) / s
}

// hardBranchMiss is counterMiss averaged over the generator's hard-
// branch bias distribution (uniform on [0.35, 0.65]), evaluated by
// midpoint quadrature once at init.
var hardBranchMiss = func() float64 {
	const steps = 64
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += counterMiss(0.35 + (float64(i)+0.5)*0.3/steps)
	}
	return sum / steps
}()

// corrMissAlternating is the mispredict rate of a two-bit counter on
// the generator's phase-correlated branches: their outcome flips every
// hot-loop pass, so the counter oscillates between states 1 and 2 and
// mispredicts essentially every execution (a trained history-based
// predictor instead reads the phase from recent outcomes and tracks
// it, missing mainly on noise and flip boundaries).
const (
	corrMissAlternating = 0.98
	corrMissHistory     = 0.045
)

// predictTakenProb is the stationary probability that a two-bit
// counter fed Bernoulli(t) outcomes currently predicts taken.
func predictTakenProb(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	r := t / (1 - t)
	s := 1 + r + r*r + r*r*r
	return (r*r + r*r*r) / s
}

// estimate evaluates the closed-form model for one measurement.
func estimate(m *machine.Machine, w machine.Workload, opts machine.RunOptions) (*machine.RawCounts, error) {
	if w.ILP <= 0 {
		return nil, fmt.Errorf("machine: workload %q has non-positive ILP", w.Key)
	}
	spec := m.AdjustedSpec(w)
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("machine %s: workload %q: %w", m.Name(), w.Key, err)
	}
	cfg := m.Config()
	opts = opts.Canonical()
	n := float64(opts.Instructions)
	wu := float64(opts.WarmupInstructions)

	// Code geometry, exactly as the generator derives it.
	blockLen := int(1/spec.BranchFrac + 0.5)
	if blockLen < 2 {
		blockLen = 2
	}
	blockBytes := uint64(blockLen * instrBytes)
	nBlocks := int(spec.CodeBytes / blockBytes)
	if nBlocks < 1 {
		nBlocks = 1
	}
	hotBlocks := int(spec.HotCodeBytes / blockBytes)
	if hotBlocks < 1 {
		hotBlocks = 1
	}
	if hotBlocks > nBlocks {
		hotBlocks = nBlocks
	}
	warmCode := spec.WarmCodeBytes
	if warmCode == 0 {
		warmCode = 96 << 10
	}
	warmBlocks := int(warmCode / blockBytes)
	if warmBlocks < hotBlocks {
		warmBlocks = hotBlocks
	}
	if warmBlocks > nBlocks {
		warmBlocks = nBlocks
	}
	nKBlocks := int(trace.KernelCodeBytes / blockBytes)
	if nKBlocks < 1 {
		nKBlocks = 1
	}

	// Instruction mix: one branch per block; the other slots split by
	// the generator's renormalized load/store/ALU probabilities.
	bl := float64(blockLen)
	branchRate := 1 / bl
	slots := (bl - 1) / bl
	nonBranch := 1 - spec.BranchFrac
	pl := spec.LoadFrac / nonBranch
	ps := spec.StoreFrac / nonBranch
	loadRate := slots * pl
	storeRate := slots * ps
	var simdRate, fpRate float64
	if alu := 1 - pl - ps; alu > 0 {
		simd := math.Min(spec.SIMDFrac/nonBranch, alu)
		fp := math.Min((spec.SIMDFrac+spec.FPFrac)/nonBranch, alu) - simd
		simdRate = slots * simd
		fpRate = slots * fp
	}

	// Kernel residency: episodes of 8 blocks entered with the
	// generator's rate, giving a stationary kernel fraction that equals
	// KernelFrac until the entry probability saturates.
	kf := 0.0
	if spec.KernelFrac > 0 {
		const burst = 8.0
		enter := spec.KernelFrac / (burst * (1 - spec.KernelFrac))
		if enter > 1 || math.IsInf(enter, 1) {
			enter = 1
		}
		kf = burst * enter / (burst*enter + 1)
	}

	// Branch behaviour. Replicate the generator's solve for the easy
	// branches' taken split (including its 0.99 cold-taken constant),
	// then take expectations over the seeded mixture — correlated
	// branches occupy an int(P·hot) block run, the rest are hard with
	// probability BranchEntropy, and cold blocks are 0.995-taken easy.
	e, pat, h := spec.BranchEntropy, spec.PatternFrac, spec.HotCodeFrac
	q := 0.5
	if rest := (1 - e) * (1 - pat); rest > 0 && h > 0 {
		hotTaken := (spec.TakenFrac - (1-h)*0.99) / h
		q = (hotTaken - e*0.5 - (1-e)*pat*0.5) / rest
		q = (q - 0.005) / 0.99
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
	}
	qTaken := 0.005 + 0.99*q

	hb, wb, nb := float64(hotBlocks), float64(warmBlocks), float64(nBlocks)
	// Residency of user branch executions (and fetched blocks) over the
	// mixture-seeded hot region vs the cold remainder: the hot loop
	// runs h of the blocks, and excursions (95% warm / 5% anywhere)
	// land back in it proportionally.
	wMix := h + (1-h)*(0.95*hb/wb+0.05*hb/nb)
	wWarm := (1 - h) * (0.95*(wb-hb)/wb + 0.05*(wb-hb)/nb)
	wCold := (1 - h) * 0.05 * (nb - wb) / nb

	corrFrac := func(count int) float64 {
		return float64(int(pat*float64(count))) / float64(count)
	}
	pcU, pcK := corrFrac(hotBlocks), corrFrac(nKBlocks)

	easyMiss := counterMiss(0.995)
	mixTaken := func(pc float64) float64 {
		return pc*0.5 + (1-pc)*(e*0.5+(1-e)*qTaken)
	}
	takenProb := (1-kf)*(wMix*mixTaken(pcU)+(1-wMix)*0.995) + kf*mixTaken(pcK)

	// Mispredicts, per predictor organization. The populations behave
	// very differently per kind, and two finite effects matter beyond
	// the per-branch stationary rates: kernel branches are visited so
	// sparsely (uniform random picks over thousands of blocks) that most
	// executions land on never-trained entries, and a gshare's index is
	// perturbed whenever recent history contains an off-modal outcome —
	// Bernoulli noise, hard branches, or a kernel episode's random
	// block identities.
	tblEntries := float64(uint64(1) << uint(cfg.Predictor.TableBits))
	histLen := float64(cfg.Predictor.HistoryBits)
	enter := 0.0
	if spec.KernelFrac > 0 {
		enter = spec.KernelFrac / (8 * (1 - spec.KernelFrac))
		if enter > 1 || math.IsInf(enter, 1) {
			enter = 1
		}
	}
	horizon := n + wu
	kernExec := branchRate * kf

	// A lookup landing on a quasi-random table entry: untouched entries
	// predict taken (init weakly-taken), touched ones lean with the
	// aggregate outcome stream.
	util := branchRate * horizon / tblEntries
	if util > 1 {
		util = 1
	}
	pTrand := 1 - util*(1-predictTakenProb(takenProb))
	perturbEasy := q*(0.995*(1-pTrand)+0.005*pTrand) +
		(1-q)*(0.005*(1-pTrand)+0.995*pTrand)

	// virginFrac: share of executions hitting a never-trained entry when
	// execRate events per instruction spread uniformly over `entries`
	// table entries across the warmup + measured window.
	virginFrac := func(entries, execRate float64) float64 {
		if execRate <= 0 || entries <= 0 {
			return 0
		}
		mu := execRate / entries
		v := entries * math.Exp(-mu*wu) * (1 - math.Exp(-mu*n)) / (execRate * n)
		if v > 1 {
			v = 1
		}
		return v
	}
	tK := mixTaken(pcK)
	initMissK := 1 - tK
	kEntries := float64(nKBlocks)
	if kEntries > tblEntries {
		kEntries = tblEntries
	}
	phi := virginFrac(kEntries, kernExec)
	// PC-indexed entries that were trained are often clobbered by
	// colliding traffic before their next sparse revisit.
	churned := phi + (1-phi)*0.5

	// Excursion branches (warm/cold blocks) are each executed a handful
	// of times at most: on a PC-indexed table most executions find the
	// weakly-taken init state, which mispredicts the not-taken share.
	tW := e*0.5 + (1-e)*qTaken
	phiW := 0.0
	if wb > hb {
		phiW = virginFrac(wb-hb, branchRate*(1-kf)*(wWarm+wCold))
	}
	missW := phiW*(1-tW) + (1-phiW)*(e*hardBranchMiss+(1-e)*easyMiss)

	dedicated := func(corrMiss float64) float64 {
		return pcU*corrMiss + (1-pcU)*(e*hardBranchMiss+(1-e)*easyMiss)
	}
	trainedK := pcK*0.5 + (1-pcK)*(e*hardBranchMiss+(1-e)*easyMiss)
	// Fresh-pattern rate entering the global history: Bernoulli noise
	// and excursion blocks whose outcome disagrees with the replaced
	// history bit. Hard branches also flip history bits, but their flip
	// patterns are drawn from a small fixed set that recurs and trains —
	// they cost table capacity (see `pairs`), not fresh-entry misses.
	nu := 0.005 + (1-h)*2*qTaken*(1-qTaken)
	rhoNu := 1 - math.Pow(1-nu, histLen)
	scramble := 1 - math.Pow(1-enter, histLen)

	var userMiss, kernMiss float64
	switch cfg.Predictor.Kind {
	case branch.Bimodal:
		// PC-indexing keeps the compact hot loop collision-free: misses
		// are the stationary per-branch rates, with correlated branches
		// alternating against their counters every pass.
		userMiss = wMix*dedicated(corrMissAlternating) + (1-wMix)*missW
		kernMiss = churned*initMissK + (1-churned)*trainedK
	case branch.GShare:
		// History perturbation sends a lookup to a quasi-random entry;
		// clean lookups can still collide persistently with an
		// opposite-bias branch, in which case the interleaved updates
		// alternate the shared counter and both branches miss nearly
		// always (degrading toward the churned-table rate once kernel
		// traffic keeps rewriting the table).
		rho := 1 - (1-rhoNu)*(1-scramble)
		pairs := hb * math.Pow(2, math.Min(e*histLen, 6)) * (1 + pcU*histLen)
		alpha := 1 - math.Exp(-pairs/tblEntries)
		conflict := alpha * 2 * q * (1 - q)
		collMiss := (1-scramble)*1.0 + scramble*perturbEasy
		easyG := rho*perturbEasy + (1-rho)*(conflict*collMiss+(1-conflict)*easyMiss)
		// Hard branches land near hardBranchMiss: their handful of
		// history variants all train toward the same near-0.5 bias.
		hot := pcU*corrMissHistory + (1-pcU)*(e*0.35+(1-e)*easyG)
		userMiss = wMix*hot + (1-wMix)*perturbEasy
		kernTrained := pcK*0.5 + (1-pcK)*(e*0.35+(1-e)*perturbEasy)
		kernMiss = phi*initMissK + (1-phi)*kernTrained
	case branch.Tournament:
		// The chooser learns per-PC which side to trust, rescuing both
		// persistent gshare collisions and statically scrambled or
		// noisy histories (it parks such branches on the bimodal side,
		// which is why the leak saturates as the noise rate grows);
		// only transient history noise on otherwise gshare-served
		// branches leaks through.
		leak := 0.75 * (1 - q) * rhoNu * math.Exp(-5*rhoNu) * (1 - scramble)
		userMiss = wMix*(dedicated(corrMissHistory)+(1-pcU)*(1-e)*leak) +
			(1-wMix)*missW
		kernMiss = churned*initMissK + (1-churned)*trainedK
	}
	missProb := (1-kf)*userMiss + kf*kernMiss

	// Data streams: the generator's nested hot/mid/warm/footprint
	// regions as disjoint annuli, plus the sequential stride scan and
	// the fixed kernel regions. Rates are references per instruction.
	dataRate := loadRate + storeRate
	sf, hf, mf, wf := spec.StrideFrac, spec.HotFrac, spec.MidFrac, spec.WarmFrac
	cf := 1 - sf - hf - mf - wf
	if cf < 0 {
		cf = 0
	}
	hotB := float64(spec.HotBytes)
	midB := float64(spec.MidBytes)
	warmB := float64(spec.WarmBytes)
	fpB := float64(spec.FootprintBytes)
	r1 := hf + mf*hotB/midB + wf*hotB/warmB + cf*hotB/fpB
	r2 := mf*(midB-hotB)/midB + wf*(midB-hotB)/warmB + cf*(midB-hotB)/fpB
	r3 := wf*(warmB-midB)/warmB + cf*(warmB-midB)/fpB
	r4 := cf * (fpB - warmB) / fpB

	uData := dataRate * (1 - kf)
	kData := dataRate * kf
	khB := float64(trace.KernelHotDataBytes)
	kdB := float64(trace.KernelDataBytes)

	// The stride component advances 8 bytes per reference: 7 of every
	// 8 references re-touch the current 64-byte line (guaranteed L1D
	// hits), and the 8th behaves as a sequential scan over the
	// footprint. TLB-side the always-hit fraction is 511/512.
	dataStreams := []*stream{
		{size: hotB, rate: uData * r1},
		{size: midB - hotB, rate: uData * r2},
		{size: warmB - midB, rate: uData * r3},
		{size: fpB - warmB, rate: uData * r4},
		{size: fpB, rate: uData * sf / 8}, // stride line-scan
		{size: khB, rate: kData * (0.8 + 0.2*khB/kdB)},
		{size: kdB - khB, rate: kData * 0.2 * (kdB - khB) / kdB},
	}

	// Code streams. Fetch events fire on 64-byte line transitions:
	// sequentially every 16 instructions, plus one per control-flow
	// discontinuity — every block boundary except hot-loop blocks
	// following hot-loop blocks, which are contiguous (probability h²).
	// Kernel block picks are uniformly random, so every kernel block
	// boundary is a discontinuity.
	hotCodeB := float64(hotBlocks) * float64(blockBytes)
	warmAnnB := float64(warmBlocks-hotBlocks) * float64(blockBytes)
	coldAnnB := float64(nBlocks-warmBlocks) * float64(blockBytes)
	kCodeB := float64(nKBlocks) * float64(blockBytes)
	// Sequential fetches cross a line every 16 instructions; control
	// flow additionally lands on a fresh line on every off-path jump
	// (probability 1−h per block transition — the hot loop's cyclic
	// advance is PC-contiguous), split over the jump target mixture:
	// 95% uniform over the warm prefix (which includes the hot blocks),
	// 5% uniform over all of the code.
	seqFetch := (1.0 / 16) * (1 - kf)
	jumpRate := (1 - h) / bl * (1 - kf)
	tgtHot := 0.95*hb/wb + 0.05*hb/nb
	tgtWarm := 0.95*(wb-hb)/wb + 0.05*(wb-hb)/nb
	tgtCold := 0.05 * (nb - wb) / nb
	kFetch := (1.0/16 + 1/bl) * kf
	codeStreams := []*stream{
		{size: hotCodeB, rate: seqFetch*wMix + jumpRate*tgtHot, instr: true},
		{size: warmAnnB, rate: seqFetch*wWarm + jumpRate*tgtWarm, instr: true},
		{size: coldAnnB, rate: seqFetch*wCold + jumpRate*tgtCold, instr: true},
		{size: kCodeB, rate: kFetch, instr: true},
	}

	// Reconstruct what the simulator's prime() pass left behind. The
	// sequence (kernel code, kernel data, user code up to 4MB, then warm
	// →mid→hot data capped at 8MB, hot code last) means each stream's
	// primed lines are aged by exactly the bytes scanned after them; the
	// cold annuli and anything past the caps start cold by design.
	const maxPrimeD, maxPrimeC = float64(8 << 20), float64(4 << 20)
	kcP, kdP := 0.0, 0.0
	if spec.KernelFrac > 0 {
		kcP = math.Min(kCodeB, maxPrimeC)
		kdP = math.Min(kdB, maxPrimeD)
	}
	ucP := math.Min(float64(nBlocks)*float64(blockBytes), maxPrimeC)
	warmP := math.Min(warmB, maxPrimeD)
	midP := math.Min(midB, maxPrimeD)
	hotP := math.Min(hotB, maxPrimeD)
	hcP := math.Min(hotCodeB, maxPrimeC)
	// annFrac: how much of the annulus [lo, hi) a scan to `limit` covers.
	annFrac := func(limit, lo, hi float64) float64 {
		if hi <= lo {
			return 0
		}
		f := (limit - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return f
	}
	dataStreams[0].prime = primeInfo{frac: annFrac(hotP, 0, hotB), afterSide: 0, afterAll: hcP}
	dataStreams[1].prime = primeInfo{frac: annFrac(midP, hotB, midB), afterSide: hotP, afterAll: hotP + hcP}
	dataStreams[2].prime = primeInfo{frac: annFrac(warmP, midB, warmB), afterSide: midP + hotP, afterAll: midP + hotP + hcP}
	// dataStreams[3], the cold annulus, is deliberately never primed.
	dataStreams[4].prime = primeInfo{frac: warmP / fpB, afterSide: midP + hotP, afterAll: midP + hotP + hcP}
	dataStreams[5].prime = primeInfo{frac: 1,
		afterSide: math.Max(0, kdP-khB) + warmP + midP + hotP,
		afterAll:  math.Max(0, kdP-khB) + ucP + warmP + midP + hotP + hcP}
	dataStreams[6].prime = primeInfo{frac: 1,
		afterSide: warmP + midP + hotP,
		afterAll:  ucP + warmP + midP + hotP + hcP}
	codeStreams[0].prime = primeInfo{frac: annFrac(hcP, 0, hotCodeB)}
	codeStreams[1].prime = primeInfo{frac: annFrac(ucP, hotCodeB, hotCodeB+warmAnnB),
		afterSide: math.Max(0, ucP-hotCodeB-warmAnnB) + hcP,
		afterAll:  math.Max(0, ucP-hotCodeB-warmAnnB) + hcP + warmP + midP + hotP}
	codeStreams[2].prime = primeInfo{frac: annFrac(ucP, hotCodeB+warmAnnB, hotCodeB+warmAnnB+coldAnnB),
		afterSide: hcP,
		afterAll:  hcP + warmP + midP + hotP}
	codeStreams[3].prime = primeInfo{frac: kcP / kCodeB,
		afterSide: ucP + hcP,
		afterAll:  kdP + ucP + hcP + warmP + midP + hotP}

	// Cache cascade: split L1, unified L2, optional unified L3. Each
	// deeper level sees only the upstream misses as its arrival rates.
	const lineBytes = 64
	baseRates := func(ss []*stream) []float64 {
		out := make([]float64, len(ss))
		for i, st := range ss {
			out[i] = st.rate
		}
		return out
	}
	arrCodeL1 := baseRates(codeStreams)
	arrDataL1 := baseRates(dataStreams)
	all := append(append([]*stream{}, codeStreams...), dataStreams...)
	arrL2 := append(
		levelMisses(float64(cfg.Caches.L1I.SizeBytes), lineBytes, codeStreams, arrCodeL1, n, wu, true),
		levelMisses(float64(cfg.Caches.L1D.SizeBytes), lineBytes, dataStreams, arrDataL1, n, wu, true)...)
	arrL3 := levelMisses(float64(cfg.Caches.L2.SizeBytes), lineBytes, all, arrL2, n, wu, false)
	var arrMem []float64
	if cfg.Caches.L3 != nil {
		arrMem = levelMisses(float64(cfg.Caches.L3.SizeBytes), lineBytes, all, arrL3, n, wu, false)
	}

	fetchRate := seqFetch + jumpRate + kFetch
	l1iMiss := sumSide(all, arrL2, true)
	l1dMiss := sumSide(all, arrL2, false)
	l2iMiss := sumSide(all, arrL3, true)
	l2dMiss := sumSide(all, arrL3, false)
	var l3iMiss, l3dMiss float64
	if arrMem != nil {
		l3iMiss = sumSide(all, arrMem, true)
		l3dMiss = sumSide(all, arrMem, false)
	}

	// TLB cascade over the same working sets at page granularity.
	// Instruction-side translations fire on page transitions
	// (sequentially every 1024 instructions plus discontinuities);
	// data-side translations fire on every load and store, with the
	// stride component page-resident 511 of 512 references.
	seqIT := (1.0 / 1024) * (1 - kf)
	kIT := (1.0/1024 + 1/bl) * kf
	itStreams := []*stream{
		{size: hotCodeB, rate: seqIT*wMix + jumpRate*tgtHot, instr: true},
		{size: warmAnnB, rate: seqIT*wWarm + jumpRate*tgtWarm, instr: true},
		{size: coldAnnB, rate: seqIT*wCold + jumpRate*tgtCold, instr: true},
		{size: kCodeB, rate: kIT, instr: true},
	}
	dtStreams := []*stream{
		{size: hotB, rate: uData * r1},
		{size: midB - hotB, rate: uData * r2},
		{size: warmB - midB, rate: uData * r3},
		{size: fpB - warmB, rate: uData * r4},
		{size: fpB, rate: uData * sf / 512}, // stride page-scan
		{size: khB, rate: kData * (0.8 + 0.2*khB/kdB)},
		{size: kdB - khB, rate: kData * 0.2 * (kdB - khB) / kdB},
	}
	// The prime pass touched the TLBs on the same scans at page stride,
	// so the streams inherit the cache-side prime state.
	for i := range itStreams {
		itStreams[i].prime = codeStreams[i].prime
	}
	for i := range dtStreams {
		dtStreams[i].prime = dataStreams[i].prime
	}
	pageBytes := float64(uint64(1) << tlb.PageShift)
	arrITL1 := baseRates(itStreams)
	arrDTL1 := baseRates(dtStreams)
	allT := append(append([]*stream{}, itStreams...), dtStreams...)
	arrTL2 := append(
		levelMisses(float64(cfg.TLBs.ITLB.Entries)*pageBytes, pageBytes, itStreams, arrITL1, n, wu, true),
		levelMisses(float64(cfg.TLBs.DTLB.Entries)*pageBytes, pageBytes, dtStreams, arrDTL1, n, wu, true)...)
	itlbMiss := sumSide(allT, arrTL2, true)
	dtlbMiss := sumSide(allT, arrTL2, false)
	var l2tlbMiss float64
	if cfg.TLBs.L2 != nil {
		walks := levelMisses(float64(cfg.TLBs.L2.Entries)*pageBytes, pageBytes, allT, arrTL2, n, wu, false)
		l2tlbMiss = sumSide(allT, walks, true) + sumSide(allT, walks, false)
	}

	// The generator's MemStreams stride pointers sit streamSpan apart.
	// When that spacing is a multiple of a TLB's set stride, every
	// stream's current page indexes the same set; with fewer ways than
	// streams the set thrashes under LRU (a move-to-front stack over
	// nStr equally-hot pages hits only for the Ways most recent), and
	// nearly half the stride references miss a TLB their pages would
	// trivially fit in.
	nStr := spec.MemStreams
	if nStr <= 0 {
		nStr = 4
	}
	span := spec.FootprintBytes / uint64(nStr)
	if span < 64 {
		span = 64
	}
	strideThrash := func(c tlb.Config) float64 {
		setStride := uint64(c.Entries/c.Ways) << tlb.PageShift
		if nStr <= c.Ways || span < setStride || span%setStride != 0 {
			return 0
		}
		return 1 - float64(c.Ways)/float64(nStr)
	}
	if extra := uData * sf * strideThrash(cfg.TLBs.DTLB); extra > 0 {
		dtlbMiss += extra
		if cfg.TLBs.L2 != nil {
			l2tlbMiss += extra * strideThrash(*cfg.TLBs.L2)
		}
	}

	// Assemble the counts the simulator would report.
	cnt := func(rate float64) uint64 {
		if rate <= 0 {
			return 0
		}
		return uint64(math.Round(rate * n))
	}
	rc := &machine.RawCounts{
		Instructions:  uint64(opts.Instructions),
		Loads:         cnt(loadRate),
		Stores:        cnt(storeRate),
		Branches:      cnt(branchRate),
		TakenBranches: cnt(branchRate * takenProb),
		FPOps:         cnt(fpRate),
		SIMDOps:       cnt(simdRate),
		KernelInstrs:  cnt(kf),
		Mispredicts:   cnt(branchRate * missProb),
	}
	rc.Cache = cache.Counts{
		L1IAccesses: cnt(fetchRate),
		L1IMisses:   cnt(l1iMiss),
		L1DAccesses: rc.Loads + rc.Stores,
		L1DMisses:   cnt(l1dMiss),
		L2IAccesses: cnt(l1iMiss),
		L2IMisses:   cnt(l2iMiss),
		L2DAccesses: cnt(l1dMiss),
		L2DMisses:   cnt(l2dMiss),
	}
	if cfg.Caches.L3 != nil {
		rc.Cache.L3Accesses = cnt(l2iMiss + l2dMiss)
		rc.Cache.L3Misses = cnt(l3iMiss + l3dMiss)
	}
	rc.TLB = tlb.Counts{
		ITLBLookups: cnt(seqIT + jumpRate + kIT),
		ITLBMisses:  cnt(itlbMiss),
		DTLBLookups: rc.Loads + rc.Stores,
		DTLBMisses:  cnt(dtlbMiss),
	}
	if cfg.TLBs.L2 != nil {
		rc.TLB.L2Lookups = cnt(itlbMiss + dtlbMiss)
		rc.TLB.L2Misses = cnt(l2tlbMiss)
		rc.TLB.PageWalks = rc.TLB.L2Misses
	} else {
		rc.TLB.PageWalks = cnt(itlbMiss + dtlbMiss)
	}

	in := cpistack.Inputs{
		Instructions: rc.Instructions,
		BaseCPI:      1 / w.ILP,
		IdealCPI:     1 / float64(cfg.IssueWidth),
		Mispredicts:  rc.Mispredicts,
		L1IMissToL2:  rc.Cache.L1IMisses,
		L1DMissToL2:  rc.Cache.L1DMisses,
		PageWalks:    rc.TLB.PageWalks,
	}
	if cfg.Caches.L3 != nil {
		in.L2IMissToL3 = rc.Cache.L2IMisses
		in.L3IMissToMem = cnt(l3iMiss)
		in.L2DMissToL3 = rc.Cache.L2DMisses
		in.L3DMissToMem = cnt(l3dMiss)
	} else {
		in.L2IMissToMem = rc.Cache.L2IMisses
		in.L3DMissToMem = rc.Cache.L2DMisses
	}
	stack, err := cpistack.Compute(in, cfg.Penalties)
	if err != nil {
		return nil, err
	}
	rc.Stack = stack
	rc.CPI = stack.Total()
	rc.Cycles = uint64(rc.CPI * float64(rc.Instructions))

	if cfg.HasRAPL {
		memAcc := rc.Cache.L3Misses
		if cfg.Caches.L3 == nil {
			memAcc = rc.Cache.L2IMisses + rc.Cache.L2DMisses
		}
		bd, err := cfg.Power.Estimate(power.Activity{
			Instructions: rc.Instructions,
			Cycles:       rc.Cycles,
			FPOps:        rc.FPOps,
			SIMDOps:      rc.SIMDOps,
			LLCAccesses:  rc.Cache.L2IAccesses + rc.Cache.L2DAccesses + rc.Cache.L3Accesses,
			MemAccesses:  memAcc,
		})
		if err != nil {
			return nil, err
		}
		rc.Power = bd
	}
	return rc, nil
}
