package engine

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

func TestParseTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Tier
		ok   bool
	}{
		{"exact", TierExact, true},
		{"analytic", TierAnalytic, true},
		{"auto", TierAuto, true},
		{"", "", false},
		{"EXACT", "", false},
		{"Analytic", "", false},
		{"fast", "", false},
		{"exact ", "", false},
	} {
		got, err := ParseTier(tc.in)
		if tc.ok {
			if err != nil || got != tc.want {
				t.Errorf("ParseTier(%q) = %v, %v; want %v, nil", tc.in, got, err, tc.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseTier(%q) = %v, nil; want error", tc.in, got)
			continue
		}
		// The error must name the allowed set: it is surfaced verbatim
		// as the server's 400 body.
		if !strings.Contains(err.Error(), "valid: exact, analytic, auto") {
			t.Errorf("ParseTier(%q) error %q does not list the valid tiers", tc.in, err)
		}
	}
}

func TestNew(t *testing.T) {
	if e, err := New(TierExact); err != nil || e.Tier() != TierExact {
		t.Errorf("New(exact) = %v, %v", e, err)
	}
	if e, err := New(TierAnalytic); err != nil || e.Tier() != TierAnalytic {
		t.Errorf("New(analytic) = %v, %v", e, err)
	}
	// Auto is a serving policy, not an engine: the caller must resolve
	// it to a concrete tier before coming here.
	if e, err := New(TierAuto); err == nil {
		t.Errorf("New(auto) = %v, nil; want error", e)
	}
	if e, err := New(Tier("nope")); err == nil {
		t.Errorf("New(nope) = %v, nil; want error", e)
	}
}

// TestExactMatchesRun pins the exact engine to the historical
// measurement path: Exact.Measure must be bit-identical to machine.Run,
// so switching the serving layer onto the engine interface changed
// nothing about what "exact" means.
func TestExactMatchesRun(t *testing.T) {
	fleet, err := machine.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	opts := machine.RunOptions{Instructions: 20_000}
	w := workloads.All()[0].Workload()
	for _, m := range fleet[:2] {
		want, err := m.Run(w, opts)
		if err != nil {
			t.Fatalf("Run(%s): %v", m.Name(), err)
		}
		got, err := Exact{}.Measure(context.Background(), m, w, opts)
		if err != nil {
			t.Fatalf("Exact.Measure(%s): %v", m.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Exact.Measure differs from machine.Run:\n got %+v\nwant %+v", m.Name(), got, want)
		}
	}
}

// TestAnalyticDeterministic: the estimator is a pure function of
// (machine, workload, options) — repeated calls must agree exactly,
// because store keys and result caches assume it.
func TestAnalyticDeterministic(t *testing.T) {
	fleet, err := machine.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, p := range workloads.All()[:4] {
		w := p.Workload()
		for _, m := range fleet {
			a, err := Analytic{}.Measure(ctx, m, w, crossvalOpts)
			if err != nil {
				t.Fatalf("Analytic.Measure(%s, %s): %v", m.Name(), w.Key, err)
			}
			b, err := Analytic{}.Measure(ctx, m, w, crossvalOpts)
			if err != nil {
				t.Fatalf("Analytic.Measure(%s, %s) repeat: %v", m.Name(), w.Key, err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s on %s: repeated analytic measurements differ", w.Key, m.Name())
			}
		}
	}
}

// TestAnalyticShape sanity-checks the estimator's output against the
// invariants every RawCounts consumer assumes: the instruction budget
// is honoured, the mix decomposes, and cycles/CPI are consistent.
func TestAnalyticShape(t *testing.T) {
	fleet, err := machine.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, p := range workloads.All() {
		w := p.Workload()
		for _, m := range fleet {
			rc, err := Analytic{}.Measure(ctx, m, w, crossvalOpts)
			if err != nil {
				t.Fatalf("Analytic.Measure(%s, %s): %v", m.Name(), w.Key, err)
			}
			n := rc.Instructions
			if n == 0 {
				t.Fatalf("%s on %s: zero instructions", w.Key, m.Name())
			}
			if rc.Cycles == 0 || rc.CPI <= 0 {
				t.Errorf("%s on %s: cycles %d CPI %v", w.Key, m.Name(), rc.Cycles, rc.CPI)
			}
			for name, v := range map[string]uint64{
				"loads": rc.Loads, "stores": rc.Stores, "branches": rc.Branches,
				"kernel": rc.KernelInstrs,
			} {
				if v > n {
					t.Errorf("%s on %s: %s (%d) exceeds instructions (%d)", w.Key, m.Name(), name, v, n)
				}
			}
			if rc.TakenBranches > rc.Branches {
				t.Errorf("%s on %s: taken (%d) exceeds branches (%d)", w.Key, m.Name(), rc.TakenBranches, rc.Branches)
			}
			if rc.Mispredicts > rc.Branches {
				t.Errorf("%s on %s: mispredicts (%d) exceed branches (%d)", w.Key, m.Name(), rc.Mispredicts, rc.Branches)
			}
			c := rc.Cache
			for name, lvl := range map[string][2]uint64{
				"L1I": {c.L1IMisses, c.L1IAccesses},
				"L1D": {c.L1DMisses, c.L1DAccesses},
				"L2I": {c.L2IMisses, c.L2IAccesses},
				"L2D": {c.L2DMisses, c.L2DAccesses},
				"L3":  {c.L3Misses, c.L3Accesses},
			} {
				if lvl[0] > lvl[1] {
					t.Errorf("%s on %s: %s misses (%d) exceed accesses (%d)", w.Key, m.Name(), name, lvl[0], lvl[1])
				}
			}
			if m.Config().HasRAPL && rc.Power.Core <= 0 {
				t.Errorf("%s on %s: RAPL machine reported core power %v", w.Key, m.Name(), rc.Power.Core)
			}
		}
	}
}
