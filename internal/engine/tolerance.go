package engine

import (
	"math"

	"repro/internal/counters"
)

// Band bounds the allowed analytic-vs-exact disagreement for one
// metric: the two engines agree when
//
//	|analytic − exact| ≤ Abs + Rel·max(|analytic|, |exact|)
//
// Abs absorbs counting noise near zero (an MPKI of 0.02 vs 0.05 is
// agreement, not a 150% error); Rel bounds the proportional error once
// a metric is materially non-zero.
type Band struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// Holds reports whether analytic a and exact x agree within the band.
func (b Band) Holds(a, x float64) bool { return b.Ratio(a, x) <= 1 }

// Ratio returns the fraction of the band the disagreement between
// analytic a and exact x consumes:
//
//	|a − x| / (Abs + Rel·max(|a|, |x|))
//
// 0 is perfect agreement, 1 sits exactly on the band edge, and values
// above 1 are violations. The insight plane's drift monitor feeds
// these ratios into the spec17d_engine_drift_ratio{metric} histograms,
// so "how close to the contract are we running" is one number per
// sample regardless of the metric's units. A degenerate zero-width
// band returns 0 on exact agreement and +Inf otherwise.
func (b Band) Ratio(a, x float64) float64 {
	diff := a - x
	if diff < 0 {
		diff = -diff
	}
	m := a
	if m < 0 {
		m = -m
	}
	if xa := x; xa >= 0 && xa > m {
		m = xa
	} else if xa < 0 && -xa > m {
		m = -xa
	}
	width := b.Abs + b.Rel*m
	if width == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return diff / width
}

// MetricCPI keys the CPI pseudo-metric in Tolerances; it is not part
// of the counters schema (CPI is a derived column of Table I) but the
// engines must agree on it, so it gets a band like everything else.
const MetricCPI counters.Metric = "cpi"

// Tolerances are the documented agreement bands between the analytic
// and exact engines, per metric, over the full CPU2006 + CPU2017 +
// emerging registry on the whole Table IV fleet. They are asserted two
// ways in internal/engine's tests: TestCrossValidation checks every
// (workload, machine) pair against them, and TestToleranceBandsPinned
// fails if the bands themselves drift — loosening a band is a
// deliberate, reviewed act, never a silent one.
//
// The values were set from the measured worst-case disagreement at
// 50k-instruction fidelity with roughly 50% headroom: tight enough
// that an estimator regression (a mis-modelled stream, a dropped
// term) trips them, loose enough that simulator sampling noise does
// not.
var Tolerances = map[counters.Metric]Band{
	counters.L1IMPKI: {Abs: 1.5, Rel: 0.45},
	counters.L1DMPKI: {Abs: 4.0, Rel: 0.30},
	counters.L2IMPKI: {Abs: 2.0, Rel: 0.80},
	counters.L2DMPKI: {Abs: 2.5, Rel: 0.28},
	counters.L3MPKI:  {Abs: 3.0, Rel: 0.45},

	counters.ITLBMPMI:     {Abs: 150, Rel: 0.45},
	counters.DTLBMPMI:     {Abs: 2500, Rel: 0.70},
	counters.L2TLBMPMI:    {Abs: 1000, Rel: 0.35},
	counters.PageWalksPMI: {Abs: 1000, Rel: 0.35},

	counters.BranchMPKI: {Abs: 3.5, Rel: 0.60},
	counters.TakenPKI:   {Abs: 9, Rel: 0.08},

	counters.PctKernel: {Abs: 0.6, Rel: 0.09},
	counters.PctUser:   {Abs: 0.6, Rel: 0.03},
	counters.PctInt:    {Abs: 0.4, Rel: 0.02},
	counters.PctFP:     {Abs: 0.3, Rel: 0.02},
	counters.PctLoad:   {Abs: 0.4, Rel: 0.025},
	counters.PctStore:  {Abs: 0.35, Rel: 0.02},
	counters.PctBranch: {Abs: 0.1, Rel: 0.01},
	counters.PctSIMD:   {Abs: 0.35, Rel: 0.03},

	counters.CorePower: {Abs: 2.0, Rel: 0.15},
	counters.LLCPower:  {Abs: 0.2, Rel: 0.08},
	counters.MemPower:  {Abs: 0.3, Rel: 0.07},

	MetricCPI: {Abs: 0.3, Rel: 0.45},
}
