// Package sched is the shared measurement scheduler: one bounded
// worker pool through which every simulation in the process flows,
// whoever asked for it. Where internal/server's singleflight
// deduplicates at the *experiment* grain and internal/store at the
// *persistence* grain, the scheduler deduplicates in-flight work at
// the measurement grain — (machine × workload × canonical options),
// the store's key — so two batches whose experiment sets overlap
// share the underlying simulations instead of queueing them twice.
//
// Structure:
//
//   - A Pool owns the workers and a global FIFO of pending jobs.
//     Jobs start strictly in submission order (fairness across
//     requests), bounded by the pool's worker count.
//   - A Queue is one submitter's handle on the pool — a batch, a
//     request, a CLI run — with an optional concurrency cap of its
//     own, so one enormous batch cannot monopolize the workers while
//     other queues' jobs starve behind it.
//   - Do submits one keyed job. If a job with the same key is already
//     pending or running (submitted through *any* queue), the caller
//     joins it as a waiter instead of enqueueing a duplicate; the
//     join is counted as a dedup hit.
//
// Cancellation follows the refcount convention used throughout the
// repo: each waiter waits under its own context, and a job every one
// of whose waiters has departed is canceled (if running) or removed
// from the queue (if still pending) instead of burning a worker.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Shed errors. Both are terminal for every waiter of the affected
// submission — unlike a context cancellation, they are never retried
// by the waiter loop, so callers can map them to a load-shedding
// response (429) in bounded time.
var (
	// ErrQueueFull is returned by Do when the pool's pending queue is
	// at MaxQueue and the submission would enqueue a new job.
	ErrQueueFull = errors.New("sched: pending queue full")
	// ErrQueueTimeout is returned by Do when a pending job waited
	// longer than the pool's QueueWait without reaching a worker and
	// was shed.
	ErrQueueTimeout = errors.New("sched: queue-wait timeout")
)

// poolMetrics bundles the scheduler's instruments.
type poolMetrics struct {
	depth     *metrics.Gauge     // jobs queued, not yet started
	inflight  *metrics.Gauge     // jobs running right now
	dedup     *metrics.Counter   // submissions that joined an existing job
	started   *metrics.Counter   // jobs actually handed to a worker
	shed      *metrics.Counter   // jobs rejected or timed out before starting
	queueWait *metrics.Histogram // pending time of dispatched jobs
}

func newPoolMetrics(r *metrics.Registry) poolMetrics {
	return poolMetrics{
		depth: r.Gauge("spec17_sched_queue_depth",
			"Scheduler jobs queued and waiting for a worker."),
		inflight: r.Gauge("spec17_sched_inflight",
			"Scheduler jobs running right now."),
		dedup: r.Counter("spec17_sched_dedup_hits_total",
			"Submissions that joined an already pending or running job with the same key."),
		started: r.Counter("spec17_sched_jobs_started_total",
			"Jobs handed to a worker (deduplicated submissions excluded)."),
		shed: r.Counter("spec17_sched_shed_total",
			"Jobs shed before starting: rejected by the queue bound or timed out waiting."),
		queueWait: r.Histogram("spec17_sched_queue_wait_seconds",
			"Time dispatched jobs spent pending before a worker picked them up.",
			nil),
	}
}

// job is one keyed unit of work and everything waiting on it.
type job struct {
	key   string
	queue *Queue
	fn    func(context.Context) (any, error)
	// submitted is when the job entered the pending FIFO; the gap to
	// dispatch is surfaced as a sched.wait span on the submitting
	// request's trace.
	submitted time.Time

	// Pending-list links; nil once started or abandoned.
	prev, next *job
	pending    bool
	// shedTimer sheds the job if it waits longer than the pool's
	// QueueWait; stopped at dispatch. Nil when QueueWait is zero.
	shedTimer *time.Timer

	done   chan struct{}
	val    any
	err    error
	refs   int // waiters still interested, guarded by Pool.mu
	ctx    context.Context
	cancel context.CancelFunc
}

// PoolConfig configures a Pool. The zero value is usable: GOMAXPROCS
// workers, an unbounded queue, no queue-wait shedding.
type PoolConfig struct {
	// Workers bounds concurrently running jobs (<= 0: GOMAXPROCS).
	Workers int
	// MaxQueue bounds the pending FIFO. A submission that would
	// enqueue a new job beyond the bound fails with ErrQueueFull
	// instead of queueing without bound; dedup joins onto already
	// pending or running jobs are always allowed (they add no work).
	// 0 means unbounded.
	MaxQueue int
	// QueueWait bounds how long a pending job may wait for a worker.
	// A job pending longer is shed: removed from the queue, and every
	// waiter gets ErrQueueTimeout — better to fail fast than to start
	// work whose audience gave up long ago. 0 disables.
	QueueWait time.Duration
	// Metrics receives the spec17_sched_* instruments. Nil uses a
	// private registry.
	Metrics *metrics.Registry
}

// Pool is a bounded, keyed, FIFO worker pool shared by any number of
// Queues. Create with NewPool or NewPoolWith; the zero value is not
// usable.
type Pool struct {
	met       poolMetrics
	workers   int
	maxQueue  int
	queueWait time.Duration

	mu       sync.Mutex
	running  int
	npending int
	jobs     map[string]*job // pending or running, by key
	head     *job            // pending FIFO
	tail     *job
}

// NewPool returns a pool running at most workers jobs concurrently
// (<= 0 means GOMAXPROCS) with an unbounded pending queue. Its
// instruments (spec17_sched_*) land in reg; nil uses a private
// registry.
func NewPool(workers int, reg *metrics.Registry) *Pool {
	return NewPoolWith(PoolConfig{Workers: workers, Metrics: reg})
}

// NewPoolWith returns a pool enforcing cfg.
func NewPoolWith(cfg PoolConfig) *Pool {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Pool{
		met:       newPoolMetrics(cfg.Metrics),
		workers:   cfg.Workers,
		maxQueue:  cfg.MaxQueue,
		queueWait: cfg.QueueWait,
		jobs:      make(map[string]*job),
	}
}

// Queue is one submitter's handle on a Pool. Queues are cheap; create
// one per logical request or batch so its cap (and cancellation)
// stays scoped to that submitter's work.
type Queue struct {
	pool *Pool
	cap  int // max concurrently running jobs of this queue; 0 = pool bound only
	// running counts this queue's jobs currently holding a worker,
	// guarded by pool.mu.
	running int
}

// Queue returns a new submission handle. cap bounds how many of the
// queue's jobs may run concurrently (<= 0: no per-queue bound — the
// pool's worker count is the only limit). Jobs joined by dedup count
// against the queue that first submitted them.
func (p *Pool) Queue(cap int) *Queue {
	return &Queue{pool: p, cap: cap}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Cap returns the queue's per-queue concurrency cap (0: only the
// pool's worker count bounds it).
func (q *Queue) Cap() int { return q.cap }

// Running returns how many of this queue's jobs currently hold a
// worker. Background submitters (async job sweeps) surface this in
// /v1/status so an operator can see how much of the simulation pool
// background work is occupying.
func (q *Queue) Running() int {
	q.pool.mu.Lock()
	defer q.pool.mu.Unlock()
	return q.running
}

// Stats is a point-in-time snapshot of the pool's counters, for tests
// and callers that want to wait for the queue to settle.
type Stats struct {
	Depth     int   // jobs queued, not yet started
	Inflight  int   // jobs running
	DedupHits int64 // submissions that joined an existing job
	Started   int64 // jobs handed to a worker
	Shed      int64 // jobs shed by the queue bound or the wait timeout
	MaxQueue  int   // configured pending bound (0: unbounded)
}

// Stats returns the pool's current counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Depth:     p.npending,
		Inflight:  p.running,
		DedupHits: int64(p.met.dedup.Value()),
		Started:   int64(p.met.started.Value()),
		Shed:      int64(p.met.shed.Value()),
		MaxQueue:  p.maxQueue,
	}
}

// pushPending appends j to the FIFO. Caller holds p.mu.
func (p *Pool) pushPending(j *job) {
	j.pending = true
	j.prev = p.tail
	if p.tail != nil {
		p.tail.next = j
	} else {
		p.head = j
	}
	p.tail = j
	p.npending++
	p.met.depth.Set(float64(p.npending))
}

// removePending unlinks j from the FIFO. Caller holds p.mu.
func (p *Pool) removePending(j *job) {
	if j.prev != nil {
		j.prev.next = j.next
	} else {
		p.head = j.next
	}
	if j.next != nil {
		j.next.prev = j.prev
	} else {
		p.tail = j.prev
	}
	j.prev, j.next = nil, nil
	j.pending = false
	p.npending--
	p.met.depth.Set(float64(p.npending))
}

// dispatch starts pending jobs while workers are free, in FIFO order,
// skipping jobs whose queue is at its cap. Caller holds p.mu.
func (p *Pool) dispatch() {
	for j := p.head; j != nil && p.running < p.workers; {
		next := j.next
		if j.queue.cap > 0 && j.queue.running >= j.queue.cap {
			j = next
			continue // queue at cap: let later queues' jobs through
		}
		p.removePending(j)
		if j.shedTimer != nil {
			j.shedTimer.Stop()
			j.shedTimer = nil
		}
		p.met.queueWait.Observe(time.Since(j.submitted).Seconds())
		j.queue.running++
		p.running++
		p.met.inflight.Set(float64(p.running))
		p.met.started.Inc()
		go p.run(j)
		j = next
	}
}

// shedPending fires when j's queue-wait timer expires. If the job is
// still pending — no worker ever reached it — it is removed wholesale:
// every waiter gets ErrQueueTimeout (terminal, never retried by the
// waiter loop), the key is freed for fresh submissions, and the shed is
// counted. A job already dispatched or abandoned is left alone.
func (p *Pool) shedPending(j *job) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !j.pending {
		return // raced with dispatch or abandonment
	}
	p.removePending(j)
	delete(p.jobs, j.key)
	j.shedTimer = nil
	j.err = ErrQueueTimeout
	p.met.shed.Inc()
	close(j.done)
	j.cancel()
}

// run executes one job on a worker goroutine and wakes its waiters.
func (p *Pool) run(j *job) {
	// The queueing delay is request-visible latency the job's own
	// execution spans never show; attribute it to the trace of the
	// submission that created the job.
	if sp := telemetry.FromContext(j.ctx); sp != nil {
		sp.Record("sched.wait", j.submitted, time.Now(), "key", j.key)
	}
	v, err := j.fn(j.ctx)
	p.mu.Lock()
	j.val, j.err = v, err
	delete(p.jobs, j.key)
	j.queue.running--
	p.running--
	p.met.inflight.Set(float64(p.running))
	close(j.done)
	j.cancel()
	p.dispatch()
	p.mu.Unlock()
}

// Do submits one keyed job and blocks until it completes or ctx is
// canceled. If a job with the same key is already pending or running,
// the caller joins it (a dedup hit) instead of enqueueing a second
// copy — fn is then never called. fn receives a job-owned context,
// canceled when every waiter has departed; the caller's ctx only ever
// aborts its own wait. A caller whose joined job was killed by *other*
// waiters' departure resubmits, so a live caller always gets a result
// or its own context error.
func (q *Queue) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	p := q.pool
	for {
		p.mu.Lock()
		j, ok := p.jobs[key]
		if !ok {
			// Only a brand-new job takes a queue slot; joining an
			// existing one adds no work, so dedup passes even at the
			// bound.
			if p.maxQueue > 0 && p.npending >= p.maxQueue {
				p.met.shed.Inc()
				p.mu.Unlock()
				return nil, ErrQueueFull
			}
			jctx, cancel := context.WithCancel(context.Background())
			// The job context is deliberately detached from any one
			// waiter's lifetime, but it inherits the creator's trace so
			// the work done on the job's behalf lands in that request's
			// span tree (joined waiters share the result, not the spans).
			jctx = telemetry.WithSpan(jctx, telemetry.FromContext(ctx))
			j = &job{
				key: key, queue: q, fn: fn,
				submitted: time.Now(),
				done:      make(chan struct{}),
				ctx:       jctx, cancel: cancel,
			}
			p.jobs[key] = j
			p.pushPending(j)
			if p.queueWait > 0 {
				j.shedTimer = time.AfterFunc(p.queueWait, func() { p.shedPending(j) })
			}
			p.dispatch()
		} else {
			p.met.dedup.Inc()
		}
		j.refs++
		p.mu.Unlock()

		select {
		case <-j.done:
			p.mu.Lock()
			j.refs--
			p.mu.Unlock()
			if isCanceled(j.err) && ctx.Err() == nil {
				continue // job died of others' departure; resubmit
			}
			return j.val, j.err
		case <-ctx.Done():
			p.mu.Lock()
			j.refs--
			if j.refs == 0 {
				if j.pending {
					// Never started: drop it from the queue entirely.
					// refs can only grow via p.jobs, so no new waiter
					// can appear once the entry is gone.
					p.removePending(j)
					delete(p.jobs, j.key)
					if j.shedTimer != nil {
						j.shedTimer.Stop()
						j.shedTimer = nil
					}
					j.cancel()
				} else {
					j.cancel() // running with no audience: stop it
				}
			}
			p.mu.Unlock()
			return nil, ctx.Err()
		}
	}
}

func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
