package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDedupSharesOneExecution(t *testing.T) {
	p := NewPool(2, nil)
	qa, qb := p.Queue(0), p.Queue(0)

	var execs atomic.Int64
	release := make(chan struct{})
	fn := func(context.Context) (any, error) {
		execs.Add(1)
		<-release
		return "shared", nil
	}

	const waiters = 8
	results := make(chan any, 2*waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		for _, q := range []*Queue{qa, qb} {
			wg.Add(1)
			go func(q *Queue) {
				defer wg.Done()
				v, err := q.Do(context.Background(), "k", fn)
				if err != nil {
					t.Errorf("Do: %v", err)
				}
				results <- v
			}(q)
		}
	}
	// Every submission after the first must register as a dedup hit
	// before the job is released, so the test cannot pass by lucky
	// sequential timing.
	waitFor(t, "dedup joins", func() bool { return p.Stats().DedupHits == 2*waiters-1 })
	close(release)
	wg.Wait()
	close(results)

	if n := execs.Load(); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
	for v := range results {
		if v != "shared" {
			t.Errorf("result = %v, want shared", v)
		}
	}
	if s := p.Stats(); s.Started != 1 || s.Depth != 0 || s.Inflight != 0 {
		t.Errorf("stats after drain = %+v", s)
	}
}

func TestFIFOOrder(t *testing.T) {
	p := NewPool(1, nil)
	q := p.Queue(0)

	// Block the single worker, then enqueue jobs 0..n; they must run
	// in submission order.
	blocker := make(chan struct{})
	go q.Do(context.Background(), "blocker", func(context.Context) (any, error) {
		<-blocker
		return nil, nil
	})
	waitFor(t, "blocker running", func() bool { return p.Stats().Inflight == 1 })

	const n = 6
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Do(context.Background(), fmt.Sprintf("job-%d", i), func(context.Context) (any, error) {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				return nil, nil
			})
		}()
		// Serialize submission so the FIFO order is deterministic.
		waitFor(t, "job queued", func() bool { return p.Stats().Depth == i+1 })
	}
	close(blocker)
	wg.Wait()

	for i, got := range order {
		if got != i {
			t.Fatalf("execution order %v, want 0..%d in order", order, n-1)
		}
	}
}

// TestQueueCapDoesNotStarveOthers pins queue A at its cap and checks
// that queue B's later submission overtakes A's queued backlog.
func TestQueueCapDoesNotStarveOthers(t *testing.T) {
	p := NewPool(2, nil)
	qa, qb := p.Queue(1), p.Queue(0)

	aRelease := make(chan struct{})
	aStarted := make(chan string, 4)
	go qa.Do(context.Background(), "a1", func(context.Context) (any, error) {
		aStarted <- "a1"
		<-aRelease
		return nil, nil
	})
	waitFor(t, "a1 running", func() bool { return p.Stats().Inflight == 1 })

	// a2 queues behind a1 (queue A cap = 1) even though a worker is free.
	go qa.Do(context.Background(), "a2", func(context.Context) (any, error) {
		aStarted <- "a2"
		return nil, nil
	})
	waitFor(t, "a2 queued", func() bool { return p.Stats().Depth == 1 })

	// Queue B submitted later must start immediately on the free worker.
	done := make(chan struct{})
	go func() {
		qb.Do(context.Background(), "b1", func(context.Context) (any, error) { return "b", nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queue B starved behind queue A's capped backlog")
	}
	if got := <-aStarted; got != "a1" {
		t.Fatalf("first queue-A job was %q", got)
	}
	close(aRelease)
	waitFor(t, "drain", func() bool { s := p.Stats(); return s.Depth == 0 && s.Inflight == 0 })
}

func TestPoolBound(t *testing.T) {
	const workers = 2
	p := NewPool(workers, nil)
	q := p.Queue(0)

	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Do(context.Background(), fmt.Sprintf("j%d", i), func(context.Context) (any, error) {
				n := inflight.Add(1)
				for {
					m := peak.Load()
					if n <= m || peak.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				inflight.Add(-1)
				return nil, nil
			})
		}()
	}
	wg.Wait()
	if m := peak.Load(); m > workers {
		t.Errorf("peak concurrency %d exceeds pool bound %d", m, workers)
	}
}

// TestLastWaiterCancelsRunningJob: a running job whose only waiter
// departs has its context canceled; a pending job is dropped from the
// queue outright.
func TestCancellation(t *testing.T) {
	p := NewPool(1, nil)
	q := p.Queue(0)

	started := make(chan struct{})
	canceled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.Do(ctx, "running", func(jctx context.Context) (any, error) {
			close(started)
			<-jctx.Done()
			close(canceled)
			return nil, jctx.Err()
		})
		errc <- err
	}()
	<-started

	// A pending job behind it, whose waiter also departs: it must be
	// dropped from the queue without ever running.
	pctx, pcancel := context.WithCancel(context.Background())
	perrc := make(chan error, 1)
	go func() {
		_, err := q.Do(pctx, "pending", func(context.Context) (any, error) {
			t.Error("pending job ran after its only waiter departed")
			return nil, nil
		})
		perrc <- err
	}()
	waitFor(t, "pending job queued", func() bool { return p.Stats().Depth == 1 })
	pcancel()
	if err := <-perrc; !errors.Is(err, context.Canceled) {
		t.Errorf("pending waiter error = %v, want context.Canceled", err)
	}
	waitFor(t, "pending job dropped", func() bool { return p.Stats().Depth == 0 })

	cancel()
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("running job's context not canceled after last waiter left")
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Errorf("running waiter error = %v, want context.Canceled", err)
	}
	waitFor(t, "pool idle", func() bool { s := p.Stats(); return s.Depth == 0 && s.Inflight == 0 })

	// The abandoned key is not poisoned: a fresh submission runs.
	v, err := q.Do(context.Background(), "running", func(context.Context) (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Errorf("resubmission after abandonment = %v, %v", v, err)
	}
}

// TestSurvivorKeepsSharedJobAlive is the batch-disconnect invariant at
// the scheduler layer: two waiters share one job; one departs; the
// job keeps running for the survivor.
func TestSurvivorKeepsSharedJobAlive(t *testing.T) {
	p := NewPool(1, nil)
	qa, qb := p.Queue(0), p.Queue(0)

	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(jctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
			return "done", nil
		case <-jctx.Done():
			return nil, jctx.Err()
		}
	}

	actx, acancel := context.WithCancel(context.Background())
	aerr := make(chan error, 1)
	go func() {
		_, err := qa.Do(actx, "shared", fn)
		aerr <- err
	}()
	<-started

	bval := make(chan any, 1)
	go func() {
		v, err := qb.Do(context.Background(), "shared", fn)
		if err != nil {
			t.Errorf("survivor: %v", err)
		}
		bval <- v
	}()
	waitFor(t, "survivor joined", func() bool { return p.Stats().DedupHits == 1 })

	acancel() // waiter A disconnects mid-flight
	if err := <-aerr; !errors.Is(err, context.Canceled) {
		t.Errorf("departed waiter error = %v", err)
	}
	// The job must still be live for B: release it and check B's value.
	close(release)
	select {
	case v := <-bval:
		if v != "done" {
			t.Errorf("survivor got %v, want done", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never got the shared result — job was canceled by the other waiter's departure")
	}
}

func TestErrorPropagatesToAllWaiters(t *testing.T) {
	p := NewPool(2, nil)
	q := p.Queue(0)
	boom := errors.New("boom")
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := q.Do(context.Background(), "bad", func(context.Context) (any, error) {
				<-release
				return nil, boom
			})
			errs <- err
		}()
	}
	waitFor(t, "waiters joined", func() bool { return p.Stats().DedupHits == 3 })
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("waiter error = %v, want boom", err)
		}
	}
}

// TestStress hammers the pool from many goroutines with overlapping
// keys and random cancellation; run under -race this is the
// scheduler's data-race net.
func TestStress(t *testing.T) {
	p := NewPool(4, nil)
	var execs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := p.Queue(1 + g%3)
			for i := 0; i < 50; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%7 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
				}
				key := fmt.Sprintf("k%d", (g+i)%10)
				v, err := q.Do(ctx, key, func(context.Context) (any, error) {
					execs.Add(1)
					return key, nil
				})
				if cancel != nil {
					cancel()
				}
				if err == nil && v != key {
					t.Errorf("got %v for %s", v, key)
				}
			}
		}()
	}
	wg.Wait()
	waitFor(t, "drain", func() bool { s := p.Stats(); return s.Depth == 0 && s.Inflight == 0 })
	if execs.Load() == 0 {
		t.Error("nothing executed")
	}
}

// TestQueueFull: submissions that would enqueue a new job beyond
// MaxQueue fail promptly with ErrQueueFull; dedup joins onto an
// existing job still pass at the bound.
func TestQueueFull(t *testing.T) {
	p := NewPoolWith(PoolConfig{Workers: 1, MaxQueue: 1})
	q := p.Queue(0)

	release := make(chan struct{})
	blocker := func(context.Context) (any, error) { <-release; return "v", nil }

	// Occupy the single worker...
	go q.Do(context.Background(), "running", blocker)
	waitFor(t, "worker busy", func() bool { return p.Stats().Inflight == 1 })
	// ...and the single queue slot.
	go q.Do(context.Background(), "queued", blocker)
	waitFor(t, "queue full", func() bool { return p.Stats().Depth == 1 })

	// A new key must be rejected, promptly.
	start := time.Now()
	_, err := q.Do(context.Background(), "overflow", blocker)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("rejection took %v, want prompt", d)
	}
	if got := p.Stats().Shed; got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}

	// Joining the pending or the running job adds no work: allowed.
	joined := make(chan error, 2)
	go func() { _, err := q.Do(context.Background(), "queued", blocker); joined <- err }()
	go func() { _, err := q.Do(context.Background(), "running", blocker); joined <- err }()
	waitFor(t, "dedup joins at the bound", func() bool { return p.Stats().DedupHits >= 2 })

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-joined; err != nil {
			t.Errorf("dedup join failed at the bound: %v", err)
		}
	}
	// After the queue drains, fresh submissions pass again.
	if _, err := q.Do(context.Background(), "after", func(context.Context) (any, error) { return 1, nil }); err != nil {
		t.Errorf("submission after drain failed: %v", err)
	}
}

// TestQueueWaitTimeout: a pending job nobody dispatches within
// QueueWait is shed — every waiter gets ErrQueueTimeout, the key is
// freed, and the pool's bookkeeping (jobs map, pending count) is clean.
func TestQueueWaitTimeout(t *testing.T) {
	p := NewPoolWith(PoolConfig{Workers: 1, QueueWait: 30 * time.Millisecond})
	q := p.Queue(0)

	release := make(chan struct{})
	go q.Do(context.Background(), "hog", func(context.Context) (any, error) { <-release; return "v", nil })
	waitFor(t, "worker busy", func() bool { return p.Stats().Inflight == 1 })

	var started atomic.Int64
	const waiters = 3
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := q.Do(context.Background(), "doomed", func(context.Context) (any, error) {
				started.Add(1)
				return nil, nil
			})
			errs <- err
		}()
	}
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, ErrQueueTimeout) {
			t.Fatalf("waiter err = %v, want ErrQueueTimeout", err)
		}
	}
	if n := started.Load(); n != 0 {
		t.Errorf("shed job ran %d times, want 0", n)
	}
	if got := p.Stats().Shed; got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}

	// The key is free again: a fresh submission under the same key runs
	// once the worker frees up.
	close(release)
	if v, err := q.Do(context.Background(), "doomed", func(context.Context) (any, error) { return "second life", nil }); err != nil || v != "second life" {
		t.Errorf("resubmission after shed = %v, %v", v, err)
	}
	s := p.Stats()
	if s.Depth != 0 || s.Inflight != 0 {
		t.Errorf("pool not clean after shed: %+v", s)
	}
}

// TestQueueWaitTimerStoppedOnDispatch: a job that reaches a worker
// before QueueWait expires completes normally and is never shed.
func TestQueueWaitTimerStoppedOnDispatch(t *testing.T) {
	p := NewPoolWith(PoolConfig{Workers: 1, QueueWait: 20 * time.Millisecond})
	q := p.Queue(0)
	v, err := q.Do(context.Background(), "quick", func(context.Context) (any, error) {
		time.Sleep(60 * time.Millisecond) // outlive QueueWait while running
		return "ok", nil
	})
	if err != nil || v != "ok" {
		t.Fatalf("Do = %v, %v; want ok, nil", v, err)
	}
	if got := p.Stats().Shed; got != 0 {
		t.Errorf("Shed = %d, want 0 (job was dispatched, not shed)", got)
	}
}

// TestQueueWaitAbandonRace: waiters abandoning a pending job around
// the same time its shed timer fires must not double-free anything.
func TestQueueWaitAbandonRace(t *testing.T) {
	p := NewPoolWith(PoolConfig{Workers: 1, QueueWait: time.Millisecond})
	q := p.Queue(0)

	release := make(chan struct{})
	go q.Do(context.Background(), "hog", func(context.Context) (any, error) { <-release; return nil, nil })
	waitFor(t, "worker busy", func() bool { return p.Stats().Inflight == 1 })

	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*time.Millisecond)
			defer cancel()
			_, err := q.Do(ctx, fmt.Sprintf("k%d", i), func(context.Context) (any, error) { return nil, nil })
			if err != nil && !errors.Is(err, ErrQueueTimeout) && !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("unexpected err: %v", err)
			}
		}(i)
	}
	wg.Wait()
	close(release)
	waitFor(t, "pool drains", func() bool {
		s := p.Stats()
		return s.Depth == 0 && s.Inflight == 0
	})
}
