package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestKeyedStreamsIndependent(t *testing.T) {
	a := NewKeyed("mcf_r", 0)
	b := NewKeyed("mcf_r", 1)
	c := NewKeyed("mcf_s", 0)
	same01, same0c := 0, 0
	for i := 0; i < 100; i++ {
		av := a.Uint64()
		if av == b.Uint64() {
			same01++
		}
		if av == c.Uint64() {
			same0c++
		}
	}
	if same01 > 0 || same0c > 0 {
		t.Fatal("keyed streams must differ")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for _, n := range []int{1, 2, 7, 100} {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uint64n(0)")
		}
	}()
	New(1).Uint64n(0)
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
	if New(5).Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	_ = r.Uint64() // must not panic
}
