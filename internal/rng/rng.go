// Package rng provides a small, fast, deterministic pseudo-random
// number generator used by the synthetic workload substrate. Every
// stream is keyed by explicit seeds (never wall-clock), so all
// experiments in this repository are reproducible bit-for-bit.
package rng

// Rand is a splitmix64-based generator. The zero value is a valid
// generator seeded with 0; use New to derive independent streams.
type Rand struct {
	state uint64
}

// New returns a generator whose stream is determined entirely by seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// NewKeyed derives a generator from a string key and a numeric stream
// id using FNV-1a hashing, so independent subsystems (data addresses,
// branch outcomes, block selection, ...) of the same workload never
// share a stream.
func NewKeyed(key string, stream uint64) *Rand {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= stream
	h *= prime64
	return New(h)
}

// Uint64 returns the next value of the splitmix64 sequence.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}
