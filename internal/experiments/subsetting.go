package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/perfdb"
	"repro/internal/workloads"
)

// DendrogramResult packages one of the paper's dendrogram figures
// (Figures 2, 3, 4, and 13).
type DendrogramResult struct {
	Suite workloads.Suite
	// Similarity holds the fitted PCA + clustering.
	Similarity *core.Similarity `json:"-"`
	// NumPCs and VarCovered report the Kaiser-selected dimensionality,
	// quoted in the figure captions ("seven PCs that cover more than
	// 91% of the variance").
	NumPCs     int
	VarCovered float64
	// MostDistinct is the benchmark joining the tree last.
	MostDistinct string
	// Rendered is the ASCII dendrogram.
	Rendered string
}

func dendrogramFor(lab *Lab, suite workloads.Suite) (*DendrogramResult, error) {
	c, err := lab.suiteChar(suite)
	if err != nil {
		return nil, err
	}
	sim, err := c.SimilarityCtx(lab.Context(), core.DefaultSimilarityOptions())
	if err != nil {
		return nil, err
	}
	return &DendrogramResult{
		Suite:        suite,
		Similarity:   sim,
		NumPCs:       sim.NumPCs,
		VarCovered:   sim.PCA.CumVarExplained[sim.NumPCs-1],
		MostDistinct: sim.MostDistinct(),
		Rendered:     sim.Dendrogram.Render(60),
	}, nil
}

// Fig2 reproduces Figure 2: the SPECspeed INT dendrogram.
func Fig2(lab *Lab) (*DendrogramResult, error) { return dendrogramFor(lab, workloads.SpeedINT) }

// Fig3 reproduces Figure 3: the SPECspeed FP dendrogram.
func Fig3(lab *Lab) (*DendrogramResult, error) { return dendrogramFor(lab, workloads.SpeedFP) }

// Fig4 reproduces Figure 4: the SPECrate FP dendrogram.
func Fig4(lab *Lab) (*DendrogramResult, error) { return dendrogramFor(lab, workloads.RateFP) }

// RateINTDendrogram is the SPECrate INT dendrogram the paper describes
// but omits for space.
func RateINTDendrogram(lab *Lab) (*DendrogramResult, error) {
	return dendrogramFor(lab, workloads.RateINT)
}

// SubsetRow is one row of Table V: a sub-suite's 3-benchmark subset.
type SubsetRow struct {
	Suite workloads.Suite
	// Subset holds the representative benchmarks.
	Subset []string
	// Clusters are the full cluster memberships at the cut.
	Clusters [][]string
	// CutHeight is where the vertical line falls in the dendrogram.
	CutHeight float64
	// SimTimeReduction is the suite-instructions / subset-instructions
	// ratio ("reduces the total simulation time by 5.6x").
	SimTimeReduction float64
}

// Table5 reproduces Table V: representative 3-benchmark subsets of the
// four CPU2017 sub-suites, with their simulation-time reductions.
func Table5(lab *Lab) ([]SubsetRow, error) {
	var rows []SubsetRow
	for _, suite := range []workloads.Suite{workloads.SpeedINT, workloads.RateINT, workloads.SpeedFP, workloads.RateFP} {
		row, err := subsetForSuite(lab, suite, 3)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func subsetForSuite(lab *Lab, suite workloads.Suite, k int) (*SubsetRow, error) {
	d, err := dendrogramFor(lab, suite)
	if err != nil {
		return nil, err
	}
	res := d.Similarity.Subset(k)
	icounts := make(map[string]float64)
	for _, p := range workloads.BySuite(suite) {
		icounts[p.Name] = p.DynInstrBillions
	}
	red, err := core.SimulationTimeReduction(res.Representatives, SuiteNames(suite), icounts)
	if err != nil {
		return nil, err
	}
	return &SubsetRow{
		Suite:            suite,
		Subset:           res.Representatives,
		Clusters:         res.Clusters,
		CutHeight:        res.CutHeight,
		SimTimeReduction: red,
	}, nil
}

// ValidationRow is one sub-suite's subset-validation outcome —
// Figures 5 and 6 (per-system errors) and a Table VI column.
type ValidationRow struct {
	Suite workloads.Suite
	// Subset is the identified representative subset.
	Subset []string
	// Identified is the subset's error against the full-suite score on
	// every synthetic commercial system.
	Identified perfdb.Validation
	// Rand1 and Rand2 are the same measurement for the two random
	// subsets of Table VI.
	Rand1, Rand2 perfdb.Validation
	RandSet1     []string
	RandSet2     []string
}

func validateSuite(lab *Lab, suite workloads.Suite) (*ValidationRow, error) {
	c, err := lab.suiteChar(suite)
	if err != nil {
		return nil, err
	}
	row, err := subsetForSuite(lab, suite, 3)
	if err != nil {
		return nil, err
	}
	cat, err := categoryKey(suite)
	if err != nil {
		return nil, err
	}
	db, err := c.BuildPerfDB(refMachineName, perfdb.SystemsFor(cat))
	if err != nil {
		return nil, err
	}
	all := SuiteNames(suite)
	out := &ValidationRow{Suite: suite, Subset: row.Subset}
	// The identified subset is scored with cluster-size weights: each
	// representative stands for its whole cluster. Random subsets have
	// no cluster structure and are scored with the plain geomean.
	weights := make([]float64, len(row.Subset))
	for i, rep := range row.Subset {
		for _, cl := range row.Clusters {
			for _, member := range cl {
				if member == rep {
					weights[i] = float64(len(cl))
				}
			}
		}
	}
	out.Identified, err = db.ValidateWeighted(row.Subset, weights, all)
	if err != nil {
		return nil, err
	}
	out.RandSet1 = perfdb.RandomSubset(all, 3, 1)
	out.RandSet2 = perfdb.RandomSubset(all, 3, 2)
	out.Rand1, err = db.Validate(out.RandSet1, all)
	if err != nil {
		return nil, err
	}
	out.Rand2, err = db.Validate(out.RandSet2, all)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig5 reproduces Figure 5: validation of the SPECspeed INT and
// SPECrate INT subsets against commercial-system scores.
func Fig5(lab *Lab) ([]*ValidationRow, error) {
	return validateSuites(lab, workloads.SpeedINT, workloads.RateINT)
}

// Fig6 reproduces Figure 6: validation of the FP subsets.
func Fig6(lab *Lab) ([]*ValidationRow, error) {
	return validateSuites(lab, workloads.SpeedFP, workloads.RateFP)
}

func validateSuites(lab *Lab, suites ...workloads.Suite) ([]*ValidationRow, error) {
	var rows []*ValidationRow
	for _, s := range suites {
		r, err := validateSuite(lab, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Table6 reproduces Table VI: identified-subset accuracy versus two
// random subsets across all four sub-suites.
func Table6(lab *Lab) ([]*ValidationRow, error) {
	return validateSuites(lab,
		workloads.SpeedINT, workloads.RateINT, workloads.SpeedFP, workloads.RateFP)
}

// refMachineName is the reference machine for CPI stacks and perfdb
// speedups (the paper characterizes on Skylake).
const refMachineName = "skylake-i7-6700"

// RenderTable6 formats Table VI.
func RenderTable6(rows []*ValidationRow) string {
	out := fmt.Sprintf("%-15s %12s %10s %10s\n", "suite", "identified", "rand-set1", "rand-set2")
	for _, r := range rows {
		out += fmt.Sprintf("%-15s %11.1f%% %9.1f%% %9.1f%%\n",
			r.Suite, r.Identified.Avg*100, r.Rand1.Avg*100, r.Rand2.Avg*100)
	}
	return out
}
