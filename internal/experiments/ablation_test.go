package experiments

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workloads"
)

func TestAblateLinkage(t *testing.T) {
	rows, err := AblateLinkage(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 4 suites x 4 linkages
		t.Fatalf("linkage ablation has %d rows, want 16", len(rows))
	}
	perSuite := make(map[workloads.Suite]map[cluster.Linkage]LinkageRow)
	for _, r := range rows {
		if len(r.Subset) != 3 {
			t.Errorf("%v/%v: subset size %d", r.Suite, r.Method, len(r.Subset))
		}
		if r.AvgError < 0 || r.AvgError > 1 {
			t.Errorf("%v/%v: error %v out of range", r.Suite, r.Method, r.AvgError)
		}
		if r.MostDistinct == "" {
			t.Errorf("%v/%v: empty most-distinct", r.Suite, r.Method)
		}
		if perSuite[r.Suite] == nil {
			perSuite[r.Suite] = make(map[cluster.Linkage]LinkageRow)
		}
		perSuite[r.Suite][r.Method] = r
	}
	// The most-distinct benchmark is a property of the geometry more
	// than the linkage: Ward and complete must agree for the INT
	// suites (mcf).
	for _, suite := range []workloads.Suite{workloads.SpeedINT, workloads.RateINT} {
		w := perSuite[suite][cluster.Ward].MostDistinct
		c := perSuite[suite][cluster.Complete].MostDistinct
		if w != c {
			t.Errorf("%v: Ward (%s) and complete (%s) disagree on most distinct", suite, w, c)
		}
	}
}

func TestSubsetSizeSweep(t *testing.T) {
	rows, err := SubsetSizeSweep(lab(t), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 { // 4 suites x 5 sizes
		t.Fatalf("sweep has %d rows, want 20", len(rows))
	}
	bySuite := make(map[workloads.Suite][]SubsetSizeRow)
	for _, r := range rows {
		bySuite[r.Suite] = append(bySuite[r.Suite], r)
	}
	for suite, rs := range bySuite {
		for i := 1; i < len(rs); i++ {
			if rs[i].K != rs[i-1].K+1 {
				t.Fatalf("%v: rows out of order", suite)
			}
		}
		// Reduction is not monotone in k (representatives change
		// identity between cuts), but every subset must save time and
		// the densest cut must save less than the sparsest possible.
		for _, r := range rs {
			if r.SimTimeReduction < 1 {
				t.Errorf("%v k=%d: reduction %v < 1", suite, r.K, r.SimTimeReduction)
			}
		}
		// The paper's trade-off: larger subsets predict at least as
		// well on average. Require k=5 to be no worse than 1.5x the
		// k=1 error (errors are small and noisy; the trend matters).
		if rs[4].AvgError > rs[0].AvgError*1.5+0.01 {
			t.Errorf("%v: error at k=5 (%v) much worse than at k=1 (%v)",
				suite, rs[4].AvgError, rs[0].AvgError)
		}
	}
}

func TestSubsetSizeSweepBadK(t *testing.T) {
	if _, err := SubsetSizeSweep(lab(t), 0); err == nil {
		t.Fatal("maxK=0 must error")
	}
}

func TestAblateScoreWeighting(t *testing.T) {
	rows, err := AblateScoreWeighting(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("weighting ablation has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if len(r.WeightedSubset) != 3 || len(r.UnweightedSubset) != 3 {
			t.Errorf("%v: subset sizes wrong", r.Suite)
		}
		if r.Agree != equalStrings(r.WeightedSubset, r.UnweightedSubset) {
			t.Errorf("%v: Agree flag inconsistent", r.Suite)
		}
	}
}

func TestAblatePCSelection(t *testing.T) {
	rows, err := AblatePCSelection(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("PC-selection ablation has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.KaiserPCs < 1 || r.VariancePCs < 1 {
			t.Errorf("%v: degenerate PC counts %d/%d", r.Suite, r.KaiserPCs, r.VariancePCs)
		}
	}
}

func TestClusterWeights(t *testing.T) {
	res := core.SubsetResult{
		Clusters:        [][]string{{"a", "b", "c"}, {"d"}},
		Representatives: []string{"b", "d"},
	}
	w := clusterWeights(res)
	if len(w) != 2 || w[0] != 3 || w[1] != 1 {
		t.Fatalf("clusterWeights = %v, want [3 1]", w)
	}
}

func TestTable9Extended(t *testing.T) {
	tables, err := Table9Extended(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 7 {
		t.Fatalf("extended sensitivity has %d structures, want 7", len(tables))
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		if seen[tb.Structure] {
			t.Fatalf("duplicate structure %q", tb.Structure)
		}
		seen[tb.Structure] = true
		if total := len(tb.High) + len(tb.Medium) + len(tb.Low); total != 43 {
			t.Errorf("%s classifies %d benchmarks", tb.Structure, total)
		}
	}
}

func TestRateSpeedTreeSimilarity(t *testing.T) {
	rows, err := RateSpeedTreeSimilarity(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("tree similarity has %d rows, want 2", len(rows))
	}
	if got := len(rows[0].Families); got != 10 {
		t.Fatalf("INT shares %d families, want 10", got)
	}
	if got := len(rows[1].Families); got != 9 {
		t.Fatalf("FP shares %d families, want 9", got)
	}
	// The paper: the rate INT dendrogram is "very similar" to speed's.
	if rows[0].Correlation < 0.6 {
		t.Errorf("INT rate/speed tree correlation %v, expected strong similarity", rows[0].Correlation)
	}
	for _, r := range rows {
		if r.Correlation < -1 || r.Correlation > 1 {
			t.Errorf("%s: correlation %v out of range", r.Pair, r.Correlation)
		}
	}
}

func TestRateScaling(t *testing.T) {
	rows, err := RateScaling(lab(t), nil, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 benchmarks x 2 copy counts
		t.Fatalf("rate scaling has %d rows, want 8", len(rows))
	}
	eff := map[string]map[int]float64{}
	for _, r := range rows {
		if eff[r.Benchmark] == nil {
			eff[r.Benchmark] = map[int]float64{}
		}
		eff[r.Benchmark][r.Copies] = r.Efficiency
		if r.Copies == 1 && (r.Efficiency < 0.999 || r.Efficiency > 1.001) {
			t.Errorf("%s: single-copy efficiency %v, want 1", r.Benchmark, r.Efficiency)
		}
		if r.Throughput <= 0 {
			t.Errorf("%s x%d: throughput %v", r.Benchmark, r.Copies, r.Throughput)
		}
	}
	// mcf (memory-bound) must scale worse than exchange2 (resident).
	if eff["505.mcf_r"][4] >= eff["548.exchange2_r"][4] {
		t.Errorf("mcf 4-copy efficiency (%v) should be below exchange2's (%v)",
			eff["505.mcf_r"][4], eff["548.exchange2_r"][4])
	}
	if eff["548.exchange2_r"][4] < 0.9 {
		t.Errorf("exchange2 should scale near-linearly, got %v", eff["548.exchange2_r"][4])
	}
}

func TestRateScalingErrors(t *testing.T) {
	if _, err := RateScaling(lab(t), nil, nil); err == nil {
		t.Fatal("no copy counts must error")
	}
	if _, err := RateScaling(lab(t), []string{"nope"}, []int{1}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestMeasurementNoise(t *testing.T) {
	rows, err := MeasurementNoise(lab(t), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("noise analysis has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if len(r.CV) != 6 {
			t.Errorf("%s: %d metrics", r.Benchmark, len(r.CV))
		}
		// Sampling noise must stay far below across-benchmark
		// differences (which span orders of magnitude): a 20% CV cap
		// validates the single-measurement methodology. The slack is
		// consumed almost entirely by near-zero branch metrics, whose
		// absolute wobble is fractions of one MPKI.
		if r.MaxCV > 0.20 {
			t.Errorf("%s: max metric CV %v across replicas, want < 0.20", r.Benchmark, r.MaxCV)
		}
	}
}

func TestMeasurementNoiseErrors(t *testing.T) {
	if _, err := MeasurementNoise(lab(t), nil, 1); err == nil {
		t.Fatal("replicas < 2 must error")
	}
	if _, err := MeasurementNoise(lab(t), []string{"nope"}, 2); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}
