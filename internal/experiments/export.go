package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report bundles every experiment's result into one JSON-serializable
// document, for downstream plotting or regression tracking. Heavy
// in-memory objects (fitted PCA spaces, dendrogram trees) are omitted;
// the rendered forms and the numbers the paper reports are included.
type Report struct {
	Table1 []Table1Row
	Table2 []RangeRow
	Fig1   []StackRow

	Fig2, Fig3, Fig4, RateINT *DendrogramResult

	Table5 []SubsetRow
	Table6 []*ValidationRow

	Fig7, Fig8 *InputSetResult
	Table7     []RepresentativeInput
	RateSpeed  []RateSpeedRow

	Fig9        *ScatterResult
	Fig10DCache *ScatterResult
	Fig10ICache *ScatterResult

	Table8 []DomainRow

	Fig11Planes    []CoverageResult
	Fig11Uncovered []string
	Fig12Coverage  *CoverageResult
	Fig13          *EmergingResult

	Table9 []SensitivityTable

	RateScaling    []RateScalingRow
	TreeSimilarity []TreeSimilarityRow

	AblationLinkage   []LinkageRow
	AblationWeighting []WeightingRow
	AblationPCs       []PCSelectionRow
	SubsetSweep       []SubsetSizeRow
}

// BuildReport runs every experiment (and ablation) on the lab.
func BuildReport(lab *Lab) (*Report, error) {
	r := &Report{}
	var err error
	if r.Table1, err = Table1(lab); err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	if r.Table2, err = Table2(lab); err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	if r.Fig1, err = Fig1(lab); err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	if r.Fig2, err = Fig2(lab); err != nil {
		return nil, fmt.Errorf("fig2: %w", err)
	}
	if r.Fig3, err = Fig3(lab); err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	if r.Fig4, err = Fig4(lab); err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	if r.RateINT, err = RateINTDendrogram(lab); err != nil {
		return nil, fmt.Errorf("rate-int dendrogram: %w", err)
	}
	if r.Table5, err = Table5(lab); err != nil {
		return nil, fmt.Errorf("table5: %w", err)
	}
	if r.Table6, err = Table6(lab); err != nil {
		return nil, fmt.Errorf("table6: %w", err)
	}
	if r.Fig7, err = Fig7(lab); err != nil {
		return nil, fmt.Errorf("fig7: %w", err)
	}
	if r.Fig8, err = Fig8(lab); err != nil {
		return nil, fmt.Errorf("fig8: %w", err)
	}
	if r.Table7, err = Table7(lab); err != nil {
		return nil, fmt.Errorf("table7: %w", err)
	}
	if r.RateSpeed, err = RateSpeed(lab); err != nil {
		return nil, fmt.Errorf("ratespeed: %w", err)
	}
	if r.Fig9, err = Fig9(lab); err != nil {
		return nil, fmt.Errorf("fig9: %w", err)
	}
	if r.Fig10DCache, r.Fig10ICache, err = Fig10(lab); err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	if r.Table8, err = Table8(lab); err != nil {
		return nil, fmt.Errorf("table8: %w", err)
	}
	if r.Fig11Planes, r.Fig11Uncovered, err = Fig11(lab); err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	if r.Fig12Coverage, _, err = Fig12(lab); err != nil {
		return nil, fmt.Errorf("fig12: %w", err)
	}
	if r.Fig13, err = Fig13(lab); err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}
	if r.Table9, err = Table9(lab); err != nil {
		return nil, fmt.Errorf("table9: %w", err)
	}
	if r.AblationLinkage, err = AblateLinkage(lab); err != nil {
		return nil, fmt.Errorf("ablation-linkage: %w", err)
	}
	if r.AblationWeighting, err = AblateScoreWeighting(lab); err != nil {
		return nil, fmt.Errorf("ablation-weighting: %w", err)
	}
	if r.AblationPCs, err = AblatePCSelection(lab); err != nil {
		return nil, fmt.Errorf("ablation-pcs: %w", err)
	}
	if r.SubsetSweep, err = SubsetSizeSweep(lab, 6); err != nil {
		return nil, fmt.Errorf("subset-sweep: %w", err)
	}
	if r.RateScaling, err = RateScaling(lab, nil, []int{1, 2, 4, 8}); err != nil {
		return nil, fmt.Errorf("rate-scaling: %w", err)
	}
	if r.TreeSimilarity, err = RateSpeedTreeSimilarity(lab); err != nil {
		return nil, fmt.Errorf("tree-similarity: %w", err)
	}
	return r, nil
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("experiments: encoding report: %w", err)
	}
	return nil
}
