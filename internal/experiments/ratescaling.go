package experiments

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// RateScalingRow reports one benchmark's SPECrate-style throughput
// scaling at one copy count on the Skylake machine.
type RateScalingRow struct {
	Benchmark string
	Copies    int
	// Throughput is aggregate instructions per cycle.
	Throughput float64
	// Efficiency is Throughput / (copies * single-copy throughput):
	// 1 = perfect scaling.
	Efficiency float64
	// L3MPKIPerCopy is the first copy's LLC misses per kilo
	// instruction — the contention signal.
	L3MPKIPerCopy float64
}

// RateScalingBenchmarks are the default subjects: the suite's
// memory-bound extreme (mcf), a streaming grid code (lbm), a
// cache-resident code (exchange2), and a compute-bound code (x264).
var RateScalingBenchmarks = []string{
	"505.mcf_r", "519.lbm_r", "548.exchange2_r", "525.x264_r",
}

// RateScaling extends the paper's single-copy rate/speed analysis
// (Section IV-D) with what the real SPECrate harness does: run
// multiple concurrent copies. Copies share the LLC and memory;
// benchmarks whose per-copy working set fits the shared LLC only when
// alone (mcf) lose throughput per copy, while cache-resident
// benchmarks scale linearly.
func RateScaling(lab *Lab, benchmarks []string, copies []int) ([]RateScalingRow, error) {
	if len(copies) == 0 {
		return nil, fmt.Errorf("experiments: no copy counts")
	}
	if benchmarks == nil {
		benchmarks = RateScalingBenchmarks
	}
	fleet, err := lab.Fleet()
	if err != nil {
		return nil, err
	}
	var sky *machine.Machine
	for _, m := range fleet {
		if m.Name() == refMachineName {
			sky = m
		}
	}
	if sky == nil {
		return nil, fmt.Errorf("experiments: reference machine %q not in fleet", refMachineName)
	}

	opts := machine.RunOptions{Instructions: 60_000, WarmupInstructions: 15_000}
	var rows []RateScalingRow
	for _, name := range benchmarks {
		p, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		single, err := lab.RunStoredMulti(sky, p.Workload(), 1, opts)
		if err != nil {
			return nil, err
		}
		for _, n := range copies {
			mc := single
			if n != 1 {
				mc, err = lab.RunStoredMulti(sky, p.Workload(), n, opts)
				if err != nil {
					return nil, err
				}
			}
			first := mc.PerCopy[0]
			rows = append(rows, RateScalingRow{
				Benchmark:     name,
				Copies:        n,
				Throughput:    mc.Throughput,
				Efficiency:    mc.ScalingEfficiency(single.Throughput),
				L3MPKIPerCopy: float64(first.Cache.L3Misses) / float64(first.Instructions) * 1e3,
			})
		}
	}
	return rows, nil
}
