package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Descriptor names one experiment of the suite: a stable id (the
// spec17 -exp spelling), a human title, a coarse kind, and a runner
// producing the experiment's JSON-serializable result from a Lab.
//
// The registry is the single source of truth for experiment identity:
// cmd/spec17 resolves -exp ids against it, the spec17d server builds
// its catalog, 404 bodies, and cache keys from it, and BuildReport
// covers the same set.
type Descriptor struct {
	// ID is the stable experiment identifier, e.g. "table5" or
	// "ablation-linkage". IDs are lowercase and never reused.
	ID string `json:"id"`
	// Title is the human-readable name, e.g. the paper's caption.
	Title string `json:"title"`
	// Kind classifies the experiment: "table", "figure", "section",
	// "ablation", or "extension".
	Kind string `json:"kind"`
	// Run computes the experiment on the lab. The result marshals to
	// JSON; its concrete type is the experiment's row/result type.
	Run func(*Lab) (any, error) `json:"-"`
}

// Composite results for experiments whose functions return multiple
// values; the registry (and the server) need one JSON document each.
type (
	// Fig10Result pairs the data-cache and instruction-cache PC spaces.
	Fig10Result struct {
		DCache *ScatterResult
		ICache *ScatterResult
	}
	// Fig11Result bundles the coverage planes with the CPU2006
	// benchmarks CPU2017 leaves uncovered.
	Fig11Result struct {
		Planes    []CoverageResult
		Uncovered []string
	}
	// Fig12Result bundles the power-space coverage with its scatter.
	Fig12Result struct {
		Coverage *CoverageResult
		Scatter  *ScatterResult
	}
)

// registry lists every experiment in presentation order: the paper's
// tables and figures first, then the ablations and extensions.
var registry = []Descriptor{
	{"table1", "Table I: dynamic instruction count, instruction mix, and CPI (Skylake)", "table",
		func(l *Lab) (any, error) { return Table1(l) }},
	{"table2", "Table II: metric ranges per sub-suite (Skylake)", "table",
		func(l *Lab) (any, error) { return Table2(l) }},
	{"fig1", "Figure 1: CPI stacks of the SPECrate benchmarks (Skylake)", "figure",
		func(l *Lab) (any, error) { return Fig1(l) }},
	{"fig2", "Figure 2: SPECspeed INT dendrogram", "figure",
		func(l *Lab) (any, error) { return Fig2(l) }},
	{"fig3", "Figure 3: SPECspeed FP dendrogram", "figure",
		func(l *Lab) (any, error) { return Fig3(l) }},
	{"fig4", "Figure 4: SPECrate FP dendrogram", "figure",
		func(l *Lab) (any, error) { return Fig4(l) }},
	{"table5", "Table V: representative 3-benchmark subsets", "table",
		func(l *Lab) (any, error) { return Table5(l) }},
	{"fig5", "Figure 5: INT subset validation", "figure",
		func(l *Lab) (any, error) { return Fig5(l) }},
	{"fig6", "Figure 6: FP subset validation", "figure",
		func(l *Lab) (any, error) { return Fig6(l) }},
	{"table6", "Table VI: identified subsets vs random subsets", "table",
		func(l *Lab) (any, error) { return Table6(l) }},
	{"fig7", "Figure 7: INT input-set similarity", "figure",
		func(l *Lab) (any, error) { return Fig7(l) }},
	{"fig8", "Figure 8: FP input-set similarity", "figure",
		func(l *Lab) (any, error) { return Fig8(l) }},
	{"table7", "Table VII: representative input sets", "table",
		func(l *Lab) (any, error) { return Table7(l) }},
	{"ratespeed", "Section IV-D: rate vs speed similarity", "section",
		func(l *Lab) (any, error) { return RateSpeed(l) }},
	{"fig9", "Figure 9: CPU2017 in the branch-behaviour PC space", "figure",
		func(l *Lab) (any, error) { return Fig9(l) }},
	{"fig10", "Figure 10: data-cache and instruction-cache PC spaces", "figure",
		func(l *Lab) (any, error) {
			dc, ic, err := Fig10(l)
			if err != nil {
				return nil, err
			}
			return &Fig10Result{DCache: dc, ICache: ic}, nil
		}},
	{"table8", "Table VIII: application domains and covering benchmarks", "table",
		func(l *Lab) (any, error) { return Table8(l) }},
	{"fig11", "Figure 11: CPU2017 vs CPU2006 workload-space coverage", "figure",
		func(l *Lab) (any, error) {
			planes, uncovered, err := Fig11(l)
			if err != nil {
				return nil, err
			}
			return &Fig11Result{Planes: planes, Uncovered: uncovered}, nil
		}},
	{"fig12", "Figure 12: power-characteristic PC space (RAPL machines)", "figure",
		func(l *Lab) (any, error) {
			cov, scatter, err := Fig12(l)
			if err != nil {
				return nil, err
			}
			return &Fig12Result{Coverage: cov, Scatter: scatter}, nil
		}},
	{"fig13", "Figure 13: CPU2017 vs EDA, graph, and database workloads", "figure",
		func(l *Lab) (any, error) { return Fig13(l) }},
	{"table9", "Table IX: sensitivity to branch predictor, L1 D-cache, and D-TLB configuration", "table",
		func(l *Lab) (any, error) { return Table9(l) }},
	{"ablation-linkage", "Ablation: linkage method vs subset quality", "ablation",
		func(l *Lab) (any, error) { return AblateLinkage(l) }},
	{"ablation-weighting", "Ablation: sqrt-eigenvalue weighting of PC scores", "ablation",
		func(l *Lab) (any, error) { return AblateScoreWeighting(l) }},
	{"ablation-pcs", "Ablation: Kaiser criterion vs 90% variance target", "ablation",
		func(l *Lab) (any, error) { return AblatePCSelection(l) }},
	{"subset-sweep", "Subset-size sweep: validation error and time saving vs k", "ablation",
		func(l *Lab) (any, error) { return SubsetSizeSweep(l, 6) }},
	{"table9-extended", "Extended sensitivity: all hardware structures", "extension",
		func(l *Lab) (any, error) { return Table9Extended(l) }},
	{"rate-scaling", "SPECrate scaling: throughput vs concurrent copies", "extension",
		func(l *Lab) (any, error) { return RateScaling(l, nil, []int{1, 2, 4, 8}) }},
	{"tree-similarity", "Dendrogram similarity: rate vs speed (cophenetic correlation)", "extension",
		func(l *Lab) (any, error) { return RateSpeedTreeSimilarity(l) }},
	{"noise", "Sampling noise: metric variation across independent trace samples", "extension",
		func(l *Lab) (any, error) { return MeasurementNoise(l, nil, 5) }},
}

// Registry returns every experiment descriptor in presentation order
// (paper artifacts first, then ablations and extensions). The returned
// slice is a copy; callers may reorder it freely.
func Registry() []Descriptor {
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	return out
}

// Lookup resolves an experiment id. Ids are matched exactly (they are
// already lowercase).
func Lookup(id string) (Descriptor, bool) {
	for _, d := range registry {
		if d.ID == id {
			return d, true
		}
	}
	return Descriptor{}, false
}

// IDs returns every experiment id in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.ID
	}
	return out
}

// SortedIDs returns every experiment id in lexicographic order — the
// spelling both cmd/spec17's unknown-id error and the server's 404
// body use.
func SortedIDs() []string {
	out := IDs()
	sort.Strings(out)
	return out
}

// UnknownIDError describes an unknown experiment id, naming every
// valid id in sorted order. cmd/spec17 prints it; the spec17d server
// returns the same information as its 404 body.
func UnknownIDError(id string) error {
	return fmt.Errorf("unknown experiment %q (valid ids: %s)",
		id, strings.Join(SortedIDs(), ", "))
}
