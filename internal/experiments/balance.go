package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// ScatterResult is one PC-space scatter plot (Figures 9, 10, 12).
type ScatterResult struct {
	Labels []string
	Points []stats.Point
	// PCX/PCY are the plotted components (0-based); DominantX/Y name
	// the metrics dominating each axis, as the paper annotates.
	PCX, PCY             int
	DominantX, DominantY []string
	VarCovered           float64
	Similarity           *core.Similarity
}

func scatterFor(lab *Lab, labels []string, metrics []counters.Metric,
	machines []string, pcx, pcy int) (*ScatterResult, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	sub, err := c.Select(labels)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultSimilarityOptions()
	opts.Metrics = metrics
	opts.Machines = machines
	sim, err := sub.SimilarityCtx(lab.Context(), opts)
	if err != nil {
		return nil, err
	}
	pts, err := sim.ScatterPoints(pcx, pcy)
	if err != nil {
		return nil, err
	}
	covered := 0.0
	if pcy < len(sim.PCA.CumVarExplained) {
		covered = sim.PCA.CumVarExplained[maxInt(pcx, pcy)]
	}
	return &ScatterResult{
		Labels: sim.Labels, Points: pts,
		PCX: pcx, PCY: pcy,
		DominantX:  sim.DominantColumns(pcx, 3),
		DominantY:  sim.DominantColumns(pcy, 3),
		VarCovered: covered,
		Similarity: sim,
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func cpu2017Labels() []string {
	var out []string
	for _, p := range workloads.CPU2017() {
		out = append(out, p.Name)
	}
	return out
}

func cpu2006Labels() []string {
	var out []string
	for _, p := range workloads.CPU2006() {
		out = append(out, p.Name)
	}
	return out
}

// Fig9 reproduces Figure 9: all 43 CPU2017 benchmarks in the PC space
// of the branch metrics.
func Fig9(lab *Lab) (*ScatterResult, error) {
	return scatterFor(lab, cpu2017Labels(), counters.BranchMetrics(), nil, 0, 1)
}

// Fig10 reproduces Figure 10: the data-cache (a) and instruction-cache
// (b) PC scatters of the CPU2017 benchmarks.
func Fig10(lab *Lab) (dcache, icache *ScatterResult, err error) {
	dcache, err = scatterFor(lab, cpu2017Labels(), counters.DCacheMetrics(), nil, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	icache, err = scatterFor(lab, cpu2017Labels(), counters.ICacheMetrics(), nil, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	return dcache, icache, nil
}

// TopByMetric returns the n labels with the largest value of one
// Skylake metric — used to verify the paper's Figure 9/10 callouts
// ("leela and mcf suffer the highest branch misprediction rates").
func TopByMetric(lab *Lab, labels []string, metric counters.Metric, n int) ([]string, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	type lv struct {
		label string
		v     float64
	}
	var vals []lv
	for _, l := range labels {
		s, err := c.Sample(l, machine.Skylake)
		if err != nil {
			return nil, err
		}
		v, err := s.Value(metric)
		if err != nil {
			return nil, err
		}
		vals = append(vals, lv{l, v})
	}
	sort.Slice(vals, func(i, j int) bool {
		if vals[i].v != vals[j].v {
			return vals[i].v > vals[j].v
		}
		return vals[i].label < vals[j].label
	})
	if n > len(vals) {
		n = len(vals)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = vals[i].label
	}
	return out, nil
}

// DomainRow is one row of Table VIII: an application domain and the
// benchmarks that must be run to cover its performance spectrum.
type DomainRow struct {
	Domain workloads.Domain
	// Members are all CPU2017 benchmarks in the domain.
	Members []string
	// Recommended are the benchmarks to run: the rate version when
	// rate and speed behave alike, both versions when they diverge.
	Recommended []string
}

// Table8 reproduces Table VIII: the domain classification with the
// benchmarks that cover each domain's spectrum.
func Table8(lab *Lab) ([]DomainRow, error) {
	rs, err := RateSpeed(lab)
	if err != nil {
		return nil, err
	}
	divergent := make(map[string]bool)
	for _, r := range rs {
		divergent[r.Base] = r.Divergent
	}
	byDomain := make(map[workloads.Domain][]workloads.Profile)
	for _, p := range workloads.CPU2017() {
		byDomain[p.Domain] = append(byDomain[p.Domain], p)
	}
	var domains []workloads.Domain
	for d := range byDomain {
		domains = append(domains, d)
	}
	sort.Slice(domains, func(i, j int) bool { return domains[i] < domains[j] })

	var rows []DomainRow
	for _, d := range domains {
		row := DomainRow{Domain: d}
		byBase := make(map[string][]workloads.Profile)
		for _, p := range byDomain[d] {
			row.Members = append(row.Members, p.Name)
			byBase[p.Base] = append(byBase[p.Base], p)
		}
		sort.Strings(row.Members)
		var bases []string
		for b := range byBase {
			bases = append(bases, b)
		}
		sort.Strings(bases)
		for _, b := range bases {
			versions := byBase[b]
			if len(versions) == 1 {
				row.Recommended = append(row.Recommended, versions[0].Name)
				continue
			}
			// Prefer the (shorter-running) rate version; add the speed
			// version only when the pair diverges.
			var rate, speed string
			for _, v := range versions {
				if v.Suite == workloads.RateINT || v.Suite == workloads.RateFP {
					rate = v.Name
				} else {
					speed = v.Name
				}
			}
			row.Recommended = append(row.Recommended, rate)
			if divergent[b] && speed != "" {
				row.Recommended = append(row.Recommended, speed)
			}
		}
		sort.Strings(row.Recommended)
		rows = append(rows, row)
	}
	return rows, nil
}

// CoverageResult is the Figure 11 (or Figure 12) comparison of the
// CPU2017 and CPU2006 workload spaces.
type CoverageResult struct {
	// Plane names the PC pair ("PC1-PC2" or "PC3-PC4").
	Plane string
	// Area2017 and Area2006 are the convex-hull areas of each suite.
	Area2017, Area2006 float64
	// FracOutside is the fraction of CPU2017 points outside the
	// CPU2006 hull.
	FracOutside            float64
	Points2017, Points2006 []stats.Point
	Labels2017, Labels2006 []string
}

// Fig11 reproduces Figure 11: the joint PCA of CPU2017 and CPU2006
// over all Table III metrics, compared on the PC1-PC2 and PC3-PC4
// planes, plus the list of removed CPU2006 benchmarks whose behaviour
// CPU2017 does not cover.
func Fig11(lab *Lab) (planes []CoverageResult, uncovered []string, err error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, nil, err
	}
	l2017, l2006 := cpu2017Labels(), cpu2006Labels()
	joint, err := c.Select(append(append([]string{}, l2017...), l2006...))
	if err != nil {
		return nil, nil, err
	}
	sim, err := joint.SimilarityCtx(lab.Context(), core.DefaultSimilarityOptions())
	if err != nil {
		return nil, nil, err
	}
	for _, pcs := range [][2]int{{0, 1}, {2, 3}} {
		pts, err := sim.ScatterPoints(pcs[0], pcs[1])
		if err != nil {
			return nil, nil, err
		}
		res := CoverageResult{Plane: fmt.Sprintf("PC%d-PC%d", pcs[0]+1, pcs[1]+1)}
		for i, l := range sim.Labels {
			if i < len(l2017) {
				res.Points2017 = append(res.Points2017, pts[i])
				res.Labels2017 = append(res.Labels2017, l)
			} else {
				res.Points2006 = append(res.Points2006, pts[i])
				res.Labels2006 = append(res.Labels2006, l)
			}
		}
		res.Area2017 = stats.HullArea(res.Points2017)
		res.Area2006 = stats.HullArea(res.Points2006)
		res.FracOutside = stats.FractionOutside(res.Points2017, res.Points2006)
		planes = append(planes, res)
	}

	// Coverage, the paper's way ("using PCA and hierarchical
	// clustering ... we identify those CPU2006 benchmarks whose
	// performance characteristics are not covered"): cluster the joint
	// set and flag CPU2006 programs whose cluster contains no CPU2017
	// member AND whose nearest CPU2017 benchmark is farther than the
	// suites' typical internal spacing (the 75th percentile of
	// CPU2017's own unrelated nearest-neighbour distances, scaled).
	// All 29 CPU2006 programs are evaluated — the paper finds the
	// carried-over 429.mcf uncovered too, because its 2017 namesake
	// behaves differently.
	_, dist, err := sim.NearestNeighbor(l2006, l2017)
	if err != nil {
		return nil, nil, err
	}
	scale, err := unrelatedNNScale(sim, l2017)
	if err != nil {
		return nil, nil, err
	}
	is2017 := make(map[string]bool, len(l2017))
	for _, l := range l2017 {
		is2017[l] = true
	}
	// Cut to ~2.8 benchmarks per cluster — fine enough that genuinely
	// novel behaviour isolates, coarse enough that near-misses stay
	// attached to a CPU2017 cluster.
	k := (len(l2017) + len(l2006)) * 36 / 100
	for _, cl := range sim.Subset(k).Clusters {
		has2017 := false
		for _, member := range cl {
			if is2017[member] {
				has2017 = true
				break
			}
		}
		if has2017 {
			continue
		}
		for _, member := range cl {
			if dist[member] > scale*0.75 {
				uncovered = append(uncovered, member)
			}
		}
	}
	sort.Strings(uncovered)
	return planes, uncovered, nil
}

// unrelatedNNScale returns the 75th percentile of the distances from
// each CPU2017 benchmark to its nearest different-family CPU2017
// benchmark.
func unrelatedNNScale(sim *core.Similarity, l2017 []string) (float64, error) {
	baseOf := make(map[string]string, len(l2017))
	for _, l := range l2017 {
		p, err := workloads.ByName(l)
		if err != nil {
			return 0, err
		}
		baseOf[l] = p.Base
	}
	var nns []float64
	for _, q := range l2017 {
		best := -1.0
		for _, c := range l2017 {
			if c == q || baseOf[c] == baseOf[q] {
				continue
			}
			d, err := sim.EuclideanDistance(q, c)
			if err != nil {
				return 0, err
			}
			if best < 0 || d < best {
				best = d
			}
		}
		nns = append(nns, best)
	}
	sort.Float64s(nns)
	return nns[len(nns)*3/4], nil
}

// Fig12 reproduces Figure 12: the power-metric PC space of CPU2017
// versus CPU2006, measured on the three RAPL-capable Intel machines.
func Fig12(lab *Lab) (*CoverageResult, *ScatterResult, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, nil, err
	}
	l2017, l2006 := cpu2017Labels(), cpu2006Labels()
	all := append(append([]string{}, l2017...), l2006...)
	joint, err := c.Select(all)
	if err != nil {
		return nil, nil, err
	}
	raplMachines := []string{machine.Skylake, machine.Broadwell, machine.Ivybridge}
	opts := core.DefaultSimilarityOptions()
	opts.Metrics = counters.PowerMetrics()
	opts.Machines = raplMachines
	sim, err := joint.SimilarityCtx(lab.Context(), opts)
	if err != nil {
		return nil, nil, err
	}
	pts, err := sim.ScatterPoints(0, 1)
	if err != nil {
		return nil, nil, err
	}
	cov := &CoverageResult{Plane: "PC1-PC2 (power)"}
	for i, l := range sim.Labels {
		if i < len(l2017) {
			cov.Points2017 = append(cov.Points2017, pts[i])
			cov.Labels2017 = append(cov.Labels2017, l)
		} else {
			cov.Points2006 = append(cov.Points2006, pts[i])
			cov.Labels2006 = append(cov.Labels2006, l)
		}
	}
	cov.Area2017 = stats.HullArea(cov.Points2017)
	cov.Area2006 = stats.HullArea(cov.Points2006)
	cov.FracOutside = stats.FractionOutside(cov.Points2017, cov.Points2006)
	scatter := &ScatterResult{
		Labels: sim.Labels, Points: pts, PCX: 0, PCY: 1,
		DominantX:  sim.DominantColumns(0, 3),
		DominantY:  sim.DominantColumns(1, 3),
		VarCovered: sim.PCA.CumVarExplained[1],
		Similarity: sim,
	}
	return cov, scatter, nil
}

// EmergingResult is the Figure 13 analysis: CPU2017 versus EDA, graph,
// and database workloads in one dendrogram.
type EmergingResult struct {
	Similarity *core.Similarity `json:"-"`
	Rendered   string
	// NearestCPU2017 maps each emerging workload to its closest
	// CPU2017 benchmark and that distance, normalized by the median
	// pairwise distance (values >> 1 mean "not covered").
	NearestCPU2017 map[string]string
	NormDistance   map[string]float64
}

// Fig13 reproduces Figure 13: similarity among CPU2017, EDA, graph
// analytics, and database workloads.
func Fig13(lab *Lab) (*EmergingResult, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	l2017 := cpu2017Labels()
	var emerging []string
	for _, p := range workloads.Emerging() {
		emerging = append(emerging, p.Name)
	}
	joint, err := c.Select(append(append([]string{}, l2017...), emerging...))
	if err != nil {
		return nil, err
	}
	sim, err := joint.SimilarityCtx(lab.Context(), core.DefaultSimilarityOptions())
	if err != nil {
		return nil, err
	}
	nearest, dist, err := sim.NearestNeighbor(emerging, l2017)
	if err != nil {
		return nil, err
	}
	med, err := sim.MedianPairwiseDistance(sim.Labels)
	if err != nil {
		return nil, err
	}
	norm := make(map[string]float64, len(dist))
	for l, d := range dist {
		norm[l] = d / med
	}
	return &EmergingResult{
		Similarity:     sim,
		Rendered:       sim.Dendrogram.Render(60),
		NearestCPU2017: nearest,
		NormDistance:   norm,
	}, nil
}

// SensitivityTable is the Table IX reproduction: per structure, the
// benchmarks in each sensitivity class.
type SensitivityTable struct {
	// Structure names the varied hardware structure.
	Structure string
	Metric    counters.Metric
	High      []string
	Medium    []string
	Low       []string
}

// Table9 reproduces Table IX: CPU2017 benchmark sensitivity to branch
// predictor, L1 D-cache, and L1 D-TLB configuration across the four
// most architecturally diverse machines.
func Table9(lab *Lab) ([]SensitivityTable, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	sub, err := c.Select(cpu2017Labels())
	if err != nil {
		return nil, err
	}
	sens, err := machine.SensitivityFleet()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, m := range sens {
		names = append(names, m.Name())
	}
	structures := []struct {
		name   string
		metric counters.Metric
	}{
		{"Branch Prediction", counters.BranchMPKI},
		{"L1 D-cache", counters.L1DMPKI},
		{"L1 D-TLB", counters.DTLBMPMI},
	}
	var tables []SensitivityTable
	for _, st := range structures {
		res, err := sub.Sensitivity(st.metric, names)
		if err != nil {
			return nil, err
		}
		tables = append(tables, SensitivityTable{
			Structure: st.name,
			Metric:    st.metric,
			High:      res.Labels(core.HighSensitivity),
			Medium:    res.Labels(core.MediumSensitivity),
			Low:       res.Labels(core.LowSensitivity),
		})
	}
	return tables, nil
}

// Table9Extended runs the sensitivity classification over every
// Table III hardware-structure metric, not just the three the paper
// prints — an extension for studies targeting L2/L3 or the
// instruction side.
func Table9Extended(lab *Lab) ([]SensitivityTable, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	sub, err := c.Select(cpu2017Labels())
	if err != nil {
		return nil, err
	}
	sens, err := machine.SensitivityFleet()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, m := range sens {
		names = append(names, m.Name())
	}
	structures := []struct {
		name   string
		metric counters.Metric
	}{
		{"Branch Prediction", counters.BranchMPKI},
		{"L1 D-cache", counters.L1DMPKI},
		{"L1 I-cache", counters.L1IMPKI},
		{"L2 cache", counters.L2DMPKI},
		{"Last-level cache", counters.L3MPKI},
		{"L1 D-TLB", counters.DTLBMPMI},
		{"L1 I-TLB", counters.ITLBMPMI},
	}
	var tables []SensitivityTable
	for _, st := range structures {
		res, err := sub.Sensitivity(st.metric, names)
		if err != nil {
			return nil, err
		}
		tables = append(tables, SensitivityTable{
			Structure: st.name,
			Metric:    st.metric,
			High:      res.Labels(core.HighSensitivity),
			Medium:    res.Labels(core.MediumSensitivity),
			Low:       res.Labels(core.LowSensitivity),
		})
	}
	return tables, nil
}

// RenderScatter draws a PC scatter as an ASCII grid.
func RenderScatter(r *ScatterResult, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 10 {
		height = 10
	}
	minX, maxX := r.Points[0].X, r.Points[0].X
	minY, maxY := r.Points[0].Y, r.Points[0].Y
	for _, p := range r.Points {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = bytesRepeat(' ', width)
	}
	for i, p := range r.Points {
		x := int((p.X - minX) / (maxX - minX) * float64(width-1))
		y := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - y
		mark := byte('a' + i%26)
		if i >= 26 {
			mark = byte('A' + (i-26)%26)
		}
		grid[row][x] = mark
	}
	var b strings.Builder
	fmt.Fprintf(&b, "PC%d (x) dominated by %v; PC%d (y) dominated by %v\n",
		r.PCX+1, r.DominantX, r.PCY+1, r.DominantY)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	for i, l := range r.Labels {
		mark := byte('a' + i%26)
		if i >= 26 {
			mark = byte('A' + (i-26)%26)
		}
		fmt.Fprintf(&b, "  %c=%s", mark, l)
		if (i+1)%4 == 0 {
			b.WriteByte('\n')
		}
	}
	b.WriteByte('\n')
	return b.String()
}
