package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/counters"
	"repro/internal/cpistack"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// Table1Row is one line of Table I: the Skylake-measured dynamic
// characteristics of a CPU2017 benchmark.
type Table1Row struct {
	Name      string
	Suite     workloads.Suite
	ICountB   float64 // published full-run count, billions
	PctLoad   float64
	PctStore  float64
	PctBranch float64
	CPI       float64
	PaperCPI  float64 // Table I's value, for side-by-side comparison
}

// Table1 reproduces Table I: instruction mix and CPI of all 43
// CPU2017 benchmarks measured on the Skylake machine.
func Table1(lab *Lab) ([]Table1Row, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	paperCPI := paperCPIByName()
	var rows []Table1Row
	for _, p := range workloads.CPU2017() {
		s, err := c.Sample(p.Name, machine.Skylake)
		if err != nil {
			return nil, err
		}
		rc, err := c.Raw(p.Name, machine.Skylake)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name: p.Name, Suite: p.Suite, ICountB: p.DynInstrBillions,
			PctLoad:   s.MustValue(counters.PctLoad),
			PctStore:  s.MustValue(counters.PctStore),
			PctBranch: s.MustValue(counters.PctBranch),
			CPI:       rc.CPI,
			PaperCPI:  paperCPI[p.Name],
		})
	}
	return rows, nil
}

// paperCPIByName returns Table I's published CPI values.
func paperCPIByName() map[string]float64 {
	return map[string]float64{
		"600.perlbench_s": 0.42, "602.gcc_s": 0.58, "605.mcf_s": 1.22,
		"620.omnetpp_s": 1.21, "623.xalancbmk_s": 0.86, "625.x264_s": 0.36,
		"631.deepsjeng_s": 0.55, "641.leela_s": 0.80, "648.exchange2_s": 0.41,
		"657.xz_s":        1.00,
		"500.perlbench_r": 0.42, "502.gcc_r": 0.59, "505.mcf_r": 1.16,
		"520.omnetpp_r": 1.39, "523.xalancbmk_r": 0.86, "525.x264_r": 0.31,
		"531.deepsjeng_r": 0.57, "541.leela_r": 0.81, "548.exchange2_r": 0.41,
		"557.xz_r":     1.22,
		"603.bwaves_s": 0.34, "607.cactubSSN_s": 0.68, "619.lbm_s": 0.87,
		"621.wrf_s": 0.77, "627.cam4_s": 0.68, "628.pop2_s": 0.48,
		"638.imagick_s": 1.17, "644.nab_s": 0.68, "649.fotonik3d_s": 0.78,
		"654.roms_s":   0.52,
		"503.bwaves_r": 0.42, "507.cactubSSN_r": 0.69, "508.namd_r": 0.41,
		"510.parest_r": 0.48, "511.povray_r": 0.42, "519.lbm_r": 0.53,
		"521.wrf_r": 0.81, "526.blender_r": 0.53, "527.cam4_r": 0.56,
		"538.imagick_r": 0.90, "544.nab_r": 0.69, "549.fotonik3d_r": 0.96,
		"554.roms_r": 0.48,
	}
}

// RangeRow is one cell group of Table II: the min-max span of a metric
// within one sub-suite.
type RangeRow struct {
	Metric counters.Metric
	Suite  workloads.Suite
	Min    float64
	Max    float64
}

// Table2 reproduces Table II: per-sub-suite ranges of the key Skylake
// metrics.
func Table2(lab *Lab) ([]RangeRow, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	metrics := []counters.Metric{
		counters.L1DMPKI, counters.L1IMPKI, counters.L2DMPKI,
		counters.L2IMPKI, counters.L3MPKI, counters.BranchMPKI,
	}
	var rows []RangeRow
	for _, suite := range []workloads.Suite{workloads.RateINT, workloads.SpeedINT, workloads.RateFP, workloads.SpeedFP} {
		labels := SuiteNames(suite)
		for _, m := range metrics {
			min, max, err := c.MetricRange(labels, machine.Skylake, m)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RangeRow{Metric: m, Suite: suite, Min: min, Max: max})
		}
	}
	return rows, nil
}

// StackRow is one bar of Figure 1: a rate benchmark's CPI stack.
type StackRow struct {
	Name  string
	Stack cpistack.Stack
}

// Fig1 reproduces Figure 1: CPI stacks of the 23 SPECrate benchmarks
// on Skylake.
func Fig1(lab *Lab) ([]StackRow, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	var rows []StackRow
	for _, suite := range []workloads.Suite{workloads.RateINT, workloads.RateFP} {
		for _, p := range workloads.BySuite(suite) {
			rc, err := c.Raw(p.Name, machine.Skylake)
			if err != nil {
				return nil, err
			}
			rows = append(rows, StackRow{Name: p.Name, Stack: rc.Stack})
		}
	}
	return rows, nil
}

// RenderStacks draws Figure 1 as a proportional ASCII bar chart.
func RenderStacks(rows []StackRow, width int) string {
	if width < 30 {
		width = 30
	}
	maxCPI := 0.0
	name := 0
	for _, r := range rows {
		if t := r.Stack.Total(); t > maxCPI {
			maxCPI = t
		}
		if len(r.Name) > name {
			name = len(r.Name)
		}
	}
	if maxCPI == 0 {
		return "(no data)\n"
	}
	glyphs := map[string]byte{
		"base": '#', "other": 'o', "frontend": 'f', "bad-spec": 'b',
		"L2": '2', "L3": '3', "memory": 'M',
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s  CPI   0%s%.2f\n", name, "benchmark", strings.Repeat(" ", width-5), maxCPI)
	fmt.Fprintf(&b, "%-*s  (legend: #=base o=other f=frontend b=bad-spec 2=L2 3=L3 M=memory)\n", name, "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %.2f  ", name, r.Name, r.Stack.Total())
		for _, comp := range r.Stack.Components() {
			n := int(comp.Value / maxCPI * float64(width))
			b.Write(bytesRepeat(glyphs[comp.Label], n))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func bytesRepeat(c byte, n int) []byte {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// SortRowsByCPI orders Table 1 rows by descending measured CPI.
func SortRowsByCPI(rows []Table1Row) []Table1Row {
	out := append([]Table1Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return out[i].CPI > out[j].CPI })
	return out
}
