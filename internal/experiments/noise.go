package experiments

import (
	"fmt"
	"math"

	"repro/internal/counters"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// NoiseRow quantifies sampling noise for one benchmark: the
// coefficient of variation of each headline metric across independent
// trace samples (different random streams, same statistical profile).
type NoiseRow struct {
	Benchmark string
	// CV maps metric name to stddev/mean across replicas.
	CV map[string]float64
	// MaxCV is the worst metric's coefficient of variation.
	MaxCV float64
}

// MeasurementNoise replicates the paper's implicit methodological
// assumption — that one measurement per (benchmark, machine) pair
// suffices — by re-measuring benchmarks with independent sampling
// streams and reporting the metric variation. For the similarity
// analysis to be meaningful, this within-benchmark noise must be far
// below the across-benchmark differences the clustering consumes.
func MeasurementNoise(lab *Lab, benchmarks []string, replicas int) ([]NoiseRow, error) {
	if replicas < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 replicas, got %d", replicas)
	}
	if benchmarks == nil {
		benchmarks = []string{"505.mcf_r", "541.leela_r", "525.x264_r", "549.fotonik3d_r"}
	}
	fleet, err := lab.Fleet()
	if err != nil {
		return nil, err
	}
	var sky *machine.Machine
	for _, m := range fleet {
		if m.Name() == refMachineName {
			sky = m
		}
	}
	if sky == nil {
		return nil, fmt.Errorf("experiments: reference machine missing")
	}

	metrics := []counters.Metric{
		counters.L1DMPKI, counters.L2DMPKI, counters.L3MPKI,
		counters.L1IMPKI, counters.BranchMPKI, counters.DTLBMPMI,
	}
	opts := machine.RunOptions{Instructions: 120_000, WarmupInstructions: 30_000}
	var rows []NoiseRow
	for _, name := range benchmarks {
		p, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		values := make(map[string][]float64)
		for rep := 0; rep < replicas; rep++ {
			w := p.Workload()
			w.Key = fmt.Sprintf("%s#rep%d", w.Key, rep)
			rc, err := lab.RunStored(sky, w, opts)
			if err != nil {
				return nil, err
			}
			s, err := counters.FromRaw(sky.Name(), false, rc)
			if err != nil {
				return nil, err
			}
			for _, m := range metrics {
				values[string(m)] = append(values[string(m)], s.MustValue(m))
			}
		}
		row := NoiseRow{Benchmark: name, CV: make(map[string]float64, len(metrics))}
		for _, m := range metrics {
			cv := coefficientOfVariation(values[string(m)])
			row.CV[string(m)] = cv
			if cv > row.MaxCV {
				row.MaxCV = cv
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// coefficientOfVariation regularizes near-zero means with a floor of
// 0.5 (the per-kilo-instruction noise floor used by the sensitivity
// analysis).
func coefficientOfVariation(xs []float64) float64 {
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	sd := 0.0
	for _, x := range xs {
		d := x - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return sd / (mean + 0.5)
}
