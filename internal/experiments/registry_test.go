package experiments

import (
	"sort"
	"strings"
	"testing"
)

func TestRegistryIDsUniqueAndWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, d := range Registry() {
		if d.ID == "" || d.Title == "" || d.Run == nil {
			t.Errorf("descriptor %+v incomplete", d)
		}
		if d.ID != strings.ToLower(d.ID) || strings.ContainsAny(d.ID, " \t") {
			t.Errorf("id %q not lowercase/space-free", d.ID)
		}
		if seen[d.ID] {
			t.Errorf("duplicate id %q", d.ID)
		}
		seen[d.ID] = true
		switch d.Kind {
		case "table", "figure", "section", "ablation", "extension":
		default:
			t.Errorf("id %q has unknown kind %q", d.ID, d.Kind)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, id := range IDs() {
		d, ok := Lookup(id)
		if !ok || d.ID != id {
			t.Errorf("Lookup(%q) = %+v, %v", id, d, ok)
		}
	}
	if _, ok := Lookup("no-such-experiment"); ok {
		t.Error("Lookup accepted an unknown id")
	}
}

func TestSortedIDs(t *testing.T) {
	ids := SortedIDs()
	if !sort.StringsAreSorted(ids) {
		t.Errorf("SortedIDs not sorted: %v", ids)
	}
	if len(ids) != len(IDs()) {
		t.Errorf("SortedIDs dropped ids: %d vs %d", len(ids), len(IDs()))
	}
}

func TestUnknownIDError(t *testing.T) {
	err := UnknownIDError("zzz")
	msg := err.Error()
	if !strings.Contains(msg, `"zzz"`) {
		t.Errorf("error does not name the unknown id: %s", msg)
	}
	for _, id := range []string{"table1", "fig13", "ablation-linkage", "noise"} {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list valid id %q: %s", id, msg)
		}
	}
}

// TestRegistryRunsOnSharedLab runs two cheap registry entries on the
// package test lab, exercising the Run indirection end to end.
func TestRegistryRunsOnSharedLab(t *testing.T) {
	l := lab(t)
	for _, id := range []string{"table2", "ratespeed"} {
		d, ok := Lookup(id)
		if !ok {
			t.Fatalf("Lookup(%q) failed", id)
		}
		res, err := d.Run(l)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res == nil {
			t.Fatalf("%s: nil result", id)
		}
	}
}
