// Package experiments reproduces every table and figure of the
// paper's evaluation. Each experiment is a function taking a *Lab —
// a lazily-built, cached characterization of all workloads on the
// seven-machine fleet — and returning a structured, printable result.
// The per-experiment index in DESIGN.md maps paper artifacts to the
// functions in this package.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workloads"
)

// Lab owns the shared measurement state. The zero value is not usable;
// create with NewLab. All experiments sharing a Lab reuse one fleet
// characterization, so the expensive simulation work happens once.
// The characterization fans the per-machine measurements out across
// goroutines (see core.Characterize; bound it with
// RunOptions.Parallelism) with deterministic results regardless of
// scheduling, and Lab is safe for concurrent use — spec17d serves
// many requests from one Lab.
type Lab struct {
	opts machine.RunOptions

	once  sync.Once
	char  *core.Characterization
	fleet []*machine.Machine
	err   error
}

// NewLab returns a Lab measuring with the given run options (zero
// value = machine defaults: 400k measured instructions per run).
func NewLab(opts machine.RunOptions) *Lab {
	return &Lab{opts: opts}
}

var (
	defaultLab     *Lab
	defaultLabOnce sync.Once
)

// DefaultLab returns the process-wide Lab at default fidelity.
func DefaultLab() *Lab {
	defaultLabOnce.Do(func() {
		defaultLab = NewLab(machine.RunOptions{})
	})
	return defaultLab
}

// Entries returns every characterized workload entry: the primary
// input of all CPU2017, CPU2006, and emerging profiles, plus each
// individual input set of multi-input CPU2017 benchmarks (labelled
// "name-i").
func Entries() []core.Entry {
	var entries []core.Entry
	for _, p := range workloads.All() {
		entries = append(entries, core.Entry{Label: p.Name, Workload: p.Workload()})
		if p.InputSets > 1 {
			for i := 1; i <= p.InputSets; i++ {
				entries = append(entries, core.Entry{
					Label:    p.InputLabel(i),
					Workload: p.WorkloadInput(i),
				})
			}
		}
	}
	return entries
}

// build runs the fleet characterization once.
func (l *Lab) build() {
	l.once.Do(func() {
		fleet, err := machine.Fleet()
		if err != nil {
			l.err = err
			return
		}
		l.fleet = fleet
		l.char, l.err = core.Characterize(Entries(), fleet, l.opts)
	})
}

// Characterization returns the shared fleet characterization.
func (l *Lab) Characterization() (*core.Characterization, error) {
	l.build()
	return l.char, l.err
}

// Fleet returns the seven Table IV machines.
func (l *Lab) Fleet() ([]*machine.Machine, error) {
	l.build()
	return l.fleet, l.err
}

// suiteChar returns the characterization restricted to one CPU2017
// sub-suite's primary inputs.
func (l *Lab) suiteChar(s workloads.Suite) (*core.Characterization, error) {
	c, err := l.Characterization()
	if err != nil {
		return nil, err
	}
	var labels []string
	for _, p := range workloads.BySuite(s) {
		labels = append(labels, p.Name)
	}
	return c.Select(labels)
}

// selectChar returns the characterization restricted to the given
// profiles' primary inputs.
func (l *Lab) selectChar(profiles []workloads.Profile) (*core.Characterization, error) {
	c, err := l.Characterization()
	if err != nil {
		return nil, err
	}
	labels := make([]string, 0, len(profiles))
	for _, p := range profiles {
		labels = append(labels, p.Name)
	}
	return c.Select(labels)
}

// SuiteNames returns the primary-input labels of a sub-suite.
func SuiteNames(s workloads.Suite) []string {
	var out []string
	for _, p := range workloads.BySuite(s) {
		out = append(out, p.Name)
	}
	return out
}

// categoryKey maps a CPU2017 sub-suite to its perfdb submission
// category.
func categoryKey(s workloads.Suite) (string, error) {
	switch s {
	case workloads.SpeedINT:
		return "speed-int", nil
	case workloads.RateINT:
		return "rate-int", nil
	case workloads.SpeedFP:
		return "speed-fp", nil
	case workloads.RateFP:
		return "rate-fp", nil
	default:
		return "", fmt.Errorf("experiments: suite %v has no submission category", s)
	}
}
