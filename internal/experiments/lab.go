// Package experiments reproduces every table and figure of the
// paper's evaluation. Each experiment is a function taking a *Lab —
// a lazily-built, cached characterization of all workloads on the
// seven-machine fleet — and returning a structured, printable result.
// The per-experiment index in DESIGN.md maps paper artifacts to the
// functions in this package.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Lab owns the shared measurement state. The zero value is not usable;
// create with NewLab. All experiments sharing a Lab reuse one fleet
// characterization, so the expensive simulation work happens once.
// The characterization fans the per-machine measurements out across
// goroutines (see core.Characterize; bound it with
// RunOptions.Parallelism) with deterministic results regardless of
// scheduling, and Lab is safe for concurrent use — spec17d serves
// many requests from one Lab.
//
// A Lab is a light handle over shared state, the way http.Request
// carries its Context: WithContext returns a sibling handle whose
// measurements abort when the context does, while the underlying
// characterization stays shared. Backing the Lab with a
// store.Store (NewLabWithStore) makes every measurement
// content-addressed and persistent: overlapping labs never simulate
// the same (machine, workload, options) pair twice, and a lab built
// over a loaded snapshot is warm from its first experiment.
type Lab struct {
	ctx   context.Context // nil means context.Background()
	state *labState
}

// labState is the shared measurement state behind all handles of one
// lab.
type labState struct {
	opts  machine.RunOptions
	store *store.Store  // nil: measure directly
	sched core.Runner   // nil: per-characterization worker pool
	eng   engine.Engine // nil: the exact trace-driven engine

	mu       sync.Mutex
	building chan struct{} // non-nil while one caller characterizes
	done     bool
	char     *core.Characterization
	fleet    []*machine.Machine
	err      error
}

// NewLab returns a Lab measuring with the given run options (zero
// value = machine defaults: 400k measured instructions per run).
func NewLab(opts machine.RunOptions) *Lab {
	return &Lab{state: &labState{opts: opts}}
}

// NewLabWithStore returns a Lab whose measurements go through st.
// A nil store is equivalent to NewLab.
func NewLabWithStore(opts machine.RunOptions, st *store.Store) *Lab {
	return &Lab{state: &labState{opts: opts, store: st}}
}

// NewLabWithSched returns a Lab whose measurements go through st and
// are executed by r — a shared scheduler (sched.Pool via Queue) that
// bounds simulation concurrency process-wide and deduplicates
// in-flight work at the (machine × workload × options) grain across
// every lab sharing it. Nil r is equivalent to NewLabWithStore; nil
// st measures directly (the scheduler still deduplicates in-flight
// submissions).
func NewLabWithSched(opts machine.RunOptions, st *store.Store, r core.Runner) *Lab {
	return &Lab{state: &labState{opts: opts, store: st, sched: r}}
}

// NewLabWithEngine is NewLabWithSched on an explicit measurement
// engine: every measurement the lab makes — the shared fleet
// characterization and the ad-hoc RunStored runs — goes through eng
// and is store-keyed by its tier, so an analytic lab and an exact lab
// backed by the same store never serve each other's records. A nil
// engine measures exactly (identical to NewLabWithSched).
func NewLabWithEngine(opts machine.RunOptions, st *store.Store, r core.Runner, eng engine.Engine) *Lab {
	return &Lab{state: &labState{opts: opts, store: st, sched: r, eng: eng}}
}

// Engine returns the lab's measurement engine (nil means exact).
func (l *Lab) Engine() engine.Engine { return l.state.eng }

// WithContext returns a handle on the same lab whose operations abort
// when ctx is canceled. The underlying characterization is shared:
// a result built through one handle serves every other.
func (l *Lab) WithContext(ctx context.Context) *Lab {
	return &Lab{ctx: ctx, state: l.state}
}

// Context returns the lab handle's context.
func (l *Lab) Context() context.Context {
	if l.ctx != nil {
		return l.ctx
	}
	return context.Background()
}

// Store returns the lab's measurement store (nil when measuring
// directly).
func (l *Lab) Store() *store.Store { return l.state.store }

// Options returns the lab's run options.
func (l *Lab) Options() machine.RunOptions { return l.state.opts }

var (
	defaultLab     *Lab
	defaultLabOnce sync.Once
)

// DefaultLab returns the process-wide Lab at default fidelity.
func DefaultLab() *Lab {
	defaultLabOnce.Do(func() {
		defaultLab = NewLab(machine.RunOptions{})
	})
	return defaultLab
}

// Entries returns every characterized workload entry: the primary
// input of all CPU2017, CPU2006, and emerging profiles, plus each
// individual input set of multi-input CPU2017 benchmarks (labelled
// "name-i").
func Entries() []core.Entry {
	var entries []core.Entry
	for _, p := range workloads.All() {
		entries = append(entries, core.Entry{Label: p.Name, Workload: p.Workload()})
		if p.InputSets > 1 {
			for i := 1; i <= p.InputSets; i++ {
				entries = append(entries, core.Entry{
					Label:    p.InputLabel(i),
					Workload: p.WorkloadInput(i),
				})
			}
		}
	}
	return entries
}

// build runs the fleet characterization once, coalescing concurrent
// callers onto one leader. A build aborted by the leader's context is
// NOT cached as the lab's result — the next caller (or a waiter whose
// own context is still live) takes over and rebuilds, cheaply when a
// store holds the pairs the aborted build already measured.
func (l *Lab) build() (*core.Characterization, []*machine.Machine, error) {
	s := l.state
	ctx := l.Context()
	for {
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			return s.char, s.fleet, s.err
		}
		if s.building != nil {
			ch := s.building
			s.mu.Unlock()
			select {
			case <-ch:
				continue // leader finished or aborted; re-check
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		ch := make(chan struct{})
		s.building = ch
		s.mu.Unlock()

		fleet, err := machine.Fleet()
		var char *core.Characterization
		if err == nil {
			// Only the leader carries a characterize span; waiters that
			// coalesced onto this build share the result, not the spans.
			cctx, span := telemetry.StartSpan(ctx, "characterize",
				"entries", fmt.Sprintf("%d", len(Entries())),
				"machines", fmt.Sprintf("%d", len(fleet)))
			char, err = core.CharacterizeWith(cctx, Entries(), fleet, s.opts, s.store, s.sched, s.eng)
			span.End()
		}

		s.mu.Lock()
		s.building = nil
		if err == nil || !isCanceled(err) {
			s.done = true
			s.char, s.fleet, s.err = char, fleet, err
		}
		s.mu.Unlock()
		close(ch)
		return char, fleet, err
	}
}

func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Characterization returns the shared fleet characterization.
func (l *Lab) Characterization() (*core.Characterization, error) {
	char, _, err := l.build()
	return char, err
}

// Fleet returns the seven Table IV machines.
func (l *Lab) Fleet() ([]*machine.Machine, error) {
	_, fleet, err := l.build()
	return fleet, err
}

// RunStored measures one workload on one machine through the lab's
// store (directly when the lab has none). Experiments that measure
// outside the shared characterization — extra fidelities, replicas,
// multi-copy runs — route through here so their measurements are
// cached and persisted like everything else.
func (l *Lab) RunStored(m *machine.Machine, w machine.Workload, opts machine.RunOptions) (*machine.RawCounts, error) {
	st := l.state.store
	eng := l.state.eng
	tier := string(engine.TierExact)
	if eng != nil {
		tier = string(eng.Tier())
	}
	key := store.KeyForEngine(m, w, opts, tier)
	compute := func(ctx context.Context) (*machine.RawCounts, error) {
		if eng != nil {
			return eng.Measure(ctx, m, w, opts)
		}
		return core.Simulate(ctx, m, w, opts)
	}
	stored := func(ctx context.Context) (*machine.RawCounts, error) {
		if st == nil {
			return compute(ctx)
		}
		return st.GetOrCompute(ctx, key, compute)
	}
	if r := l.state.sched; r != nil {
		v, err := r.Do(l.Context(), key.ID(), func(jctx context.Context) (any, error) {
			return stored(jctx)
		})
		if err != nil {
			return nil, err
		}
		return v.(*machine.RawCounts), nil
	}
	return stored(l.Context())
}

// RunStoredMulti is RunStored for multi-copy (SPECrate-style) runs.
func (l *Lab) RunStoredMulti(m *machine.Machine, w machine.Workload, copies int, opts machine.RunOptions) (*machine.MultiCounts, error) {
	st := l.state.store
	key := store.KeyForMulti(m, w, copies, opts)
	compute := func(ctx context.Context) (*machine.MultiCounts, error) {
		return core.SimulateMulti(ctx, m, w, copies, opts)
	}
	stored := func(ctx context.Context) (*machine.MultiCounts, error) {
		if st == nil {
			return core.SimulateMulti(ctx, m, w, copies, opts)
		}
		return st.GetOrComputeMulti(ctx, key, compute)
	}
	if r := l.state.sched; r != nil {
		v, err := r.Do(l.Context(), key.ID(), func(jctx context.Context) (any, error) {
			return stored(jctx)
		})
		if err != nil {
			return nil, err
		}
		return v.(*machine.MultiCounts), nil
	}
	return stored(l.Context())
}

// suiteChar returns the characterization restricted to one CPU2017
// sub-suite's primary inputs.
func (l *Lab) suiteChar(s workloads.Suite) (*core.Characterization, error) {
	c, err := l.Characterization()
	if err != nil {
		return nil, err
	}
	var labels []string
	for _, p := range workloads.BySuite(s) {
		labels = append(labels, p.Name)
	}
	return c.Select(labels)
}

// selectChar returns the characterization restricted to the given
// profiles' primary inputs.
func (l *Lab) selectChar(profiles []workloads.Profile) (*core.Characterization, error) {
	c, err := l.Characterization()
	if err != nil {
		return nil, err
	}
	labels := make([]string, 0, len(profiles))
	for _, p := range profiles {
		labels = append(labels, p.Name)
	}
	return c.Select(labels)
}

// SuiteNames returns the primary-input labels of a sub-suite.
func SuiteNames(s workloads.Suite) []string {
	var out []string
	for _, p := range workloads.BySuite(s) {
		out = append(out, p.Name)
	}
	return out
}

// categoryKey maps a CPU2017 sub-suite to its perfdb submission
// category.
func categoryKey(s workloads.Suite) (string, error) {
	switch s {
	case workloads.SpeedINT:
		return "speed-int", nil
	case workloads.RateINT:
		return "rate-int", nil
	case workloads.SpeedFP:
		return "speed-fp", nil
	case workloads.RateFP:
		return "rate-fp", nil
	default:
		return "", fmt.Errorf("experiments: suite %v has no submission category", s)
	}
}
