package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// inputSetLabels returns the dendrogram leaves for the input-set
// analysis of one benchmark group: multi-input benchmarks contribute
// one leaf per input ("name-i"), single-input benchmarks their plain
// name — matching the labelling convention of Figures 7 and 8.
func inputSetLabels(suites ...workloads.Suite) []string {
	var labels []string
	for _, s := range suites {
		for _, p := range workloads.BySuite(s) {
			if p.InputSets == 1 {
				labels = append(labels, p.Name)
				continue
			}
			for i := 1; i <= p.InputSets; i++ {
				labels = append(labels, p.InputLabel(i))
			}
		}
	}
	return labels
}

// InputSetResult is the outcome of an input-set similarity analysis
// (Figure 7 for INT, Figure 8 for FP).
type InputSetResult struct {
	Similarity *core.Similarity `json:"-"`
	NumPCs     int
	VarCovered float64
	Rendered   string
	// Cohesion maps each multi-input benchmark to the maximum pairwise
	// distance among its own inputs divided by the median pairwise
	// distance over all leaves: values well below 1 confirm the
	// paper's finding that inputs of the same benchmark cluster
	// together.
	Cohesion map[string]float64
}

func inputSetAnalysis(lab *Lab, suites ...workloads.Suite) (*InputSetResult, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	labels := inputSetLabels(suites...)
	sub, err := c.Select(labels)
	if err != nil {
		return nil, err
	}
	sim, err := sub.SimilarityCtx(lab.Context(), core.DefaultSimilarityOptions())
	if err != nil {
		return nil, err
	}
	med, err := sim.MedianPairwiseDistance(labels)
	if err != nil {
		return nil, err
	}
	cohesion := make(map[string]float64)
	for _, s := range suites {
		for _, p := range workloads.BySuite(s) {
			if p.InputSets == 1 {
				continue
			}
			maxD := 0.0
			for i := 1; i <= p.InputSets; i++ {
				for j := i + 1; j <= p.InputSets; j++ {
					d, err := sim.EuclideanDistance(p.InputLabel(i), p.InputLabel(j))
					if err != nil {
						return nil, err
					}
					if d > maxD {
						maxD = d
					}
				}
			}
			cohesion[p.Name] = maxD / med
		}
	}
	return &InputSetResult{
		Similarity: sim,
		NumPCs:     sim.NumPCs,
		VarCovered: sim.PCA.CumVarExplained[sim.NumPCs-1],
		Rendered:   sim.Dendrogram.Render(60),
		Cohesion:   cohesion,
	}, nil
}

// Fig7 reproduces Figure 7: similarity between the input sets of all
// CPU2017 INT benchmarks (rate and speed).
func Fig7(lab *Lab) (*InputSetResult, error) {
	return inputSetAnalysis(lab, workloads.RateINT, workloads.SpeedINT)
}

// Fig8 reproduces Figure 8: similarity between the input sets of the
// CPU2017 FP benchmarks (bwaves is the only multi-input FP family).
func Fig8(lab *Lab) (*InputSetResult, error) {
	return inputSetAnalysis(lab, workloads.RateFP, workloads.SpeedFP)
}

// RepresentativeInput is one row of Table VII.
type RepresentativeInput struct {
	Benchmark string
	// Input is the 1-based index of the input set closest to the
	// benchmark's aggregate behaviour (the centroid of its inputs).
	Input int
}

// Table7 reproduces Table VII: the most representative input set of
// every multi-input CPU2017 benchmark, chosen as the input whose PC
// coordinates lie closest to the benchmark's aggregate (centroid).
func Table7(lab *Lab) ([]RepresentativeInput, error) {
	intRes, err := Fig7(lab)
	if err != nil {
		return nil, err
	}
	fpRes, err := Fig8(lab)
	if err != nil {
		return nil, err
	}
	var rows []RepresentativeInput
	pick := func(res *InputSetResult, suites ...workloads.Suite) error {
		for _, s := range suites {
			for _, p := range workloads.BySuite(s) {
				if p.InputSets == 1 {
					continue
				}
				best, err := closestToCentroid(res.Similarity, p)
				if err != nil {
					return err
				}
				rows = append(rows, RepresentativeInput{Benchmark: p.Name, Input: best})
			}
		}
		return nil
	}
	if err := pick(intRes, workloads.RateINT, workloads.SpeedINT); err != nil {
		return nil, err
	}
	if err := pick(fpRes, workloads.RateFP, workloads.SpeedFP); err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Benchmark < rows[j].Benchmark })
	return rows, nil
}

func closestToCentroid(sim *core.Similarity, p workloads.Profile) (int, error) {
	points := make([][]float64, 0, p.InputSets)
	for i := 1; i <= p.InputSets; i++ {
		idx := indexOf(sim.Labels, p.InputLabel(i))
		if idx < 0 {
			return 0, fmt.Errorf("experiments: input label %q missing", p.InputLabel(i))
		}
		points = append(points, sim.Points[idx])
	}
	dim := len(points[0])
	centroid := make([]float64, dim)
	for _, pt := range points {
		for d, v := range pt {
			centroid[d] += v
		}
	}
	for d := range centroid {
		centroid[d] /= float64(len(points))
	}
	best, bestD := 1, math.Inf(1)
	for i, pt := range points {
		if d := stats.Euclidean(pt, centroid); d < bestD {
			best, bestD = i+1, d
		}
	}
	return best, nil
}

func indexOf(labels []string, want string) int {
	for i, l := range labels {
		if l == want {
			return i
		}
	}
	return -1
}

// RateSpeedRow compares one benchmark family's rate and speed versions
// (Section IV-D).
type RateSpeedRow struct {
	Base  string
	Rate  string
	Speed string
	// Distance is the Euclidean distance between the two versions in
	// the reduced PC space; Divergent marks distances above the
	// divergence threshold (the median pairwise distance of the
	// analysis set).
	Distance  float64
	Divergent bool
}

// RateSpeed reproduces the Section IV-D comparison: for every family
// with both versions, how far apart do rate and speed land?
func RateSpeed(lab *Lab) ([]RateSpeedRow, error) {
	c, err := lab.Characterization()
	if err != nil {
		return nil, err
	}
	pairs := workloads.RateSpeedPairs()
	var labels []string
	for _, pr := range pairs {
		labels = append(labels, pr[0].Name, pr[1].Name)
	}
	sub, err := c.Select(labels)
	if err != nil {
		return nil, err
	}
	sim, err := sub.SimilarityCtx(lab.Context(), core.DefaultSimilarityOptions())
	if err != nil {
		return nil, err
	}
	// A pair diverges when its distance clearly exceeds the typical
	// rate/speed pair distance (1.5x the median over the 19 pairs).
	dists := make([]float64, 0, len(pairs))
	for _, pr := range pairs {
		d, err := sim.EuclideanDistance(pr[0].Name, pr[1].Name)
		if err != nil {
			return nil, err
		}
		dists = append(dists, d)
	}
	sorted := append([]float64(nil), dists...)
	sort.Float64s(sorted)
	threshold := 1.5 * sorted[len(sorted)/2]
	var rows []RateSpeedRow
	for i, pr := range pairs {
		rows = append(rows, RateSpeedRow{
			Base: pr[0].Base, Rate: pr[0].Name, Speed: pr[1].Name,
			Distance: dists[i], Divergent: dists[i] > threshold,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Distance > rows[j].Distance })
	return rows, nil
}
