package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/perfdb"
	"repro/internal/workloads"
)

// This file holds ablations of the methodology's design choices.
// None of them is in the paper; they quantify how much each choice —
// linkage method, variance weighting of PC scores, Kaiser criterion,
// subset size — matters to the headline results.

// LinkageRow reports one (suite, linkage) subsetting outcome.
type LinkageRow struct {
	Suite workloads.Suite
	// Method is the linkage used for the hierarchical clustering.
	Method cluster.Linkage
	// Subset is the 3-benchmark subset under that linkage.
	Subset []string
	// AvgError is the subset's weighted validation error against the
	// full suite, averaged over the synthetic commercial systems.
	AvgError float64
	// MostDistinct is the benchmark merging last under that linkage.
	MostDistinct string
}

// AblateLinkage re-derives the Table V subsets under all four linkage
// methods. The paper uses Ward; single linkage is known to chain, and
// this ablation shows what that does to subset quality.
func AblateLinkage(lab *Lab) ([]LinkageRow, error) {
	var rows []LinkageRow
	for _, suite := range []workloads.Suite{workloads.SpeedINT, workloads.RateINT, workloads.SpeedFP, workloads.RateFP} {
		c, err := lab.suiteChar(suite)
		if err != nil {
			return nil, err
		}
		cat, err := categoryKey(suite)
		if err != nil {
			return nil, err
		}
		db, err := c.BuildPerfDB(refMachineName, perfdb.SystemsFor(cat))
		if err != nil {
			return nil, err
		}
		all := SuiteNames(suite)
		for _, method := range []cluster.Linkage{cluster.Single, cluster.Complete, cluster.Average, cluster.Ward} {
			opts := core.DefaultSimilarityOptions()
			opts.Linkage = method
			sim, err := c.SimilarityCtx(lab.Context(), opts)
			if err != nil {
				return nil, err
			}
			res := sim.Subset(3)
			v, err := db.ValidateWeighted(res.Representatives, clusterWeights(res), all)
			if err != nil {
				return nil, err
			}
			rows = append(rows, LinkageRow{
				Suite:        suite,
				Method:       method,
				Subset:       res.Representatives,
				AvgError:     v.Avg,
				MostDistinct: sim.MostDistinct(),
			})
		}
	}
	return rows, nil
}

// clusterWeights maps a subset's representatives to their cluster
// sizes, in representative order.
func clusterWeights(res core.SubsetResult) []float64 {
	weights := make([]float64, len(res.Representatives))
	for i, rep := range res.Representatives {
		for _, cl := range res.Clusters {
			for _, member := range cl {
				if member == rep {
					weights[i] = float64(len(cl))
				}
			}
		}
	}
	return weights
}

// SubsetSizeRow reports subset quality at one size k.
type SubsetSizeRow struct {
	Suite workloads.Suite
	K     int
	// AvgError is the weighted validation error at this size.
	AvgError float64
	// SimTimeReduction is total-suite instructions over subset
	// instructions.
	SimTimeReduction float64
}

// SubsetSizeSweep quantifies the paper's remark that "including more
// benchmarks in the subset can reduce the prediction error, but will
// also increase the simulation time": it derives subsets of size
// 1..maxK per sub-suite and reports error and simulation-time
// reduction at each size.
func SubsetSizeSweep(lab *Lab, maxK int) ([]SubsetSizeRow, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("experiments: maxK %d", maxK)
	}
	var rows []SubsetSizeRow
	for _, suite := range []workloads.Suite{workloads.SpeedINT, workloads.RateINT, workloads.SpeedFP, workloads.RateFP} {
		c, err := lab.suiteChar(suite)
		if err != nil {
			return nil, err
		}
		sim, err := c.SimilarityCtx(lab.Context(), core.DefaultSimilarityOptions())
		if err != nil {
			return nil, err
		}
		cat, err := categoryKey(suite)
		if err != nil {
			return nil, err
		}
		db, err := c.BuildPerfDB(refMachineName, perfdb.SystemsFor(cat))
		if err != nil {
			return nil, err
		}
		all := SuiteNames(suite)
		icounts := make(map[string]float64)
		for _, p := range workloads.BySuite(suite) {
			icounts[p.Name] = p.DynInstrBillions
		}
		limit := maxK
		if limit > len(all) {
			limit = len(all)
		}
		for k := 1; k <= limit; k++ {
			res := sim.Subset(k)
			v, err := db.ValidateWeighted(res.Representatives, clusterWeights(res), all)
			if err != nil {
				return nil, err
			}
			red, err := core.SimulationTimeReduction(res.Representatives, all, icounts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SubsetSizeRow{
				Suite: suite, K: k, AvgError: v.Avg, SimTimeReduction: red,
			})
		}
	}
	return rows, nil
}

// WeightingRow compares variance-weighted and unweighted PC scores.
type WeightingRow struct {
	Suite workloads.Suite
	// WeightedSubset / UnweightedSubset are the 3-benchmark subsets
	// under each scoring.
	WeightedSubset, UnweightedSubset []string
	// Agree reports whether the two subsets coincide.
	Agree bool
}

// AblateScoreWeighting re-derives the subsets with the
// sqrt-eigenvalue weighting of PC scores disabled. The weighting makes
// Euclidean distance respect each component's variance share; this
// ablation shows whether the headline subsets depend on it.
func AblateScoreWeighting(lab *Lab) ([]WeightingRow, error) {
	var rows []WeightingRow
	for _, suite := range []workloads.Suite{workloads.SpeedINT, workloads.RateINT, workloads.SpeedFP, workloads.RateFP} {
		c, err := lab.suiteChar(suite)
		if err != nil {
			return nil, err
		}
		weighted, err := c.SimilarityCtx(lab.Context(), core.DefaultSimilarityOptions())
		if err != nil {
			return nil, err
		}
		opts := core.DefaultSimilarityOptions()
		opts.UnweightedScores = true
		unweighted, err := c.SimilarityCtx(lab.Context(), opts)
		if err != nil {
			return nil, err
		}
		w := weighted.Subset(3).Representatives
		u := unweighted.Subset(3).Representatives
		rows = append(rows, WeightingRow{
			Suite: suite, WeightedSubset: w, UnweightedSubset: u,
			Agree: equalStrings(w, u),
		})
	}
	return rows, nil
}

// PCSelectionRow compares the Kaiser criterion against a cumulative
// variance target for dimensionality selection.
type PCSelectionRow struct {
	Suite workloads.Suite
	// KaiserPCs and VariancePCs are the retained component counts
	// under each rule (variance target 0.9).
	KaiserPCs, VariancePCs int
	// SubsetsAgree reports whether the 3-benchmark subsets coincide.
	SubsetsAgree bool
}

// AblatePCSelection compares Kaiser-criterion dimensionality against
// a 90% cumulative-variance target.
func AblatePCSelection(lab *Lab) ([]PCSelectionRow, error) {
	var rows []PCSelectionRow
	for _, suite := range []workloads.Suite{workloads.SpeedINT, workloads.RateINT, workloads.SpeedFP, workloads.RateFP} {
		c, err := lab.suiteChar(suite)
		if err != nil {
			return nil, err
		}
		kaiser, err := c.SimilarityCtx(lab.Context(), core.DefaultSimilarityOptions())
		if err != nil {
			return nil, err
		}
		opts := core.DefaultSimilarityOptions()
		opts.VarianceTarget = 0.9
		variance, err := c.SimilarityCtx(lab.Context(), opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PCSelectionRow{
			Suite:     suite,
			KaiserPCs: kaiser.NumPCs, VariancePCs: variance.NumPCs,
			SubsetsAgree: equalStrings(
				kaiser.Subset(3).Representatives,
				variance.Subset(3).Representatives),
		})
	}
	return rows, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
