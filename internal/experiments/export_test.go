package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestBuildReportAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in -short mode")
	}
	report, err := BuildReport(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Table1) != 43 || len(report.Table5) != 4 || len(report.Table9) != 3 {
		t.Fatalf("report shapes wrong: %d/%d/%d", len(report.Table1), len(report.Table5), len(report.Table9))
	}
	if report.Fig2 == nil || report.Fig13 == nil {
		t.Fatal("report missing figures")
	}
	if len(report.SubsetSweep) != 24 { // 4 suites x 6 sizes
		t.Fatalf("subset sweep has %d rows", len(report.SubsetSweep))
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The document must round-trip as valid JSON and must not embed
	// the heavy similarity spaces.
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	fig2, ok := decoded["Fig2"].(map[string]any)
	if !ok {
		t.Fatal("Fig2 missing from JSON")
	}
	if _, leaked := fig2["Similarity"]; leaked {
		t.Fatal("similarity space leaked into JSON")
	}
	if fig2["MostDistinct"] != "605.mcf_s" {
		t.Fatalf("JSON Fig2 most distinct = %v", fig2["MostDistinct"])
	}
}
