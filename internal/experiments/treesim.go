package experiments

import (
	"repro/internal/cluster"
	"repro/internal/workloads"
)

// TreeSimilarityRow quantifies the paper's remark that the SPECrate
// INT dendrogram (omitted from the paper for space) is "very similar"
// to the SPECspeed INT one: the cophenetic correlation between the two
// sub-suite dendrograms over their shared benchmark families.
type TreeSimilarityRow struct {
	// Pair names the compared sub-suites.
	Pair string
	// Families are the benchmark families present in both.
	Families []string
	// Correlation is the cophenetic correlation (1 = identical
	// similarity structure).
	Correlation float64
}

// RateSpeedTreeSimilarity compares the rate and speed dendrograms of
// both the INT and FP categories.
func RateSpeedTreeSimilarity(lab *Lab) ([]TreeSimilarityRow, error) {
	pairs := []struct {
		name        string
		rate, speed workloads.Suite
	}{
		{"INT rate vs speed", workloads.RateINT, workloads.SpeedINT},
		{"FP rate vs speed", workloads.RateFP, workloads.SpeedFP},
	}
	var rows []TreeSimilarityRow
	for _, p := range pairs {
		rateDen, err := dendrogramFor(lab, p.rate)
		if err != nil {
			return nil, err
		}
		speedDen, err := dendrogramFor(lab, p.speed)
		if err != nil {
			return nil, err
		}
		// Pair by family: indices of each family's member in each tree.
		rateIdx := indexByBase(p.rate, rateDen.Similarity.Labels)
		speedIdx := indexByBase(p.speed, speedDen.Similarity.Labels)
		var families []string
		var ia, ib []int
		for base, ri := range rateIdx {
			si, ok := speedIdx[base]
			if !ok {
				continue
			}
			families = append(families, base)
			ia = append(ia, ri)
			ib = append(ib, si)
		}
		sortByFamily(families, ia, ib)
		corr, err := cluster.CopheneticCorrelation(
			rateDen.Similarity.Dendrogram, speedDen.Similarity.Dendrogram, ia, ib)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TreeSimilarityRow{
			Pair: p.name, Families: families, Correlation: corr,
		})
	}
	return rows, nil
}

func indexByBase(suite workloads.Suite, labels []string) map[string]int {
	byName := make(map[string]string)
	for _, p := range workloads.BySuite(suite) {
		byName[p.Name] = p.Base
	}
	out := make(map[string]int)
	for i, l := range labels {
		if base, ok := byName[l]; ok {
			out[base] = i
		}
	}
	return out
}

// sortByFamily orders the three parallel slices by family name, so the
// result is deterministic regardless of map iteration order.
func sortByFamily(families []string, ia, ib []int) {
	for i := 1; i < len(families); i++ {
		for j := i; j > 0 && families[j] < families[j-1]; j-- {
			families[j], families[j-1] = families[j-1], families[j]
			ia[j], ia[j-1] = ia[j-1], ia[j]
			ib[j], ib[j-1] = ib[j-1], ib[j]
		}
	}
}
