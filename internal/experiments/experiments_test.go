package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// The test lab runs at reduced fidelity to keep the suite fast while
// preserving the qualitative shape the assertions check.
var (
	testLabOnce sync.Once
	testLab     *Lab
)

func lab(t *testing.T) *Lab {
	t.Helper()
	testLabOnce.Do(func() {
		testLab = NewLab(machine.RunOptions{Instructions: 120_000, WarmupInstructions: 30_000})
	})
	if _, err := testLab.Characterization(); err != nil {
		t.Fatal(err)
	}
	return testLab
}

func TestEntriesUniqueAndComplete(t *testing.T) {
	entries := Entries()
	seen := make(map[string]bool)
	for _, e := range entries {
		if seen[e.Label] {
			t.Fatalf("duplicate entry label %q", e.Label)
		}
		seen[e.Label] = true
	}
	// 80 primary profiles + one entry per input set of multi-input
	// benchmarks.
	extra := 0
	for _, p := range workloads.All() {
		if p.InputSets > 1 {
			extra += p.InputSets
		}
	}
	if len(entries) != len(workloads.All())+extra {
		t.Fatalf("entries = %d, want %d", len(entries), len(workloads.All())+extra)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 43 {
		t.Fatalf("Table 1 has %d rows, want 43", len(rows))
	}
	byName := make(map[string]Table1Row)
	for _, r := range rows {
		byName[r.Name] = r
		if r.PaperCPI == 0 {
			t.Errorf("%s missing paper CPI", r.Name)
		}
		// Measured mix must track the transcribed Table I mix.
		p, err := workloads.ByName(r.Name)
		if err != nil {
			t.Fatal(err)
		}
		if d := r.PctLoad - p.Spec.LoadFrac*100; d > 4 || d < -4 {
			t.Errorf("%s load%% measured %.1f vs spec %.1f", r.Name, r.PctLoad, p.Spec.LoadFrac*100)
		}
	}
	// CPI ordering sanity: mcf and omnetpp top the INT list (paper:
	// "mcf_r and omnetpp_r having the highest CPI among all").
	if byName["505.mcf_r"].CPI < byName["525.x264_r"].CPI*2 {
		t.Error("mcf CPI should dwarf x264's")
	}
	if byName["520.omnetpp_r"].CPI < byName["541.leela_r"].CPI {
		t.Error("omnetpp CPI should exceed leela's")
	}
}

func TestTable2Ranges(t *testing.T) {
	rows, err := Table2(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 { // 6 metrics x 4 suites
		t.Fatalf("Table 2 has %d rows, want 24", len(rows))
	}
	get := func(suite workloads.Suite, metric string) RangeRow {
		for _, r := range rows {
			if r.Suite == suite && string(r.Metric) == metric {
				return r
			}
		}
		t.Fatalf("missing row %v/%s", suite, metric)
		return RangeRow{}
	}
	for _, r := range rows {
		if r.Min > r.Max {
			t.Errorf("%v %s: min %v > max %v", r.Suite, r.Metric, r.Min, r.Max)
		}
	}
	// Table II shape: FP has larger L1D maxima than INT (95-98 vs ~55);
	// INT has the larger L2D maxima (mcf ~20 vs FP ~7-8).
	if fp, in := get(workloads.RateFP, "l1d_mpki"), get(workloads.RateINT, "l1d_mpki"); fp.Max < in.Max {
		t.Errorf("rate FP L1D max (%v) should exceed rate INT (%v)", fp.Max, in.Max)
	}
	if in, fp := get(workloads.RateINT, "l2d_mpki"), get(workloads.RateFP, "l2d_mpki"); in.Max < fp.Max {
		t.Errorf("rate INT L2D max (%v) should exceed rate FP (%v)", in.Max, fp.Max)
	}
	// Branch misprediction maxima: INT well above FP.
	if in, fp := get(workloads.RateINT, "branch_mpki"), get(workloads.RateFP, "branch_mpki"); in.Max < fp.Max*2 {
		t.Errorf("INT branch MPKI max (%v) should dwarf FP (%v)", in.Max, fp.Max)
	}
}

func TestFig1Stacks(t *testing.T) {
	rows, err := Fig1(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("Figure 1 has %d bars, want 23 rate benchmarks", len(rows))
	}
	byName := make(map[string]StackRow)
	for _, r := range rows {
		byName[r.Name] = r
	}
	// mcf/omnetpp/xalancbmk/fotonik3d are back-end bound.
	for _, n := range []string{"505.mcf_r", "520.omnetpp_r", "549.fotonik3d_r"} {
		st := byName[n].Stack
		mem := st.L2 + st.L3 + st.Memory
		if mem < st.Total()*0.25 {
			t.Errorf("%s: memory share %.2f of %.2f CPI too low for a memory-bound benchmark",
				n, mem, st.Total())
		}
	}
	// imagick/blender: dependency stalls are the major cause.
	for _, n := range []string{"538.imagick_r", "526.blender_r"} {
		st := byName[n].Stack
		if st.Deps < st.L2+st.L3+st.Memory {
			t.Errorf("%s: dependency stalls (%.2f) should dominate memory stalls (%.2f)",
				n, st.Deps, st.L2+st.L3+st.Memory)
		}
	}
	out := RenderStacks(rows, 60)
	if !strings.Contains(out, "505.mcf_r") {
		t.Error("rendered stacks missing benchmark names")
	}
}

func TestFig2MostDistinctIsMcf(t *testing.T) {
	d, err := Fig2(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.MostDistinct != "605.mcf_s" {
		t.Errorf("SPECspeed INT most distinct = %s, paper says 605.mcf_s", d.MostDistinct)
	}
	if d.NumPCs < 2 {
		t.Errorf("Kaiser retained %d PCs, expected several", d.NumPCs)
	}
	if d.VarCovered < 0.7 {
		t.Errorf("retained PCs cover %.0f%% variance, expected >70%%", d.VarCovered*100)
	}
	if !strings.Contains(d.Rendered, "605.mcf_s") {
		t.Error("rendered dendrogram missing leaves")
	}
}

func TestFig3Fig4MostDistinctIsCactuBSSN(t *testing.T) {
	d3, err := Fig3(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	d4, err := Fig4(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if d3.MostDistinct != "607.cactubSSN_s" && d3.MostDistinct != "649.fotonik3d_s" {
		t.Errorf("SPECspeed FP most distinct = %s, paper says cactuBSSN (fotonik3d acceptable)", d3.MostDistinct)
	}
	if d4.MostDistinct != "507.cactubSSN_r" && d4.MostDistinct != "549.fotonik3d_r" {
		t.Errorf("SPECrate FP most distinct = %s, paper says cactuBSSN (fotonik3d acceptable)", d4.MostDistinct)
	}
}

func TestRateINTDendrogramSimilarToSpeed(t *testing.T) {
	// Paper: the rate INT dendrogram is "very similar" to speed's; at
	// minimum, mcf must again be most distinct.
	d, err := RateINTDendrogram(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if d.MostDistinct != "505.mcf_r" {
		t.Errorf("SPECrate INT most distinct = %s, want 505.mcf_r", d.MostDistinct)
	}
}

func TestTable5Subsets(t *testing.T) {
	rows, err := Table5(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 5 has %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if len(r.Subset) != 3 {
			t.Errorf("%v subset size %d, want 3", r.Suite, len(r.Subset))
		}
		if r.SimTimeReduction <= 1 {
			t.Errorf("%v simulation-time reduction %v must exceed 1", r.Suite, r.SimTimeReduction)
		}
		total := 0
		for _, cl := range r.Clusters {
			total += len(cl)
		}
		if total != len(SuiteNames(r.Suite)) {
			t.Errorf("%v clusters don't partition the suite", r.Suite)
		}
	}
	// The INT subsets must include mcf (the most distinct benchmark
	// forms its own cluster).
	found := false
	for _, b := range rows[0].Subset {
		if b == "605.mcf_s" {
			found = true
		}
	}
	if !found {
		t.Errorf("speed INT subset %v should contain 605.mcf_s", rows[0].Subset)
	}
}

func TestFig5Fig6Validation(t *testing.T) {
	intRows, err := Fig5(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	fpRows, err := Fig6(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range append(intRows, fpRows...) {
		if len(r.Identified.PerSystem) < 4 {
			t.Errorf("%v validated on %d systems, want >=4", r.Suite, len(r.Identified.PerSystem))
		}
		if r.Identified.Avg > 0.20 {
			t.Errorf("%v identified-subset error %.1f%% too high (paper: <=11%%)",
				r.Suite, r.Identified.Avg*100)
		}
	}
}

func TestTable6RandomSubsetsWorse(t *testing.T) {
	rows, err := Table6(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("Table 6 has %d rows", len(rows))
	}
	// Paper: random sets average 34.9% and 24.5% error vs identified
	// subsets' 3-11%. Require the aggregate ordering to hold.
	var ident, rnd float64
	for _, r := range rows {
		ident += r.Identified.Avg
		rnd += (r.Rand1.Avg + r.Rand2.Avg) / 2
	}
	if ident >= rnd {
		t.Errorf("identified subsets (avg %.1f%%) should beat random (avg %.1f%%)",
			ident/4*100, rnd/4*100)
	}
	out := RenderTable6(rows)
	if !strings.Contains(out, "identified") {
		t.Error("Table 6 rendering broken")
	}
}

func TestFig7InputSetsCluster(t *testing.T) {
	res, err := Fig7(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cohesion) == 0 {
		t.Fatal("no multi-input benchmarks analyzed")
	}
	// Paper: "for all the benchmarks, different input sets have very
	// similar characteristics" — same-benchmark inputs sit well below
	// the median pairwise distance.
	for bench, coh := range res.Cohesion {
		if coh > 1.0 {
			t.Errorf("%s input sets spread %.2f of median distance; expected cohesive (<1)", bench, coh)
		}
	}
	if !strings.Contains(res.Rendered, "502.gcc_r-1") {
		t.Error("input-set dendrogram missing numbered labels")
	}
}

func TestFig8FPInputSets(t *testing.T) {
	res, err := Fig8(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	// bwaves_r and bwaves_s are the only multi-input FP benchmarks.
	if len(res.Cohesion) != 2 {
		t.Fatalf("FP multi-input benchmarks = %d, want 2 (bwaves_r, bwaves_s)", len(res.Cohesion))
	}
}

func TestTable7RepresentativeInputs(t *testing.T) {
	rows, err := Table7(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	// One row per multi-input benchmark: perlbench x2, gcc x2, x264 x2,
	// xz x2, bwaves x2 = 10.
	if len(rows) != 10 {
		t.Fatalf("Table 7 has %d rows, want 10", len(rows))
	}
	for _, r := range rows {
		p, err := workloads.ByName(r.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		if r.Input < 1 || r.Input > p.InputSets {
			t.Errorf("%s representative input %d out of range", r.Benchmark, r.Input)
		}
	}
}

func TestRateSpeedComparison(t *testing.T) {
	rows, err := RateSpeed(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("%d rate/speed pairs, want 19", len(rows))
	}
	dist := make(map[string]RateSpeedRow)
	divergentCount := 0
	for _, r := range rows {
		dist[r.Base] = r
		if r.Divergent {
			divergentCount++
		}
	}
	// Paper: MOST pairs are similar; imagick diverges most among FP.
	if divergentCount > len(rows)/2 {
		t.Errorf("%d of %d pairs divergent; paper says most pairs are similar", divergentCount, len(rows))
	}
	if !dist["imagick"].Divergent {
		t.Error("imagick rate/speed should diverge (paper: largest linkage distance)")
	}
	if dist["imagick"].Distance < dist["nab"].Distance {
		t.Error("imagick pair distance should exceed nab's (paper: nab similar, imagick divergent)")
	}
}

func TestFig9BranchScatter(t *testing.T) {
	res, err := Fig9(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 43 {
		t.Fatalf("Figure 9 has %d points, want 43", len(res.Points))
	}
	// Paper: leela and mcf suffer the highest branch misprediction
	// rates.
	top, err := TopByMetric(lab(t), res.Labels, "branch_mpki", 4)
	if err != nil {
		t.Fatal(err)
	}
	topSet := strings.Join(top, " ")
	if !strings.Contains(topSet, "leela") || !strings.Contains(topSet, "mcf") {
		t.Errorf("top mispredictors %v should include leela and mcf", top)
	}
	if out := RenderScatter(res, 60, 20); !strings.Contains(out, "PC1") {
		t.Error("scatter rendering broken")
	}
}

func TestFig10CacheScatters(t *testing.T) {
	dc, ic, err := Fig10(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(dc.Points) != 43 || len(ic.Points) != 43 {
		t.Fatal("Figure 10 point counts wrong")
	}
	// Paper: worst data locality = mcf, cactuBSSN, fotonik3d.
	topD, err := TopByMetric(lab(t), dc.Labels, "l1d_mpki", 6)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(topD, " ")
	for _, want := range []string{"mcf", "cactubSSN", "fotonik3d"} {
		if !strings.Contains(joined, want) {
			t.Errorf("worst data locality %v should include %s", topD, want)
		}
	}
	// Paper: perlbench and gcc have the highest I-cache activity among
	// the INT benchmarks (Table II caps INT L1I MPKI at ~5 while the
	// big Fortran FP codes reach ~11).
	var intLabels []string
	for _, s := range []workloads.Suite{workloads.RateINT, workloads.SpeedINT} {
		intLabels = append(intLabels, SuiteNames(s)...)
	}
	topI, err := TopByMetric(lab(t), intLabels, "l1i_mpki", 4)
	if err != nil {
		t.Fatal(err)
	}
	joinedI := strings.Join(topI, " ")
	if !strings.Contains(joinedI, "perlbench") || !strings.Contains(joinedI, "gcc") {
		t.Errorf("top INT I-cache list %v should include perlbench and gcc", topI)
	}
}

func TestTable8Domains(t *testing.T) {
	rows, err := Table8(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("Table 8 has %d domains, want >=10", len(rows))
	}
	for _, r := range rows {
		if len(r.Recommended) == 0 || len(r.Members) == 0 {
			t.Errorf("domain %s empty", r.Domain)
		}
		if len(r.Recommended) > len(r.Members) {
			t.Errorf("domain %s recommends more than it has", r.Domain)
		}
	}
}

func TestFig11Coverage(t *testing.T) {
	planes, uncovered, err := Fig11(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(planes) != 2 {
		t.Fatalf("Figure 11 has %d planes, want 2", len(planes))
	}
	for _, pl := range planes {
		if pl.Area2017 <= 0 || pl.Area2006 <= 0 {
			t.Errorf("%s: degenerate hull areas %v / %v", pl.Plane, pl.Area2017, pl.Area2006)
		}
	}
	// Paper: >25% of CPU2017 benchmarks fall outside the CPU2006 space
	// in PC1-PC2; our substrate reproduces the direction (a noticeable
	// fraction outside) at a lower magnitude — see EXPERIMENTS.md.
	if planes[0].FracOutside < 0.08 {
		t.Errorf("PC1-PC2 fraction outside = %.2f, want >= 0.08 (paper: >0.25)", planes[0].FracOutside)
	}
	// Paper: the PC3-PC4 coverage area of CPU2017 is ~2x CPU2006's.
	if planes[1].Area2017 < planes[1].Area2006*1.5 {
		t.Errorf("PC3-PC4 area ratio %.2f, paper reports ~2x",
			planes[1].Area2017/planes[1].Area2006)
	}
	// Paper: only 429.mcf, 445.gobmk, 473.astar are uncovered.
	joined := strings.Join(uncovered, " ")
	for _, want := range []string{"429.mcf", "445.gobmk", "473.astar"} {
		if !strings.Contains(joined, want) {
			t.Errorf("uncovered set %v should include %s", uncovered, want)
		}
	}
	if len(uncovered) > 6 {
		t.Errorf("uncovered set %v too large; paper finds only 3", uncovered)
	}
}

func TestFig12PowerCoverage(t *testing.T) {
	cov, scatter, err := Fig12(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: CPU2017 has much higher power coverage than CPU2006.
	if cov.Area2017 <= cov.Area2006 {
		t.Errorf("CPU2017 power hull (%v) should exceed CPU2006's (%v)", cov.Area2017, cov.Area2006)
	}
	if len(scatter.Points) != 43+29 {
		t.Fatalf("power scatter has %d points", len(scatter.Points))
	}
}

func TestFig13EmergingWorkloads(t *testing.T) {
	res, err := Fig13(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	// EDA lands near mcf.
	for _, eda := range []string{"175.vpr", "300.twolf"} {
		if n := res.NearestCPU2017[eda]; !strings.Contains(n, "mcf") {
			t.Errorf("%s nearest CPU2017 = %s, paper says mcf", eda, n)
		}
	}
	// Cassandra is far from everything; connected components is close
	// to existing INT benchmarks; pagerank is distinct.
	for _, cas := range []string{"cas-WA", "cas-WC"} {
		if res.NormDistance[cas] < res.NormDistance["cc-web"] {
			t.Errorf("%s (%.2f) should be farther from CPU2017 than cc-web (%.2f)",
				cas, res.NormDistance[cas], res.NormDistance["cc-web"])
		}
	}
	if res.NormDistance["pr-twitter"] < res.NormDistance["cc-twitter"] {
		t.Error("pagerank should be more distinct than connected components")
	}
	if !strings.Contains(res.Rendered, "cas-WA") {
		t.Error("Figure 13 dendrogram missing emerging workloads")
	}
}

func TestTable9Sensitivity(t *testing.T) {
	tables, err := Table9(lab(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Table 9 has %d structures, want 3", len(tables))
	}
	for _, tb := range tables {
		total := len(tb.High) + len(tb.Medium) + len(tb.Low)
		if total != 43 {
			t.Errorf("%s classifies %d benchmarks, want 43", tb.Structure, total)
		}
		if len(tb.High) == 0 {
			t.Errorf("%s has no High-sensitivity benchmarks", tb.Structure)
		}
	}
	// Paper anchors: bwaves is branch-sensitive; fotonik3d is
	// L1D-sensitive; leela/xz/mcf are NOT branch-sensitive (uniformly
	// poor everywhere).
	branch := tables[0]
	hm := strings.Join(append(append([]string{}, branch.High...), branch.Medium...), " ")
	if !strings.Contains(hm, "bwaves") {
		t.Errorf("branch High+Medium %v should include bwaves", hm)
	}
	low := strings.Join(branch.Low, " ")
	if !strings.Contains(low, "leela") {
		t.Errorf("branch Low %v should include leela", branch.Low)
	}
	l1d := tables[1]
	hmD := strings.Join(append(append([]string{}, l1d.High...), l1d.Medium...), " ")
	if !strings.Contains(hmD, "fotonik3d") {
		t.Errorf("L1D High+Medium should include fotonik3d, got High=%v Medium=%v", l1d.High, l1d.Medium)
	}
}
