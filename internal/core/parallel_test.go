package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/workloads"
)

// TestCharacterizeParallelDeterministic checks that the fleet fan-out
// is invisible in the results: a serial characterization and maximally
// parallel ones produce identical labels, machine order, and matrices.
func TestCharacterizeParallelDeterministic(t *testing.T) {
	fleet, err := machine.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	for _, p := range workloads.CPU2017()[:3] {
		entries = append(entries, Entry{Label: p.Name, Workload: p.Workload()})
	}
	base := machine.RunOptions{Instructions: 2_000, WarmupInstructions: 400}

	var mats [][]float64
	var labels [][]string
	for _, par := range []int{1, 0, 16} {
		opts := base
		opts.Parallelism = par
		c, err := Characterize(context.Background(), entries, fleet, opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		m, cols, err := c.Matrix(nil, nil)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(cols) == 0 {
			t.Fatalf("parallelism %d: no columns", par)
		}
		flat := make([]float64, 0, m.Rows()*m.Cols())
		for i := 0; i < m.Rows(); i++ {
			for j := 0; j < m.Cols(); j++ {
				flat = append(flat, m.At(i, j))
			}
		}
		mats = append(mats, flat)
		labels = append(labels, c.Labels)
	}
	for i := 1; i < len(mats); i++ {
		if !reflect.DeepEqual(labels[0], labels[i]) {
			t.Errorf("label order differs between parallelism settings:\n%v\n%v", labels[0], labels[i])
		}
		if !reflect.DeepEqual(mats[0], mats[i]) {
			t.Errorf("matrix %d differs from serial result", i)
		}
	}
}
