// Package core implements the paper's methodology (Section III) as a
// reusable pipeline: characterize workloads on a fleet of machines
// into a benchmark × (machine,metric) measurement matrix, remove
// metric correlation with PCA under the Kaiser criterion, measure
// program similarity by hierarchical clustering in the reduced space,
// and derive representative subsets, input-set selections,
// rate-vs-speed comparisons, coverage analyses, and sensitivity
// classifications from the result.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"repro/internal/counters"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Entry is one workload to characterize, with its display label.
type Entry struct {
	Label    string
	Workload machine.Workload
}

// Characterization is the measurement matrix of a workload set on a
// machine fleet — the paper's "43 benchmarks × 140 metrics" object.
type Characterization struct {
	// Labels are the row names in order.
	Labels []string
	// MachineNames are the fleet machines in order.
	MachineNames []string

	samples map[string]map[string]*counters.Sample   // label -> machine -> sample
	raw     map[string]map[string]*machine.RawCounts // label -> machine -> raw counts
}

// Runner schedules one keyed measurement. Implementations may bound
// concurrency, impose queueing policy, and deduplicate concurrent
// submissions by key (*sched.Queue is the canonical one). The fn
// passed to Do runs under a Runner-owned context; the caller's ctx
// only aborts its own wait.
type Runner interface {
	Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error)
}

// Characterize measures every entry on every machine. Runs are
// independent and fan out across a worker pool (opts.Parallelism
// workers; 0 = GOMAXPROCS, 1 = serial); results are stored by
// (label, machine) and are deterministic regardless of scheduling.
// Canceling ctx abandons the remaining measurements and returns the
// context's error.
func Characterize(ctx context.Context, entries []Entry, machines []*machine.Machine, opts machine.RunOptions) (*Characterization, error) {
	return CharacterizeStored(ctx, entries, machines, opts, nil)
}

// CharacterizeScheduled is CharacterizeStored with the per-call
// worker pool replaced by a shared Runner: every (entry, machine)
// measurement is submitted to r under the store key's identity, so
// concurrent characterizations sharing one scheduler — two batches
// whose experiment sets overlap, two labs at the same fidelity —
// deduplicate in-flight simulations and queue with global FIFO
// fairness instead of oversubscribing the host. Results are
// bit-identical to the unscheduled path. A nil Runner falls back to
// CharacterizeStored.
func CharacterizeScheduled(ctx context.Context, entries []Entry, machines []*machine.Machine, opts machine.RunOptions, st *store.Store, r Runner) (*Characterization, error) {
	return CharacterizeWith(ctx, entries, machines, opts, st, r, nil)
}

// CharacterizeWith is the fully general characterization entry point:
// a shared store (nil = measure directly), a shared Runner (nil = a
// per-call worker pool), and a measurement engine (nil = the exact
// trace-driven engine). Every (entry, machine) measurement is keyed by
// the engine's tier, so analytic and exact records coexist in one
// store without ever answering for each other.
func CharacterizeWith(ctx context.Context, entries []Entry, machines []*machine.Machine, opts machine.RunOptions, st *store.Store, r Runner, eng engine.Engine) (*Characterization, error) {
	if r == nil {
		return characterizeStored(ctx, entries, machines, opts, st, eng)
	}
	c, err := newCharacterization(entries, machines)
	if err != nil {
		return nil, err
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for _, e := range entries {
		for _, m := range machines {
			if ctx.Err() != nil {
				break // canceled: stop submitting
			}
			e, m := e, m
			wg.Add(1)
			go func() {
				defer wg.Done()
				key := store.KeyForEngine(m, e.Workload, opts, tierOf(eng))
				v, err := r.Do(ctx, key.ID(), func(jctx context.Context) (any, error) {
					return measureWith(jctx, st, m, e.Workload, opts, eng)
				})
				var rc *machine.RawCounts
				var sample *counters.Sample
				if err == nil {
					rc = v.(*machine.RawCounts)
					sample, err = counters.FromRaw(m.Name(), m.Config().HasRAPL, rc)
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("core: %s on %s: %w", e.Label, m.Name(), err)
					}
				} else {
					c.samples[e.Label][m.Name()] = sample
					c.raw[e.Label][m.Name()] = rc
				}
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return c, nil
}

// newCharacterization validates the inputs and allocates the empty
// result maps shared by both measurement paths.
func newCharacterization(entries []Entry, machines []*machine.Machine) (*Characterization, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("core: no workloads to characterize")
	}
	if len(machines) == 0 {
		return nil, fmt.Errorf("core: no machines to measure on")
	}
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.Label == "" {
			return nil, fmt.Errorf("core: entry with empty label")
		}
		if seen[e.Label] {
			return nil, fmt.Errorf("core: duplicate label %q", e.Label)
		}
		seen[e.Label] = true
	}

	c := &Characterization{
		samples: make(map[string]map[string]*counters.Sample, len(entries)),
		raw:     make(map[string]map[string]*machine.RawCounts, len(entries)),
	}
	for _, e := range entries {
		c.Labels = append(c.Labels, e.Label)
		c.samples[e.Label] = make(map[string]*counters.Sample, len(machines))
		c.raw[e.Label] = make(map[string]*machine.RawCounts, len(machines))
	}
	for _, m := range machines {
		c.MachineNames = append(c.MachineNames, m.Name())
	}
	return c, nil
}

// CharacterizeStored is Characterize backed by a measurement store:
// every (entry, machine) pair already in st is served from it, every
// pair computed lands in it, and concurrent characterizations sharing
// st never simulate the same pair twice. The substrate is
// deterministic, so the result is bit-identical to a store-free run.
// A nil store measures directly.
func CharacterizeStored(ctx context.Context, entries []Entry, machines []*machine.Machine, opts machine.RunOptions, st *store.Store) (*Characterization, error) {
	return characterizeStored(ctx, entries, machines, opts, st, nil)
}

func characterizeStored(ctx context.Context, entries []Entry, machines []*machine.Machine, opts machine.RunOptions, st *store.Store, eng engine.Engine) (*Characterization, error) {
	c, err := newCharacterization(entries, machines)
	if err != nil {
		return nil, err
	}

	type job struct {
		entry Entry
		mach  *machine.Machine
	}
	jobs := make(chan job)
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(entries)*len(machines) {
		workers = len(entries) * len(machines)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // canceled: drain the queue without measuring
				}
				rc, err := measureWith(ctx, st, j.mach, j.entry.Workload, opts, eng)
				var sample *counters.Sample
				if err == nil {
					sample, err = counters.FromRaw(j.mach.Name(), j.mach.Config().HasRAPL, rc)
				}
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("core: %s on %s: %w", j.entry.Label, j.mach.Name(), err)
					}
				} else {
					c.samples[j.entry.Label][j.mach.Name()] = sample
					c.raw[j.entry.Label][j.mach.Name()] = rc
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for _, e := range entries {
		for _, m := range machines {
			select {
			case jobs <- job{entry: e, mach: m}:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return c, nil
}

// measure runs one (machine, workload) pair, through the store when
// one is present so concurrent and repeated characterizations share
// measurements.
func measure(ctx context.Context, st *store.Store, m *machine.Machine, w machine.Workload, opts machine.RunOptions) (*machine.RawCounts, error) {
	return measureWith(ctx, st, m, w, opts, nil)
}

// tierOf names an engine's store-key tier; the nil engine is exact.
func tierOf(eng engine.Engine) string {
	if eng == nil {
		return string(engine.TierExact)
	}
	return string(eng.Tier())
}

// measureWith is measure on an explicit engine. A nil engine takes the
// historical Simulate path (bit-identical to engine.Exact, and keyed
// identically in the store).
func measureWith(ctx context.Context, st *store.Store, m *machine.Machine, w machine.Workload, opts machine.RunOptions, eng engine.Engine) (*machine.RawCounts, error) {
	run := func(rctx context.Context) (*machine.RawCounts, error) {
		if eng == nil {
			return Simulate(rctx, m, w, opts)
		}
		return eng.Measure(rctx, m, w, opts)
	}
	if st == nil {
		return run(ctx)
	}
	key := store.KeyForEngine(m, w, opts, tierOf(eng))
	return st.GetOrCompute(ctx, key, func(fctx context.Context) (*machine.RawCounts, error) {
		if err := fctx.Err(); err != nil {
			return nil, err // every waiter left before the run began
		}
		return run(fctx)
	})
}

// Simulate runs one workload on one machine, emitting a "simulate"
// span on the context's trace — the leaf stage every other span tree
// layer (scheduling, storage, analysis) is measured against.
func Simulate(ctx context.Context, m *machine.Machine, w machine.Workload, opts machine.RunOptions) (*machine.RawCounts, error) {
	_, span := telemetry.StartSpan(ctx, "simulate", "machine", m.Name(), "workload", w.Key)
	rc, err := m.Run(w, opts)
	span.End()
	return rc, err
}

// SimulateMulti is Simulate for multi-copy (SPECrate-style) runs.
func SimulateMulti(ctx context.Context, m *machine.Machine, w machine.Workload, copies int, opts machine.RunOptions) (*machine.MultiCounts, error) {
	_, span := telemetry.StartSpan(ctx, "simulate",
		"machine", m.Name(), "workload", w.Key, "copies", strconv.Itoa(copies))
	mc, err := m.RunMulti(w, copies, opts)
	span.End()
	return mc, err
}

// Sample returns the metric sample for one workload on one machine.
func (c *Characterization) Sample(label, machineName string) (*counters.Sample, error) {
	per, ok := c.samples[label]
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", label)
	}
	s, ok := per[machineName]
	if !ok {
		return nil, fmt.Errorf("core: workload %q not measured on %q", label, machineName)
	}
	return s, nil
}

// Raw returns the raw counts for one workload on one machine.
func (c *Characterization) Raw(label, machineName string) (*machine.RawCounts, error) {
	per, ok := c.raw[label]
	if !ok {
		return nil, fmt.Errorf("core: unknown workload %q", label)
	}
	rc, ok := per[machineName]
	if !ok {
		return nil, fmt.Errorf("core: workload %q not measured on %q", label, machineName)
	}
	return rc, nil
}

// Select returns a view of the characterization restricted to the
// given row labels, in the given order.
func (c *Characterization) Select(labels []string) (*Characterization, error) {
	out := &Characterization{
		MachineNames: c.MachineNames,
		samples:      make(map[string]map[string]*counters.Sample, len(labels)),
		raw:          make(map[string]map[string]*machine.RawCounts, len(labels)),
	}
	for _, l := range labels {
		if _, ok := c.samples[l]; !ok {
			return nil, fmt.Errorf("core: unknown workload %q", l)
		}
		out.Labels = append(out.Labels, l)
		out.samples[l] = c.samples[l]
		out.raw[l] = c.raw[l]
	}
	return out, nil
}

// Merge combines two characterizations measured on the same fleet.
// Duplicate labels are rejected.
func (c *Characterization) Merge(other *Characterization) (*Characterization, error) {
	if len(c.MachineNames) != len(other.MachineNames) {
		return nil, fmt.Errorf("core: merging characterizations from different fleets")
	}
	for i, m := range c.MachineNames {
		if other.MachineNames[i] != m {
			return nil, fmt.Errorf("core: merging characterizations from different fleets")
		}
	}
	out := &Characterization{
		MachineNames: c.MachineNames,
		samples:      make(map[string]map[string]*counters.Sample),
		raw:          make(map[string]map[string]*machine.RawCounts),
	}
	add := func(src *Characterization) error {
		for _, l := range src.Labels {
			if _, dup := out.samples[l]; dup {
				return fmt.Errorf("core: duplicate label %q in merge", l)
			}
			out.Labels = append(out.Labels, l)
			out.samples[l] = src.samples[l]
			out.raw[l] = src.raw[l]
		}
		return nil
	}
	if err := add(c); err != nil {
		return nil, err
	}
	if err := add(other); err != nil {
		return nil, err
	}
	return out, nil
}

// Matrix assembles the measurement matrix over the given metrics and
// machines (nil means all). Power metrics are included only for
// machines that have them. The returned column names identify each
// (machine, metric) variable.
func (c *Characterization) Matrix(metrics []counters.Metric, machines []string) (*stats.Matrix, []string, error) {
	if machines == nil {
		machines = c.MachineNames
	}
	// Determine the columns: for each machine, the requested metrics it
	// actually has.
	type col struct {
		machine string
		metric  counters.Metric
	}
	var cols []col
	if len(c.Labels) == 0 {
		return nil, nil, fmt.Errorf("core: empty characterization")
	}
	probe := c.samples[c.Labels[0]]
	for _, m := range machines {
		s, ok := probe[m]
		if !ok {
			return nil, nil, fmt.Errorf("core: machine %q not in characterization", m)
		}
		want := metrics
		if want == nil {
			want = s.Metrics()
		}
		for _, metric := range want {
			if _, err := s.Value(metric); err == nil {
				cols = append(cols, col{machine: m, metric: metric})
			}
		}
	}
	if len(cols) == 0 {
		return nil, nil, fmt.Errorf("core: no matching metric columns")
	}

	matrix := stats.NewMatrix(len(c.Labels), len(cols))
	names := make([]string, len(cols))
	for j, cl := range cols {
		names[j] = counters.ColumnID(cl.machine, cl.metric)
	}
	for i, label := range c.Labels {
		for j, cl := range cols {
			s := c.samples[label][cl.machine]
			v, err := s.Value(cl.metric)
			if err != nil {
				return nil, nil, fmt.Errorf("core: %s on %s: %w", label, cl.machine, err)
			}
			matrix.Set(i, j, v)
		}
	}
	return matrix, names, nil
}

// MetricAcross returns one metric's value for one workload on each of
// the given machines (nil = all), in machine order.
func (c *Characterization) MetricAcross(label string, metric counters.Metric, machines []string) ([]float64, error) {
	if machines == nil {
		machines = c.MachineNames
	}
	out := make([]float64, 0, len(machines))
	for _, m := range machines {
		s, err := c.Sample(label, m)
		if err != nil {
			return nil, err
		}
		v, err := s.Value(metric)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// MetricRange reports the min and max of a metric across the given
// workloads on one machine — the Table II "range of important
// performance characteristics" computation.
func (c *Characterization) MetricRange(labels []string, machineName string, metric counters.Metric) (min, max float64, err error) {
	if len(labels) == 0 {
		return 0, 0, fmt.Errorf("core: no labels")
	}
	first := true
	for _, l := range labels {
		s, err := c.Sample(l, machineName)
		if err != nil {
			return 0, 0, err
		}
		v, err := s.Value(metric)
		if err != nil {
			return 0, 0, err
		}
		if first {
			min, max, first = v, v, false
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, nil
}

// SortedLabels returns the labels in lexicographic order (the stored
// order is preserved in Labels).
func (c *Characterization) SortedLabels() []string {
	out := append([]string(nil), c.Labels...)
	sort.Strings(out)
	return out
}
