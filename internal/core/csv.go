package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/counters"
)

// WriteCSV emits the measurement matrix as CSV: one row per workload,
// one column per (machine, metric) variable, with a header row of
// column identifiers ("machine:metric") and a leading "workload"
// column. This is the raw matrix a researcher would feed to their own
// statistics stack.
func (c *Characterization) WriteCSV(w io.Writer, metrics []counters.Metric, machines []string) error {
	matrix, cols, err := c.Matrix(metrics, machines)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := append([]string{"workload"}, cols...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("core: writing CSV header: %w", err)
	}
	row := make([]string, len(cols)+1)
	for i, label := range c.Labels {
		row[0] = label
		for j := 0; j < matrix.Cols(); j++ {
			row[j+1] = strconv.FormatFloat(matrix.At(i, j), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("core: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
