package core

import (
	"fmt"

	"repro/internal/cpistack"
	"repro/internal/perfdb"
)

// Stacks collects the CPI stacks of every workload measured on one
// machine, keyed by label — the input to perfdb.Build and to the
// Figure 1 CPI-stack rendering.
func (c *Characterization) Stacks(machineName string) (map[string]cpistack.Stack, error) {
	out := make(map[string]cpistack.Stack, len(c.Labels))
	for _, l := range c.Labels {
		rc, err := c.Raw(l, machineName)
		if err != nil {
			return nil, err
		}
		out[l] = rc.Stack
	}
	return out, nil
}

// BuildPerfDB constructs the synthetic commercial-results database
// from the workloads' CPI stacks on a reference machine.
func (c *Characterization) BuildPerfDB(refMachine string, systems []perfdb.System) (*perfdb.DB, error) {
	stacks, err := c.Stacks(refMachine)
	if err != nil {
		return nil, err
	}
	db, err := perfdb.Build(stacks, systems)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return db, nil
}

// SimulationTimeReduction estimates the speed-simulation savings of a
// subset as (total dynamic instructions of the suite) / (total dynamic
// instructions of the subset), the measure behind the paper's "reduce
// the total simulation time by 5.6x / 4.5x / 6.3x" claims. The icounts
// map is keyed by label (billions of instructions).
func SimulationTimeReduction(subset, all []string, icounts map[string]float64) (float64, error) {
	var sub, tot float64
	for _, l := range all {
		v, ok := icounts[l]
		if !ok {
			return 0, fmt.Errorf("core: no instruction count for %q", l)
		}
		tot += v
	}
	for _, l := range subset {
		v, ok := icounts[l]
		if !ok {
			return 0, fmt.Errorf("core: no instruction count for %q", l)
		}
		sub += v
	}
	if sub <= 0 {
		return 0, fmt.Errorf("core: subset has zero instructions")
	}
	return tot / sub, nil
}
