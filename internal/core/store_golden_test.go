package core

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/machine"
	"repro/internal/store"
	"repro/internal/workloads"
)

// TestStoreGoldenBitIdentical is the determinism invariant of the
// measurement store: characterizing through a store — cold compute, a
// snapshot round trip, and a warm replay — yields results bit-identical
// to characterizing with the store disabled.
func TestStoreGoldenBitIdentical(t *testing.T) {
	var entries []Entry
	for _, name := range []string{"505.mcf_r", "541.leela_r", "549.fotonik3d_r"} {
		p, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, Entry{Label: p.Name, Workload: p.Workload()})
	}
	machines := testMachines(t)
	opts := machine.RunOptions{Instructions: 40_000, WarmupInstructions: 10_000}

	bare, err := Characterize(context.Background(), entries, machines, opts)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "golden.json")
	cold, err := store.Open(store.Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	viaCold, err := CharacterizeStored(context.Background(), entries, machines, opts, cold)
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Save(); err != nil {
		t.Fatal(err)
	}

	// Warm replay: a fresh store on the persisted snapshot must answer
	// every measurement from disk, simulating nothing.
	warm, err := store.Open(store.Config{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	viaWarm, err := CharacterizeStored(context.Background(), entries, machines, opts, warm)
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Stats().Misses; n != 0 {
		t.Errorf("warm replay simulated %d times, want 0", n)
	}
	if n := warm.Stats().Hits; n != int64(len(entries)*len(machines)) {
		t.Errorf("warm hits = %d, want %d", n, len(entries)*len(machines))
	}

	for _, got := range []struct {
		name string
		c    *Characterization
	}{{"store-cold", viaCold}, {"store-warm", viaWarm}} {
		for _, e := range entries {
			for _, m := range machines {
				want, err := bare.Raw(e.Label, m.Name())
				if err != nil {
					t.Fatal(err)
				}
				rc, err := got.c.Raw(e.Label, m.Name())
				if err != nil {
					t.Fatal(err)
				}
				// Struct equality over every counter and float64
				// field: bit-identical, not approximately equal.
				if *rc != *want {
					t.Errorf("%s: %s on %s differs from store-off run:\n got %+v\nwant %+v",
						got.name, e.Label, m.Name(), rc, want)
				}
				ws, err := bare.Sample(e.Label, m.Name())
				if err != nil {
					t.Fatal(err)
				}
				gs, err := got.c.Sample(e.Label, m.Name())
				if err != nil {
					t.Fatal(err)
				}
				wj, _ := json.Marshal(ws)
				gj, _ := json.Marshal(gs)
				if string(wj) != string(gj) {
					t.Errorf("%s: derived sample %s on %s differs from store-off run", got.name, e.Label, m.Name())
				}
			}
		}
	}
}
