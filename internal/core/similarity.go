package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// SimilarityOptions configure the PCA + clustering pipeline.
type SimilarityOptions struct {
	// Metrics restricts the analysis to a metric group (nil = all of
	// Table III). Figure 9 uses counters.BranchMetrics, Figure 10 the
	// cache groups, Figure 12 counters.PowerMetrics.
	Metrics []counters.Metric
	// Machines restricts the fleet (nil = all machines measured).
	Machines []string
	// Linkage selects the clustering method; the zero value is
	// cluster.Single, but the paper's dendrograms use Ward — prefer
	// DefaultSimilarityOptions.
	Linkage cluster.Linkage
	// VarianceTarget, when positive, retains the smallest number of
	// PCs reaching that cumulative variance fraction instead of the
	// Kaiser criterion.
	VarianceTarget float64
	// UnweightedScores disables sqrt-eigenvalue weighting of the
	// reduced PC scores.
	UnweightedScores bool
}

// DefaultSimilarityOptions returns the paper's settings: all metrics,
// all machines, Ward linkage, Kaiser criterion, weighted scores.
func DefaultSimilarityOptions() SimilarityOptions {
	return SimilarityOptions{Linkage: cluster.Ward}
}

// Similarity is the fitted similarity space of a workload set.
type Similarity struct {
	// Labels are the analyzed workloads, in characterization order.
	Labels []string
	// PCA is the fitted transform; Columns names its input variables.
	PCA     *stats.PCA
	Columns []string
	// NumPCs is the retained component count (Kaiser or variance target).
	NumPCs int
	// Points are the workloads' reduced (and by default
	// variance-weighted) PC coordinates used for clustering.
	Points [][]float64
	// Dendrogram is the hierarchical clustering of Points.
	Dendrogram *cluster.Dendrogram
}

// Similarity runs the Section III pipeline on the characterization.
func (c *Characterization) Similarity(opts SimilarityOptions) (*Similarity, error) {
	return c.SimilarityCtx(context.Background(), opts)
}

// SimilarityCtx is Similarity carrying a context so the analysis
// stages land as "pca" and "cluster" spans on the request's trace.
// The pipeline itself never blocks on ctx — PCA and clustering are
// fast relative to measurement — so the context is observability-only.
func (c *Characterization) SimilarityCtx(ctx context.Context, opts SimilarityOptions) (*Similarity, error) {
	matrix, cols, err := c.Matrix(opts.Metrics, opts.Machines)
	if err != nil {
		return nil, err
	}
	_, pcaSpan := telemetry.StartSpan(ctx, "pca",
		"rows", strconv.Itoa(len(c.Labels)), "columns", strconv.Itoa(len(cols)))
	pca, err := stats.FitPCA(matrix, stats.PCAOptions{})
	if err != nil {
		pcaSpan.End()
		return nil, fmt.Errorf("core: similarity PCA: %w", err)
	}
	k := pca.KaiserComponents()
	if opts.VarianceTarget > 0 {
		k = pca.ComponentsForVariance(opts.VarianceTarget)
	}
	if k > len(c.Labels)-1 && len(c.Labels) > 1 {
		// More PCs than degrees of freedom adds only noise dimensions.
		k = len(c.Labels) - 1
	}
	points := pca.ReducedScores(k, !opts.UnweightedScores)
	pcaSpan.End()
	_, clusterSpan := telemetry.StartSpan(ctx, "cluster",
		"points", strconv.Itoa(len(points)), "pcs", strconv.Itoa(k))
	dendro, err := cluster.Cluster(points, c.Labels, opts.Linkage)
	clusterSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: similarity clustering: %w", err)
	}
	return &Similarity{
		Labels:     append([]string(nil), c.Labels...),
		PCA:        pca,
		Columns:    cols,
		NumPCs:     k,
		Points:     points,
		Dendrogram: dendro,
	}, nil
}

// SubsetResult is a representative subset read off the dendrogram.
type SubsetResult struct {
	// Clusters lists each cluster's member labels.
	Clusters [][]string
	// Representatives holds one label per cluster (the member with
	// the smallest total distance to its cluster peers), sorted.
	Representatives []string
	// CutHeight is the linkage distance at which the dendrogram
	// yields exactly len(Clusters) clusters — the vertical line of
	// Figures 2-4.
	CutHeight float64
}

// Subset cuts the dendrogram into k clusters and picks representatives
// (Section IV-A).
func (s *Similarity) Subset(k int) SubsetResult {
	clusters := s.Dendrogram.CutToK(k)
	reps := s.Dendrogram.Representatives(clusters)
	res := SubsetResult{CutHeight: s.Dendrogram.HeightForK(k)}
	for _, cl := range clusters {
		names := make([]string, 0, len(cl))
		for _, idx := range cl {
			names = append(names, s.Labels[idx])
		}
		res.Clusters = append(res.Clusters, names)
	}
	for _, idx := range reps {
		res.Representatives = append(res.Representatives, s.Labels[idx])
	}
	sort.Strings(res.Representatives)
	return res
}

// MostDistinct returns the label that joins the dendrogram at the
// greatest linkage height — mcf among the INT benchmarks, cactuBSSN
// among FP, in the paper's data.
func (s *Similarity) MostDistinct() string {
	idx := s.Dendrogram.MostDistinct()
	if idx < 0 {
		return ""
	}
	return s.Labels[idx]
}

// PairDistance returns the cophenetic (dendrogram) distance between
// two labelled workloads.
func (s *Similarity) PairDistance(a, b string) (float64, error) {
	ia, err := s.index(a)
	if err != nil {
		return 0, err
	}
	ib, err := s.index(b)
	if err != nil {
		return 0, err
	}
	return s.Dendrogram.CopheneticDistance(ia, ib)
}

// EuclideanDistance returns the straight-line distance between two
// workloads in the reduced PC space.
func (s *Similarity) EuclideanDistance(a, b string) (float64, error) {
	ia, err := s.index(a)
	if err != nil {
		return 0, err
	}
	ib, err := s.index(b)
	if err != nil {
		return 0, err
	}
	return stats.Euclidean(s.Points[ia], s.Points[ib]), nil
}

func (s *Similarity) index(label string) (int, error) {
	for i, l := range s.Labels {
		if l == label {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: label %q not in similarity analysis", label)
}

// ScatterPoints projects every workload onto two principal components
// (0-based), producing the Figure 9/10/12 scatter coordinates.
func (s *Similarity) ScatterPoints(pcX, pcY int) ([]stats.Point, error) {
	if pcX < 0 || pcY < 0 || pcX >= len(s.PCA.Eigenvalues) || pcY >= len(s.PCA.Eigenvalues) {
		return nil, fmt.Errorf("core: PC pair (%d,%d) out of range [0,%d)", pcX, pcY, len(s.PCA.Eigenvalues))
	}
	pts := make([]stats.Point, len(s.Labels))
	for i := range s.Labels {
		pts[i] = stats.Point{X: s.PCA.Scores[i][pcX], Y: s.PCA.Scores[i][pcY]}
	}
	return pts, nil
}

// DominantColumns names the n input variables with the largest
// absolute loadings in component pc, for labelling scatter axes.
func (s *Similarity) DominantColumns(pc, n int) []string {
	idx := s.PCA.DominantVariables(pc, n)
	out := make([]string, 0, len(idx))
	for _, j := range idx {
		out = append(out, s.Columns[j])
	}
	return out
}

// NearestNeighbor returns, for each query label, its closest other
// label from the candidate set (by reduced-PC Euclidean distance) and
// that distance. Used for the coverage analysis of Section V-B and the
// input-set selection of Section IV-C.
func (s *Similarity) NearestNeighbor(queries, candidates []string) (map[string]string, map[string]float64, error) {
	nearest := make(map[string]string, len(queries))
	dist := make(map[string]float64, len(queries))
	for _, q := range queries {
		qi, err := s.index(q)
		if err != nil {
			return nil, nil, err
		}
		bestLabel, bestD := "", -1.0
		for _, cand := range candidates {
			if cand == q {
				continue
			}
			ci, err := s.index(cand)
			if err != nil {
				return nil, nil, err
			}
			d := stats.Euclidean(s.Points[qi], s.Points[ci])
			if bestD < 0 || d < bestD {
				bestLabel, bestD = cand, d
			}
		}
		if bestD < 0 {
			return nil, nil, fmt.Errorf("core: no candidates for query %q", q)
		}
		nearest[q] = bestLabel
		dist[q] = bestD
	}
	return nearest, dist, nil
}

// MedianPairwiseDistance returns the median distance between all pairs
// of the given labels in reduced PC space — the scale reference used
// to decide whether a removed benchmark is "covered".
func (s *Similarity) MedianPairwiseDistance(labels []string) (float64, error) {
	var ds []float64
	for i := 0; i < len(labels); i++ {
		for j := i + 1; j < len(labels); j++ {
			d, err := s.EuclideanDistance(labels[i], labels[j])
			if err != nil {
				return 0, err
			}
			ds = append(ds, d)
		}
	}
	if len(ds) == 0 {
		return 0, fmt.Errorf("core: need at least two labels")
	}
	sort.Float64s(ds)
	return ds[len(ds)/2], nil
}
