package core

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/machine"
	"repro/internal/perfdb"
	"repro/internal/workloads"
)

// testFixture builds one small characterization shared by the tests in
// this package: six behaviourally distinct benchmarks on three
// machines, at reduced instruction counts.
var (
	fixtureOnce sync.Once
	fixture     *Characterization
	fixtureErr  error
)

var fixtureNames = []string{
	"505.mcf_r", "541.leela_r", "525.x264_r",
	"549.fotonik3d_r", "508.namd_r", "523.xalancbmk_r",
}

func testMachines(t *testing.T) []*machine.Machine {
	t.Helper()
	var ms []*machine.Machine
	for _, cfg := range []machine.Config{machine.SkylakeConfig(), machine.SparcT4Config(), machine.OpteronConfig()} {
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	return ms
}

func getFixture(t *testing.T) *Characterization {
	t.Helper()
	fixtureOnce.Do(func() {
		var entries []Entry
		for _, name := range fixtureNames {
			p, err := workloads.ByName(name)
			if err != nil {
				fixtureErr = err
				return
			}
			entries = append(entries, Entry{Label: p.Name, Workload: p.Workload()})
		}
		fixture, fixtureErr = Characterize(context.Background(), entries, testMachines(t),
			machine.RunOptions{Instructions: 80_000, WarmupInstructions: 20_000})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

func TestCharacterizeShape(t *testing.T) {
	c := getFixture(t)
	if len(c.Labels) != len(fixtureNames) {
		t.Fatalf("labels %d, want %d", len(c.Labels), len(fixtureNames))
	}
	if len(c.MachineNames) != 3 {
		t.Fatalf("machines %d, want 3", len(c.MachineNames))
	}
	for _, l := range c.Labels {
		for _, m := range c.MachineNames {
			if _, err := c.Sample(l, m); err != nil {
				t.Fatalf("missing sample %s/%s: %v", l, m, err)
			}
			if _, err := c.Raw(l, m); err != nil {
				t.Fatalf("missing raw %s/%s: %v", l, m, err)
			}
		}
	}
}

func TestCharacterizeErrors(t *testing.T) {
	ms := testMachines(t)
	if _, err := Characterize(context.Background(), nil, ms, machine.RunOptions{}); err == nil {
		t.Fatal("no entries must error")
	}
	p, _ := workloads.ByName("505.mcf_r")
	e := Entry{Label: "x", Workload: p.Workload()}
	if _, err := Characterize(context.Background(), []Entry{e}, nil, machine.RunOptions{}); err == nil {
		t.Fatal("no machines must error")
	}
	if _, err := Characterize(context.Background(), []Entry{e, e}, ms, machine.RunOptions{}); err == nil {
		t.Fatal("duplicate labels must error")
	}
	if _, err := Characterize(context.Background(), []Entry{{Label: "", Workload: p.Workload()}}, ms, machine.RunOptions{}); err == nil {
		t.Fatal("empty label must error")
	}
	bad := Entry{Label: "bad", Workload: machine.Workload{Key: "bad", ILP: 0}}
	if _, err := Characterize(context.Background(), []Entry{bad}, ms, machine.RunOptions{Instructions: 1000}); err == nil {
		t.Fatal("invalid workload must surface an error")
	}
}

func TestCharacterizeDeterministicAcrossParallelism(t *testing.T) {
	p, _ := workloads.ByName("541.leela_r")
	entries := []Entry{{Label: p.Name, Workload: p.Workload()}}
	opts := machine.RunOptions{Instructions: 30_000, WarmupInstructions: 5_000}
	a, err := Characterize(context.Background(), entries, testMachines(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(context.Background(), entries, testMachines(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range a.MachineNames {
		ra, _ := a.Raw(p.Name, m)
		rb, _ := b.Raw(p.Name, m)
		if *ra != *rb {
			t.Fatalf("non-deterministic characterization on %s", m)
		}
	}
}

func TestMatrixShape(t *testing.T) {
	c := getFixture(t)
	m, cols, err := c.Matrix(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 19 base metrics on 3 machines + 3 power metrics on Skylake only.
	want := 19*3 + 3
	if m.Cols() != want || len(cols) != want {
		t.Fatalf("matrix has %d columns, want %d", m.Cols(), want)
	}
	if m.Rows() != len(fixtureNames) {
		t.Fatalf("matrix has %d rows", m.Rows())
	}
	// Column naming convention.
	if !strings.Contains(cols[0], ":") {
		t.Fatalf("column name %q missing machine prefix", cols[0])
	}
}

func TestMatrixMetricSubset(t *testing.T) {
	c := getFixture(t)
	m, cols, err := c.Matrix(counters.BranchMetrics(), []string{machine.Skylake})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cols() != 3 || len(cols) != 3 {
		t.Fatalf("branch matrix has %d columns, want 3", m.Cols())
	}
	if _, _, err := c.Matrix(nil, []string{"no-such-machine"}); err == nil {
		t.Fatal("unknown machine must error")
	}
}

func TestSelectAndMerge(t *testing.T) {
	c := getFixture(t)
	sub, err := c.Select([]string{"505.mcf_r", "541.leela_r"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Labels) != 2 {
		t.Fatal("select failed")
	}
	if _, err := c.Select([]string{"nope"}); err == nil {
		t.Fatal("unknown label must error")
	}
	rest, err := c.Select([]string{"525.x264_r"})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sub.Merge(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Labels) != 3 {
		t.Fatal("merge failed")
	}
	if _, err := sub.Merge(sub); err == nil {
		t.Fatal("duplicate merge must error")
	}
}

func TestMetricAcrossAndRange(t *testing.T) {
	c := getFixture(t)
	vals, err := c.MetricAcross("505.mcf_r", counters.L1DMPKI, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("got %d values", len(vals))
	}
	min, max, err := c.MetricRange(c.Labels, machine.Skylake, counters.L1DMPKI)
	if err != nil {
		t.Fatal(err)
	}
	if min > max {
		t.Fatal("min > max")
	}
	if max < 20 {
		t.Fatalf("L1D MPKI max %v suspiciously low for a set containing mcf and fotonik3d", max)
	}
}

func TestBehaviouralSeparation(t *testing.T) {
	// The substrate must reproduce the paper's headline contrasts on
	// Skylake.
	c := getFixture(t)
	v := func(label string, m counters.Metric) float64 {
		s, err := c.Sample(label, machine.Skylake)
		if err != nil {
			t.Fatal(err)
		}
		return s.MustValue(m)
	}
	if v("505.mcf_r", counters.L1DMPKI) < 4*v("541.leela_r", counters.L1DMPKI) {
		t.Error("mcf should miss L1D far more than leela")
	}
	if v("549.fotonik3d_r", counters.L1DMPKI) < v("505.mcf_r", counters.L1DMPKI) {
		t.Error("fotonik3d should have the highest L1D MPKI")
	}
	if v("541.leela_r", counters.BranchMPKI) < v("508.namd_r", counters.BranchMPKI)*3 {
		t.Error("leela should mispredict far more than namd")
	}
	if v("523.xalancbmk_r", counters.PctBranch) < 25 {
		t.Error("xalancbmk should have ~33% branches")
	}
}

func TestSimilarityPipeline(t *testing.T) {
	c := getFixture(t)
	sim, err := c.Similarity(DefaultSimilarityOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sim.NumPCs < 1 || sim.NumPCs > len(c.Labels)-1 {
		t.Fatalf("retained %d PCs for %d workloads", sim.NumPCs, len(c.Labels))
	}
	if len(sim.Points) != len(c.Labels) {
		t.Fatal("points/labels mismatch")
	}
	if sim.Dendrogram == nil || sim.Dendrogram.Root.Size() != len(c.Labels) {
		t.Fatal("dendrogram missing leaves")
	}
	// Subsetting invariants.
	res := sim.Subset(3)
	if len(res.Clusters) != 3 || len(res.Representatives) != 3 {
		t.Fatalf("subset = %+v", res)
	}
	total := 0
	for _, cl := range res.Clusters {
		total += len(cl)
	}
	if total != len(c.Labels) {
		t.Fatal("clusters must partition the workloads")
	}
	if res.CutHeight <= 0 {
		t.Fatal("cut height must be positive")
	}
}

func TestSimilarityMetricGroups(t *testing.T) {
	c := getFixture(t)
	sim, err := c.Similarity(SimilarityOptions{
		Metrics: counters.BranchMetrics(), Linkage: cluster.Ward,
	})
	if err != nil {
		t.Fatal(err)
	}
	// In branch space, leela (high mispredicts) should be far from
	// namd (predictable FP loops); x264 should be near namd.
	dLeelaNamd, err := sim.EuclideanDistance("541.leela_r", "508.namd_r")
	if err != nil {
		t.Fatal(err)
	}
	dX264Namd, err := sim.EuclideanDistance("525.x264_r", "508.namd_r")
	if err != nil {
		t.Fatal(err)
	}
	if dLeelaNamd < dX264Namd {
		t.Errorf("branch space: leela-namd (%v) should exceed x264-namd (%v)", dLeelaNamd, dX264Namd)
	}
}

func TestScatterPoints(t *testing.T) {
	c := getFixture(t)
	sim, _ := c.Similarity(DefaultSimilarityOptions())
	pts, err := sim.ScatterPoints(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(c.Labels) {
		t.Fatal("scatter points count wrong")
	}
	if _, err := sim.ScatterPoints(0, 999); err == nil {
		t.Fatal("out-of-range PC must error")
	}
	if cols := sim.DominantColumns(0, 3); len(cols) != 3 {
		t.Fatal("DominantColumns failed")
	}
}

func TestNearestNeighborAndMedian(t *testing.T) {
	c := getFixture(t)
	sim, _ := c.Similarity(DefaultSimilarityOptions())
	near, dist, err := sim.NearestNeighbor(
		[]string{"505.mcf_r"},
		[]string{"541.leela_r", "549.fotonik3d_r", "508.namd_r"})
	if err != nil {
		t.Fatal(err)
	}
	if near["505.mcf_r"] == "" || dist["505.mcf_r"] <= 0 {
		t.Fatalf("nearest = %v, dist = %v", near, dist)
	}
	med, err := sim.MedianPairwiseDistance(c.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if med <= 0 {
		t.Fatal("median distance must be positive")
	}
	if _, err := sim.MedianPairwiseDistance([]string{"505.mcf_r"}); err == nil {
		t.Fatal("single label must error")
	}
	if _, _, err := sim.NearestNeighbor([]string{"nope"}, c.Labels); err == nil {
		t.Fatal("unknown query must error")
	}
}

func TestPairDistanceSymmetry(t *testing.T) {
	c := getFixture(t)
	sim, _ := c.Similarity(DefaultSimilarityOptions())
	ab, err := sim.PairDistance("505.mcf_r", "508.namd_r")
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := sim.PairDistance("508.namd_r", "505.mcf_r")
	if ab != ba || ab <= 0 {
		t.Fatalf("pair distance %v/%v", ab, ba)
	}
}

func TestStacksAndPerfDB(t *testing.T) {
	c := getFixture(t)
	stacks, err := c.Stacks(machine.Skylake)
	if err != nil {
		t.Fatal(err)
	}
	if len(stacks) != len(c.Labels) {
		t.Fatal("stack count wrong")
	}
	// mcf's stack must be memory-dominated relative to x264's.
	if stacks["505.mcf_r"].Memory+stacks["505.mcf_r"].L3 <= stacks["525.x264_r"].Memory+stacks["525.x264_r"].L3 {
		t.Error("mcf should spend more CPI in memory than x264")
	}
	db, err := c.BuildPerfDB(machine.Skylake, perfdb.SystemsFor("rate-int"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.Validate(c.Labels[:2], c.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(v.Avg) {
		t.Fatal("validation produced NaN")
	}
}

func TestSensitivity(t *testing.T) {
	c := getFixture(t)
	res, err := c.Sensitivity(counters.L1DMPKI, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Class) != len(c.Labels) {
		t.Fatal("every workload must be classified")
	}
	nHigh := len(res.Labels(HighSensitivity))
	if nHigh == 0 {
		t.Fatal("at least one workload must be High-sensitivity")
	}
	for _, l := range c.Labels {
		if res.Spread[l] < 0 {
			t.Fatal("negative spread")
		}
	}
	if _, err := c.Sensitivity(counters.L1DMPKI, []string{machine.Skylake}); err == nil {
		t.Fatal("single machine must error")
	}
}

func TestSimulationTimeReduction(t *testing.T) {
	icounts := map[string]float64{"a": 10, "b": 20, "c": 30}
	r, err := SimulationTimeReduction([]string{"a"}, []string{"a", "b", "c"}, icounts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-6) > 1e-12 {
		t.Fatalf("reduction = %v, want 6", r)
	}
	if _, err := SimulationTimeReduction([]string{"zz"}, []string{"a"}, icounts); err == nil {
		t.Fatal("unknown label must error")
	}
}

func TestSensitivityClassString(t *testing.T) {
	if LowSensitivity.String() != "Low" || MediumSensitivity.String() != "Medium" ||
		HighSensitivity.String() != "High" {
		t.Fatal("class names wrong")
	}
}
