package core

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"repro/internal/counters"
	"repro/internal/machine"
)

func TestWriteCSV(t *testing.T) {
	c := getFixture(t)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != len(c.Labels)+1 {
		t.Fatalf("CSV has %d rows, want %d", len(records), len(c.Labels)+1)
	}
	wantCols := 19*3 + 3 + 1 // base metrics on 3 machines + Skylake power + label
	if len(records[0]) != wantCols {
		t.Fatalf("CSV has %d columns, want %d", len(records[0]), wantCols)
	}
	if records[0][0] != "workload" {
		t.Fatalf("header starts with %q", records[0][0])
	}
	// Every data cell must parse as a float, and the values must match
	// the samples exactly.
	colIdx := -1
	for j, h := range records[0] {
		if h == machine.Skylake+":l1d_mpki" {
			colIdx = j
		}
	}
	if colIdx < 0 {
		t.Fatal("missing skylake l1d column")
	}
	for i := 1; i < len(records); i++ {
		v, err := strconv.ParseFloat(records[i][colIdx], 64)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		s, err := c.Sample(records[i][0], machine.Skylake)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MustValue(counters.L1DMPKI); got != v {
			t.Fatalf("row %d: CSV %v != sample %v", i, v, got)
		}
	}
}

func TestWriteCSVMetricSubset(t *testing.T) {
	c := getFixture(t)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf, counters.BranchMetrics(), []string{machine.Skylake}); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records[0]) != 4 { // label + 3 branch metrics
		t.Fatalf("subset CSV has %d columns", len(records[0]))
	}
}

func TestWriteCSVUnknownMachine(t *testing.T) {
	c := getFixture(t)
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf, nil, []string{"nope"}); err == nil {
		t.Fatal("unknown machine must error")
	}
}
