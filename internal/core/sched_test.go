package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/workloads"
)

// schedEntries returns a small entry list for scheduler tests.
func schedEntries(t *testing.T, names ...string) []Entry {
	t.Helper()
	var entries []Entry
	for _, name := range names {
		p, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, Entry{Label: p.Name, Workload: p.Workload()})
	}
	return entries
}

// TestCharacterizeScheduledMatchesUnscheduled: the scheduler changes
// when and where measurements run, never what they produce.
func TestCharacterizeScheduledMatchesUnscheduled(t *testing.T) {
	entries := schedEntries(t, "505.mcf_r", "541.leela_r")
	machines := testMachines(t)[:2]
	opts := machine.RunOptions{Instructions: 2_000}

	want, err := CharacterizeStored(context.Background(), entries, machines, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(2, nil)
	got, err := CharacterizeScheduled(context.Background(), entries, machines, opts, nil, pool.Queue(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range want.Labels {
		for _, m := range want.MachineNames {
			wrc, err := want.Raw(label, m)
			if err != nil {
				t.Fatal(err)
			}
			grc, err := got.Raw(label, m)
			if err != nil {
				t.Fatalf("scheduled characterization missing %s on %s: %v", label, m, err)
			}
			if *wrc != *grc {
				t.Errorf("%s on %s: scheduled and unscheduled raw counts differ", label, m)
			}
		}
	}
}

// TestCharacterizeScheduledSharesMeasurements is the batch-overlap
// invariant end to end: two characterizations of the same entries
// submitted through one shared scheduler perform each simulation
// exactly once. The pool's only worker is held by a blocker job until
// the second characterization has joined every one of the first's
// pending jobs, so the dedup cannot be timing luck.
func TestCharacterizeScheduledSharesMeasurements(t *testing.T) {
	entries := schedEntries(t, "505.mcf_r", "541.leela_r")
	machines := testMachines(t)[:2]
	opts := machine.RunOptions{Instructions: 2_000}
	pairs := len(entries) * len(machines)

	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewPool(1, nil)

	// Hold the single worker so every measurement of both
	// characterizations is still pending when the overlap happens.
	release := make(chan struct{})
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		pool.Queue(0).Do(context.Background(), "blocker", func(context.Context) (any, error) {
			<-release
			return nil, nil
		})
	}()
	waitForPool(t, pool, func(s sched.Stats) bool { return s.Inflight == 1 })

	type result struct {
		c   *Characterization
		err error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			c, err := CharacterizeScheduled(context.Background(), entries, machines, opts, st, pool.Queue(0))
			results <- result{c, err}
		}()
	}
	// Both characterizations have fanned out: pairs jobs queued, and
	// the latecomer joined every one of them.
	waitForPool(t, pool, func(s sched.Stats) bool {
		return s.Depth == pairs && s.DedupHits >= int64(pairs)
	})
	close(release)
	<-blockerDone

	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.c.Labels) != len(entries) {
			t.Fatalf("characterization has %d labels, want %d", len(r.c.Labels), len(entries))
		}
	}
	// Every pair simulated once: the store led exactly `pairs`
	// computations, and the scheduler deduplicated the rest.
	if misses := st.Stats().Misses; misses != int64(pairs) {
		t.Errorf("simulations = %d, want %d (overlapping characterizations must share)", misses, pairs)
	}
	if hits := pool.Stats().DedupHits; hits < int64(pairs) {
		t.Errorf("sched dedup hits = %d, want >= %d", hits, pairs)
	}
}

// TestCharacterizeScheduledCancellation: canceling the caller's
// context abandons the characterization promptly and reports the
// context error.
func TestCharacterizeScheduledCancellation(t *testing.T) {
	entries := schedEntries(t, "505.mcf_r", "541.leela_r")
	machines := testMachines(t)[:2]
	pool := sched.NewPool(1, nil)

	// Hold the worker so nothing can finish, then cancel.
	release := make(chan struct{})
	defer close(release)
	go pool.Queue(0).Do(context.Background(), "blocker", func(context.Context) (any, error) {
		<-release
		return nil, nil
	})
	waitForPool(t, pool, func(s sched.Stats) bool { return s.Inflight == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := CharacterizeScheduled(ctx, entries, machines, machine.RunOptions{Instructions: 2_000}, nil, pool.Queue(0))
		done <- err
	}()
	waitForPool(t, pool, func(s sched.Stats) bool { return s.Depth > 0 })
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled characterization did not return")
	}
	// The abandoned jobs were dropped from the queue.
	waitForPool(t, pool, func(s sched.Stats) bool { return s.Depth == 0 })
}

func waitForPool(t *testing.T, p *sched.Pool, cond func(sched.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(p.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for pool condition; stats %+v", p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
