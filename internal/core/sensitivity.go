package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/counters"
)

// SensitivityClass buckets a benchmark's configuration sensitivity,
// per the paper's Table IX.
type SensitivityClass int

// Sensitivity classes, from least to most sensitive.
const (
	LowSensitivity SensitivityClass = iota
	MediumSensitivity
	HighSensitivity
)

// String returns the class name used in Table IX.
func (s SensitivityClass) String() string {
	switch s {
	case LowSensitivity:
		return "Low"
	case MediumSensitivity:
		return "Medium"
	case HighSensitivity:
		return "High"
	default:
		return fmt.Sprintf("SensitivityClass(%d)", int(s))
	}
}

// SensitivityResult ranks workloads by how much their metric moves
// across machines, normalized by its magnitude.
type SensitivityResult struct {
	Metric counters.Metric
	// Spread maps each label to its cross-machine dispersion (the
	// coefficient of variation of the metric across the machine set);
	// larger = more configuration-sensitive. The paper ranks by
	// cross-machine rank differences; the coefficient of variation is
	// the continuous analogue and is stable for benchmarks pinned at
	// the extremes of the ranking.
	Spread map[string]float64
	// Class maps each label to its Low/Medium/High bucket.
	Class map[string]SensitivityClass
}

// Labels returns the workloads of one class, sorted by descending
// spread (ties lexicographic).
func (r *SensitivityResult) Labels(class SensitivityClass) []string {
	var out []string
	for l, cl := range r.Class {
		if cl == class {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if r.Spread[out[i]] != r.Spread[out[j]] {
			return r.Spread[out[i]] > r.Spread[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Sensitivity implements the paper's Section V-G analysis: a workload
// whose metric moves a lot across differently-configured machines is
// sensitive to that structure's configuration; one whose metric is
// stable (whether uniformly good or uniformly bad — leela's branches
// are poor on every predictor) is insensitive. Dispersion is measured
// as the coefficient of variation of the metric across machines; the
// top ~15% of workloads are High, the next ~35% Medium, the rest Low.
func (c *Characterization) Sensitivity(metric counters.Metric, machines []string) (*SensitivityResult, error) {
	if machines == nil {
		machines = c.MachineNames
	}
	if len(machines) < 2 {
		return nil, fmt.Errorf("core: sensitivity needs at least 2 machines")
	}
	n := len(c.Labels)
	if n < 3 {
		return nil, fmt.Errorf("core: sensitivity needs at least 3 workloads")
	}

	res := &SensitivityResult{
		Metric: metric,
		Spread: make(map[string]float64, n),
		Class:  make(map[string]SensitivityClass, n),
	}
	// floor keeps near-zero metrics from reporting explosive relative
	// variation: differences below it are measurement noise.
	floor := metricFloor(metric)
	spreads := make([]float64, 0, n)
	for _, l := range c.Labels {
		vals, err := c.MetricAcross(l, metric, machines)
		if err != nil {
			return nil, err
		}
		mean, sd := meanStddev(vals)
		cv := sd / (mean + floor)
		res.Spread[l] = cv
		spreads = append(spreads, cv)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(spreads)))
	highCut := spreads[(n-1)*15/100] // ~top 15%
	medCut := spreads[(n-1)*50/100]  // next ~35%
	for _, l := range c.Labels {
		switch sp := res.Spread[l]; {
		case sp >= highCut:
			res.Class[l] = HighSensitivity
		case sp > medCut:
			res.Class[l] = MediumSensitivity
		default:
			res.Class[l] = LowSensitivity
		}
	}
	return res, nil
}

// metricFloor returns the noise floor used to regularize the
// coefficient of variation, in the metric's own units.
func metricFloor(metric counters.Metric) float64 {
	switch metric {
	case counters.ITLBMPMI, counters.DTLBMPMI, counters.L2TLBMPMI, counters.PageWalksPMI:
		return 100 // per-million-instruction metrics
	default:
		return 0.5 // per-kilo-instruction metrics
	}
}

func meanStddev(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return mean, sd
}
