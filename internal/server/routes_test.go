package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestWrongMethodEveryRoute hits every registered route with a method
// it does not serve and requires the uniform treatment: 405, an Allow
// header listing what would have worked, and the standard error
// envelope — never the stdlib's bare text response.
func TestWrongMethodEveryRoute(t *testing.T) {
	s, _ := newTestServer(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// allowed[pattern] = set of methods the route table registers.
	allowed := map[string]map[string]bool{}
	for _, rt := range s.routes {
		if allowed[rt.pattern] == nil {
			allowed[rt.pattern] = map[string]bool{}
		}
		allowed[rt.pattern][rt.method] = true
	}
	pool := []string{"DELETE", "POST", "PUT", "PATCH", "GET"}

	for pattern, methods := range allowed {
		path := strings.ReplaceAll(pattern, "{id}", "table1")
		var wrong string
		for _, m := range pool {
			if !methods[m] {
				wrong = m
				break
			}
		}
		req, err := http.NewRequest(wrong, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", wrong, path, err)
		}
		var e errorEnvelope
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", wrong, path, resp.StatusCode)
			continue
		}
		if err != nil {
			t.Errorf("%s %s: body is not the error envelope: %v", wrong, path, err)
			continue
		}
		if e.Error.Code != "method_not_allowed" {
			t.Errorf("%s %s: code %q, want method_not_allowed", wrong, path, e.Error.Code)
		}
		hdr := resp.Header.Get("Allow")
		for m := range methods {
			if !strings.Contains(hdr, m) {
				t.Errorf("%s %s: Allow %q missing %s", wrong, path, hdr, m)
			}
		}
	}
}

// TestNotFoundEnvelope: unknown paths get the envelope too, pointing
// at the discovery document.
func TestNotFoundEnvelope(t *testing.T) {
	s, _ := newTestServer(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/v1/nope", "/nope", "/v1/jobs/x/y/z"} {
		code, body := get(t, ts, path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, code)
			continue
		}
		var e errorEnvelope
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("GET %s: body is not the error envelope: %s", path, body)
			continue
		}
		if e.Error.Code != "not_found" {
			t.Errorf("GET %s: code %q, want not_found", path, e.Error.Code)
		}
	}
}

// TestDiscoveryDocument: GET /v1 describes exactly the route table.
func TestDiscoveryDocument(t *testing.T) {
	s, _ := newTestServer(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var doc struct {
		Service    string `json:"service"`
		APIVersion string `json:"api_version"`
		Endpoints  []struct {
			Method string `json:"method"`
			Path   string `json:"path"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Service != "spec17d" || doc.APIVersion != "v1" {
		t.Errorf("service/api_version = %q/%q", doc.Service, doc.APIVersion)
	}
	if len(doc.Endpoints) != len(s.routes) {
		t.Fatalf("discovery lists %d endpoints, route table has %d", len(doc.Endpoints), len(s.routes))
	}
	for i, rt := range s.routes {
		if doc.Endpoints[i].Method != rt.method || doc.Endpoints[i].Path != rt.pattern {
			t.Errorf("endpoint %d = %s %s, want %s %s",
				i, doc.Endpoints[i].Method, doc.Endpoints[i].Path, rt.method, rt.pattern)
		}
	}
}

// TestCatalogPagination: ?limit=/?offset= window the catalog and
// X-Total-Count always carries the full size.
func TestCatalogPagination(t *testing.T) {
	s, _ := newTestServer(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	all := experiments.IDs()
	resp, err := ts.Client().Get(ts.URL + "/v1/experiments?limit=2&offset=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if tc := resp.Header.Get("X-Total-Count"); tc != strconv.Itoa(len(all)) {
		t.Errorf("X-Total-Count = %q, want %d", tc, len(all))
	}
	var got struct {
		Total       int `json:"total"`
		Count       int `json:"count"`
		Offset      int `json:"offset"`
		Experiments []struct {
			ID string `json:"id"`
		} `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Total != len(all) || got.Count != 2 || got.Offset != 1 {
		t.Fatalf("total/count/offset = %d/%d/%d, want %d/2/1", got.Total, got.Count, got.Offset, len(all))
	}
	for i, e := range got.Experiments {
		if e.ID != all[1+i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, all[1+i])
		}
	}

	// Offset past the end is an empty page, not an error.
	code, body := get(t, ts, "/v1/experiments?offset=9999")
	if code != http.StatusOK {
		t.Fatalf("offset past end: status %d", code)
	}
	var past struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &past); err != nil {
		t.Fatal(err)
	}
	if past.Count != 0 {
		t.Errorf("offset past end: count = %d, want 0", past.Count)
	}

	for _, bad := range []string{"?limit=-1", "?limit=x", "?offset=-2", "?page=1"} {
		code, body := get(t, ts, "/v1/experiments"+bad)
		if code != http.StatusBadRequest {
			t.Errorf("GET /v1/experiments%s: status %d, want 400 (body %s)", bad, code, body)
		}
	}
}

// TestEmptyParamRejected: a query parameter that is present but empty
// is a client mistake everywhere — before this check, /v1/traces
// ?experiment= silently matched nothing while ?engine= was a 400,
// depending on the endpoint. Now every endpoint answers the same 400.
func TestEmptyParamRejected(t *testing.T) {
	s, computations := newTestServer(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/v1/traces?experiment=",
		"/v1/traces?min_ms=",
		"/v1/experiments?limit=",
		"/v1/experiments/table1?instructions=",
		"/v1/experiments/table1?warmup=",
		"/v1/report?instructions=",
		"/v1/batch?experiments=table1&concurrency=",
		"/v1/jobs?offset=",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400 (body %s)", path, code, body)
			continue
		}
		if !strings.Contains(string(body), "present but empty") {
			t.Errorf("GET %s: body %s does not explain the empty parameter", path, body)
		}
		var e errorEnvelope
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code == "" {
			t.Errorf("GET %s: body is not the error envelope: %s", path, body)
		}
	}
	if n := computations.Load(); n != 0 {
		t.Errorf("empty-param requests started %d computations, want 0", n)
	}
}
