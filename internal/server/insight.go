package server

// The insight plane's HTTP surface: metric history, accuracy drift,
// and anomaly events. These routes exist only when Config.Insight is
// set — a daemon without the plane 404s them through the ordinary
// fallback — and, like the rest of the observability surface, they
// are untraced and unadmitted, so a saturated daemon still answers
// them.

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/insight"
	"repro/internal/server/api"
)

// handleMetricsHistory is GET /v1/metrics/history: one metric family's
// sampled time series over ?window=, with rate and percentile
// derivation (see insight.Recorder.History).
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k, vs := range q {
		switch k {
		case "name", "window":
		default:
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("unknown query parameter %q (valid: name, window)", k), nil)
			return
		}
		if len(vs) > 1 {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("query parameter %q given %d times, want at most once", k, len(vs)), nil)
			return
		}
	}
	if err := api.NoEmptyParams(q); err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	name := q.Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, codeBadOptions,
			"missing required query parameter \"name\"", nil)
		return
	}
	var window time.Duration
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("window=%q: must be a positive duration (e.g. 5m)", v), nil)
			return
		}
		window = d
	}
	ins := s.cfg.Insight
	h, ok := ins.Recorder().History(name, window, ins.Interval(), time.Now())
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeNotFound,
			fmt.Sprintf("no sampled metric named %q", name), ins.Recorder().Names())
		return
	}
	writeJSON(w, http.StatusOK, h)
}

// accuracyResponse is the GET /v1/accuracy body.
type accuracyResponse struct {
	// Enabled reports whether the drift monitor has a store to scan —
	// without one there is nothing to pair.
	Enabled bool `json:"enabled"`
	insight.AccuracyStatus
}

// handleAccuracy is GET /v1/accuracy: the drift monitor's running
// totals and worst offenders. A scan runs first so the answer reflects
// every upgrade that has landed, not just the last tick's.
func (s *Server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	if len(r.URL.Query()) != 0 {
		writeError(w, http.StatusBadRequest, codeBadOptions,
			"GET /v1/accuracy takes no query parameters", nil)
		return
	}
	d := s.cfg.Insight.Drift()
	d.Scan()
	writeJSON(w, http.StatusOK, accuracyResponse{
		Enabled:        s.cfg.Store != nil,
		AccuracyStatus: d.Status(),
	})
}

// eventsResponse is the GET /v1/events body.
type eventsResponse struct {
	Count  int             `json:"count"`
	Events []insight.Event `json:"events"`
}

// handleEvents is GET /v1/events: the anomaly-event ring, newest
// first. ?type= keeps one event class, ?since= (RFC 3339) a time
// range, ?limit= bounds the count (default 100).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k, vs := range q {
		switch k {
		case "type", "since", "limit":
		default:
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("unknown query parameter %q (valid: type, since, limit)", k), nil)
			return
		}
		if len(vs) > 1 {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("query parameter %q given %d times, want at most once", k, len(vs)), nil)
			return
		}
	}
	if err := api.NoEmptyParams(q); err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	var typ insight.EventType
	if v := q.Get("type"); v != "" {
		known := insight.KnownEventTypes()
		ok := false
		names := make([]string, 0, len(known))
		for _, t := range known {
			names = append(names, string(t))
			ok = ok || string(t) == v
		}
		if !ok {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("unknown event type %q", v), names)
			return
		}
		typ = insight.EventType(v)
	}
	var since time.Time
	if v := q.Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("since=%q: must be an RFC 3339 timestamp", v), nil)
			return
		}
		since = t
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("limit=%q: must be a positive integer", v), nil)
			return
		}
		limit = n
	}
	evs := s.cfg.Insight.Events().Events(typ, since, limit)
	if evs == nil {
		evs = []insight.Event{}
	}
	writeJSON(w, http.StatusOK, eventsResponse{Count: len(evs), Events: evs})
}
