package server

import "testing"

func TestLRUEvictionOrder(t *testing.T) {
	l := newLRU(2)
	l.put("a", 1)
	l.put("b", 2)
	if _, ok := l.get("a"); !ok { // refresh a: b is now oldest
		t.Fatal("a missing")
	}
	if evicted := l.put("c", 3); !evicted {
		t.Error("inserting over capacity did not evict")
	}
	if _, ok := l.get("b"); ok {
		t.Error("b survived eviction; LRU order not respected")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := l.get(k); !ok {
			t.Errorf("%s missing", k)
		}
	}
	if l.len() != 2 {
		t.Errorf("len = %d, want 2", l.len())
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	l := newLRU(2)
	l.put("a", 1)
	if evicted := l.put("a", 2); evicted {
		t.Error("updating an existing key evicted")
	}
	v, ok := l.get("a")
	if !ok || v.(int) != 2 {
		t.Errorf("get(a) = %v, %v; want 2", v, ok)
	}
	if l.len() != 1 {
		t.Errorf("len = %d, want 1", l.len())
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	l := newLRU(0) // clamped to 1
	l.put("a", 1)
	l.put("b", 2)
	if l.len() != 1 {
		t.Errorf("len = %d, want 1", l.len())
	}
}
