package server

// The route table is the single source of truth for the /v1 surface:
// New builds the mux from it, handleFallback computes 404s and
// method-not-allowed responses (405 + Allow) from it, and
// handleDiscovery serves it as the GET /v1 discovery document — so
// the three can never disagree about what the API looks like.

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/server/api"
)

// routeDef is one registered endpoint.
type routeDef struct {
	method  string
	pattern string // ServeMux pattern; {x} segments are wildcards
	// traced arms the compute-request path: admission gate, request
	// deadline, root trace span. Observability endpoints stay false so
	// a saturated daemon still answers them.
	traced bool
	// raw skips the instrument wrapper entirely (/metrics: scraping
	// must not count itself into the metrics it reads).
	raw bool
	// params lists the recognized query parameters, for discovery.
	params []string
	desc   string
	h      http.HandlerFunc
}

// routeTable returns every endpoint this server serves. Order is the
// discovery-document order.
func (s *Server) routeTable() []routeDef {
	runParams := []string{"instructions", "warmup", "engine"}
	routes := []routeDef{
		{method: "GET", pattern: "/v1", h: s.handleDiscovery,
			desc: "this discovery document"},
		{method: "GET", pattern: "/v1/experiments", h: s.handleCatalog,
			params: []string{"limit", "offset"},
			desc:   "experiment catalog (paginated; X-Total-Count carries the full size)"},
		{method: "GET", pattern: "/v1/experiments/{id}", traced: true, h: s.handleExperiment,
			params: runParams,
			desc:   "run one experiment at the requested fidelity and engine tier"},
		{method: "GET", pattern: "/v1/report", traced: true, h: s.handleReport,
			params: runParams,
			desc:   "run the full report"},
		{method: "GET", pattern: "/v1/batch", traced: true, h: s.handleBatch,
			params: []string{"experiments", "instructions", "warmup", "concurrency", "engine"},
			desc:   "stream a set of experiments as NDJSON, one line per result"},
		{method: "POST", pattern: "/v1/batch", traced: true, h: s.handleBatch,
			desc: "stream a set of experiments as NDJSON (JSON body)"},
		{method: "GET", pattern: "/v1/status", h: s.handleStatus,
			desc: "operator status snapshot"},
		{method: "GET", pattern: "/v1/traces", h: s.handleTraces,
			params: []string{"min_ms", "experiment", "limit"},
			desc:   "recent request traces, newest first"},
		{method: "GET", pattern: "/v1/healthz", h: s.handleLiveness,
			desc: "liveness: 200 while accepting work, 503 once draining"},
		{method: "GET", pattern: "/healthz", h: s.handleHealthz,
			desc: "plain-text liveness probe"},
		{method: "GET", pattern: "/metrics", raw: true, h: s.handleMetrics,
			desc: "Prometheus text exposition"},
	}
	if s.cfg.Insight != nil {
		routes = append(routes,
			routeDef{method: "GET", pattern: "/v1/metrics/history", h: s.handleMetricsHistory,
				params: []string{"name", "window"},
				desc:   "one metric family's sampled history with rate/percentile derivation"},
			routeDef{method: "GET", pattern: "/v1/accuracy", h: s.handleAccuracy,
				desc: "analytic-vs-exact drift totals and worst offenders"},
			routeDef{method: "GET", pattern: "/v1/events", h: s.handleEvents,
				params: []string{"type", "since", "limit"},
				desc:   "recorded anomaly events, newest first"},
		)
	}
	if !s.cfg.JobsDisabled {
		routes = append(routes,
			routeDef{method: "POST", pattern: "/v1/jobs", traced: true, h: s.handleJobSubmit,
				desc: "submit an async experiment sweep; answers 202 with the job record"},
			routeDef{method: "GET", pattern: "/v1/jobs", h: s.handleJobList,
				params: []string{"limit", "offset"},
				desc:   "list jobs, newest first (paginated)"},
			routeDef{method: "GET", pattern: "/v1/jobs/{id}", h: s.handleJobGet,
				desc: "one job's record and per-item progress"},
			routeDef{method: "DELETE", pattern: "/v1/jobs/{id}", h: s.handleJobCancel,
				desc: "cancel a job (idempotent)"},
			routeDef{method: "GET", pattern: "/v1/jobs/{id}/results", traced: true, h: s.handleJobResults,
				desc: "a finished job's results as NDJSON, in submission order"},
			routeDef{method: "GET", pattern: "/v1/jobs/{id}/events", h: s.handleJobEvents,
				desc: "per-job progress events as SSE, ending at the terminal state"},
		)
	}
	return routes
}

// patternMatches reports whether path matches the ServeMux pattern,
// treating {x} segments as single-segment wildcards.
func patternMatches(pattern, path string) bool {
	ps := strings.Split(pattern, "/")
	xs := strings.Split(path, "/")
	if len(ps) != len(xs) {
		return false
	}
	for i := range ps {
		if strings.HasPrefix(ps[i], "{") && strings.HasSuffix(ps[i], "}") {
			if xs[i] == "" {
				return false
			}
			continue
		}
		if ps[i] != xs[i] {
			return false
		}
	}
	return true
}

// handleFallback answers everything the explicit routes did not: a
// known path requested with the wrong method gets 405 with an Allow
// header (the mux routes method mismatches here because the catch-all
// "/" pattern matches them), and an unknown path gets 404 — both in
// the same error envelope every other endpoint uses.
func (s *Server) handleFallback(w http.ResponseWriter, r *http.Request) {
	var allowed []string
	for _, rt := range s.routes {
		if !patternMatches(rt.pattern, r.URL.Path) {
			continue
		}
		dup := false
		for _, m := range allowed {
			dup = dup || m == rt.method
		}
		if !dup {
			allowed = append(allowed, rt.method)
		}
	}
	if len(allowed) > 0 {
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		writeError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
			fmt.Sprintf("method %s is not allowed for %s (allowed: %s)",
				r.Method, r.URL.Path, strings.Join(allowed, ", ")), nil)
		return
	}
	writeError(w, http.StatusNotFound, api.CodeNotFound,
		fmt.Sprintf("no such endpoint: %s %s (see GET /v1 for the API surface)",
			r.Method, r.URL.Path), nil)
}

// discoveryEndpoint is one row of the GET /v1 document.
type discoveryEndpoint struct {
	Method      string   `json:"method"`
	Path        string   `json:"path"`
	Params      []string `json:"params,omitempty"`
	Description string   `json:"description"`
}

// handleDiscovery is GET /v1: the machine-readable API surface,
// generated from the same table the mux was built from.
func (s *Server) handleDiscovery(w http.ResponseWriter, _ *http.Request) {
	eps := make([]discoveryEndpoint, 0, len(s.routes))
	for _, rt := range s.routes {
		eps = append(eps, discoveryEndpoint{
			Method:      rt.method,
			Path:        rt.pattern,
			Params:      rt.params,
			Description: rt.desc,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Service    string              `json:"service"`
		APIVersion string              `json:"api_version"`
		Endpoints  []discoveryEndpoint `json:"endpoints"`
	}{"spec17d", "v1", eps})
}
