package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sched"
)

// getWithHeaders is get with extra request headers.
func getWithHeaders(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp, body
}

// requireShedEnvelope asserts a 429 too_many_requests envelope with an
// integer Retry-After, returning the parsed delay.
func requireShedEnvelope(t *testing.T, resp *http.Response, body []byte) int {
	t.Helper()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	var e errorEnvelope
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("body %q is not an error envelope: %v", body, err)
	}
	if e.Error.Code != codeTooManyRequests {
		t.Errorf("error code %q, want %q", e.Error.Code, codeTooManyRequests)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without a Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q does not parse as an integer: %v", ra, err)
	}
	if secs < 1 {
		t.Errorf("Retry-After = %d, want >= 1", secs)
	}
	return secs
}

func TestRateLimit429(t *testing.T) {
	s, computations := newTestServer(Config{RateLimit: 0.001, Burst: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The bucket holds one token: the first request passes...
	if code, body := get(t, ts, "/v1/experiments/table1"); code != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", code, body)
	}
	// ...and the second is shed with the full 429 contract.
	resp, body := getWithHeaders(t, ts, "/v1/experiments/table1", nil)
	requireShedEnvelope(t, resp, body)
	if n := computations.Load(); n != 1 {
		t.Errorf("computations = %d, want 1 (shed request must not compute)", n)
	}
	if v := metricValue(t, ts, `spec17_admission_rejected_total{reason="rate_limited"}`); v != 1 {
		t.Errorf("rejected_total{rate_limited} = %v, want 1", v)
	}

	// The snapshot surfaces through /v1/status.
	code, body := get(t, ts, "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("/v1/status: %d", code)
	}
	var st struct {
		Admission struct {
			RateLimit float64          `json:"rate_limit"`
			Rejected  map[string]int64 `json:"rejected"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.RateLimit != 0.001 || st.Admission.Rejected["rate_limited"] != 1 {
		t.Errorf("status admission = %+v", st.Admission)
	}
}

// TestClientKeying: API keys carve out separate budgets; without one,
// the remote IP is the client, so a drained anonymous bucket must not
// block a keyed client and vice versa.
func TestClientKeying(t *testing.T) {
	s, _ := newTestServer(Config{RateLimit: 0.001, Burst: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := get(t, ts, "/v1/experiments/table1"); code != http.StatusOK {
		t.Fatal("anonymous first request rejected")
	}
	if resp, body := getWithHeaders(t, ts, "/v1/experiments/table1", nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("anonymous second request: %d, want 429 (%s)", resp.StatusCode, body)
	}
	// A keyed client has its own untouched bucket.
	if resp, body := getWithHeaders(t, ts, "/v1/experiments/table1", map[string]string{"X-API-Key": "alice"}); resp.StatusCode != http.StatusOK {
		t.Errorf("keyed client shared the anonymous bucket: %d (%s)", resp.StatusCode, body)
	}
	// And keys are isolated from one another.
	if resp, _ := getWithHeaders(t, ts, "/v1/experiments/table1", map[string]string{"X-API-Key": "alice"}); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("alice's drained bucket admitted: %d", resp.StatusCode)
	}
	if resp, _ := getWithHeaders(t, ts, "/v1/experiments/table1", map[string]string{"X-API-Key": "bob"}); resp.StatusCode != http.StatusOK {
		t.Errorf("bob was charged for alice's requests: %d", resp.StatusCode)
	}
}

// TestCostModelCharging: one expensive report costs as much as the
// whole registry at that fidelity, so it exhausts a budget a cheap
// experiment request would not.
func TestCostModelCharging(t *testing.T) {
	s, _ := newTestServer(Config{RateLimit: 0.001, Burst: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The report prices at len(registry) tokens — far over Burst=3, so
	// it is clamped to a full bucket: admitted once, drained after.
	if code, body := get(t, ts, "/v1/report"); code != http.StatusOK {
		t.Fatalf("report: %d (%s)", code, body)
	}
	resp, body := getWithHeaders(t, ts, "/v1/experiments/table1", nil)
	requireShedEnvelope(t, resp, body)
	_ = body
}

func TestMaxInFlight429(t *testing.T) {
	s, _ := newTestServer(Config{MaxInFlight: 1, Workers: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	s.compute = func(context.Context, string, machine.RunOptions, engine.Tier, bool) (any, error) {
		once.Do(func() { close(started) })
		<-release
		return "v", nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		code, _ := get(t, ts, "/v1/experiments/table1")
		first <- code
	}()
	<-started

	// The slot is occupied: a concurrent request is shed immediately.
	resp, body := getWithHeaders(t, ts, "/v1/experiments/table2", nil)
	requireShedEnvelope(t, resp, body)
	if v := metricValue(t, ts, `spec17_admission_rejected_total{reason="inflight"}`); v != 1 {
		t.Errorf("rejected_total{inflight} = %v, want 1", v)
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Errorf("admitted request finished %d, want 200", code)
	}
	// The slot was released: the next request passes.
	if code, body := get(t, ts, "/v1/experiments/table2"); code != http.StatusOK {
		t.Errorf("request after release: %d (%s)", code, body)
	}
}

// TestQueueSaturation429 drives the real scheduler to saturation: one
// worker busy, one job queued, so the next distinct submission hits
// ErrQueueFull and must come back as a prompt 429 — not a hang — with
// Retry-After reflecting the backlog.
func TestQueueSaturation429(t *testing.T) {
	s, _ := newTestServer(Config{SimWorkers: 1, MaxQueue: 1, Workers: 8})
	release := make(chan struct{})
	s.compute = func(ctx context.Context, id string, _ machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		return s.queue.Do(ctx, id, func(context.Context) (any, error) {
			<-release
			return "v", nil
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := experiments.SortedIDs()
	if len(ids) < 3 {
		t.Fatalf("registry has %d experiments, need 3", len(ids))
	}
	codes := make(chan int, 2)
	for _, id := range ids[:2] {
		go func(id string) {
			code, _ := get(t, ts, "/v1/experiments/"+id)
			codes <- code
		}(id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.pool.Stats()
		if st.Inflight == 1 && st.Depth == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler never saturated: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	resp, body := getWithHeaders(t, ts, "/v1/experiments/"+ids[2], nil)
	requireShedEnvelope(t, resp, body)
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("shed response took %v, want bounded", d)
	}
	if v := metricValue(t, ts, "spec17_sched_shed_total"); v != 1 {
		t.Errorf("spec17_sched_shed_total = %v, want 1", v)
	}
	if v := metricValue(t, ts, `spec17_admission_rejected_total{reason="queue_full"}`); v != 1 {
		t.Errorf("rejected_total{queue_full} = %v, want 1", v)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("saturating request %d finished %d, want 200", i, code)
		}
	}
}

// TestQueueWaitTimeout429: a job that waits out the pool's QueueWait
// is shed with 429, and the scheduler's bookkeeping drains cleanly.
func TestQueueWaitTimeout429(t *testing.T) {
	s, _ := newTestServer(Config{SimWorkers: 1, QueueWait: 30 * time.Millisecond, Workers: 8})
	release := make(chan struct{})
	s.compute = func(ctx context.Context, id string, _ machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		return s.queue.Do(ctx, id, func(context.Context) (any, error) {
			<-release
			return "v", nil
		})
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := experiments.SortedIDs()
	hog := make(chan int, 1)
	go func() {
		code, _ := get(t, ts, "/v1/experiments/"+ids[0])
		hog <- code
	}()
	waitForStats(t, s, func(st sched.Stats) bool { return st.Inflight == 1 })

	// The second request queues behind the hog and times out.
	resp, body := getWithHeaders(t, ts, "/v1/experiments/"+ids[1], nil)
	requireShedEnvelope(t, resp, body)
	if v := metricValue(t, ts, `spec17_admission_rejected_total{reason="queue_timeout"}`); v != 1 {
		t.Errorf("rejected_total{queue_timeout} = %v, want 1", v)
	}

	close(release)
	if code := <-hog; code != http.StatusOK {
		t.Errorf("hog finished %d, want 200", code)
	}
	waitForStats(t, s, func(st sched.Stats) bool { return st.Depth == 0 && st.Inflight == 0 })
}

func waitForStats(t *testing.T, s *Server, cond func(sched.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond(s.pool.Stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for scheduler state: %+v", s.pool.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRequestTimeout504: a compute request that outlives the
// server-side deadline answers 504 deadline_exceeded — distinct from
// the 499 a client's own disconnect produces.
func TestRequestTimeout504(t *testing.T) {
	s, _ := newTestServer(Config{RequestTimeout: 50 * time.Millisecond})
	s.compute = func(ctx context.Context, _ string, _ machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/experiments/table1")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", code, body)
	}
	var e errorEnvelope
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != codeDeadlineExceeded {
		t.Errorf("body %s, want code %q", body, codeDeadlineExceeded)
	}
}

// TestParseRunOptionsRejects is the table the parseRunOptions fix
// demands: out-of-range values fail at parse time with the documented
// message, and duplicated parameters are refused rather than silently
// resolved by Query.Get's first-wins.
func TestParseRunOptionsRejects(t *testing.T) {
	cases := []struct {
		query, wantSub string
	}{
		{"instructions=-1", "must be a positive integer"},
		{"instructions=0", "must be a positive integer"},
		{"instructions=abc", "must be a positive integer"},
		{"warmup=-1", "must be a non-negative integer"},
		{"warmup=xyz", "must be a non-negative integer"},
		{"instructions=5000&instructions=6000", "at most once"},
		{"warmup=100&warmup=200", "at most once"},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodGet, "/v1/report?"+tc.query, nil)
		_, _, err := parseRunOptions(r)
		if err == nil {
			t.Errorf("%q: accepted, want error", tc.query)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%q: error %q, want it to mention %q", tc.query, err, tc.wantSub)
		}
	}
	// The boundary cases stay valid.
	for _, q := range []string{"instructions=1", "warmup=0", "instructions=5000&warmup=100"} {
		r := httptest.NewRequest(http.MethodGet, "/v1/report?"+q, nil)
		if _, _, err := parseRunOptions(r); err != nil {
			t.Errorf("%q: rejected valid options: %v", q, err)
		}
	}
}

// TestBatchBodyTooLarge: an oversized POST body gets the distinct 413
// body_too_large envelope naming the limit, not a generic decode 400.
func TestBatchBodyTooLarge(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"experiments": ["` + strings.Repeat("x", maxBatchBodyBytes+1024) + `"]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %.200s)", resp.StatusCode, raw)
	}
	var e errorEnvelope
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("body %.200q is not an envelope: %v", raw, err)
	}
	if e.Error.Code != codeBodyTooLarge {
		t.Errorf("code %q, want %q", e.Error.Code, codeBodyTooLarge)
	}
	if !strings.Contains(e.Error.Message, strconv.Itoa(maxBatchBodyBytes)) {
		t.Errorf("message %q does not name the %d-byte limit", e.Error.Message, maxBatchBodyBytes)
	}
}

// TestBatchItemShedding: with a one-token budget, a multi-experiment
// batch streams its first item and sheds the rest as per-item
// too_many_requests error lines — the stream itself stays 200 and the
// healthy item's result still arrives.
func TestBatchItemShedding(t *testing.T) {
	s, computations := newTestServer(Config{RateLimit: 0.001, Burst: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := experiments.SortedIDs()[:3]
	// concurrency=1 keeps submission order deterministic: the first
	// item takes the only token, the remaining two are shed.
	resp, err := ts.Client().Get(ts.URL + "/v1/batch?experiments=" + url.QueryEscape(strings.Join(ids, ",")) + "&concurrency=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	var ok, shed int
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var bl batchLine
		if err := json.Unmarshal([]byte(line), &bl); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case bl.Status == "ok":
			ok++
			if bl.Result == nil {
				t.Errorf("healthy item %s has no result", bl.ID)
			}
		case bl.Error != nil && bl.Error.Code == codeTooManyRequests:
			shed++
		default:
			t.Errorf("unexpected line: %+v", bl)
		}
	}
	if ok != 1 || shed != 2 {
		t.Errorf("ok=%d shed=%d, want 1 ok and 2 shed\n%s", ok, shed, raw)
	}
	if n := computations.Load(); n != 1 {
		t.Errorf("computations = %d, want 1 (shed items must not compute)", n)
	}
}

// TestMaxHeaderBytes431: Serve's http.Server must bound header memory;
// a header larger than the configured cap is cut off with 431.
func TestMaxHeaderBytes431(t *testing.T) {
	s, _ := newTestServer(Config{MaxHeaderBytes: 4 << 10})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = s.Serve(l) }()
	defer func() { _ = s.Close(); <-done }()

	req, err := http.NewRequest(http.MethodGet, "http://"+l.Addr().String()+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Padding", strings.Repeat("a", 64<<10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("oversized-header request failed outright: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestHeaderFieldsTooLarge {
		t.Errorf("status %d, want 431", resp.StatusCode)
	}
	// A normal request on the same server still works.
	small, err := http.Get(fmt.Sprintf("http://%s/healthz", l.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	small.Body.Close()
	if small.StatusCode != http.StatusOK {
		t.Errorf("normal request after oversized one: %d", small.StatusCode)
	}
}
