//go:build !race

package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/store"
)

// TestRealLabCoalescingAndCache exercises the default compute path
// end to end on a real (tiny-fidelity) Lab: 16 concurrent requests
// for the same uncached experiment characterize the fleet exactly
// once, and a repeat request is a recorded cache hit in /metrics.
//
// Excluded from -race builds: one fleet characterization takes
// minutes under the race detector. The same coalescing logic runs
// under -race in TestCoalescing with a stubbed computation.
func TestRealLabCoalescingAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("real fleet characterization (~6s)")
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const concurrent = 16
	const path = "/v1/experiments/table2?instructions=2000"
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := get(t, ts, path)
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, body)
				return
			}
			var r struct {
				Cached bool            `json:"cached"`
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(body, &r); err != nil {
				t.Error(err)
				return
			}
			if len(r.Result) == 0 || string(r.Result) == "null" {
				t.Error("empty result")
			}
		}()
	}
	wg.Wait()

	if v := metricValue(t, ts, "spec17d_computations_total"); v != 1 {
		t.Errorf("spec17d_computations_total = %v, want exactly 1 Lab computation", v)
	}

	// The repeat request hits the cache; a second experiment at the
	// same fidelity reuses the already-characterized Lab.
	code, body := get(t, ts, path)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	var r struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !r.Cached {
		t.Error("repeat request not served from cache")
	}
	if v := metricValue(t, ts, "spec17d_cache_hits_total"); v < 1 {
		t.Errorf("spec17d_cache_hits_total = %v, want >= 1", v)
	}
	if code, _ := get(t, ts, "/v1/experiments/ratespeed?instructions=2000"); code != http.StatusOK {
		t.Errorf("second experiment at same fidelity: status %d", code)
	}
	if v := metricValue(t, ts, "spec17d_computations_total"); v != 2 {
		t.Errorf("spec17d_computations_total = %v, want 2", v)
	}
}

// TestWarmRestartServesWithoutSimulating is the warm-start invariant
// end to end: a daemon backed by a persisted measurement store answers
// its first /v1/report after a restart with zero new simulations, and
// the report bytes are identical to the cold run's.
func TestWarmRestartServesWithoutSimulating(t *testing.T) {
	if testing.Short() {
		t.Skip("two real fleet characterizations (~12s)")
	}
	snapshot := filepath.Join(t.TempDir(), "measurements.json")
	const path = "/v1/report?instructions=2000"

	// lifecycle boots a store-backed daemon, fetches one full report,
	// persists the store, and returns the report plus store traffic.
	lifecycle := func() (report []byte, hits, misses float64) {
		reg := metrics.NewRegistry()
		st, err := store.Open(store.Config{Path: snapshot, Metrics: reg})
		if err != nil {
			t.Fatalf("opening store: %v", err)
		}
		s := New(Config{Store: st, Metrics: reg})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("report status %d: %s", code, body)
		}
		hits = metricValue(t, ts, "spec17_store_hits_total")
		misses = metricValue(t, ts, "spec17_store_misses_total")
		if err := st.Save(); err != nil {
			t.Fatalf("persisting store: %v", err)
		}
		return body, hits, misses
	}

	coldReport, _, coldMisses := lifecycle()
	if coldMisses == 0 {
		t.Fatal("cold daemon reported zero simulations — store not wired into the compute path")
	}
	warmReport, warmHits, warmMisses := lifecycle()

	if warmMisses != 0 {
		t.Errorf("warm restart simulated %g times, want 0", warmMisses)
	}
	if warmHits < coldMisses {
		t.Errorf("warm hits = %g, want >= %g (every cold simulation replayed from the snapshot)",
			warmHits, coldMisses)
	}
	if string(warmReport) != string(coldReport) {
		t.Errorf("warm report differs from cold report (%d vs %d bytes) — determinism invariant broken",
			len(warmReport), len(coldReport))
	}
}
