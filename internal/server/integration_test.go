//go:build !race

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// TestRealLabCoalescingAndCache exercises the default compute path
// end to end on a real (tiny-fidelity) Lab: 16 concurrent requests
// for the same uncached experiment characterize the fleet exactly
// once, and a repeat request is a recorded cache hit in /metrics.
//
// Excluded from -race builds: one fleet characterization takes
// minutes under the race detector. The same coalescing logic runs
// under -race in TestCoalescing with a stubbed computation.
func TestRealLabCoalescingAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("real fleet characterization (~6s)")
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const concurrent = 16
	const path = "/v1/experiments/table2?instructions=2000"
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := get(t, ts, path)
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, body)
				return
			}
			var r struct {
				Cached bool            `json:"cached"`
				Result json.RawMessage `json:"result"`
			}
			if err := json.Unmarshal(body, &r); err != nil {
				t.Error(err)
				return
			}
			if len(r.Result) == 0 || string(r.Result) == "null" {
				t.Error("empty result")
			}
		}()
	}
	wg.Wait()

	if v := metricValue(t, ts, "spec17d_computations_total"); v != 1 {
		t.Errorf("spec17d_computations_total = %v, want exactly 1 Lab computation", v)
	}

	// The repeat request hits the cache; a second experiment at the
	// same fidelity reuses the already-characterized Lab.
	code, body := get(t, ts, path)
	if code != http.StatusOK {
		t.Fatalf("repeat status %d", code)
	}
	var r struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !r.Cached {
		t.Error("repeat request not served from cache")
	}
	if v := metricValue(t, ts, "spec17d_cache_hits_total"); v < 1 {
		t.Errorf("spec17d_cache_hits_total = %v, want >= 1", v)
	}
	if code, _ := get(t, ts, "/v1/experiments/ratespeed?instructions=2000"); code != http.StatusOK {
		t.Errorf("second experiment at same fidelity: status %d", code)
	}
	if v := metricValue(t, ts, "spec17d_computations_total"); v != 2 {
		t.Errorf("spec17d_computations_total = %v, want 2", v)
	}
}

// TestWarmRestartServesWithoutSimulating is the warm-start invariant
// end to end: a daemon backed by a persisted measurement store answers
// its first /v1/report after a restart with zero new simulations, and
// the report bytes are identical to the cold run's.
func TestWarmRestartServesWithoutSimulating(t *testing.T) {
	if testing.Short() {
		t.Skip("two real fleet characterizations (~12s)")
	}
	snapshot := filepath.Join(t.TempDir(), "measurements.json")
	const path = "/v1/report?instructions=2000"

	// lifecycle boots a store-backed daemon, fetches one full report,
	// persists the store, and returns the report plus store traffic.
	lifecycle := func() (report []byte, hits, misses float64) {
		reg := metrics.NewRegistry()
		st, err := store.Open(store.Config{Path: snapshot, Metrics: reg})
		if err != nil {
			t.Fatalf("opening store: %v", err)
		}
		s := New(Config{Store: st, Metrics: reg})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		code, body := get(t, ts, path)
		if code != http.StatusOK {
			t.Fatalf("report status %d: %s", code, body)
		}
		hits = metricValue(t, ts, "spec17_store_hits_total")
		misses = metricValue(t, ts, "spec17_store_misses_total")
		if err := st.Save(); err != nil {
			t.Fatalf("persisting store: %v", err)
		}
		return body, hits, misses
	}

	coldReport, _, coldMisses := lifecycle()
	if coldMisses == 0 {
		t.Fatal("cold daemon reported zero simulations — store not wired into the compute path")
	}
	warmReport, warmHits, warmMisses := lifecycle()

	if warmMisses != 0 {
		t.Errorf("warm restart simulated %g times, want 0", warmMisses)
	}
	if warmHits < coldMisses {
		t.Errorf("warm hits = %g, want >= %g (every cold simulation replayed from the snapshot)",
			warmHits, coldMisses)
	}
	if string(warmReport) != string(coldReport) {
		t.Errorf("warm report differs from cold report (%d vs %d bytes) — determinism invariant broken",
			len(warmReport), len(coldReport))
	}
}

// TestReportTraceSpanTree is the tracing acceptance criterion end to
// end: one traced /v1/report at low fidelity yields a span tree with
// the full pipeline visible — characterize under the root, distinct
// sched.wait and simulate spans under it, pca/cluster analysis stages,
// store.put writes — and the root span's duration agrees with the
// access log's request duration.
func TestReportTraceSpanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("real fleet characterization (~6s)")
	}
	var logBuf syncBuffer
	logger := telemetry.NewLogger(&logBuf, telemetry.LevelInfo)
	reg := metrics.NewRegistry()
	st, err := store.Open(store.Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(telemetry.TracerConfig{Metrics: reg})
	s := New(Config{Store: st, Metrics: reg, Tracer: tracer, Log: logger})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/report?instructions=2000")
	if code != http.StatusOK {
		t.Fatalf("report status %d: %s", code, body)
	}

	code, body = get(t, ts, "/v1/traces?experiment=report")
	if code != http.StatusOK {
		t.Fatalf("traces status %d", code)
	}
	var got struct {
		Count  int                    `json:"count"`
		Traces []*telemetry.TraceData `json:"traces"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Count != 1 {
		t.Fatalf("report traces = %d, want 1", got.Count)
	}
	tr := got.Traces[0]
	if tr.Root.Name != "http.request" {
		t.Errorf("root span = %q, want http.request", tr.Root.Name)
	}

	counts := map[string]int{}
	var countNames func(d *telemetry.SpanData)
	countNames = func(d *telemetry.SpanData) {
		counts[d.Name]++
		for i := range d.Children {
			countNames(&d.Children[i])
		}
	}
	countNames(&tr.Root)
	// The pipeline's stages must all be visible, and sched.wait must be
	// recorded separately from the simulation it preceded.
	for _, stage := range []string{"characterize", "sched.wait", "simulate", "pca", "cluster", "store.put"} {
		if counts[stage] == 0 {
			t.Errorf("span tree has no %q span (got %v)", stage, counts)
		}
	}
	if counts["sched.wait"] != counts["simulate"] {
		t.Errorf("sched.wait spans = %d, simulate spans = %d; every scheduled simulation should record both",
			counts["sched.wait"], counts["simulate"])
	}

	// The access log's request duration and the trace's root duration
	// measure the same request from the same wrapper; they must agree.
	var loggedDur time.Duration
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(line, "msg=request") || !strings.Contains(line, "endpoint=/v1/report") {
			continue
		}
		for _, f := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(f, "dur="); ok {
				if loggedDur, err = time.ParseDuration(v); err != nil {
					t.Fatalf("parsing %q: %v", f, err)
				}
			}
		}
	}
	if loggedDur == 0 {
		t.Fatalf("no access log line for /v1/report in:\n%s", logBuf.String())
	}
	rootDur := time.Duration(tr.DurationMS * float64(time.Millisecond))
	if rootDur > loggedDur || loggedDur-rootDur > time.Second {
		t.Errorf("trace root duration %v vs access-log duration %v: want root <= logged within 1s",
			rootDur, loggedDur)
	}
}

// syncBuffer is a bytes.Buffer safe for the logger's concurrent use.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
