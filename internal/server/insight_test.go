package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/insight"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// insightCounts builds a plausible RawCounts; mispredicts is the knob
// the drift tests turn (100 vs 10 per 1000 instructions pushes
// BranchMPKI past its tolerance band).
func insightCounts(mispredicts uint64) *machine.RawCounts {
	rc := &machine.RawCounts{
		Instructions:  1000,
		Loads:         200,
		Stores:        100,
		Branches:      150,
		TakenBranches: 100,
		FPOps:         50,
		SIMDOps:       20,
		KernelInstrs:  30,
		Mispredicts:   mispredicts,
		CPI:           1.0,
	}
	rc.Cache.L1IMisses, rc.Cache.L1DMisses = 5, 10
	rc.Cache.L2IMisses, rc.Cache.L2DMisses, rc.Cache.L3Misses = 2, 4, 1
	rc.TLB.ITLBMisses, rc.TLB.DTLBMisses = 3, 6
	rc.TLB.L2Misses, rc.TLB.PageWalks = 2, 2
	return rc
}

// newInsightTestServer builds a server with the insight plane wired in
// and the compute path stubbed to mimic the Lab's store side-effect:
// every computation lands one synthetic measurement in the store,
// keyed analytic or exact by the tier it ran at — exactly the pair
// shape the drift monitor feeds on.
func newInsightTestServer(t *testing.T, cfg Config) (*Server, *insight.Plane, *atomic.Int64) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Store == nil {
		st, err := store.Open(store.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	if cfg.Log == nil {
		cfg.Log = telemetry.NewLogger(io.Discard, telemetry.LevelError+1)
	}
	plane := insight.New(insight.Config{
		Metrics: cfg.Metrics,
		Store:   cfg.Store,
		Log:     cfg.Log,
		// The loop never ticks on its own inside a test; the handlers'
		// own freshness scans drive the drift monitor.
		Interval: time.Hour,
	})
	t.Cleanup(plane.Stop)
	cfg.Insight = plane

	s := New(cfg)
	st := cfg.Store
	var computations atomic.Int64
	s.compute = func(_ context.Context, id string, opts machine.RunOptions, tier engine.Tier, _ bool) (any, error) {
		computations.Add(1)
		c := opts.Canonical()
		k := store.Key{
			Machine:      "test-machine",
			Workload:     id,
			Instructions: c.Instructions,
			Warmup:       c.WarmupInstructions,
			Content:      "content-" + id,
		}
		if tier == engine.TierAnalytic {
			k.Engine = string(engine.TierAnalytic)
		}
		st.Put(k, insightCounts(10))
		return map[string]any{"id": id, "tier": string(tier)}, nil
	}
	return s, plane, &computations
}

type accuracyBody struct {
	Enabled    bool    `json:"enabled"`
	Pairs      int64   `json:"pairs_compared"`
	Samples    int64   `json:"samples"`
	Violations int64   `json:"violations"`
	WorstRatio float64 `json:"worst_ratio"`
	Worst      []struct {
		Machine  string `json:"machine"`
		Workload string `json:"workload"`
		Metric   string `json:"metric"`
	} `json:"worst"`
}

func getAccuracy(t *testing.T, ts *httptest.Server) accuracyBody {
	t.Helper()
	code, body := get(t, ts, "/v1/accuracy")
	if code != http.StatusOK {
		t.Fatalf("/v1/accuracy: status %d: %s", code, body)
	}
	var ab accuracyBody
	if err := json.Unmarshal(body, &ab); err != nil {
		t.Fatalf("/v1/accuracy: %v", err)
	}
	return ab
}

// TestInsightDriftEndToEnd is the acceptance demo: an engine=auto
// request is answered analytically and upgraded to exact in the
// background; once both measurements of the same identity sit in the
// store, /v1/accuracy reports the compared pair inside its tolerance
// bands. A perturbed analytic record injected afterwards turns into a
// band_violation event on /v1/events.
func TestInsightDriftEndToEnd(t *testing.T) {
	s, plane, _ := newInsightTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	first := getEngine(t, ts, "/v1/experiments/table1?engine=auto")
	if first.Engine != "analytic" || !first.UpgradePending {
		t.Fatalf("first auto request: engine=%q pending=%v, want analytic/pending", first.Engine, first.UpgradePending)
	}

	// The background upgrade lands the exact twin; /v1/accuracy scans
	// on every GET, so it reports the pair as soon as both records
	// exist. Identical synthetic counts → zero band consumption.
	var acc accuracyBody
	deadline := time.Now().Add(10 * time.Second)
	for {
		acc = getAccuracy(t, ts)
		if acc.Pairs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drift monitor never saw the upgraded pair: %+v", acc)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !acc.Enabled {
		t.Errorf("accuracy reports disabled with a store attached")
	}
	if acc.Samples == 0 {
		t.Errorf("compared pair produced no per-metric samples: %+v", acc)
	}
	if acc.Violations != 0 || acc.WorstRatio > 1 {
		t.Errorf("in-band pair reported violations: %+v", acc)
	}

	// Inject an out-of-band analytic record with an exact twin — the
	// shape a genuinely drifted estimator would leave behind.
	st := s.cfg.Store
	bad := store.Key{
		Machine:      "test-machine",
		Workload:     "drifted-wl",
		Instructions: 50_000,
		Warmup:       10_000,
		Engine:       string(engine.TierAnalytic),
		Content:      "content-drifted",
	}
	st.Put(bad, insightCounts(100))
	twin := bad
	twin.Engine = ""
	st.Put(twin, insightCounts(10))

	acc = getAccuracy(t, ts)
	if acc.Violations < 1 {
		t.Fatalf("perturbed pair raised no violation: %+v", acc)
	}
	if len(acc.Worst) == 0 || acc.Worst[0].Metric != "branch_mpki" {
		t.Errorf("worst offender = %+v, want branch_mpki first", acc.Worst)
	}

	code, body := get(t, ts, "/v1/events?type=band_violation")
	if code != http.StatusOK {
		t.Fatalf("/v1/events: status %d: %s", code, body)
	}
	var evs struct {
		Count  int `json:"count"`
		Events []struct {
			Type  string            `json:"type"`
			Attrs map[string]string `json:"attrs"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatal(err)
	}
	if evs.Count < 1 {
		t.Fatalf("no band_violation events after a confirmed violation: %s", body)
	}
	ev := evs.Events[0]
	if ev.Type != "band_violation" || ev.Attrs["workload"] != "drifted-wl" || ev.Attrs["metric"] != "branch_mpki" {
		t.Errorf("band_violation event = %+v", ev)
	}

	// The plane's status section reflects the activity.
	if got := plane.Status().EventsTotal; got < 1 {
		t.Errorf("plane recorded %d events, want >= 1", got)
	}
}

// TestInsightMetricsHistoryEndpoint: the history endpoint serves
// sampled series once the plane has ticked, 404s unknown names with
// the known list, and rejects malformed parameters.
func TestInsightMetricsHistoryEndpoint(t *testing.T) {
	s, plane, _ := newInsightTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// Generate traffic, then sample it into the rings.
	get(t, ts, "/v1/status")
	plane.Tick()

	code, body := get(t, ts, "/v1/metrics/history?name=spec17d_requests_total&window=5m")
	if code != http.StatusOK {
		t.Fatalf("history: status %d: %s", code, body)
	}
	var h struct {
		Name   string `json:"name"`
		Type   string `json:"type"`
		Series []struct {
			Labels map[string]string `json:"labels,omitempty"`
			Points []struct {
				Value float64 `json:"value"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Name != "spec17d_requests_total" || len(h.Series) == 0 {
		t.Fatalf("history body = %s", body)
	}
	found := false
	for _, sr := range h.Series {
		found = found || sr.Labels["endpoint"] == "/v1/status"
	}
	if !found {
		t.Errorf("sampled history missing the /v1/status series: %s", body)
	}

	for _, tc := range []struct {
		path string
		code int
		want string
	}{
		{"/v1/metrics/history", http.StatusBadRequest, "name"},
		{"/v1/metrics/history?name=", http.StatusBadRequest, "empty"},
		{"/v1/metrics/history?name=spec17d_requests_total&window=bogus", http.StatusBadRequest, "positive duration"},
		{"/v1/metrics/history?name=spec17d_requests_total&window=-5m", http.StatusBadRequest, "positive duration"},
		{"/v1/metrics/history?name=spec17d_requests_total&frob=1", http.StatusBadRequest, "unknown query parameter"},
		{"/v1/metrics/history?name=a&name=b", http.StatusBadRequest, "at most once"},
		{"/v1/metrics/history?name=no_such_metric", http.StatusNotFound, "no sampled metric"},
	} {
		code, body := get(t, ts, tc.path)
		if code != tc.code {
			t.Errorf("GET %s: status %d, want %d (body %s)", tc.path, code, tc.code, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("GET %s: body %q does not contain %q", tc.path, body, tc.want)
		}
	}

	// The unknown-name 404 lists what is known, so a client can correct
	// itself without a second round trip.
	_, body = get(t, ts, "/v1/metrics/history?name=no_such_metric")
	if !strings.Contains(string(body), "spec17d_requests_total") {
		t.Errorf("unknown-name 404 does not list known metrics: %s", body)
	}
}

// TestInsightEventsEndpointValidation: /v1/events rejects malformed
// filters in the standard envelope and filters correctly otherwise.
func TestInsightEventsEndpointValidation(t *testing.T) {
	s, plane, _ := newInsightTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	plane.OnCheckpointError(errors.New("disk full"))
	plane.OnSlowTrace(&telemetry.TraceData{TraceID: "t1", DurationMS: 2500})

	for _, tc := range []struct {
		path string
		want string
	}{
		{"/v1/events?type=bogus", "unknown event type"},
		{"/v1/events?since=notatime", "RFC 3339"},
		{"/v1/events?limit=0", "positive integer"},
		{"/v1/events?limit=x", "positive integer"},
		{"/v1/events?frob=1", "unknown query parameter"},
		{"/v1/events?type=", "empty"},
	} {
		code, body := get(t, ts, tc.path)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", tc.path, code)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("GET %s: body %q does not contain %q", tc.path, body, tc.want)
		}
	}

	var evs struct {
		Count  int `json:"count"`
		Events []struct {
			Type string `json:"type"`
		} `json:"events"`
	}
	code, body := get(t, ts, "/v1/events?type=slow_trace")
	if code != http.StatusOK {
		t.Fatalf("/v1/events: %d", code)
	}
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatal(err)
	}
	if evs.Count != 1 || evs.Events[0].Type != "slow_trace" {
		t.Errorf("type filter returned %s", body)
	}
	// /v1/accuracy takes no parameters at all.
	code, body = get(t, ts, "/v1/accuracy?verbose=1")
	if code != http.StatusBadRequest || !strings.Contains(string(body), "no query parameters") {
		t.Errorf("/v1/accuracy?verbose=1: %d %s", code, body)
	}
}

// TestInsightDisabledRoutes404: without a plane the three insight
// routes do not exist — the fallback answers 404 in the standard
// envelope, and GET /v1 does not advertise them.
func TestInsightDisabledRoutes404(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	for _, path := range []string{"/v1/metrics/history?name=x", "/v1/accuracy", "/v1/events"} {
		code, body := get(t, ts, path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s without insight: status %d, want 404 (body %s)", path, code, body)
		}
		if !strings.Contains(string(body), "no such endpoint") {
			t.Errorf("GET %s: body %q is not the standard 404 envelope", path, body)
		}
	}
	code, body := get(t, ts, "/v1")
	if code != http.StatusOK {
		t.Fatalf("/v1: %d", code)
	}
	if strings.Contains(string(body), "/v1/accuracy") {
		t.Errorf("discovery document advertises insight routes on a plane-less server")
	}
}

// TestInsightDisabledIsInvisible: a daemon without the plane serves
// byte-identical compute responses — the insight integration costs
// nothing when it is off, and nothing leaks into the wire format when
// it is on.
func TestInsightDisabledIsInvisible(t *testing.T) {
	plain, _ := newTestServer(Config{})
	insightful, _, _ := newInsightTestServer(t, Config{})
	// The insight stub returns a tier field the plain stub lacks; use
	// identical stubs so only the plane differs.
	insightful.compute = plain.compute
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	defer plain.Close()
	tsIns := httptest.NewServer(insightful.Handler())
	defer tsIns.Close()
	defer insightful.Close()

	for _, path := range []string{
		"/v1/experiments/table1",
		"/v1/report?instructions=2000",
		"/v1/experiments",
	} {
		codeP, bodyP := get(t, tsPlain, path)
		codeI, bodyI := get(t, tsIns, path)
		if codeP != codeI || string(bodyP) != string(bodyI) {
			t.Errorf("%s: insight plane changed the response (%d/%d, %d vs %d bytes)",
				path, codeP, codeI, len(bodyP), len(bodyI))
		}
	}
}

// TestStatusCarriesInsight: /v1/status grows an insight section when
// the plane is wired, and omits it entirely otherwise.
func TestStatusCarriesInsight(t *testing.T) {
	s, plane, _ := newInsightTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	plane.Tick()
	code, body := get(t, ts, "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("/v1/status: %d", code)
	}
	var st struct {
		Insight *struct {
			IntervalSeconds float64 `json:"interval_seconds"`
			RingCapacity    int     `json:"ring_capacity"`
			SeriesTracked   int     `json:"series_tracked"`
			Samples         int64   `json:"samples"`
		} `json:"insight"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Insight == nil {
		t.Fatalf("/v1/status has no insight section: %s", body)
	}
	if st.Insight.Samples < 1 || st.Insight.SeriesTracked == 0 || st.Insight.RingCapacity == 0 {
		t.Errorf("insight status = %+v", st.Insight)
	}

	plainS, _ := newTestServer(Config{})
	tsPlain := httptest.NewServer(plainS.Handler())
	defer tsPlain.Close()
	defer plainS.Close()
	_, body = get(t, tsPlain, "/v1/status")
	if strings.Contains(string(body), `"insight"`) {
		t.Errorf("plane-less /v1/status mentions insight: %s", body)
	}
}
