package server

import "sync"

// group coalesces concurrent calls for the same key into one
// execution — a minimal singleflight. The first caller for a key runs
// fn; callers arriving while that flight is in progress block and
// share its result instead of recomputing.
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done    chan struct{}
	val     any
	err     error
	waiters int // callers coalesced onto this flight, guarded by group.mu
}

func newGroup() *group {
	return &group{calls: make(map[string]*call)}
}

// do runs fn once per concurrent set of callers with the same key.
// joined reports whether this caller coalesced onto another caller's
// in-progress flight (i.e. it did not execute fn itself).
func (g *group) do(key string, fn func() (any, error)) (val any, err error, joined bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &call{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// waiting reports how many callers have coalesced onto key's
// in-progress flight (0 if no flight is active). Used by tests to
// release a blocked computation only after every expected waiter has
// joined.
func (g *group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
