package server

import (
	"context"
	"errors"
	"sync"
)

// group coalesces concurrent calls for the same key into one
// execution — a context-aware singleflight. The first caller for a
// key starts fn on a flight-owned goroutine; callers arriving while
// that flight is in progress block and share its result instead of
// recomputing. Each caller waits under its own context: a canceled
// caller stops waiting immediately, and when the *last* interested
// caller departs the flight's context is canceled too, so a
// computation nobody wants stops burning a worker.
type group struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	done    chan struct{}
	val     any
	err     error
	refs    int // callers still interested, guarded by group.mu
	waiters int // callers that coalesced onto this flight, guarded by group.mu
	cancel  context.CancelFunc
}

func newGroup() *group {
	return &group{calls: make(map[string]*call)}
}

// do runs fn once per concurrent set of callers with the same key.
// fn receives a context owned by the flight, canceled when every
// caller has abandoned the wait. joined reports whether this caller
// coalesced onto another caller's flight (i.e. it did not start fn
// itself). A caller whose own ctx is canceled gets ctx.Err(); a live
// caller that joined a flight killed by *other* callers' departure
// retries with a fresh flight.
func (g *group) do(ctx context.Context, key string, fn func(context.Context) (any, error)) (val any, err error, joined bool) {
	for {
		joined = false
		g.mu.Lock()
		c, ok := g.calls[key]
		if !ok {
			fctx, cancel := context.WithCancel(context.Background())
			c = &call{done: make(chan struct{}), cancel: cancel}
			g.calls[key] = c
			go func() {
				v, err := fn(fctx)
				g.mu.Lock()
				// Publish the result and wake waiters *before* the key
				// leaves the map, under the same critical section. With
				// the delete first (and the publish outside the lock), a
				// caller arriving in the gap found no flight and led a
				// duplicate computation of a result that was already
				// done.
				c.val, c.err = v, err
				close(c.done)
				delete(g.calls, key)
				g.mu.Unlock()
				cancel()
			}()
		} else {
			c.waiters++
			joined = true
		}
		c.refs++
		g.mu.Unlock()

		select {
		case <-c.done:
			g.mu.Lock()
			c.refs--
			g.mu.Unlock()
			if isContextErr(c.err) && ctx.Err() == nil {
				// The flight died of other callers' cancellation just
				// before this caller could observe it; this caller is
				// still live, so lead a fresh flight.
				continue
			}
			return c.val, c.err, joined
		case <-ctx.Done():
			g.mu.Lock()
			c.refs--
			if c.refs == 0 {
				c.cancel() // last caller out: stop the computation
			}
			g.mu.Unlock()
			return nil, ctx.Err(), joined
		}
	}
}

// waiting reports how many callers have coalesced onto key's
// in-progress flight (0 if no flight is active). Used by tests to
// release a blocked computation only after every expected waiter has
// joined.
func (g *group) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
