package api

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func TestWriteErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, 404, CodeNotFound, "no such endpoint", nil)
	if rec.Code != 404 {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	var env Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if env.Error.Code != CodeNotFound || env.Error.Message != "no such endpoint" {
		t.Fatalf("envelope %+v", env)
	}
}

func TestNoEmptyParams(t *testing.T) {
	for _, tc := range []struct {
		raw string
		bad bool
	}{
		{"", false},
		{"engine=exact", false},
		{"engine=", true},
		{"experiment=", true},
		{"limit=3&offset=", true},
		{"a=1&a=", true},
	} {
		q, err := url.ParseQuery(tc.raw)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.raw, err)
		}
		err = NoEmptyParams(q)
		if tc.bad && err == nil {
			t.Errorf("%q: want error, got nil", tc.raw)
		}
		if !tc.bad && err != nil {
			t.Errorf("%q: unexpected error %v", tc.raw, err)
		}
		if err != nil && !strings.Contains(err.Error(), "present but empty") {
			t.Errorf("%q: error %v does not name the defect", tc.raw, err)
		}
	}
}

func TestParsePageAndWindow(t *testing.T) {
	q := url.Values{"limit": {"2"}, "offset": {"3"}}
	p, err := ParsePage(q)
	if err != nil {
		t.Fatalf("ParsePage: %v", err)
	}
	if lo, hi := p.Window(10); lo != 3 || hi != 5 {
		t.Fatalf("window(10) = [%d,%d), want [3,5)", lo, hi)
	}
	if lo, hi := p.Window(4); lo != 3 || hi != 4 {
		t.Fatalf("window(4) = [%d,%d), want [3,4)", lo, hi)
	}
	if lo, hi := p.Window(2); lo != 2 || hi != 2 {
		t.Fatalf("window(2) = [%d,%d), want empty [2,2)", lo, hi)
	}
	if lo, hi := (Page{}).Window(7); lo != 0 || hi != 7 {
		t.Fatalf("zero page window(7) = [%d,%d), want [0,7)", lo, hi)
	}
	for _, raw := range []string{"limit=-1", "limit=x", "offset=-2", "offset=1.5"} {
		q, _ := url.ParseQuery(raw)
		if _, err := ParsePage(q); err == nil {
			t.Errorf("%q: want error", raw)
		}
	}
}
