// Package api defines the response conventions of the spec17d /v1
// surface: the uniform error envelope, the stable error codes clients
// switch on, and the shared query-parameter rules (strict allowed
// sets, no present-but-empty values, limit/offset pagination).
//
// Every endpoint — including the mux-level 404 and 405 fallbacks and
// pre-handler admission rejections — answers errors as
//
//	{"error": {"code": "...", "message": "..."}}
//
// with Content-Type application/json, so clients parse exactly one
// shape wherever a request fails. See docs/API.md for the full
// surface.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
)

// Error-envelope codes. Stable: clients switch on these strings, so
// they only ever grow.
const (
	CodeUnknownExperiment = "unknown_experiment"
	CodeUnknownJob        = "unknown_job"
	CodeBadOptions        = "bad_options"
	CodeDraining          = "draining"
	CodeCanceled          = "canceled"
	CodeInternal          = "internal"
	CodeTooManyRequests   = "too_many_requests"
	CodeDeadlineExceeded  = "deadline_exceeded"
	CodeBodyTooLarge      = "body_too_large"
	CodeNotFound          = "not_found"
	CodeMethodNotAllowed  = "method_not_allowed"
	CodeJobNotDone        = "job_not_done"
)

// ErrorDetail is the error half of the envelope.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Known lists the valid experiment ids on unknown_experiment.
	Known []string `json:"known,omitempty"`
}

// Envelope is the uniform error response body.
type Envelope struct {
	Error ErrorDetail `json:"error"`
}

// WriteJSON writes v as indented JSON with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// WriteError writes the uniform error envelope.
func WriteError(w http.ResponseWriter, status int, code, message string, known []string) {
	WriteJSON(w, status, Envelope{Error: ErrorDetail{
		Code:    code,
		Message: message,
		Known:   known,
	}})
}

// NoEmptyParams rejects query parameters that are present but empty
// (?engine=, ?limit=, a bare ?experiment=). Silently substituting a
// default would hide the typo; every /v1 endpoint applies this rule
// before interpreting its parameters.
func NoEmptyParams(q url.Values) error {
	for k, vs := range q {
		for _, v := range vs {
			if v == "" {
				return fmt.Errorf("query parameter %q is present but empty; pass a value or omit it", k)
			}
		}
	}
	return nil
}

// Page is a parsed limit/offset window. Limit 0 means "no limit".
type Page struct {
	Limit  int
	Offset int
}

// ParsePage extracts ?limit= and ?offset=. Both must be non-negative
// integers; limit 0 (or absent) means everything after offset.
// Present-but-empty values are the caller's to reject via
// NoEmptyParams first (ParsePage treats "" as absent).
func ParsePage(q url.Values) (Page, error) {
	var p Page
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("limit=%q: must be a non-negative integer", v)
		}
		p.Limit = n
	}
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, fmt.Errorf("offset=%q: must be a non-negative integer", v)
		}
		p.Offset = n
	}
	return p, nil
}

// Window applies the page to a list of length n, returning the
// [lo, hi) bounds. An offset past the end yields an empty window.
func (p Page) Window(n int) (lo, hi int) {
	lo = p.Offset
	if lo > n {
		lo = n
	}
	hi = n
	if p.Limit > 0 && lo+p.Limit < hi {
		hi = lo + p.Limit
	}
	return lo, hi
}
