package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/server/api"
	"repro/internal/telemetry"
)

// maxBatchExperiments bounds one batch submission. The full registry
// is well under this; the cap exists so a malformed request cannot
// queue unbounded work.
const maxBatchExperiments = 256

// maxBatchBodyBytes bounds the POST /v1/batch body.
const maxBatchBodyBytes = 1 << 20

// batchRequest is the POST /v1/batch body. GET encodes the same
// fields as query parameters (experiments as a comma-separated list).
type batchRequest struct {
	// Experiments lists the experiment ids to evaluate; the single
	// element "all" expands to the full registry. Duplicates collapse
	// to one evaluation (and one result line).
	Experiments []string `json:"experiments"`
	// Instructions and Warmup select the fidelity, as in
	// /v1/experiments/{id}.
	Instructions int `json:"instructions,omitempty"`
	Warmup       int `json:"warmup,omitempty"`
	// Concurrency caps how many of this batch's experiments are
	// evaluated at once. Zero means the server default; values above
	// the server's BatchConcurrency are clamped down to it.
	Concurrency int `json:"concurrency,omitempty"`
	// Engine selects the measurement engine tier (exact, analytic, or
	// auto) for every item. Empty means the server default.
	Engine string `json:"engine,omitempty"`
}

// batchLine is one NDJSON result line, written in completion order.
type batchLine struct {
	ID     string `json:"id"`
	Status string `json:"status"` // "ok" or "error"
	// Engine is the concrete tier that produced this line (auto
	// resolves per item, so one batch may mix tiers as upgrades land).
	Engine string `json:"engine,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	// TraceID names the per-item trace (a child trace of the batch
	// request, linked via its parent_trace attribute) so one slow line
	// can be looked up in /v1/traces directly. Omitted when tracing is
	// disabled.
	TraceID   string       `json:"trace_id,omitempty"`
	ElapsedMS int64        `json:"elapsed_ms"`
	Result    any          `json:"result,omitempty"`
	Error     *errorDetail `json:"error,omitempty"`
}

// lineWriter serializes NDJSON result lines onto one response,
// flushing after each so clients see lines as they complete. Shared
// by the batch stream and the job-results endpoint, so both emit the
// same bytes for the same results.
type lineWriter struct {
	mu      sync.Mutex
	enc     *json.Encoder
	flusher http.Flusher
}

func newLineWriter(w http.ResponseWriter) *lineWriter {
	f, _ := w.(http.Flusher)
	return &lineWriter{enc: json.NewEncoder(w), flusher: f}
}

func (lw *lineWriter) emit(line batchLine) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if err := lw.enc.Encode(line); err != nil {
		return // client gone; ctx cancellation stops the rest
	}
	lw.flushLocked()
}

func (lw *lineWriter) flush() {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	lw.flushLocked()
}

func (lw *lineWriter) flushLocked() {
	if lw.flusher != nil {
		lw.flusher.Flush()
	}
}

// parseBatchRequest extracts a batchRequest from either encoding. The
// ResponseWriter is needed because MaxBytesReader uses it to close the
// connection when the body limit trips (passing nil would panic there
// in newer net/http, and silently skip the close in older ones); an
// oversized body surfaces as *http.MaxBytesError for the caller to map
// to 413.
func parseBatchRequest(w http.ResponseWriter, r *http.Request) (batchRequest, error) {
	var req batchRequest
	if r.Method == http.MethodPost {
		if len(r.URL.RawQuery) > 0 {
			return req, fmt.Errorf("POST /v1/batch takes a JSON body, not query parameters")
		}
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("decoding batch body: %w", err)
		}
		return req, nil
	}
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "experiments", "instructions", "warmup", "concurrency", "engine":
		default:
			return req, fmt.Errorf("unknown query parameter %q (valid: experiments, instructions, warmup, concurrency, engine)", k)
		}
	}
	// Present-but-empty (?engine=, ?instructions=) is rejected, not
	// silently mapped to the server default.
	if err := api.NoEmptyParams(q); err != nil {
		return req, err
	}
	req.Engine = q.Get("engine")
	for _, part := range strings.Split(q.Get("experiments"), ",") {
		if part = strings.TrimSpace(part); part != "" {
			req.Experiments = append(req.Experiments, part)
		}
	}
	for _, f := range []struct {
		name string
		dst  *int
	}{
		{"instructions", &req.Instructions},
		{"warmup", &req.Warmup},
		{"concurrency", &req.Concurrency},
	} {
		if v := q.Get(f.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("%s=%q: must be an integer", f.name, v)
			}
			*f.dst = n
		}
	}
	return req, nil
}

// resolveBatchIDs validates and deduplicates the requested ids,
// expanding the "all" shorthand. Order is preserved so the submission
// order (and therefore scheduler fairness) follows the request.
func resolveBatchIDs(ids []string) ([]string, error) {
	if len(ids) == 1 && ids[0] == "all" {
		return experiments.SortedIDs(), nil
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("batch lists no experiments (pass ids or \"all\")")
	}
	if len(ids) > maxBatchExperiments {
		return nil, fmt.Errorf("batch lists %d experiments, more than the maximum %d", len(ids), maxBatchExperiments)
	}
	var unknown []string
	seen := make(map[string]bool, len(ids))
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if _, ok := experiments.Lookup(id); !ok {
			unknown = append(unknown, id)
			continue
		}
		out = append(out, id)
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiments: %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// handleBatch streams the requested experiments as NDJSON: one
// {"id","status",...} line per experiment, flushed as each completes.
// Validation failures are rejected with a regular JSON error before
// any line is written; after streaming begins, per-experiment failures
// become status:"error" lines and the stream continues. Closing the
// connection cancels this batch's pending work — measurements shared
// with other requests keep running for them.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	req, err := parseBatchRequest(w, r)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("batch body exceeds the %d-byte limit", tooLarge.Limit), nil)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	ids, err := resolveBatchIDs(req.Experiments)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeUnknownExperiment, err.Error(), experiments.SortedIDs())
		return
	}
	opts := machine.RunOptions{Instructions: req.Instructions, WarmupInstructions: req.Warmup}
	if err := validateBatchOptions(opts); err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	reqTier := s.cfg.DefaultEngine
	if req.Engine != "" {
		t, err := engine.ParseTier(req.Engine)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
			return
		}
		reqTier = t
	}
	conc := s.cfg.BatchConcurrency
	if req.Concurrency > 0 && req.Concurrency < conc {
		conc = req.Concurrency
	}

	s.met.batchInflight.Inc()
	defer s.met.batchInflight.Dec()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	lw := newLineWriter(w)
	// Push the status line and headers out now: clients see the
	// stream open as soon as the batch is accepted, not when its
	// first experiment completes.
	lw.flush()

	var (
		wg    sync.WaitGroup
		slots = make(chan struct{}, conc)
		ctx   = r.Context()
	)
	emit := lw.emit
	for _, id := range ids {
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break // disconnected mid-batch; stop submitting
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			defer func() { <-slots }()
			start := time.Now()
			// Batch requests enter the admission gate at cost zero;
			// each item pays as the stream reaches it, so one saturated
			// client sheds individual lines while healthy items keep
			// streaming instead of the whole batch 429ing up front.
			itemCost := admission.Cost(opts.Instructions, 1)
			if reqTier == engine.TierAnalytic || reqTier == engine.TierAuto {
				itemCost /= analyticCostDivisor
			}
			if dec := s.adm.Admit(clientKey(r), itemCost); !dec.OK {
				emit(batchLine{ID: id, Status: "error",
					ElapsedMS: time.Since(start).Milliseconds(),
					Error: &errorDetail{Code: codeTooManyRequests,
						Message: "item shed: per-client rate limit exceeded"}})
				return
			}
			// Each item gets its own trace (nil tracer: no-op), so a
			// single slow experiment is findable in /v1/traces without
			// wading through the whole batch's tree. The parent_trace
			// attribute links it back to the batch request's trace.
			tier, upgrade := s.resolveTier(id, opts, reqTier)
			if upgrade {
				s.queueUpgrade(id, opts)
			}
			s.met.engineServed.With(string(tier)).Inc()
			ictx, isp := s.cfg.Tracer.StartTrace(ctx, "batch.item", "",
				"experiment", id, "engine", string(tier),
				"parent_trace", telemetry.FromContext(ctx).TraceID())
			val, cached, _, err := s.fetch(ictx, id, opts, tier, false)
			isp.End()
			elapsed := time.Since(start)
			s.met.batchItems.With(id).Observe(elapsed.Seconds())
			line := batchLine{ID: id, Status: "ok", Engine: string(tier), Cached: cached,
				TraceID: isp.TraceID(), ElapsedMS: elapsed.Milliseconds()}
			if err != nil {
				s.cfg.Log.Warn("batch item failed", "experiment", id, "err", err)
				code := codeInternal
				switch {
				case errors.Is(err, sched.ErrQueueFull):
					s.adm.CountRejection(admission.ReasonQueueFull)
					code = codeTooManyRequests
				case errors.Is(err, sched.ErrQueueTimeout):
					s.adm.CountRejection(admission.ReasonQueueTimeout)
					code = codeTooManyRequests
				case isContextErr(err):
					code = codeCanceled
					if r.Context().Err() == context.DeadlineExceeded {
						code = codeDeadlineExceeded
					}
				}
				line = batchLine{ID: id, Status: "error", TraceID: isp.TraceID(),
					ElapsedMS: elapsed.Milliseconds(),
					Error:     &errorDetail{Code: code, Message: err.Error()}}
			} else {
				line.Result = val
			}
			emit(line)
		}(id)
	}
	wg.Wait()
}

// validateBatchOptions applies the same fidelity limits as the
// per-experiment endpoint to a body-decoded request.
func validateBatchOptions(opts machine.RunOptions) error {
	if opts.Instructions > maxInstructions {
		return fmt.Errorf("instructions=%d exceeds the maximum %d", opts.Instructions, maxInstructions)
	}
	if opts.WarmupInstructions > maxInstructions {
		return fmt.Errorf("warmup=%d exceeds the maximum %d", opts.WarmupInstructions, maxInstructions)
	}
	return opts.Validate()
}
