package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// newTracedServer is newTestServer plus a Tracer.
func newTracedServer(cfg Config) *Server {
	if cfg.Tracer == nil {
		cfg.Tracer = telemetry.NewTracer(telemetry.TracerConfig{})
	}
	s, _ := newTestServer(cfg)
	return s
}

func TestLivenessEndpoint(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("live healthz = %d %s, want 200 ok", code, body)
	}

	// Draining flips liveness to 503 so load balancers stop routing
	// here, even while the listener still answers keep-alive requests.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	code, body = get(t, ts, "/v1/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining healthz = %d %s, want 503 draining", code, body)
	}
}

func TestStatusEndpoint(t *testing.T) {
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := newTracedServer(Config{Store: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One computed and one cached request populate the counters.
	get(t, ts, "/v1/experiments/table1")
	get(t, ts, "/v1/experiments/table1")

	code, body := get(t, ts, "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got struct {
		GoVersion string  `json:"go_version"`
		Uptime    float64 `json:"uptime_seconds"`
		Draining  bool    `json:"draining"`
		Store     *struct {
			Entries int64 `json:"entries"`
			Dirty   bool  `json:"dirty"`
		} `json:"store"`
		Sched struct {
			Workers int `json:"workers"`
		} `json:"sched"`
		Cache struct {
			Hits     int64   `json:"hits"`
			Misses   int64   `json:"misses"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"cache"`
		Trace struct {
			Enabled  bool `json:"enabled"`
			Capacity int  `json:"capacity"`
		} `json:"tracing"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decoding status: %v\n%s", err, body)
	}
	if !strings.HasPrefix(got.GoVersion, "go") {
		t.Errorf("go_version = %q", got.GoVersion)
	}
	if got.Uptime <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", got.Uptime)
	}
	if got.Draining {
		t.Error("draining = true on a live server")
	}
	if got.Store == nil {
		t.Error("store section missing despite a configured store")
	}
	if got.Sched.Workers <= 0 {
		t.Errorf("sched.workers = %d, want > 0", got.Sched.Workers)
	}
	if got.Cache.Hits != 1 || got.Cache.Misses != 1 || got.Cache.HitRatio != 0.5 {
		t.Errorf("cache hits/misses/ratio = %d/%d/%v, want 1/1/0.5",
			got.Cache.Hits, got.Cache.Misses, got.Cache.HitRatio)
	}
	if !got.Trace.Enabled || got.Trace.Capacity != 256 {
		t.Errorf("tracing = %+v, want enabled with capacity 256", got.Trace)
	}
}

func TestTracesEndpoint(t *testing.T) {
	s := newTracedServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// An inbound X-Request-Id becomes the trace id and is echoed back.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/experiments/table1", nil)
	req.Header.Set("X-Request-Id", "req-from-client-1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Trace-Id"); id != "req-from-client-1" {
		t.Errorf("X-Trace-Id = %q, want the inbound X-Request-Id", id)
	}

	// A request with no inbound id gets a generated one.
	resp, err = ts.Client().Get(ts.URL + "/v1/experiments/table2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("no X-Trace-Id on a traced endpoint")
	}

	code, body := get(t, ts, "/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("/v1/traces status %d: %s", code, body)
	}
	var got struct {
		Enabled bool                   `json:"enabled"`
		Count   int                    `json:"count"`
		Traces  []*telemetry.TraceData `json:"traces"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Enabled || got.Count < 2 {
		t.Fatalf("traces = enabled:%v count:%d, want enabled with >= 2", got.Enabled, got.Count)
	}
	// Newest first: the table2 request finished last.
	if got.Traces[0].Root.Name != "http.request" {
		t.Errorf("root span = %q, want http.request", got.Traces[0].Root.Name)
	}
	if got.Traces[0].Root.Attrs["experiment"] != "table2" {
		t.Errorf("newest trace experiment = %q, want table2", got.Traces[0].Root.Attrs["experiment"])
	}
	if got.Traces[0].Root.Attrs["status"] != "200" {
		t.Errorf("root status attr = %q, want 200", got.Traces[0].Root.Attrs["status"])
	}

	// Filters: by experiment, by limit, and absurd min_ms excludes all.
	code, body = get(t, ts, "/v1/traces?experiment=table1")
	if err := json.Unmarshal(body, &got); err != nil || code != 200 {
		t.Fatalf("filter status %d err %v", code, err)
	}
	if got.Count != 1 || got.Traces[0].TraceID != "req-from-client-1" {
		t.Errorf("experiment filter: count %d, id %q", got.Count, got.Traces[0].TraceID)
	}
	code, body = get(t, ts, "/v1/traces?limit=1")
	if err := json.Unmarshal(body, &got); err != nil || code != 200 || got.Count != 1 {
		t.Fatalf("limit=1: status %d count %d err %v", code, got.Count, err)
	}
	code, body = get(t, ts, "/v1/traces?min_ms=3600000")
	if err := json.Unmarshal(body, &got); err != nil || code != 200 || got.Count != 0 {
		t.Fatalf("min_ms filter: status %d count %d err %v", code, got.Count, err)
	}

	// Unknown and malformed parameters fail loudly.
	if code, _ := get(t, ts, "/v1/traces?oops=1"); code != http.StatusBadRequest {
		t.Errorf("unknown param: status %d, want 400", code)
	}
	if code, _ := get(t, ts, "/v1/traces?min_ms=fast"); code != http.StatusBadRequest {
		t.Errorf("bad min_ms: status %d, want 400", code)
	}
}

func TestTracesEndpointDisabled(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var got struct {
		Enabled bool `json:"enabled"`
		Count   int  `json:"count"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Enabled || got.Count != 0 {
		t.Errorf("disabled tracer: %+v, want enabled:false count:0", got)
	}
}

// TestTracingDisabledIsInvisible is the compatibility half of the
// tracing contract: with no Tracer configured, responses are
// byte-identical to what they would be with one — no X-Trace-Id
// header, no trace_id in batch lines.
func TestTracingDisabledIsInvisible(t *testing.T) {
	plain, _ := newTestServer(Config{})
	traced := newTracedServer(Config{})
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	tsTraced := httptest.NewServer(traced.Handler())
	defer tsTraced.Close()

	for _, path := range []string{
		"/v1/experiments/table1",
		"/v1/report?instructions=2000",
	} {
		codeP, bodyP := get(t, tsPlain, path)
		codeT, bodyT := get(t, tsTraced, path)
		if codeP != codeT || string(bodyP) != string(bodyT) {
			t.Errorf("%s: disabled tracing changed the response (%d/%d, %d vs %d bytes)",
				path, codeP, codeT, len(bodyP), len(bodyT))
		}
	}

	resp, err := tsPlain.Client().Get(tsPlain.URL + "/v1/experiments/table1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Trace-Id"); id != "" {
		t.Errorf("untraced server sent X-Trace-Id %q", id)
	}

	// Batch lines from the untraced server must not mention trace_id
	// at all (omitempty keeps the wire format unchanged).
	resp, err = tsPlain.Client().Get(tsPlain.URL + "/v1/batch?experiments=table1,table2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "trace_id") {
			t.Errorf("untraced batch line mentions trace_id: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}
