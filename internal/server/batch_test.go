package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"

	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeBatchLine parses one NDJSON line.
func decodeBatchLine(t *testing.T, line string) batchLine {
	t.Helper()
	var l batchLine
	if err := json.Unmarshal([]byte(line), &l); err != nil {
		t.Fatalf("decoding batch line %q: %v", line, err)
	}
	return l
}

// TestBatchStreamsIncrementally is the streaming contract: the first
// result line is readable while the batch's other experiments are
// still computing. Each stubbed computation blocks on its own release
// channel, so only the released experiment can complete. The server is
// tracing, so every line must also carry its own per-item trace id.
func TestBatchStreamsIncrementally(t *testing.T) {
	releases := map[string]chan struct{}{
		"table1": make(chan struct{}),
		"table2": make(chan struct{}),
		"fig1":   make(chan struct{}),
	}
	s := New(Config{Workers: 4, Tracer: telemetry.NewTracer(telemetry.TracerConfig{})})
	s.compute = func(ctx context.Context, id string, _ machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		if ch, ok := releases[id]; ok {
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return map[string]any{"id": id}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/batch?experiments=table1,table2,fig1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}

	br := bufio.NewReader(resp.Body)
	close(releases["table2"]) // only table2 may finish
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first line: %v", err)
	}
	l := decodeBatchLine(t, first)
	if l.ID != "table2" || l.Status != "ok" {
		t.Fatalf("first line = %+v, want table2/ok", l)
	}

	// The other two are still blocked — the stream delivered a result
	// before the batch finished. Release them and drain.
	close(releases["table1"])
	close(releases["fig1"])
	got := map[string]bool{}
	traceIDs := map[string]bool{l.TraceID: true}
	if l.TraceID == "" {
		t.Error("first line has no trace_id")
	}
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		l := decodeBatchLine(t, line)
		if l.Status != "ok" {
			t.Errorf("line %+v: status %q", l, l.Status)
		}
		if l.TraceID == "" {
			t.Errorf("line %q has no trace_id", l.ID)
		}
		got[l.ID] = true
		traceIDs[l.TraceID] = true
	}
	if !got["table1"] || !got["fig1"] {
		t.Fatalf("remaining lines = %v, want table1 and fig1", got)
	}
	// Each item is its own trace, so the three ids must be distinct.
	if len(traceIDs) != 3 {
		t.Errorf("distinct trace ids = %d, want 3", len(traceIDs))
	}
}

// TestBatchDisconnectCancelsOnlyOwnWork: two overlapping batches share
// one in-flight computation via request coalescing. Disconnecting one
// batch cancels the work only it was waiting on; the shared
// computation keeps running for the survivor.
func TestBatchDisconnectCancelsOnlyOwnWork(t *testing.T) {
	var (
		mu       sync.Mutex
		ctxs     = map[string]context.Context{}
		releases = map[string]chan struct{}{
			"table1": make(chan struct{}), // shared between both batches
			"table2": make(chan struct{}), // batch A only
			"fig1":   make(chan struct{}), // batch B only
		}
	)
	s := New(Config{Workers: 4})
	s.compute = func(ctx context.Context, id string, _ machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		mu.Lock()
		ctxs[id] = ctx
		mu.Unlock()
		select {
		case <-releases[id]:
			return map[string]any{"id": id}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctxOf := func(id string) context.Context {
		mu.Lock()
		defer mu.Unlock()
		return ctxs[id]
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	actx, acancel := context.WithCancel(context.Background())
	defer acancel()
	areq, _ := http.NewRequestWithContext(actx, "GET", ts.URL+"/v1/batch?experiments=table1,table2", nil)
	aresp, err := ts.Client().Do(areq)
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	waitFor("batch A computations", func() bool {
		return ctxOf("table1") != nil && ctxOf("table2") != nil
	})

	bresp, err := ts.Client().Get(ts.URL + "/v1/batch?experiments=table1,fig1")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	// B's table1 joined A's in-flight computation; fig1 is B's own.
	waitFor("batch B to coalesce onto table1", func() bool {
		return ctxOf("fig1") != nil && s.flight.waiting(cacheKey("table1", machine.RunOptions{}, engine.TierExact)) >= 1
	})

	acancel() // batch A disconnects mid-stream

	// table2 had only batch A waiting: its computation is canceled.
	waitFor("table2 cancellation", func() bool {
		select {
		case <-ctxOf("table2").Done():
			return true
		default:
			return false
		}
	})
	// table1 is shared with batch B: it must keep running.
	select {
	case <-ctxOf("table1").Done():
		t.Fatal("shared computation canceled by one batch's disconnect")
	default:
	}

	close(releases["table1"])
	close(releases["fig1"])
	got := map[string]string{}
	br := bufio.NewReader(bresp.Body)
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		l := decodeBatchLine(t, line)
		got[l.ID] = l.Status
	}
	if got["table1"] != "ok" || got["fig1"] != "ok" {
		t.Fatalf("batch B lines = %v, want table1 and fig1 ok", got)
	}
}

// TestBatchValidation: malformed batches are rejected with a regular
// JSON error envelope before any streaming begins.
func TestBatchValidation(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, path, wantCode string
	}{
		{"no experiments", "/v1/batch", codeUnknownExperiment},
		{"unknown id", "/v1/batch?experiments=table1,nope", codeUnknownExperiment},
		{"unknown param", "/v1/batch?experiments=table1&typo=1", codeBadOptions},
		{"bad instructions", "/v1/batch?experiments=table1&instructions=abc", codeBadOptions},
		{"excess instructions", "/v1/batch?experiments=table1&instructions=999999999", codeBadOptions},
	}
	for _, tc := range cases {
		code, body := get(t, ts, tc.path)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, code, body)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, body)
			continue
		}
		if env.Error.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, env.Error.Code, tc.wantCode)
		}
	}
}

// TestBatchPost: the JSON-body encoding streams the same lines,
// duplicates collapse, and unknown body fields are rejected.
func TestBatchPost(t *testing.T) {
	s, computations := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"experiments":["table1","table2","table1"],"instructions":2000}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2 (duplicate id must collapse): %q", len(lines), body)
	}
	got := map[string]bool{}
	for _, line := range lines {
		l := decodeBatchLine(t, line)
		if l.Status != "ok" {
			t.Errorf("line %+v: status %q", l, l.Status)
		}
		got[l.ID] = true
	}
	if !got["table1"] || !got["table2"] {
		t.Fatalf("lines = %v, want table1 and table2", got)
	}
	if n := computations.Load(); n != 2 {
		t.Errorf("computations = %d, want 2", n)
	}

	// Unknown body fields fail loudly.
	resp, err = ts.Client().Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"experiments":["table1"],"typo":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown body field: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchConcurrencyCap: a batch evaluates at most its concurrency
// cap of experiments at once.
func TestBatchConcurrencyCap(t *testing.T) {
	var (
		mu      sync.Mutex
		running int
		peak    int
	)
	release := make(chan struct{})
	s := New(Config{Workers: 8, BatchConcurrency: 8})
	s.compute = func(ctx context.Context, id string, _ machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		mu.Lock()
		running++
		if running > peak {
			peak = running
		}
		mu.Unlock()
		select {
		case <-release:
		case <-ctx.Done():
		}
		mu.Lock()
		running--
		mu.Unlock()
		return map[string]any{"id": id}, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		code, body := get(t, ts, "/v1/batch?experiments=table1,table2,fig1,fig2,table5&concurrency=2")
		if code != http.StatusOK {
			t.Errorf("status %d: %s", code, body)
		}
		done <- nil
	}()
	// Give the batch time to overshoot the cap if it was going to.
	time.Sleep(100 * time.Millisecond)
	close(release)
	<-done
	if peak > 2 {
		t.Errorf("peak concurrent computations = %d, want <= 2", peak)
	}
}

// TestStalledHeaderTimeout: a connection that never finishes sending
// its request headers is cut at ReadHeaderTimeout instead of holding
// its goroutine forever (slowloris).
func TestStalledHeaderTimeout(t *testing.T) {
	s, _ := newTestServer(Config{ReadHeaderTimeout: 100 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); s.Serve(l) }()
	defer func() { s.Close(); <-serveDone }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a request but never send the terminating blank line.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: stalled\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if n, err := conn.Read(buf); err == nil {
		t.Fatalf("stalled connection got %d response bytes, want the server to cut it", n)
	}
}
