package server

import "container/list"

// lru is a bounded string-keyed map with least-recently-used eviction.
// It is not safe for concurrent use; the Server guards it with its own
// mutex.
type lru struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the value for key, marking it most recently used.
func (l *lru) get(key string) (any, bool) {
	e, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.ll.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

// put inserts or refreshes key, evicting the least recently used entry
// if the cache is over capacity. It reports whether an eviction
// happened.
func (l *lru) put(key string, val any) bool {
	if e, ok := l.items[key]; ok {
		e.Value.(*lruEntry).val = val
		l.ll.MoveToFront(e)
		return false
	}
	l.items[key] = l.ll.PushFront(&lruEntry{key: key, val: val})
	if l.ll.Len() <= l.cap {
		return false
	}
	oldest := l.ll.Back()
	l.ll.Remove(oldest)
	delete(l.items, oldest.Value.(*lruEntry).key)
	return true
}

func (l *lru) len() int { return l.ll.Len() }
