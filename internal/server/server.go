// Package server implements spec17d's HTTP characterization service:
// the full experiment suite of the reproduction served over JSON, with
// a keyed LRU result cache, singleflight request coalescing, and a
// bounded worker pool in front of the expensive fleet
// characterizations.
//
// Endpoints:
//
//	GET /v1/experiments                  experiment catalog
//	GET /v1/experiments/{id}?instructions=N&warmup=M
//	GET /v1/report?instructions=N&warmup=M
//	GET /healthz
//	GET /metrics                         Prometheus text exposition
//
// Results are cached by (experiment id, canonical RunOptions); the
// measurement substrate is deterministic, so cached entries never
// expire — identical options reproduce identical bytes. Concurrent
// requests for the same uncached key coalesce onto one computation,
// and at most Config.Workers computations run at once, so a stampede
// of distinct fidelities degrades into an orderly queue instead of
// characterizing the fleet N times concurrently.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/insight"
	"repro/internal/jobs"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/server/api"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// reportID is the internal cache identity of the full report; it is
// deliberately not a valid experiment id.
const reportID = "__report__"

// maxInstructions caps the per-run fidelity a request may ask for.
// Characterization cost is linear in this value; the cap keeps one
// request from tying up a worker for hours.
const maxInstructions = 10_000_000

// analyticCostDivisor discounts the admission price of analytic (and
// auto) requests: the closed-form estimator is benchmarked at better
// than 50× the exact engine's throughput over the full registry, so an
// analytic request consumes a proportionally smaller compute budget.
const analyticCostDivisor = 50

// upgradeQueueCap bounds the background exact-upgrade queue. Auto
// requests beyond it are still answered (analytically); only the
// upgrade is dropped, and a later auto request re-queues it.
const upgradeQueueCap = 128

// Config configures a Server. The zero value is usable: every field
// has a sensible default.
type Config struct {
	// ResultCacheSize bounds the number of cached experiment results
	// (LRU-evicted). Defaults to 512.
	ResultCacheSize int
	// LabCacheSize bounds the number of retained Labs — one per
	// distinct fidelity, each holding a full fleet characterization.
	// Defaults to 4.
	LabCacheSize int
	// Workers bounds concurrent Lab computations. Defaults to 2.
	Workers int
	// SimWorkers bounds concurrent leaf simulations across every Lab
	// the server owns — the shared scheduler's worker count. Defaults
	// to GOMAXPROCS.
	SimWorkers int
	// BatchConcurrency bounds the experiments one batch request
	// evaluates at once. Defaults to 4.
	BatchConcurrency int
	// ReadHeaderTimeout bounds how long a connection may take to send
	// its request headers before being cut (slowloris defense).
	// Defaults to 10s.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading an entire request, body included.
	// Zero (the default) disables it: Go arms the read deadline for
	// the whole exchange, so a nonzero value also aborts legitimately
	// long streaming responses (batches at high fidelity).
	ReadTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit idle
	// between requests. Defaults to 2m.
	IdleTimeout time.Duration
	// MaxHeaderBytes bounds per-connection request-header memory.
	// Defaults to 64 KiB.
	MaxHeaderBytes int
	// RateLimit is the per-client admission refill rate in tokens per
	// second (one token = one experiment at default fidelity; see
	// admission.Cost). 0 (the default) disables rate limiting.
	RateLimit float64
	// Burst is the per-client admission bucket capacity. <= 0 defaults
	// to max(RateLimit, 1) when rate limiting is on.
	Burst float64
	// MaxInFlight bounds concurrently admitted compute requests across
	// all clients. 0 disables the limit.
	MaxInFlight int
	// MaxQueue bounds the scheduler's pending queue; submissions beyond
	// it are shed with 429 instead of queueing without bound. 0 means
	// unbounded.
	MaxQueue int
	// QueueWait bounds how long a scheduled job may sit queued before
	// being shed (429). 0 disables.
	QueueWait time.Duration
	// RequestTimeout is the server-side deadline for compute requests;
	// a request still working when it expires answers 504. 0 disables.
	RequestTimeout time.Duration
	// DefaultEngine is the measurement engine tier used when a request
	// does not pass ?engine=. Defaults to engine.TierExact; TierAuto
	// makes the daemon answer analytically and upgrade in the
	// background by default.
	DefaultEngine engine.Tier
	// UpgradeWorkers bounds concurrent background exact upgrades of
	// analytically-served auto requests. Defaults to 2; negative
	// disables upgrading (auto then never converges to exact on its
	// own).
	UpgradeWorkers int
	// JobsDisabled turns the async-job subsystem off: the /v1/jobs
	// routes are not registered and no job state is loaded.
	JobsDisabled bool
	// MaxJobs bounds retained async jobs (running and finished).
	// Defaults to 256.
	MaxJobs int
	// JobWorkers bounds concurrently executing async jobs. Defaults
	// to 2.
	JobWorkers int
	// JobsPath is the job-state snapshot file. Empty defaults to the
	// store's snapshot path + ".jobs" when the store persists; with no
	// persistent store, jobs are memory-only and do not survive
	// restarts.
	JobsPath string
	// WebhookTimeout bounds one job-webhook delivery attempt. 0
	// defaults to 5s; negative disables webhook delivery entirely.
	WebhookTimeout time.Duration
	// Store, when set, backs every Lab the server builds: measurements
	// are content-addressed, deduplicated across fidelities, and — when
	// the store has a snapshot path — survive restarts, so a warm
	// daemon answers its first report without simulating. Nil measures
	// directly.
	Store *store.Store
	// Metrics receives the server's instruments. Defaults to a fresh
	// registry, retrievable via Metrics().
	Metrics *metrics.Registry
	// Log receives access lines and request-level errors. Defaults to
	// an info-level structured logger on stderr.
	Log *telemetry.Logger
	// Tracer records per-request span trees, served by GET /v1/traces.
	// Nil disables tracing entirely: no X-Trace-Id header, no trace
	// ids in batch lines, and no per-request allocations for spans.
	Tracer *telemetry.Tracer
	// Insight is the self-monitoring plane (internal/insight). When
	// set, the server registers GET /v1/metrics/history, /v1/accuracy,
	// and /v1/events, reports insight state in /v1/status, and nudges
	// the drift monitor whenever a background exact upgrade lands. Nil
	// disables all of it — the routes 404 and compute responses are
	// byte-identical.
	Insight *insight.Plane
}

func (c Config) withDefaults() Config {
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 512
	}
	if c.LabCacheSize <= 0 {
		c.LabCacheSize = 4
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.BatchConcurrency <= 0 {
		c.BatchConcurrency = 4
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.MaxHeaderBytes <= 0 {
		c.MaxHeaderBytes = 64 << 10
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = engine.TierExact
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.WebhookTimeout == 0 {
		c.WebhookTimeout = 5 * time.Second
	}
	if c.JobsPath == "" && c.Store != nil && c.Store.Path() != "" {
		c.JobsPath = c.Store.Path() + ".jobs"
	}
	if c.UpgradeWorkers == 0 {
		c.UpgradeWorkers = 2
	}
	if c.UpgradeWorkers < 0 {
		c.UpgradeWorkers = 0
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Log == nil {
		c.Log = telemetry.NewLogger(os.Stderr, telemetry.LevelInfo)
	}
	return c
}

// serverMetrics bundles every instrument the server records.
type serverMetrics struct {
	requests      *metrics.CounterVec // endpoint, code
	latency       *metrics.HistogramVec
	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	cacheEntries  *metrics.Gauge
	coalesced     *metrics.Counter
	computations  *metrics.Counter
	inflight      *metrics.Gauge
	batchInflight *metrics.Gauge
	batchItems    *metrics.HistogramVec
	engineServed  *metrics.CounterVec // engine (concrete tier)
	upgrades      *metrics.CounterVec // status
	upgradeDepth  *metrics.Gauge
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	return serverMetrics{
		requests: r.CounterVec("spec17d_requests_total",
			"HTTP requests served, by route pattern and status code.",
			"endpoint", "code"),
		latency: r.HistogramVec("spec17d_request_duration_seconds",
			"HTTP request latency, by route pattern.",
			nil, "endpoint"),
		cacheHits: r.Counter("spec17d_cache_hits_total",
			"Experiment requests answered from the result cache."),
		cacheMisses: r.Counter("spec17d_cache_misses_total",
			"Experiment requests that found no cached result."),
		cacheEntries: r.Gauge("spec17d_cache_entries",
			"Result-cache entries currently resident."),
		coalesced: r.Counter("spec17d_coalesced_waiters_total",
			"Requests that coalesced onto another request's in-flight computation."),
		computations: r.Counter("spec17d_computations_total",
			"Lab computations actually executed (cache misses that led the flight)."),
		inflight: r.Gauge("spec17d_inflight_jobs",
			"Lab computations currently running."),
		batchInflight: r.Gauge("spec17_batch_inflight",
			"Batch requests currently streaming."),
		batchItems: r.HistogramVec("spec17_batch_item_duration_seconds",
			"Per-experiment latency within batch streams, submission to emitted line.",
			nil, "experiment"),
		engineServed: r.CounterVec("spec17d_engine_requests_total",
			"Compute requests served, by concrete engine tier (auto counts as the tier it resolved to).",
			"engine"),
		upgrades: r.CounterVec("spec17d_engine_upgrades_total",
			"Background exact upgrades of analytically-served keys, by status (queued, done, failed, dropped).",
			"status"),
		upgradeDepth: r.Gauge("spec17d_engine_upgrade_queue_depth",
			"Exact-upgrade jobs currently queued."),
	}
}

// Server serves the experiment suite. Create with New; the zero value
// is not usable.
type Server struct {
	cfg     Config
	met     serverMetrics
	mux     *http.ServeMux
	routes  []routeDef
	started time.Time

	flight *group
	sem    chan struct{} // worker-pool slots (interactive requests)
	// jobsSem bounds background (job-item) computations separately,
	// and strictly below Workers when Workers > 1 — a sweep whose
	// items all stall can never hold every worker slot an interactive
	// request needs.
	jobsSem chan struct{}
	pool    *sched.Pool           // shared simulation scheduler
	queue   *sched.Queue          // the server's queue on pool (uncapped)
	adm     *admission.Controller // overload-protection gate

	// jobs is the async-job subsystem (nil when JobsDisabled). Its
	// items execute on jobsQueue — a scheduler queue capped one below
	// the pool's worker count, so a registry-scale background sweep
	// always leaves at least one simulation worker for interactive
	// traffic.
	jobs      *jobs.Manager
	jobsQueue *sched.Queue
	jobsStart sync.Once
	// jobsRunner executes one job item; defaults to runJobItem.
	// Overridable in tests (before the first Handler call) to observe
	// or interrupt job execution.
	jobsRunner func(ctx context.Context, j jobs.Job, item string) error

	// draining is set once Shutdown begins; computation endpoints then
	// answer 503 instead of starting work the drain deadline would
	// abandon (keep-alive connections can still submit requests while
	// the listener drains).
	draining atomic.Bool

	mu      sync.Mutex
	results *lru // cacheKey -> experiment result
	labs    *lru // (fidelity, engine) key -> *experiments.Lab

	// upgradePending (guarded by mu) dedups queued exact upgrades by
	// their exact-tier cache key.
	upgradePending map[string]bool
	upgradeCh      chan upgradeJob
	upgradeCtx     context.Context
	upgradeCancel  context.CancelFunc
	upgradeWG      sync.WaitGroup
	upgradeStop    sync.Once

	// compute produces one experiment (or reportID) result at the
	// given fidelity on the given concrete engine tier. Overridden in
	// tests to observe and control the computation path; the default
	// runs the experiment registry on a cached Lab. The context is the
	// flight's: canceled when every waiting request has disconnected.
	// background marks async-job work, which runs on the capped jobs
	// scheduler queue instead of the interactive one.
	compute func(ctx context.Context, id string, opts machine.RunOptions, tier engine.Tier, background bool) (any, error)
	// computeStarted, when set (tests), is invoked by the flight
	// leader right before compute.
	computeStarted func(key string)

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// New returns a Server ready to serve via Handler, Serve, or
// ListenAndServe.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		met:     newServerMetrics(cfg.Metrics),
		started: time.Now(),
		flight:  newGroup(),
		sem:     make(chan struct{}, cfg.Workers),
		pool: sched.NewPoolWith(sched.PoolConfig{
			Workers:   cfg.SimWorkers,
			MaxQueue:  cfg.MaxQueue,
			QueueWait: cfg.QueueWait,
			Metrics:   cfg.Metrics,
		}),
		adm: admission.New(admission.Config{
			Rate:        cfg.RateLimit,
			Burst:       cfg.Burst,
			MaxInFlight: cfg.MaxInFlight,
			Metrics:     cfg.Metrics,
		}),
		results:        newLRU(cfg.ResultCacheSize),
		labs:           newLRU(cfg.LabCacheSize),
		upgradePending: make(map[string]bool),
		upgradeCh:      make(chan upgradeJob, upgradeQueueCap),
	}
	s.queue = s.pool.Queue(0)
	s.compute = s.runExperiment
	s.upgradeCtx, s.upgradeCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.UpgradeWorkers; i++ {
		s.upgradeWG.Add(1)
		go s.upgradeWorker()
	}

	if !cfg.JobsDisabled {
		bg := s.pool.Workers() - 1
		if bg < 1 {
			bg = 1
		}
		s.jobsQueue = s.pool.Queue(bg)
		// The worker-slot bound mirrors the queue cap: one below the
		// interactive pool when possible, so background computations can
		// never occupy every slot.
		bgSem := cfg.Workers - 1
		if bgSem < 1 {
			bgSem = 1
		}
		s.jobsSem = make(chan struct{}, bgSem)
		s.jobsRunner = s.runJobItem
		s.newJobManager()
	}

	// The route table is the single source of truth for the mux, the
	// 405 Allow computation, and the GET /v1 discovery document.
	s.routes = s.routeTable()
	s.mux = http.NewServeMux()
	for _, rt := range s.routes {
		if rt.raw {
			s.mux.HandleFunc(rt.method+" "+rt.pattern, rt.h)
			continue
		}
		s.mux.HandleFunc(rt.method+" "+rt.pattern, s.instrument(rt.pattern, rt.traced, rt.h))
	}
	// Everything else — unknown paths, and known paths with the wrong
	// method (a method-mismatched request falls through to this
	// pattern) — answers the same error envelope as real handlers.
	s.mux.HandleFunc("/", s.instrument("fallback", false, s.handleFallback))
	return s
}

// Metrics returns the registry holding the server's instruments.
func (s *Server) Metrics() *metrics.Registry { return s.cfg.Metrics }

// Handler returns the server's HTTP handler, for mounting in tests or
// a caller-owned http.Server. The first call starts the async-job
// workers (so tests can swap the job runner between New and Handler).
func (s *Server) Handler() http.Handler {
	s.jobsStart.Do(func() {
		if s.jobs != nil {
			s.jobs.Start()
		}
	})
	return s.mux
}

// Serve accepts connections on l until Shutdown. It returns nil after
// a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		ReadTimeout:       s.cfg.ReadTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		MaxHeaderBytes:    s.cfg.MaxHeaderBytes,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	if err := srv.Serve(l); err != http.ErrServerClosed {
		return err
	}
	return nil
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown stops accepting new connections and blocks until in-flight
// requests drain (or ctx expires). Computation endpoints refuse new
// work with 503/"draining" for the duration. Safe to call before
// Serve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopUpgrades()
	if s.jobs != nil {
		// Graceful: interrupt running items, revert them to pending, and
		// write a final checkpoint so the next boot resumes mid-sweep.
		s.jobs.Close()
	}
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// Close immediately closes the listener and every active connection,
// abandoning in-flight requests. It is the escape hatch when a drain
// must be cut short (e.g. a second termination signal). Safe to call
// before Serve or after Shutdown.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.stopUpgrades()
	if s.jobs != nil {
		// SIGKILL-shaped: no final checkpoint — on-disk job state stays
		// whatever the last per-item checkpoint wrote.
		s.jobs.Kill()
	}
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// cacheKey is the identity of one result: experiment id × canonical
// run options × concrete engine tier. Requests spelling the same
// fidelity differently (explicit defaults vs omitted) share a key; the
// exact tier adds no suffix, so keys cached before engines existed
// keep their identity.
func cacheKey(id string, opts machine.RunOptions, tier engine.Tier) string {
	c := opts.Canonical()
	k := id + "?i=" + strconv.Itoa(c.Instructions) + "&w=" + strconv.Itoa(c.WarmupInstructions)
	if tier != "" && tier != engine.TierExact {
		k += "&e=" + string(tier)
	}
	return k
}

// labFor returns the Lab for one (fidelity, engine tier), creating and
// caching it on first use. Labs build their fleet characterization
// lazily, so creation is cheap; the LRU bound caps how many full
// characterizations stay resident. Background (async-job) work gets
// its own Labs on the capped jobs queue, so its leaf simulations can
// never occupy every pool worker; the measurement store underneath is
// shared, so the bytes computed are identical either way.
func (s *Server) labFor(opts machine.RunOptions, tier engine.Tier, background bool) *experiments.Lab {
	key := cacheKey("", opts, tier)
	queue := s.queue
	if background && s.jobsQueue != nil {
		key = "jobs|" + key
		queue = s.jobsQueue
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.labs.get(key); ok {
		return v.(*experiments.Lab)
	}
	// The exact tier keeps a nil engine: the historical Simulate path,
	// bit-identical and identically store-keyed to engine.Exact.
	var eng engine.Engine
	if tier == engine.TierAnalytic {
		eng = engine.Analytic{}
	}
	lab := experiments.NewLabWithEngine(opts.Canonical(), s.cfg.Store, queue, eng)
	s.labs.put(key, lab)
	return lab
}

// runExperiment is the default compute path: resolve the registry
// entry (or the full report) and run it on the (fidelity, tier)'s
// shared Lab under the flight's context.
func (s *Server) runExperiment(ctx context.Context, id string, opts machine.RunOptions, tier engine.Tier, background bool) (any, error) {
	lab := s.labFor(opts, tier, background).WithContext(ctx)
	if id == reportID {
		return experiments.BuildReport(lab)
	}
	d, ok := experiments.Lookup(id)
	if !ok {
		return nil, experiments.UnknownIDError(id)
	}
	return d.Run(lab)
}

// upgradeJob is one queued background exact re-measurement.
type upgradeJob struct {
	id   string
	opts machine.RunOptions
	key  string // exact-tier cache key, the pending-dedup identity
}

// resolveTier maps a requested tier onto the concrete tier this
// request is served at. Auto serves exact when the exact result is
// already cached and analytic otherwise; the second return reports
// whether the caller should queue a background exact upgrade.
func (s *Server) resolveTier(id string, opts machine.RunOptions, req engine.Tier) (engine.Tier, bool) {
	if req != engine.TierAuto {
		return req, false
	}
	s.mu.Lock()
	_, ok := s.results.get(cacheKey(id, opts, engine.TierExact))
	s.mu.Unlock()
	if ok {
		return engine.TierExact, false
	}
	return engine.TierAnalytic, true
}

// queueUpgrade enqueues a background exact re-measurement of (id,
// opts), deduplicating against upgrades already queued or running.
// Returns whether the upgrade is now pending (newly queued or already
// in flight); a full queue drops the job — a later auto request will
// re-queue it.
func (s *Server) queueUpgrade(id string, opts machine.RunOptions) bool {
	if s.cfg.UpgradeWorkers == 0 || s.draining.Load() {
		return false
	}
	key := cacheKey(id, opts, engine.TierExact)
	s.mu.Lock()
	if s.upgradePending[key] {
		s.mu.Unlock()
		return true
	}
	s.upgradePending[key] = true
	s.mu.Unlock()
	select {
	case s.upgradeCh <- upgradeJob{id: id, opts: opts, key: key}:
		s.met.upgrades.With("queued").Inc()
		s.met.upgradeDepth.Set(float64(len(s.upgradeCh)))
		return true
	default:
		s.mu.Lock()
		delete(s.upgradePending, key)
		s.mu.Unlock()
		s.met.upgrades.With("dropped").Inc()
		return false
	}
}

// upgradeWorker drains the upgrade queue: each job runs the ordinary
// fetch path at the exact tier, so the result lands in the result
// cache (and the measurements in the store) exactly as a direct
// engine=exact request's would — later auto requests serve it
// bit-identically.
func (s *Server) upgradeWorker() {
	defer s.upgradeWG.Done()
	for {
		select {
		case <-s.upgradeCtx.Done():
			return
		case job := <-s.upgradeCh:
			s.met.upgradeDepth.Set(float64(len(s.upgradeCh)))
			_, _, _, err := s.fetch(s.upgradeCtx, job.id, job.opts, engine.TierExact, false)
			s.mu.Lock()
			delete(s.upgradePending, job.key)
			s.mu.Unlock()
			if err != nil {
				s.met.upgrades.With("failed").Inc()
				if s.upgradeCtx.Err() == nil {
					s.cfg.Log.Warn("exact upgrade failed", "what", job.id, "err", err)
				}
			} else {
				s.met.upgrades.With("done").Inc()
				// The exact twin of an analytically-served key just
				// landed in the store: let the drift monitor compare
				// the pair now instead of waiting for its next tick.
				if ins := s.cfg.Insight; ins != nil {
					ins.Drift().Scan()
				}
			}
		}
	}
}

// stopUpgrades halts the background upgrade workers, canceling any
// in-flight exact re-measurement they lead.
func (s *Server) stopUpgrades() {
	s.upgradeStop.Do(func() {
		s.upgradeCancel()
		s.upgradeWG.Wait()
	})
}

// fetch returns the result for (id, opts), serving from cache when
// possible, coalescing concurrent misses for the same key onto one
// computation, and bounding concurrent computations by the worker
// pool. Canceling ctx abandons this caller's wait; a computation all
// of whose callers have disconnected is itself canceled.
func (s *Server) fetch(ctx context.Context, id string, opts machine.RunOptions, tier engine.Tier, background bool) (val any, cached, coalesced bool, err error) {
	key := cacheKey(id, opts, tier)
	s.mu.Lock()
	if v, ok := s.results.get(key); ok {
		s.mu.Unlock()
		s.met.cacheHits.Inc()
		return v, true, false, nil
	}
	s.mu.Unlock()
	s.met.cacheMisses.Inc()

	// The flight context outlives any one caller, so it inherits the
	// leading caller's span explicitly; callers that coalesce onto the
	// flight share its result, not its spans.
	parentSpan := telemetry.FromContext(ctx)
	val, err, joined := s.flight.do(ctx, key, func(fctx context.Context) (any, error) {
		fctx = telemetry.WithSpan(fctx, parentSpan)
		sem := s.sem
		if background {
			sem = s.jobsSem
		}
		select {
		case sem <- struct{}{}: // acquire a worker slot
		case <-fctx.Done():
			return nil, fctx.Err() // every waiter left while queued
		}
		defer func() { <-sem }()
		// A result may have landed while this flight queued behind
		// the worker pool (e.g. an identical flight finished between
		// our cache miss and our turn).
		s.mu.Lock()
		if v, ok := s.results.get(key); ok {
			s.mu.Unlock()
			return v, nil
		}
		s.mu.Unlock()

		s.met.inflight.Inc()
		defer s.met.inflight.Dec()
		if s.computeStarted != nil {
			s.computeStarted(key)
		}
		s.met.computations.Inc()
		v, err := s.compute(fctx, id, opts, tier, background)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.results.put(key, v)
		n := s.results.len()
		s.mu.Unlock()
		s.met.cacheEntries.Set(float64(n))
		return v, nil
	})
	if joined {
		s.met.coalesced.Inc()
	}
	return val, false, joined, err
}

// parseRunOptions extracts ?instructions=, ?warmup=, and ?engine= and
// validates them (options through machine.RunOptions.Validate, the
// engine through engine.ParseTier). Unknown query parameters and
// duplicated ones are rejected so typos fail loudly instead of
// silently measuring at default fidelity — or on the wrong engine —
// and range errors are caught right here at parse time. An absent
// ?engine= returns the zero Tier; the caller substitutes the server's
// default.
func parseRunOptions(r *http.Request) (machine.RunOptions, engine.Tier, error) {
	var opts machine.RunOptions
	var tier engine.Tier
	q := r.URL.Query()
	for k, vs := range q {
		if k != "instructions" && k != "warmup" && k != "engine" {
			return opts, tier, fmt.Errorf("unknown query parameter %q (valid: instructions, warmup, engine)", k)
		}
		if len(vs) > 1 {
			return opts, tier, fmt.Errorf("query parameter %q given %d times, want at most once", k, len(vs))
		}
	}
	// Present-but-empty (?instructions=, ?warmup=, ?engine=) is
	// rejected everywhere rather than silently reading as "absent".
	if err := api.NoEmptyParams(q); err != nil {
		return opts, tier, err
	}
	if v := q.Get("instructions"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return opts, tier, fmt.Errorf("instructions=%q: must be a positive integer", v)
		}
		if n > maxInstructions {
			return opts, tier, fmt.Errorf("instructions=%d exceeds the maximum %d", n, maxInstructions)
		}
		opts.Instructions = n
	}
	if v := q.Get("warmup"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, tier, fmt.Errorf("warmup=%q: must be a non-negative integer", v)
		}
		if n > maxInstructions {
			return opts, tier, fmt.Errorf("warmup=%d exceeds the maximum %d", n, maxInstructions)
		}
		opts.WarmupInstructions = n
	}
	if v := q.Get("engine"); v != "" {
		t, err := engine.ParseTier(v)
		if err != nil {
			return opts, tier, err
		}
		tier = t
	}
	if err := opts.Validate(); err != nil {
		return opts, tier, err
	}
	return opts, tier, nil
}

// Error-envelope codes. Every non-200 JSON response is
// {"error":{"code","message"}} with one of these codes, so clients
// switch on a stable string instead of parsing messages. The codes
// (and the envelope itself) are defined once in internal/server/api
// and shared by every layer, including the mux fallbacks.
const (
	codeUnknownExperiment = api.CodeUnknownExperiment
	codeUnknownJob        = api.CodeUnknownJob
	codeBadOptions        = api.CodeBadOptions
	codeDraining          = api.CodeDraining
	codeCanceled          = api.CodeCanceled
	codeInternal          = api.CodeInternal
	codeTooManyRequests   = api.CodeTooManyRequests
	codeDeadlineExceeded  = api.CodeDeadlineExceeded
	codeBodyTooLarge      = api.CodeBodyTooLarge
	codeJobNotDone        = api.CodeJobNotDone
)

// errorDetail is the error half of the envelope (see api.ErrorDetail).
type errorDetail = api.ErrorDetail

// errorEnvelope aliases the api envelope for the test suite.
type errorEnvelope = api.Envelope

func writeError(w http.ResponseWriter, status int, code, message string, known []string) {
	api.WriteError(w, status, code, message, known)
}

// writeComputeError maps a computation failure onto the envelope:
// scheduler sheds (queue full, queue-wait timeout) get
// 429/too_many_requests with a Retry-After, a server-side deadline
// expiry gets 504/deadline_exceeded, other cancellations (the client
// has gone away, or the drain abandoned the wait) get 499/canceled,
// and everything else 500/internal.
func (s *Server) writeComputeError(w http.ResponseWriter, r *http.Request, what string, err error) {
	s.cfg.Log.Error("compute failed", "what", what, "err", err)
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		s.adm.CountRejection(admission.ReasonQueueFull)
		s.writeShed(w, err.Error(), 0)
	case errors.Is(err, sched.ErrQueueTimeout):
		s.adm.CountRejection(admission.ReasonQueueTimeout)
		s.writeShed(w, err.Error(), 0)
	case isContextErr(err):
		if r.Context().Err() == context.DeadlineExceeded {
			// The server-side deadline fired, not the client: own it.
			writeError(w, http.StatusGatewayTimeout, codeDeadlineExceeded,
				"request exceeded the server-side deadline", nil)
			return
		}
		// 499: the nginx "client closed request" convention; the
		// client is usually gone, but keep the wire honest.
		writeError(w, 499, codeCanceled, err.Error(), nil)
	default:
		writeError(w, http.StatusInternalServerError, codeInternal, err.Error(), nil)
	}
}

// retryAfterSeconds turns a rejection into integer Retry-After
// seconds: at least the admission layer's own refill estimate, at
// least the time the scheduler's current backlog needs to clear one
// queue slot (1 + depth/workers, each job assumed to take on the
// order of a second), clamped to [1s, 5m].
func (s *Server) retryAfterSeconds(hint time.Duration) int {
	secs := int(math.Ceil(hint.Seconds()))
	st := s.pool.Stats()
	if byDepth := 1 + st.Depth/s.pool.Workers(); byDepth > secs {
		secs = byDepth
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// writeShed answers 429/too_many_requests with a Retry-After header.
// hint, when nonzero, is the admission layer's own earliest-retry
// estimate; the queue-depth floor applies either way.
func (s *Server) writeShed(w http.ResponseWriter, message string, hint time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(hint)))
	writeError(w, http.StatusTooManyRequests, codeTooManyRequests, message, nil)
}

// refuseDraining answers 503 when the server is shutting down.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, codeDraining,
		"server is draining; retry against another instance", nil)
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	api.WriteJSON(w, code, v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Metrics.WritePrometheus(w); err != nil {
		s.cfg.Log.Error("writing /metrics", "err", err)
	}
}

// catalogEntry is one row of the /v1/experiments listing.
type catalogEntry struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Kind  string `json:"kind"`
}

// handleCatalog is GET /v1/experiments: the registry listing, windowed
// by ?limit=/?offset=. The full registry size always rides along as
// the X-Total-Count header (and the total field), so paging clients
// know when to stop without a sentinel request.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "limit", "offset":
		default:
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("unknown query parameter %q (valid: limit, offset)", k), nil)
			return
		}
	}
	if err := api.NoEmptyParams(q); err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	page, err := api.ParsePage(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	descs := experiments.Registry()
	lo, hi := page.Window(len(descs))
	entries := make([]catalogEntry, 0, hi-lo)
	for _, d := range descs[lo:hi] {
		entries = append(entries, catalogEntry{ID: d.ID, Title: d.Title, Kind: d.Kind})
	}
	w.Header().Set("X-Total-Count", strconv.Itoa(len(descs)))
	writeJSON(w, http.StatusOK, struct {
		Total       int            `json:"total"`
		Count       int            `json:"count"`
		Offset      int            `json:"offset"`
		Experiments []catalogEntry `json:"experiments"`
	}{len(descs), len(entries), lo, entries})
}

// experimentResponse is the /v1/experiments/{id} body.
type experimentResponse struct {
	ID           string `json:"id"`
	Title        string `json:"title"`
	Kind         string `json:"kind"`
	Instructions int    `json:"instructions"`
	Warmup       int    `json:"warmup"`
	// Engine is the concrete tier that produced the result; an
	// engine=auto request answers "analytic" until its background
	// upgrade lands, then "exact".
	Engine string `json:"engine"`
	// UpgradePending is set on auto requests whose exact upgrade is
	// queued or running.
	UpgradePending bool `json:"upgrade_pending,omitempty"`
	Cached         bool `json:"cached"`
	Coalesced      bool `json:"coalesced,omitempty"`
	Result         any  `json:"result"`
}

// reqTier merges the parsed tier with the server default and resolves
// it to the concrete serving tier, queueing the auto upgrade.
func (s *Server) reqTier(id string, opts machine.RunOptions, parsed engine.Tier) (tier engine.Tier, upgradePending bool) {
	if parsed == "" {
		parsed = s.cfg.DefaultEngine
	}
	tier, upgrade := s.resolveTier(id, opts, parsed)
	if upgrade {
		upgradePending = s.queueUpgrade(id, opts)
	}
	return tier, upgradePending
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	id := r.PathValue("id")
	d, ok := experiments.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownExperiment,
			experiments.UnknownIDError(id).Error(), experiments.SortedIDs())
		return
	}
	opts, parsed, err := parseRunOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	tier, upgrading := s.reqTier(id, opts, parsed)
	if sp := telemetry.FromContext(r.Context()); sp != nil {
		sp.SetAttr("experiment", id)
		sp.SetAttr("engine", string(tier))
	}
	s.met.engineServed.With(string(tier)).Inc()
	val, cached, coalesced, err := s.fetch(r.Context(), id, opts, tier, false)
	if err != nil {
		s.writeComputeError(w, r, id, err)
		return
	}
	canon := opts.Canonical()
	writeJSON(w, http.StatusOK, experimentResponse{
		ID:             d.ID,
		Title:          d.Title,
		Kind:           d.Kind,
		Instructions:   canon.Instructions,
		Warmup:         canon.WarmupInstructions,
		Engine:         string(tier),
		UpgradePending: upgrading,
		Cached:         cached,
		Coalesced:      coalesced,
		Result:         val,
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	opts, parsed, err := parseRunOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	tier, upgrading := s.reqTier(reportID, opts, parsed)
	if sp := telemetry.FromContext(r.Context()); sp != nil {
		sp.SetAttr("experiment", "report")
		sp.SetAttr("engine", string(tier))
	}
	s.met.engineServed.With(string(tier)).Inc()
	val, cached, coalesced, err := s.fetch(r.Context(), reportID, opts, tier, false)
	if err != nil {
		s.writeComputeError(w, r, "report", err)
		return
	}
	canon := opts.Canonical()
	writeJSON(w, http.StatusOK, struct {
		Instructions   int    `json:"instructions"`
		Warmup         int    `json:"warmup"`
		Engine         string `json:"engine"`
		UpgradePending bool   `json:"upgrade_pending,omitempty"`
		Cached         bool   `json:"cached"`
		Coalesced      bool   `json:"coalesced,omitempty"`
		Report         any    `json:"report"`
	}{canon.Instructions, canon.WarmupInstructions, string(tier), upgrading, cached, coalesced, val})
}

// statusWriter captures the response code and body size for
// instrumentation and access logging.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so streaming handlers (the
// batch endpoint) can flush per line through the instrumentation
// layer.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// clientKey identifies the client for per-client admission budgets:
// the X-API-Key header when present, else the connection's remote IP
// (port stripped, so one host's keep-alive connections share a
// bucket).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// estimateCost prices a request for admission before any work starts,
// from nothing but the route and query: experiments charge for one
// workload, the report for every registered one — both scaled by the
// requested fidelity. Batch requests enter at zero; their items are
// priced individually as the stream reaches them. Unparseable options
// price at the default (the 400 comes later, after admission).
func (s *Server) estimateCost(r *http.Request, endpoint string) float64 {
	instr, _ := strconv.Atoi(r.URL.Query().Get("instructions"))
	var cost float64
	switch endpoint {
	case "/v1/experiments/{id}":
		cost = admission.Cost(instr, 1)
	case "/v1/report":
		cost = admission.Cost(instr, len(experiments.Registry()))
	case "/v1/jobs":
		// Submitting a sweep costs a flat token; the sweep's items are
		// charged one by one (blocking, not shedding) as they execute.
		return 1
	default:
		return 0
	}
	// Analytic (and auto, which serves analytically when cold) requests
	// are priced at the estimator's measured cost advantage.
	eng := r.URL.Query().Get("engine")
	if eng == "" {
		eng = string(s.cfg.DefaultEngine)
	}
	if eng == string(engine.TierAnalytic) || eng == string(engine.TierAuto) {
		cost /= analyticCostDivisor
	}
	return cost
}

// admit runs the admission gate for one compute request: claim a
// global in-flight slot, then charge the client's token bucket. It
// writes the 429 itself on rejection. The returned release function
// (nil on rejection) must be called when the request finishes; the
// returned span timing lands on the request's trace as an
// admission.wait span so admission overhead is visible per request.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string) (release func(), ok bool) {
	start := time.Now()
	record := func(decision string) {
		if sp := telemetry.FromContext(r.Context()); sp != nil {
			sp.Record("admission.wait", start, time.Now(),
				"client", clientKey(r), "decision", decision)
		}
	}
	if !s.adm.AcquireInFlight() {
		record(admission.ReasonInFlight)
		s.writeShed(w, "too many requests in flight; retry later", 0)
		return nil, false
	}
	cost := s.estimateCost(r, endpoint)
	if dec := s.adm.Admit(clientKey(r), cost); !dec.OK {
		s.adm.ReleaseInFlight()
		record(dec.Reason)
		s.writeShed(w, fmt.Sprintf("rate limit exceeded (request cost %.3g tokens)", cost), dec.RetryAfter)
		return nil, false
	}
	record("admitted")
	return s.adm.ReleaseInFlight, true
}

// instrument wraps a handler with request counting, latency recording,
// and an access log line, labelled by route pattern (never by raw
// path, to keep metric cardinality bounded). When traced is set and
// the server has a Tracer, the request runs under a root http.request
// span — honoring an inbound X-Request-Id as the trace id and echoing
// the id back as X-Trace-Id — so everything the handler touches
// (flights, scheduler jobs, store computes, analysis stages) lands in
// one span tree. With no Tracer the traced path adds nothing: no
// header, no allocations, byte-identical responses.
//
// Traced endpoints are exactly the compute endpoints, so the same flag
// also arms overload protection: the admission gate (in-flight slot +
// per-client token charge) and the server-side request deadline. The
// observability surface stays ungated — a saturated daemon must still
// answer /v1/status and /metrics.
func (s *Server) instrument(endpoint string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		var span *telemetry.Span
		if traced {
			if s.cfg.RequestTimeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
			var ctx context.Context
			ctx, span = s.cfg.Tracer.StartTrace(r.Context(), "http.request",
				r.Header.Get("X-Request-Id"),
				"method", r.Method, "endpoint", endpoint)
			if span != nil {
				w.Header().Set("X-Trace-Id", span.TraceID())
				r = r.WithContext(ctx)
			}
		}
		if !traced {
			h(sw, r)
		} else if release, ok := s.admit(sw, r, endpoint); ok {
			func() {
				defer release()
				h(sw, r)
			}()
		}
		if span != nil {
			span.SetAttr("status", strconv.Itoa(sw.code))
			span.End()
		}
		dur := time.Since(start)
		s.met.requests.With(endpoint, strconv.Itoa(sw.code)).Inc()
		s.met.latency.With(endpoint).Observe(dur.Seconds())
		if s.cfg.Log.Enabled(telemetry.LevelInfo) {
			kv := []any{
				"method", r.Method, "path", r.URL.Path, "endpoint", endpoint,
				"status", sw.code, "bytes", sw.bytes, "dur", dur,
			}
			if span != nil {
				kv = append(kv, "trace", span.TraceID())
			}
			s.cfg.Log.Info("request", kv...)
		}
	}
}
