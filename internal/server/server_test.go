package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/machine"
)

// newTestServer returns a Server whose compute path is replaced by a
// fast fake that records invocations, plus the invocation counter.
// The fake still flows through the real cache / coalescing / worker
// pool machinery — only the Lab computation itself is stubbed, so
// these tests stay fast enough for -race (a real fleet
// characterization takes minutes under the race detector; see
// integration_test.go for the real-Lab path).
func newTestServer(cfg Config) (*Server, *atomic.Int64) {
	s := New(cfg)
	var computations atomic.Int64
	s.compute = func(_ context.Context, id string, opts machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		computations.Add(1)
		c := opts.Canonical()
		return map[string]any{"id": id, "instructions": c.Instructions}, nil
	}
	return s, &computations
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, body
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func TestCatalog(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var got struct {
		Count       int `json:"count"`
		Experiments []struct {
			ID, Title, Kind string
		} `json:"experiments"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want := experiments.IDs()
	if got.Count != len(want) || len(got.Experiments) != len(want) {
		t.Fatalf("count = %d, want %d", got.Count, len(want))
	}
	for i, e := range got.Experiments {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Kind == "" {
			t.Errorf("experiment %q missing title/kind", e.ID)
		}
	}
}

func TestCacheHitVsMiss(t *testing.T) {
	s, computations := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var first, second struct {
		Cached bool            `json:"cached"`
		Result json.RawMessage `json:"result"`
	}
	code, body := get(t, ts, "/v1/experiments/table5?instructions=5000")
	if code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported cached=true")
	}

	// Same fidelity spelled with the default warmup made explicit:
	// must be the same cache key.
	code, body = get(t, ts, "/v1/experiments/table5?instructions=5000&warmup=1000")
	if code != http.StatusOK {
		t.Fatalf("second request: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second request reported cached=false, want a cache hit")
	}
	if string(first.Result) != string(second.Result) {
		t.Error("cached result differs from computed result")
	}
	if n := computations.Load(); n != 1 {
		t.Errorf("computations = %d, want 1", n)
	}

	// A different fidelity is a different key.
	if code, _ := get(t, ts, "/v1/experiments/table5?instructions=6000"); code != http.StatusOK {
		t.Fatalf("third request: status %d", code)
	}
	if n := computations.Load(); n != 2 {
		t.Errorf("computations = %d, want 2", n)
	}

	if v := metricValue(t, ts, "spec17d_cache_hits_total"); v != 1 {
		t.Errorf("spec17d_cache_hits_total = %v, want 1", v)
	}
	if v := metricValue(t, ts, "spec17d_cache_misses_total"); v != 2 {
		t.Errorf("spec17d_cache_misses_total = %v, want 2", v)
	}
}

// TestCoalescing proves the acceptance criterion at the orchestration
// layer: 16 concurrent requests for the same uncached experiment
// perform exactly one computation; the other 15 coalesce onto it.
// The computation is held open until all 15 waiters have joined the
// flight, so the test cannot pass by lucky sequential timing.
func TestCoalescing(t *testing.T) {
	const concurrent = 16
	s, computations := newTestServer(Config{})
	release := make(chan struct{})
	inner := s.compute
	s.compute = func(ctx context.Context, id string, opts machine.RunOptions, tier engine.Tier, _ bool) (any, error) {
		<-release
		return inner(ctx, id, opts, tier, false)
	}
	key := cacheKey("fig2", machine.RunOptions{Instructions: 5000}, engine.TierExact)
	s.computeStarted = func(k string) {
		if k != key {
			t.Errorf("computation for unexpected key %q", k)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code      int
		cached    bool
		coalesced bool
		body      string
	}
	results := make(chan result, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := get(t, ts, "/v1/experiments/fig2?instructions=5000")
			var r struct {
				Cached    bool            `json:"cached"`
				Coalesced bool            `json:"coalesced"`
				Result    json.RawMessage `json:"result"`
			}
			_ = json.Unmarshal(body, &r)
			results <- result{code, r.Cached, r.Coalesced, string(body)}
		}()
	}
	// Release the (single) computation only once every other request
	// has joined its flight.
	deadline := time.Now().Add(10 * time.Second)
	for s.flight.waiting(key) < concurrent-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters joined the flight", s.flight.waiting(key))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	var leaders, waiters int
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("status %d: %s", r.code, r.body)
		}
		if r.cached {
			t.Error("request during the flight reported cached=true")
		}
		if r.coalesced {
			waiters++
		} else {
			leaders++
		}
	}
	if leaders != 1 || waiters != concurrent-1 {
		t.Errorf("leaders = %d, waiters = %d; want 1 and %d", leaders, waiters, concurrent-1)
	}
	if n := computations.Load(); n != 1 {
		t.Errorf("computations = %d, want exactly 1", n)
	}

	// A repeat request is now a recorded cache hit, visible in /metrics.
	code, body := get(t, ts, "/v1/experiments/fig2?instructions=5000")
	if code != http.StatusOK {
		t.Fatalf("repeat request: status %d", code)
	}
	var repeat struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &repeat); err != nil {
		t.Fatal(err)
	}
	if !repeat.Cached {
		t.Error("repeat request not served from cache")
	}
	if v := metricValue(t, ts, "spec17d_computations_total"); v != 1 {
		t.Errorf("spec17d_computations_total = %v, want 1", v)
	}
	if v := metricValue(t, ts, "spec17d_coalesced_waiters_total"); v != concurrent-1 {
		t.Errorf("spec17d_coalesced_waiters_total = %v, want %d", v, concurrent-1)
	}
	if v := metricValue(t, ts, "spec17d_cache_hits_total"); v != 1 {
		t.Errorf("spec17d_cache_hits_total = %v, want 1", v)
	}
}

func TestBadParameters(t *testing.T) {
	s, computations := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{
		"/v1/experiments/table1?instructions=abc",
		"/v1/experiments/table1?instructions=-5",
		"/v1/experiments/table1?instructions=0",
		"/v1/experiments/table1?instructions=999999999999",
		"/v1/experiments/table1?warmup=xyz",
		"/v1/experiments/table1?warmup=-1",
		"/v1/experiments/table1?instructions=5000&warmup=5000", // warmup >= instructions
		"/v1/experiments/table1?warmup=400000",                 // >= default instructions
		"/v1/experiments/table1?fidelity=high",
		"/v1/report?instructions=abc",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, code)
		}
		var e errorEnvelope
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
			t.Errorf("GET %s: body %q is not an error envelope", path, body)
		}
		if e.Error.Code != codeBadOptions {
			t.Errorf("GET %s: error code %q, want %q", path, e.Error.Code, codeBadOptions)
		}
	}
	if n := computations.Load(); n != 0 {
		t.Errorf("bad requests triggered %d computations", n)
	}
}

func TestUnknownExperiment404(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/experiments/zzz")
	if code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", code)
	}
	var e errorEnvelope
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != codeUnknownExperiment {
		t.Errorf("error code %q, want %q", e.Error.Code, codeUnknownExperiment)
	}
	if !strings.Contains(e.Error.Message, `"zzz"`) {
		t.Errorf("error %q does not name the unknown id", e.Error.Message)
	}
	want := experiments.SortedIDs()
	if len(e.Error.Known) != len(want) {
		t.Fatalf("known has %d ids, want %d", len(e.Error.Known), len(want))
	}
	for i := range want {
		if e.Error.Known[i] != want[i] {
			t.Errorf("known[%d] = %q, want %q", i, e.Error.Known[i], want[i])
		}
	}
}

// TestClientDisconnectCancelsComputation verifies the context plumbing
// end to end inside the handler stack: when the only client waiting on
// a computation disconnects, the compute function's context is
// canceled, so the simulation stops burning a worker.
func TestClientDisconnectCancelsComputation(t *testing.T) {
	s, _ := newTestServer(Config{})
	started := make(chan struct{})
	canceled := make(chan struct{})
	s.compute = func(ctx context.Context, id string, opts machine.RunOptions, tier engine.Tier, _ bool) (any, error) {
		close(started)
		select {
		case <-ctx.Done():
			close(canceled)
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, fmt.Errorf("computation context never canceled")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/experiments/table1?instructions=5000", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	<-started
	cancel() // the lone client goes away

	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("compute context not canceled after client disconnect")
	}
	if err := <-errc; err == nil {
		t.Error("canceled request unexpectedly succeeded")
	}

	// The aborted flight must not poison the key: the next request
	// computes fresh and succeeds.
	s.compute = func(_ context.Context, id string, opts machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		return map[string]any{"id": id}, nil
	}
	if code, body := get(t, ts, "/v1/experiments/table1?instructions=5000"); code != http.StatusOK {
		t.Errorf("request after canceled flight: status %d: %s", code, body)
	}
}

// TestDraining503 verifies that once Shutdown has begun, computation
// endpoints refuse new work with the draining envelope (keep-alive
// connections can still deliver requests mid-drain).
func TestDraining503(t *testing.T) {
	s, computations := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.draining.Store(true) // what Shutdown sets before draining

	for _, path := range []string{
		"/v1/experiments/table1?instructions=5000",
		"/v1/report",
	} {
		code, body := get(t, ts, path)
		if code != http.StatusServiceUnavailable {
			t.Errorf("GET %s: status %d, want 503", path, code)
		}
		var e errorEnvelope
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != codeDraining {
			t.Errorf("GET %s: body %q, want a %q envelope", path, body, codeDraining)
		}
	}
	if n := computations.Load(); n != 0 {
		t.Errorf("draining server still ran %d computations", n)
	}
	// Liveness endpoints keep answering so orchestrators can watch the
	// drain.
	if code, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz during drain: status %d", code)
	}
	if code, _ := get(t, ts, "/metrics"); code != http.StatusOK {
		t.Errorf("metrics during drain: status %d", code)
	}
}

func TestReportEndpoint(t *testing.T) {
	s, computations := newTestServer(Config{})
	var gotID string
	inner := s.compute
	s.compute = func(ctx context.Context, id string, opts machine.RunOptions, tier engine.Tier, _ bool) (any, error) {
		gotID = id
		return inner(ctx, id, opts, tier, false)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/report?instructions=5000")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if gotID != reportID {
		t.Errorf("report computed id %q, want %q", gotID, reportID)
	}
	var r struct {
		Cached bool            `json:"cached"`
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if r.Cached || len(r.Report) == 0 {
		t.Errorf("unexpected report body: %s", body)
	}

	if code, body := get(t, ts, "/v1/report?instructions=5000"); code != http.StatusOK {
		t.Fatalf("repeat status %d: %s", code, body)
	} else if err := json.Unmarshal(body, &r); err != nil || !r.Cached {
		t.Errorf("repeat report not cached: %s", body)
	}
	if n := computations.Load(); n != 1 {
		t.Errorf("computations = %d, want 1", n)
	}
}

func TestLRUEviction(t *testing.T) {
	s, computations := newTestServer(Config{ResultCacheSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	paths := []string{
		"/v1/experiments/table1?instructions=5000",
		"/v1/experiments/table2?instructions=5000", // evicts table1
		"/v1/experiments/table1?instructions=5000", // recomputed
	}
	for _, p := range paths {
		if code, body := get(t, ts, p); code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", p, code, body)
		}
	}
	if n := computations.Load(); n != 3 {
		t.Errorf("computations = %d, want 3 (eviction forces recompute)", n)
	}
	if v := metricValue(t, ts, "spec17d_cache_entries"); v != 1 {
		t.Errorf("spec17d_cache_entries = %v, want 1", v)
	}
}

// TestWorkerPoolBound checks that at most Config.Workers computations
// run concurrently even for distinct keys.
func TestWorkerPoolBound(t *testing.T) {
	s, _ := newTestServer(Config{Workers: 1})
	var inflight, maxInflight atomic.Int64
	s.compute = func(_ context.Context, id string, opts machine.RunOptions, _ engine.Tier, _ bool) (any, error) {
		n := inflight.Add(1)
		for {
			m := maxInflight.Load()
			if n <= m || maxInflight.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
		inflight.Add(-1)
		return id, nil
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := []string{"table1", "table2", "fig1", "fig2"}
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code, body := get(t, ts, "/v1/experiments/"+id+"?instructions=5000"); code != http.StatusOK {
				t.Errorf("GET %s: status %d: %s", id, code, body)
			}
		}()
	}
	wg.Wait()
	if m := maxInflight.Load(); m != 1 {
		t.Errorf("max concurrent computations = %d, want 1 (Workers: 1)", m)
	}
}

// TestGracefulShutdown starts a request whose computation is held
// open, shuts the server down mid-flight, and checks that the request
// still completes with its result (Shutdown drains in-flight work).
func TestGracefulShutdown(t *testing.T) {
	s, _ := newTestServer(Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	inner := s.compute
	s.compute = func(ctx context.Context, id string, opts machine.RunOptions, tier engine.Tier, _ bool) (any, error) {
		close(started)
		<-release
		return inner(ctx, id, opts, tier, false)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	url := "http://" + l.Addr().String() + "/v1/experiments/table1?instructions=5000"
	reqDone := make(chan error, 1)
	var status int
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		_, err = io.ReadAll(resp.Body)
		reqDone <- err
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// The in-flight request must not be killed by Shutdown; release
	// its computation and watch it complete.
	time.Sleep(50 * time.Millisecond) // let Shutdown begin draining
	close(release)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", status)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after clean shutdown", err)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get(url); err == nil {
		t.Error("request after shutdown succeeded")
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz = %d %q", code, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status %d, want 405", resp.StatusCode)
	}
}

func TestRequestMetricsRecorded(t *testing.T) {
	s, _ := newTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	get(t, ts, "/v1/experiments")
	get(t, ts, "/v1/experiments/zzz")
	_, body := get(t, ts, "/metrics")
	for _, want := range []string{
		`spec17d_requests_total{endpoint="/v1/experiments",code="200"} 1`,
		`spec17d_requests_total{endpoint="/v1/experiments/{id}",code="404"} 1`,
		`spec17d_request_duration_seconds_count{endpoint="/v1/experiments"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
