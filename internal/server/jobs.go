package server

// The HTTP face of the async-job subsystem, plus the glue binding
// internal/jobs to the server's compute path: job items execute
// through the same fetch/cache/singleflight/scheduler machinery as
// interactive requests (so results are bit-identical and park in the
// store under normal keys), but on the capped background queue and
// under blocking per-client admission.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/machine"
	"repro/internal/server/api"
	"repro/internal/telemetry"
)

// maxJobBodyBytes bounds the POST /v1/jobs body.
const maxJobBodyBytes = 1 << 20

// sseKeepalive is the comment-ping interval on /v1/jobs/{id}/events,
// keeping idle streams alive through proxies between real events.
const sseKeepalive = 15 * time.Second

// exactSecondsPerCostToken converts admission cost tokens (one token =
// one default-fidelity measurement, admission.DefaultCostInstructions)
// into wall seconds for job ETAs: the exact_leaf entry of the
// committed BENCH_<n>.json snapshot, rounded up. Only an ETA prior —
// observed item times take over after the first completion.
const exactSecondsPerCostToken = 0.1

// estimateItemSeconds predicts one sweep item's execution time from
// the admission cost model: cost tokens for the item's fidelity,
// discounted like the admission charge when the analytic tier will
// serve it, scaled to seconds. It deliberately mirrors runJobItem's
// charging logic so the ETA and the budget drain at the same rate.
func (s *Server) estimateItemSeconds(spec jobs.Spec) float64 {
	cost := admission.Cost(spec.Instructions, 1)
	reqTier := s.cfg.DefaultEngine
	if spec.Engine != "" {
		if t, err := engine.ParseTier(spec.Engine); err == nil {
			reqTier = t
		}
	}
	if reqTier != engine.TierExact {
		cost /= analyticCostDivisor
	}
	return cost * exactSecondsPerCostToken
}

// newJobManager builds the jobs manager wired to this server: items
// run through runJobItem (test-overridable via s.jobsRunner), each
// job gets a root job.run trace spanning the whole sweep, and job
// state checkpoints next to the measurement store's snapshot.
func (s *Server) newJobManager() {
	// A lost webhook is invisible to the submitter until they poll; the
	// insight plane turns it into a typed operator event.
	var onExhausted func(string, string, int, error)
	if ins := s.cfg.Insight; ins != nil {
		onExhausted = ins.OnWebhookExhausted
	}
	m, err := jobs.New(jobs.Config{
		Path:       s.cfg.JobsPath,
		MaxJobs:    s.cfg.MaxJobs,
		MaxRunning: s.cfg.JobWorkers,
		Runner: func(ctx context.Context, j jobs.Job, item string) error {
			return s.jobsRunner(ctx, j, item)
		},
		OnJobStart: func(ctx context.Context, j jobs.Job) (context.Context, func(jobs.State)) {
			// The job-root span: every item's trace links back to it via
			// parent_trace, so one slow sweep reads as one tree.
			ctx, sp := s.cfg.Tracer.StartTrace(ctx, "job.run", "job-"+j.ID,
				"job", j.ID, "items", strconv.Itoa(len(j.Items)))
			return ctx, func(final jobs.State) {
				if sp != nil {
					sp.SetAttr("final", string(final))
					sp.End()
				}
			}
		},
		EstimateItemSeconds: s.estimateItemSeconds,
		Webhook: jobs.WebhookConfig{
			Timeout:  s.cfg.WebhookTimeout,
			Disabled: s.cfg.WebhookTimeout < 0,
		},
		OnWebhookExhausted: onExhausted,
		Metrics:            s.cfg.Metrics,
		Log:                s.cfg.Log,
	})
	if err != nil {
		s.cfg.Log.Warn("jobs snapshot discarded", "err", err)
	}
	s.jobs = m
}

// runJobItem measures one sweep item through the ordinary fetch path.
// Background admission blocks (AdmitWait) instead of shedding: a job
// item has no client on the wire to retry, so it waits for the
// submitter's bucket to refill — which is exactly what throttles a
// registry-scale sweep below interactive traffic.
func (s *Server) runJobItem(ctx context.Context, j jobs.Job, item string) error {
	opts := machine.RunOptions{Instructions: j.Spec.Instructions, WarmupInstructions: j.Spec.Warmup}
	reqTier := s.cfg.DefaultEngine
	if j.Spec.Engine != "" {
		t, err := engine.ParseTier(j.Spec.Engine)
		if err != nil {
			return err // unreachable: validated at submit
		}
		reqTier = t
	}
	tier, upgrade := s.resolveTier(item, opts, reqTier)
	if upgrade {
		s.queueUpgrade(item, opts)
	}
	cost := admission.Cost(opts.Instructions, 1)
	if tier == engine.TierAnalytic || reqTier == engine.TierAuto {
		cost /= analyticCostDivisor
	}
	// A separate "jobs:" bucket namespace: the sweep spends a budget of
	// its own at the same refill rate, rather than draining the tokens
	// the submitter's interactive requests are counting on.
	if err := s.adm.AdmitWait(ctx, "jobs:"+j.Spec.Client, cost); err != nil {
		return err
	}
	s.met.engineServed.With(string(tier)).Inc()
	ictx, isp := s.cfg.Tracer.StartTrace(ctx, "job.item", "",
		"experiment", item, "job", j.ID, "engine", string(tier),
		"parent_trace", telemetry.FromContext(ctx).TraceID())
	_, _, _, err := s.fetch(ictx, item, opts, tier, true)
	isp.End()
	return err
}

// jobSubmitRequest is the POST /v1/jobs body: a batch request plus
// push-delivery options.
type jobSubmitRequest struct {
	// Experiments lists the sweep's experiment ids; "all" expands to
	// the full registry, duplicates collapse.
	Experiments []string `json:"experiments"`
	// Instructions and Warmup select the fidelity, as on /v1/batch.
	Instructions int `json:"instructions,omitempty"`
	Warmup       int `json:"warmup,omitempty"`
	// Engine selects the measurement tier for every item.
	Engine string `json:"engine,omitempty"`
	// Concurrency caps concurrently executing items (clamped to the
	// server's batch concurrency).
	Concurrency int `json:"concurrency,omitempty"`
	// Webhook, when set, receives the job's terminal state by POST.
	Webhook string `json:"webhook,omitempty"`
}

// handleJobSubmit is POST /v1/jobs: validate the sweep up front
// (everything a batch request validates, plus the webhook URL),
// submit, answer 202 with the job record and a Location header.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req jobSubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("job body exceeds the %d-byte limit", tooLarge.Limit), nil)
			return
		}
		writeError(w, http.StatusBadRequest, codeBadOptions,
			fmt.Sprintf("decoding job body: %v", err), nil)
		return
	}
	ids, err := resolveBatchIDs(req.Experiments)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeUnknownExperiment, err.Error(), experiments.SortedIDs())
		return
	}
	opts := machine.RunOptions{Instructions: req.Instructions, WarmupInstructions: req.Warmup}
	if err := validateBatchOptions(opts); err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	if req.Engine != "" {
		if _, err := engine.ParseTier(req.Engine); err != nil {
			writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
			return
		}
	}
	if req.Webhook != "" {
		u, err := url.Parse(req.Webhook)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("webhook=%q: must be an absolute http(s) URL", req.Webhook), nil)
			return
		}
	}
	if req.Concurrency < 0 {
		writeError(w, http.StatusBadRequest, codeBadOptions,
			fmt.Sprintf("concurrency=%d: must be non-negative", req.Concurrency), nil)
		return
	}
	conc := req.Concurrency
	if conc == 0 || conc > s.cfg.BatchConcurrency {
		conc = s.cfg.BatchConcurrency
	}

	j, err := s.jobs.Submit(jobs.Spec{
		Experiments:  ids,
		Instructions: req.Instructions,
		Warmup:       req.Warmup,
		Engine:       req.Engine,
		Concurrency:  conc,
		Webhook:      req.Webhook,
		Client:       clientKey(r),
	})
	switch {
	case errors.Is(err, jobs.ErrTooManyJobs):
		s.writeShed(w, err.Error(), 0)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, codeDraining, err.Error(), nil)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	if sp := telemetry.FromContext(r.Context()); sp != nil {
		sp.SetAttr("job", j.ID)
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j)
}

// handleJobList is GET /v1/jobs: every retained job, newest first,
// windowed by ?limit=/?offset= with X-Total-Count.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "limit", "offset":
		default:
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("unknown query parameter %q (valid: limit, offset)", k), nil)
			return
		}
	}
	if err := api.NoEmptyParams(q); err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	page, err := api.ParsePage(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	all := s.jobs.List()
	lo, hi := page.Window(len(all))
	w.Header().Set("X-Total-Count", strconv.Itoa(len(all)))
	writeJSON(w, http.StatusOK, struct {
		Total  int        `json:"total"`
		Count  int        `json:"count"`
		Offset int        `json:"offset"`
		Jobs   []jobs.Job `json:"jobs"`
	}{len(all), hi - lo, lo, all[lo:hi]})
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownJob,
			fmt.Sprintf("unknown job %q", r.PathValue("id")), nil)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleJobCancel is DELETE /v1/jobs/{id}: idempotent cancellation.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, codeUnknownJob,
			fmt.Sprintf("unknown job %q", r.PathValue("id")), nil)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// handleJobResults is GET /v1/jobs/{id}/results: the sweep's results
// as NDJSON in submission order, one line per item in the same shape
// /v1/batch streams. Results are re-fetched through the ordinary
// cache/store path, so the bytes equal what a batch request for the
// same inputs returns. A job still running answers 409 — stream the
// events endpoint instead, then come back.
func (s *Server) handleJobResults(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownJob,
			fmt.Sprintf("unknown job %q", r.PathValue("id")), nil)
		return
	}
	if !j.State.Terminal() {
		writeError(w, http.StatusConflict, codeJobNotDone,
			fmt.Sprintf("job %s is %s; results are served once it reaches a terminal state", j.ID, j.State), nil)
		return
	}
	opts := machine.RunOptions{Instructions: j.Spec.Instructions, WarmupInstructions: j.Spec.Warmup}
	reqTier := s.cfg.DefaultEngine
	if j.Spec.Engine != "" {
		if t, err := engine.ParseTier(j.Spec.Engine); err == nil {
			reqTier = t
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	lw := newLineWriter(w)
	for _, it := range j.Items {
		start := time.Now()
		switch it.Status {
		case jobs.ItemDone:
			tier, _ := s.resolveTier(it.ID, opts, reqTier)
			val, cached, _, err := s.fetch(r.Context(), it.ID, opts, tier, true)
			if err != nil {
				lw.emit(batchLine{ID: it.ID, Status: "error",
					ElapsedMS: time.Since(start).Milliseconds(),
					Error:     &errorDetail{Code: codeInternal, Message: err.Error()}})
				continue
			}
			lw.emit(batchLine{ID: it.ID, Status: "ok", Engine: string(tier),
				Cached: cached, ElapsedMS: time.Since(start).Milliseconds(), Result: val})
		case jobs.ItemError:
			lw.emit(batchLine{ID: it.ID, Status: "error",
				Error: &errorDetail{Code: codeInternal, Message: it.Error}})
		default:
			// Cancelled before this item ran.
			lw.emit(batchLine{ID: it.ID, Status: "error",
				Error: &errorDetail{Code: codeCanceled, Message: "item not run (job " + string(j.State) + ")"}})
		}
	}
}

// handleJobEvents is GET /v1/jobs/{id}/events: the job's progress as
// Server-Sent Events. The stream opens with a synthetic "state" event
// describing the job as of subscription (late subscribers miss
// nothing they still need), then carries one event per item
// completion and state transition, and ends itself once the job is
// terminal. Deliberately untraced: a stream that lives for the whole
// sweep must not pin an admission in-flight slot.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	snap, ch, cancel, ok := s.jobs.Subscribe(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeUnknownJob,
			fmt.Sprintf("unknown job %q", r.PathValue("id")), nil)
		return
	}
	defer cancel()
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	send := func(ev jobs.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !send(snap) || snap.Terminal() {
		return
	}
	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return // job went terminal (event already sent) or we were dropped
			}
			if !send(ev) || ev.Terminal() {
				return
			}
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
