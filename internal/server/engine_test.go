package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/machine"
)

// newEngineTestServer stubs the compute path with a fake whose result
// carries the tier it was computed at, so the tests can tell an
// analytic answer from an exact one and check the upgrade path's
// bit-identity claim.
func newEngineTestServer(cfg Config) (*Server, *atomic.Int64) {
	s := New(cfg)
	var computations atomic.Int64
	s.compute = func(_ context.Context, id string, opts machine.RunOptions, tier engine.Tier, _ bool) (any, error) {
		computations.Add(1)
		c := opts.Canonical()
		return map[string]any{"id": id, "instructions": c.Instructions, "tier": string(tier)}, nil
	}
	return s, &computations
}

type engineResp struct {
	Engine         string         `json:"engine"`
	UpgradePending bool           `json:"upgrade_pending"`
	Cached         bool           `json:"cached"`
	Result         map[string]any `json:"result"`
}

func getEngine(t *testing.T, ts *httptest.Server, path string) engineResp {
	t.Helper()
	code, body := get(t, ts, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, code, body)
	}
	var er engineResp
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return er
}

// TestEngineParamRejected: an unknown engine value must be a 400
// naming the allowed set, with no compute started — never a silent
// fall back to the default engine (a client asking for "anaytic"
// must find out, not quietly pay for an exact run).
func TestEngineParamRejected(t *testing.T) {
	s, computations := newEngineTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	for _, tc := range []struct {
		path string
		want string // substring the 400 body must carry
	}{
		{"/v1/experiments/table1?engine=anaytic", "valid: exact, analytic, auto"},
		{"/v1/experiments/table1?engine=Exact", "valid: exact, analytic, auto"},
		{"/v1/experiments/table1?engine=", "present but empty"},
		{"/v1/report?engine=fast", "valid: exact, analytic, auto"},
		{"/v1/batch?experiments=table1&engine=approximate", "valid: exact, analytic, auto"},
		{"/v1/batch?experiments=table1&engine=", "present but empty"},
	} {
		code, body := get(t, ts, tc.path)
		if code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400 (body %s)", tc.path, code, body)
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("GET %s: body %q does not contain %q", tc.path, body, tc.want)
		}
	}
	if n := computations.Load(); n != 0 {
		t.Errorf("invalid engine values started %d computations, want 0", n)
	}
}

// TestEngineTiersCachedSeparately: analytic and exact results for the
// same (experiment, fidelity) live under distinct cache keys — neither
// ever serves the other's bytes.
func TestEngineTiersCachedSeparately(t *testing.T) {
	s, computations := newEngineTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	a := getEngine(t, ts, "/v1/experiments/table1?engine=analytic")
	x := getEngine(t, ts, "/v1/experiments/table1?engine=exact")
	if a.Engine != "analytic" || a.Result["tier"] != "analytic" {
		t.Errorf("analytic request served %q (result tier %v)", a.Engine, a.Result["tier"])
	}
	if x.Engine != "exact" || x.Result["tier"] != "exact" {
		t.Errorf("exact request served %q (result tier %v)", x.Engine, x.Result["tier"])
	}
	if n := computations.Load(); n != 2 {
		t.Errorf("two tiers computed %d times, want 2", n)
	}
	// Repeats hit their own tier's cache.
	a2 := getEngine(t, ts, "/v1/experiments/table1?engine=analytic")
	x2 := getEngine(t, ts, "/v1/experiments/table1?engine=exact")
	if !a2.Cached || a2.Result["tier"] != "analytic" {
		t.Errorf("repeat analytic: cached=%v tier=%v", a2.Cached, a2.Result["tier"])
	}
	if !x2.Cached || x2.Result["tier"] != "exact" {
		t.Errorf("repeat exact: cached=%v tier=%v", x2.Cached, x2.Result["tier"])
	}
	if n := computations.Load(); n != 2 {
		t.Errorf("cached repeats recomputed: %d computations, want 2", n)
	}
}

// TestEngineAutoUpgrades: the first auto request is served analytic
// with an upgrade pending; once the background worker lands the exact
// result, auto serves exact — and byte-for-byte what a direct
// engine=exact request returns, because the upgrade runs the same
// fetch path under the same cache key.
func TestEngineAutoUpgrades(t *testing.T) {
	s, computations := newEngineTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	first := getEngine(t, ts, "/v1/experiments/table1?engine=auto")
	if first.Engine != "analytic" || first.Result["tier"] != "analytic" {
		t.Fatalf("first auto request served %q (result tier %v), want analytic", first.Engine, first.Result["tier"])
	}
	if !first.UpgradePending {
		t.Fatalf("first auto request did not queue an upgrade")
	}

	var upgraded engineResp
	deadline := time.Now().Add(10 * time.Second)
	for {
		upgraded = getEngine(t, ts, "/v1/experiments/table1?engine=auto")
		if upgraded.Engine == "exact" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto never upgraded to exact; last response %+v", upgraded)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !upgraded.Cached {
		t.Errorf("upgraded auto response not served from cache")
	}

	// The direct exact request must be the identical cached value —
	// and must not recompute (the upgrade already paid for it).
	before := computations.Load()
	direct := getEngine(t, ts, "/v1/experiments/table1?engine=exact")
	if computations.Load() != before {
		t.Errorf("direct exact request recomputed after upgrade")
	}
	if !direct.Cached {
		t.Errorf("direct exact request missed the cache after upgrade")
	}
	if fmt.Sprint(direct.Result) != fmt.Sprint(upgraded.Result) {
		t.Errorf("auto-upgraded result differs from direct exact:\n auto  %v\n exact %v", upgraded.Result, direct.Result)
	}

	// Status reflects the pipeline.
	code, body := get(t, ts, "/v1/status")
	if code != http.StatusOK {
		t.Fatalf("/v1/status: %d", code)
	}
	var st struct {
		Engine struct {
			Default        string `json:"default"`
			UpgradeWorkers int    `json:"upgrade_workers"`
			Queued         int64  `json:"upgrades_queued"`
			Done           int64  `json:"upgrades_done"`
			ServedExact    int64  `json:"served_exact"`
			ServedAnalytic int64  `json:"served_analytic"`
		} `json:"engine"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Default != "exact" || st.Engine.UpgradeWorkers != 2 {
		t.Errorf("status engine defaults = %+v", st.Engine)
	}
	if st.Engine.Queued < 1 || st.Engine.Done < 1 {
		t.Errorf("status upgrade counters = %+v, want ≥1 queued and done", st.Engine)
	}
	if st.Engine.ServedAnalytic < 1 || st.Engine.ServedExact < 1 {
		t.Errorf("status served counters = %+v", st.Engine)
	}
	if v := metricValue(t, ts, `spec17d_engine_upgrades_total{status="done"}`); v < 1 {
		t.Errorf("spec17d_engine_upgrades_total{status=done} = %v, want ≥1", v)
	}
	if v := metricValue(t, ts, `spec17d_engine_requests_total{engine="analytic"}`); v < 1 {
		t.Errorf("spec17d_engine_requests_total{engine=analytic} = %v, want ≥1", v)
	}
}

// TestEngineAutoWithoutWorkers: with upgrades disabled the auto tier
// degrades gracefully — always analytic, never pending.
func TestEngineAutoWithoutWorkers(t *testing.T) {
	s, _ := newEngineTestServer(Config{UpgradeWorkers: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	for i := 0; i < 3; i++ {
		er := getEngine(t, ts, "/v1/experiments/table1?engine=auto")
		if er.Engine != "analytic" || er.UpgradePending {
			t.Fatalf("request %d: engine=%q pending=%v, want analytic and no upgrade", i, er.Engine, er.UpgradePending)
		}
	}
}

// TestEngineDefaultFromConfig: the -engine flag's Config.DefaultEngine
// applies when the request names no tier, and an explicit engine=
// always overrides it.
func TestEngineDefaultFromConfig(t *testing.T) {
	s, _ := newEngineTestServer(Config{DefaultEngine: engine.TierAnalytic})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	if er := getEngine(t, ts, "/v1/experiments/table1"); er.Engine != "analytic" {
		t.Errorf("default request served %q, want analytic (the configured default)", er.Engine)
	}
	if er := getEngine(t, ts, "/v1/experiments/table1?engine=exact"); er.Engine != "exact" {
		t.Errorf("explicit engine=exact served %q", er.Engine)
	}
}

// TestBatchEngineLines: batch items report the tier that produced
// them, and an auto batch's first pass is analytic with upgrades
// queued behind it.
func TestBatchEngineLines(t *testing.T) {
	s, _ := newEngineTestServer(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	code, body := get(t, ts, "/v1/batch?experiments=table1,table2&engine=analytic")
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("batch returned %d lines, want 2: %s", len(lines), body)
	}
	for _, line := range lines {
		var bl struct {
			ID     string `json:"id"`
			Status string `json:"status"`
			Engine string `json:"engine"`
		}
		if err := json.Unmarshal([]byte(line), &bl); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if bl.Status != "ok" || bl.Engine != "analytic" {
			t.Errorf("line %+v: want status ok, engine analytic", bl)
		}
	}
}
