//go:build !race

package server

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/jobs"
	"repro/internal/store"
)

// TestJobCrashResumeIntegration is the durability acceptance test on
// the real (analytic-tier) compute path: a sweep is killed mid-run
// the way a crashed daemon dies — no graceful drain, no final
// checkpoint — and a second server booted on the same store and jobs
// snapshot must resume it from the per-item checkpoints, re-measure
// only the unfinished items, and serve results byte-identical to what
// /v1/batch computes for the same inputs.
//
// Excluded from -race builds like the other real-engine integration
// tests; the resume logic itself runs under -race with stubbed
// runners in internal/jobs.
func TestJobCrashResumeIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("real analytic measurements")
	}
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.json")
	jobsPath := filepath.Join(dir, "jobs.json")

	ids := experiments.IDs()
	if len(ids) > 8 {
		ids = ids[:8]
	}
	const beforeKill = 3
	if len(ids) <= beforeKill {
		t.Fatalf("registry too small: %d experiments", len(ids))
	}

	openServer := func() *Server {
		st, err := store.Open(store.Config{Path: storePath})
		if err != nil {
			t.Fatalf("opening store: %v", err)
		}
		return New(Config{
			Store:         st,
			JobsPath:      jobsPath,
			DefaultEngine: engine.TierAnalytic,
			Workers:       2,
		})
	}

	// Phase 1: run the sweep until beforeKill items completed, then
	// die hard while the next item is mid-measurement.
	s1 := openServer()
	var phase1 atomic.Int64
	killNow := make(chan struct{})
	inner1 := s1.jobsRunner
	s1.jobsRunner = func(ctx context.Context, j jobs.Job, item string) error {
		if phase1.Load() >= beforeKill {
			close(killNow)
			<-ctx.Done()
			return ctx.Err()
		}
		if err := inner1(ctx, j, item); err != nil {
			return err
		}
		phase1.Add(1)
		return nil
	}
	ts1 := httptest.NewServer(s1.Handler())

	j := submitJob(t, ts1, map[string]any{
		"experiments":  ids,
		"instructions": 2000,
		"engine":       "analytic",
		"concurrency":  1,
	})

	select {
	case <-killNow:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep never reached the kill point")
	}
	ts1.Close()
	s1.Close() // the crash: no drain, no final jobs checkpoint

	// Phase 2: a fresh daemon on the same snapshots resumes the job.
	s2 := openServer()
	defer s2.Close()
	var phase2 atomic.Int64
	inner2 := s2.jobsRunner
	s2.jobsRunner = func(ctx context.Context, j jobs.Job, item string) error {
		phase2.Add(1)
		return inner2(ctx, j, item)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	done := waitJobDone(t, ts2, j.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("resumed job state = %s, want done (error %q)", done.State, done.Error)
	}
	if !done.Resumed {
		t.Error("resumed job does not carry resumed=true")
	}
	for _, it := range done.Items {
		if it.Status != jobs.ItemDone {
			t.Errorf("item %s status = %s, want done", it.ID, it.Status)
		}
	}
	// Only the unfinished items re-measure; work done before the crash
	// is preserved by the per-item checkpoints.
	if got, want := phase2.Load(), int64(len(ids)-beforeKill); got != want {
		t.Errorf("resume re-ran %d items, want %d (completed items must not re-measure)", got, want)
	}

	// The resumed sweep's results equal a batch of the same inputs.
	code, body := get(t, ts2, "/v1/jobs/"+j.ID+"/results")
	if code != 200 {
		t.Fatalf("results: status %d: %s", code, body)
	}
	jobLines := parseLines(t, body)

	bcode, _, bbody := postJSON(t, ts2, "/v1/batch", map[string]any{
		"experiments":  ids,
		"instructions": 2000,
		"engine":       "analytic",
	})
	if bcode != 200 {
		t.Fatalf("batch: status %d: %s", bcode, bbody)
	}
	batchLines := map[string]resultLine{}
	for _, l := range parseLines(t, bbody) {
		batchLines[l.ID] = l
	}
	if len(jobLines) != len(ids) {
		t.Fatalf("job results have %d lines, want %d", len(jobLines), len(ids))
	}
	for i, l := range jobLines {
		if l.ID != ids[i] {
			t.Errorf("line %d is %q, want %q (submission order)", i, l.ID, ids[i])
		}
		if l.Status != "ok" {
			t.Errorf("item %s status %q: %v", l.ID, l.Status, l.Error)
			continue
		}
		b, ok := batchLines[l.ID]
		if !ok {
			t.Errorf("batch has no line for %s", l.ID)
			continue
		}
		if !bytes.Equal(l.Result, b.Result) {
			t.Errorf("experiment %s: resumed job result differs from batch:\njob:   %s\nbatch: %s",
				l.ID, l.Result, b.Result)
		}
	}
}
