package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightCoalesces(t *testing.T) {
	g := newGroup()
	const callers = 8
	var executions atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, callers)
	joins := make([]bool, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, joined := g.do(context.Background(), "k", func(context.Context) (any, error) {
				executions.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], joins[i] = v, joined
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters joined", g.waiting("k"))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Errorf("executions = %d, want 1", n)
	}
	var joined int
	for i := range results {
		if results[i] != 42 {
			t.Errorf("caller %d got %v", i, results[i])
		}
		if joins[i] {
			joined++
		}
	}
	if joined != callers-1 {
		t.Errorf("joined = %d, want %d", joined, callers-1)
	}
}

func TestFlightSequentialCallsRunSeparately(t *testing.T) {
	g := newGroup()
	var executions atomic.Int64
	for i := 0; i < 3; i++ {
		_, _, joined := g.do(context.Background(), "k", func(context.Context) (any, error) {
			executions.Add(1)
			return nil, nil
		})
		if joined {
			t.Errorf("sequential call %d reported joined", i)
		}
	}
	if n := executions.Load(); n != 3 {
		t.Errorf("executions = %d, want 3 (no flight to coalesce onto)", n)
	}
}

func TestFlightSharesError(t *testing.T) {
	g := newGroup()
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err, _ := g.do(context.Background(), "k", func(context.Context) (any, error) {
				<-release
				return nil, boom
			})
			errs[i] = err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.waiting("k") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never joined")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d error = %v, want boom", i, err)
		}
	}
	// A failed flight is not cached anywhere: the next call executes.
	_, _, joined := g.do(context.Background(), "k", func(context.Context) (any, error) { return nil, nil })
	if joined {
		t.Error("call after failed flight joined a dead flight")
	}
}

// TestFlightCancellation covers the context protocol: a caller whose
// context dies stops waiting, the last departing caller cancels the
// flight's context, and a live caller that joined a doomed flight
// retries on a fresh one instead of inheriting the cancellation.
func TestFlightCancellation(t *testing.T) {
	g := newGroup()

	// Lone caller cancels -> flight context canceled.
	started := make(chan struct{})
	flightCanceled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ctx, "k", func(fctx context.Context) (any, error) {
			close(started)
			<-fctx.Done()
			close(flightCanceled)
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller error = %v, want context.Canceled", err)
	}
	select {
	case <-flightCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context not canceled after last caller left")
	}

	// A live caller arriving after the doomed flight's fate was sealed
	// must still get a real result (retry path).
	v, err, _ := g.do(context.Background(), "k", func(context.Context) (any, error) {
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("fresh call after canceled flight = %v, %v", v, err)
	}
}

// TestFlightResultPublishedBeforeKeyDeleted is the regression test for
// the coalescing gap: the flight goroutine used to delete the key from
// g.calls (under the lock) before publishing c.val/c.err and closing
// done (outside it), so a caller arriving in that window found no
// flight *and* no readable result, and led a duplicate computation.
// The fix publishes and closes under the same critical section as the
// delete, making "key absent under g.mu" imply "result readable under
// g.mu". This test asserts exactly that contract: once the key is
// observed absent, it reads the result with no synchronization beyond
// the group's own lock. Under the pre-fix ordering that read races
// with the flight's unlocked publish — the race detector flags it on
// the first trial, and the done-channel check below catches the
// re-ordering directly whenever the scheduler parks the flight
// goroutine inside its delete-to-close window.
func TestFlightResultPublishedBeforeKeyDeleted(t *testing.T) {
	g := newGroup()
	for trial := 0; trial < 200; trial++ {
		release := make(chan struct{})
		go func() {
			_, _, _ = g.do(context.Background(), "k", func(context.Context) (any, error) {
				<-release
				return "v", nil
			})
		}()

		// Wait for the flight to register, keep its call handle.
		var c *call
		deadline := time.Now().Add(10 * time.Second)
		for c == nil {
			g.mu.Lock()
			c = g.calls["k"]
			g.mu.Unlock()
			if time.Now().After(deadline) {
				t.Fatal("flight never registered")
			}
		}

		close(release)
		for {
			g.mu.Lock()
			_, present := g.calls["k"]
			if present {
				g.mu.Unlock()
				continue
			}
			// Key gone: the published result must be readable right
			// now, under this same lock acquisition — the exact claim
			// a caller arriving in the window depends on.
			val, err := c.val, c.err
			published := false
			select {
			case <-c.done:
				published = true
			default:
			}
			g.mu.Unlock()
			if !published {
				t.Fatalf("trial %d: key deleted before the result was published", trial)
			}
			if val != "v" || err != nil {
				t.Fatalf("trial %d: published result = %v, %v", trial, val, err)
			}
			break
		}
	}
}
