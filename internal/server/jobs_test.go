package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/machine"
)

// postJSON posts v as JSON and returns status, headers, and body.
func postJSON(t *testing.T, ts *httptest.Server, path string, v any) (int, http.Header, []byte) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("POST %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// submitJob posts the request and decodes the 202 job record.
func submitJob(t *testing.T, ts *httptest.Server, req map[string]any) jobs.Job {
	t.Helper()
	code, hdr, body := postJSON(t, ts, "/v1/jobs", req)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d: %s", code, body)
	}
	var j jobs.Job
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatal(err)
	}
	if want := "/v1/jobs/" + j.ID; hdr.Get("Location") != want {
		t.Errorf("Location = %q, want %q", hdr.Get("Location"), want)
	}
	return j
}

// waitJobDone polls GET /v1/jobs/{id} until the job reaches a
// terminal state, failing the test after a deadline.
func waitJobDone(t *testing.T, ts *httptest.Server, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body := get(t, ts, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d: %s", id, code, body)
		}
		var j jobs.Job
		if err := json.Unmarshal(body, &j); err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return jobs.Job{}
}

// sseEvent is one parsed frame off an event stream.
type sseEvent struct {
	id    string
	event string
	data  jobs.Event
}

// readSSE consumes the stream until the terminal event (or EOF) and
// returns every parsed frame, skipping keepalive comments.
func readSSE(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				evs = append(evs, cur)
				if cur.data.Terminal() {
					return evs
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("parsing SSE data %q: %v", line, err)
			}
		}
	}
	return evs
}

// webhookSink records every delivery it receives and signals each one.
type webhookSink struct {
	ts     *httptest.Server
	mu     sync.Mutex
	bodies [][]byte
	got    chan struct{}
}

func newWebhookSink() *webhookSink {
	sink := &webhookSink{got: make(chan struct{}, 16)}
	sink.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		sink.mu.Lock()
		sink.bodies = append(sink.bodies, buf.Bytes())
		sink.mu.Unlock()
		sink.got <- struct{}{}
	}))
	return sink
}

func (s *webhookSink) wait(t *testing.T) []byte {
	t.Helper()
	select {
	case <-s.got:
	case <-time.After(10 * time.Second):
		t.Fatal("webhook never delivered")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bodies[len(s.bodies)-1]
}

// resultLine is one parsed NDJSON line, reduced to the fields that
// must be identical between a job's results and a batch response
// (elapsed_ms, cached, and trace_id legitimately differ per request).
type resultLine struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Engine string          `json:"engine"`
	Result json.RawMessage `json:"result"`
	Error  *errorDetail    `json:"error"`
}

func parseLines(t *testing.T, body []byte) []resultLine {
	t.Helper()
	var lines []resultLine
	for _, raw := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var l resultLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("parsing NDJSON line %q: %v", raw, err)
		}
		lines = append(lines, l)
	}
	return lines
}

// TestJobLifecycle drives the whole async path over HTTP: submit a
// sweep, watch it through SSE, fetch the results, and receive the
// webhook — and the result bytes must equal what /v1/batch returns
// for the same inputs.
func TestJobLifecycle(t *testing.T) {
	sink := newWebhookSink()
	defer sink.ts.Close()

	s, computations := newTestServer(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submitJob(t, ts, map[string]any{
		"experiments":  []string{"table1", "table2", "fig2"},
		"instructions": 5000,
		"webhook":      sink.ts.URL,
	})
	if len(j.Items) != 3 {
		t.Fatalf("job has %d items, want 3", len(j.Items))
	}

	evs := readSSE(t, ts, j.ID)
	if len(evs) == 0 {
		t.Fatal("no SSE events")
	}
	last := evs[len(evs)-1]
	if !last.data.Terminal() || last.data.State != jobs.StateDone {
		t.Fatalf("last SSE event = %+v, want terminal done", last.data)
	}
	if last.data.Done != 3 || last.data.Total != 3 {
		t.Errorf("terminal event done/total = %d/%d, want 3/3", last.data.Done, last.data.Total)
	}
	// Sequence ids must be strictly increasing — they are the SSE
	// Last-Event-ID a reconnecting client would resume from.
	for i := 1; i < len(evs); i++ {
		if evs[i].data.Seq <= evs[i-1].data.Seq {
			t.Errorf("event %d seq %d not after %d", i, evs[i].data.Seq, evs[i-1].data.Seq)
		}
	}

	done := waitJobDone(t, ts, j.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job state = %s, want done", done.State)
	}
	for _, it := range done.Items {
		if it.Status != jobs.ItemDone {
			t.Errorf("item %s status = %s, want done", it.ID, it.Status)
		}
	}

	// Results: one ok line per item, in submission order.
	code, body := get(t, ts, "/v1/jobs/"+j.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: status %d: %s", code, body)
	}
	got := parseLines(t, body)

	// The same inputs through POST /v1/batch.
	bcode, _, bbody := postJSON(t, ts, "/v1/batch", map[string]any{
		"experiments":  []string{"table1", "table2", "fig2"},
		"instructions": 5000,
	})
	if bcode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", bcode, bbody)
	}
	want := parseLines(t, bbody)
	sort.Slice(want, func(a, b int) bool { return want[a].ID < want[b].ID })
	sortedGot := append([]resultLine(nil), got...)
	sort.Slice(sortedGot, func(a, b int) bool { return sortedGot[a].ID < sortedGot[b].ID })
	if len(sortedGot) != len(want) {
		t.Fatalf("job results have %d lines, batch %d", len(sortedGot), len(want))
	}
	for i := range want {
		g, w := sortedGot[i], want[i]
		if g.ID != w.ID || g.Status != "ok" || w.Status != "ok" {
			t.Errorf("line %d: job %q/%s vs batch %q/%s", i, g.ID, g.Status, w.ID, w.Status)
		}
		if !bytes.Equal(g.Result, w.Result) {
			t.Errorf("experiment %s: job result %s != batch result %s", g.ID, g.Result, w.Result)
		}
	}

	// The webhook delivery carries the terminal record.
	payload := sink.wait(t)
	if !strings.Contains(string(payload), `"event": "job.done"`) &&
		!strings.Contains(string(payload), `"event":"job.done"`) {
		t.Errorf("webhook payload missing job.done event: %s", payload)
	}
	if !strings.Contains(string(payload), j.ID) {
		t.Errorf("webhook payload missing job id %s: %s", j.ID, payload)
	}

	// Every item computed exactly once across job + batch + results:
	// the three share the cache, so 3 items = 3 computations.
	if n := computations.Load(); n != 3 {
		t.Errorf("computations = %d, want 3 (results and batch must reuse the job's cached measurements)", n)
	}
}

// TestJobResultsBeforeDone: a running job's results endpoint answers
// 409 with the job_not_done code rather than a partial stream.
func TestJobResultsBeforeDone(t *testing.T) {
	s, _ := newTestServer(Config{})
	defer s.Close()
	release := make(chan struct{})
	inner := s.jobsRunner
	s.jobsRunner = func(ctx context.Context, j jobs.Job, item string) error {
		<-release
		return inner(ctx, j, item)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submitJob(t, ts, map[string]any{"experiments": []string{"table1"}, "instructions": 5000})
	code, body := get(t, ts, "/v1/jobs/"+j.ID+"/results")
	if code != http.StatusConflict {
		t.Fatalf("results while running: status %d, want 409 (body %s)", code, body)
	}
	var e errorEnvelope
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != codeJobNotDone {
		t.Errorf("code = %q, want %q", e.Error.Code, codeJobNotDone)
	}
	close(release)
	waitJobDone(t, ts, j.ID)
}

// TestJobCancel: DELETE /v1/jobs/{id} cancels a running sweep; its
// results report the never-run items as canceled, not as successes.
func TestJobCancel(t *testing.T) {
	s, _ := newTestServer(Config{})
	defer s.Close()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	inner := s.jobsRunner
	s.jobsRunner = func(ctx context.Context, j jobs.Job, item string) error {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
		case <-ctx.Done():
			return ctx.Err()
		}
		return inner(ctx, j, item)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j := submitJob(t, ts, map[string]any{
		"experiments": []string{"table1", "table2"}, "instructions": 5000, "concurrency": 1,
	})
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	close(release)

	done := waitJobDone(t, ts, j.ID)
	if done.State != jobs.StateCancelled {
		t.Fatalf("state = %s, want cancelled", done.State)
	}
	code, body := get(t, ts, "/v1/jobs/"+j.ID+"/results")
	if code != http.StatusOK {
		t.Fatalf("results: status %d", code)
	}
	var sawCanceled bool
	for _, l := range parseLines(t, body) {
		if l.Status == "error" && l.Error != nil && l.Error.Code == codeCanceled {
			sawCanceled = true
		}
	}
	if !sawCanceled {
		t.Errorf("cancelled job results carry no canceled line: %s", body)
	}
}

// TestJobSubmitValidation: every malformed submission is a 400 in the
// standard envelope, before any work is admitted.
func TestJobSubmitValidation(t *testing.T) {
	s, computations := newTestServer(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name string
		req  map[string]any
		want string
	}{
		{"no experiments", map[string]any{}, ""},
		{"unknown experiment", map[string]any{"experiments": []string{"nope"}}, "nope"},
		{"bad engine", map[string]any{"experiments": []string{"table1"}, "engine": "warp"}, "valid: exact, analytic, auto"},
		{"relative webhook", map[string]any{"experiments": []string{"table1"}, "webhook": "/hook"}, "absolute http(s) URL"},
		{"ftp webhook", map[string]any{"experiments": []string{"table1"}, "webhook": "ftp://x/hook"}, "absolute http(s) URL"},
		{"negative concurrency", map[string]any{"experiments": []string{"table1"}, "concurrency": -1}, "non-negative"},
		{"unknown field", map[string]any{"experiments": []string{"table1"}, "priority": 9}, "priority"},
		{"negative instructions", map[string]any{"experiments": []string{"table1"}, "instructions": -5}, ""},
	} {
		code, _, body := postJSON(t, ts, "/v1/jobs", tc.req)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, code, body)
			continue
		}
		var e errorEnvelope
		if err := json.Unmarshal(body, &e); err != nil {
			t.Errorf("%s: body is not the error envelope: %s", tc.name, body)
			continue
		}
		if e.Error.Code == "" || e.Error.Message == "" {
			t.Errorf("%s: envelope missing code/message: %s", tc.name, body)
		}
		if tc.want != "" && !strings.Contains(string(body), tc.want) {
			t.Errorf("%s: body %s does not contain %q", tc.name, body, tc.want)
		}
	}
	if n := computations.Load(); n != 0 {
		t.Errorf("invalid submissions started %d computations, want 0", n)
	}

	// Unknown-job lookups: 404 in the envelope on every jobs route.
	for _, path := range []string{"/v1/jobs/zzz", "/v1/jobs/zzz/results", "/v1/jobs/zzz/events"} {
		code, body := get(t, ts, path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, code)
		}
		var e errorEnvelope
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != codeUnknownJob {
			t.Errorf("GET %s: body %s, want %s envelope", path, body, codeUnknownJob)
		}
	}
}

// TestJobListPagination: GET /v1/jobs pages newest-first with
// X-Total-Count, like the experiment catalog.
func TestJobListPagination(t *testing.T) {
	s, _ := newTestServer(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		j := submitJob(t, ts, map[string]any{"experiments": []string{"table1"}, "instructions": 5000})
		ids = append(ids, j.ID)
		waitJobDone(t, ts, j.ID)
	}

	code, body := get(t, ts, "/v1/jobs?limit=2&offset=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got struct {
		Total  int        `json:"total"`
		Count  int        `json:"count"`
		Offset int        `json:"offset"`
		Jobs   []jobs.Job `json:"jobs"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Total != 3 || got.Count != 2 || got.Offset != 1 || len(got.Jobs) != 2 {
		t.Fatalf("total/count/offset/len = %d/%d/%d/%d, want 3/2/1/2", got.Total, got.Count, got.Offset, len(got.Jobs))
	}
	// Newest first: offset 1 skips the most recent submission.
	if got.Jobs[0].ID != ids[1] || got.Jobs[1].ID != ids[0] {
		t.Errorf("page = [%s %s], want [%s %s]", got.Jobs[0].ID, got.Jobs[1].ID, ids[1], ids[0])
	}

	for _, bad := range []string{"?limit=", "?limit=-1", "?offset=x", "?order=asc"} {
		code, body := get(t, ts, "/v1/jobs"+bad)
		if code != http.StatusBadRequest {
			t.Errorf("GET /v1/jobs%s: status %d, want 400 (body %s)", bad, code, body)
		}
	}
}

// reportP99 issues n sequential uncached /v1/report requests (each a
// distinct fidelity, so each is a real computation) and returns the
// p99 latency.
func reportP99(t *testing.T, ts *httptest.Server, n, instrBase int) time.Duration {
	t.Helper()
	durs := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		code, body := get(t, ts, fmt.Sprintf("/v1/report?instructions=%d", instrBase+i))
		if code != http.StatusOK {
			t.Fatalf("report: status %d: %s", code, body)
		}
		durs = append(durs, time.Since(start))
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	return durs[len(durs)*99/100]
}

// TestInteractiveLatencyDuringJob is the isolation guarantee: a
// background sweep occupying its entire queue share must not move
// interactive /v1/report latency, because the background queue's cap
// always leaves pool workers free for interactive traffic. The job's
// items block for the whole measurement window — the worst case — and
// p99 must stay within 10% (plus a small absolute allowance for
// scheduler noise) of the idle baseline.
func TestInteractiveLatencyDuringJob(t *testing.T) {
	s, _ := newTestServer(Config{Workers: 4})
	defer s.Close()
	release := make(chan struct{})
	inner := s.compute
	s.compute = func(ctx context.Context, id string, opts machine.RunOptions, tier engine.Tier, background bool) (any, error) {
		if background {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		time.Sleep(2 * time.Millisecond) // a small, fixed interactive cost
		return inner(ctx, id, opts, tier, background)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const samples = 50
	baseline := reportP99(t, ts, samples, 100_000)

	j := submitJob(t, ts, map[string]any{"experiments": []string{"all"}, "instructions": 5000})
	during := reportP99(t, ts, samples, 200_000)

	// The sweep must still be in flight, or the measurement proved
	// nothing: its items cannot finish until release closes.
	code, body := get(t, ts, "/v1/jobs/"+j.ID)
	if code != http.StatusOK {
		t.Fatalf("job get: status %d", code)
	}
	var cur jobs.Job
	if err := json.Unmarshal(body, &cur); err != nil {
		t.Fatal(err)
	}
	if cur.State.Terminal() {
		t.Fatal("job finished before the measurement window; items must block on release")
	}

	close(release)
	done := waitJobDone(t, ts, j.ID)
	if done.State != jobs.StateDone {
		t.Fatalf("job state = %s, want done", done.State)
	}

	limit := baseline + baseline/10 + 10*time.Millisecond
	if during > limit {
		t.Errorf("interactive p99 during job = %v, baseline %v (limit %v): background sweep starves interactive traffic",
			during, baseline, limit)
	}
}
