package server

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/insight"
	"repro/internal/jobs"
	"repro/internal/server/api"
	"repro/internal/telemetry"
)

// handleLiveness is GET /v1/healthz: 200 while the server accepts
// work, 503 once draining — so load balancers stop routing to an
// instance the moment its shutdown begins, before the listener closes.
func (s *Server) handleLiveness(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{"draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// statusResponse is the GET /v1/status body: one point-in-time
// snapshot of everything an operator asks first — what build is this,
// how long has it been up, is the store warm, is the scheduler backed
// up, is the cache earning its keep.
type statusResponse struct {
	GoVersion     string  `json:"go_version"`
	Revision      string  `json:"revision,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	Store     *storeStatus       `json:"store,omitempty"`
	Sched     schedStatus        `json:"sched"`
	Cache     cacheStatus        `json:"cache"`
	Engine    engineStatus       `json:"engine"`
	Trace     traceStatus        `json:"tracing"`
	Admission admission.Snapshot `json:"admission"`
	Jobs      *jobsStatus        `json:"jobs,omitempty"`
	Insight   *insight.Status    `json:"insight,omitempty"`
}

// jobsStatus reports the async-job subsystem: the state census plus
// the background queue's share of the simulation pool.
type jobsStatus struct {
	jobs.Stats
	Workers int `json:"workers"`
	// QueueCap is the background queue's concurrency cap on the shared
	// simulation pool (always below the pool's worker count, so sweeps
	// cannot starve interactive traffic).
	QueueCap int    `json:"queue_cap"`
	Path     string `json:"path,omitempty"`
}

type storeStatus struct {
	Path     string  `json:"path,omitempty"`
	Entries  int64   `json:"entries"`
	Dirty    bool    `json:"dirty"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
}

type schedStatus struct {
	Workers   int   `json:"workers"`
	Depth     int   `json:"queue_depth"`
	MaxQueue  int   `json:"max_queue,omitempty"`
	Inflight  int   `json:"inflight"`
	DedupHits int64 `json:"dedup_hits"`
	Started   int64 `json:"started"`
	Shed      int64 `json:"shed,omitempty"`
}

type cacheStatus struct {
	ResultEntries int     `json:"result_entries"`
	Labs          int     `json:"labs"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRatio      float64 `json:"hit_ratio"`
	Coalesced     int64   `json:"coalesced"`
	Computations  int64   `json:"computations"`
}

// engineStatus reports the measurement-engine configuration and the
// background exact-upgrade pipeline's health.
type engineStatus struct {
	Default        string `json:"default"`
	UpgradeWorkers int    `json:"upgrade_workers"`
	UpgradeDepth   int    `json:"upgrade_queue_depth"`
	UpgradePending int    `json:"upgrade_pending"`
	Queued         int64  `json:"upgrades_queued"`
	Done           int64  `json:"upgrades_done"`
	Failed         int64  `json:"upgrades_failed,omitempty"`
	Dropped        int64  `json:"upgrades_dropped,omitempty"`
	ServedExact    int64  `json:"served_exact"`
	ServedAnalytic int64  `json:"served_analytic"`
}

type traceStatus struct {
	Enabled  bool   `json:"enabled"`
	Capacity int    `json:"capacity,omitempty"`
	Buffered int    `json:"buffered,omitempty"`
	Finished uint64 `json:"finished,omitempty"`
	SlowMS   int64  `json:"slow_threshold_ms,omitempty"`
}

// ratio returns hits/(hits+misses), 0 when nothing has been counted.
func ratio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	resp := statusResponse{
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.draining.Load(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	if st := s.cfg.Store; st != nil {
		stats := st.Stats()
		resp.Store = &storeStatus{
			Path:     st.Path(),
			Entries:  stats.Entries,
			Dirty:    st.Dirty(),
			Hits:     stats.Hits,
			Misses:   stats.Misses,
			HitRatio: ratio(stats.Hits, stats.Misses),
		}
	}
	ps := s.pool.Stats()
	resp.Sched = schedStatus{
		Workers:   s.pool.Workers(),
		Depth:     ps.Depth,
		MaxQueue:  ps.MaxQueue,
		Inflight:  ps.Inflight,
		DedupHits: ps.DedupHits,
		Started:   ps.Started,
		Shed:      ps.Shed,
	}
	resp.Admission = s.adm.Snapshot()
	s.mu.Lock()
	nResults, nLabs := s.results.len(), s.labs.len()
	s.mu.Unlock()
	// Counter reads go through the registry's typed Snapshot — one
	// self-consistent capture instead of a handful of ad-hoc handle
	// reads (and the same view the insight recorder samples). Labelled
	// series that never fired read as 0, like an absent Prometheus
	// sample.
	snap := s.cfg.Metrics.Snapshot()
	hits := int64(snap.Value("spec17d_cache_hits_total"))
	misses := int64(snap.Value("spec17d_cache_misses_total"))
	resp.Cache = cacheStatus{
		ResultEntries: nResults,
		Labs:          nLabs,
		Hits:          hits,
		Misses:        misses,
		HitRatio:      ratio(hits, misses),
		Coalesced:     int64(snap.Value("spec17d_coalesced_waiters_total")),
		Computations:  int64(snap.Value("spec17d_computations_total")),
	}
	s.mu.Lock()
	nPending := len(s.upgradePending)
	s.mu.Unlock()
	resp.Engine = engineStatus{
		Default:        string(s.cfg.DefaultEngine),
		UpgradeWorkers: s.cfg.UpgradeWorkers,
		UpgradeDepth:   len(s.upgradeCh),
		UpgradePending: nPending,
		Queued:         int64(snap.Value("spec17d_engine_upgrades_total", "queued")),
		Done:           int64(snap.Value("spec17d_engine_upgrades_total", "done")),
		Failed:         int64(snap.Value("spec17d_engine_upgrades_total", "failed")),
		Dropped:        int64(snap.Value("spec17d_engine_upgrades_total", "dropped")),
		ServedExact:    int64(snap.Value("spec17d_engine_requests_total", string(engine.TierExact))),
		ServedAnalytic: int64(snap.Value("spec17d_engine_requests_total", string(engine.TierAnalytic))),
	}
	if s.jobs != nil {
		resp.Jobs = &jobsStatus{
			Stats:    s.jobs.Stats(),
			Workers:  s.cfg.JobWorkers,
			QueueCap: s.jobsQueue.Cap(),
			Path:     s.cfg.JobsPath,
		}
	}
	if ins := s.cfg.Insight; ins != nil {
		st := ins.Status()
		resp.Insight = &st
	}
	if t := s.cfg.Tracer; t != nil {
		resp.Trace = traceStatus{
			Enabled:  true,
			Capacity: t.Capacity(),
			Buffered: t.Buffered(),
			Finished: t.Finished(),
			SlowMS:   t.SlowThreshold().Milliseconds(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// tracesResponse is the GET /v1/traces body.
type tracesResponse struct {
	Enabled bool                   `json:"enabled"`
	Count   int                    `json:"count"`
	Traces  []*telemetry.TraceData `json:"traces"`
}

// handleTraces is GET /v1/traces: the tracer's ring of finished
// traces, newest first. ?min_ms= keeps only traces at least that
// long, ?experiment= only traces any of whose spans carry that
// experiment attribute, ?limit= bounds the count.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "min_ms", "experiment", "limit":
		default:
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("unknown query parameter %q (valid: min_ms, experiment, limit)", k), nil)
			return
		}
	}
	// ?experiment= (present but empty) would silently filter nothing;
	// reject it like every other endpoint rejects empty parameters.
	if err := api.NoEmptyParams(q); err != nil {
		writeError(w, http.StatusBadRequest, codeBadOptions, err.Error(), nil)
		return
	}
	var f telemetry.Filter
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("min_ms=%q: must be a non-negative number", v), nil)
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	f.Experiment = q.Get("experiment")
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, codeBadOptions,
				fmt.Sprintf("limit=%q: must be a non-negative integer", v), nil)
			return
		}
		f.Limit = n
	}
	t := s.cfg.Tracer
	traces := t.Traces(f)
	if traces == nil {
		traces = []*telemetry.TraceData{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{
		Enabled: t != nil,
		Count:   len(traces),
		Traces:  traces,
	})
}
