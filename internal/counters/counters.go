// Package counters defines the performance-metric schema of the
// paper's Table III and converts raw simulation counts into named
// metric vectors. Treating each (metric, machine) pair as one variable
// — 19 metrics on each of 7 machines plus 3 power metrics on the 3
// RAPL-capable Intel machines, 142 variables in total — reproduces the
// paper's "140 metrics" measurement matrix.
package counters

import (
	"fmt"

	"repro/internal/machine"
)

// Metric names one performance characteristic measured on one machine.
type Metric string

// The Table III metric set.
//
// Cache metrics are misses per kilo-instruction (MPKI); TLB metrics
// are misses per million instructions (MPMI); branch metrics are per
// kilo-instruction; instruction-mix metrics are percentages; power
// metrics are watts.
const (
	L1IMPKI Metric = "l1i_mpki"
	L1DMPKI Metric = "l1d_mpki"
	L2IMPKI Metric = "l2i_mpki"
	L2DMPKI Metric = "l2d_mpki"
	L3MPKI  Metric = "l3_mpki"

	ITLBMPMI     Metric = "itlb_mpmi"
	DTLBMPMI     Metric = "dtlb_mpmi"
	L2TLBMPMI    Metric = "l2tlb_mpmi"
	PageWalksPMI Metric = "pagewalks_pmi"

	BranchMPKI Metric = "branch_mpki"
	TakenPKI   Metric = "taken_pki"

	PctKernel Metric = "pct_kernel"
	PctUser   Metric = "pct_user"
	PctInt    Metric = "pct_int"
	PctFP     Metric = "pct_fp"
	PctLoad   Metric = "pct_load"
	PctStore  Metric = "pct_store"
	PctBranch Metric = "pct_branch"
	PctSIMD   Metric = "pct_simd"

	CorePower Metric = "core_power_w"
	LLCPower  Metric = "llc_power_w"
	MemPower  Metric = "mem_power_w"
)

// BaseMetrics returns the 19 non-power metrics in canonical order.
func BaseMetrics() []Metric {
	return []Metric{
		L1IMPKI, L1DMPKI, L2IMPKI, L2DMPKI, L3MPKI,
		ITLBMPMI, DTLBMPMI, L2TLBMPMI, PageWalksPMI,
		BranchMPKI, TakenPKI,
		PctKernel, PctUser, PctInt, PctFP, PctLoad, PctStore, PctBranch, PctSIMD,
	}
}

// PowerMetrics returns the three RAPL-derived metrics of Figure 12.
func PowerMetrics() []Metric { return []Metric{CorePower, LLCPower, MemPower} }

// BranchMetrics returns the branch-behaviour group used for the
// Figure 9 scatter analysis.
func BranchMetrics() []Metric { return []Metric{BranchMPKI, TakenPKI, PctBranch} }

// DCacheMetrics returns the data-locality group of Figure 10(a).
func DCacheMetrics() []Metric {
	return []Metric{L1DMPKI, L2DMPKI, L3MPKI, PctLoad, PctStore}
}

// ICacheMetrics returns the instruction-locality group of Figure 10(b).
func ICacheMetrics() []Metric { return []Metric{L1IMPKI, L2IMPKI, ITLBMPMI} }

// Sample is the metric vector measured for one workload on one machine.
type Sample struct {
	// Machine is the measuring machine's name.
	Machine string
	// HasPower reports whether the power metrics are meaningful.
	HasPower bool
	values   map[Metric]float64
}

// Value returns the sample's value for metric m.
func (s *Sample) Value(m Metric) (float64, error) {
	v, ok := s.values[m]
	if !ok {
		return 0, fmt.Errorf("counters: machine %s has no metric %s", s.Machine, m)
	}
	return v, nil
}

// MustValue is Value for metrics known to exist; it panics otherwise.
func (s *Sample) MustValue(m Metric) float64 {
	v, err := s.Value(m)
	if err != nil {
		panic(err)
	}
	return v
}

// Metrics returns the metric names present in the sample, in canonical
// order.
func (s *Sample) Metrics() []Metric {
	ms := BaseMetrics()
	if s.HasPower {
		ms = append(ms, PowerMetrics()...)
	}
	return ms
}

// FromRaw converts raw simulation counts into a metric sample.
func FromRaw(machineName string, hasPower bool, rc *machine.RawCounts) (*Sample, error) {
	if rc.Instructions == 0 {
		return nil, fmt.Errorf("counters: zero instructions in sample from %s", machineName)
	}
	n := float64(rc.Instructions)
	perKI := func(c uint64) float64 { return float64(c) / n * 1e3 }
	perMI := func(c uint64) float64 { return float64(c) / n * 1e6 }
	pct := func(c uint64) float64 { return float64(c) / n * 100 }

	intOps := rc.Instructions - rc.Loads - rc.Stores - rc.Branches - rc.FPOps - rc.SIMDOps
	v := map[Metric]float64{
		L1IMPKI: perKI(rc.Cache.L1IMisses),
		L1DMPKI: perKI(rc.Cache.L1DMisses),
		L2IMPKI: perKI(rc.Cache.L2IMisses),
		L2DMPKI: perKI(rc.Cache.L2DMisses),
		L3MPKI:  perKI(rc.Cache.L3Misses),

		ITLBMPMI:     perMI(rc.TLB.ITLBMisses),
		DTLBMPMI:     perMI(rc.TLB.DTLBMisses),
		L2TLBMPMI:    perMI(rc.TLB.L2Misses),
		PageWalksPMI: perMI(rc.TLB.PageWalks),

		BranchMPKI: perKI(rc.Mispredicts),
		TakenPKI:   perKI(rc.TakenBranches),

		PctKernel: pct(rc.KernelInstrs),
		PctUser:   100 - pct(rc.KernelInstrs),
		PctInt:    pct(intOps),
		PctFP:     pct(rc.FPOps),
		PctLoad:   pct(rc.Loads),
		PctStore:  pct(rc.Stores),
		PctBranch: pct(rc.Branches),
		PctSIMD:   pct(rc.SIMDOps),
	}
	if hasPower {
		v[CorePower] = rc.Power.Core
		v[LLCPower] = rc.Power.LLC
		v[MemPower] = rc.Power.DRAM
	}
	return &Sample{Machine: machineName, HasPower: hasPower, values: v}, nil
}

// ColumnID names one (machine, metric) variable in the assembled
// measurement matrix.
func ColumnID(machineName string, m Metric) string {
	return machineName + ":" + string(m)
}
