package counters

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/power"
	"repro/internal/tlb"
)

func sampleRaw() *machine.RawCounts {
	return &machine.RawCounts{
		Instructions:  1_000_000,
		Loads:         250_000,
		Stores:        100_000,
		Branches:      120_000,
		TakenBranches: 80_000,
		FPOps:         50_000,
		SIMDOps:       20_000,
		KernelInstrs:  30_000,
		Mispredicts:   6_000,
		Cache: cache.Counts{
			L1IMisses: 2_000, L1DMisses: 40_000,
			L2IMisses: 300, L2DMisses: 9_000, L3Misses: 2_500,
		},
		TLB: tlb.Counts{
			ITLBMisses: 500, DTLBMisses: 8_000, L2Misses: 1_200, PageWalks: 1_200,
		},
		Power: power.Breakdown{Core: 25, LLC: 3, DRAM: 5},
	}
}

func TestFromRawMetricValues(t *testing.T) {
	s, err := FromRaw("skylake", true, sampleRaw())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[Metric]float64{
		L1DMPKI:      40,
		L1IMPKI:      2,
		L2DMPKI:      9,
		L3MPKI:       2.5,
		BranchMPKI:   6,
		TakenPKI:     80,
		DTLBMPMI:     8000,
		PageWalksPMI: 1200,
		PctLoad:      25,
		PctStore:     10,
		PctBranch:    12,
		PctFP:        5,
		PctSIMD:      2,
		PctKernel:    3,
		PctUser:      97,
		PctInt:       46, // 100 - 25 - 10 - 12 - 5 - 2
		CorePower:    25,
		MemPower:     5,
	}
	for m, want := range cases {
		got, err := s.Value(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", m, got, want)
		}
	}
}

func TestFromRawWithoutPower(t *testing.T) {
	s, err := FromRaw("sparc-t4", false, sampleRaw())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Value(CorePower); err == nil {
		t.Fatal("power metric must be absent without RAPL")
	}
	if len(s.Metrics()) != len(BaseMetrics()) {
		t.Fatal("metric list should exclude power")
	}
}

func TestFromRawZeroInstructions(t *testing.T) {
	if _, err := FromRaw("m", false, &machine.RawCounts{}); err == nil {
		t.Fatal("zero instructions must error")
	}
}

func TestMetricCounts(t *testing.T) {
	if len(BaseMetrics()) != 19 {
		t.Fatalf("base metrics = %d, want 19", len(BaseMetrics()))
	}
	if len(PowerMetrics()) != 3 {
		t.Fatal("power metrics must be 3")
	}
	// Paper: ~20 metrics x 7 machines = ~140 variables. Our schema:
	// 19*7 + 3*3 = 142.
	total := len(BaseMetrics())*7 + len(PowerMetrics())*3
	if total != 142 {
		t.Fatalf("total variables = %d, want 142", total)
	}
}

func TestMetricGroupsSubsetOfSchema(t *testing.T) {
	all := make(map[Metric]bool)
	for _, m := range BaseMetrics() {
		all[m] = true
	}
	for _, m := range PowerMetrics() {
		all[m] = true
	}
	for _, grp := range [][]Metric{BranchMetrics(), DCacheMetrics(), ICacheMetrics()} {
		for _, m := range grp {
			if !all[m] {
				t.Errorf("group metric %s not in schema", m)
			}
		}
	}
}

func TestMustValuePanics(t *testing.T) {
	s, _ := FromRaw("m", false, sampleRaw())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.MustValue(CorePower)
}

func TestColumnID(t *testing.T) {
	if got := ColumnID("skylake", L1DMPKI); got != "skylake:l1d_mpki" {
		t.Fatalf("ColumnID = %q", got)
	}
}

func TestSampleMetricsOrderDeterministic(t *testing.T) {
	s, _ := FromRaw("m", true, sampleRaw())
	a := s.Metrics()
	b := s.Metrics()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("metric order must be deterministic")
		}
	}
	if a[len(a)-1] != MemPower {
		t.Fatal("power metrics must come last")
	}
}
