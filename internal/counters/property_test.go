package counters

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/tlb"
)

// Property: the instruction-mix percentages partition the instruction
// stream (int+fp+simd+load+store+branch = 100, kernel+user = 100) for
// any consistent raw-count vector.
func TestMixPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := uint64(1000 + r.Intn(1_000_000))
		// Split n into six non-negative categories.
		loads := r.Uint64n(n / 3)
		stores := r.Uint64n(n / 4)
		branches := r.Uint64n(n / 5)
		rest := n - loads - stores - branches
		fp := r.Uint64n(rest + 1)
		simd := r.Uint64n(rest - fp + 1)
		kernel := r.Uint64n(n + 1)

		rc := &machine.RawCounts{
			Instructions: n, Loads: loads, Stores: stores,
			Branches: branches, FPOps: fp, SIMDOps: simd,
			KernelInstrs: kernel,
			Cache:        cache.Counts{}, TLB: tlb.Counts{},
		}
		s, err := FromRaw("m", false, rc)
		if err != nil {
			return false
		}
		mix := s.MustValue(PctInt) + s.MustValue(PctFP) + s.MustValue(PctSIMD) +
			s.MustValue(PctLoad) + s.MustValue(PctStore) + s.MustValue(PctBranch)
		if math.Abs(mix-100) > 1e-9 {
			return false
		}
		return math.Abs(s.MustValue(PctKernel)+s.MustValue(PctUser)-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: all rate metrics are non-negative and finite.
func TestMetricsFiniteProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := uint64(1000 + r.Intn(100_000))
		rc := &machine.RawCounts{
			Instructions: n,
			Loads:        r.Uint64n(n / 2),
			Branches:     r.Uint64n(n / 4),
			Mispredicts:  r.Uint64n(n / 8),
			Cache: cache.Counts{
				L1IMisses: r.Uint64n(n), L1DMisses: r.Uint64n(n),
				L2IMisses: r.Uint64n(n), L2DMisses: r.Uint64n(n),
				L3Misses: r.Uint64n(n),
			},
			TLB: tlb.Counts{
				ITLBMisses: r.Uint64n(n), DTLBMisses: r.Uint64n(n),
				L2Misses: r.Uint64n(n), PageWalks: r.Uint64n(n),
			},
		}
		s, err := FromRaw("m", false, rc)
		if err != nil {
			return false
		}
		for _, m := range s.Metrics() {
			v := s.MustValue(m)
			if math.IsNaN(v) || math.IsInf(v, 0) || v < -1e-9 && m != PctInt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
