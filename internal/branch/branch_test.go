package branch

import (
	"testing"

	"repro/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Kind: Bimodal, TableBits: 0},
		{Kind: Bimodal, TableBits: 30},
		{Kind: GShare, TableBits: 10, HistoryBits: 0},
		{Kind: GShare, TableBits: 10, HistoryBits: 11},
		{Kind: Kind(99), TableBits: 10, HistoryBits: 4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	good := []Config{
		{Kind: Bimodal, TableBits: 12},
		{Kind: GShare, TableBits: 12, HistoryBits: 8},
		{Kind: Tournament, TableBits: 12, HistoryBits: 10},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", c, err)
		}
	}
}

func TestKindString(t *testing.T) {
	if Bimodal.String() != "bimodal" || GShare.String() != "gshare" ||
		Tournament.String() != "tournament" || Kind(7).String() != "Kind(7)" {
		t.Fatal("Kind.String values wrong")
	}
}

func allKinds(t *testing.T, tableBits, histBits int) []*Predictor {
	t.Helper()
	var ps []*Predictor
	for _, k := range []Kind{Bimodal, GShare, Tournament} {
		p, err := New(Config{Kind: k, TableBits: tableBits, HistoryBits: histBits})
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

func TestAlwaysTakenLearned(t *testing.T) {
	for _, p := range allKinds(t, 12, 8) {
		for i := 0; i < 1000; i++ {
			p.Predict(0x400, true)
		}
		p.ResetStats()
		for i := 0; i < 1000; i++ {
			p.Predict(0x400, true)
		}
		if mr := p.MispredictRate(); mr > 0.001 {
			t.Errorf("%v: always-taken branch mispredict rate %v, want ~0", p.Config().Kind, mr)
		}
	}
}

func TestAlternatingPatternGShareLearns(t *testing.T) {
	// A strict T/N/T/N pattern defeats bimodal (stuck around 50%) but
	// is perfectly predictable with global history.
	bi, _ := New(Config{Kind: Bimodal, TableBits: 12})
	gs, _ := New(Config{Kind: GShare, TableBits: 12, HistoryBits: 8})
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		bi.Predict(0x1000, taken)
		gs.Predict(0x1000, taken)
	}
	bi.ResetStats()
	gs.ResetStats()
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		bi.Predict(0x1000, taken)
		gs.Predict(0x1000, taken)
	}
	if gs.MispredictRate() > 0.01 {
		t.Fatalf("gshare should learn the alternating pattern, got %v", gs.MispredictRate())
	}
	if bi.MispredictRate() < 0.3 {
		t.Fatalf("bimodal should struggle with alternation, got %v", bi.MispredictRate())
	}
}

func TestRandomBranchesNearHalf(t *testing.T) {
	r := rng.New(77)
	for _, p := range allKinds(t, 12, 10) {
		for i := 0; i < 50000; i++ {
			p.Predict(0x2000, r.Bool(0.5))
		}
		if mr := p.MispredictRate(); mr < 0.4 || mr > 0.6 {
			t.Errorf("%v: random branches mispredict rate %v, want ≈0.5", p.Config().Kind, mr)
		}
	}
}

func TestBiasedRandomBranches(t *testing.T) {
	// 90%-taken random branch: a 2-bit counter mispredicts ≈10%.
	r := rng.New(5)
	p, _ := New(Config{Kind: Bimodal, TableBits: 12})
	for i := 0; i < 50000; i++ {
		p.Predict(0x3000, r.Bool(0.9))
	}
	if mr := p.MispredictRate(); mr < 0.05 || mr > 0.2 {
		t.Fatalf("90%%-biased branch mispredict rate %v, want ≈0.1", mr)
	}
}

func TestTournamentBeatsWorstComponent(t *testing.T) {
	// Mix of an alternating branch (gshare-friendly) and a heavily
	// biased branch (bimodal-friendly): tournament should be close to
	// the best of both.
	tour, _ := New(Config{Kind: Tournament, TableBits: 12, HistoryBits: 8})
	bi, _ := New(Config{Kind: Bimodal, TableBits: 12})
	r := rng.New(8)
	run := func(p *Predictor) {
		for i := 0; i < 20000; i++ {
			p.Predict(0x100, i%2 == 0)     // alternating
			p.Predict(0x200, r.Bool(0.95)) // biased
		}
	}
	run(tour)
	r = rng.New(8)
	run(bi)
	if tour.MispredictRate() >= bi.MispredictRate() {
		t.Fatalf("tournament (%v) should beat bimodal (%v) on mixed workload",
			tour.MispredictRate(), bi.MispredictRate())
	}
}

func TestTakenCounting(t *testing.T) {
	p, _ := New(Config{Kind: Bimodal, TableBits: 8})
	p.Predict(0x10, true)
	p.Predict(0x10, true)
	p.Predict(0x10, false)
	c := p.Counts()
	if c.Branches != 3 || c.Taken != 2 {
		t.Fatalf("counts %+v, want 3 branches / 2 taken", c)
	}
}

func TestResetStatsKeepsLearning(t *testing.T) {
	p, _ := New(Config{Kind: GShare, TableBits: 10, HistoryBits: 6})
	for i := 0; i < 1000; i++ {
		p.Predict(0x40, true)
	}
	p.ResetStats()
	if c := p.Counts(); c != (Counts{}) {
		t.Fatalf("counts after reset %+v", c)
	}
	p.Predict(0x40, true)
	if p.MispredictRate() != 0 {
		t.Fatal("learned state must survive ResetStats")
	}
}

func TestMispredictRateBeforeBranches(t *testing.T) {
	p, _ := New(Config{Kind: Bimodal, TableBits: 8})
	if p.MispredictRate() != 0 {
		t.Fatal("rate before any branch should be 0")
	}
}

func TestBiggerTableHelpsAliasing(t *testing.T) {
	// Many branches with conflicting biases alias in a tiny table but
	// not in a large one.
	smallP, _ := New(Config{Kind: Bimodal, TableBits: 4})
	bigP, _ := New(Config{Kind: Bimodal, TableBits: 16})
	for i := 0; i < 30000; i++ {
		pc := uint64((i % 256) * 4)
		taken := (i % 256) < 128 // low half always-taken, high half never —
		// aliased pairs (b, b+128) disagree, so a 16-entry table thrashes
		smallP.Predict(pc, taken)
		bigP.Predict(pc, taken)
	}
	if bigP.MispredictRate() >= smallP.MispredictRate() {
		t.Fatalf("large table (%v) should out-predict small table (%v) under aliasing",
			bigP.MispredictRate(), smallP.MispredictRate())
	}
}
