package branch

import "fmt"

// MarshalText encodes the predictor kind as its conventional name, so
// machine configuration files read "gshare" rather than an integer.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case Bimodal, GShare, Tournament:
		return []byte(k.String()), nil
	default:
		return nil, fmt.Errorf("branch: cannot marshal unknown kind %d", int(k))
	}
}

// UnmarshalText decodes a predictor kind from its name.
func (k *Kind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "bimodal":
		*k = Bimodal
	case "gshare":
		*k = GShare
	case "tournament":
		*k = Tournament
	default:
		return fmt.Errorf("branch: unknown predictor kind %q", text)
	}
	return nil
}
