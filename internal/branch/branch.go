// Package branch implements trace-driven branch direction predictors
// (bimodal, gshare, and a bimodal/gshare tournament) with saturating
// two-bit counters. It supplies the paper's branch metrics: branch
// mispredictions per kilo-instruction and taken branches per
// kilo-instruction (Tables II and III, Figure 9).
package branch

import "fmt"

// Kind selects a predictor organization.
type Kind int

const (
	// Bimodal indexes a pattern-history table by PC alone.
	Bimodal Kind = iota
	// GShare XORs the PC with a global history register.
	GShare
	// Tournament runs bimodal and gshare side by side with a chooser
	// table, modelling the hybrid predictors of modern cores.
	Tournament
)

// String returns the predictor kind's conventional name.
func (k Kind) String() string {
	switch k {
	case Bimodal:
		return "bimodal"
	case GShare:
		return "gshare"
	case Tournament:
		return "tournament"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes a predictor.
type Config struct {
	Kind Kind
	// TableBits is log2 of the pattern history table size.
	TableBits int
	// HistoryBits is the global history length (GShare/Tournament).
	HistoryBits int
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.TableBits < 1 || c.TableBits > 24 {
		return fmt.Errorf("branch: table bits %d out of range [1,24]", c.TableBits)
	}
	if (c.Kind == GShare || c.Kind == Tournament) && (c.HistoryBits < 1 || c.HistoryBits > c.TableBits) {
		return fmt.Errorf("branch: history bits %d out of range [1,%d]", c.HistoryBits, c.TableBits)
	}
	switch c.Kind {
	case Bimodal, GShare, Tournament:
		return nil
	default:
		return fmt.Errorf("branch: unknown predictor kind %d", int(c.Kind))
	}
}

// Predictor is a stateful branch direction predictor.
type Predictor struct {
	cfg      Config
	mask     uint64
	bimodal  []uint8 // 2-bit saturating counters
	gshare   []uint8
	chooser  []uint8 // 2-bit: >=2 prefer gshare
	history  uint64
	histMask uint64

	branches    uint64
	mispredicts uint64
	taken       uint64
}

// New builds a predictor from cfg.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	size := 1 << cfg.TableBits
	p := &Predictor{
		cfg:      cfg,
		mask:     uint64(size - 1),
		histMask: (1 << uint(cfg.HistoryBits)) - 1,
	}
	// Initialize counters to weakly taken (10): conditional branches
	// are taken far more often than not, so this is the cold-start
	// guess real predictors converge to.
	initTable := func() []uint8 {
		t := make([]uint8, size)
		for i := range t {
			t[i] = 2
		}
		return t
	}
	switch cfg.Kind {
	case Bimodal:
		p.bimodal = initTable()
	case GShare:
		p.gshare = initTable()
	case Tournament:
		p.bimodal = initTable()
		p.gshare = initTable()
		p.chooser = make([]uint8, size)
		for i := range p.chooser {
			p.chooser[i] = 2 // weakly prefer gshare
		}
	}
	return p, nil
}

// Config returns the configuration the predictor was built with.
func (p *Predictor) Config() Config { return p.cfg }

func counterTaken(c uint8) bool { return c >= 2 }

func bump(c uint8, taken bool) uint8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Predict simulates one conditional branch at pc with the actual
// outcome taken, updates all predictor state, and reports whether the
// prediction was correct.
func (p *Predictor) Predict(pc uint64, taken bool) bool {
	p.branches++
	if taken {
		p.taken++
	}

	biIdx := (pc >> 2) & p.mask
	gsIdx := ((pc >> 2) ^ (p.history & p.histMask)) & p.mask

	var pred bool
	switch p.cfg.Kind {
	case Bimodal:
		pred = counterTaken(p.bimodal[biIdx])
		p.bimodal[biIdx] = bump(p.bimodal[biIdx], taken)
	case GShare:
		pred = counterTaken(p.gshare[gsIdx])
		p.gshare[gsIdx] = bump(p.gshare[gsIdx], taken)
	case Tournament:
		bp := counterTaken(p.bimodal[biIdx])
		gp := counterTaken(p.gshare[gsIdx])
		useG := p.chooser[biIdx] >= 2
		if useG {
			pred = gp
		} else {
			pred = bp
		}
		// Train chooser toward whichever component was right.
		if bp != gp {
			p.chooser[biIdx] = bump(p.chooser[biIdx], gp == taken)
		}
		p.bimodal[biIdx] = bump(p.bimodal[biIdx], taken)
		p.gshare[gsIdx] = bump(p.gshare[gsIdx], taken)
	}

	if p.cfg.Kind != Bimodal {
		p.history = ((p.history << 1) | boolBit(taken)) & p.histMask
	}
	correct := pred == taken
	if !correct {
		p.mispredicts++
	}
	return correct
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Counts holds predictor statistics.
type Counts struct {
	Branches, Mispredicts, Taken uint64
}

// Counts returns the statistics since creation or ResetStats.
func (p *Predictor) Counts() Counts {
	return Counts{Branches: p.branches, Mispredicts: p.mispredicts, Taken: p.taken}
}

// MispredictRate returns mispredicts/branches (0 before any branch).
func (p *Predictor) MispredictRate() float64 {
	if p.branches == 0 {
		return 0
	}
	return float64(p.mispredicts) / float64(p.branches)
}

// ResetStats clears the counters but keeps learned state.
func (p *Predictor) ResetStats() { p.branches, p.mispredicts, p.taken = 0, 0, 0 }
