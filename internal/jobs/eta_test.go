package jobs

import (
	"context"
	"math"
	"testing"
	"time"
)

// TestETAFromCostModel pins the model-based ETA: before any item has
// finished, a job's eta_seconds is the configured per-item estimate
// times the remaining item waves at the job's concurrency — in job
// status, in the event-stream snapshot, and absent once terminal.
func TestETAFromCostModel(t *testing.T) {
	cfg := quietCfg(okRunner)
	var gotSpec Spec
	cfg.EstimateItemSeconds = func(spec Spec) float64 {
		gotSpec = spec
		return 2.5
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not started: the job stays pending, so the estimate is purely
	// model-derived and deterministic.
	j, err := m.Submit(Spec{Experiments: []string{"a", "b", "c", "d", "e"}, Concurrency: 2, Instructions: 123})
	if err != nil {
		t.Fatal(err)
	}
	// 5 items, concurrency 2 → ceil(5/2) = 3 waves × 2.5s.
	if want := 7.5; j.ETASeconds != want {
		t.Fatalf("submitted job ETASeconds = %v, want %v", j.ETASeconds, want)
	}
	if gotSpec.Instructions != 123 {
		t.Fatalf("estimator saw spec %+v, want the submitted spec", gotSpec)
	}
	if g, _ := m.Get(j.ID); g.ETASeconds != 7.5 {
		t.Fatalf("Get ETASeconds = %v, want 7.5", g.ETASeconds)
	}
	snap, _, cancel, ok := m.Subscribe(j.ID)
	if !ok {
		t.Fatal("subscribe failed")
	}
	cancel()
	if snap.ETASeconds != 7.5 {
		t.Fatalf("event snapshot ETASeconds = %v, want 7.5", snap.ETASeconds)
	}

	// Run the job; once terminal the ETA disappears.
	m.Start()
	defer m.Close()
	fin := waitState(t, m, j.ID, StateDone)
	if fin.ETASeconds != 0 {
		t.Fatalf("terminal job ETASeconds = %v, want 0", fin.ETASeconds)
	}
}

// TestETAPrefersObservedRate pins the refinement: once items have
// finished, the observed mean item time replaces the model prior.
func TestETAPrefersObservedRate(t *testing.T) {
	gate := make(chan struct{})
	cfg := quietCfg(func(ctx context.Context, j Job, item string) error {
		if item == "second" {
			<-gate // hold the job mid-run
		}
		time.Sleep(15 * time.Millisecond)
		return nil
	})
	cfg.EstimateItemSeconds = func(Spec) float64 { return 1000 } // absurd prior
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	defer m.Close()
	j, err := m.Submit(Spec{Experiments: []string{"first", "second"}, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the first item is done while "second" blocks on the gate.
	deadline := time.Now().Add(10 * time.Second)
	var eta float64
	for time.Now().Before(deadline) {
		g, ok := m.Get(j.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if done, _ := g.Counts(); done == 1 {
			eta = g.ETASeconds
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// One ~15ms item observed, one remaining: the ETA must track the
	// observed rate (well under a second), not the 1000s prior.
	if eta <= 0 || eta >= 10 {
		t.Fatalf("mid-run ETASeconds = %v, want observed-rate estimate in (0, 10)", eta)
	}
	if math.IsNaN(eta) || math.IsInf(eta, 0) {
		t.Fatalf("mid-run ETASeconds = %v", eta)
	}
	close(gate)
	waitState(t, m, j.ID, StateDone)
}
