package jobs

// Push delivery, half one: per-job event streams. A subscriber gets a
// synthetic "state" snapshot first (so a late subscriber knows the
// full current picture without any history retention), then live
// events until the job goes terminal. The server turns this into SSE.

// Event is one job-progress notification.
type Event struct {
	// Seq orders events within one job. The synthetic snapshot a new
	// subscriber receives carries the job's current seq, so a client
	// reconnecting can detect it missed nothing it still needs: the
	// snapshot always reflects every prior event.
	Seq int `json:"seq"`
	// Type is "state" (job-level transition or snapshot) or "item"
	// (one sweep item finished).
	Type  string `json:"type"`
	Job   string `json:"job"`
	State State  `json:"state"`
	// Item and ItemStatus are set on "item" events.
	Item       string     `json:"item,omitempty"`
	ItemStatus ItemStatus `json:"item_status,omitempty"`
	Error      string     `json:"error,omitempty"`
	// Done / Failed / Total summarize sweep progress; Done counts
	// terminal items (including failures).
	Done   int `json:"done"`
	Failed int `json:"failed,omitempty"`
	Total  int `json:"total"`
	// ETASeconds estimates seconds to completion, as on Job.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
}

// Terminal reports whether this event ends the stream.
func (e Event) Terminal() bool { return e.Type == "state" && e.State.Terminal() }

// subCap bounds a subscriber's buffer. A job emits at most
// len(items) item events plus a handful of state transitions; a
// subscriber that stops draining past this bound is dropped rather
// than allowed to block the manager.
func subCap(items int) int { return items + 8 }

// Subscribe attaches a subscriber to a job. It returns a snapshot
// event describing the job right now, a channel of subsequent events
// (closed when the job reaches a terminal state or the subscriber is
// dropped), and a cancel function the caller must invoke when done.
// For a job already terminal the channel comes back closed.
func (m *Manager) Subscribe(id string) (snap Event, ch <-chan Event, cancel func(), ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, okk := m.jobs[id]
	if !okk {
		return Event{}, nil, nil, false
	}
	snap = m.stateEventLocked(t)
	c := make(chan Event, subCap(len(t.job.Items)))
	if t.job.State.Terminal() {
		close(c)
		return snap, c, func() {}, true
	}
	n := t.nextSub
	t.nextSub++
	t.subs[n] = c
	m.met.subscribers.Inc()
	cancel = func() {
		m.mu.Lock()
		if cur, live := t.subs[n]; live {
			delete(t.subs, n)
			close(cur)
			m.met.subscribers.Dec()
		}
		m.mu.Unlock()
	}
	return snap, c, cancel, true
}

// stateEventLocked builds a job-level event from current state.
// Caller holds m.mu.
func (m *Manager) stateEventLocked(t *tracked) Event {
	done, failed := t.job.Counts()
	return Event{
		Seq:        t.seq,
		Type:       "state",
		Job:        t.job.ID,
		State:      t.job.State,
		Error:      t.job.Error,
		Done:       done,
		Failed:     failed,
		Total:      len(t.job.Items),
		ETASeconds: m.etaLocked(t),
	}
}

// emitState broadcasts a job-level transition; terminal states also
// close every subscriber.
func (m *Manager) emitState(id string) {
	m.mu.Lock()
	t, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return
	}
	t.seq++
	ev := m.stateEventLocked(t)
	m.broadcastLocked(t, ev)
	if ev.Terminal() {
		for n, c := range t.subs {
			delete(t.subs, n)
			close(c)
			m.met.subscribers.Dec()
		}
	}
	m.mu.Unlock()
}

// emitItem broadcasts one finished item.
func (m *Manager) emitItem(id string, idx int) {
	m.mu.Lock()
	t, ok := m.jobs[id]
	if !ok || idx >= len(t.job.Items) {
		m.mu.Unlock()
		return
	}
	t.seq++
	it := t.job.Items[idx]
	done, failed := t.job.Counts()
	ev := Event{
		Seq:        t.seq,
		Type:       "item",
		Job:        t.job.ID,
		State:      t.job.State,
		Item:       it.ID,
		ItemStatus: it.Status,
		Error:      it.Error,
		Done:       done,
		Failed:     failed,
		Total:      len(t.job.Items),
		ETASeconds: m.etaLocked(t),
	}
	m.broadcastLocked(t, ev)
	m.mu.Unlock()
}

// broadcastLocked delivers ev to every subscriber without blocking: a
// subscriber whose buffer is full (it stopped reading) is dropped.
// Caller holds m.mu.
func (m *Manager) broadcastLocked(t *tracked, ev Event) {
	for n, c := range t.subs {
		select {
		case c <- ev:
		default:
			delete(t.subs, n)
			close(c)
			m.met.subscribers.Dec()
			m.cfg.Log.Warn("jobs: dropped slow event subscriber", "job", t.job.ID)
		}
	}
}
