package jobs

// Push delivery, half two: webhook callbacks. A job submitted with a
// webhook URL gets its terminal record POSTed there, with bounded
// retry and exponential backoff. Delivery state (delivered, attempt
// count) is part of the job record and checkpointed, so a crash
// between completion and delivery redelivers at the next boot —
// at-least-once, never silently zero times.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// WebhookConfig bounds terminal-state callback delivery.
type WebhookConfig struct {
	// Timeout bounds one delivery attempt. <= 0 defaults to 5s.
	Timeout time.Duration
	// Disabled turns webhook delivery off entirely (jobs still record
	// the URL; nothing is sent).
	Disabled bool
	// MaxAttempts bounds attempts per terminal transition. <= 0
	// defaults to 5.
	MaxAttempts int
	// Backoff is the first retry delay; it doubles per attempt, capped
	// at 30s. <= 0 defaults to 250ms.
	Backoff time.Duration
	// Client overrides the HTTP client (tests). Nil uses a plain
	// http.Client; per-attempt deadlines come from Timeout.
	Client *http.Client
}

func (c WebhookConfig) withDefaults() WebhookConfig {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// webhookPayload is what lands at the callback URL.
type webhookPayload struct {
	// Event is "job." + the terminal state, e.g. "job.done".
	Event string `json:"event"`
	Job   Job    `json:"job"`
}

// deliverAsync runs one delivery loop in the background, tracked so
// Close/Kill wait for in-flight deliveries (their contexts end with
// the manager's).
func (m *Manager) deliverAsync(j Job) {
	if m.cfg.Webhook.Disabled || j.Spec.Webhook == "" {
		return
	}
	m.whWG.Add(1)
	go func() {
		defer m.whWG.Done()
		m.deliver(j)
	}()
}

// deliver POSTs the job's terminal record, retrying with exponential
// backoff up to MaxAttempts. Success is any 2xx.
func (m *Manager) deliver(j Job) {
	body, err := json.Marshal(webhookPayload{Event: "job." + string(j.State), Job: j})
	if err != nil {
		m.cfg.Log.Error("jobs: webhook payload marshal", "job", j.ID, "error", err.Error())
		return
	}
	wh := m.cfg.Webhook
	backoff := wh.Backoff
	attempts := 0
	var lastErr error
	for attempts < wh.MaxAttempts {
		if m.ctx.Err() != nil {
			break // shutdown; redelivery happens at next boot
		}
		attempts++
		err := m.post(j.Spec.Webhook, body, wh)
		lastErr = err
		if err == nil {
			m.met.webhooks.With("ok").Inc()
			m.recordDelivery(j.ID, attempts, true)
			return
		}
		m.cfg.Log.Warn("jobs: webhook delivery failed",
			"job", j.ID, "attempt", attempts, "error", err.Error())
		if attempts < wh.MaxAttempts {
			m.met.webhooks.With("retry").Inc()
			t := time.NewTimer(backoff)
			select {
			case <-m.ctx.Done():
				t.Stop()
			case <-t.C:
			}
			if backoff *= 2; backoff > 30*time.Second {
				backoff = 30 * time.Second
			}
		}
	}
	m.met.webhooks.With("failed").Inc()
	m.recordDelivery(j.ID, attempts, false)
	// Exhausted (as opposed to interrupted by shutdown, which redelivers
	// at next boot): surface the terminal loss to whoever is listening.
	if attempts >= wh.MaxAttempts && m.cfg.OnWebhookExhausted != nil {
		m.cfg.OnWebhookExhausted(j.ID, j.Spec.Webhook, attempts, lastErr)
	}
}

// post runs one delivery attempt under its own deadline.
func (m *Manager) post(url string, body []byte, wh WebhookConfig) error {
	ctx, cancel := context.WithTimeout(m.ctx, wh.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("User-Agent", "spec17d-webhook/1")
	resp, err := wh.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// recordDelivery persists the delivery outcome on the job record.
func (m *Manager) recordDelivery(id string, attempts int, ok bool) {
	m.mu.Lock()
	if t, live := m.jobs[id]; live {
		t.job.WebhookAttempts += attempts
		t.job.WebhookDelivered = ok
	}
	m.mu.Unlock()
	m.checkpoint()
}
