// Package jobs is the durable async-job subsystem of the
// characterization service: fire-and-forget experiment sweeps that
// outlive the connection that submitted them — and the process that
// accepted them.
//
// A Job is one sweep (experiments × run options × engine tier). The
// Manager executes jobs through a caller-supplied Runner — the server
// wires it to the ordinary fetch path, so every measurement flows
// through the shared scheduler under the admission cost model and
// results park in the measurement store under their normal keys. The
// manager itself only tracks *state*: which items are done, which are
// pending, and who wants to hear about it.
//
// Durability follows the measurement store's snapshot discipline
// (store.AtomicWriteFile): job state is checkpointed after every item
// completion and state transition, so a crash loses at most the items
// in flight. On restart, Load reverts interrupted jobs to pending and
// Start re-enqueues them; completed items are never re-run (and their
// results are warm in the store anyway), so a resumed sweep completes
// bit-identically to an uninterrupted one.
//
// Completion is pushed, not polled: per-job subscribers receive Events
// (served as SSE by the server), and jobs carrying a webhook URL get a
// terminal-state callback with bounded retry/backoff. See docs/JOBS.md.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Submission and lifecycle errors.
var (
	// ErrTooManyJobs is returned by Submit when the retained-job bound
	// is reached and no terminal job can be evicted to make room.
	ErrTooManyJobs = errors.New("jobs: too many jobs; retry after some finish")
	// ErrClosed is returned by Submit once the manager has shut down.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrUnknownJob is returned for operations on an id the manager
	// does not hold.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// State is a job's lifecycle state.
type State string

// The job states. Pending covers both never-started and
// interrupted-and-awaiting-resume jobs.
const (
	StatePending   State = "pending"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ItemStatus is one sweep item's status.
type ItemStatus string

// The item statuses.
const (
	ItemPending ItemStatus = "pending"
	ItemRunning ItemStatus = "running"
	ItemDone    ItemStatus = "done"
	ItemError   ItemStatus = "error"
)

// Spec is one submitted sweep. The server validates experiment ids,
// options, and the engine tier before submission; the manager treats
// them as opaque.
type Spec struct {
	// Experiments lists the sweep's experiment ids, already expanded
	// and deduplicated.
	Experiments []string `json:"experiments"`
	// Instructions and Warmup are the run options, as on /v1/batch.
	Instructions int `json:"instructions,omitempty"`
	Warmup       int `json:"warmup,omitempty"`
	// Engine is the requested measurement tier (exact, analytic, or
	// auto); empty means the server default at execution time.
	Engine string `json:"engine,omitempty"`
	// Concurrency caps how many of the job's items run at once
	// (default 1: background sweeps trickle through the pool).
	Concurrency int `json:"concurrency,omitempty"`
	// Webhook, when set, is POSTed the job's terminal state.
	Webhook string `json:"webhook,omitempty"`
	// Client is the submitter's admission identity; item execution is
	// charged against it so a background sweep spends the same budget
	// the submitter's interactive traffic would.
	Client string `json:"client,omitempty"`
}

// Item is one (experiment) unit of a sweep and its progress.
type Item struct {
	ID        string     `json:"id"`
	Status    ItemStatus `json:"status"`
	Error     string     `json:"error,omitempty"`
	ElapsedMS int64      `json:"elapsed_ms,omitempty"`
}

// Job is one sweep's full record — exactly what the snapshot persists
// and GET /v1/jobs/{id} serves.
type Job struct {
	ID       string     `json:"id"`
	Spec     Spec       `json:"spec"`
	State    State      `json:"state"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Items    []Item     `json:"items"`
	// ETASeconds estimates the time to completion for a non-terminal
	// job: observed mean item time once items have finished, the
	// configured cost-model prior before that. Computed at read time,
	// never persisted meaningfully; 0 means no estimate.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	// Resumed marks a job that survived at least one restart.
	Resumed bool `json:"resumed,omitempty"`
	// WebhookDelivered and WebhookAttempts track push delivery.
	WebhookDelivered bool `json:"webhook_delivered,omitempty"`
	WebhookAttempts  int  `json:"webhook_attempts,omitempty"`
}

// Counts returns how many items are terminal and how many of those
// failed.
func (j *Job) Counts() (done, failed int) {
	for _, it := range j.Items {
		switch it.Status {
		case ItemDone:
			done++
		case ItemError:
			done++
			failed++
		}
	}
	return done, failed
}

// clone deep-copies the job so callers never alias manager-owned
// state. Timestamps are never mutated after being set, so sharing the
// pointers is safe.
func (j *Job) clone() Job {
	c := *j
	c.Spec.Experiments = append([]string(nil), j.Spec.Experiments...)
	c.Items = append([]Item(nil), j.Items...)
	return c
}

// viewLocked is the externally served form of a job: a clone with the
// read-time ETA filled in. Caller holds m.mu.
func (m *Manager) viewLocked(t *tracked) Job {
	j := t.job.clone()
	j.ETASeconds = m.etaLocked(t)
	return j
}

// etaLocked estimates a non-terminal job's seconds to completion:
// per-item time (observed mean over finished items when there are
// any, the cost-model prior otherwise) times the remaining item
// waves at the job's concurrency. Caller holds m.mu.
func (m *Manager) etaLocked(t *tracked) float64 {
	if t.job.State.Terminal() {
		return 0
	}
	finished := 0
	var sumMS int64
	for _, it := range t.job.Items {
		if it.Status == ItemDone || it.Status == ItemError {
			finished++
			sumMS += it.ElapsedMS
		}
	}
	remaining := len(t.job.Items) - finished
	if remaining == 0 {
		return 0
	}
	var per float64
	if finished > 0 {
		per = float64(sumMS) / float64(finished) / 1000
	} else if m.cfg.EstimateItemSeconds != nil {
		per = m.cfg.EstimateItemSeconds(t.job.Spec)
	}
	if per <= 0 {
		return 0
	}
	conc := t.job.Spec.Concurrency
	if conc < 1 {
		conc = 1
	}
	return per * math.Ceil(float64(remaining)/float64(conc))
}

// Runner executes one item of one job: measure item (an experiment
// id) under the job's spec and park the result wherever results live.
// The context is the job run's; it is canceled on job cancellation and
// manager shutdown. Runners must be safe for concurrent use.
type Runner func(ctx context.Context, job Job, item string) error

// Config configures a Manager.
type Config struct {
	// Path is the job-state snapshot file; empty runs memory-only
	// (jobs then do not survive restarts).
	Path string
	// MaxJobs bounds retained jobs (running and finished). At the
	// bound, Submit evicts the oldest terminal job; with nothing
	// evictable it fails with ErrTooManyJobs. Defaults to 256.
	MaxJobs int
	// MaxRunning bounds concurrently executing jobs. Defaults to 2.
	MaxRunning int
	// Runner executes items. Required.
	Runner Runner
	// OnJobStart, when set, wraps one job execution: it receives the
	// job's run context and may return a derived context plus a finish
	// callback invoked with the job's final state. The server uses it
	// to put a job-root span tree around the whole sweep.
	OnJobStart func(ctx context.Context, j Job) (context.Context, func(final State))
	// EstimateItemSeconds, when set, predicts one item's execution time
	// in seconds from the sweep spec — the ETA prior used until real
	// item completions provide an observed rate. The server derives it
	// from the admission cost model. Nil disables model-based ETAs.
	EstimateItemSeconds func(spec Spec) float64
	// Webhook configures push delivery of terminal states.
	Webhook WebhookConfig
	// OnWebhookExhausted, when set, is invoked (from the delivery
	// goroutine) when a job's webhook delivery runs out of retry
	// attempts — the point where at-least-once delivery has, for this
	// process lifetime, become zero times. The insight plane hooks this
	// to surface the loss as a typed operator event.
	OnWebhookExhausted func(jobID, url string, attempts int, lastErr error)
	// Metrics receives the spec17d_jobs_* instruments. Nil uses a
	// private registry.
	Metrics *metrics.Registry
	// Log receives lifecycle and delivery warnings. Defaults to an
	// info-level logger on stderr.
	Log *telemetry.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 2
	}
	c.Webhook = c.Webhook.withDefaults()
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.Log == nil {
		c.Log = telemetry.NewLogger(os.Stderr, telemetry.LevelInfo)
	}
	return c
}

type jobMetrics struct {
	submitted   *metrics.Counter
	finished    *metrics.CounterVec // state
	running     *metrics.Gauge
	items       *metrics.CounterVec // status
	webhooks    *metrics.CounterVec // status
	resumed     *metrics.Counter
	checkpoints *metrics.Counter
	subscribers *metrics.Gauge
}

func newJobMetrics(r *metrics.Registry) jobMetrics {
	return jobMetrics{
		submitted: r.Counter("spec17d_jobs_submitted_total",
			"Async jobs accepted by POST /v1/jobs."),
		finished: r.CounterVec("spec17d_jobs_finished_total",
			"Async jobs reaching a terminal state, by state (done, failed, cancelled).",
			"state"),
		running: r.Gauge("spec17d_jobs_running",
			"Async jobs currently executing."),
		items: r.CounterVec("spec17d_jobs_items_total",
			"Job sweep items finished, by status (done, error).",
			"status"),
		webhooks: r.CounterVec("spec17d_jobs_webhook_deliveries_total",
			"Webhook delivery outcomes, by status (ok, retry, failed).",
			"status"),
		resumed: r.Counter("spec17d_jobs_resumed_total",
			"Interrupted jobs re-enqueued from the snapshot at boot."),
		checkpoints: r.Counter("spec17d_jobs_checkpoints_total",
			"Job-state snapshot writes."),
		subscribers: r.Gauge("spec17d_jobs_subscribers",
			"Live job-event subscribers (SSE streams)."),
	}
}

// tracked is one job plus its runtime-only state.
type tracked struct {
	job Job
	// seq numbers this job's events; subs receive them live.
	seq     int
	subs    map[int]chan Event
	nextSub int
	// cancel aborts the job's run context; non-nil only while running.
	cancel context.CancelFunc
}

// Manager owns every job. Create with New, then Start; the zero value
// is not usable.
type Manager struct {
	cfg Config
	met jobMetrics

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan string
	wg     sync.WaitGroup // job workers
	whWG   sync.WaitGroup // webhook deliveries

	startOnce sync.Once
	stopOnce  sync.Once
	killed    atomic.Bool

	mu    sync.Mutex
	jobs  map[string]*tracked
	order []string // submission order, for listing and eviction

	// ckptMu serializes snapshot writes so a slow write can never be
	// overtaken (and clobbered) by a newer one.
	ckptMu sync.Mutex
}

// New returns a Manager, loading the snapshot at cfg.Path when one
// exists. Like store.Open, New never fails operationally: a defective
// snapshot is discarded (jobs are lost, measurements are not — they
// live in the measurement store) and the returned error describes why.
// Call Start to begin executing; jobs submitted before Start queue up.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Runner == nil {
		panic("jobs: Config.Runner is required")
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:    cfg,
		met:    newJobMetrics(cfg.Metrics),
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan string, 2*cfg.MaxJobs+16),
		jobs:   make(map[string]*tracked),
	}
	var err error
	if cfg.Path != "" {
		err = m.load()
		if err != nil {
			err = fmt.Errorf("jobs: snapshot %s discarded: %w", cfg.Path, err)
		}
	}
	return m, err
}

// Start launches the job workers and re-enqueues resumed pending
// jobs. Idempotent.
func (m *Manager) Start() {
	m.startOnce.Do(func() {
		m.mu.Lock()
		var resumed []string
		var redeliver []Job
		for _, id := range m.order {
			t := m.jobs[id]
			if t.job.State == StatePending && t.job.Resumed {
				resumed = append(resumed, id)
			}
			if t.job.State.Terminal() && t.job.Spec.Webhook != "" && !t.job.WebhookDelivered {
				redeliver = append(redeliver, t.job.clone())
			}
		}
		m.mu.Unlock()
		for _, id := range resumed {
			m.met.resumed.Inc()
			m.enqueue(id)
		}
		// Terminal jobs whose webhook never landed (crash between
		// completion and delivery) get their push retried.
		for _, j := range redeliver {
			m.deliverAsync(j)
		}
		for i := 0; i < m.cfg.MaxRunning; i++ {
			m.wg.Add(1)
			go m.worker()
		}
	})
}

// Submit accepts one sweep and queues it for execution, returning the
// job record (state pending).
func (m *Manager) Submit(spec Spec) (Job, error) {
	if len(spec.Experiments) == 0 {
		return Job{}, errors.New("jobs: sweep lists no experiments")
	}
	if spec.Concurrency < 1 {
		spec.Concurrency = 1
	}
	if m.ctx.Err() != nil {
		return Job{}, ErrClosed
	}
	j := Job{
		ID:      newID(),
		Spec:    spec,
		State:   StatePending,
		Created: time.Now(),
		Items:   make([]Item, len(spec.Experiments)),
	}
	for i, id := range spec.Experiments {
		j.Items[i] = Item{ID: id, Status: ItemPending}
	}

	m.mu.Lock()
	if len(m.jobs) >= m.cfg.MaxJobs && !m.evictLocked() {
		m.mu.Unlock()
		return Job{}, ErrTooManyJobs
	}
	t := &tracked{job: j, subs: make(map[int]chan Event)}
	m.jobs[j.ID] = t
	m.order = append(m.order, j.ID)
	// Clone before releasing the lock: the tracked record shares the
	// local j's Items array, and a worker may start mutating it the
	// moment the job is enqueued.
	out := m.viewLocked(t)
	m.mu.Unlock()

	m.met.submitted.Inc()
	m.checkpoint()
	m.enqueue(j.ID)
	return out, nil
}

// evictLocked drops the oldest terminal job to make room, reporting
// whether it could. Caller holds m.mu.
func (m *Manager) evictLocked() bool {
	for i, id := range m.order {
		if t := m.jobs[id]; t != nil && t.job.State.Terminal() {
			delete(m.jobs, id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			return true
		}
	}
	return false
}

func (m *Manager) enqueue(id string) {
	select {
	case m.queue <- id:
	default:
		// The queue is sized past MaxJobs, so this is unreachable in
		// practice; losing an enqueue would strand the job pending, so
		// fail loudly instead.
		m.cfg.Log.Error("jobs: queue overflow", "job", id)
	}
}

// Get returns a copy of the job.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return m.viewLocked(t), true
}

// List returns copies of every retained job, newest first.
func (m *Manager) List() []Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Job, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		out = append(out, m.viewLocked(m.jobs[m.order[i]]))
	}
	return out
}

// Stats is a point-in-time census for /v1/status.
type Stats struct {
	Total     int `json:"total"`
	Pending   int `json:"pending"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed,omitempty"`
	Cancelled int `json:"cancelled,omitempty"`
}

// Stats counts retained jobs by state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Total: len(m.jobs)}
	for _, t := range m.jobs {
		switch t.job.State {
		case StatePending:
			st.Pending++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Cancel moves a job to cancelled. Running items are interrupted (and
// revert to pending — a cancelled job's record shows exactly what
// completed); cancelling a terminal job is a no-op. The returned Job
// reflects the state after the call.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	t, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Job{}, ErrUnknownJob
	}
	if t.job.State.Terminal() {
		j := t.job.clone()
		m.mu.Unlock()
		return j, nil
	}
	wasRunning := t.job.State == StateRunning
	now := time.Now()
	t.job.State = StateCancelled
	t.job.Finished = &now
	cancel := t.cancel
	j := t.job.clone()
	m.mu.Unlock()

	if wasRunning && cancel != nil {
		// runJob's finalize path emits the terminal event, checkpoints,
		// and triggers the webhook once the item goroutines unwind.
		cancel()
		return j, nil
	}
	m.met.finished.With(string(StateCancelled)).Inc()
	m.emitState(id)
	m.checkpoint()
	if j.Spec.Webhook != "" {
		m.deliverAsync(j)
	}
	return j, nil
}

// worker executes queued jobs until shutdown.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case id := <-m.queue:
			m.runJob(id)
		}
	}
}

// runJob executes one job: items in spec order, at most
// Spec.Concurrency in flight, each through cfg.Runner. Every item
// completion is an event and a checkpoint; the terminal transition
// additionally fires the webhook.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	t, ok := m.jobs[id]
	if !ok || t.job.State != StatePending {
		m.mu.Unlock()
		return // cancelled (or evicted) while queued
	}
	now := time.Now()
	t.job.State = StateRunning
	t.job.Started = &now
	jctx, cancel := context.WithCancel(m.ctx)
	t.cancel = cancel
	job := t.job.clone()
	m.mu.Unlock()
	defer cancel()

	m.met.running.Inc()
	defer m.met.running.Dec()
	m.emitState(id)
	m.checkpoint()

	ctx := jctx
	finish := func(State) {}
	if m.cfg.OnJobStart != nil {
		ctx, finish = m.cfg.OnJobStart(jctx, job)
	}

	sem := make(chan struct{}, job.Spec.Concurrency)
	var iwg sync.WaitGroup
	for i := range job.Items {
		if job.Items[i].Status != ItemPending {
			continue // resumed job: already measured before the restart
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		m.mu.Lock()
		t.job.Items[i].Status = ItemRunning
		m.mu.Unlock()
		iwg.Add(1)
		go func(i int, itemID string) {
			defer iwg.Done()
			defer func() { <-sem }()
			start := time.Now()
			err := m.cfg.Runner(ctx, job, itemID)
			interrupted := ctx.Err() != nil && err != nil
			m.mu.Lock()
			it := &t.job.Items[i]
			switch {
			case interrupted:
				// Shutdown or cancellation, not an item failure: the
				// item reverts to pending so a resume re-measures it.
				it.Status = ItemPending
			case err != nil:
				it.Status = ItemError
				it.Error = err.Error()
				it.ElapsedMS = time.Since(start).Milliseconds()
			default:
				it.Status = ItemDone
				it.ElapsedMS = time.Since(start).Milliseconds()
			}
			m.mu.Unlock()
			if !interrupted {
				m.met.items.With(map[bool]string{true: "error", false: "done"}[err != nil]).Inc()
				m.emitItem(id, i)
				m.checkpoint()
			}
		}(i, job.Items[i].ID)
	}
	iwg.Wait()

	m.mu.Lock()
	t.cancel = nil
	if t.job.State == StateCancelled {
		j := t.job.clone()
		m.mu.Unlock()
		m.met.finished.With(string(StateCancelled)).Inc()
		m.emitState(id)
		m.checkpoint()
		finish(StateCancelled)
		if j.Spec.Webhook != "" {
			m.deliverAsync(j)
		}
		return
	}
	if m.ctx.Err() != nil {
		// Shutdown mid-run: revert to pending so the next boot (or
		// nobody, on Kill without a snapshot) resumes from the
		// checkpoint. Items already reverted above.
		t.job.State = StatePending
		t.job.Started = nil
		m.mu.Unlock()
		finish(StatePending)
		return
	}
	done, failed := t.job.Counts()
	final := StateDone
	if len(t.job.Items) > 0 && failed == len(t.job.Items) {
		final = StateFailed
		t.job.Error = "every item failed"
	}
	fin := time.Now()
	t.job.State = final
	t.job.Finished = &fin
	_ = done
	j := t.job.clone()
	m.mu.Unlock()

	m.met.finished.With(string(final)).Inc()
	m.emitState(id)
	m.checkpoint()
	finish(final)
	if j.Spec.Webhook != "" {
		m.deliverAsync(j)
	}
}

// Close shuts the manager down gracefully: running items are
// interrupted, interrupted jobs revert to pending, and a final
// checkpoint records that state so the next boot resumes them. Blocks
// until workers and webhook deliveries exit.
func (m *Manager) Close() {
	m.stopOnce.Do(func() {
		m.cancel()
		m.wg.Wait()
		m.whWG.Wait()
		m.checkpoint()
	})
}

// Kill is the SIGKILL-shaped shutdown: like Close but without the
// final checkpoint — on-disk state is whatever the last per-item
// checkpoint wrote, exactly as if the process had died. Used when a
// forced shutdown must not block on IO, and by crash-resume tests.
func (m *Manager) Kill() {
	m.killed.Store(true)
	m.stopOnce.Do(func() {
		m.cancel()
		m.wg.Wait()
		m.whWG.Wait()
	})
}

// newID returns a fresh 16-hex-char job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to a
		// time-derived id rather than refusing service.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
