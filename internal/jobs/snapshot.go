package jobs

// Durability: job state rides the same snapshot discipline as the
// measurement store — a versioned JSON document replaced atomically
// (write-temp, fsync, rename) via store.AtomicWriteFile, so the file
// on disk is always a complete, parseable checkpoint no matter where
// the process died. Checkpoints are cheap relative to measurement
// (one MaxJobs-bounded document per item completion), so the manager
// writes one after every transition rather than batching on a timer.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/store"
)

// snapshotVersion gates snapshot compatibility; a mismatch discards
// the file (jobs are re-submittable; measurements live elsewhere).
const snapshotVersion = 1

type snapshotFile struct {
	Version int   `json:"version"`
	Jobs    []Job `json:"jobs"`
}

// checkpoint writes the full job table. Serialized by ckptMu so a
// slower older write can never land after (and clobber) a newer one.
func (m *Manager) checkpoint() {
	if m.cfg.Path == "" {
		return
	}
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()

	m.mu.Lock()
	snap := snapshotFile{Version: snapshotVersion, Jobs: make([]Job, 0, len(m.order))}
	for _, id := range m.order {
		snap.Jobs = append(snap.Jobs, m.jobs[id].job.clone())
	}
	m.mu.Unlock()

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		m.cfg.Log.Error("jobs: checkpoint marshal", "error", err.Error())
		return
	}
	if err := store.AtomicWriteFile(m.cfg.Path, data); err != nil {
		m.cfg.Log.Error("jobs: checkpoint write", "path", m.cfg.Path, "error", err.Error())
		return
	}
	m.met.checkpoints.Inc()
}

// load restores the job table from cfg.Path. Jobs interrupted mid-run
// (state running, or items left running) revert to pending so Start
// re-enqueues them; completed items keep their status and are not
// re-measured. Missing file is a clean first boot.
func (m *Manager) load() error {
	data, err := os.ReadFile(m.cfg.Path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if snap.Version != snapshotVersion {
		return fmt.Errorf("version %d, want %d", snap.Version, snapshotVersion)
	}
	for i := range snap.Jobs {
		j := snap.Jobs[i]
		if j.ID == "" || len(j.Items) == 0 {
			continue // defensive: skip malformed entries
		}
		if _, dup := m.jobs[j.ID]; dup {
			continue
		}
		if !j.State.Terminal() {
			j.State = StatePending
			j.Started = nil
			j.Resumed = true
			for k := range j.Items {
				if j.Items[k].Status == ItemRunning {
					j.Items[k].Status = ItemPending
				}
			}
		}
		m.jobs[j.ID] = &tracked{job: j, subs: make(map[int]chan Event)}
		m.order = append(m.order, j.ID)
	}
	return nil
}
