package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// quietCfg returns a Config with a no-op logger and the given runner.
func quietCfg(r Runner) Config {
	return Config{
		Runner: r,
		Log:    telemetry.NewLogger(io.Discard, telemetry.LevelError),
	}
}

// okRunner completes every item instantly.
func okRunner(context.Context, Job, string) error { return nil }

func waitState(t *testing.T, m *Manager, id string, want ...State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		for _, s := range want {
			if j.State == s {
				return j
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want one of %v", id, j.State, want)
	return Job{}
}

func TestJobLifecycleAndEvents(t *testing.T) {
	var calls atomic.Int32
	cfg := quietCfg(func(ctx context.Context, j Job, item string) error {
		calls.Add(1)
		if item == "bad" {
			return errors.New("synthetic failure")
		}
		return nil
	})
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	j, err := m.Submit(Spec{Experiments: []string{"a", "bad", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StatePending || len(j.Items) != 3 {
		t.Fatalf("submitted job = %+v", j)
	}

	// Subscribe before Start so every event is observed.
	snap, ch, cancel, ok := m.Subscribe(j.ID)
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer cancel()
	if snap.Type != "state" || snap.State != StatePending || snap.Total != 3 {
		t.Fatalf("snapshot event = %+v", snap)
	}

	m.Start()
	var events []Event
	for ev := range ch {
		events = append(events, ev)
		if ev.Terminal() {
			break
		}
	}
	last := events[len(events)-1]
	if !last.Terminal() || last.State != StateDone {
		t.Fatalf("terminal event = %+v", last)
	}
	if last.Done != 3 || last.Failed != 1 || last.Total != 3 {
		t.Fatalf("terminal progress = %+v", last)
	}
	items := 0
	for _, ev := range events {
		if ev.Type == "item" {
			items++
		}
	}
	if items != 3 {
		t.Fatalf("saw %d item events, want 3 (events: %+v)", items, events)
	}

	got := waitState(t, m, j.ID, StateDone)
	if got.Error != "" {
		t.Fatalf("mixed-result job recorded error %q", got.Error)
	}
	done, failed := got.Counts()
	if done != 3 || failed != 1 {
		t.Fatalf("counts = %d done, %d failed", done, failed)
	}
	if calls.Load() != 3 {
		t.Fatalf("runner called %d times, want 3", calls.Load())
	}
}

func TestAllItemsFailedMeansFailed(t *testing.T) {
	m, err := New(quietCfg(func(context.Context, Job, string) error {
		return errors.New("boom")
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start()
	j, err := m.Submit(Spec{Experiments: []string{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, StateFailed)
	if got.Error == "" {
		t.Error("failed job carries no error")
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	var once sync.Once
	m, err := New(quietCfg(func(ctx context.Context, j Job, item string) error {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return ctx.Err()
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start()
	j, err := m.Submit(Spec{Experiments: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	_, ch, cancelSub, ok := m.Subscribe(j.ID)
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer cancelSub()
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	// The terminal event fires only after the item goroutines unwind,
	// so the record is settled once it arrives.
	for ev := range ch {
		if ev.Terminal() {
			break
		}
	}
	got := waitState(t, m, j.ID, StateCancelled)
	// Interrupted items revert to pending: the record shows nothing
	// falsely completed.
	for _, it := range got.Items {
		if it.Status == ItemRunning || it.Status == ItemDone {
			t.Errorf("cancelled job item %s status %s", it.ID, it.Status)
		}
	}
	// Cancelling again is a no-op.
	if again, err := m.Cancel(j.ID); err != nil || again.State != StateCancelled {
		t.Errorf("re-cancel: %+v, %v", again, err)
	}
	// Cancelling an unknown id is an error.
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("unknown cancel err = %v", err)
	}
}

func TestCancelPendingJobBeforeStart(t *testing.T) {
	m, err := New(quietCfg(okRunner))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, err := m.Submit(Spec{Experiments: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := m.Cancel(j.ID); err != nil || got.State != StateCancelled {
		t.Fatalf("cancel pending: %+v, %v", got, err)
	}
	m.Start()
	// The queued id must not resurrect the job.
	time.Sleep(20 * time.Millisecond)
	if got, _ := m.Get(j.ID); got.State != StateCancelled {
		t.Fatalf("cancelled job restarted: %s", got.State)
	}
}

// TestCrashResume is the package-level half of the crash-resume
// guarantee: a manager killed mid-sweep (no graceful checkpoint)
// reloads from the last per-item checkpoint, re-runs only what had
// not completed, and finishes the job.
func TestCrashResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")

	blockC := make(chan struct{})
	var phase1 []string
	var mu sync.Mutex
	cfg1 := quietCfg(func(ctx context.Context, j Job, item string) error {
		if item == "c" {
			close(blockC)
			<-ctx.Done()
			return ctx.Err()
		}
		mu.Lock()
		phase1 = append(phase1, item)
		mu.Unlock()
		return nil
	})
	cfg1.Path = path
	m1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	j, err := m1.Submit(Spec{Experiments: []string{"a", "b", "c", "d"}, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-blockC // a and b are done (concurrency 1, in order), c in flight
	m1.Kill()

	mu.Lock()
	ran1 := append([]string(nil), phase1...)
	mu.Unlock()
	if len(ran1) != 2 {
		t.Fatalf("phase 1 completed %v, want [a b]", ran1)
	}

	var phase2 []string
	cfg2 := quietCfg(func(ctx context.Context, jb Job, item string) error {
		mu.Lock()
		phase2 = append(phase2, item)
		mu.Unlock()
		return nil
	})
	cfg2.Path = path
	m2, err := New(cfg2)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	defer m2.Close()

	got, ok := m2.Get(j.ID)
	if !ok {
		t.Fatal("job lost across restart")
	}
	if got.State != StatePending || !got.Resumed {
		t.Fatalf("reloaded job state = %s resumed=%v", got.State, got.Resumed)
	}
	if got.Items[0].Status != ItemDone || got.Items[1].Status != ItemDone {
		t.Fatalf("completed items lost: %+v", got.Items)
	}

	m2.Start()
	waitState(t, m2, j.ID, StateDone)
	mu.Lock()
	defer mu.Unlock()
	if len(phase2) != 2 || phase2[0] != "c" || phase2[1] != "d" {
		t.Fatalf("resume re-ran %v, want [c d]", phase2)
	}
}

func TestSnapshotDiscardedOnCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := quietCfg(okRunner)
	cfg.Path = path
	m, err := New(cfg)
	if err == nil {
		t.Error("corrupt snapshot loaded without advisory error")
	}
	if m == nil {
		t.Fatal("corrupt snapshot prevented startup")
	}
	defer m.Close()
	m.Start()
	if j, err := m.Submit(Spec{Experiments: []string{"a"}}); err != nil {
		t.Fatal(err)
	} else {
		waitState(t, m, j.ID, StateDone)
	}
}

func TestWebhookRetryThenDeliver(t *testing.T) {
	var hits atomic.Int32
	var gotBody atomic.Value
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		b, _ := io.ReadAll(r.Body)
		gotBody.Store(string(b))
	}))
	defer sink.Close()

	cfg := quietCfg(okRunner)
	cfg.Webhook = WebhookConfig{Backoff: time.Millisecond, MaxAttempts: 5}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start()
	j, err := m.Submit(Spec{Experiments: []string{"a"}, Webhook: sink.URL})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if got, _ := m.Get(j.ID); got.WebhookDelivered {
			if got.WebhookAttempts != 3 {
				t.Errorf("attempts = %d, want 3", got.WebhookAttempts)
			}
			body, _ := gotBody.Load().(string)
			for _, want := range []string{`"event":"job.done"`, j.ID} {
				if !strings.Contains(body, want) {
					t.Errorf("webhook body missing %q:\n%s", want, body)
				}
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("webhook never delivered")
}

func TestWebhookGivesUpAfterMaxAttempts(t *testing.T) {
	var hits atomic.Int32
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer sink.Close()

	cfg := quietCfg(okRunner)
	cfg.Webhook = WebhookConfig{Backoff: time.Millisecond, MaxAttempts: 2}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	j, err := m.Submit(Spec{Experiments: []string{"a"}, Webhook: sink.URL})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	// Wait for the delivery loop to exhaust its attempts before Close:
	// shutdown aborts a pending retry by design (redelivery happens at
	// the next boot), so closing early would end the loop at one attempt.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got, _ := m.Get(j.ID); got.WebhookAttempts == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("webhook attempts never recorded (got %d)", func() int { j, _ := m.Get(j.ID); return j.WebhookAttempts }())
		}
		time.Sleep(5 * time.Millisecond)
	}
	m.Close()
	if hits.Load() != 2 {
		t.Errorf("sink hit %d times, want 2", hits.Load())
	}
	if got, _ := m.Get(j.ID); got.WebhookDelivered || got.WebhookAttempts != 2 {
		t.Errorf("delivery record = delivered=%v attempts=%d", got.WebhookDelivered, got.WebhookAttempts)
	}
}

// TestRedeliverAfterRestart: a crash between job completion and
// webhook delivery redelivers at the next boot.
func TestRedeliverAfterRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")

	// Phase 1: job completes but every delivery attempt fails.
	cfg1 := quietCfg(okRunner)
	cfg1.Path = path
	cfg1.Webhook = WebhookConfig{Backoff: time.Millisecond, MaxAttempts: 1,
		Client: &http.Client{Transport: failingTransport{}}}
	m1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	m1.Start()
	j, err := m1.Submit(Spec{Experiments: []string{"a"}, Webhook: "http://unreachable.invalid/hook"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, j.ID, StateDone)
	m1.Close()

	// Phase 2: boot with a working sink; Start redelivers.
	delivered := make(chan struct{})
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(delivered)
	}))
	defer sink.Close()
	cfg2 := quietCfg(okRunner)
	cfg2.Path = path
	cfg2.Webhook = WebhookConfig{Backoff: time.Millisecond, MaxAttempts: 3,
		Client: rewriteClient(sink.URL)}
	m2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	m2.Start()
	select {
	case <-delivered:
	case <-time.After(10 * time.Second):
		t.Fatal("undelivered webhook not retried after restart")
	}
}

// failingTransport refuses every request without touching the network.
type failingTransport struct{}

func (failingTransport) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, errors.New("synthetic network failure")
}

// rewriteClient sends every request to base regardless of its URL.
func rewriteClient(base string) *http.Client {
	return &http.Client{Transport: roundTripFunc(func(r *http.Request) (*http.Response, error) {
		rewritten, err := http.NewRequestWithContext(r.Context(), r.Method, base, r.Body)
		if err != nil {
			return nil, err
		}
		rewritten.Header = r.Header
		return http.DefaultTransport.RoundTrip(rewritten)
	})}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestMaxJobsEviction(t *testing.T) {
	block := make(chan struct{})
	cfg := quietCfg(func(ctx context.Context, j Job, item string) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	cfg.MaxJobs = 1
	cfg.MaxRunning = 1
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start()
	j1, err := m.Submit(Spec{Experiments: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	// Table full with a non-terminal job: nothing evictable.
	if _, err := m.Submit(Spec{Experiments: []string{"b"}}); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("overflow submit err = %v, want ErrTooManyJobs", err)
	}
	close(block)
	waitState(t, m, j1.ID, StateDone)
	// Terminal jobs are evictable: the next submit displaces j1.
	j2, err := m.Submit(Spec{Experiments: []string{"c"}})
	if err != nil {
		t.Fatalf("submit after completion: %v", err)
	}
	if _, ok := m.Get(j1.ID); ok {
		t.Error("oldest terminal job not evicted")
	}
	waitState(t, m, j2.ID, StateDone)
}

func TestListNewestFirstAndStats(t *testing.T) {
	m, err := New(quietCfg(okRunner))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := m.Submit(Spec{Experiments: []string{fmt.Sprintf("e%d", i)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	l := m.List()
	if len(l) != 3 || l[0].ID != ids[2] || l[2].ID != ids[0] {
		t.Fatalf("List order = %v", []string{l[0].ID, l[1].ID, l[2].ID})
	}
	if st := m.Stats(); st.Total != 3 || st.Pending != 3 {
		t.Fatalf("stats = %+v", st)
	}
	m.Start()
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	if st := m.Stats(); st.Done != 3 {
		t.Fatalf("post-run stats = %+v", st)
	}
}

func TestSubmitValidationAndClose(t *testing.T) {
	m, err := New(quietCfg(okRunner))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Spec{}); err == nil {
		t.Error("empty sweep accepted")
	}
	m.Start()
	m.Close()
	if _, err := m.Submit(Spec{Experiments: []string{"a"}}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submit err = %v, want ErrClosed", err)
	}
	// Subscribe to a terminal-free unknown id.
	if _, _, _, ok := m.Subscribe("nope"); ok {
		t.Error("Subscribe to unknown job succeeded")
	}
}

func TestSubscribeToTerminalJobReplaysAndCloses(t *testing.T) {
	m, err := New(quietCfg(okRunner))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Start()
	j, err := m.Submit(Spec{Experiments: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, StateDone)
	snap, ch, cancel, ok := m.Subscribe(j.ID)
	if !ok {
		t.Fatal("Subscribe failed")
	}
	defer cancel()
	if !snap.Terminal() || snap.State != StateDone || snap.Done != 1 {
		t.Fatalf("terminal snapshot = %+v", snap)
	}
	if _, open := <-ch; open {
		t.Error("terminal job's event channel not closed")
	}
}
