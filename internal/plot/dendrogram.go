package plot

import (
	"fmt"
	"io"

	"repro/internal/cluster"
)

// DendrogramOptions configure a dendrogram rendering.
type DendrogramOptions struct {
	Title string
	// Width in pixels (height grows with the leaf count).
	Width int
	// RowHeight in pixels per leaf (default 18).
	RowHeight int
}

// Dendrogram renders a clustering tree as an SVG: leaves on the left,
// merges drawn at x positions proportional to their linkage height —
// the layout of the paper's Figures 2-4, 7, 8, and 13.
func Dendrogram(w io.Writer, d *cluster.Dendrogram, opts DendrogramOptions) error {
	if d == nil || d.Root == nil {
		return fmt.Errorf("plot: empty dendrogram")
	}
	if opts.Width <= 0 {
		opts.Width = 720
	}
	if opts.RowHeight <= 0 {
		opts.RowHeight = 18
	}
	leaves := d.Root.Leaves()
	n := len(leaves)
	labelW := 0
	for _, item := range leaves {
		if l := len(d.Labels[item]); l > labelW {
			labelW = l
		}
	}
	left := float64(labelW)*6.5 + 16
	top, rowH := 40.0, float64(opts.RowHeight)
	height := int(top) + n*opts.RowHeight + 40
	right := float64(opts.Width) - 16

	svg := newSVG(opts.Width, height)
	svg.text(float64(opts.Width)/2, 18, 14, "middle", "#000", opts.Title)

	maxH := d.Root.Height
	if maxH == 0 {
		maxH = 1
	}
	xAt := func(h float64) float64 { return left + h/maxH*(right-left) }

	// Leaf rows.
	rowOf := make(map[int]float64, n)
	for i, item := range leaves {
		y := top + float64(i)*rowH + rowH/2
		rowOf[item] = y
		svg.text(left-6, y+3, 10, "end", "#000", d.Labels[item])
	}

	// Recursive drawing: each node returns the y of its branch and the
	// x where its horizontal line currently ends.
	var draw func(nd *cluster.Node) (y, x float64)
	draw = func(nd *cluster.Node) (float64, float64) {
		if nd.IsLeaf() {
			return rowOf[nd.Item], left
		}
		y1, x1 := draw(nd.Left)
		y2, x2 := draw(nd.Right)
		mx := xAt(nd.Height)
		svg.line(x1, y1, mx, y1, "#1f77b4", 1.2)
		svg.line(x2, y2, mx, y2, "#1f77b4", 1.2)
		svg.line(mx, y1, mx, y2, "#1f77b4", 1.2)
		return (y1 + y2) / 2, mx
	}
	y, x := draw(d.Root)
	svg.line(x, y, right, y, "#1f77b4", 1.2)

	// Height axis along the bottom.
	axisY := top + float64(n)*rowH + 12
	svg.line(left, axisY, right, axisY, "#333", 1)
	for i := 0; i <= 4; i++ {
		h := maxH * float64(i) / 4
		px := xAt(h)
		svg.line(px, axisY, px, axisY+4, "#333", 1)
		svg.text(px, axisY+15, 9, "middle", "#333", trimFloat(h))
	}
	svg.text((left+right)/2, axisY+28, 11, "middle", "#000", "linkage distance")
	return svg.writeTo(w)
}
