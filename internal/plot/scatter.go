package plot

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// Series is one labelled point set in a scatter plot.
type Series struct {
	Name   string
	Points []stats.Point
	// Labels, when non-nil, annotates each point (len == len(Points)).
	Labels []string
	// Hull draws the series' convex hull as a shaded region, as in the
	// paper's Figure 11 coverage comparison.
	Hull bool
}

// ScatterOptions configure a scatter plot.
type ScatterOptions struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height in pixels (defaults 640x480).
	Width, Height int
	// PointLabels draws each point's label next to it.
	PointLabels bool
}

// Scatter renders one or more point series into an SVG document.
func Scatter(w io.Writer, series []Series, opts ScatterOptions) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	if opts.Width <= 0 {
		opts.Width = 640
	}
	if opts.Height <= 0 {
		opts.Height = 480
	}
	for _, s := range series {
		if s.Labels != nil && len(s.Labels) != len(s.Points) {
			return fmt.Errorf("plot: series %q has %d labels for %d points", s.Name, len(s.Labels), len(s.Points))
		}
	}

	minX, maxX, minY, maxY := bounds(series)
	svg := newSVG(opts.Width, opts.Height)
	svg.text(float64(opts.Width)/2, 18, 14, "middle", "#000", opts.Title)
	left, top := 56.0, 36.0
	right, bottom := float64(opts.Width)-16, float64(opts.Height)-44
	project := svg.axes(left, top, right, bottom, minX, maxX, minY, maxY, opts.XLabel, opts.YLabel)

	for i, s := range series {
		color := Color(i)
		if s.Hull && len(s.Points) >= 3 {
			hull := stats.ConvexHull(s.Points)
			var poly []point
			for _, p := range hull {
				x, y := project(p.X, p.Y)
				poly = append(poly, point{x, y})
			}
			svg.polygon(poly, color, color, 0.08)
		}
		for j, p := range s.Points {
			x, y := project(p.X, p.Y)
			svg.circle(x, y, 3, color)
			if opts.PointLabels && s.Labels != nil {
				svg.text(x+4, y-3, 8, "start", "#555", s.Labels[j])
			}
		}
		// Legend entry.
		ly := top + float64(i)*14
		svg.circle(right-120, ly, 4, color)
		svg.text(right-112, ly+3, 10, "start", "#000", s.Name)
	}
	return svg.writeTo(w)
}

func bounds(series []Series) (minX, maxX, minY, maxY float64) {
	first := true
	for _, s := range series {
		for _, p := range s.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
				continue
			}
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	// Pad 5% so points don't sit on the frame.
	dx, dy := (maxX-minX)*0.05, (maxY-minY)*0.05
	if dx == 0 {
		dx = 1
	}
	if dy == 0 {
		dy = 1
	}
	return minX - dx, maxX + dx, minY - dy, maxY + dy
}
