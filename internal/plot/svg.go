// Package plot renders the paper's figures as standalone SVG
// documents using only the standard library: scatter plots in PC space
// (Figures 9-12), dendrograms (Figures 2-4, 7, 8, 13), and stacked CPI
// bars (Figure 1). The SVGs are deterministic byte-for-byte for a
// given input.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette is a colour cycle chosen for adjacent-series contrast.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f", "#bcbd22", "#e377c2",
}

// Color returns the i-th palette colour (cycling).
func Color(i int) string { return palette[((i%len(palette))+len(palette))%len(palette)] }

// svgBuilder accumulates SVG elements with a fixed header/footer.
type svgBuilder struct {
	w, h int
	b    strings.Builder
}

func newSVG(w, h int) *svgBuilder {
	s := &svgBuilder{w: w, h: h}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&s.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return s
}

func (s *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&s.b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (s *svgBuilder) circle(cx, cy, r float64, fill string) {
	fmt.Fprintf(&s.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", cx, cy, r, fill)
}

func (s *svgBuilder) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&s.b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

func (s *svgBuilder) polygon(pts []point, stroke, fill string, opacity float64) {
	var coords []string
	for _, p := range pts {
		coords = append(coords, fmt.Sprintf("%.2f,%.2f", p.x, p.y))
	}
	fmt.Fprintf(&s.b, `<polygon points="%s" stroke="%s" fill="%s" fill-opacity="%.2f"/>`+"\n",
		strings.Join(coords, " "), stroke, fill, opacity)
}

// text writes an escaped label. anchor is "start", "middle", or "end".
func (s *svgBuilder) text(x, y float64, size int, anchor, fill, label string) {
	fmt.Fprintf(&s.b, `<text x="%.2f" y="%.2f" font-size="%d" font-family="sans-serif" text-anchor="%s" fill="%s">%s</text>`+"\n",
		x, y, size, anchor, fill, escape(label))
}

func (s *svgBuilder) writeTo(w io.Writer) error {
	s.b.WriteString("</svg>\n")
	_, err := io.WriteString(w, s.b.String())
	return err
}

func escape(in string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(in)
}

type point struct{ x, y float64 }

// axes draws a rectangular plot frame with tick labels and returns a
// mapping from data space to pixel space.
func (s *svgBuilder) axes(left, top, right, bottom float64,
	minX, maxX, minY, maxY float64, xLabel, yLabel string) func(x, y float64) (float64, float64) {
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Frame.
	s.line(left, top, left, bottom, "#333", 1)
	s.line(left, bottom, right, bottom, "#333", 1)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		px := left + (right-left)*float64(i)/4
		s.line(px, bottom, px, bottom+4, "#333", 1)
		s.text(px, bottom+16, 10, "middle", "#333", trimFloat(fx))

		fy := minY + (maxY-minY)*float64(i)/4
		py := bottom - (bottom-top)*float64(i)/4
		s.line(left-4, py, left, py, "#333", 1)
		s.text(left-6, py+3, 10, "end", "#333", trimFloat(fy))
	}
	s.text((left+right)/2, bottom+32, 12, "middle", "#000", xLabel)
	// Vertical axis label drawn horizontally above the axis to avoid
	// transforms.
	s.text(left, top-8, 12, "start", "#000", yLabel)
	return func(x, y float64) (float64, float64) {
		return left + (x-minX)/(maxX-minX)*(right-left),
			bottom - (y-minY)/(maxY-minY)*(bottom-top)
	}
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}
