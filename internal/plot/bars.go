package plot

import (
	"fmt"
	"io"

	"repro/internal/cpistack"
)

// StackedBar is one bar of a stacked bar chart (one benchmark's CPI
// stack in Figure 1).
type StackedBar struct {
	Label string
	Stack cpistack.Stack
}

// BarsOptions configure the stacked bar chart.
type BarsOptions struct {
	Title         string
	Width, Height int
}

// CPIBars renders Figure 1: one stacked vertical bar per benchmark,
// with the top-down CPI components coloured consistently and a legend.
func CPIBars(w io.Writer, bars []StackedBar, opts BarsOptions) error {
	if len(bars) == 0 {
		return fmt.Errorf("plot: no bars")
	}
	if opts.Width <= 0 {
		opts.Width = 960
	}
	if opts.Height <= 0 {
		opts.Height = 420
	}
	maxCPI := 0.0
	for _, b := range bars {
		if t := b.Stack.Total(); t > maxCPI {
			maxCPI = t
		}
	}
	if maxCPI == 0 {
		return fmt.Errorf("plot: all-zero CPI stacks")
	}

	svg := newSVG(opts.Width, opts.Height)
	svg.text(float64(opts.Width)/2, 18, 14, "middle", "#000", opts.Title)
	left, top := 48.0, 36.0
	bottom := float64(opts.Height) - 110 // room for rotated-ish labels
	right := float64(opts.Width) - 150   // room for the legend

	// Y axis with CPI ticks.
	svg.line(left, top, left, bottom, "#333", 1)
	for i := 0; i <= 4; i++ {
		v := maxCPI * float64(i) / 4
		y := bottom - (bottom-top)*float64(i)/4
		svg.line(left-4, y, left, y, "#333", 1)
		svg.text(left-6, y+3, 10, "end", "#333", trimFloat(v))
	}
	svg.text(left, top-8, 12, "start", "#000", "CPI")

	components := bars[0].Stack.Components()
	slot := (right - left) / float64(len(bars))
	barW := slot * 0.6
	for i, b := range bars {
		x := left + slot*float64(i) + slot*0.2
		y := bottom
		for ci, comp := range b.Stack.Components() {
			h := comp.Value / maxCPI * (bottom - top)
			if h <= 0 {
				continue
			}
			y -= h
			svg.rect(x, y, barW, h, Color(ci))
		}
		// Label under the bar; staggered to avoid overlap.
		ly := bottom + 14 + float64(i%3)*11
		svg.text(x+barW/2, ly, 8, "middle", "#333", b.Label)
	}

	// Legend.
	for ci, comp := range components {
		y := top + float64(ci)*16
		svg.rect(right+12, y-8, 10, 10, Color(ci))
		svg.text(right+26, y, 10, "start", "#000", comp.Label)
	}
	return svg.writeTo(w)
}
