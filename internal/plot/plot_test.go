package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cpistack"
	"repro/internal/stats"
)

// wellFormed parses the produced SVG as XML.
func wellFormed(t *testing.T, b []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(b))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, b[:min(len(b), 400)])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestScatterSVG(t *testing.T) {
	var buf bytes.Buffer
	err := Scatter(&buf, []Series{
		{
			Name:   "CPU2017",
			Points: []stats.Point{{X: 1, Y: 2}, {X: 3, Y: -1}, {X: -2, Y: 0.5}},
			Labels: []string{"a", "b", "c"},
			Hull:   true,
		},
		{
			Name:   "CPU2006",
			Points: []stats.Point{{X: 0, Y: 0}, {X: 1, Y: 1}},
		},
	}, ScatterOptions{Title: "PC1 vs PC2 <test>", XLabel: "PC1", YLabel: "PC2", PointLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	wellFormed(t, out)
	s := string(out)
	for _, want := range []string{"CPU2017", "CPU2006", "polygon", "circle", "PC1", "&lt;test&gt;"} {
		if !strings.Contains(s, want) {
			t.Errorf("scatter SVG missing %q", want)
		}
	}
}

func TestScatterErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Scatter(&buf, nil, ScatterOptions{}); err == nil {
		t.Fatal("no series must error")
	}
	err := Scatter(&buf, []Series{{
		Name: "x", Points: []stats.Point{{X: 1, Y: 1}}, Labels: []string{"a", "b"},
	}}, ScatterOptions{})
	if err == nil {
		t.Fatal("label/point mismatch must error")
	}
}

func TestScatterDegenerate(t *testing.T) {
	// A single point and identical coordinates must not divide by zero.
	var buf bytes.Buffer
	err := Scatter(&buf, []Series{{
		Name: "solo", Points: []stats.Point{{X: 5, Y: 5}},
	}}, ScatterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
}

func TestDendrogramSVG(t *testing.T) {
	pts := [][]float64{{0}, {0.1}, {5}, {5.2}, {20}}
	labels := []string{"a0", "a1", "b0", "b1", "<outlier>"}
	d, err := cluster.Cluster(pts, labels, cluster.Ward)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Dendrogram(&buf, d, DendrogramOptions{Title: "test dendrogram"}); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	wellFormed(t, out)
	s := string(out)
	for _, want := range []string{"a0", "b1", "&lt;outlier&gt;", "linkage distance"} {
		if !strings.Contains(s, want) {
			t.Errorf("dendrogram SVG missing %q", want)
		}
	}
}

func TestDendrogramErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Dendrogram(&buf, nil, DendrogramOptions{}); err == nil {
		t.Fatal("nil dendrogram must error")
	}
}

func TestDendrogramSingleLeaf(t *testing.T) {
	d, _ := cluster.Cluster([][]float64{{1}}, []string{"only"}, cluster.Ward)
	var buf bytes.Buffer
	if err := Dendrogram(&buf, d, DendrogramOptions{}); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if !strings.Contains(buf.String(), "only") {
		t.Fatal("single-leaf dendrogram missing its label")
	}
}

func TestCPIBarsSVG(t *testing.T) {
	bars := []StackedBar{
		{Label: "mcf", Stack: cpistack.Stack{Base: 0.25, Memory: 1.0, L3: 0.3}},
		{Label: "x264", Stack: cpistack.Stack{Base: 0.25, Deps: 0.1}},
	}
	var buf bytes.Buffer
	if err := CPIBars(&buf, bars, BarsOptions{Title: "Figure 1"}); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	wellFormed(t, out)
	s := string(out)
	for _, want := range []string{"mcf", "x264", "memory", "base", "CPI"} {
		if !strings.Contains(s, want) {
			t.Errorf("bars SVG missing %q", want)
		}
	}
}

func TestCPIBarsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := CPIBars(&buf, nil, BarsOptions{}); err == nil {
		t.Fatal("no bars must error")
	}
	if err := CPIBars(&buf, []StackedBar{{Label: "z"}}, BarsOptions{}); err == nil {
		t.Fatal("zero stacks must error")
	}
}

func TestDeterministicOutput(t *testing.T) {
	pts := []stats.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	var a, b bytes.Buffer
	opts := ScatterOptions{Title: "t"}
	if err := Scatter(&a, []Series{{Name: "s", Points: pts}}, opts); err != nil {
		t.Fatal(err)
	}
	if err := Scatter(&b, []Series{{Name: "s", Points: pts}}, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("SVG output must be deterministic")
	}
}

func TestColorCycle(t *testing.T) {
	if Color(0) == Color(1) {
		t.Fatal("adjacent colours must differ")
	}
	if Color(0) != Color(len(palette)) {
		t.Fatal("palette must cycle")
	}
	if Color(-1) != Color(len(palette)-1) {
		t.Fatal("negative indices must wrap")
	}
}
