// Package cpistack implements a top-down (Yasin-style) cycles-per-
// instruction accounting model. Given the event and miss counts
// measured by the cache/TLB/branch simulators plus a machine's latency
// parameters, it decomposes execution time into base issue cycles,
// front-end stalls (I-cache and branch mispredictions), back-end
// memory stalls per cache level, and an "other" component for
// dependency and resource stalls — reproducing the CPI stack of the
// paper's Figure 1 and the CPI column of Table I.
package cpistack

import "fmt"

// Penalties holds a machine's stall costs, in cycles.
type Penalties struct {
	// MispredictPenalty is the pipeline refill cost of a branch
	// misprediction.
	MispredictPenalty float64
	// L2HitLatency, L3HitLatency, MemLatency are the additional
	// latencies of hits in L2, L3, and memory (beyond L1).
	L2HitLatency, L3HitLatency, MemLatency float64
	// PageWalkLatency is the cost of a TLB miss requiring a walk.
	PageWalkLatency float64
	// MLP is the average memory-level parallelism: concurrent
	// outstanding misses that overlap their latencies. Must be >= 1.
	MLP float64
}

// Validate reports nonsensical parameters.
func (p Penalties) Validate() error {
	if p.MLP < 1 {
		return fmt.Errorf("cpistack: MLP %v must be >= 1", p.MLP)
	}
	for name, v := range map[string]float64{
		"MispredictPenalty": p.MispredictPenalty,
		"L2HitLatency":      p.L2HitLatency,
		"L3HitLatency":      p.L3HitLatency,
		"MemLatency":        p.MemLatency,
		"PageWalkLatency":   p.PageWalkLatency,
	} {
		if v < 0 {
			return fmt.Errorf("cpistack: %s %v must be >= 0", name, v)
		}
	}
	return nil
}

// Inputs are the per-run event counts feeding the model.
type Inputs struct {
	Instructions uint64

	// BaseCPI is the ideal steady-state CPI of the workload on this
	// core absent all miss events: max(1/issueWidth, 1/ILP). It
	// captures inter-instruction dependencies ("other" stalls beyond
	// the machine ideal are reported separately).
	BaseCPI float64
	// IdealCPI is 1/issueWidth, the machine's best case.
	IdealCPI float64

	Mispredicts uint64

	// Instruction-side misses that hit in each deeper level.
	L1IMissToL2, L2IMissToL3, L2IMissToMem uint64
	// Data-side misses by service level.
	L1DMissToL2, L2DMissToL3, L3DMissToMem, L3IMissToMem uint64

	PageWalks uint64
}

// Stack is the resulting CPI decomposition. Total = sum of components.
type Stack struct {
	Base     float64 // ideal issue cycles
	Deps     float64 // dependency/resource stalls ("other")
	FrontEnd float64 // I-cache related fetch stalls
	BadSpec  float64 // branch misprediction stalls
	L2       float64 // back-end stalls serviced by L2
	L3       float64 // back-end stalls serviced by L3
	Memory   float64 // back-end stalls serviced by DRAM (incl. page walks)
}

// Total returns the modelled CPI.
func (s Stack) Total() float64 {
	return s.Base + s.Deps + s.FrontEnd + s.BadSpec + s.L2 + s.L3 + s.Memory
}

// Components returns the stack in display order with labels, for
// rendering Figure 1.
func (s Stack) Components() []struct {
	Label string
	Value float64
} {
	return []struct {
		Label string
		Value float64
	}{
		{"base", s.Base},
		{"other", s.Deps},
		{"frontend", s.FrontEnd},
		{"bad-spec", s.BadSpec},
		{"L2", s.L2},
		{"L3", s.L3},
		{"memory", s.Memory},
	}
}

// Compute derives the CPI stack from counts and penalties.
func Compute(in Inputs, p Penalties) (Stack, error) {
	if err := p.Validate(); err != nil {
		return Stack{}, err
	}
	if in.Instructions == 0 {
		return Stack{}, fmt.Errorf("cpistack: zero instructions")
	}
	if in.BaseCPI < in.IdealCPI {
		in.BaseCPI = in.IdealCPI
	}
	n := float64(in.Instructions)
	per := func(events uint64, cost float64) float64 {
		return float64(events) * cost / n
	}

	s := Stack{
		Base: in.IdealCPI,
		Deps: in.BaseCPI - in.IdealCPI,
	}
	// Front-end: instruction fetch misses stall the pipe with little
	// overlap (fetch is serial).
	s.FrontEnd = per(in.L1IMissToL2, p.L2HitLatency) +
		per(in.L2IMissToL3, p.L3HitLatency) +
		per(in.L2IMissToMem+in.L3IMissToMem, p.MemLatency)
	s.BadSpec = per(in.Mispredicts, p.MispredictPenalty)
	// Back-end: data misses overlap by the machine's MLP.
	s.L2 = per(in.L1DMissToL2, p.L2HitLatency) / p.MLP
	s.L3 = per(in.L2DMissToL3, p.L3HitLatency) / p.MLP
	s.Memory = per(in.L3DMissToMem, p.MemLatency)/p.MLP + per(in.PageWalks, p.PageWalkLatency)/p.MLP
	return s, nil
}
