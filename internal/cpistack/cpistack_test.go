package cpistack

import (
	"math"
	"testing"
)

func okPenalties() Penalties {
	return Penalties{
		MispredictPenalty: 15,
		L2HitLatency:      10, L3HitLatency: 30, MemLatency: 200,
		PageWalkLatency: 50,
		MLP:             2,
	}
}

func TestPenaltiesValidate(t *testing.T) {
	if err := okPenalties().Validate(); err != nil {
		t.Fatalf("valid penalties rejected: %v", err)
	}
	p := okPenalties()
	p.MLP = 0.5
	if err := p.Validate(); err == nil {
		t.Fatal("MLP < 1 should be invalid")
	}
	p = okPenalties()
	p.MemLatency = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative latency should be invalid")
	}
}

func TestComputeIdealWorkload(t *testing.T) {
	in := Inputs{Instructions: 1000, BaseCPI: 0.25, IdealCPI: 0.25}
	s, err := Compute(in, okPenalties())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Total()-0.25) > 1e-12 {
		t.Fatalf("ideal workload CPI %v, want 0.25", s.Total())
	}
	if s.Deps != 0 || s.FrontEnd != 0 || s.BadSpec != 0 {
		t.Fatalf("ideal workload should have no stalls: %+v", s)
	}
}

func TestComputeDependencyStalls(t *testing.T) {
	in := Inputs{Instructions: 1000, BaseCPI: 1.0, IdealCPI: 0.25}
	s, err := Compute(in, okPenalties())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Deps-0.75) > 1e-12 {
		t.Fatalf("deps = %v, want 0.75", s.Deps)
	}
}

func TestComputeBaseClampedToIdeal(t *testing.T) {
	// BaseCPI below the machine ideal is impossible; it must clamp.
	in := Inputs{Instructions: 1000, BaseCPI: 0.1, IdealCPI: 0.25}
	s, err := Compute(in, okPenalties())
	if err != nil {
		t.Fatal(err)
	}
	if s.Deps != 0 || s.Base != 0.25 {
		t.Fatalf("clamping failed: %+v", s)
	}
}

func TestComputeMispredictCost(t *testing.T) {
	in := Inputs{Instructions: 1000, BaseCPI: 0.5, IdealCPI: 0.5, Mispredicts: 10}
	s, _ := Compute(in, okPenalties())
	want := 10.0 * 15 / 1000
	if math.Abs(s.BadSpec-want) > 1e-12 {
		t.Fatalf("BadSpec = %v, want %v", s.BadSpec, want)
	}
}

func TestComputeMemoryOverlap(t *testing.T) {
	p := okPenalties()
	in := Inputs{Instructions: 1000, BaseCPI: 0.5, IdealCPI: 0.5, L3DMissToMem: 10}
	s1, _ := Compute(in, p)
	p.MLP = 4
	s2, _ := Compute(in, p)
	if math.Abs(s1.Memory-2*s2.Memory) > 1e-12 {
		t.Fatalf("doubling MLP should halve memory stalls: %v vs %v", s1.Memory, s2.Memory)
	}
}

func TestComputeFrontEndNotOverlapped(t *testing.T) {
	p := okPenalties()
	in := Inputs{Instructions: 1000, BaseCPI: 0.5, IdealCPI: 0.5, L1IMissToL2: 100}
	s, _ := Compute(in, p)
	want := 100.0 * 10 / 1000 // full latency, no MLP division
	if math.Abs(s.FrontEnd-want) > 1e-12 {
		t.Fatalf("FrontEnd = %v, want %v", s.FrontEnd, want)
	}
}

func TestComputeTotalIsSum(t *testing.T) {
	in := Inputs{
		Instructions: 5000, BaseCPI: 0.6, IdealCPI: 0.25,
		Mispredicts: 40, L1IMissToL2: 30, L2IMissToL3: 5, L2IMissToMem: 1,
		L1DMissToL2: 200, L2DMissToL3: 50, L3DMissToMem: 20, PageWalks: 8,
	}
	s, err := Compute(in, okPenalties())
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, c := range s.Components() {
		sum += c.Value
	}
	if math.Abs(sum-s.Total()) > 1e-12 {
		t.Fatalf("components sum %v != Total %v", sum, s.Total())
	}
	if s.Total() <= in.BaseCPI {
		t.Fatal("stalls must increase CPI above base")
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(Inputs{}, okPenalties()); err == nil {
		t.Fatal("zero instructions should error")
	}
	bad := okPenalties()
	bad.MLP = 0
	if _, err := Compute(Inputs{Instructions: 10, BaseCPI: 1, IdealCPI: 1}, bad); err == nil {
		t.Fatal("invalid penalties should error")
	}
}

func TestMemoryBoundWorkloadDominatedByMemory(t *testing.T) {
	// An mcf-like workload: heavy L3-to-memory misses must dominate.
	in := Inputs{
		Instructions: 100000, BaseCPI: 0.4, IdealCPI: 0.25,
		L1DMissToL2: 5000, L2DMissToL3: 2000, L3DMissToMem: 450, PageWalks: 100,
	}
	s, _ := Compute(in, okPenalties())
	if s.Memory < s.L2 || s.Memory < s.L3 || s.Memory < s.Base {
		t.Fatalf("memory component should dominate: %+v", s)
	}
}
