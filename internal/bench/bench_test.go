package bench

import (
	"math"
	"testing"
)

func snap(benchmarks map[string]Result) *Snapshot {
	return &Snapshot{Schema: 1, Benchmarks: benchmarks}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		name      string
		committed map[string]Result
		current   map[string]Result
		tolerance float64
		want      []Regression
	}{
		{
			name:      "within tolerance",
			committed: map[string]Result{"a": {NsPerOp: 100}},
			current:   map[string]Result{"a": {NsPerOp: 120}},
			tolerance: 0.30,
			want:      nil,
		},
		{
			name:      "regression past tolerance",
			committed: map[string]Result{"a": {NsPerOp: 100}},
			current:   map[string]Result{"a": {NsPerOp: 200}},
			tolerance: 0.30,
			want:      []Regression{{Name: "a", Old: 100, New: 200, Growth: 1.0}},
		},
		{
			name:      "improvement never fails",
			committed: map[string]Result{"a": {NsPerOp: 200}},
			current:   map[string]Result{"a": {NsPerOp: 50}},
			tolerance: 0.0,
			want:      nil,
		},
		{
			name:      "missing in current fails",
			committed: map[string]Result{"a": {NsPerOp: 100}},
			current:   map[string]Result{},
			tolerance: 0.30,
			want:      []Regression{{Name: "a", MissingInNew: true}},
		},
		{
			name:      "new benchmark without baseline passes",
			committed: map[string]Result{},
			current:   map[string]Result{"b": {NsPerOp: 100}},
			tolerance: 0.30,
			want:      nil,
		},
		{
			// The historical bug: a zero baseline divided straight into
			// ±Inf growth. It must be skipped, not gated on.
			name:      "zero baseline is skipped",
			committed: map[string]Result{"a": {NsPerOp: 0}},
			current:   map[string]Result{"a": {NsPerOp: 100}},
			tolerance: 0.30,
			want:      nil,
		},
		{
			name:      "zero baseline skipped, sibling still gated",
			committed: map[string]Result{"a": {NsPerOp: 0}, "b": {NsPerOp: 100}},
			current:   map[string]Result{"a": {NsPerOp: 100}, "b": {NsPerOp: 150}},
			tolerance: 0.30,
			want:      []Regression{{Name: "b", Old: 100, New: 150, Growth: 0.5}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Compare(snap(tc.committed), snap(tc.current), tc.tolerance)
			if len(got) != len(tc.want) {
				t.Fatalf("Compare returned %d regressions, want %d: %v", len(got), len(tc.want), got)
			}
			for i, w := range tc.want {
				g := got[i]
				if math.IsInf(g.Growth, 0) || math.IsNaN(g.Growth) {
					t.Fatalf("regression %d has non-finite growth %v", i, g.Growth)
				}
				if g.Name != w.Name || g.Old != w.Old || g.New != w.New ||
					g.MissingInNew != w.MissingInNew || math.Abs(g.Growth-w.Growth) > 1e-12 {
					t.Errorf("regression %d = %+v, want %+v", i, g, w)
				}
			}
		})
	}
}

// TestSuiteFixedBudget pins that the hot-loop pair declares a fixed
// iteration budget: the bench gate's wall time must stay bounded as the
// loop gets faster, which testing.Benchmark's auto-scaling would not.
func TestSuiteFixedBudget(t *testing.T) {
	fixed := map[string]bool{TraceFillName: false, ExactLeafName: false}
	for _, e := range Suite() {
		if _, ok := fixed[e.Name]; ok {
			if e.FnN == nil || e.Iters <= 0 {
				t.Errorf("%s must declare a fixed iteration budget (FnN + Iters)", e.Name)
			}
			fixed[e.Name] = true
		}
	}
	for name, seen := range fixed {
		if !seen {
			t.Errorf("suite is missing %s", name)
		}
	}
}

// TestFixedBudgetEntriesRun exercises the fixed-budget path end to end
// with one iteration each, so a broken FnN fails tests rather than the
// first snapshot run.
func TestFixedBudgetEntriesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real exact-engine leaf")
	}
	for _, e := range Suite() {
		if e.FnN == nil {
			continue
		}
		if err := e.FnN(1); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}
