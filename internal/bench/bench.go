// Package bench is the benchmark-snapshot kit behind `make
// bench-snapshot` and `make bench-gate`: one fixed suite of the
// repository's key performance paths, measured via testing.Benchmark,
// serialized to committed BENCH_<n>.json files, and compared against
// the last snapshot with a regression tolerance.
//
// The suite deliberately tracks end-to-end paths rather than
// micro-kernels: the characterization fan-out (serial and parallel),
// the warm store-hit path the daemon leans on, and the two measurement
// engines over the full workload registry at default fidelity — the
// pair whose ratio is the analytic engine's reason to exist.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// The snapshot names of the engine sweep pair; Snapshot.Speedup is
// derived from them.
const (
	ExactName    = "engine_exact_registry"
	AnalyticName = "engine_analytic_registry"
)

// The hot-loop benchmark pair: the batched trace generator on its own,
// and one exact-engine leaf (one machine × one workload at default
// fidelity). Both run a fixed iteration budget rather than
// testing.Benchmark's auto-scaling, so the bench gate's wall time
// stays bounded no matter how fast the loop gets.
const (
	TraceFillName = "trace_fill"
	ExactLeafName = "exact_leaf"
)

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp    int64 `json:"ns_per_op"`
	Iterations int   `json:"iterations"`
}

// Snapshot is the BENCH_<n>.json document.
type Snapshot struct {
	Schema     int               `json:"schema"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Benchmarks map[string]Result `json:"benchmarks"`
	// AnalyticSpeedup is exact/analytic ns_per_op for the full-registry
	// sweep — the analytic engine's contract headline (must stay ≥ 50).
	AnalyticSpeedup float64 `json:"analytic_speedup"`
}

// registrySweep measures every registry workload on every fleet
// machine with eng at default fidelity — one op is the full sweep.
func registrySweep(eng engine.Engine) func(b *testing.B) {
	return func(b *testing.B) {
		fleet, err := machine.Fleet()
		if err != nil {
			b.Fatal(err)
		}
		profiles := workloads.All()
		ctx := context.Background()
		opts := machine.RunOptions{} // default fidelity: 400k instructions
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range profiles {
				w := p.Workload()
				for _, m := range fleet {
					if _, err := eng.Measure(ctx, m, w, opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// characterize measures the fleet characterization fan-out at reduced
// fidelity, as bench_test.go's serial/parallel pair does.
func characterize(parallelism int) func(b *testing.B) {
	return func(b *testing.B) {
		fleet, err := machine.Fleet()
		if err != nil {
			b.Fatal(err)
		}
		var entries []core.Entry
		for _, p := range workloads.CPU2017()[:8] {
			entries = append(entries, core.Entry{Label: p.Name, Workload: p.Workload()})
		}
		opts := machine.RunOptions{Instructions: 20_000, WarmupInstructions: 4_000, Parallelism: parallelism}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Characterize(context.Background(), entries, fleet, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func storeHit(b *testing.B) {
	st, err := store.Open(store.Config{})
	if err != nil {
		b.Fatal(err)
	}
	key := store.Key{Machine: "m", Workload: "w", Instructions: 400_000, Content: "deadbeef"}
	st.Put(key, &machine.RawCounts{})
	ctx := context.Background()
	compute := func(context.Context) (*machine.RawCounts, error) {
		panic("compute called on a warm hit")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.GetOrCompute(ctx, key, compute); err != nil {
			b.Fatal(err)
		}
	}
}

// traceFill measures the batched trace generator alone: one op fills
// traceFillEvents events through FillBatch in simulation-kernel-sized
// slabs, using a large-footprint registry profile so the block/data
// models take their realistic paths.
const traceFillEvents = 1 << 20

func traceFill(n int) error {
	profiles := workloads.All()
	spec := profiles[0].Workload().Spec
	gen, err := trace.NewGenerator(spec, "bench:trace_fill")
	if err != nil {
		return err
	}
	slab := make([]trace.Event, 512)
	for op := 0; op < n; op++ {
		for filled := 0; filled < traceFillEvents; filled += len(slab) {
			gen.FillBatch(slab)
		}
	}
	return nil
}

// exactLeaf measures one exact-engine leaf: a single machine × workload
// measurement at default fidelity — the unit cost every sweep and
// characterization fan-out multiplies.
func exactLeaf(n int) error {
	fleet, err := machine.Fleet()
	if err != nil {
		return err
	}
	ctx := context.Background()
	w := workloads.All()[0].Workload()
	eng := engine.Exact{}
	for op := 0; op < n; op++ {
		if _, err := eng.Measure(ctx, fleet[0], w, machine.RunOptions{}); err != nil {
			return err
		}
	}
	return nil
}

// Entry is one suite benchmark: either auto-scaled through
// testing.Benchmark (Fn), or run for exactly Iters iterations with
// direct timing (FnN) — the fixed-budget path that keeps fast-moving
// hot-loop benchmarks from inflating gate wall time as they speed up.
type Entry struct {
	Name  string
	Fn    func(b *testing.B)
	FnN   func(n int) error
	Iters int
}

// Suite returns the snapshot suite in a stable order.
func Suite() []Entry {
	return []Entry{
		{Name: "characterize_serial", Fn: characterize(1)},
		{Name: "characterize_parallel", Fn: characterize(0)},
		{Name: "store_hit", Fn: storeHit},
		{Name: TraceFillName, FnN: traceFill, Iters: 8},
		{Name: ExactLeafName, FnN: exactLeaf, Iters: 8},
		{Name: ExactName, Fn: registrySweep(engine.Exact{})},
		{Name: AnalyticName, Fn: registrySweep(engine.Analytic{})},
	}
}

// run measures one entry through whichever path it declares.
func (e Entry) run() (Result, error) {
	if e.FnN != nil {
		n := e.Iters
		if n <= 0 {
			n = 1
		}
		start := time.Now()
		if err := e.FnN(n); err != nil {
			return Result{}, fmt.Errorf("bench: %s: %w", e.Name, err)
		}
		return Result{NsPerOp: time.Since(start).Nanoseconds() / int64(n), Iterations: n}, nil
	}
	r := testing.Benchmark(e.Fn)
	if r.N == 0 {
		return Result{}, fmt.Errorf("bench: %s failed (zero iterations)", e.Name)
	}
	return Result{NsPerOp: r.NsPerOp(), Iterations: r.N}, nil
}

// Measure runs the whole suite and assembles a Snapshot. progress (may
// be nil) is called before each benchmark starts.
func Measure(progress func(name string)) (*Snapshot, error) {
	snap := &Snapshot{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: make(map[string]Result),
	}
	for _, bm := range Suite() {
		if progress != nil {
			progress(bm.Name)
		}
		r, err := bm.run()
		if err != nil {
			return nil, err
		}
		snap.Benchmarks[bm.Name] = r
	}
	exact, analytic := snap.Benchmarks[ExactName], snap.Benchmarks[AnalyticName]
	if analytic.NsPerOp > 0 {
		snap.AnalyticSpeedup = float64(exact.NsPerOp) / float64(analytic.NsPerOp)
	}
	return snap, nil
}

var snapshotRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Latest returns the highest-numbered BENCH_<n>.json in dir and its
// index, or ("", 0, nil) when none exist.
func Latest(dir string) (path string, n int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	for _, e := range entries {
		m := snapshotRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var i int
		fmt.Sscanf(m[1], "%d", &i)
		if i > n {
			n, path = i, filepath.Join(dir, e.Name())
		}
	}
	return path, n, nil
}

// Load reads a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &snap, nil
}

// Save writes a snapshot with stable formatting.
func (s *Snapshot) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Regression describes one benchmark that got slower than the
// snapshot allows.
type Regression struct {
	Name         string
	Old, New     int64   // ns/op
	Growth       float64 // (new-old)/old
	MissingInNew bool
}

func (r Regression) String() string {
	if r.MissingInNew {
		return fmt.Sprintf("%s: present in snapshot but not measured", r.Name)
	}
	return fmt.Sprintf("%s: %d ns/op -> %d ns/op (+%.1f%%, tolerance exceeded)",
		r.Name, r.Old, r.New, r.Growth*100)
}

// Compare reports every benchmark in the committed snapshot whose
// fresh measurement regressed by more than tolerance (0.30 = 30%).
// Benchmarks newly added to the suite (absent from the snapshot) pass;
// benchmarks dropped from the suite fail.
func Compare(committed, current *Snapshot, tolerance float64) []Regression {
	var regressions []Regression
	names := make([]string, 0, len(committed.Benchmarks))
	for name := range committed.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		old := committed.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			regressions = append(regressions, Regression{Name: name, MissingInNew: true})
			continue
		}
		if old.NsPerOp <= 0 {
			// A zero (or negative) baseline is corrupt snapshot data: no
			// tolerance can be expressed against it, and dividing by it
			// would yield ±Inf/NaN growth. Skip rather than gate on it.
			continue
		}
		growth := float64(cur.NsPerOp-old.NsPerOp) / float64(old.NsPerOp)
		if growth > tolerance {
			regressions = append(regressions, Regression{
				Name: name, Old: old.NsPerOp, New: cur.NsPerOp, Growth: growth,
			})
		}
	}
	return regressions
}
