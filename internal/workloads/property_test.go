package workloads

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/trace"
)

// Every input set of every profile must produce a valid, runnable
// workload whose perturbed spec still honours the trace invariants.
func TestAllInputSetsValid(t *testing.T) {
	for _, p := range All() {
		for i := 1; i <= p.InputSets; i++ {
			w := p.WorkloadInput(i)
			if err := w.Spec.Validate(); err != nil {
				t.Errorf("%s input %d: %v", p.Name, i, err)
			}
			if w.Key == "" {
				t.Errorf("%s input %d: empty key", p.Name, i)
			}
		}
	}
}

// Keys must be globally unique across profiles and input sets — a
// collision would silently alias two workloads' trace streams.
func TestWorkloadKeysUnique(t *testing.T) {
	seen := make(map[string]string)
	for _, p := range All() {
		for i := 1; i <= p.InputSets; i++ {
			k := p.InputKey(i)
			if owner, dup := seen[k]; dup {
				t.Errorf("key %q used by both %s and %s", k, owner, p.Name)
			}
			seen[k] = p.Name
		}
	}
}

// Every profile must generate a trace without panicking and with a
// plausible mix in a short window.
func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range All() {
		g, err := trace.NewGenerator(p.Spec, p.Name)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		var ev trace.Event
		branches := 0
		for i := 0; i < 5000; i++ {
			g.Next(&ev)
			if ev.Kind == trace.CondBranch {
				branches++
			}
		}
		if branches == 0 {
			t.Errorf("%s: no branches in 5000 instructions", p.Name)
		}
	}
}

// Every profile must survive machine spec adjustment on every fleet
// machine (the jitter renormalization must never produce an invalid
// spec).
func TestAllProfilesRunnableOnFleet(t *testing.T) {
	fleet, err := machine.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	// Running everything at full length is the experiments suite's
	// job; here a tiny window just proves the plumbing for every
	// (profile, machine) pair.
	opts := machine.RunOptions{Instructions: 2_000, WarmupInstructions: 500}
	for _, p := range All() {
		for _, m := range fleet {
			if _, err := m.Run(p.Workload(), opts); err != nil {
				t.Errorf("%s on %s: %v", p.Name, m.Name(), err)
			}
		}
	}
}

// Table I mixes must stay within physical bounds after encoding.
func TestMixesWithinBounds(t *testing.T) {
	for _, p := range All() {
		s := p.Spec
		if sum := s.LoadFrac + s.StoreFrac + s.BranchFrac + s.FPFrac + s.SIMDFrac; sum > 1 {
			t.Errorf("%s: mix fractions sum to %v", p.Name, sum)
		}
	}
}
