package workloads

// cpu2006Profiles encodes the SPEC CPU2006 suite (12 INT + 17 FP),
// used by the paper's Section V balance comparison (Figure 11) and
// power comparison (Figure 12). Instruction mixes follow the published
// CPU2006 characterization literature the paper cites ([9], [14]):
// CPU2006 INT averages ~20% branches (vs <=15% in CPU2017), FP
// programs are load-dominated, and dynamic instruction counts are an
// order of magnitude below CPU2017's.
//
// Behavioural anchors from the paper:
//   - 429.mcf exerts the data caches MORE than CPU2017's mcf — it is
//     one of only three removed benchmarks whose space CPU2017 does
//     not cover.
//   - 445.gobmk (very hard branches at a ~20% branch fraction) and
//     473.astar (hard branches + deep memory stalls) are the other
//     two uncovered benchmarks.
//   - 483.sphinx3 (speech), 450.soplex (linear programming), and
//     416.gamess/465.tonto (quantum chemistry) were removed as
//     domains, but their behaviour is covered by CPU2017 programs.
var cpu2006Profiles = []Profile{
	// -------------------------------------------------------- 2006 INT
	define("400.perlbench", "perlbench", CPU2006INT, DomCompiler, "C", false, 1200, 1, params{
		load: .25, store: .14, branch: .21,
		l1d: 10, l2d: 1.2, l3: 0.25, l1i: 4, codeKB: 1536,
		brMPKI: 3.5, taken: .60, footprint: 64 << 20, ilp: 3.0,
	}),
	define("401.bzip2", "bzip2", CPU2006INT, DomCompress, "C", false, 1400, 1, params{
		load: .26, store: .09, branch: .15,
		l1d: 12, l2d: 3, l3: 1.0, l1i: 0.2, codeKB: 128,
		brMPKI: 5, taken: .60, footprint: 192 << 20, ilp: 2.8,
	}),
	define("403.gcc", "gcc", CPU2006INT, DomCompiler, "C", false, 1100, 1, params{
		load: .28, store: .14, branch: .19,
		l1d: 16, l2d: 2.6, l3: 0.8, l1i: 5, codeKB: 3072,
		brMPKI: 3.4, taken: .77, footprint: 144 << 20, ilp: 2.7,
	}),
	define("429.mcf", "mcf", CPU2006INT, DomCombOpt, "C", false, 900, 1, params{
		load: .31, store: .09, branch: .19,
		l1d: 75, l2d: 30, l3: 7, l1i: 0.3, codeKB: 128,
		brMPKI: 9, taken: .80, footprint: 1 << 30, ilp: 1.6,
	}),
	define("445.gobmk", "gobmk", CPU2006INT, DomGames, "C", false, 1600, 1, params{
		load: .23, store: .12, branch: .205,
		l1d: 2, l2d: 0.3, l3: 0.05, l1i: 2, codeKB: 1024,
		brMPKI: 16, taken: .32, footprint: 48 << 20, ilp: 2.6,
	}),
	define("456.hmmer", "hmmer", CPU2006INT, DomOther, "C", false, 2100, 1, params{
		load: .41, store: .16, branch: .08,
		l1d: 3, l2d: 0.3, l3: 0.05, l1i: 0.2, codeKB: 128,
		brMPKI: 1, taken: .70, patterned: true, footprint: 32 << 20, ilp: 3.8,
	}),
	define("458.sjeng", "sjeng", CPU2006INT, DomAI, "C", false, 2200, 1, params{
		load: .21, store: .09, branch: .15,
		l1d: 4.5, l2d: 1, l3: 0.3, l1i: 1.2, codeKB: 512,
		brMPKI: 5.5, taken: .55, footprint: 96 << 20, ilp: 2.8,
	}),
	define("462.libquantum", "libquantum", CPU2006INT, DomQuantum, "C", false, 3200, 1, params{
		load: .25, store: .05, branch: .27,
		l1d: 18, l2d: 5, l3: 2.4, l1i: 0.2, codeKB: 128,
		brMPKI: 1.2, taken: .84, patterned: true,
		stride: .06, footprint: 256 << 20, ilp: 3.2,
	}),
	define("464.h264ref", "h264ref", CPU2006INT, DomVideo, "C", false, 2800, 1, params{
		load: .30, store: .10, branch: .06, fp: .04, simd: .13,
		l1d: 7, l2d: 0.9, l3: 0.2, l1i: 0.8, codeKB: 512,
		brMPKI: 1.2, taken: .60, patterned: true,
		stride: .02, footprint: 48 << 20, ilp: 4.2,
	}),
	define("471.omnetpp", "omnetpp", CPU2006INT, DomDESim, "C++", false, 700, 1, params{
		load: .23, store: .13, branch: .16,
		l1d: 25, l2d: 6.5, l3: 2.8, l1i: 2, codeKB: 1024,
		brMPKI: 4.2, taken: .69, footprint: 176 << 20, ilp: 1.9,
	}),
	define("473.astar", "astar", CPU2006INT, DomOther, "C++", false, 1200, 1, params{
		load: .27, store: .10, branch: .155,
		l1d: 55, l2d: 22, l3: 7, l1i: 0.3, codeKB: 128,
		brMPKI: 12, taken: .45, footprint: 1536 << 20, ilp: 2.0,
	}),
	define("483.xalancbmk", "xalancbmk", CPU2006INT, DomDocProc, "C++", false, 1100, 1, params{
		load: .32, store: .09, branch: .255,
		l1d: 15, l2d: 4, l3: 1.5, l1i: 1.5, codeKB: 1024,
		brMPKI: 3, taken: .70, footprint: 96 << 20, ilp: 2.5,
	}),

	// --------------------------------------------------------- 2006 FP
	define("410.bwaves", "bwaves", CPU2006FP, DomFluid, "Fortran", false, 2300, 1, params{
		load: .37, store: .06, branch: .08, fp: .36,
		l1d: 16, l2d: 4.5, l3: 2.2, l1i: 0.3, codeKB: 256,
		brMPKI: 1.1, taken: .85, patterned: true, patternFrac: 0.25,
		stride: .10, footprint: 448 << 20, ilp: 3.7,
	}),
	define("416.gamess", "gamess", CPU2006FP, DomQuantum, "Fortran", false, 2500, 1, params{
		load: .30, store: .09, branch: .09, fp: .38,
		l1d: 6, l2d: 1, l3: 0.3, l1i: 1.2, codeKB: 1024,
		brMPKI: 1.1, taken: .70, patterned: true, footprint: 64 << 20, ilp: 2.9,
	}),
	define("433.milc", "milc", CPU2006FP, DomQuantum, "C", false, 1500, 1, params{
		load: .37, store: .11, branch: .02, fp: .35,
		l1d: 25, l2d: 10, l3: 4.5, l1i: 0.1, codeKB: 128,
		brMPKI: 0.2, taken: .90, patterned: true,
		stride: .08, footprint: 384 << 20, ilp: 2.4,
	}),
	define("434.zeusmp", "zeusmp", CPU2006FP, DomPhysics, "Fortran", false, 1700, 1, params{
		load: .29, store: .08, branch: .04, fp: .35,
		l1d: 12, l2d: 4, l3: 2, l1i: 0.3, codeKB: 512,
		brMPKI: 0.3, taken: .85, patterned: true,
		stride: .05, footprint: 384 << 20, ilp: 2.8,
	}),
	define("435.gromacs", "gromacs", CPU2006FP, DomMolecular, "C/Fortran", false, 1900, 1, params{
		load: .29, store: .14, branch: .03, fp: .40, simd: .10,
		l1d: 4, l2d: 0.5, l3: 0.1, l1i: 0.5, codeKB: 512,
		brMPKI: 0.5, taken: .80, patterned: true, footprint: 32 << 20, ilp: 3.2,
	}),
	define("436.cactusADM", "cactusADM", CPU2006FP, DomPhysics, "C/Fortran", false, 1300, 1, params{
		load: .46, store: .11, branch: .015, fp: .32,
		l1d: 36, l2d: 7, l3: 2.4, l1i: 1.5, codeKB: 2048,
		midBytes: 96 << 10, warmBytes: 10 << 20,
		brMPKI: 0.3, taken: .85, patterned: true, footprint: 768 << 20, ilp: 2.5,
	}),
	define("437.leslie3d", "leslie3d", CPU2006FP, DomFluid, "Fortran", false, 1300, 1, params{
		load: .45, store: .11, branch: .03, fp: .35,
		l1d: 20, l2d: 7, l3: 3, l1i: 0.2, codeKB: 256,
		brMPKI: 0.3, taken: .88, patterned: true,
		stride: .08, footprint: 384 << 20, ilp: 2.6,
	}),
	define("444.namd", "namd", CPU2006FP, DomMolecular, "C++", false, 2400, 1, params{
		load: .32, store: .07, branch: .05, fp: .45,
		l1d: 3, l2d: 0.4, l3: 0.08, l1i: 0.4, codeKB: 512,
		brMPKI: 0.4, taken: .80, patterned: true, footprint: 48 << 20, ilp: 3.4,
	}),
	define("447.dealII", "dealII", CPU2006FP, DomBiomedical, "C++", false, 2100, 1, params{
		load: .35, store: .08, branch: .16, fp: .30,
		l1d: 8, l2d: 1.5, l3: 0.4, l1i: 1.5, codeKB: 2048,
		brMPKI: 1, taken: .80, patterned: true, footprint: 96 << 20, ilp: 3.0,
	}),
	define("450.soplex", "soplex", CPU2006FP, DomLinProg, "C++", false, 900, 1, params{
		load: .24, store: .10, branch: .15, fp: .20,
		l1d: 21, l2d: 6, l3: 2.4, l1i: 1.2, codeKB: 768,
		brMPKI: 3.8, taken: .70, footprint: 224 << 20, ilp: 2.0,
	}),
	define("453.povray", "povray", CPU2006FP, DomVisual, "C++", false, 1200, 1, params{
		load: .31, store: .15, branch: .135, fp: .30,
		l1d: 3, l2d: 0.3, l3: 0.05, l1i: 1.5, codeKB: 1024,
		brMPKI: 2, taken: .70, footprint: 32 << 20, ilp: 3.1,
	}),
	define("454.calculix", "calculix", CPU2006FP, DomOther, "C/Fortran", false, 3200, 1, params{
		load: .33, store: .09, branch: .04, fp: .40,
		l1d: 5, l2d: 0.8, l3: 0.2, l1i: 1, codeKB: 1024,
		brMPKI: 0.5, taken: .85, patterned: true, footprint: 64 << 20, ilp: 3.3,
	}),
	define("459.GemsFDTD", "GemsFDTD", CPU2006FP, DomPhysics, "Fortran", false, 1400, 1, params{
		load: .45, store: .10, branch: .02, fp: .35,
		l1d: 25, l2d: 9, l3: 4, l1i: 0.3, codeKB: 384,
		brMPKI: 0.2, taken: .90, patterned: true,
		stride: .08, footprint: 768 << 20, ilp: 2.3,
	}),
	define("465.tonto", "tonto", CPU2006FP, DomQuantum, "Fortran", false, 2800, 1, params{
		load: .32, store: .10, branch: .07, fp: .36,
		l1d: 7, l2d: 1.1, l3: 0.35, l1i: 1, codeKB: 768,
		brMPKI: 1.1, taken: .70, patterned: true, footprint: 72 << 20, ilp: 2.8,
	}),
	define("470.lbm", "lbm", CPU2006FP, DomFluid, "C", false, 1300, 1, params{
		load: .38, store: .12, branch: .008, fp: .35,
		l1d: 35, l2d: 10, l3: 4.5, l1i: 0.1, codeKB: 64,
		brMPKI: 0.1, taken: .90, patterned: true,
		stride: .08, footprint: 512 << 20, ilp: 2.8,
	}),
	define("481.wrf", "wrf", CPU2006FP, DomClimate, "Fortran/C", false, 1700, 1, params{
		load: .30, store: .08, branch: .06, fp: .30,
		l1d: 10, l2d: 2, l3: 0.8, l1i: 6, codeKB: 6144,
		brMPKI: 1, taken: .78, patterned: true, footprint: 192 << 20, ilp: 2.7,
	}),
	define("482.sphinx3", "sphinx3", CPU2006FP, DomSpeech, "C", false, 2400, 1, params{
		load: .35, store: .05, branch: .10, fp: .30,
		l1d: 12, l2d: 3, l3: 1, l1i: 0.8, codeKB: 384,
		brMPKI: 1.5, taken: .85, patterned: true, footprint: 128 << 20, ilp: 3.0,
	}),
}
