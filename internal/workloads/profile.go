// Package workloads is the profile database of the reproduction: a
// statistical description of every program the paper measures — the
// 43 SPEC CPU2017 benchmarks (rate and speed, with their multiple
// input sets), the SPEC CPU2006 suite, and the emerging EDA, graph
// analytics, and database workloads of Section V.
//
// Each profile encodes the paper's published ground truth — Table I's
// dynamic instruction counts, instruction mixes, and CPIs; Table II's
// metric ranges; and every qualitative per-benchmark statement in the
// text — as generative parameters for the trace substrate. The paper's
// pipeline only ever sees the vector of performance-counter metrics a
// program induces, so a profile that induces the right metric vector
// reproduces the program for the purposes of this study.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/trace"
)

// Suite identifies which benchmark collection a profile belongs to.
type Suite int

// Suites covered by the study.
const (
	SpeedINT Suite = iota // SPECspeed 2017 Integer
	RateINT               // SPECrate 2017 Integer
	SpeedFP               // SPECspeed 2017 Floating Point
	RateFP                // SPECrate 2017 Floating Point
	CPU2006INT
	CPU2006FP
	EDA      // CPU2000-era electronic design automation (175.vpr, 300.twolf)
	Graph    // graph analytics (pagerank, connected components)
	Database // Cassandra + YCSB
)

// String returns the suite's display name.
func (s Suite) String() string {
	switch s {
	case SpeedINT:
		return "SPECspeed INT"
	case RateINT:
		return "SPECrate INT"
	case SpeedFP:
		return "SPECspeed FP"
	case RateFP:
		return "SPECrate FP"
	case CPU2006INT:
		return "CPU2006 INT"
	case CPU2006FP:
		return "CPU2006 FP"
	case EDA:
		return "EDA"
	case Graph:
		return "Graph"
	case Database:
		return "Database"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// IsCPU2017 reports whether the suite is one of the four CPU2017
// sub-suites.
func (s Suite) IsCPU2017() bool {
	return s == SpeedINT || s == RateINT || s == SpeedFP || s == RateFP
}

// IsCPU2006 reports whether the suite is part of CPU2006.
func (s Suite) IsCPU2006() bool { return s == CPU2006INT || s == CPU2006FP }

// Domain is the application-domain classification of Table VIII.
type Domain string

// Application domains used in the paper's Table VIII plus the emerging
// categories of Section V.
const (
	DomCompiler   Domain = "compiler/interpreter"
	DomCompress   Domain = "compression"
	DomAI         Domain = "artificial intelligence"
	DomCombOpt    Domain = "combinatorial optimization"
	DomDESim      Domain = "discrete event simulation"
	DomDocProc    Domain = "document processing"
	DomPhysics    Domain = "physics"
	DomFluid      Domain = "fluid dynamics"
	DomMolecular  Domain = "molecular dynamics"
	DomVisual     Domain = "visualization"
	DomBiomedical Domain = "biomedical"
	DomClimate    Domain = "climatology"
	DomEDA        Domain = "electronic design automation"
	DomGraph      Domain = "graph analytics"
	DomDatabase   Domain = "data serving"
	DomSpeech     Domain = "speech recognition"
	DomLinProg    Domain = "linear programming"
	DomQuantum    Domain = "quantum chemistry/physics"
	DomVideo      Domain = "video processing"
	DomGames      Domain = "games"
	DomOther      Domain = "other"
)

// Profile is one measurable program.
type Profile struct {
	// Name is the SPEC-style identifier, e.g. "605.mcf_s".
	Name string
	// Base is the benchmark family shared by rate/speed/2006 versions,
	// e.g. "mcf".
	Base   string
	Suite  Suite
	Domain Domain
	Lang   string
	// NewIn2017 marks benchmarks introduced by CPU2017.
	NewIn2017 bool
	// DynInstrBillions is the published full-run dynamic instruction
	// count (Table I); the simulator samples a statistically
	// representative window of it.
	DynInstrBillions float64
	// InputSets is the number of reference inputs (>= 1).
	InputSets int
	// ILP is the workload's exploitable instruction-level parallelism.
	ILP float64
	// Spec is the ISA-neutral generator parameterization for the
	// primary (first) input set.
	Spec trace.Spec
}

// Workload converts the profile's primary input set for measurement.
func (p Profile) Workload() machine.Workload {
	return p.WorkloadInput(1)
}

// WorkloadInput returns the machine workload for input set i (1-based).
// Input sets of the same benchmark are small, deterministic
// perturbations of the primary spec — the paper finds CPU2017 input
// sets to be behaviourally close (Figures 7 and 8) — except where a
// specific input is known to diverge.
func (p Profile) WorkloadInput(i int) machine.Workload {
	if i < 1 || i > p.InputSets {
		panic(fmt.Sprintf("workloads: %s has %d input sets, requested %d", p.Name, p.InputSets, i))
	}
	spec := p.Spec
	if i > 1 {
		// Deterministic, benchmark-shape-preserving perturbation:
		// inputs differ mostly in footprint and branch bias.
		f := 1 + 0.08*float64(i-1)
		spec.FootprintBytes = uint64(float64(spec.FootprintBytes) * f)
		if spec.FootprintBytes < spec.WarmBytes {
			spec.FootprintBytes = spec.WarmBytes
		}
		spec.TakenFrac = clampFrac(spec.TakenFrac*(1+0.02*float64(i-1)), 0.02, 0.98)
		spec.WarmFrac = clampFrac(spec.WarmFrac*(1+0.05*float64(i-1)), 0, 0.9)
		// Renormalize to just below 1 so floating-point rounding cannot
		// push the reconstructed sum over the validation limit.
		if s := spec.HotFrac + spec.MidFrac + spec.WarmFrac + spec.StrideFrac; s > 0.999 {
			f := 0.999 / s
			spec.HotFrac *= f
			spec.MidFrac *= f
			spec.WarmFrac *= f
			spec.StrideFrac *= f
		}
	}
	return machine.Workload{Key: p.InputKey(i), Spec: spec, ILP: p.ILP}
}

// InputKey returns the unique seed key for input set i (1-based).
func (p Profile) InputKey(i int) string {
	if p.InputSets == 1 {
		return p.Name
	}
	return fmt.Sprintf("%s/input%d", p.Name, i)
}

// InputLabel returns the display label used in the input-set
// dendrograms (Figures 7 and 8): the bare name for single-input
// benchmarks, "name-N" otherwise.
func (p Profile) InputLabel(i int) string {
	if p.InputSets == 1 {
		return p.Name
	}
	return fmt.Sprintf("%s-%d", p.Name, i)
}

func clampFrac(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// params are the declarative knobs from which a Profile's trace.Spec
// is derived. Cache targets are Skylake-referenced MPKI values taken
// from the paper's Tables I/II and per-benchmark statements; the
// builder inverts the region model to hit them approximately.
type params struct {
	load, store, branch float64 // Table I instruction mix (fractions)
	fp, simd, kernel    float64

	l1d, l2d, l3 float64 // data-cache MPKI targets (Skylake-referenced)
	l1i          float64 // instruction-cache MPKI target

	midBytes  uint64 // mid region size; the L1-sensitivity knob (default 160 KiB)
	warmBytes uint64 // warm region size (default 3 MiB)
	footprint uint64 // full footprint (default 256 MiB); the TLB knob
	stride    float64

	codeKB int // static code size in KiB (default 512)

	brMPKI    float64 // branch misprediction target on a modern predictor
	taken     float64 // taken-branch fraction
	patterned bool    // true = history-correlated branches (predictor-
	//                   sensitive); false = entropy-dominated (uniformly hard)
	patternFrac float64 // explicit correlated-branch share (overrides patterned)

	ilp float64
}

// buildSpec inverts the four-region model: given Skylake-referenced
// MPKI targets it chooses region fractions such that the simulated
// metrics land near the targets on Skylake and diverge on the other
// machines exactly where geometry differs.
func buildSpec(p params) trace.Spec {
	if p.midBytes == 0 {
		p.midBytes = 160 << 10
	}
	if p.warmBytes == 0 {
		p.warmBytes = 3 << 20
		if p.l2d <= 2 {
			// Cache-friendly codes keep a small phase working set;
			// this also bounds their D-TLB page churn.
			p.warmBytes = 1 << 20
		}
	}
	if p.warmBytes < p.midBytes {
		p.warmBytes = p.midBytes
	}
	if p.footprint == 0 {
		p.footprint = 256 << 20
	}
	if p.codeKB == 0 {
		p.codeKB = 512
	}
	refs := p.load + p.store
	var hot, mid, warm, cold float64
	if refs > 0 {
		// Stride streams touch a new line every 8 references and miss
		// every level; account for their contribution first.
		sEff := p.stride / 8
		cold = p.l3/1000/refs - sEff
		warm = (p.l2d - p.l3) / 1000 / refs
		// The mid region's L1 miss rate on the 32 KiB Skylake L1D.
		l1 := 32.0 * 1024
		missMid := (float64(p.midBytes) - l1) / float64(p.midBytes)
		if missMid < 0.2 {
			missMid = 0.2
		}
		mid = (p.l1d - p.l2d) / 1000 / refs / missMid
		cold = clampFrac(cold, 0, 0.8)
		warm = clampFrac(warm, 0, 0.8)
		mid = clampFrac(mid, 0, 0.8)
		// The 1e-6 margin keeps the reconstructed sum strictly below 1
		// despite floating-point rounding.
		hot = 1 - cold - warm - mid - p.stride - 1e-6
		if hot < 0.001 {
			// Over-constrained targets: renormalize the miss regions,
			// leaving a sliver of hot traffic and epsilon headroom.
			scale := (1 - p.stride - 0.002) / (cold + warm + mid)
			cold *= scale
			warm *= scale
			mid *= scale
			hot = 0.001
		}
	} else {
		hot = 1
	}

	// Instruction side: block length ~= 1/branch. A cold-code block
	// pick touches ~blockLen*4/64 fresh lines (at least one), each a
	// likely L1I miss when the code footprint dwarfs the cache; the
	// hot-code share is solved so the cold-pick rate lands the L1I
	// MPKI target.
	blockLen := 1 / p.branch
	linesPerBlock := blockLen * 4 / 64
	if linesPerBlock < 1 {
		linesPerBlock = 1
	}
	// Cold picks mostly land in the 96 KiB warm-code set, whose lines
	// miss the reference 32 KiB L1I two-thirds of the time; the 5%
	// full-footprint tail always misses. Kernel episodes contribute
	// their own I-cache misses (random picks over the kernel code),
	// which the user-code cold-pick rate must not double-count.
	const coldMissRate = 0.95*(96.0-32)/96 + 0.05
	kernelMPKI := p.kernel / blockLen * 0.85 * 1000 * linesPerBlock
	userMPKI := p.l1i - kernelMPKI
	if userMPKI < 0.1 {
		userMPKI = 0.1
	}
	hotCode := 1 - userMPKI/1000*blockLen/linesPerBlock/coldMissRate
	hotCode = clampFrac(hotCode, 0.4, 1)

	// Branch mixture: on the reference (tournament) predictor the
	// mispredict rate is roughly
	//   e*0.55 + (1-e)*(P*0.10 + (1-P)*0.007) + aliasErr,
	// where aliasErr is the cold-code branches' conflict noise.
	// Patterned workloads carry history-correlated branches that
	// bimodal-predictor machines cannot learn (the Table IX
	// branch-sensitivity mechanism); the fraction stays small so the
	// absolute rate meets the target while still moving the
	// benchmark's rank on bimodal machines. Solve e for the target.
	pattern := p.patternFrac
	if pattern == 0 {
		pattern = 0.02
		if p.patterned {
			pattern = 0.08
		}
	}
	// Cold-code branches are uniformly biased and cost ~1.5%; the hot
	// mixture must supply the rest of the target rate.
	targetRate := p.brMPKI / 1000 / p.branch
	hotTarget := targetRate
	if hotCode > 0 {
		hotTarget = (targetRate - (1-hotCode)*0.015) / hotCode
	}
	baseRate := pattern*0.10 + (1-pattern)*0.007
	entropy := 0.0
	if hotTarget > baseRate {
		// Hard branches cost ~55% once two-bit-counter churn is
		// accounted for.
		entropy = clampFrac((hotTarget-baseRate)/(0.55-baseRate), 0, 1)
	}

	return trace.Spec{
		LoadFrac: p.load, StoreFrac: p.store, BranchFrac: p.branch,
		FPFrac: p.fp, SIMDFrac: p.simd, KernelFrac: p.kernel,
		HotBytes: 8 << 10, MidBytes: p.midBytes, WarmBytes: p.warmBytes,
		FootprintBytes: p.footprint,
		HotFrac:        hot, MidFrac: mid, WarmFrac: warm, StrideFrac: p.stride,
		CodeBytes: uint64(p.codeKB) << 10, HotCodeBytes: 8 << 10, HotCodeFrac: hotCode,
		BranchEntropy: entropy, PatternFrac: pattern, TakenFrac: p.taken,
	}
}

// define assembles a Profile and validates it eagerly so a bad entry
// fails the package's tests rather than a distant experiment.
func define(name, base string, suite Suite, domain Domain, lang string, newIn2017 bool,
	icountBillions float64, inputSets int, p params) Profile {
	spec := buildSpec(p)
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("workloads: profile %s: %v", name, err))
	}
	if inputSets < 1 {
		panic(fmt.Sprintf("workloads: profile %s: input sets %d", name, inputSets))
	}
	if p.ilp <= 0 {
		panic(fmt.Sprintf("workloads: profile %s: ILP %v", name, p.ilp))
	}
	return Profile{
		Name: name, Base: base, Suite: suite, Domain: domain, Lang: lang,
		NewIn2017: newIn2017, DynInstrBillions: icountBillions,
		InputSets: inputSets, ILP: p.ilp, Spec: spec,
	}
}

// BySuite returns the profiles of one suite, in canonical order.
func BySuite(s Suite) []Profile {
	var out []Profile
	for _, p := range All() {
		if p.Suite == s {
			out = append(out, p)
		}
	}
	return out
}

// CPU2017 returns all 43 CPU2017 profiles in Table I order.
func CPU2017() []Profile {
	var out []Profile
	for _, s := range []Suite{SpeedINT, RateINT, SpeedFP, RateFP} {
		out = append(out, BySuite(s)...)
	}
	return out
}

// CPU2006 returns the CPU2006 profiles (INT then FP).
func CPU2006() []Profile {
	return append(BySuite(CPU2006INT), BySuite(CPU2006FP)...)
}

// Emerging returns the EDA, graph, and database profiles of Section V.
func Emerging() []Profile {
	out := append(BySuite(EDA), BySuite(Graph)...)
	return append(out, BySuite(Database)...)
}

// All returns every profile in the database.
func All() []Profile {
	all := make([]Profile, 0, len(cpu2017Profiles)+len(cpu2006Profiles)+len(emergingProfiles))
	all = append(all, cpu2017Profiles...)
	all = append(all, cpu2006Profiles...)
	all = append(all, emergingProfiles...)
	return all
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workloads: unknown profile %q", name)
}

// RateSpeedPairs returns the CPU2017 benchmark families present in
// both a rate and a speed version, as (rate, speed) profile pairs
// sorted by family name — the subjects of the paper's Section IV-D.
func RateSpeedPairs() [][2]Profile {
	rate := make(map[string]Profile)
	speed := make(map[string]Profile)
	for _, p := range CPU2017() {
		switch p.Suite {
		case RateINT, RateFP:
			rate[p.Base] = p
		case SpeedINT, SpeedFP:
			speed[p.Base] = p
		}
	}
	var bases []string
	for b := range rate {
		if _, ok := speed[b]; ok {
			bases = append(bases, b)
		}
	}
	sort.Strings(bases)
	pairs := make([][2]Profile, 0, len(bases))
	for _, b := range bases {
		pairs = append(pairs, [2]Profile{rate[b], speed[b]})
	}
	return pairs
}
