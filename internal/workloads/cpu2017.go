package workloads

// cpu2017Profiles encodes all 43 SPEC CPU2017 benchmarks. Instruction
// mixes and dynamic instruction counts are transcribed from the
// paper's Table I; cache/branch/TLB targets follow Table II's ranges
// and the per-benchmark statements in Sections II, IV, and V:
//
//   - mcf: highest CPI among INT, worst data locality, high branch
//     mispredictions and taken fraction, noticeable I-cache misses.
//   - omnetpp/xalancbmk: C++ codes, back-end (cache/memory) bound,
//     high taken-branch fraction; xalancbmk has 33% branches.
//   - leela: highest branch MPKI (uniformly hard branches), low
//     machine sensitivity.
//   - x264: SIMD-heavy, very low CPI, few branches.
//   - exchange2: store-rich, cache-resident, core-power intensive.
//   - xz: large dictionary footprint, D-TLB heavy, hard branches.
//   - gcc/perlbench: largest code footprints, highest I-cache activity.
//   - cactuBSSN: most distinct FP benchmark — ~44% loads, unique
//     memory/TLB behaviour.
//   - fotonik3d: highest L1D MPKI and strongest L1D-size sensitivity.
//   - bwaves: branchy for an FP code, loop-patterned (predictor
//     sensitive), large speed-version footprint.
//   - lbm/roms: streaming grid codes.
//   - wrf/cam4/pop2: very large Fortran codes (FP I-cache maxima).
//   - imagick/blender: dependency-stall bound; imagick_s diverges
//     sharply from imagick_r (>=30% more misses at all levels).
var cpu2017Profiles = []Profile{
	// ---------------------------------------------------- SPECspeed INT
	define("600.perlbench_s", "perlbench", SpeedINT, DomCompiler, "C", false, 2696, 3, params{
		load: .2720, store: .1673, branch: .1816,
		l1d: 12, l2d: 1.5, l3: 0.3, l1i: 4.8, codeKB: 2048,
		brMPKI: 2.5, taken: .62, footprint: 128 << 20, ilp: 3.3,
	}),
	define("602.gcc_s", "gcc", SpeedINT, DomCompiler, "C", false, 7226, 3, params{
		load: .4032, store: .1567, branch: .1560,
		l1d: 16, l2d: 2.2, l3: 0.6, l1i: 5.2, codeKB: 4096,
		brMPKI: 3, taken: .78, footprint: 192 << 20, ilp: 2.8,
	}),
	define("605.mcf_s", "mcf", SpeedINT, DomCombOpt, "C", false, 1775, 1, params{
		load: .1855, store: .0470, branch: .1253,
		l1d: 54, l2d: 20.7, l3: 4.6, l1i: 3.2, codeKB: 256,
		brMPKI: 8.2, taken: .80, footprint: 3 << 30, ilp: 2.6,
	}),
	define("620.omnetpp_s", "omnetpp", SpeedINT, DomDESim, "C++", false, 1102, 1, params{
		load: .2276, store: .1265, branch: .1455,
		l1d: 20, l2d: 5, l3: 2.2, l1i: 2, codeKB: 1024,
		brMPKI: 4, taken: .68, footprint: 192 << 20, ilp: 2.0,
	}),
	define("623.xalancbmk_s", "xalancbmk", SpeedINT, DomDocProc, "C++", false, 1320, 1, params{
		load: .3408, store: .0790, branch: .3318,
		l1d: 16, l2d: 4, l3: 1.4, l1i: 1.5, codeKB: 1024,
		brMPKI: 3, taken: .74, footprint: 128 << 20, ilp: 2.7,
	}),
	define("625.x264_s", "x264", SpeedINT, DomVideo, "C", true, 12546, 3, params{
		load: .3721, store: .1027, branch: .0459,
		fp: .05, simd: .12,
		l1d: 10, l2d: 1.2, l3: 0.25, l1i: 0.6, codeKB: 512,
		brMPKI: 1, taken: .60, patterned: true,
		stride: .02, footprint: 64 << 20, ilp: 4.3,
	}),
	define("631.deepsjeng_s", "deepsjeng", SpeedINT, DomAI, "C++", true, 2250, 1, params{
		load: .1975, store: .0937, branch: .1175,
		l1d: 6, l2d: 1.5, l3: 0.4, l1i: 1.2, codeKB: 512,
		brMPKI: 4.5, taken: .55, footprint: 96 << 20, ilp: 3.0,
	}),
	define("641.leela_s", "leela", SpeedINT, DomAI, "C++", true, 2245, 1, params{
		load: .1425, store: .0532, branch: .0894,
		l1d: 4, l2d: 0.8, l3: 0.15, l1i: 0.8, codeKB: 384,
		brMPKI: 8.3, taken: .55, footprint: 64 << 20, ilp: 2.3,
	}),
	define("648.exchange2_s", "exchange2", SpeedINT, DomAI, "Fortran", true, 6643, 1, params{
		load: .2961, store: .2022, branch: .0867,
		l1d: 1, l2d: 0.1, l3: 0.02, l1i: 0.3, codeKB: 256,
		midBytes: 48 << 10,
		brMPKI:   1.5, taken: .60, patterned: true,
		footprint: 64 << 20, ilp: 2.9,
	}),
	define("657.xz_s", "xz", SpeedINT, DomCompress, "C", true, 8264, 2, params{
		load: .1334, store: .0473, branch: .0821,
		l1d: 18, l2d: 6, l3: 2.2, l1i: 0.5, codeKB: 256,
		brMPKI: 6, taken: .60, footprint: 512 << 20, ilp: 2.0,
	}),

	// ----------------------------------------------------- SPECrate INT
	define("500.perlbench_r", "perlbench", RateINT, DomCompiler, "C", false, 2696, 3, params{
		load: .2720, store: .1673, branch: .1816,
		l1d: 12, l2d: 1.5, l3: 0.3, l1i: 4.8, codeKB: 2048,
		brMPKI: 2.5, taken: .62, footprint: 128 << 20, ilp: 3.3,
	}),
	define("502.gcc_r", "gcc", RateINT, DomCompiler, "C", false, 3023, 5, params{
		load: .3451, store: .1664, branch: .1496,
		l1d: 15, l2d: 2.0, l3: 0.5, l1i: 5.1, codeKB: 4096,
		brMPKI: 3, taken: .78, footprint: 160 << 20, ilp: 2.8,
	}),
	define("505.mcf_r", "mcf", RateINT, DomCombOpt, "C", false, 999, 1, params{
		load: .1742, store: .0608, branch: .1154,
		l1d: 50, l2d: 20.5, l3: 4.5, l1i: 3.0, codeKB: 256,
		brMPKI: 8, taken: .80, footprint: 1536 << 20, ilp: 2.8,
	}),
	define("520.omnetpp_r", "omnetpp", RateINT, DomDESim, "C++", false, 1102, 1, params{
		load: .2210, store: .1227, branch: .1412,
		l1d: 24, l2d: 6, l3: 2.6, l1i: 2, codeKB: 1024,
		brMPKI: 4, taken: .70, footprint: 160 << 20, ilp: 1.8,
	}),
	define("523.xalancbmk_r", "xalancbmk", RateINT, DomDocProc, "C++", false, 1315, 1, params{
		load: .3426, store: .0807, branch: .3326,
		l1d: 20, l2d: 5, l3: 1.8, l1i: 1.5, codeKB: 1024,
		brMPKI: 3, taken: .72, footprint: 128 << 20, ilp: 2.6,
	}),
	define("525.x264_r", "x264", RateINT, DomVideo, "C", true, 4488, 3, params{
		load: .2303, store: .0647, branch: .0437,
		fp: .05, simd: .14,
		l1d: 8, l2d: 1.0, l3: 0.2, l1i: 0.5, codeKB: 512,
		brMPKI: 1, taken: .60, patterned: true,
		stride: .02, footprint: 48 << 20, ilp: 4.5,
	}),
	define("531.deepsjeng_r", "deepsjeng", RateINT, DomAI, "C++", true, 1929, 1, params{
		load: .1961, store: .0910, branch: .1161,
		l1d: 6, l2d: 1.5, l3: 0.4, l1i: 1.2, codeKB: 512,
		brMPKI: 4.5, taken: .55, footprint: 96 << 20, ilp: 3.0,
	}),
	define("541.leela_r", "leela", RateINT, DomAI, "C++", true, 2246, 1, params{
		load: .1428, store: .0533, branch: .0895,
		l1d: 4, l2d: 0.8, l3: 0.15, l1i: 0.8, codeKB: 384,
		brMPKI: 8.3, taken: .55, footprint: 64 << 20, ilp: 2.3,
	}),
	define("548.exchange2_r", "exchange2", RateINT, DomAI, "Fortran", true, 6644, 1, params{
		load: .2962, store: .2024, branch: .0869,
		l1d: 1, l2d: 0.1, l3: 0.02, l1i: 0.3, codeKB: 256,
		midBytes: 48 << 10,
		brMPKI:   1.5, taken: .60, patterned: true,
		footprint: 64 << 20, ilp: 2.9,
	}),
	define("557.xz_r", "xz", RateINT, DomCompress, "C", true, 1969, 2, params{
		load: .1733, store: .0387, branch: .1224,
		l1d: 18, l2d: 6, l3: 2.2, l1i: 0.5, codeKB: 256,
		brMPKI: 6, taken: .60, footprint: 384 << 20, ilp: 1.8,
	}),

	// ----------------------------------------------------- SPECspeed FP
	define("603.bwaves_s", "bwaves", SpeedFP, DomFluid, "Fortran", false, 66395, 2, params{
		load: .3100, store: .0442, branch: .1300, fp: .35,
		l1d: 22, l2d: 6, l3: 3.3, l1i: 0.3, codeKB: 256,
		brMPKI: 1.2, taken: .85, patterned: true, patternFrac: 0.18,
		stride: .10, footprint: 2 << 30, ilp: 4.2,
	}),
	define("607.cactubSSN_s", "cactubSSN", SpeedFP, DomPhysics, "C++/Fortran", true, 10976, 1, params{
		load: .4387, store: .0950, branch: .0180, fp: .30,
		l1d: 44, l2d: 7.2, l3: 2.6, l1i: 4, codeKB: 4096,
		midBytes: 96 << 10, warmBytes: 12 << 20,
		brMPKI: 0.5, taken: .80, patterned: true,
		footprint: 2 << 30, ilp: 2.6,
	}),
	define("619.lbm_s", "lbm", SpeedFP, DomFluid, "C", false, 4416, 1, params{
		load: .2962, store: .1768, branch: .0140, fp: .35,
		l1d: 40, l2d: 7, l3: 4.5, l1i: 0.1, codeKB: 128,
		brMPKI: 0.2, taken: .90, patterned: true,
		stride: .08, footprint: 1 << 30, ilp: 2.6,
	}),
	define("621.wrf_s", "wrf", SpeedFP, DomClimate, "Fortran/C", false, 18524, 1, params{
		load: .2320, store: .0580, branch: .0948, fp: .30,
		l1d: 12, l2d: 2, l3: 0.8, l1i: 8, codeKB: 8192,
		brMPKI: 1.2, taken: .75, patterned: true,
		footprint: 256 << 20, ilp: 2.4,
	}),
	define("627.cam4_s", "cam4", SpeedFP, DomClimate, "Fortran/C", true, 15594, 1, params{
		load: .2000, store: .1400, branch: .1092, fp: .30,
		l1d: 10, l2d: 2.5, l3: 0.9, l1i: 9, codeKB: 8192,
		midBytes: 48 << 10,
		brMPKI:   1.8, taken: .70, patterned: true,
		footprint: 256 << 20, ilp: 2.9,
	}),
	define("628.pop2_s", "pop2", SpeedFP, DomClimate, "Fortran/C", true, 18611, 1, params{
		load: .2171, store: .0841, branch: .1513, fp: .28,
		l1d: 8, l2d: 1.5, l3: 0.5, l1i: 10, codeKB: 12288,
		midBytes: 48 << 10,
		brMPKI:   1.5, taken: .70, patterned: true,
		footprint: 192 << 20, ilp: 3.3,
	}),
	define("638.imagick_s", "imagick", SpeedFP, DomVisual, "C", true, 66788, 1, params{
		load: .1816, store: .0046, branch: .0930, fp: .30, simd: .15,
		l1d: 14, l2d: 1.7, l3: 0.45, l1i: 0.5, codeKB: 512,
		brMPKI: 1, taken: .60, patterned: true,
		footprint: 256 << 20, ilp: 1.05,
	}),
	define("644.nab_s", "nab", SpeedFP, DomMolecular, "C", true, 13489, 1, params{
		load: .2349, store: .0751, branch: .0955, fp: .35,
		l1d: 9, l2d: 1.5, l3: 0.5, l1i: 1, codeKB: 512,
		brMPKI: 1.2, taken: .65, patterned: true,
		footprint: 96 << 20, ilp: 2.5,
	}),
	define("649.fotonik3d_s", "fotonik3d", SpeedFP, DomPhysics, "Fortran", true, 4280, 1, params{
		load: .3399, store: .1389, branch: .0384, fp: .30,
		l1d: 95, l2d: 8, l3: 4.8, l1i: 0.3, codeKB: 256,
		midBytes: 64 << 10,
		brMPKI:   0.3, taken: .85, patterned: true,
		stride: .05, footprint: 1536 << 20, ilp: 2.8,
	}),
	define("654.roms_s", "roms", SpeedFP, DomClimate, "Fortran", true, 22968, 1, params{
		load: .3202, store: .0802, branch: .0753, fp: .35,
		l1d: 16, l2d: 4, l3: 1.8, l1i: 1, codeKB: 512,
		brMPKI: 0.8, taken: .80, patterned: true,
		stride: .04, footprint: 1 << 30, ilp: 3.0,
	}),

	// ------------------------------------------------------ SPECrate FP
	define("503.bwaves_r", "bwaves", RateFP, DomFluid, "Fortran", false, 5488, 2, params{
		load: .3492, store: .0477, branch: .0951, fp: .35,
		l1d: 15, l2d: 4, l3: 2.0, l1i: 0.3, codeKB: 256,
		brMPKI: 1.2, taken: .85, patterned: true, patternFrac: 0.18,
		stride: .10, footprint: 512 << 20, ilp: 3.8,
	}),
	define("507.cactubSSN_r", "cactubSSN", RateFP, DomPhysics, "C++/Fortran", true, 1322, 1, params{
		load: .4362, store: .0953, branch: .0197, fp: .30,
		l1d: 42, l2d: 7, l3: 2.5, l1i: 4, codeKB: 4096,
		midBytes: 96 << 10, warmBytes: 12 << 20,
		brMPKI: 0.5, taken: .80, patterned: true,
		footprint: 1 << 30, ilp: 2.6,
	}),
	define("508.namd_r", "namd", RateFP, DomMolecular, "C++", false, 2237, 1, params{
		load: .3012, store: .1025, branch: .0175, fp: .40, simd: .06,
		l1d: 4, l2d: 0.6, l3: 0.1, l1i: 0.5, codeKB: 512,
		brMPKI: 0.3, taken: .80, patterned: true,
		footprint: 64 << 20, ilp: 3.2,
	}),
	define("510.parest_r", "parest", RateFP, DomBiomedical, "C++", true, 3461, 1, params{
		load: .2951, store: .0250, branch: .1149, fp: .35,
		l1d: 7, l2d: 1.5, l3: 0.4, l1i: 1, codeKB: 1024,
		brMPKI: 1, taken: .80, patterned: true,
		footprint: 128 << 20, ilp: 2.8,
	}),
	define("511.povray_r", "povray", RateFP, DomVisual, "C++", false, 3310, 1, params{
		load: .3030, store: .1313, branch: .1420, fp: .30,
		l1d: 6, l2d: 0.5, l3: 0.1, l1i: 1.5, codeKB: 1024,
		midBytes: 1 << 20,
		brMPKI:   1.5, taken: .70, patterned: true,
		footprint: 128 << 20, ilp: 3.2,
	}),
	define("519.lbm_r", "lbm", RateFP, DomFluid, "C", false, 1468, 1, params{
		load: .2835, store: .1509, branch: .0105, fp: .35,
		l1d: 35, l2d: 6, l3: 3.5, l1i: 0.1, codeKB: 128,
		brMPKI: 0.2, taken: .90, patterned: true,
		stride: .06, footprint: 512 << 20, ilp: 4.0,
	}),
	define("521.wrf_r", "wrf", RateFP, DomClimate, "Fortran/C", false, 3197, 1, params{
		load: .2294, store: .0593, branch: .0948, fp: .30,
		l1d: 12, l2d: 2, l3: 0.8, l1i: 8, codeKB: 8192,
		brMPKI: 1.2, taken: .75, patterned: true,
		footprint: 224 << 20, ilp: 2.3,
	}),
	define("526.blender_r", "blender", RateFP, DomVisual, "C/C++", true, 5682, 1, params{
		load: .3610, store: .1207, branch: .0789, fp: .25, simd: .08,
		l1d: 14, l2d: 2.5, l3: 0.8, l1i: 4, codeKB: 6144,
		brMPKI: 2, taken: .65,
		footprint: 256 << 20, ilp: 2.2,
	}),
	define("527.cam4_r", "cam4", RateFP, DomClimate, "Fortran/C", true, 2732, 1, params{
		load: .1999, store: .0837, branch: .1106, fp: .30,
		l1d: 10, l2d: 2.5, l3: 0.9, l1i: 9, codeKB: 8192,
		midBytes: 48 << 10,
		brMPKI:   1.8, taken: .70, patterned: true,
		footprint: 224 << 20, ilp: 2.9,
	}),
	define("538.imagick_r", "imagick", RateFP, DomVisual, "C", true, 4333, 1, params{
		load: .2255, store: .0797, branch: .1094, fp: .30, simd: .15,
		l1d: 10, l2d: 1.2, l3: 0.3, l1i: 0.5, codeKB: 512,
		brMPKI: 1, taken: .60, patterned: true,
		footprint: 128 << 20, ilp: 1.5,
	}),
	define("544.nab_r", "nab", RateFP, DomMolecular, "C", true, 2024, 1, params{
		load: .2370, store: .0746, branch: .0965, fp: .35,
		l1d: 9, l2d: 1.5, l3: 0.5, l1i: 1, codeKB: 512,
		brMPKI: 1.2, taken: .65, patterned: true,
		footprint: 96 << 20, ilp: 2.5,
	}),
	define("549.fotonik3d_r", "fotonik3d", RateFP, DomPhysics, "Fortran", true, 1288, 1, params{
		load: .3912, store: .1207, branch: .0252, fp: .30,
		l1d: 90, l2d: 6.5, l3: 4.0, l1i: 0.3, codeKB: 256,
		midBytes: 64 << 10,
		brMPKI:   0.3, taken: .85, patterned: true,
		stride: .05, footprint: 768 << 20, ilp: 2.2,
	}),
	define("554.roms_r", "roms", RateFP, DomClimate, "Fortran", true, 2609, 1, params{
		load: .3457, store: .0757, branch: .0673, fp: .35,
		l1d: 13, l2d: 3, l3: 1.2, l1i: 1, codeKB: 512,
		brMPKI: 0.8, taken: .80, patterned: true,
		stride: .04, footprint: 512 << 20, ilp: 3.2,
	}),
}
