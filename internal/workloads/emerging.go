package workloads

// emergingProfiles encodes the non-SPEC workloads of the paper's
// Section V case studies:
//
//   - EDA (Section V-D): 175.vpr and 300.twolf from CPU2000 —
//     pointer-chasing placement/routing codes whose hardware behaviour
//     the paper finds closest to 505.mcf_r/605.mcf_s.
//   - Graph analytics (Section V-F): pagerank and connected
//     components, each on two real-world graphs. Pagerank is distinct
//     from all of CPU2017 — random remote accesses drive very high
//     L1 TLB activity — while connected components behaves like
//     leela/deepsjeng/xz.
//   - Databases (Section V-E): Cassandra under YCSB workloads A
//     (update-heavy) and C (read-only). Their distinguishing features
//     are the ones the paper names: instruction-cache and
//     instruction-TLB pressure from a huge code footprint plus heavy
//     kernel involvement, unlike anything in CPU2017.
var emergingProfiles = []Profile{
	// ------------------------------------------------------------- EDA
	define("175.vpr", "vpr", EDA, DomEDA, "C", false, 110, 1, params{
		load: .28, store: .11, branch: .16,
		l1d: 40, l2d: 16, l3: 4.2, l1i: 1, codeKB: 384,
		brMPKI: 7.5, taken: .75, footprint: 256 << 20, ilp: 2.2,
	}),
	define("300.twolf", "twolf", EDA, DomEDA, "C", false, 90, 1, params{
		load: .30, store: .09, branch: .15,
		l1d: 45, l2d: 18, l3: 4.0, l1i: 1.2, codeKB: 384,
		brMPKI: 7, taken: .78, footprint: 192 << 20, ilp: 2.1,
	}),

	// ----------------------------------------------------------- Graph
	define("pr-web", "pagerank", Graph, DomGraph, "C++", false, 450, 1, params{
		load: .35, store: .05, branch: .14,
		l1d: 50, l2d: 22, l3: 6, l1i: 0.5, codeKB: 256,
		brMPKI: 5, taken: .60,
		footprint: 4 << 30, ilp: 2.0,
	}),
	define("pr-twitter", "pagerank", Graph, DomGraph, "C++", false, 520, 1, params{
		load: .36, store: .05, branch: .13,
		l1d: 55, l2d: 25, l3: 7, l1i: 0.5, codeKB: 256,
		brMPKI: 5.5, taken: .60,
		footprint: 6 << 30, ilp: 1.9,
	}),
	define("cc-web", "concomp", Graph, DomGraph, "C++", false, 280, 1, params{
		load: .18, store: .06, branch: .10,
		l1d: 6, l2d: 1.5, l3: 0.5, l1i: 0.6, codeKB: 256,
		brMPKI: 6, taken: .55, footprint: 512 << 20, ilp: 2.4,
	}),
	define("cc-twitter", "concomp", Graph, DomGraph, "C++", false, 320, 1, params{
		load: .17, store: .05, branch: .10,
		l1d: 7, l2d: 1.8, l3: 0.6, l1i: 0.6, codeKB: 256,
		brMPKI: 6.5, taken: .55, footprint: 768 << 20, ilp: 2.3,
	}),

	// -------------------------------------------------------- Database
	define("cas-WA", "cassandra", Database, DomDatabase, "Java", false, 800, 1, params{
		load: .27, store: .13, branch: .17, kernel: .30,
		l1d: 15, l2d: 4, l3: 1.5, l1i: 25, codeKB: 16384,
		brMPKI: 4, taken: .60, footprint: 1 << 30, ilp: 2.2,
	}),
	define("cas-WC", "cassandra", Database, DomDatabase, "Java", false, 750, 1, params{
		load: .30, store: .07, branch: .18, kernel: .25,
		l1d: 13, l2d: 3.5, l3: 1.2, l1i: 20, codeKB: 16384,
		brMPKI: 3.5, taken: .62, footprint: 1 << 30, ilp: 2.4,
	}),
}
