package workloads

import (
	"strings"
	"testing"
)

func TestSuiteCounts(t *testing.T) {
	counts := map[Suite]int{
		SpeedINT: 10, RateINT: 10, SpeedFP: 10, RateFP: 13,
		CPU2006INT: 12, CPU2006FP: 17,
		EDA: 2, Graph: 4, Database: 2,
	}
	for suite, want := range counts {
		if got := len(BySuite(suite)); got != want {
			t.Errorf("%v has %d profiles, want %d", suite, got, want)
		}
	}
	if got := len(CPU2017()); got != 43 {
		t.Fatalf("CPU2017 has %d benchmarks, want 43 (paper Table I)", got)
	}
	if got := len(CPU2006()); got != 29 {
		t.Fatalf("CPU2006 has %d benchmarks, want 29", got)
	}
	if got := len(Emerging()); got != 8 {
		t.Fatalf("Emerging has %d workloads, want 8", got)
	}
}

func TestAllProfilesValid(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range All() {
		if p.Name == "" || p.Base == "" {
			t.Errorf("profile %+v missing name or base", p)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
		if err := p.Spec.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", p.Name, err)
		}
		if p.ILP <= 0 {
			t.Errorf("%s: ILP %v", p.Name, p.ILP)
		}
		if p.InputSets < 1 {
			t.Errorf("%s: input sets %d", p.Name, p.InputSets)
		}
		if p.DynInstrBillions <= 0 {
			t.Errorf("%s: instruction count %v", p.Name, p.DynInstrBillions)
		}
	}
}

func TestTableIMixTranscription(t *testing.T) {
	// Spot-check the transcription of Table I.
	cases := []struct {
		name                string
		load, store, branch float64
		icount              float64
	}{
		{"605.mcf_s", .1855, .0470, .1253, 1775},
		{"623.xalancbmk_s", .3408, .0790, .3318, 1320},
		{"507.cactubSSN_r", .4362, .0953, .0197, 1322},
		{"638.imagick_s", .1816, .0046, .0930, 66788},
		{"548.exchange2_r", .2962, .2024, .0869, 6644},
	}
	for _, c := range cases {
		p, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Spec.LoadFrac != c.load || p.Spec.StoreFrac != c.store || p.Spec.BranchFrac != c.branch {
			t.Errorf("%s mix = %v/%v/%v, want %v/%v/%v", c.name,
				p.Spec.LoadFrac, p.Spec.StoreFrac, p.Spec.BranchFrac, c.load, c.store, c.branch)
		}
		if p.DynInstrBillions != c.icount {
			t.Errorf("%s icount %v, want %v", c.name, p.DynInstrBillions, c.icount)
		}
	}
}

func TestSpeedHigherInstructionCounts(t *testing.T) {
	// Speed benchmarks have up to ~8x (FP) / ~2x (INT) the rate
	// versions' instruction counts (Section II-B).
	for _, pair := range RateSpeedPairs() {
		r, s := pair[0], pair[1]
		// Table I itself lists leela and exchange2 with a speed count
		// one billion below the rate count, so allow a 0.1% slack.
		if s.DynInstrBillions < r.DynInstrBillions*0.999 {
			t.Errorf("%s: speed icount %v < rate %v", s.Name, s.DynInstrBillions, r.DynInstrBillions)
		}
	}
}

func TestRateSpeedPairs(t *testing.T) {
	pairs := RateSpeedPairs()
	// 43 benchmarks, 5 of which exist in only one category
	// (namd, parest, povray, blender rate-only; pop2 speed-only):
	// 19 shared families.
	if len(pairs) != 19 {
		t.Fatalf("got %d rate/speed pairs, want 19", len(pairs))
	}
	for _, p := range pairs {
		if p[0].Base != p[1].Base {
			t.Errorf("pair bases differ: %s vs %s", p[0].Name, p[1].Name)
		}
		if !strings.HasSuffix(p[0].Name, "_r") || !strings.HasSuffix(p[1].Name, "_s") {
			t.Errorf("pair order wrong: %s, %s", p[0].Name, p[1].Name)
		}
	}
}

func TestSingleCategoryBenchmarks(t *testing.T) {
	// Section IV-D: namd, parest, povray, blender are rate-only;
	// pop2 is speed-only.
	rateOnly := []string{"508.namd_r", "510.parest_r", "511.povray_r", "526.blender_r"}
	for _, name := range rateOnly {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing rate-only benchmark %s", name)
		}
	}
	if _, err := ByName("628.pop2_s"); err != nil {
		t.Error("missing speed-only benchmark 628.pop2_s")
	}
}

func TestInputSets(t *testing.T) {
	multi := map[string]int{
		"500.perlbench_r": 3, "502.gcc_r": 5, "525.x264_r": 3, "557.xz_r": 2,
		"600.perlbench_s": 3, "602.gcc_s": 3, "625.x264_s": 3, "657.xz_s": 2,
		"503.bwaves_r": 2, "603.bwaves_s": 2,
	}
	for name, want := range multi {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.InputSets != want {
			t.Errorf("%s has %d input sets, want %d", name, p.InputSets, want)
		}
	}
}

func TestWorkloadInputPerturbation(t *testing.T) {
	p, err := ByName("502.gcc_r")
	if err != nil {
		t.Fatal(err)
	}
	w1 := p.WorkloadInput(1)
	w2 := p.WorkloadInput(2)
	if w1.Key == w2.Key {
		t.Fatal("input sets must have distinct keys")
	}
	if w1.Spec == w2.Spec {
		t.Fatal("input sets should be perturbed")
	}
	if err := w2.Spec.Validate(); err != nil {
		t.Fatalf("perturbed input spec invalid: %v", err)
	}
	// All five gcc inputs stay valid.
	for i := 1; i <= p.InputSets; i++ {
		if err := p.WorkloadInput(i).Spec.Validate(); err != nil {
			t.Errorf("input %d: %v", i, err)
		}
	}
}

func TestWorkloadInputPanicsOutOfRange(t *testing.T) {
	p, _ := ByName("505.mcf_r")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range input set")
		}
	}()
	p.WorkloadInput(2)
}

func TestInputKeyAndLabel(t *testing.T) {
	single, _ := ByName("505.mcf_r")
	if single.InputKey(1) != "505.mcf_r" || single.InputLabel(1) != "505.mcf_r" {
		t.Error("single-input naming wrong")
	}
	multi, _ := ByName("502.gcc_r")
	if multi.InputKey(2) != "502.gcc_r/input2" {
		t.Errorf("InputKey = %q", multi.InputKey(2))
	}
	if multi.InputLabel(2) != "502.gcc_r-2" {
		t.Errorf("InputLabel = %q", multi.InputLabel(2))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("999.nothing"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestNewBenchmarkFlags(t *testing.T) {
	// The paper: 9 new FP benchmarks, 5 new INT families (AI trio +
	// x264 + xz), each present in rate and speed where applicable.
	newCount := 0
	for _, p := range CPU2017() {
		if p.NewIn2017 {
			newCount++
		}
	}
	// Families new in 2017: deepsjeng, leela, exchange2, x264, xz (INT,
	// both categories = 10 entries); the nine new FP families of
	// Section II-A appear as 8 rate + 7 speed entries = 15.
	if newCount != 25 {
		t.Fatalf("%d benchmarks flagged new, want 25", newCount)
	}
}

func TestDomainsMatchTableVIII(t *testing.T) {
	cases := map[string]Domain{
		"505.mcf_r":       DomCombOpt,
		"520.omnetpp_r":   DomDESim,
		"523.xalancbmk_r": DomDocProc,
		"510.parest_r":    DomBiomedical,
		"549.fotonik3d_r": DomPhysics,
		"554.roms_r":      DomClimate,
		"544.nab_r":       DomMolecular,
		"526.blender_r":   DomVisual,
		"519.lbm_r":       DomFluid,
		"531.deepsjeng_r": DomAI,
	}
	for name, want := range cases {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Domain != want {
			t.Errorf("%s domain %q, want %q", name, p.Domain, want)
		}
	}
}

func TestSuiteString(t *testing.T) {
	if SpeedINT.String() != "SPECspeed INT" || RateFP.String() != "SPECrate FP" {
		t.Fatal("suite names wrong")
	}
	if !RateFP.IsCPU2017() || CPU2006INT.IsCPU2017() {
		t.Fatal("IsCPU2017 wrong")
	}
	if !CPU2006FP.IsCPU2006() || EDA.IsCPU2006() {
		t.Fatal("IsCPU2006 wrong")
	}
}

func TestBuildSpecHitsRegionBudget(t *testing.T) {
	// Region fractions must always sum to <= 1 with hot >= 0, even for
	// aggressive targets.
	p := params{
		load: .4, store: .1, branch: .1,
		l1d: 90, l2d: 40, l3: 20, l1i: 10,
		stride: .3, taken: .6, brMPKI: 8, ilp: 2,
	}
	spec := buildSpec(p)
	if err := spec.Validate(); err != nil {
		t.Fatalf("over-constrained targets produced invalid spec: %v", err)
	}
	sum := spec.HotFrac + spec.MidFrac + spec.WarmFrac + spec.StrideFrac
	if sum > 1+1e-9 {
		t.Fatalf("region fractions sum to %v", sum)
	}
}

func TestMemoryBoundProfilesHaveColdTraffic(t *testing.T) {
	// Profiles with high L3 targets must actually send references to
	// the cold region (the remainder after hot/mid/warm/stride).
	for _, name := range []string{"505.mcf_r", "pr-twitter", "473.astar"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rem := 1 - p.Spec.HotFrac - p.Spec.MidFrac - p.Spec.WarmFrac - p.Spec.StrideFrac
		if rem < 0.005 {
			t.Errorf("%s: cold fraction %v too small for a memory-bound profile", name, rem)
		}
	}
}
