// Package metrics is a minimal, dependency-free instrumentation
// library: counters, gauges, and histograms registered in a Registry
// and exposed in the Prometheus text format (version 0.0.4). It
// implements just what the spec17d server needs — monotonic counters
// (optionally labelled), gauges, and cumulative-bucket histograms —
// with lock-free hot paths so instrumented request handling stays
// cheap under concurrency.
package metrics

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v, which must be non-negative; negative deltas are dropped
// (counters are monotonic by definition).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram accumulates observations into cumulative buckets, exposed
// Prometheus-style as name_bucket{le="..."} plus name_sum/name_count.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // sorted upper bounds, +Inf implicit
	buckets []uint64  // non-cumulative per-bound counts
	sum     float64
	count   uint64
}

// Observe records one observation. NaN observations are dropped and
// negative ones clamped to zero: both arise in practice from failed
// timers and clock steps, and either would silently corrupt sum (NaN
// poisons it forever; negatives walk it backwards) while the buckets
// kept counting — an exposition no aggregator can repair.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// First bucket whose upper bound contains v; the implicit +Inf
	// bucket (index len(bounds)) catches the rest.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns a self-consistent copy of the histogram state:
// buckets, sum, and count captured under one lock acquisition, so an
// exposition rendered from it always satisfies the histogram
// invariants (sum of buckets == count) even while observations land
// concurrently.
func (h *Histogram) snapshot() (buckets []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.buckets...), h.sum, h.count
}

// DefBuckets are latency-shaped default histogram bounds, in seconds.
var DefBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30,
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric with zero or more labelled series.
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label-values key -> *Counter/*Gauge/*Histogram
	order  []string       // insertion order of keys
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use. Registration methods panic
// on invalid or conflicting definitions — metric identity is a
// programming-time property, not an input.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRe.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("metrics: %q re-registered with a different type or label set", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		bounds: bounds,
		series: make(map[string]any),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the series for the given label values, creating it with
// mk on first use.
func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, typeCounter, nil, nil)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, typeGauge, nil, nil)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or fetches) an unlabelled histogram with the
// given bucket upper bounds (nil = DefBuckets). Bounds must be sorted
// strictly increasing.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	bounds = checkBounds(name, bounds)
	f := r.register(name, help, typeHistogram, nil, bounds)
	return f.get(nil, func() any { return newHistogram(bounds) }).(*Histogram)
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	bounds = checkBounds(name, bounds)
	return &HistogramVec{r.register(name, help, typeHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  bounds,
		buckets: make([]uint64, len(bounds)+1),
	}
}

func checkBounds(name string, bounds []float64) []float64 {
	if bounds == nil {
		return DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %q bucket bounds not strictly increasing", name))
		}
	}
	return append([]float64(nil), bounds...)
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.order) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, key := range f.order {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, "\x00")
		}
		switch s := f.series[key].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", 0), formatFloat(s.Value()))
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", 0), formatFloat(s.Value()))
		case *Histogram:
			buckets, sum, count := s.snapshot()
			cum := uint64(0)
			for i, bound := range s.bounds {
				cum += buckets[i]
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, values, "le", bound), cum)
			}
			cum += buckets[len(s.bounds)]
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, values, "le", math.Inf(1)), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", 0), formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", 0), count)
		}
	}
}

// labelString renders {k="v",...}, optionally with a trailing le bound
// for histogram buckets. Empty when there are no labels at all.
func labelString(names, values []string, le string, bound float64) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var parts []string
	for i, n := range names {
		// %q escaping (backslash, quote, newline) matches the
		// Prometheus label-value escaping rules.
		parts = append(parts, fmt.Sprintf("%s=%q", n, values[i]))
	}
	if le != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", le, formatFloat(bound)))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
