package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestSnapshotTyped: the typed read path reports the same values the
// instruments hold, family metadata included.
func TestSnapshotTyped(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Add(3)
	g := r.Gauge("depth", "Depth.")
	g.Set(-2)
	v := r.CounterVec("reqs_total", "Requests.", "endpoint", "code")
	v.With("/a", "200").Add(5)
	v.With("/a", "500").Inc()
	h := r.Histogram("lat_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d families, want 4", len(snap))
	}
	if got := snap.Value("jobs_total"); got != 3 {
		t.Errorf("jobs_total = %v, want 3", got)
	}
	if got := snap.Value("depth"); got != -2 {
		t.Errorf("depth = %v, want -2", got)
	}
	if got := snap.Value("reqs_total", "/a", "200"); got != 5 {
		t.Errorf(`reqs_total{/a,200} = %v, want 5`, got)
	}
	if got := snap.Value("reqs_total", "/a", "500"); got != 1 {
		t.Errorf(`reqs_total{/a,500} = %v, want 1`, got)
	}
	// Absent families, series, and never-observed label values read 0.
	if got := snap.Value("nope_total"); got != 0 {
		t.Errorf("absent family = %v, want 0", got)
	}
	if got := snap.Value("reqs_total", "/b", "200"); got != 0 {
		t.Errorf("absent series = %v, want 0", got)
	}

	fs, ok := snap.Family("lat_seconds")
	if !ok {
		t.Fatal("lat_seconds family missing")
	}
	if fs.Type != "histogram" || len(fs.Bounds) != 2 {
		t.Fatalf("lat_seconds: type %q bounds %v", fs.Type, fs.Bounds)
	}
	ss := fs.Series[0]
	if ss.Count != 3 || ss.Sum != 11 {
		t.Errorf("histogram count %d sum %v, want 3 and 11", ss.Count, ss.Sum)
	}
	want := []uint64{1, 1, 1} // (≤1, ≤2, +Inf) non-cumulative
	for i, b := range ss.Buckets {
		if b != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, b, want[i])
		}
	}

	fs, _ = snap.Family("reqs_total")
	if len(fs.LabelNames) != 2 || fs.LabelNames[0] != "endpoint" {
		t.Errorf("reqs_total label names %v", fs.LabelNames)
	}
	if got := fs.Series[0].LabelValues; len(got) != 2 || got[0] != "/a" || got[1] != "200" {
		t.Errorf("first series label values %v", got)
	}
}

// TestSnapshotDetached: a snapshot is a copy; later observations do
// not leak into it.
func TestSnapshotDetached(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	snap := r.Snapshot()
	h.Observe(0.5)
	h.Observe(2)
	fs, _ := snap.Family("h")
	if fs.Series[0].Count != 1 || fs.Series[0].Buckets[0] != 1 {
		t.Errorf("snapshot mutated by later observations: %+v", fs.Series[0])
	}
}

// TestHistogramObserveRejectsNaNAndNegative is the fail-on-old
// regression test for the Observe hardening: a NaN (failed timer) must
// be dropped entirely, and a negative duration (clock step) clamped to
// zero — previously both landed in sum, poisoning it permanently (NaN)
// or walking it backwards, while count kept rising.
func TestHistogramObserveRejectsNaNAndNegative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1})
	h.Observe(math.NaN())
	if c, s := h.Count(), h.Sum(); c != 0 || s != 0 || math.IsNaN(s) {
		t.Fatalf("after NaN observe: count %d sum %v, want 0 and 0", c, s)
	}
	h.Observe(-5)
	if c, s := h.Count(), h.Sum(); c != 1 || s != 0 {
		t.Fatalf("after negative observe: count %d sum %v, want 1 and 0 (clamped)", c, s)
	}
	// The clamped observation lands in the first bucket, keeping the
	// bucket/count invariant intact.
	snap := r.Snapshot()
	fs, _ := snap.Family("lat")
	if fs.Series[0].Buckets[0] != 1 {
		t.Errorf("clamped observation not in first bucket: %v", fs.Series[0].Buckets)
	}
	h.Observe(0.5)
	if c, s := h.Count(), h.Sum(); c != 2 || s != 0.5 {
		t.Fatalf("after valid observe: count %d sum %v, want 2 and 0.5", c, s)
	}
}

// TestSnapshotTornScrapeRace hammers every instrument type from
// concurrent writers — including label-series creation via With —
// while a reader snapshots in a loop, asserting per-snapshot histogram
// invariants. Run under -race this doubles as the data-race proof for
// the Range/Snapshot visitor.
func TestSnapshotTornScrapeRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	cv := r.CounterVec("cv_total", "", "k")
	hv := r.HistogramVec("hv_seconds", "", []float64{0.5, 1, 2}, "k")

	const writers = 4
	const perWriter = 2000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			labels := []string{"a", "b", "c", "d"}
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				cv.With(labels[i%len(labels)]).Inc()
				hv.With(labels[(i+w)%len(labels)]).Observe(1.0)
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()

	scrapes := 0
	for {
		select {
		case <-stop:
			if scrapes == 0 {
				t.Fatal("no snapshot raced the writers")
			}
			// Final state: every observation accounted for.
			snap := r.Snapshot()
			if got := snap.Value("c_total"); got != writers*perWriter {
				t.Errorf("c_total = %v, want %d", got, writers*perWriter)
			}
			fs, _ := snap.Family("hv_seconds")
			var total uint64
			for _, ss := range fs.Series {
				total += ss.Count
			}
			if total != writers*perWriter {
				t.Errorf("hv_seconds total count = %d, want %d", total, writers*perWriter)
			}
			return
		default:
		}
		snap := r.Snapshot()
		scrapes++
		fs, ok := snap.Family("hv_seconds")
		if !ok {
			continue
		}
		for _, ss := range fs.Series {
			var sum uint64
			for _, b := range ss.Buckets {
				sum += b
			}
			if sum != ss.Count {
				t.Fatalf("scrape %d: torn histogram snapshot: buckets sum %d, count %d", scrapes, sum, ss.Count)
			}
			// All observations are 1.0s; a torn sum shows as a
			// non-integer or as disagreement with count.
			if ss.Sum != float64(ss.Count) {
				t.Fatalf("scrape %d: sum %v disagrees with count %d", scrapes, ss.Sum, ss.Count)
			}
		}
	}
}
