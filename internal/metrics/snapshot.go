package metrics

// The typed read path of the registry. Prometheus text exposition
// (WritePrometheus) was historically the registry's only way out; the
// Snapshot/Range API gives in-process consumers — the /v1/status
// handler, the insight plane's metric-history recorder — the same
// self-consistent view as typed Go values, without parsing text or
// holding private metric handles.

// SeriesSnapshot is one labelled series' state at capture time. For
// counters and gauges only Value is meaningful; for histograms,
// Buckets (non-cumulative per-bound counts, the implicit +Inf bucket
// last), Sum, and Count are captured under one lock acquisition, so
// the histogram invariant (sum of Buckets == Count) always holds
// within one snapshot.
type SeriesSnapshot struct {
	// LabelValues aligns with the family's LabelNames; empty for
	// unlabelled series.
	LabelValues []string
	Value       float64
	Buckets     []uint64
	Sum         float64
	Count       uint64
}

// FamilySnapshot is one metric family's state at capture time.
type FamilySnapshot struct {
	Name       string
	Help       string
	Type       string // "counter", "gauge", or "histogram"
	LabelNames []string
	Bounds     []float64 // histogram upper bounds (+Inf implicit)
	Series     []SeriesSnapshot
}

// Range visits every registered family in registration order with a
// point-in-time snapshot of its series. Each family is captured under
// its own lock (the same discipline WritePrometheus uses), so a
// snapshot is self-consistent per family even while observations land
// concurrently. Returning false from fn stops the walk.
func (r *Registry) Range(fn func(FamilySnapshot) bool) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if !fn(f.snapshot()) {
			return
		}
	}
}

// Snapshot captures every family via Range. The result is detached:
// mutating it never touches the registry, and later observations never
// mutate it.
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	r.Range(func(fs FamilySnapshot) bool {
		out = append(out, fs)
		return true
	})
	return out
}

// Snapshot is a full registry capture, with lookup helpers.
type Snapshot []FamilySnapshot

// Family returns the named family's snapshot.
func (s Snapshot) Family(name string) (FamilySnapshot, bool) {
	for _, fs := range s {
		if fs.Name == name {
			return fs, true
		}
	}
	return FamilySnapshot{}, false
}

// Value returns the named counter/gauge series' value, matching
// labelValues against the family's label order. Missing families and
// series — including labelled series never yet observed — read as 0,
// exactly as Prometheus rate() treats an absent sample.
func (s Snapshot) Value(name string, labelValues ...string) float64 {
	fs, ok := s.Family(name)
	if !ok {
		return 0
	}
	for _, ss := range fs.Series {
		if equalStrings(ss.LabelValues, labelValues) {
			return ss.Value
		}
	}
	return 0
}

// snapshot captures one family's series under its lock.
func (f *family) snapshot() FamilySnapshot {
	fs := FamilySnapshot{
		Name:       f.name,
		Help:       f.help,
		Type:       f.typ,
		LabelNames: f.labels,
		Bounds:     f.bounds,
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	fs.Series = make([]SeriesSnapshot, 0, len(f.order))
	for _, key := range f.order {
		var values []string
		if len(f.labels) > 0 {
			values = splitLabelKey(key)
		}
		ss := SeriesSnapshot{LabelValues: values}
		switch s := f.series[key].(type) {
		case *Counter:
			ss.Value = s.Value()
		case *Gauge:
			ss.Value = s.Value()
		case *Histogram:
			ss.Buckets, ss.Sum, ss.Count = s.snapshot()
		}
		fs.Series = append(fs.Series, ss)
	}
	return fs
}

// splitLabelKey reverses the "\x00"-joined series key.
func splitLabelKey(key string) []string {
	var out []string
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			out = append(out, key[start:i])
			start = i + 1
		}
	}
	return append(out, key[start:])
}
