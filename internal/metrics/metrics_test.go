package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs processed.")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // dropped: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value = %v, want 3.5", got)
	}
	// Re-registering the same name/type returns the same counter.
	if c2 := r.Counter("jobs_total", "Jobs processed."); c2 != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("inflight", "In-flight jobs.")
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("Value = %v, want 3", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("requests_total", "Requests.", "endpoint", "code")
	v.With("/healthz", "200").Inc()
	v.With("/healthz", "200").Inc()
	v.With("/metrics", "200").Inc()
	if got := v.With("/healthz", "200").Value(); got != 2 {
		t.Errorf("healthz count = %v, want 2", got)
	}
	if got := v.With("/metrics", "200").Value(); got != 1 {
		t.Errorf("metrics count = %v, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 102.65 {
		t.Errorf("Sum = %v, want 102.65", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: le=0.1 has 2 (0.05 and the boundary 0.1),
	// le=1 has 3, le=10 has 4, +Inf has all 5.
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 102.65`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A counter.").Add(2)
	r.Gauge("b", "A gauge.").Set(-1.5)
	r.CounterVec("c_total", "Labelled.", "x").With(`quo"te`).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total A counter.\n# TYPE a_total counter\na_total 2\n",
		"# TYPE b gauge\nb -1.5\n",
		"c_total{x=\"quo\\\"te\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families with no series are omitted entirely.
	r2 := NewRegistry()
	r2.CounterVec("unused_total", "Never incremented.", "x")
	var b2 strings.Builder
	if err := r2.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != "" {
		t.Errorf("empty family rendered: %q", b2.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "")
	expectPanic("bad metric name", func() { r.Counter("bad-name", "") })
	expectPanic("bad label name", func() { r.CounterVec("v_total", "", "not-ok") })
	expectPanic("type clash", func() { r.Gauge("ok_total", "") })
	expectPanic("label clash", func() { r.CounterVec("ok_total", "", "x") })
	expectPanic("bad buckets", func() { r.Histogram("h", "", []float64{1, 1}) })
	v := r.CounterVec("labelled_total", "", "x", "y")
	expectPanic("label arity", func() { v.With("only-one") })
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	v := r.CounterVec("v_total", "", "w")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / per)
				v.With(string(rune('a' + w%2))).Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %v, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	total := v.With("a").Value() + v.With("b").Value()
	if total != workers*per {
		t.Errorf("vec total = %v, want %d", total, workers*per)
	}
}

// TestHistogramSnapshotConsistency scrapes while observations land and
// checks each exposition is self-consistent: every observation is 1.0,
// so h_sum must equal h_count and the +Inf bucket must hold every
// observation counted. A rendering that read buckets, sum, and count
// under separate lock acquisitions would tear.
func TestHistogramSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{0.5, 2})

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					h.Observe(1.0)
				}
			}
		}()
	}

	for i := 0; i < 200; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		var inf, count uint64
		var sum float64
		var haveInf, haveCount, haveSum bool
		for _, line := range strings.Split(b.String(), "\n") {
			val := line[strings.LastIndex(line, " ")+1:]
			switch {
			case strings.HasPrefix(line, `h_seconds_bucket{le="+Inf"}`):
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					t.Fatalf("parsing %q: %v", line, err)
				}
				inf, haveInf = n, true
			case strings.HasPrefix(line, "h_seconds_count"):
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					t.Fatalf("parsing %q: %v", line, err)
				}
				count, haveCount = n, true
			case strings.HasPrefix(line, "h_seconds_sum"):
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					t.Fatalf("parsing %q: %v", line, err)
				}
				sum, haveSum = f, true
			}
		}
		if !haveInf || !haveCount || !haveSum {
			t.Fatalf("exposition missing histogram series:\n%s", b.String())
		}
		if inf != count {
			t.Fatalf("scrape %d: +Inf bucket = %d, count = %d (torn snapshot)", i, inf, count)
		}
		if sum != float64(count) {
			t.Fatalf("scrape %d: sum = %v, count = %d (all observations are 1.0; torn snapshot)", i, sum, count)
		}
	}
	close(done)
	wg.Wait()
}

// TestLabelValueEscaping pins the exposition escaping rules: label
// values may carry backslashes, quotes, and newlines, and must land
// escaped exactly as Prometheus's text format requires, one series per
// distinct raw value.
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "Escaping.", "path")
	v.With(`back\slash`).Inc()
	v.With("new\nline").Inc()
	v.With(`quo"te`).Add(2)
	v.With("plain").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`esc_total{path="back\\slash"} 1`,
		`esc_total{path="new\nline"} 1`,
		`esc_total{path="quo\"te"} 2`,
		`esc_total{path="plain"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// A raw newline inside a label value would corrupt the line-based
	// format for every series after it.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "line") {
			t.Errorf("unescaped newline split a series line: %q", line)
		}
	}
}

// TestHelpEscaping: HELP text with backslashes and newlines must stay
// on one line.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "first\nsecond \\ third").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP h_total first\nsecond \\ third`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}

// TestLabelledSnapshotConsistency is the torn-scrape check for
// labelled series: labelled histograms and counters are updated from
// several goroutines while WritePrometheus renders, and every scrape
// must be self-consistent per series — all observations are 1.0, so
// for each label value sum == count == +Inf bucket. Run under -race
// this also proves the vec maps tolerate concurrent With/write.
func TestLabelledSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("hv_seconds", "", []float64{0.5, 2}, "w")
	cv := r.CounterVec("cv_total", "", "w")

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		label := string(rune('a' + w%2))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					hv.With(label).Observe(1.0)
					cv.With(label).Inc()
				}
			}
		}()
	}

	parse := func(line string) float64 {
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	for i := 0; i < 200; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		type series struct {
			inf, count, sum float64
			seen            int
		}
		got := map[string]*series{}
		at := func(label string) *series {
			if got[label] == nil {
				got[label] = &series{}
			}
			return got[label]
		}
		for _, line := range strings.Split(b.String(), "\n") {
			for _, label := range []string{"a", "b"} {
				switch {
				case strings.HasPrefix(line, `hv_seconds_bucket{w="`+label+`",le="+Inf"}`):
					s := at(label)
					s.inf, s.seen = parse(line), s.seen+1
				case strings.HasPrefix(line, `hv_seconds_count{w="`+label+`"}`):
					s := at(label)
					s.count, s.seen = parse(line), s.seen+1
				case strings.HasPrefix(line, `hv_seconds_sum{w="`+label+`"}`):
					s := at(label)
					s.sum, s.seen = parse(line), s.seen+1
				}
			}
		}
		for label, s := range got {
			if s.seen != 3 {
				t.Fatalf("scrape %d label %s: %d of 3 series lines present", i, label, s.seen)
			}
			if s.inf != s.count || s.sum != s.count {
				t.Fatalf("scrape %d label %s: +Inf %v, count %v, sum %v (torn snapshot)",
					i, label, s.inf, s.count, s.sum)
			}
		}
	}
	close(done)
	wg.Wait()
}
