// Package admission is spec17d's overload-protection layer: the
// dependency-free admission controller that decides, before any work
// is queued, whether a request may enter the system at all. It
// complements the layers below it — the result cache absorbs repeats,
// singleflight absorbs stampedes, the scheduler bounds concurrency —
// by bounding *acceptance*: without it the daemon accepts unbounded
// work and one burst of expensive requests queues minutes of latent
// computation that outlives every interested client.
//
// Three mechanisms, all optional (zero disables each):
//
//   - A token-bucket rate limiter keyed per client (API key, falling
//     back to remote IP). Buckets refill at Rate tokens/sec up to
//     Burst; a request is admitted only if its cost fits the bucket.
//   - A cost model (Cost) that charges by instructions × workloads,
//     normalized so one experiment at default fidelity costs 1 token —
//     a full report at maximum fidelity cannot hide behind the same
//     budget as a cache hit.
//   - A global in-flight limiter bounding concurrently admitted
//     compute requests, independent of per-client budgets.
//
// Rejections are counted in spec17_admission_rejected_total{reason}.
// Every method on a nil *Controller admits, so call sites need no
// enabled-checks.
package admission

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Rejection reasons, used both as the metric's reason label and as
// machine-readable detail in error envelopes.
const (
	ReasonRateLimited = "rate_limited" // per-client token bucket empty
	ReasonInFlight    = "inflight"     // global in-flight limit reached
	// ReasonQueueFull and ReasonQueueTimeout are recorded by the server
	// when the scheduler (not the controller) sheds work, so one metric
	// family covers every shed path.
	ReasonQueueFull    = "queue_full"
	ReasonQueueTimeout = "queue_timeout"
)

// DefaultCostInstructions is the instruction count that costs one
// token for one workload: the measurement default (see
// machine.RunOptions), so `GET /v1/experiments/{id}` with no options
// costs exactly 1.
const DefaultCostInstructions = 400_000

// Cost charges a request by instructions × workloads, in tokens. One
// workload at the default fidelity costs 1; cost scales linearly in
// both dimensions and never drops below 1, so even a cache hit spends
// a token — admission happens before the cache is consulted.
func Cost(instructions, workloads int) float64 {
	if instructions <= 0 {
		instructions = DefaultCostInstructions
	}
	if workloads < 1 {
		workloads = 1
	}
	c := float64(instructions) * float64(workloads) / DefaultCostInstructions
	if c < 1 {
		return 1
	}
	return c
}

// Config configures a Controller. The zero value admits everything.
type Config struct {
	// Rate is the per-client refill rate in tokens per second.
	// 0 disables rate limiting entirely.
	Rate float64
	// Burst is the per-client bucket capacity. <= 0 defaults to
	// max(Rate, 1). A request costing more than Burst is charged Burst
	// (it drains a full bucket) rather than being unservable forever.
	Burst float64
	// MaxInFlight bounds concurrently admitted compute requests across
	// all clients. 0 disables the in-flight limit.
	MaxInFlight int
	// MaxClients bounds the bucket table; beyond it, fully refilled
	// buckets (for which eviction is free) are swept, then the least
	// recently used one is dropped. Defaults to 4096.
	MaxClients int
	// Metrics receives spec17_admission_rejected_total. Nil uses a
	// private registry.
	Metrics *metrics.Registry
	// Now is the clock, overridable in tests. Nil uses time.Now.
	Now func() time.Time
}

// Decision is the outcome of one admission check.
type Decision struct {
	OK bool
	// Reason is the rejection reason (one of the Reason* constants);
	// empty when admitted.
	Reason string
	// RetryAfter estimates when retrying could succeed: for a rate
	// rejection, the refill time for the request's cost. Zero when
	// admitted or when no estimate exists (in-flight rejections depend
	// on other requests finishing, not on time).
	RetryAfter time.Duration
}

var admitted = Decision{OK: true}

// bucket is one client's token bucket.
type bucket struct {
	tokens  float64   // tokens available at `updated`
	updated time.Time // last refill
	lastUse time.Time // last Admit touching this bucket (LRU eviction)
}

// Controller applies the configured limits. Create with New; a nil
// *Controller admits everything.
type Controller struct {
	cfg      Config
	rejected *metrics.CounterVec

	inflight atomic.Int64

	mu      sync.Mutex
	buckets map[string]*bucket
}

// New returns a Controller enforcing cfg.
func New(cfg Config) *Controller {
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = math.Max(cfg.Rate, 1)
	}
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Controller{
		cfg: cfg,
		rejected: cfg.Metrics.CounterVec("spec17_admission_rejected_total",
			"Requests rejected by the admission layer, by reason.",
			"reason"),
		buckets: make(map[string]*bucket),
	}
}

// Config returns the effective configuration (zero value on nil).
func (c *Controller) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// Admit charges cost tokens against client's bucket. With rate
// limiting disabled (Rate == 0) every request is admitted and no
// bucket state is kept. Cost larger than Burst is clamped to Burst,
// so oversized requests drain a full bucket instead of never passing.
func (c *Controller) Admit(client string, cost float64) Decision {
	if c == nil || c.cfg.Rate <= 0 || cost <= 0 {
		return admitted
	}
	if cost > c.cfg.Burst {
		cost = c.cfg.Burst
	}
	now := c.cfg.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.buckets[client]
	if !ok {
		c.evictLocked(now) // make room before inserting
		b = &bucket{tokens: c.cfg.Burst, updated: now}
		c.buckets[client] = b
	}
	// Refill since last update, capped at Burst.
	b.tokens = math.Min(c.cfg.Burst, b.tokens+now.Sub(b.updated).Seconds()*c.cfg.Rate)
	b.updated = now
	b.lastUse = now
	if b.tokens < cost {
		retry := time.Duration((cost - b.tokens) / c.cfg.Rate * float64(time.Second))
		c.rejected.With(ReasonRateLimited).Inc()
		return Decision{Reason: ReasonRateLimited, RetryAfter: retry}
	}
	b.tokens -= cost
	return admitted
}

// AdmitWait charges cost tokens against client's bucket, blocking
// until the bucket can afford it or ctx ends. This is the admission
// mode for background work (async job sweeps): where an interactive
// request is shed with 429 and retried by its client, a job item has
// no client waiting on the wire, so it waits for its refill here —
// background throughput is throttled to the same per-client budget
// interactive traffic pays, which is what keeps a registry-scale
// sweep from starving the submitter's own interactive requests.
//
// Each blocked attempt counts one rate_limited rejection (the retry
// sleeps for the controller's own refill estimate, so a waiting item
// typically records one rejection per wait, not a busy-loop's worth).
func (c *Controller) AdmitWait(ctx context.Context, client string, cost float64) error {
	for {
		dec := c.Admit(client, cost)
		if dec.OK {
			return nil
		}
		wait := dec.RetryAfter
		if wait <= 0 {
			wait = 50 * time.Millisecond
		}
		t := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// evictLocked makes room for one more bucket when the table is at
// MaxClients: first sweep out buckets that have fully refilled
// (evicting one is semantically free — the client would start from a
// full bucket anyway), then drop the least recently used bucket.
// Caller holds c.mu.
func (c *Controller) evictLocked(now time.Time) {
	if len(c.buckets) < c.cfg.MaxClients {
		return
	}
	var lruKey string
	var lruUse time.Time
	for k, b := range c.buckets {
		if b.tokens+now.Sub(b.updated).Seconds()*c.cfg.Rate >= c.cfg.Burst {
			delete(c.buckets, k)
			continue
		}
		if lruKey == "" || b.lastUse.Before(lruUse) {
			lruKey, lruUse = k, b.lastUse
		}
	}
	if len(c.buckets) >= c.cfg.MaxClients && lruKey != "" {
		delete(c.buckets, lruKey)
	}
}

// AcquireInFlight claims one global in-flight slot, reporting whether
// one was free. Callers that got a slot must ReleaseInFlight when the
// request finishes. With MaxInFlight == 0 it always succeeds (and
// still counts, so Snapshot reports live occupancy).
func (c *Controller) AcquireInFlight() bool {
	if c == nil {
		return true
	}
	for {
		n := c.inflight.Load()
		if c.cfg.MaxInFlight > 0 && n >= int64(c.cfg.MaxInFlight) {
			c.rejected.With(ReasonInFlight).Inc()
			return false
		}
		if c.inflight.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// ReleaseInFlight returns a slot claimed by AcquireInFlight.
func (c *Controller) ReleaseInFlight() {
	if c != nil {
		c.inflight.Add(-1)
	}
}

// CountRejection records a shed decided outside the controller (the
// scheduler's queue bounds) in the same rejected-by-reason family.
func (c *Controller) CountRejection(reason string) {
	if c != nil {
		c.rejected.With(reason).Inc()
	}
}

// Snapshot is a point-in-time view of the controller, for /v1/status.
type Snapshot struct {
	RateLimit   float64          `json:"rate_limit"`
	Burst       float64          `json:"burst"`
	MaxInFlight int              `json:"max_inflight"`
	InFlight    int64            `json:"inflight"`
	Clients     int              `json:"clients"`
	Rejected    map[string]int64 `json:"rejected,omitempty"`
}

// Snapshot returns the controller's current state. Only reasons with
// at least one rejection appear in Rejected.
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	clients := len(c.buckets)
	c.mu.Unlock()
	s := Snapshot{
		RateLimit:   c.cfg.Rate,
		Burst:       c.cfg.Burst,
		MaxInFlight: c.cfg.MaxInFlight,
		InFlight:    c.inflight.Load(),
		Clients:     clients,
	}
	for _, reason := range []string{ReasonRateLimited, ReasonInFlight, ReasonQueueFull, ReasonQueueTimeout} {
		if n := int64(c.rejected.With(reason).Value()); n > 0 {
			if s.Rejected == nil {
				s.Rejected = make(map[string]int64)
			}
			s.Rejected[reason] = n
		}
	}
	return s
}
